// Fig. 8 column 4 (d, h, l): Beijing surrogate dataset #2 (0 am - 2 am,
// |W| = 19006, |R| = 55659), revenue / time / memory vs the worker
// availability duration delta_w in {5, 10, 15, 20, 25}.

#include "bench_common.h"

int main() {
  using maps::bench::BeijingPoint;
  const bool scaled = std::getenv("MAPS_BENCH_SCALE") == nullptr;
  std::vector<BeijingPoint> points;
  for (int d : {5, 10, 15, 20, 25}) {
    maps::BeijingConfig cfg;
    cfg.window = maps::BeijingConfig::Window::kLateNight;
    cfg.worker_duration = d;
    cfg.population_scale = scaled ? 0.1 : 1.0;
    points.push_back({std::to_string(d), cfg});
  }
  return maps::bench::RunBeijingSweep("fig8_beijing2", "delta_w", points);
}
