// Fig. 6 column 2 (b, f, j): revenue / time / memory vs the number of tasks
// |R| in {5000, 10000, 20000, 30000, 40000} (Table 3).

#include "bench_common.h"

int main() {
  using maps::bench::SyntheticPoint;
  std::vector<SyntheticPoint> points;
  for (int r : {5000, 10000, 20000, 30000, 40000}) {
    maps::SyntheticConfig cfg;
    cfg.num_tasks = r;
    points.push_back({std::to_string(r), cfg});
  }
  return maps::bench::RunSyntheticSweep("fig6_tasks", "|R|", points);
}
