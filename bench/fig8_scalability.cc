// Fig. 8 column 2 (b, f, j): scalability — |W| = |R| grows from 100k to
// 500k over T = 400 periods.
//
// NOTE: the full paper-scale sweep takes a while; the default applies a 0.1
// population scale (10k..50k), which preserves the linear-growth shape.
// Run with MAPS_BENCH_SCALE=1 for the paper's full sizes.

#include "bench_common.h"

int main() {
  using maps::bench::SyntheticPoint;
  const double default_scale =
      std::getenv("MAPS_BENCH_SCALE") == nullptr ? 0.1 : 1.0;
  std::vector<SyntheticPoint> points;
  for (int n : {100000, 200000, 300000, 400000, 500000}) {
    maps::SyntheticConfig cfg;
    cfg.num_workers = static_cast<int>(n * default_scale);
    cfg.num_tasks = static_cast<int>(n * default_scale);
    points.push_back({std::to_string(cfg.num_workers), cfg});
  }
  return maps::bench::RunSyntheticSweep("fig8_scalability", "|W|=|R|",
                                        points);
}
