// Fig. 7 column 1 (a, e, i): revenue / time / memory vs the mean of the
// (normal) demand distribution in {1.0, 1.5, 2.0, 2.5, 3.0} (Table 3).

#include "bench_common.h"

int main() {
  using maps::bench::SyntheticPoint;
  std::vector<SyntheticPoint> points;
  for (double mu : {1.0, 1.5, 2.0, 2.5, 3.0}) {
    maps::SyntheticConfig cfg;
    cfg.demand_mu = mu;
    char label[16];
    std::snprintf(label, sizeof(label), "%.1f", mu);
    points.push_back({label, cfg});
  }
  return maps::bench::RunSyntheticSweep("fig7_demand_mu", "mu", points);
}
