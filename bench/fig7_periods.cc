// Fig. 7 column 3 (c, g, k): revenue / time / memory vs the number of time
// periods T in {200, 400, 600, 800, 1000} (Table 3).

#include "bench_common.h"

int main() {
  using maps::bench::SyntheticPoint;
  std::vector<SyntheticPoint> points;
  for (int t : {200, 400, 600, 800, 1000}) {
    maps::SyntheticConfig cfg;
    cfg.num_periods = t;
    points.push_back({std::to_string(t), cfg});
  }
  return maps::bench::RunSyntheticSweep("fig7_periods", "T", points);
}
