// Fig. 7 column 2 (b, f, j): revenue / time / memory vs the stddev of the
// (normal) demand distribution in {0.5, 1.0, 1.5, 2.0, 2.5} (Table 3).

#include "bench_common.h"

int main() {
  using maps::bench::SyntheticPoint;
  std::vector<SyntheticPoint> points;
  for (double sigma : {0.5, 1.0, 1.5, 2.0, 2.5}) {
    maps::SyntheticConfig cfg;
    cfg.demand_sigma = sigma;
    char label[16];
    std::snprintf(label, sizeof(label), "%.1f", sigma);
    points.push_back({label, cfg});
  }
  return maps::bench::RunSyntheticSweep("fig7_demand_sigma", "sigma", points);
}
