// Shared scaffolding for the remaining bench binaries (ablation, micro).
//
// The per-figure sweep drivers that used to live next to this header were
// consolidated into tools/experiment_runner.cc, which executes the registry
// in src/sim/experiments.h across a thread pool; only the environment knobs
// and the config-scaling helper survive here.
//
// Environment knobs:
//   MAPS_BENCH_SCALE   scales |W| and |R| (default 1.0; use e.g. 0.1 for a
//                      quick smoke pass)
//   MAPS_BENCH_CSV_DIR directory for CSV output (default ".")

#pragma once

#include <algorithm>
#include <cstdlib>
#include <string>

#include "sim/experiments.h"
#include "sim/synthetic.h"

namespace maps {
namespace bench {

/// The shared sweep pricing knobs (one definition so bench and runner
/// results stay comparable).
inline PricingConfig BenchPricing() { return ExperimentPricing(); }

inline double BenchScale() {
  const char* s = std::getenv("MAPS_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  const double v = std::atof(s);
  return v > 0.0 ? v : 1.0;
}

inline std::string CsvDir() {
  const char* s = std::getenv("MAPS_BENCH_CSV_DIR");
  return s == nullptr ? std::string(".") : std::string(s);
}

/// Applies MAPS_BENCH_SCALE to a synthetic config's populations.
inline SyntheticConfig Scaled(SyntheticConfig cfg) {
  const double scale = BenchScale();
  cfg.num_workers = std::max(1, static_cast<int>(cfg.num_workers * scale));
  cfg.num_tasks = std::max(1, static_cast<int>(cfg.num_tasks * scale));
  return cfg;
}

}  // namespace bench
}  // namespace maps
