// Shared scaffolding for the figure-reproduction benches.
//
// Each bench binary declares its x-axis points (Table 3 / Table 4 sweeps),
// generates one workload per point, runs all five strategies, and prints the
// paper's three series (revenue / running time / memory) as one table plus a
// CSV file next to the binary.
//
// Environment knobs:
//   MAPS_BENCH_SCALE   scales |W| and |R| (default 1.0; use e.g. 0.1 for a
//                      quick smoke pass)
//   MAPS_BENCH_CSV_DIR directory for CSV output (default ".")

#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "sim/beijing.h"
#include "sim/metrics.h"
#include "sim/synthetic.h"

namespace maps {
namespace bench {

/// Pricing knobs used by every bench: the paper's [1, 5] price interval
/// with a finer ladder (alpha = 0.25, 8 rungs) than Example 4's
/// illustrative alpha = 0.5, so per-grid heterogeneity is resolvable.
inline PricingConfig BenchPricing() {
  PricingConfig cfg;
  cfg.alpha = 0.25;
  return cfg;
}

inline double BenchScale() {
  const char* s = std::getenv("MAPS_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  const double v = std::atof(s);
  return v > 0.0 ? v : 1.0;
}

inline std::string CsvDir() {
  const char* s = std::getenv("MAPS_BENCH_CSV_DIR");
  return s == nullptr ? std::string(".") : std::string(s);
}

/// Applies MAPS_BENCH_SCALE to a synthetic config's populations.
inline SyntheticConfig Scaled(SyntheticConfig cfg) {
  const double scale = BenchScale();
  cfg.num_workers = std::max(1, static_cast<int>(cfg.num_workers * scale));
  cfg.num_tasks = std::max(1, static_cast<int>(cfg.num_tasks * scale));
  return cfg;
}

/// One synthetic sweep point: label + config mutation.
struct SyntheticPoint {
  std::string label;
  SyntheticConfig config;
};

/// Runs a synthetic sweep and reports. Returns a process exit code.
inline int RunSyntheticSweep(const std::string& experiment,
                             const std::string& x_name,
                             const std::vector<SyntheticPoint>& points) {
  ExperimentSweep sweep(experiment, x_name);
  const auto strategies = DefaultStrategies(BenchPricing());
  for (size_t i = 0; i < points.size(); ++i) {
    SyntheticConfig cfg = Scaled(points[i].config);
    cfg.seed = 1000 + 17 * i;  // fresh dataset per x value, deterministic
    auto workload = GenerateSynthetic(cfg);
    if (!workload.ok()) {
      std::cerr << experiment << ": generation failed: "
                << workload.status() << "\n";
      return 1;
    }
    Status st =
        sweep.RunPoint(points[i].label, workload.ValueOrDie(), strategies);
    if (!st.ok()) {
      std::cerr << experiment << ": " << st << "\n";
      return 1;
    }
    std::cout << "[" << experiment << "] finished " << x_name << " = "
              << points[i].label << "\n";
  }
  Status st = sweep.Report(CsvDir());
  if (!st.ok()) {
    std::cerr << experiment << ": " << st << "\n";
    return 1;
  }
  return 0;
}

/// One Beijing-surrogate sweep point.
struct BeijingPoint {
  std::string label;
  BeijingConfig config;
};

inline int RunBeijingSweep(const std::string& experiment,
                           const std::string& x_name,
                           const std::vector<BeijingPoint>& points) {
  ExperimentSweep sweep(experiment, x_name);
  const auto strategies = DefaultStrategies(BenchPricing());
  for (size_t i = 0; i < points.size(); ++i) {
    BeijingConfig cfg = points[i].config;
    cfg.population_scale *= BenchScale();
    if (cfg.population_scale > 1.0) cfg.population_scale = 1.0;
    cfg.seed = 2016 + 31 * i;
    auto workload = GenerateBeijing(cfg);
    if (!workload.ok()) {
      std::cerr << experiment << ": generation failed: "
                << workload.status() << "\n";
      return 1;
    }
    Status st =
        sweep.RunPoint(points[i].label, workload.ValueOrDie(), strategies);
    if (!st.ok()) {
      std::cerr << experiment << ": " << st << "\n";
      return 1;
    }
    std::cout << "[" << experiment << "] finished " << x_name << " = "
              << points[i].label << "\n";
  }
  Status st = sweep.Report(CsvDir());
  if (!st.ok()) {
    std::cerr << experiment << ": " << st << "\n";
    return 1;
  }
  return 0;
}

}  // namespace bench
}  // namespace maps
