// Fig. 6 column 1 (a, e, i): revenue / time / memory vs the number of
// workers |W| in {1250, 2500, 5000, 7500, 10000} (Table 3).

#include "bench_common.h"

int main() {
  using maps::bench::SyntheticPoint;
  std::vector<SyntheticPoint> points;
  for (int w : {1250, 2500, 5000, 7500, 10000}) {
    maps::SyntheticConfig cfg;
    cfg.num_workers = w;
    points.push_back({std::to_string(w), cfg});
  }
  return maps::bench::RunSyntheticSweep("fig6_workers", "|W|", points);
}
