// Fig. 6 column 3 (c, g, k): revenue / time / memory vs the mean of the
// task temporal distribution (fraction of T) in {0.1 .. 0.9}; the worker
// temporal mean stays fixed at T/2 (Sec. 5.2).

#include "bench_common.h"

int main() {
  using maps::bench::SyntheticPoint;
  std::vector<SyntheticPoint> points;
  for (double mu : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    maps::SyntheticConfig cfg;
    cfg.temporal_mu = mu;
    char label[16];
    std::snprintf(label, sizeof(label), "%.1f", mu);
    points.push_back({label, cfg});
  }
  return maps::bench::RunSyntheticSweep("fig6_temporal", "mu", points);
}
