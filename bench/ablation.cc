// Ablation bench (ours, not in the paper): isolates the contribution of
// MAPS's design choices called out in DESIGN.md:
//   * Delta mode: L-based expected-revenue gain vs the paper's literal
//     p_new*S(p_new) - p_old*S(p_old);
//   * warm-starting the UCB tables from Algorithm 1's probes;
//   * the binomial change detector;
// plus BaseP as the no-dynamic-pricing reference.

#include <functional>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "pricing/base_pricing.h"
#include "pricing/maps.h"
#include "pricing/price_postprocess.h"
#include "sim/simulator.h"
#include "util/csv.h"

namespace {

using namespace maps;  // NOLINT

struct Variant {
  std::string name;
  std::function<std::unique_ptr<PricingStrategy>()> make;
};

}  // namespace

int main() {
  SyntheticConfig cfg = maps::bench::Scaled(SyntheticConfig{});
  cfg.num_workers = cfg.num_workers / 2;  // scarcity makes choices visible
  cfg.seed = 4242;

  std::vector<Variant> variants;
  auto add_maps = [&](const std::string& name, auto mutate) {
    variants.push_back({name, [mutate] {
                          MapsOptions opts;
                          mutate(opts);
                          return std::make_unique<Maps>(opts);
                        }});
  };
  add_maps("MAPS (default: L-delta)", [](MapsOptions&) {});
  add_maps("MAPS paper-literal delta", [](MapsOptions& o) {
    o.delta_mode = MapsOptions::DeltaMode::kPaperLiteral;
  });
  add_maps("MAPS no warm start", [](MapsOptions& o) {
    o.warm_start_from_base = false;
  });
  add_maps("MAPS no change detector", [](MapsOptions& o) {
    o.use_change_detector = false;
  });
  add_maps("MAPS appendix-C.6 L-approx", [](MapsOptions& o) {
    o.supply_approx = MapsOptions::SupplyApprox::kTruncatedExpectation;
  });
  variants.push_back({"MAPS + spatial smoothing", [] {
                        PostprocessOptions post;
                        post.smoothing_lambda = 0.3;
                        return std::make_unique<PostprocessedStrategy>(
                            std::make_unique<Maps>(MapsOptions{}), post);
                      }});
  variants.push_back({"MAPS + price cap 3.0", [] {
                        PostprocessOptions post;
                        post.price_cap = 3.0;
                        return std::make_unique<PostprocessedStrategy>(
                            std::make_unique<Maps>(MapsOptions{}), post);
                      }});
  variants.push_back({"BaseP reference", [] {
                        return std::make_unique<BasePricing>(
                            PricingConfig{});
                      }});

  auto workload_or = GenerateSynthetic(cfg);
  if (!workload_or.ok()) {
    std::cerr << "ablation: " << workload_or.status() << "\n";
    return 1;
  }
  const Workload& workload = workload_or.ValueOrDie();

  Table table({"variant", "revenue", "time_secs", "memory_mb"});
  for (size_t i = 0; i < variants.size(); ++i) {
    auto strategy = variants[i].make();
    SimOptions opts;
    opts.warmup_stream = 400 + i;
    auto run = RunSimulation(workload, strategy.get(), opts);
    if (!run.ok()) {
      std::cerr << "ablation: " << variants[i].name << ": " << run.status()
                << "\n";
      return 1;
    }
    const SimulationResult& r = run.ValueOrDie();
    table.AddRow(variants[i].name, r.total_revenue, r.total_time_sec,
                 static_cast<double>(r.memory_bytes) / (1024.0 * 1024.0));
    std::cout << "[ablation] finished " << variants[i].name << "\n";
  }
  std::cout << "== ablation ==\n" << table.ToText() << "\n";
  Status st = table.WriteCsv(maps::bench::CsvDir() + "/ablation.csv");
  if (!st.ok()) {
    std::cerr << "ablation: " << st << "\n";
    return 1;
  }

  // Worker-repositioning ablation (Sec. 4.2.3's incentive note): idle
  // drivers chase surged grids with increasing probability.
  Table repo_table({"reposition_prob", "MAPS_revenue", "matched"});
  for (double prob : {0.0, 0.2, 0.5}) {
    auto wl = GenerateSynthetic(cfg);
    if (!wl.ok()) {
      std::cerr << "ablation: " << wl.status() << "\n";
      return 1;
    }
    Workload moved = std::move(wl).ValueOrDie();
    moved.lifecycle.reposition_prob = prob;
    Maps strategy{MapsOptions{}};
    auto run = RunSimulation(moved, &strategy);
    if (!run.ok()) {
      std::cerr << "ablation: reposition " << prob << ": " << run.status()
                << "\n";
      return 1;
    }
    repo_table.AddRow(prob, run.ValueOrDie().total_revenue,
                      run.ValueOrDie().num_matched);
  }
  std::cout << "== ablation: worker repositioning ==\n"
            << repo_table.ToText() << "\n";
  st = repo_table.WriteCsv(maps::bench::CsvDir() + "/ablation_reposition.csv");
  if (!st.ok()) {
    std::cerr << "ablation: " << st << "\n";
    return 1;
  }
  return 0;
}
