// Google-benchmark micro-benchmarks for the computational kernels: bipartite
// graph construction, the three matchers, the possible-world enumerator,
// demand sampling, and a full MAPS pricing round.
//
// After the google-benchmark suite runs, main() emits BENCH_micro.json —
// per-op nanoseconds and peak bytes for the three tracked hot paths
// (PriceRound, graph build, OracleSearch) — so the perf trajectory across
// PRs is machine-readable. MAPS_BENCH_SCALE scales the tracked instance
// sizes (e.g. 0.05 for a CI smoke pass).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>

#include "graph/bipartite_graph.h"
#include "graph/hopcroft_karp.h"
#include "graph/kuhn.h"
#include "graph/max_weight_matching.h"
#include "graph/possible_worlds.h"
#include "market/demand_model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pricing/base_pricing.h"
#include "pricing/maps.h"
#include "pricing/oracle_search.h"
#include "geo/region_partition.h"
#include "rng/counter_rng.h"
#include "rng/random.h"
#include "service/market_engine.h"
#include "service/sharded_engine.h"
#include "sim/simulator.h"
#include "sim/synthetic.h"
#include "util/fault_injector.h"
#include "util/thread_pool.h"

namespace maps {
namespace {

BipartiteGraph MakeRandomGraph(int nl, int nr, double density,
                               uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<int, int>> edges;
  for (int l = 0; l < nl; ++l) {
    for (int r = 0; r < nr; ++r) {
      if (rng.NextBernoulli(density)) edges.push_back({l, r});
    }
  }
  return BipartiteGraph::FromEdges(nl, nr, std::move(edges));
}

void BM_KuhnMatching(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const BipartiteGraph g = MakeRandomGraph(n, n, 8.0 / n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(KuhnMatching(g).size);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_KuhnMatching)->Range(64, 4096)->Complexity();

void BM_HopcroftKarp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const BipartiteGraph g = MakeRandomGraph(n, n, 8.0 / n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HopcroftKarpMatching(g).size);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_HopcroftKarp)->Range(64, 4096)->Complexity();

void BM_MaxWeightTaskMatching(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const BipartiteGraph g = MakeRandomGraph(n, n, 8.0 / n, 2);
  Rng rng(3);
  std::vector<double> weights(n);
  for (auto& w : weights) w = rng.NextDouble(0.1, 10.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaxWeightTaskMatching(g, weights).total_weight);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_MaxWeightTaskMatching)->Range(64, 4096)->Complexity();

void BM_SpatialGraphBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto grid = GridPartition::Make(Rect{0, 0, 100, 100}, 10, 10).ValueOrDie();
  Rng rng(4);
  std::vector<Task> tasks(n);
  std::vector<Worker> workers(n);
  for (int i = 0; i < n; ++i) {
    tasks[i].id = i;
    tasks[i].origin = {rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    tasks[i].grid = grid.CellOf(tasks[i].origin);
    workers[i].id = i;
    workers[i].location = {rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    workers[i].radius = 15.0;
    workers[i].grid = grid.CellOf(workers[i].location);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BipartiteGraph::Build(tasks, workers, grid).num_edges());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SpatialGraphBuild)->Range(64, 4096)->Complexity();

void BM_SpatialGraphBuildPooled(benchmark::State& state) {
  // Steady-state variant: workspace and graph storage reused across builds,
  // as PriceRound and the simulator do every round.
  const int n = static_cast<int>(state.range(0));
  auto grid = GridPartition::Make(Rect{0, 0, 100, 100}, 10, 10).ValueOrDie();
  Rng rng(4);
  std::vector<Task> tasks(n);
  std::vector<Worker> workers(n);
  for (int i = 0; i < n; ++i) {
    tasks[i].id = i;
    tasks[i].origin = {rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    tasks[i].grid = grid.CellOf(tasks[i].origin);
    workers[i].id = i;
    workers[i].location = {rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    workers[i].radius = 15.0;
    workers[i].grid = grid.CellOf(workers[i].location);
  }
  GraphBuildWorkspace ws;
  BipartiteGraph g;
  for (auto _ : state) {
    BipartiteGraph::BuildInto(tasks, workers, grid, &ws, &g);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SpatialGraphBuildPooled)->Range(64, 4096)->Complexity();

void BM_PossibleWorldEnumeration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const BipartiteGraph g = MakeRandomGraph(n, n / 2 + 1, 0.5, 5);
  std::vector<PricedTask> tasks(n);
  Rng rng(6);
  for (auto& t : tasks) {
    t.distance = rng.NextDouble(0.5, 3.0);
    t.price = rng.NextDouble(1.0, 5.0);
    t.accept_prob = rng.NextDouble(0.2, 0.9);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExactExpectedRevenue(g, tasks));
  }
}
BENCHMARK(BM_PossibleWorldEnumeration)->DenseRange(4, 16, 4);

void BM_TruncatedNormalSample(benchmark::State& state) {
  TruncatedNormalDemand demand(2.0, 1.0, 1.0, 5.0);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(demand.Sample(rng));
  }
}
BENCHMARK(BM_TruncatedNormalSample);

void BM_CounterRngBlock(benchmark::State& state) {
  // Raw Philox 4x64-10 throughput: one block = 4 output words.
  CounterRng rng(42, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextUint64());
  }
}
BENCHMARK(BM_CounterRngBlock);

void BM_MonteCarloWorlds(benchmark::State& state) {
  // Counter-streamed Monte-Carlo estimate on a contention-heavy graph; the
  // serial sharded path (pool = nullptr) — the pooled speedup is tracked in
  // BENCH_micro.json where the thread count is recorded alongside.
  const int n = static_cast<int>(state.range(0));
  const BipartiteGraph g = MakeRandomGraph(n, n / 2 + 1, 0.5, 5);
  std::vector<PricedTask> tasks(n);
  Rng rng(6);
  for (auto& t : tasks) {
    t.distance = rng.NextDouble(0.5, 3.0);
    t.price = rng.NextDouble(1.0, 5.0);
    t.accept_prob = rng.NextDouble(0.2, 0.9);
  }
  std::vector<PossibleWorldsWorkspace> ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MonteCarloExpectedRevenue(g, tasks, /*seed=*/11, /*samples=*/4096,
                                  /*pool=*/nullptr, &ws));
  }
}
BENCHMARK(BM_MonteCarloWorlds)->DenseRange(8, 24, 8);

void BM_ObsHistogramRecord(benchmark::State& state) {
  // The telemetry hot path: one bit-width + three relaxed fetch_adds. This
  // is the unit cost every instrumented span pays when a registry is
  // attached, so it has to stay in the few-ns range.
  obs::Histogram h;
  int64_t v = 1;
  for (auto _ : state) {
    h.Record(v);
    v = (v * 2862933555777941757LL + 3037000493LL) & 0x7fffffffffff;
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_ObsHistogramRecord);

void BM_ObsCounterIncrementDisabled(benchmark::State& state) {
  // The disabled-telemetry path: a null handle is one predictable branch.
  obs::Counter* counter = nullptr;
  int64_t field = 0;
  for (auto _ : state) {
    obs::BumpMirrored(&field, counter);
    benchmark::DoNotOptimize(field);
  }
}
BENCHMARK(BM_ObsCounterIncrementDisabled);

void BM_MyersonPriceScan(benchmark::State& state) {
  TruncatedNormalDemand demand(2.0, 1.0, 1.0, 5.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(demand.MyersonPrice(1.0, 5.0));
  }
}
BENCHMARK(BM_MyersonPriceScan);

void BM_MapsPriceRound(benchmark::State& state) {
  const int tasks_n = static_cast<int>(state.range(0));
  SyntheticConfig cfg;
  cfg.num_tasks = tasks_n;
  cfg.num_workers = tasks_n / 4;
  cfg.num_periods = 1;  // everything lands in one snapshot
  cfg.temporal_sigma = 0.0001;
  cfg.seed = 99;
  Workload w = GenerateSynthetic(cfg).ValueOrDie();
  MapsOptions opts;
  Maps strategy(opts);
  DemandOracle history = w.oracle.Fork(9);
  if (!strategy.Warmup(w.grid, &history).ok()) {
    state.SkipWithError("warmup failed");
    return;
  }
  MarketSnapshot snap(&w.grid, 0, w.tasks, w.workers);
  std::vector<double> prices;
  for (auto _ : state) {
    if (!strategy.PriceRound(snap, &prices).ok()) {
      state.SkipWithError("price round failed");
      return;
    }
    benchmark::DoNotOptimize(prices.data());
  }
  state.SetComplexityN(tasks_n);
}
BENCHMARK(BM_MapsPriceRound)->Range(256, 4096)->Complexity();

void BM_MapsPriceRoundSharded(benchmark::State& state) {
  // Same round with a lent pool: the per-round maximizer precompute shards
  // across it (bit-identical results; see DESIGN.md §10).
  const int tasks_n = static_cast<int>(state.range(0));
  SyntheticConfig cfg;
  cfg.num_tasks = tasks_n;
  cfg.num_workers = tasks_n / 4;
  cfg.num_periods = 1;
  cfg.temporal_sigma = 0.0001;
  cfg.seed = 99;
  Workload w = GenerateSynthetic(cfg).ValueOrDie();
  MapsOptions opts;
  Maps strategy(opts);
  ThreadPool pool(ThreadPool::DefaultThreadCount());
  strategy.LendPool(&pool);
  DemandOracle history = w.oracle.Fork(9);
  if (!strategy.Warmup(w.grid, &history).ok()) {
    state.SkipWithError("warmup failed");
    return;
  }
  MarketSnapshot snap(&w.grid, 0, w.tasks, w.workers);
  std::vector<double> prices;
  for (auto _ : state) {
    if (!strategy.PriceRound(snap, &prices).ok()) {
      state.SkipWithError("price round failed");
      return;
    }
    benchmark::DoNotOptimize(prices.data());
  }
  state.SetComplexityN(tasks_n);
}
BENCHMARK(BM_MapsPriceRoundSharded)->Range(256, 4096)->Complexity();

void BM_EnginePeriod(benchmark::State& state) {
  // One online period through the MarketEngine event API: submit a burst of
  // tasks, close the period (price + acceptance + matching + lifecycle).
  // Turnaround workers at effectively infinite speed return every period,
  // so each iteration serves an equally sized market.
  const int tasks_n = static_cast<int>(state.range(0));
  SyntheticConfig cfg;
  cfg.num_tasks = tasks_n;
  cfg.num_workers = tasks_n / 4;
  cfg.num_periods = 1;
  cfg.temporal_sigma = 0.0001;
  cfg.seed = 99;
  Workload w = GenerateSynthetic(cfg).ValueOrDie();
  MapsOptions opts;
  Maps strategy(opts);
  DemandOracle history = w.oracle.Fork(9);
  if (!strategy.Warmup(w.grid, &history).ok()) {
    state.SkipWithError("warmup failed");
    return;
  }
  EngineOptions engine_options;
  engine_options.lifecycle.single_use = false;
  engine_options.lifecycle.speed = 1e12;  // rides finish in one period
  MarketEngine engine(&w.grid, &strategy, engine_options);
  for (const Worker& worker : w.workers) {
    if (!engine.AddWorker(worker).ok()) {
      state.SkipWithError("add_worker failed");
      return;
    }
  }
  PeriodOutcome outcome;
  for (auto _ : state) {
    for (size_t i = 0; i < w.tasks.size(); ++i) {
      if (!engine.SubmitTask(w.tasks[i], w.valuations[i]).ok()) {
        state.SkipWithError("submit_task failed");
        return;
      }
    }
    if (!engine.ClosePeriod(&outcome).ok()) {
      state.SkipWithError("close_period failed");
      return;
    }
    benchmark::DoNotOptimize(outcome.revenue);
  }
  state.SetComplexityN(tasks_n);
}
BENCHMARK(BM_EnginePeriod)->Range(256, 4096)->Complexity();

void BM_ShardedEnginePeriod(benchmark::State& state) {
  // A 4096-task single-period burst served by a K-region
  // ShardedMarketEngine (range(0) = K). The workload uses the multi-region
  // generator shape (even band load, wide spatial spread) and BaseP's
  // constant posted price, so acceptance — and with it the max-weight
  // matching load — is stable across iterations; the matching core is the
  // superlinear term the band split exists to shrink. K=1 is the sharded
  // router in front of one region (pure routing overhead over the
  // monolith); K>1 additionally closes the regions concurrently when the
  // host has cores to offer.
  const int num_regions = static_cast<int>(state.range(0));
  const int tasks_n = 4096;
  SyntheticConfig cfg;
  cfg.num_tasks = tasks_n;
  cfg.num_workers = tasks_n / 2;
  cfg.num_periods = 1;
  cfg.temporal_sigma = 0.0001;
  cfg.spatial_sigma = 35.0;
  cfg.sharded_regions = 4;  // same workload for every K
  cfg.seed = 99;
  Workload w = GenerateSynthetic(cfg).ValueOrDie();
  const RegionPartition partition =
      RegionPartition::Make(w.grid, num_regions).ValueOrDie();
  PricingConfig pricing_config;
  std::vector<std::unique_ptr<BasePricing>> owned;
  std::vector<PricingStrategy*> strategies;
  for (int k = 0; k < num_regions; ++k) {
    auto strategy = std::make_unique<BasePricing>(pricing_config);
    DemandOracle history = w.oracle.Fork(9);
    if (!strategy->Warmup(w.grid, &history).ok()) {
      state.SkipWithError("warmup failed");
      return;
    }
    strategies.push_back(strategy.get());
    owned.push_back(std::move(strategy));
  }
  ThreadPool pool(ThreadPool::DefaultThreadCount());
  EngineOptions engine_options;
  engine_options.lifecycle.single_use = false;
  engine_options.lifecycle.speed = 1e12;  // rides finish in one period
  if (num_regions > 1) engine_options.pool = &pool;
  ShardedMarketEngine engine(&w.grid, &partition, strategies, engine_options);
  for (const Worker& worker : w.workers) {
    if (!engine.AddWorker(worker).ok()) {
      state.SkipWithError("add_worker failed");
      return;
    }
  }
  PeriodOutcome outcome;
  for (auto _ : state) {
    for (size_t i = 0; i < w.tasks.size(); ++i) {
      if (!engine.SubmitTask(w.tasks[i], w.valuations[i]).ok()) {
        state.SkipWithError("submit_task failed");
        return;
      }
    }
    if (!engine.ClosePeriod(&outcome).ok()) {
      state.SkipWithError("close_period failed");
      return;
    }
    benchmark::DoNotOptimize(outcome.revenue);
  }
}
BENCHMARK(BM_ShardedEnginePeriod)->Arg(1)->Arg(2)->Arg(4);

// ---------------------------------------------------------------------------
// BENCH_micro.json: machine-readable per-op ns and peak bytes for the three
// tracked hot paths. Kept separate from the google-benchmark suite so the
// file's schema is stable regardless of --benchmark_filter.
// ---------------------------------------------------------------------------

double BenchScale() {
  const char* s = std::getenv("MAPS_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  const double v = std::atof(s);
  return v > 0.0 ? v : 1.0;
}

struct TrackedResult {
  std::string name;
  double ns_per_op = 0.0;
  size_t peak_bytes = 0;
  int iterations = 0;
  int problem_size = 0;
};

/// Runs `op` until ~min_seconds of wall time accumulate; returns ns/op.
template <typename Op>
double TimeOp(Op&& op, int* iterations, double min_seconds = 0.25) {
  using Clock = std::chrono::steady_clock;
  int iters = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    op();
    ++iters;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds);
  *iterations = iters;
  return elapsed * 1e9 / iters;
}

bool EmitTrackedJson(const std::string& path) {
  const double scale = BenchScale();
  std::vector<TrackedResult> results;

  // Fig-8-scale PriceRound: the paper's scalability sweep tops out around
  // 4k tasks per period at full scale.
  {
    const int tasks_n = std::max(32, static_cast<int>(4096 * scale));
    SyntheticConfig cfg;
    cfg.num_tasks = tasks_n;
    cfg.num_workers = tasks_n / 4;
    cfg.num_periods = 1;
    cfg.temporal_sigma = 0.0001;
    cfg.seed = 99;
    Workload w = GenerateSynthetic(cfg).ValueOrDie();
    MapsOptions opts;
    Maps strategy(opts);
    DemandOracle history = w.oracle.Fork(9);
    if (!strategy.Warmup(w.grid, &history).ok()) {
      std::cerr << "MAPS warmup failed; no tracked results\n";
      return false;
    }
    MarketSnapshot snap(&w.grid, 0, w.tasks, w.workers);
    std::vector<double> prices;
    TrackedResult r;
    r.name = "maps_price_round";
    r.problem_size = tasks_n;
    r.ns_per_op = TimeOp(
        [&] {
          if (!strategy.PriceRound(snap, &prices).ok()) std::abort();
        },
        &r.iterations);
    r.peak_bytes = strategy.peak_round_bytes();
    results.push_back(r);

    // Same round with a lent pool: the maximizer precompute shards over it
    // (bit-identical prices). problem_size records the thread count so the
    // JSON pairs the sharded trajectory with the serial one, mirroring the
    // other *_pooled entries.
    {
      ThreadPool pool(ThreadPool::DefaultThreadCount());
      Maps sharded(opts);
      sharded.LendPool(&pool);
      DemandOracle sharded_history = w.oracle.Fork(9);
      if (!sharded.Warmup(w.grid, &sharded_history).ok()) {
        std::cerr << "MAPS sharded warmup failed; no tracked results\n";
        return false;
      }
      TrackedResult sr;
      sr.name = "maps_price_round_sharded";
      sr.problem_size = pool.num_threads();
      sr.ns_per_op = TimeOp(
          [&] {
            if (!sharded.PriceRound(snap, &prices).ok()) std::abort();
          },
          &sr.iterations);
      sr.peak_bytes = sharded.peak_round_bytes();
      results.push_back(sr);
    }

    // Same market, pooled spatial-join graph build.
    GraphBuildWorkspace ws;
    BipartiteGraph g;
    TrackedResult b;
    b.name = "bipartite_graph_build";
    b.problem_size = tasks_n;
    b.ns_per_op = TimeOp(
        [&] {
          BipartiteGraph::BuildInto(snap.tasks(), snap.workers(), snap.grid(),
                                    &ws, &g);
          benchmark::DoNotOptimize(g.num_edges());
        },
        &b.iterations);
    // Peak = finished CSR plus the build workspace's transient buffers
    // (edge list, cell buckets), which dominate during assembly.
    b.peak_bytes = g.FootprintBytes() + ws.FootprintBytes();
    results.push_back(b);
  }

  // Exact oracle on a tiny instance (its cost is exponential; the tracked
  // number guards the one-build-per-invocation and workspace pooling).
  {
    auto grid = GridPartition::Make(Rect{0, 0, 20, 20}, 2, 2).ValueOrDie();
    Rng rng(7);
    std::vector<Task> tasks;
    std::vector<Worker> workers;
    // Clamp to the exact enumerator's 25-task cap (2^n worlds) so up-scale
    // runs (MAPS_BENCH_SCALE > 2) don't trip its hard check.
    const int num_tasks =
        std::min(20, std::max(4, static_cast<int>(12 * scale)));
    for (int i = 0; i < num_tasks; ++i) {
      Task t;
      t.id = i;
      t.origin = {rng.NextDouble(0, 20), rng.NextDouble(0, 20)};
      t.destination = {rng.NextDouble(0, 20), rng.NextDouble(0, 20)};
      t.distance = rng.NextDouble(0.5, 5.0);
      t.grid = grid.CellOf(t.origin);
      tasks.push_back(t);
    }
    for (int i = 0; i < num_tasks / 2; ++i) {
      Worker w;
      w.id = i;
      w.location = {rng.NextDouble(0, 20), rng.NextDouble(0, 20)};
      w.radius = 8.0;
      w.grid = grid.CellOf(w.location);
      workers.push_back(w);
    }
    MarketSnapshot snap(&grid, 0, std::move(tasks), std::move(workers));
    TabulatedDemand proto({1.0, 2.0, 3.0}, {0.9, 0.8, 0.5});
    DemandOracle oracle =
        DemandOracle::Make(ReplicateDemand(proto, grid.num_cells()), 3)
            .ValueOrDie();
    auto ladder = PriceLadder::FromPrices({1.0, 2.0, 3.0}).ValueOrDie();
    TrackedResult r;
    r.name = "oracle_search";
    r.problem_size = num_tasks;
    r.ns_per_op = TimeOp(
        [&] {
          auto best = OracleSearch(snap, oracle, ladder);
          if (!best.ok()) std::abort();
          benchmark::DoNotOptimize(best.ValueOrDie().expected_revenue);
        },
        &r.iterations, 0.5);
    // The oracle's transient peak is dominated by the one graph it builds
    // (replicated here including the build workspace it uses internally).
    GraphBuildWorkspace ows;
    BipartiteGraph og;
    BipartiteGraph::BuildInto(snap.tasks(), snap.workers(), snap.grid(),
                              &ows, &og);
    r.peak_bytes = og.FootprintBytes() + ows.FootprintBytes();
    results.push_back(r);

    // The same sweep across the thread pool (MAPS_THREADS or hardware
    // concurrency). problem_size reports the thread count so the JSON
    // captures the pooled speedup trajectory next to the serial number;
    // results are bit-identical to the serial sweep by construction.
    ThreadPool pool(ThreadPool::DefaultThreadCount());
    TrackedResult mt;
    mt.name = "oracle_search_pooled";
    mt.problem_size = pool.num_threads();
    mt.ns_per_op = TimeOp(
        [&] {
          auto best = OracleSearch(snap, oracle, ladder, &pool);
          if (!best.ok()) std::abort();
          benchmark::DoNotOptimize(best.ValueOrDie().expected_revenue);
        },
        &mt.iterations, 0.5);
    // Graph (shared, built once) plus one sweep scratch per worker — the
    // per-world workspace is three n-element vectors plus the matching
    // state, so the pooled footprint grows with the thread count and must
    // be visible in the trajectory.
    mt.peak_bytes =
        r.peak_bytes + static_cast<size_t>(pool.num_threads()) *
                           num_tasks * (sizeof(double) + sizeof(int) + 1);
    results.push_back(mt);
  }

  // Algorithm-1 warm-up probe schedule, serial vs pooled: one counter
  // stream per (grid, rung), so both variants draw identical probes and the
  // pooled run is bit-identical — the tracked pair records the wall-clock
  // trajectory of the parallelization. problem_size: total probes for the
  // serial entry, thread count for the pooled one (mirrors oracle_search).
  {
    const int grids_per_side =
        std::max(2, static_cast<int>(10 * std::sqrt(scale)));
    auto grid =
        GridPartition::Make(Rect{0, 0, 100, 100}, grids_per_side,
                            grids_per_side)
            .ValueOrDie();
    TruncatedNormalDemand proto(2.0, 1.0, 1.0, 5.0);
    DemandOracle oracle =
        DemandOracle::Make(ReplicateDemand(proto, grid.num_cells()), 17)
            .ValueOrDie();
    PricingConfig cfg;  // defaults: [1, 5], alpha = 0.5, Hoeffding budgets

    BasePricing serial(cfg);
    TrackedResult r;
    r.name = "warmup_probing";
    r.ns_per_op = TimeOp(
        [&] {
          if (!serial.Warmup(grid, &oracle).ok()) std::abort();
        },
        &r.iterations, 0.5);
    r.problem_size = static_cast<int>(
        oracle.num_probes() / std::max(1, r.iterations));
    r.peak_bytes = serial.MemoryFootprintBytes();
    results.push_back(r);

    ThreadPool pool(ThreadPool::DefaultThreadCount());
    BasePricing pooled(cfg);
    pooled.LendPool(&pool);
    TrackedResult mt;
    mt.name = "warmup_probing_pooled";
    mt.problem_size = pool.num_threads();
    mt.ns_per_op = TimeOp(
        [&] {
          if (!pooled.Warmup(grid, &oracle).ok()) std::abort();
        },
        &mt.iterations, 0.5);
    mt.peak_bytes = pooled.MemoryFootprintBytes();
    results.push_back(mt);
  }

  // Counter-streamed Monte-Carlo world enumeration, serial vs pooled: world
  // w draws from stream (seed, w) regardless of sharding, so the two
  // estimates are bit-identical and the pair measures pure speedup.
  {
    const int n = 20;
    const BipartiteGraph g = MakeRandomGraph(n, n / 2 + 1, 0.5, 5);
    std::vector<PricedTask> tasks(n);
    Rng rng(6);
    for (auto& t : tasks) {
      t.distance = rng.NextDouble(0.5, 3.0);
      t.price = rng.NextDouble(1.0, 5.0);
      t.accept_prob = rng.NextDouble(0.2, 0.9);
    }
    const int samples = std::max(256, static_cast<int>(65536 * scale));
    std::vector<PossibleWorldsWorkspace> ws;

    TrackedResult r;
    r.name = "mc_expected_revenue";
    r.problem_size = samples;
    r.ns_per_op = TimeOp(
        [&] {
          benchmark::DoNotOptimize(MonteCarloExpectedRevenue(
              g, tasks, /*seed=*/11, samples, /*pool=*/nullptr, &ws));
        },
        &r.iterations, 0.5);
    for (const auto& w : ws) r.peak_bytes += w.FootprintBytes();
    results.push_back(r);

    ThreadPool pool(ThreadPool::DefaultThreadCount());
    std::vector<PossibleWorldsWorkspace> pws;
    TrackedResult mt;
    mt.name = "mc_expected_revenue_pooled";
    mt.problem_size = pool.num_threads();
    mt.ns_per_op = TimeOp(
        [&] {
          benchmark::DoNotOptimize(MonteCarloExpectedRevenue(
              g, tasks, /*seed=*/11, samples, &pool, &pws));
        },
        &mt.iterations, 0.5);
    for (const auto& w : pws) mt.peak_bytes += w.FootprintBytes();
    results.push_back(mt);
  }

  // End-to-end period throughput, serial vs pipelined: the pipelined run
  // prebuilds period t+1's task-side snapshot on the pool while period t is
  // priced and matched (SimOptions::pipeline_periods); results are
  // bit-identical, so the pair measures pure overlap. A fixed repetition
  // count with a freshly warmed strategy per rep (warm-up outside the
  // timed region) keeps every timed run identical work — a time-budgeted
  // loop on one strategy would accumulate UCB state at a machine-dependent
  // rate and drift the gated metric. problem_size: periods per run for the
  // serial entry, thread count for the pipelined one.
  {
    SyntheticConfig cfg;
    cfg.num_tasks = std::max(400, static_cast<int>(20000 * scale));
    cfg.num_workers = std::max(100, static_cast<int>(5000 * scale));
    cfg.num_periods = std::max(10, static_cast<int>(100 * scale));
    cfg.seed = 99;
    Workload w = GenerateSynthetic(cfg).ValueOrDie();
    constexpr int kSimReps = 3;

    // Returns mean ns per simulation run, or a negative value on failure.
    const auto time_sim = [&](const SimOptions& options, size_t* bytes) {
      double total_sec = 0.0;
      for (int rep = 0; rep < kSimReps; ++rep) {
        MapsOptions mopts;
        Maps strategy(mopts);
        DemandOracle history = w.oracle.Fork(9);
        if (!strategy.Warmup(w.grid, &history).ok()) return -1.0;
        const auto start = std::chrono::steady_clock::now();
        auto result = RunSimulation(w, &strategy, options);
        total_sec += std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
        if (!result.ok()) return -1.0;
        benchmark::DoNotOptimize(result.ValueOrDie().total_revenue);
        *bytes = result.ValueOrDie().memory_bytes;
      }
      return total_sec * 1e9 / kSimReps;
    };

    SimOptions serial_opts;
    serial_opts.skip_warmup = true;
    TrackedResult r;
    r.name = "simulator_periods";
    r.problem_size = cfg.num_periods;
    r.iterations = kSimReps;
    r.ns_per_op = time_sim(serial_opts, &r.peak_bytes);

    ThreadPool pool(ThreadPool::DefaultThreadCount());
    SimOptions pipe_opts;
    pipe_opts.skip_warmup = true;
    pipe_opts.engine.pipeline_periods = true;
    pipe_opts.engine.pool = &pool;
    TrackedResult mt;
    mt.name = "simulator_periods_pipelined";
    mt.problem_size = pool.num_threads();
    mt.iterations = kSimReps;
    mt.ns_per_op = time_sim(pipe_opts, &mt.peak_bytes);

    if (r.ns_per_op < 0.0 || mt.ns_per_op < 0.0) {
      std::cerr << "MAPS simulation failed; no tracked results\n";
      return false;
    }
    results.push_back(r);
    results.push_back(mt);
  }

  // Online-engine period throughput: the same market class fed through the
  // MarketEngine event API (AddWorker/SubmitTask/ClosePeriod) instead of
  // RunSimulation — the serving path a live deployment pays for. ns_per_op
  // is per CLOSED PERIOD. The pipelined entry bulk-stages each next period
  // (StageNextPeriodTasks) over a pool so the task-side snapshot build
  // overlaps the close; results are bit-identical, the pair measures pure
  // overlap. Warm-up happens outside the timed region with a fresh
  // strategy per rep (same rationale as simulator_periods).
  {
    SyntheticConfig cfg;
    cfg.num_tasks = std::max(400, static_cast<int>(20000 * scale));
    cfg.num_workers = std::max(100, static_cast<int>(5000 * scale));
    cfg.num_periods = std::max(10, static_cast<int>(100 * scale));
    cfg.seed = 99;
    Workload w = GenerateSynthetic(cfg).ValueOrDie();
    // Reps are ~ms at smoke scales, so buy extra noise immunity there; at
    // full scale each rep is seconds and 3 already suffices for a min.
    const int kEngineReps = scale <= 0.1 ? 9 : 3;

    std::vector<std::pair<size_t, size_t>> range(w.num_periods);
    {
      size_t i = 0;
      for (int32_t t = 0; t < w.num_periods; ++t) {
        const size_t begin = i;
        while (i < w.tasks.size() && w.tasks[i].period == t) ++i;
        range[t] = {begin, i};
      }
    }

    // One full replay; returns seconds for the timed region, or negative on
    // failure. `metrics` non-null attaches a live registry + trace so the
    // metrics-on variant measures the fully-instrumented close.
    const auto run_once = [&](ThreadPool* pool, bool staged,
                              obs::MetricsRegistry* metrics,
                              obs::TraceLog* trace, size_t* bytes) -> double {
      MapsOptions mopts;
      Maps strategy(mopts);
      DemandOracle history = w.oracle.Fork(9);
      if (!strategy.Warmup(w.grid, &history).ok()) return -1.0;
      EngineOptions engine_options;
      engine_options.lifecycle = w.lifecycle;
      engine_options.pool = pool;
      engine_options.metrics = metrics;
      engine_options.trace = trace;
      const auto start = std::chrono::steady_clock::now();
      MarketEngine engine(&w.grid, &strategy, engine_options);
      size_t next_entry = 0;
      PeriodOutcome outcome;
      const auto submit = [&](int32_t t) {
        for (size_t i = range[t].first; i < range[t].second; ++i) {
          if (!engine.SubmitTask(w.tasks[i], w.valuations[i]).ok()) {
            std::abort();
          }
        }
      };
      submit(0);
      for (int32_t t = 0; t < w.num_periods; ++t) {
        if (staged && t + 1 < w.num_periods) {
          const auto [begin, end] = range[t + 1];
          if (!engine
                   .StageNextPeriodTasks(w.tasks.data() + begin,
                                         w.tasks.data() + end,
                                         w.valuations.data() + begin)
                   .ok()) {
            std::abort();
          }
        }
        while (next_entry < w.workers.size() &&
               w.workers[next_entry].period == t) {
          if (!engine.AddWorker(w.workers[next_entry]).ok()) std::abort();
          ++next_entry;
        }
        if (!engine.ClosePeriod(&outcome).ok()) return -1.0;
        if (!staged && t + 1 < w.num_periods) submit(t + 1);
      }
      const double sec = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
      *bytes = engine.peak_platform_bytes() + engine.peak_strategy_bytes();
      return sec;
    };

    // Best-of-reps ns per closed period: min (not mean) so one noisy rep
    // cannot distort a key.
    const auto time_engine = [&](ThreadPool* pool, bool staged,
                                 size_t* bytes) -> double {
      double best_sec = std::numeric_limits<double>::infinity();
      for (int rep = 0; rep < kEngineReps; ++rep) {
        const double sec = run_once(pool, staged, nullptr, nullptr, bytes);
        if (sec < 0.0) return -1.0;
        best_sec = std::min(best_sec, sec);
      }
      return best_sec * 1e9 / w.num_periods;
    };

    // engine_period and engine_period_metrics_on are measured as an
    // INTERLEAVED pair (bare rep, instrumented rep, bare rep, ...) so both
    // sample the same machine conditions: the compare_bench.py overhead
    // gate holds their ratio to 1.05, which clock drift between two
    // separate measurement windows would otherwise swamp at small scales.
    obs::MetricsRegistry registry;
    obs::TraceLog trace;
    TrackedResult r;
    r.name = "engine_period";
    r.problem_size = cfg.num_periods;
    r.iterations = kEngineReps;
    TrackedResult ot;
    ot.name = "engine_period_metrics_on";
    ot.problem_size = cfg.num_periods;
    ot.iterations = kEngineReps;
    {
      double best_plain = std::numeric_limits<double>::infinity();
      double best_on = std::numeric_limits<double>::infinity();
      bool failed = false;
      for (int rep = 0; rep < kEngineReps && !failed; ++rep) {
        const double plain_sec =
            run_once(nullptr, false, nullptr, nullptr, &r.peak_bytes);
        const double on_sec =
            run_once(nullptr, false, &registry, &trace, &ot.peak_bytes);
        failed = plain_sec < 0.0 || on_sec < 0.0;
        best_plain = std::min(best_plain, plain_sec);
        best_on = std::min(best_on, on_sec);
      }
      r.ns_per_op = failed ? -1.0 : best_plain * 1e9 / w.num_periods;
      ot.ns_per_op = failed ? -1.0 : best_on * 1e9 / w.num_periods;
    }

    ThreadPool pool(ThreadPool::DefaultThreadCount());
    TrackedResult mt;
    mt.name = "engine_period_pipelined";
    mt.problem_size = pool.num_threads();
    mt.iterations = kEngineReps;
    mt.ns_per_op = time_engine(&pool, true, &mt.peak_bytes);

    if (r.ns_per_op < 0.0 || mt.ns_per_op < 0.0 || ot.ns_per_op < 0.0) {
      std::cerr << "engine replay failed; no tracked results\n";
      return false;
    }
    results.push_back(r);
    results.push_back(mt);
    results.push_back(ot);
  }

  // Telemetry hot-path unit cost: ns per Histogram::Record (bit-width bucket
  // index + three relaxed atomics). This is what every instrumented span
  // pays per sample when a registry is attached; tracked so a regression in
  // the recording path itself is visible independent of the engine keys.
  {
    obs::Histogram hist;
    TrackedResult r;
    r.name = "obs_histogram_record";
    constexpr int kBatch = 4096;
    r.problem_size = kBatch;
    r.ns_per_op = TimeOp(
                      [&]() {
                        int64_t v = 1;
                        for (int i = 0; i < kBatch; ++i) {
                          hist.Record(v);
                          v = (v * 2862933555777941757LL + 3037000493LL) &
                              0x7fffffffffff;
                        }
                        return hist.count();
                      },
                      &r.iterations) /
                  kBatch;
    r.peak_bytes = sizeof(obs::Histogram);
    results.push_back(r);
  }

  // Sharded close throughput: the BM_ShardedEnginePeriod burst market
  // (even band load, BaseP constant price so the matching core stays
  // loaded every period) served by a K-region ShardedMarketEngine, K in
  // {1, 2, 4}. k1 measures the router's overhead over the monolith (same
  // serial close, one region); k2/k4 close regions concurrently over a
  // pool. The split win is mostly ALGORITHMIC — max-weight matching is
  // superlinear, so K bands of n/K beat one market of n even on one core —
  // which is why these keys are gated while the purely pool-bound keys are
  // not. The k4/k1 ratio is the number the acceptance bar reads.
  {
    const int tasks_n = std::max(256, static_cast<int>(4096 * scale));
    SyntheticConfig cfg;
    cfg.num_tasks = tasks_n;
    cfg.num_workers = tasks_n / 2;
    cfg.num_periods = 1;
    cfg.temporal_sigma = 0.0001;
    cfg.spatial_sigma = 35.0;
    cfg.sharded_regions = 4;  // same workload for every K
    cfg.seed = 99;
    Workload w = GenerateSynthetic(cfg).ValueOrDie();
    ThreadPool pool(ThreadPool::DefaultThreadCount());
    for (const int num_regions : {1, 2, 4}) {
      const RegionPartition partition =
          RegionPartition::Make(w.grid, num_regions).ValueOrDie();
      PricingConfig pricing_config;
      std::vector<std::unique_ptr<BasePricing>> owned;
      std::vector<PricingStrategy*> strategies;
      for (int k = 0; k < num_regions; ++k) {
        auto strategy = std::make_unique<BasePricing>(pricing_config);
        DemandOracle history = w.oracle.Fork(9);
        if (!strategy->Warmup(w.grid, &history).ok()) {
          std::cerr << "BaseP warmup failed; no tracked results\n";
          return false;
        }
        strategies.push_back(strategy.get());
        owned.push_back(std::move(strategy));
      }
      EngineOptions engine_options;
      engine_options.lifecycle.single_use = false;
      engine_options.lifecycle.speed = 1e12;
      if (num_regions > 1) engine_options.pool = &pool;
      ShardedMarketEngine engine(&w.grid, &partition, strategies,
                                 engine_options);
      for (const Worker& worker : w.workers) {
        if (!engine.AddWorker(worker).ok()) std::abort();
      }
      PeriodOutcome outcome;
      TrackedResult r;
      r.name = "sharded_engine_period_k" + std::to_string(num_regions);
      r.problem_size = tasks_n;
      r.ns_per_op = TimeOp(
          [&] {
            for (size_t i = 0; i < w.tasks.size(); ++i) {
              if (!engine.SubmitTask(w.tasks[i], w.valuations[i]).ok()) {
                std::abort();
              }
            }
            if (!engine.ClosePeriod(&outcome).ok()) std::abort();
          },
          &r.iterations);
      r.peak_bytes = engine.peak_platform_bytes() + engine.peak_strategy_bytes();
      results.push_back(r);
    }

    // Degraded serving: the same K=2 burst market with failure domains on
    // and a seeded coin-flip close failure on region 1 (~half the closes
    // quarantine it, the other half recover and drain the deferral queue).
    // ns_per_op averages the quarantine close (rewind + deferral sweep +
    // cached-quote serving) and the recovery close (resubmission) — the
    // price of staying up through a region fault, gated against the
    // healthy sharded_engine_period_k2 trajectory.
    {
      const RegionPartition partition =
          RegionPartition::Make(w.grid, 2).ValueOrDie();
      PricingConfig pricing_config;
      std::vector<std::unique_ptr<BasePricing>> owned;
      std::vector<PricingStrategy*> strategies;
      for (int k = 0; k < 2; ++k) {
        auto strategy = std::make_unique<BasePricing>(pricing_config);
        DemandOracle history = w.oracle.Fork(9);
        if (!strategy->Warmup(w.grid, &history).ok()) {
          std::cerr << "BaseP warmup failed; no tracked results\n";
          return false;
        }
        strategies.push_back(strategy.get());
        owned.push_back(std::move(strategy));
      }
      EngineOptions engine_options;
      engine_options.lifecycle.single_use = false;
      engine_options.lifecycle.speed = 1e12;
      engine_options.pool = &pool;
      engine_options.failure_domains.enabled = true;
      // Never permanently fail: the bench wants the quarantine/recovery
      // steady state, not a dead region.
      engine_options.failure_domains.max_recovery_attempts = 1 << 20;
      ShardedMarketEngine engine(&w.grid, &partition, strategies,
                                 engine_options);
      for (const Worker& worker : w.workers) {
        if (!engine.AddWorker(worker).ok()) std::abort();
      }
      ScopedFaultPlan plan("seed=42;close_fail@r1~0.5");
      PeriodOutcome outcome;
      TrackedResult r;
      r.name = "sharded_engine_period_degraded";
      r.problem_size = tasks_n;
      r.ns_per_op = TimeOp(
          [&] {
            for (size_t i = 0; i < w.tasks.size(); ++i) {
              if (!engine.SubmitTask(w.tasks[i], w.valuations[i]).ok()) {
                std::abort();
              }
            }
            if (!engine.ClosePeriod(&outcome).ok()) std::abort();
          },
          &r.iterations);
      r.peak_bytes = engine.peak_platform_bytes() + engine.peak_strategy_bytes();
      results.push_back(r);
    }
  }

  // Checkpoint save/restore on a mid-run engine: serialize the full
  // resumable state (worker lifecycle table, staged tasks, RNG position,
  // MAPS learned state) and rebuild a second engine from the bytes.
  // ns_per_op is one full save (resp. restore); peak_bytes reports the
  // checkpoint blob size, the other axis worth guarding.
  {
    SyntheticConfig cfg;
    cfg.num_tasks = std::max(400, static_cast<int>(20000 * scale));
    cfg.num_workers = std::max(100, static_cast<int>(5000 * scale));
    cfg.num_periods = 20;
    cfg.seed = 99;
    Workload w = GenerateSynthetic(cfg).ValueOrDie();
    MapsOptions mopts;
    Maps strategy(mopts);
    DemandOracle history = w.oracle.Fork(9);
    if (!strategy.Warmup(w.grid, &history).ok()) {
      std::cerr << "MAPS warmup failed; no tracked results\n";
      return false;
    }
    EngineOptions engine_options;
    engine_options.lifecycle = w.lifecycle;
    MarketEngine engine(&w.grid, &strategy, engine_options);
    size_t task_i = 0;
    size_t worker_j = 0;
    PeriodOutcome outcome;
    for (int32_t t = 0; t < w.num_periods; ++t) {
      while (task_i < w.tasks.size() && w.tasks[task_i].period == t) {
        if (!engine.SubmitTask(w.tasks[task_i], w.valuations[task_i]).ok()) {
          std::abort();
        }
        ++task_i;
      }
      while (worker_j < w.workers.size() &&
             w.workers[worker_j].period == t) {
        if (!engine.AddWorker(w.workers[worker_j]).ok()) std::abort();
        ++worker_j;
      }
      if (!engine.ClosePeriod(&outcome).ok()) std::abort();
    }

    std::string blob;
    TrackedResult save;
    save.name = "checkpoint_save";
    save.problem_size = cfg.num_workers;
    save.ns_per_op = TimeOp(
        [&] {
          blob.clear();
          if (!engine.SaveCheckpoint(&blob).ok()) std::abort();
        },
        &save.iterations);
    save.peak_bytes = blob.size();
    results.push_back(save);

    Maps fresh(mopts);  // never warmed: the restore supplies its state
    MarketEngine target(&w.grid, &fresh, engine_options);
    TrackedResult restore;
    restore.name = "checkpoint_restore";
    restore.problem_size = cfg.num_workers;
    restore.ns_per_op = TimeOp(
        [&] {
          if (!target.RestoreFromCheckpoint(blob).ok()) std::abort();
        },
        &restore.iterations);
    restore.peak_bytes = blob.size();
    results.push_back(restore);
  }

  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << " for writing\n";
    return false;
  }
  out << "{\n  \"schema\": \"maps-bench-micro-v1\",\n  \"scale\": " << scale
      << ",\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const TrackedResult& r = results[i];
    out << "    {\"name\": \"" << r.name << "\", \"ns_per_op\": " << r.ns_per_op
        << ", \"peak_bytes\": " << r.peak_bytes
        << ", \"iterations\": " << r.iterations
        << ", \"problem_size\": " << r.problem_size << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return true;
}

}  // namespace
}  // namespace maps

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const char* json_path = std::getenv("MAPS_BENCH_JSON");
  const std::string path =
      json_path != nullptr ? json_path : "BENCH_micro.json";
  if (!maps::EmitTrackedJson(path)) return 1;
  std::cout << "wrote " << path << "\n";
  return 0;
}
