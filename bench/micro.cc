// Google-benchmark micro-benchmarks for the computational kernels: bipartite
// graph construction, the three matchers, the possible-world enumerator,
// demand sampling, and a full MAPS pricing round.

#include <benchmark/benchmark.h>

#include "graph/bipartite_graph.h"
#include "graph/hopcroft_karp.h"
#include "graph/kuhn.h"
#include "graph/max_weight_matching.h"
#include "graph/possible_worlds.h"
#include "market/demand_model.h"
#include "pricing/maps.h"
#include "rng/random.h"
#include "sim/synthetic.h"

namespace maps {
namespace {

BipartiteGraph MakeRandomGraph(int nl, int nr, double density,
                               uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<int, int>> edges;
  for (int l = 0; l < nl; ++l) {
    for (int r = 0; r < nr; ++r) {
      if (rng.NextBernoulli(density)) edges.push_back({l, r});
    }
  }
  return BipartiteGraph::FromEdges(nl, nr, std::move(edges));
}

void BM_KuhnMatching(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const BipartiteGraph g = MakeRandomGraph(n, n, 8.0 / n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(KuhnMatching(g).size);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_KuhnMatching)->Range(64, 4096)->Complexity();

void BM_HopcroftKarp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const BipartiteGraph g = MakeRandomGraph(n, n, 8.0 / n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HopcroftKarpMatching(g).size);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_HopcroftKarp)->Range(64, 4096)->Complexity();

void BM_MaxWeightTaskMatching(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const BipartiteGraph g = MakeRandomGraph(n, n, 8.0 / n, 2);
  Rng rng(3);
  std::vector<double> weights(n);
  for (auto& w : weights) w = rng.NextDouble(0.1, 10.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaxWeightTaskMatching(g, weights).total_weight);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_MaxWeightTaskMatching)->Range(64, 4096)->Complexity();

void BM_SpatialGraphBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto grid = GridPartition::Make(Rect{0, 0, 100, 100}, 10, 10).ValueOrDie();
  Rng rng(4);
  std::vector<Task> tasks(n);
  std::vector<Worker> workers(n);
  for (int i = 0; i < n; ++i) {
    tasks[i].id = i;
    tasks[i].origin = {rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    tasks[i].grid = grid.CellOf(tasks[i].origin);
    workers[i].id = i;
    workers[i].location = {rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    workers[i].radius = 15.0;
    workers[i].grid = grid.CellOf(workers[i].location);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BipartiteGraph::Build(tasks, workers, grid).num_edges());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SpatialGraphBuild)->Range(64, 4096)->Complexity();

void BM_PossibleWorldEnumeration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const BipartiteGraph g = MakeRandomGraph(n, n / 2 + 1, 0.5, 5);
  std::vector<PricedTask> tasks(n);
  Rng rng(6);
  for (auto& t : tasks) {
    t.distance = rng.NextDouble(0.5, 3.0);
    t.price = rng.NextDouble(1.0, 5.0);
    t.accept_prob = rng.NextDouble(0.2, 0.9);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExactExpectedRevenue(g, tasks));
  }
}
BENCHMARK(BM_PossibleWorldEnumeration)->DenseRange(4, 16, 4);

void BM_TruncatedNormalSample(benchmark::State& state) {
  TruncatedNormalDemand demand(2.0, 1.0, 1.0, 5.0);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(demand.Sample(rng));
  }
}
BENCHMARK(BM_TruncatedNormalSample);

void BM_MyersonPriceScan(benchmark::State& state) {
  TruncatedNormalDemand demand(2.0, 1.0, 1.0, 5.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(demand.MyersonPrice(1.0, 5.0));
  }
}
BENCHMARK(BM_MyersonPriceScan);

void BM_MapsPriceRound(benchmark::State& state) {
  const int tasks_n = static_cast<int>(state.range(0));
  SyntheticConfig cfg;
  cfg.num_tasks = tasks_n;
  cfg.num_workers = tasks_n / 4;
  cfg.num_periods = 1;  // everything lands in one snapshot
  cfg.temporal_sigma = 0.0001;
  cfg.seed = 99;
  Workload w = GenerateSynthetic(cfg).ValueOrDie();
  MapsOptions opts;
  Maps strategy(opts);
  DemandOracle history = w.oracle.Fork(9);
  if (!strategy.Warmup(w.grid, &history).ok()) {
    state.SkipWithError("warmup failed");
    return;
  }
  MarketSnapshot snap(&w.grid, 0, w.tasks, w.workers);
  std::vector<double> prices;
  for (auto _ : state) {
    if (!strategy.PriceRound(snap, &prices).ok()) {
      state.SkipWithError("price round failed");
      return;
    }
    benchmark::DoNotOptimize(prices.data());
  }
  state.SetComplexityN(tasks_n);
}
BENCHMARK(BM_MapsPriceRound)->Range(256, 4096)->Complexity();

}  // namespace
}  // namespace maps

BENCHMARK_MAIN();
