// Fig. 10 (appendix D): revenue / time / memory vs the rate alpha of an
// exponential demand distribution in {0.5, 0.75, 1.0, 1.25, 1.5}.

#include "bench_common.h"

int main() {
  using maps::bench::SyntheticPoint;
  std::vector<SyntheticPoint> points;
  for (double alpha : {0.5, 0.75, 1.0, 1.25, 1.5}) {
    maps::SyntheticConfig cfg;
    cfg.demand_family = maps::SyntheticConfig::DemandFamily::kExponential;
    cfg.demand_rate = alpha;
    char label[16];
    std::snprintf(label, sizeof(label), "%.2f", alpha);
    points.push_back({label, cfg});
  }
  return maps::bench::RunSyntheticSweep("fig10_exponential", "alpha",
                                        points);
}
