// Fig. 7 column 4 (d, h, l): revenue / time / memory vs the number of grid
// cells G in {5x5, 10x10, 15x15, 20x20, 25x25} (Table 3).

#include "bench_common.h"

int main() {
  using maps::bench::SyntheticPoint;
  std::vector<SyntheticPoint> points;
  for (int side : {5, 10, 15, 20, 25}) {
    maps::SyntheticConfig cfg;
    cfg.grid_rows = side;
    cfg.grid_cols = side;
    points.push_back({std::to_string(side * side), cfg});
  }
  return maps::bench::RunSyntheticSweep("fig7_grids", "G", points);
}
