// Fig. 8 column 3 (c, g, k): Beijing surrogate dataset #1 (5 pm - 7 pm,
// |W| = 28210, |R| = 113372), revenue / time / memory vs the worker
// availability duration delta_w in {5, 10, 15, 20, 25}.
//
// The default applies a 0.1 population scale for turnaround time; run with
// MAPS_BENCH_SCALE=1 for the published population sizes.

#include "bench_common.h"

int main() {
  using maps::bench::BeijingPoint;
  const bool scaled = std::getenv("MAPS_BENCH_SCALE") == nullptr;
  std::vector<BeijingPoint> points;
  for (int d : {5, 10, 15, 20, 25}) {
    maps::BeijingConfig cfg;
    cfg.window = maps::BeijingConfig::Window::kEveningPeak;
    cfg.worker_duration = d;
    cfg.population_scale = scaled ? 0.1 : 1.0;
    points.push_back({std::to_string(d), cfg});
  }
  return maps::bench::RunBeijingSweep("fig8_beijing1", "delta_w", points);
}
