// Fig. 8 column 1 (a, e, i): revenue / time / memory vs the worker range
// radius a_w in {5, 10, 15, 20, 25} (Table 3).

#include "bench_common.h"

int main() {
  using maps::bench::SyntheticPoint;
  std::vector<SyntheticPoint> points;
  for (int radius : {5, 10, 15, 20, 25}) {
    maps::SyntheticConfig cfg;
    cfg.worker_radius = radius;
    points.push_back({std::to_string(radius), cfg});
  }
  return maps::bench::RunSyntheticSweep("fig8_radius", "a_w", points);
}
