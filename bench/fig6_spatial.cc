// Fig. 6 column 4 (d, h, l): revenue / time / memory vs the mean of the
// task spatial distribution (diagonal fraction of the region) in
// {0.1 .. 0.9}; the worker spatial mean stays at the center.

#include "bench_common.h"

int main() {
  using maps::bench::SyntheticPoint;
  std::vector<SyntheticPoint> points;
  for (double mean : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    maps::SyntheticConfig cfg;
    cfg.spatial_mean = mean;
    char label[16];
    std::snprintf(label, sizeof(label), "%.1f", mean);
    points.push_back({label, cfg});
  }
  return maps::bench::RunSyntheticSweep("fig6_spatial", "mean", points);
}
