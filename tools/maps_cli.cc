// maps_cli: run any strategy on any workload from the command line.
//
//   maps_cli synthetic [--workers=5000 --tasks=20000 --periods=400
//                       --grid=10 --radius=15 --temporal-mu=0.5
//                       --spatial-mean=0.5 --demand-mu=2 --demand-sigma=1
//                       --demand=normal|exponential --metric=euclidean|
//                       manhattan|road --seed=42
//                       --sharded-regions=1 --region-skew=0
//                       --boundary-frac=0 --emit-replay=<out.jsonl>]
//   maps_cli beijing   [--window=peak|night --duration=15 --scale=0.1
//                       --seed=2016]
//   maps_cli replay    --events=events.jsonl
//                      [--grid=4 --extent=100 --strategy=MAPS
//                       --single-use=true --speed=1 --reposition=0
//                       --threads=0 --mc_worlds=0 --regions=1
//                       --demand-mu=2 --demand-sigma=1 --oracle-seed=17
//                       --checkpoint_every=0 --checkpoint_dir=.
//                       --checkpoint_keep=0
//                       --restore_from=<file.ckpt> --skip_bad_events=false
//                       --failure_domains=false --fault_plan=<plan>
//                       --metrics_out=<METRICS.json>
//                       --trace_out=<trace.jsonl>]
//
// `replay` drives the online MarketEngine from a JSONL event file (see
// src/service/replay_log.h for the schema): task submissions, worker
// arrivals/departures, externally observed acceptance, period closes. This
// expresses scenarios the batch workloads cannot — mid-horizon worker
// churn, bursty submissions, feedback-delayed periods. The strategy warms
// up against a truncated-normal demand oracle built from --demand-mu /
// --demand-sigma over [pmin, pmax]; --mc_worlds>0 also reports each
// period's expected revenue under that assumed demand.
//
// The event file is streamed line-at-a-time — a multi-million-event log
// never resides in memory. --regions=K shards the grid into K contiguous
// row bands, each served by its own engine + strategy instance, closed
// concurrently (with --threads) and reconciled by the deterministic
// boundary-stitch pass (DESIGN.md §13); checkpoints then cover all K
// regions in one container.
//
// Checkpointing: --checkpoint_every=N saves the engine (and learned
// strategy state) to --checkpoint_dir every N closed periods;
// --restore_from=<file> resumes a previous run — warm-up is skipped, the
// events already consumed before the checkpointed period boundary are
// skipped, and the resumed run is bit-identical to the uninterrupted one
// (DESIGN.md §12). --skip_bad_events=true drops malformed event lines
// with a warning instead of aborting. --checkpoint_keep=N rotates the
// checkpoint directory down to the N newest checkpoint_<period>.ckpt files
// after every save (0 keeps everything, the old behavior that filled disks
// on long replays).
//
// Robustness drills: --failure_domains=true (with --regions>1) quarantines
// a region whose close fails instead of failing the period — its cells
// serve cached quotes and its tasks defer until the deterministic retry
// succeeds (DESIGN.md §15). --fault_plan=<plan> arms the deterministic
// fault injector for the run, e.g. --fault_plan='close_fail@r1p3' (grammar
// in docs/fault_injection.md).
//
// Telemetry: --metrics_out=<path> writes an obs/v1 METRICS.json at the end
// of the replay (docs/observability.md); --trace_out=<path> writes the
// structured event trace as JSONL. Either flag enables the in-process
// registry + trace; without both, engines run with telemetry disabled.
// Telemetry never changes engine outputs (bit-identity is tested), and the
// "deterministic" slice of METRICS.json is byte-stable across runs of the
// same log at any thread count.
//
// Operator diagnostics (degraded-region, checkpoint-skip, prune lines) go
// to stderr via util/logging so stdout stays a clean report stream.
//
// Common flags:
//   --strategy=MAPS|BaseP|SDR|SDE|CappedUCB|all   (default all; replay
//                                                  takes a single name)
//   --alpha=0.25 --pmin=1 --pmax=5                 pricing ladder
//   --smooth=0.0 --cap=<price>                     post-processing
//   --reposition=0.0                               idle-driver migration
//   --csv=<path>                                   write results as CSV
//
// Unknown or misspelled flags are an error, never silently ignored.

#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>

#include "geo/region_partition.h"
#include "market/demand_model.h"
#include "obs/export.h"
#include "pricing/price_postprocess.h"
#include "service/checkpoint.h"
#include "service/market_engine.h"
#include "service/replay_driver.h"
#include "service/replay_log.h"
#include "service/sharded_engine.h"
#include "sim/beijing.h"
#include "sim/metrics.h"
#include "sim/replay_export.h"
#include "sim/synthetic.h"
#include "util/fault_injector.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace maps {
namespace {

int Fail(const std::string& message) {
  std::cerr << "maps_cli: " << message << "\n";
  return 1;
}

Result<Workload> BuildWorkload(const std::string& kind, const FlagSet& flags) {
  if (kind == "synthetic") {
    SyntheticConfig cfg;
    cfg.num_workers = static_cast<int>(flags.GetInt("workers", 5000));
    cfg.num_tasks = static_cast<int>(flags.GetInt("tasks", 20000));
    cfg.num_periods = static_cast<int>(flags.GetInt("periods", 400));
    const int grid = static_cast<int>(flags.GetInt("grid", 10));
    cfg.grid_rows = grid;
    cfg.grid_cols = grid;
    cfg.worker_radius = flags.GetDouble("radius", 15.0);
    cfg.temporal_mu = flags.GetDouble("temporal-mu", 0.5);
    cfg.spatial_mean = flags.GetDouble("spatial-mean", 0.5);
    cfg.demand_mu = flags.GetDouble("demand-mu", 2.0);
    cfg.demand_sigma = flags.GetDouble("demand-sigma", 1.0);
    cfg.demand_rate = flags.GetDouble("demand-rate", 1.0);
    cfg.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    cfg.sharded_regions =
        static_cast<int>(flags.GetInt("sharded-regions", 1));
    cfg.region_skew = flags.GetDouble("region-skew", 0.0);
    cfg.boundary_worker_frac = flags.GetDouble("boundary-frac", 0.0);
    const std::string family = flags.GetString("demand", "normal");
    if (family == "exponential") {
      cfg.demand_family = SyntheticConfig::DemandFamily::kExponential;
    } else if (family != "normal") {
      return Status::InvalidArgument("unknown --demand=" + family);
    }
    const std::string metric = flags.GetString("metric", "euclidean");
    if (metric == "manhattan") {
      cfg.distance_metric = SyntheticConfig::DistanceMetric::kManhattan;
    } else if (metric == "road") {
      cfg.distance_metric = SyntheticConfig::DistanceMetric::kRoadNetwork;
    } else if (metric != "euclidean") {
      return Status::InvalidArgument("unknown --metric=" + metric);
    }
    return GenerateSynthetic(cfg);
  }
  if (kind == "beijing") {
    BeijingConfig cfg;
    const std::string window = flags.GetString("window", "peak");
    if (window == "night") {
      cfg.window = BeijingConfig::Window::kLateNight;
    } else if (window != "peak") {
      return Status::InvalidArgument("unknown --window=" + window);
    }
    cfg.worker_duration = static_cast<int>(flags.GetInt("duration", 15));
    cfg.population_scale = flags.GetDouble("scale", 0.1);
    cfg.seed = static_cast<uint64_t>(flags.GetInt("seed", 2016));
    return GenerateBeijing(cfg);
  }
  return Status::InvalidArgument(
      "unknown workload '" + kind + "' (expected synthetic|beijing|replay)");
}

/// Telemetry sinks for one replay run. Both pointers are null when neither
/// --metrics_out nor --trace_out was given — the engines then run with
/// telemetry fully disabled (one branch per site, DESIGN.md §16).
struct ObsSinks {
  obs::MetricsRegistry* registry = nullptr;
  obs::TraceLog* trace = nullptr;
  std::string metrics_out;
  std::string trace_out;
};

/// Detaches the run-local TraceLog from the process-wide fault injector on
/// every exit path of RunReplay (the injector outlives the trace).
struct FaultTraceDetach {
  ~FaultTraceDetach() { FaultInjector::Global().AttachTrace(nullptr); }
};

/// The engine-agnostic tail of `maps_cli replay`: streams the event file
/// through `engine` (monolithic or sharded) with per-close table rows and
/// optional periodic checkpoints, then prints the run summary.
const char* RegionStateName(RegionHealth::State state) {
  switch (state) {
    case RegionHealth::State::kNormal:
      return "normal";
    case RegionHealth::State::kQuarantined:
      return "quarantined";
    case RegionHealth::State::kRecovered:
      return "recovered";
    case RegionHealth::State::kFailed:
      return "FAILED";
  }
  return "?";
}

template <typename Engine>
int DriveReplayAndReport(Engine* engine, ReplayEventStream* stream,
                         const GridPartition& grid, const std::string& which,
                         const std::string& csv, int64_t checkpoint_every,
                         const std::string& checkpoint_dir,
                         int64_t checkpoint_keep, const ObsSinks& sinks) {
  Table table({"period", "tasks", "workers", "accepted", "matched",
               "revenue", "mc_revenue"});
  // Checkpoint file IO is timed here (not in the engine) because the engine
  // only ever sees blobs; paths and rotation are a driver concern.
  obs::Histogram* file_write_ns = nullptr;
  obs::Histogram* prune_ns = nullptr;
  if (sinks.registry != nullptr) {
    file_write_ns = sinks.registry->GetHistogram(
        "checkpoint.file_write_ns", obs::Determinism::kWallClock);
    prune_ns = sinks.registry->GetHistogram("checkpoint.prune_ns",
                                            obs::Determinism::kWallClock);
  }
  ReplayStreamOptions drive;
  // Resume from the checkpointed boundary: everything up to and including
  // the current_period()-th close_period was already consumed.
  drive.skip_closes = engine->current_period();
  drive.on_close = [&](const PeriodOutcome& outcome) {
    if (!outcome.skipped) {
      table.AddRow(outcome.period, outcome.num_tasks,
                   outcome.num_available_workers,
                   static_cast<int64_t>(outcome.accepted.size()),
                   static_cast<int64_t>(outcome.matches.size()),
                   outcome.revenue, outcome.mc_expected_revenue);
    }
    // Operator diagnostics go to stderr via util/logging; stdout stays a
    // clean report stream that scripts can parse.
    for (const RegionHealth& h : outcome.region_health) {
      if (h.state == RegionHealth::State::kNormal) continue;
      MAPS_LOG(Info) << "degraded: region " << h.region << " "
                     << RegionStateName(h.state) << " (attempt " << h.attempts
                     << ", since period " << h.quarantined_since << ")";
    }
    if (checkpoint_every > 0 &&
        engine->current_period() % checkpoint_every == 0) {
      std::string blob;
      const Status save = engine->SaveCheckpoint(&blob);
      if (save.IsFailedPrecondition()) {
        // A quarantined deployment has no checkpointable state yet; the
        // next on-schedule save after recovery will cover this window.
        MAPS_LOG(Info) << "checkpoint skipped at period "
                       << engine->current_period() << ": " << save.message();
        return Status::OK();
      }
      MAPS_RETURN_NOT_OK(save);
      const std::string path = checkpoint_dir + "/checkpoint_" +
                               std::to_string(engine->current_period()) +
                               ".ckpt";
      {
        obs::ScopedTimer write_timer(file_write_ns);
        MAPS_RETURN_NOT_OK(WriteCheckpointFile(path, blob));
      }
      std::cout << "checkpoint: " << path << "\n";
      if (checkpoint_keep > 0) {
        std::vector<std::string> removed;
        {
          obs::ScopedTimer prune_timer(prune_ns);
          MAPS_RETURN_NOT_OK(PruneCheckpointFiles(
              checkpoint_dir, "checkpoint_",
              static_cast<int>(checkpoint_keep), &removed));
        }
        for (const std::string& pruned : removed) {
          MAPS_LOG(Info) << "pruned: " << pruned;
        }
      }
    }
    return Status::OK();
  };

  auto summary_or = ReplayEventsThroughEngine(stream, grid, engine, drive);
  if (!summary_or.ok()) {
    return Fail("event replay: " + summary_or.status().ToString());
  }
  const ReplayStreamSummary& summary = summary_or.ValueOrDie();

  std::cout << "replayed " << stream->stats().events_loaded << " events";
  if (stream->stats().lines_skipped > 0) {
    std::cout << " (" << stream->stats().lines_skipped
              << " malformed line(s) skipped)";
  }
  std::cout << ", " << engine->current_period() << " periods closed ("
            << which << ")\n\n"
            << table.ToText() << "\ntotal revenue " << summary.total_revenue
            << ", " << summary.total_accepted << " accepted, "
            << summary.total_matched << " matched, "
            << engine->strategy_seconds() << " s in the strategy\n";
  if (!csv.empty()) {
    if (Status st = table.WriteCsv(csv); !st.ok()) {
      return Fail(st.ToString());
    }
    std::cout << "wrote " << csv << "\n";
  }
  if (!sinks.metrics_out.empty() && sinks.registry != nullptr) {
    if (Status st = obs::WriteMetricsJsonFile(sinks.metrics_out,
                                              *sinks.registry, sinks.trace);
        !st.ok()) {
      return Fail(sinks.metrics_out + ": " + st.ToString());
    }
    std::cout << "wrote " << sinks.metrics_out << "\n";
  }
  if (!sinks.trace_out.empty() && sinks.trace != nullptr) {
    if (Status st = obs::WriteTraceJsonlFile(sinks.trace_out, *sinks.trace);
        !st.ok()) {
      return Fail(sinks.trace_out + ": " + st.ToString());
    }
    std::cout << "wrote " << sinks.trace_out << "\n";
  }
  return 0;
}

/// Drives the online engine from a JSONL event file.
int RunReplay(const FlagSet& flags, const PricingConfig& pricing) {
  // The common flags (see the file comment) apply here too.
  PostprocessOptions post;
  post.smoothing_lambda = flags.GetDouble("smooth", 0.0);
  if (flags.Has("cap")) post.price_cap = flags.GetDouble("cap", 5.0);
  const bool postprocess =
      post.smoothing_lambda > 0.0 || post.price_cap.has_value();
  const std::string csv = flags.GetString("csv", "");

  const std::string events_path = flags.GetString("events", "");
  const int grid_side = static_cast<int>(flags.GetInt("grid", 4));
  const double extent = flags.GetDouble("extent", 100.0);
  const std::string which = flags.GetString("strategy", "MAPS");
  const double demand_mu = flags.GetDouble("demand-mu", 2.0);
  const double demand_sigma = flags.GetDouble("demand-sigma", 1.0);
  const uint64_t oracle_seed =
      static_cast<uint64_t>(flags.GetInt("oracle-seed", 17));
  const int threads = static_cast<int>(flags.GetInt("threads", 0));
  const int mc_worlds = static_cast<int>(flags.GetInt("mc_worlds", 0));
  const int num_regions = static_cast<int>(flags.GetInt("regions", 1));
  const int64_t checkpoint_every = flags.GetInt("checkpoint_every", 0);
  const std::string checkpoint_dir = flags.GetString("checkpoint_dir", ".");
  const int64_t checkpoint_keep = flags.GetInt("checkpoint_keep", 0);
  const std::string restore_from = flags.GetString("restore_from", "");
  const std::string fault_plan_text = flags.GetString("fault_plan", "");
  const std::string metrics_out = flags.GetString("metrics_out", "");
  const std::string trace_out = flags.GetString("trace_out", "");
  ReplayLoadOptions load_options;
  load_options.skip_bad_events = flags.GetBool("skip_bad_events", false);

  EngineOptions engine_options;
  engine_options.lifecycle.single_use = flags.GetBool("single-use", true);
  engine_options.lifecycle.speed = flags.GetDouble("speed", 1.0);
  engine_options.lifecycle.reposition_prob = flags.GetDouble("reposition", 0.0);
  engine_options.mc_worlds = mc_worlds;
  engine_options.failure_domains.enabled =
      flags.GetBool("failure_domains", false);

  if (Status st = flags.RejectUnread(); !st.ok()) return Fail(st.ToString());
  if (events_path.empty()) return Fail("replay needs --events=<file.jsonl>");
  if (num_regions < 1) return Fail("--regions must be >= 1");
  if (checkpoint_keep < 0) return Fail("--checkpoint_keep must be >= 0");
  if (engine_options.failure_domains.enabled && num_regions == 1) {
    MAPS_LOG(Info) << "note: --failure_domains has no effect with --regions=1";
  }

  // Either telemetry flag enables both the registry and the trace; they
  // must outlive the engines, the stream, and the pool below. Telemetry
  // never changes engine outputs (obs_integration_test proves bit-identity).
  std::optional<obs::MetricsRegistry> registry;
  std::optional<obs::TraceLog> trace;
  ObsSinks sinks;
  FaultTraceDetach fault_trace_detach;
  if (!metrics_out.empty() || !trace_out.empty()) {
    registry.emplace();
    trace.emplace();
    sinks.registry = &*registry;
    sinks.trace = &*trace;
    sinks.metrics_out = metrics_out;
    sinks.trace_out = trace_out;
    engine_options.metrics = sinks.registry;
    engine_options.trace = sinks.trace;
    FaultInjector::Global().AttachTrace(sinks.trace);
  }

  if (!fault_plan_text.empty()) {
    auto plan_or = ParseFaultPlan(fault_plan_text);
    if (!plan_or.ok()) {
      return Fail("--fault_plan: " + plan_or.status().ToString());
    }
    if (Status st = FaultInjector::Global().Arm(plan_or.ValueOrDie());
        !st.ok()) {
      return Fail("--fault_plan: " + st.ToString());
    }
    MAPS_LOG(Info) << "fault plan armed: " << fault_plan_text;
  }

  // The event file is STREAMED, not loaded: one line in memory at a time,
  // so multi-million-event logs replay under a constant ingestion
  // footprint (service/replay_log.h).
  std::ifstream in(events_path);
  if (!in) return Fail("cannot open " + events_path);
  ReplayEventStream stream(in, load_options);
  stream.AttachMetrics(sinks.registry);

  auto grid_or =
      GridPartition::Make(Rect{0, 0, extent, extent}, grid_side, grid_side);
  if (!grid_or.ok()) return Fail(grid_or.status().ToString());
  const GridPartition& grid = grid_or.ValueOrDie();

  // Warm-up demand: every strategy trains on probes before serving, so the
  // replay assumes truncated-normal valuations over the price range.
  TruncatedNormalDemand proto(demand_mu, demand_sigma, pricing.p_min,
                              pricing.p_max);
  auto oracle_or = DemandOracle::Make(
      ReplicateDemand(proto, grid.num_cells()), oracle_seed);
  if (!oracle_or.ok()) return Fail(oracle_or.status().ToString());
  DemandOracle& oracle = oracle_or.ValueOrDie();

  // One strategy instance per region (the monolith is the K=1 case), all
  // built from the same factory and all warmed against the SAME oracle so
  // their learned state is identical (probing is read-only on the oracle).
  const std::vector<StrategyFactory> factories = DefaultStrategies(pricing);
  const StrategyFactory* factory = nullptr;
  for (const StrategyFactory& f : factories) {
    if (f.name == which) factory = &f;
  }
  if (factory == nullptr) {
    return Fail("replay takes one --strategy name, got " + which);
  }
  std::vector<std::unique_ptr<PricingStrategy>> strategies;
  for (int k = 0; k < num_regions; ++k) {
    std::unique_ptr<PricingStrategy> s = factory->make();
    if (postprocess) {
      s = std::make_unique<PostprocessedStrategy>(std::move(s), post);
    }
    strategies.push_back(std::move(s));
  }

  std::optional<ThreadPool> pool;
  if (threads > 0) {
    pool.emplace(threads);
    pool->AttachMetrics(sinks.registry);
    engine_options.pool = &*pool;
  }
  if (mc_worlds > 0) engine_options.mc_oracle = &oracle;

  // A restored engine carries the checkpointed learned state, so warm-up
  // runs only on a fresh start.
  const auto warm_or_restore = [&](auto* engine) -> int {
    if (restore_from.empty()) {
      for (const auto& s : strategies) {
        if (Status st = s->Warmup(grid, &oracle); !st.ok()) {
          return Fail(which + " warmup: " + st.ToString());
        }
      }
      return 0;
    }
    std::string blob;
    if (Status st = ReadCheckpointFile(restore_from, &blob); !st.ok()) {
      return Fail(restore_from + ": " + st.ToString());
    }
    if (Status st = engine->RestoreFromCheckpoint(blob); !st.ok()) {
      return Fail(restore_from + ": " + st.ToString());
    }
    std::cout << "restored " << restore_from << " at period "
              << engine->current_period() << "\n";
    return 0;
  };

  if (num_regions == 1) {
    MarketEngine engine(&grid, strategies[0].get(), engine_options);
    if (int rc = warm_or_restore(&engine); rc != 0) return rc;
    return DriveReplayAndReport(&engine, &stream, grid, which, csv,
                                checkpoint_every, checkpoint_dir,
                                checkpoint_keep, sinks);
  }

  auto partition_or = RegionPartition::Make(grid, num_regions);
  if (!partition_or.ok()) return Fail(partition_or.status().ToString());
  const RegionPartition& partition = partition_or.ValueOrDie();
  std::vector<PricingStrategy*> region_strategies;
  for (const auto& s : strategies) region_strategies.push_back(s.get());
  ShardedMarketEngine engine(&grid, &partition, region_strategies,
                             engine_options);
  if (int rc = warm_or_restore(&engine); rc != 0) return rc;
  return DriveReplayAndReport(&engine, &stream, grid, which, csv,
                              checkpoint_every, checkpoint_dir,
                              checkpoint_keep, sinks);
}

}  // namespace
}  // namespace maps

int main(int argc, char** argv) {
  using namespace maps;  // NOLINT

  auto flags_or = FlagSet::Parse(argc, argv);
  if (!flags_or.ok()) return Fail(flags_or.status().ToString());
  const FlagSet& flags = flags_or.ValueOrDie();
  if (flags.positional().size() != 1) {
    return Fail("usage: maps_cli <synthetic|beijing|replay> [--flags]");
  }

  PricingConfig pricing;
  pricing.p_min = flags.GetDouble("pmin", 1.0);
  pricing.p_max = flags.GetDouble("pmax", 5.0);
  pricing.alpha = flags.GetDouble("alpha", 0.25);

  if (flags.positional()[0] == "replay") return RunReplay(flags, pricing);

  PostprocessOptions post;
  post.smoothing_lambda = flags.GetDouble("smooth", 0.0);
  if (flags.Has("cap")) post.price_cap = flags.GetDouble("cap", 5.0);
  const bool postprocess =
      post.smoothing_lambda > 0.0 || post.price_cap.has_value();

  const std::string which = flags.GetString("strategy", "all");
  const double reposition = flags.GetDouble("reposition", 0.0);
  const std::string csv = flags.GetString("csv", "");
  const std::string emit_replay = flags.GetString("emit-replay", "");

  auto workload_or = BuildWorkload(flags.positional()[0], flags);

  if (Status st = flags.RejectUnread(); !st.ok()) return Fail(st.ToString());
  if (!workload_or.ok()) return Fail(workload_or.status().ToString());
  Workload& workload = workload_or.ValueOrDie();
  workload.lifecycle.reposition_prob = reposition;

  // --emit-replay=<path>: write the workload as a JSONL event log for the
  // streaming replay path (maps_cli replay [--regions=K]) and stop.
  if (!emit_replay.empty()) {
    std::ofstream log(emit_replay);
    if (!log) return Fail("cannot open " + emit_replay);
    if (Status st = WriteReplayLog(workload, log); !st.ok()) {
      return Fail(emit_replay + ": " + st.ToString());
    }
    std::cout << "wrote " << emit_replay << ": " << workload.tasks.size()
              << " tasks, " << workload.workers.size() << " workers, "
              << workload.num_periods << " periods\n";
    return 0;
  }

  std::cout << "workload: " << workload.name << " — "
            << workload.tasks.size() << " tasks, " << workload.workers.size()
            << " workers, " << workload.grid.num_cells() << " grids, "
            << workload.num_periods << " periods\n\n";

  Table table({"strategy", "revenue", "time_secs", "memory_mb", "accepted",
               "matched"});
  auto strategies = DefaultStrategies(pricing);
  size_t ran = 0;
  for (size_t s = 0; s < strategies.size(); ++s) {
    if (which != "all" && which != strategies[s].name) continue;
    std::unique_ptr<PricingStrategy> strategy = strategies[s].make();
    if (postprocess) {
      strategy = std::make_unique<PostprocessedStrategy>(std::move(strategy),
                                                         post);
    }
    SimOptions opts;
    opts.warmup_stream = 300 + s;
    auto run = RunSimulation(workload, strategy.get(), opts);
    if (!run.ok()) {
      return Fail(strategies[s].name + ": " + run.status().ToString());
    }
    const SimulationResult& r = run.ValueOrDie();
    table.AddRow(strategy->name(), r.total_revenue, r.total_time_sec,
                 static_cast<double>(r.memory_bytes) / (1024.0 * 1024.0),
                 r.num_accepted, r.num_matched);
    ++ran;
  }
  if (ran == 0) return Fail("no strategy matched --strategy=" + which);
  std::cout << table.ToText();
  if (!csv.empty()) {
    if (Status st = table.WriteCsv(csv); !st.ok()) {
      return Fail(st.ToString());
    }
    std::cout << "\nwrote " << csv << "\n";
  }
  return 0;
}
