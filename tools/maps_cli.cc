// maps_cli: run any strategy on any workload from the command line.
//
//   maps_cli synthetic [--workers=5000 --tasks=20000 --periods=400
//                       --grid=10 --radius=15 --temporal-mu=0.5
//                       --spatial-mean=0.5 --demand-mu=2 --demand-sigma=1
//                       --demand=normal|exponential --metric=euclidean|
//                       manhattan|road --seed=42]
//   maps_cli beijing   [--window=peak|night --duration=15 --scale=0.1
//                       --seed=2016]
// Common flags:
//   --strategy=MAPS|BaseP|SDR|SDE|CappedUCB|all   (default all)
//   --alpha=0.25 --pmin=1 --pmax=5                 pricing ladder
//   --smooth=0.0 --cap=<price>                     post-processing
//   --reposition=0.0                               idle-driver migration
//   --csv=<path>                                   write results as CSV

#include <iostream>

#include "pricing/price_postprocess.h"
#include "sim/beijing.h"
#include "sim/metrics.h"
#include "sim/synthetic.h"
#include "util/flags.h"

namespace maps {
namespace {

int Fail(const std::string& message) {
  std::cerr << "maps_cli: " << message << "\n";
  return 1;
}

Result<Workload> BuildWorkload(const std::string& kind, const FlagSet& flags) {
  if (kind == "synthetic") {
    SyntheticConfig cfg;
    cfg.num_workers = static_cast<int>(flags.GetInt("workers", 5000));
    cfg.num_tasks = static_cast<int>(flags.GetInt("tasks", 20000));
    cfg.num_periods = static_cast<int>(flags.GetInt("periods", 400));
    const int grid = static_cast<int>(flags.GetInt("grid", 10));
    cfg.grid_rows = grid;
    cfg.grid_cols = grid;
    cfg.worker_radius = flags.GetDouble("radius", 15.0);
    cfg.temporal_mu = flags.GetDouble("temporal-mu", 0.5);
    cfg.spatial_mean = flags.GetDouble("spatial-mean", 0.5);
    cfg.demand_mu = flags.GetDouble("demand-mu", 2.0);
    cfg.demand_sigma = flags.GetDouble("demand-sigma", 1.0);
    cfg.demand_rate = flags.GetDouble("demand-rate", 1.0);
    cfg.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    const std::string family = flags.GetString("demand", "normal");
    if (family == "exponential") {
      cfg.demand_family = SyntheticConfig::DemandFamily::kExponential;
    } else if (family != "normal") {
      return Status::InvalidArgument("unknown --demand=" + family);
    }
    const std::string metric = flags.GetString("metric", "euclidean");
    if (metric == "manhattan") {
      cfg.distance_metric = SyntheticConfig::DistanceMetric::kManhattan;
    } else if (metric == "road") {
      cfg.distance_metric = SyntheticConfig::DistanceMetric::kRoadNetwork;
    } else if (metric != "euclidean") {
      return Status::InvalidArgument("unknown --metric=" + metric);
    }
    return GenerateSynthetic(cfg);
  }
  if (kind == "beijing") {
    BeijingConfig cfg;
    const std::string window = flags.GetString("window", "peak");
    if (window == "night") {
      cfg.window = BeijingConfig::Window::kLateNight;
    } else if (window != "peak") {
      return Status::InvalidArgument("unknown --window=" + window);
    }
    cfg.worker_duration = static_cast<int>(flags.GetInt("duration", 15));
    cfg.population_scale = flags.GetDouble("scale", 0.1);
    cfg.seed = static_cast<uint64_t>(flags.GetInt("seed", 2016));
    return GenerateBeijing(cfg);
  }
  return Status::InvalidArgument(
      "unknown workload '" + kind + "' (expected synthetic|beijing)");
}

}  // namespace
}  // namespace maps

int main(int argc, char** argv) {
  using namespace maps;  // NOLINT

  auto flags_or = FlagSet::Parse(argc, argv);
  if (!flags_or.ok()) return Fail(flags_or.status().ToString());
  const FlagSet& flags = flags_or.ValueOrDie();
  if (flags.positional().size() != 1) {
    return Fail("usage: maps_cli <synthetic|beijing> [--flags]");
  }

  PricingConfig pricing;
  pricing.p_min = flags.GetDouble("pmin", 1.0);
  pricing.p_max = flags.GetDouble("pmax", 5.0);
  pricing.alpha = flags.GetDouble("alpha", 0.25);

  PostprocessOptions post;
  post.smoothing_lambda = flags.GetDouble("smooth", 0.0);
  if (flags.Has("cap")) post.price_cap = flags.GetDouble("cap", 5.0);
  const bool postprocess =
      post.smoothing_lambda > 0.0 || post.price_cap.has_value();

  const std::string which = flags.GetString("strategy", "all");
  const double reposition = flags.GetDouble("reposition", 0.0);
  const std::string csv = flags.GetString("csv", "");

  auto workload_or = BuildWorkload(flags.positional()[0], flags);

  if (const auto unread = flags.UnreadKeys(); !unread.empty()) {
    std::string joined;
    for (const auto& k : unread) joined += " --" + k;
    return Fail("unknown flag(s):" + joined);
  }
  if (!workload_or.ok()) return Fail(workload_or.status().ToString());
  Workload& workload = workload_or.ValueOrDie();
  workload.lifecycle.reposition_prob = reposition;

  std::cout << "workload: " << workload.name << " — "
            << workload.tasks.size() << " tasks, " << workload.workers.size()
            << " workers, " << workload.grid.num_cells() << " grids, "
            << workload.num_periods << " periods\n\n";

  Table table({"strategy", "revenue", "time_secs", "memory_mb", "accepted",
               "matched"});
  auto strategies = DefaultStrategies(pricing);
  size_t ran = 0;
  for (size_t s = 0; s < strategies.size(); ++s) {
    if (which != "all" && which != strategies[s].name) continue;
    std::unique_ptr<PricingStrategy> strategy = strategies[s].make();
    if (postprocess) {
      strategy = std::make_unique<PostprocessedStrategy>(std::move(strategy),
                                                         post);
    }
    SimOptions opts;
    opts.warmup_stream = 300 + s;
    auto run = RunSimulation(workload, strategy.get(), opts);
    if (!run.ok()) {
      return Fail(strategies[s].name + ": " + run.status().ToString());
    }
    const SimulationResult& r = run.ValueOrDie();
    table.AddRow(strategy->name(), r.total_revenue, r.total_time_sec,
                 static_cast<double>(r.memory_bytes) / (1024.0 * 1024.0),
                 r.num_accepted, r.num_matched);
    ++ran;
  }
  if (ran == 0) return Fail("no strategy matched --strategy=" + which);
  std::cout << table.ToText();
  if (!csv.empty()) {
    if (Status st = table.WriteCsv(csv); !st.ok()) {
      return Fail(st.ToString());
    }
    std::cout << "\nwrote " << csv << "\n";
  }
  return 0;
}
