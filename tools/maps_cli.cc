// maps_cli: run any strategy on any workload from the command line.
//
//   maps_cli synthetic [--workers=5000 --tasks=20000 --periods=400
//                       --grid=10 --radius=15 --temporal-mu=0.5
//                       --spatial-mean=0.5 --demand-mu=2 --demand-sigma=1
//                       --demand=normal|exponential --metric=euclidean|
//                       manhattan|road --seed=42]
//   maps_cli beijing   [--window=peak|night --duration=15 --scale=0.1
//                       --seed=2016]
//   maps_cli replay    --events=events.jsonl
//                      [--grid=4 --extent=100 --strategy=MAPS
//                       --single-use=true --speed=1 --reposition=0
//                       --threads=0 --mc_worlds=0
//                       --demand-mu=2 --demand-sigma=1 --oracle-seed=17
//                       --checkpoint_every=0 --checkpoint_dir=.
//                       --restore_from=<file.ckpt> --skip_bad_events=false]
//
// `replay` drives the online MarketEngine from a JSONL event file (see
// src/service/replay_log.h for the schema): task submissions, worker
// arrivals/departures, externally observed acceptance, period closes. This
// expresses scenarios the batch workloads cannot — mid-horizon worker
// churn, bursty submissions, feedback-delayed periods. The strategy warms
// up against a truncated-normal demand oracle built from --demand-mu /
// --demand-sigma over [pmin, pmax]; --mc_worlds>0 also reports each
// period's expected revenue under that assumed demand.
//
// Checkpointing: --checkpoint_every=N saves the engine (and learned
// strategy state) to --checkpoint_dir every N closed periods;
// --restore_from=<file> resumes a previous run — warm-up is skipped, the
// events already consumed before the checkpointed period boundary are
// skipped, and the resumed run is bit-identical to the uninterrupted one
// (DESIGN.md §12). --skip_bad_events=true drops malformed event lines
// with a warning instead of aborting.
//
// Common flags:
//   --strategy=MAPS|BaseP|SDR|SDE|CappedUCB|all   (default all; replay
//                                                  takes a single name)
//   --alpha=0.25 --pmin=1 --pmax=5                 pricing ladder
//   --smooth=0.0 --cap=<price>                     post-processing
//   --reposition=0.0                               idle-driver migration
//   --csv=<path>                                   write results as CSV
//
// Unknown or misspelled flags are an error, never silently ignored.

#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>

#include "market/demand_model.h"
#include "pricing/price_postprocess.h"
#include "service/checkpoint.h"
#include "service/market_engine.h"
#include "service/replay_log.h"
#include "sim/beijing.h"
#include "sim/metrics.h"
#include "sim/synthetic.h"
#include "util/flags.h"
#include "util/thread_pool.h"

namespace maps {
namespace {

int Fail(const std::string& message) {
  std::cerr << "maps_cli: " << message << "\n";
  return 1;
}

Result<Workload> BuildWorkload(const std::string& kind, const FlagSet& flags) {
  if (kind == "synthetic") {
    SyntheticConfig cfg;
    cfg.num_workers = static_cast<int>(flags.GetInt("workers", 5000));
    cfg.num_tasks = static_cast<int>(flags.GetInt("tasks", 20000));
    cfg.num_periods = static_cast<int>(flags.GetInt("periods", 400));
    const int grid = static_cast<int>(flags.GetInt("grid", 10));
    cfg.grid_rows = grid;
    cfg.grid_cols = grid;
    cfg.worker_radius = flags.GetDouble("radius", 15.0);
    cfg.temporal_mu = flags.GetDouble("temporal-mu", 0.5);
    cfg.spatial_mean = flags.GetDouble("spatial-mean", 0.5);
    cfg.demand_mu = flags.GetDouble("demand-mu", 2.0);
    cfg.demand_sigma = flags.GetDouble("demand-sigma", 1.0);
    cfg.demand_rate = flags.GetDouble("demand-rate", 1.0);
    cfg.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    const std::string family = flags.GetString("demand", "normal");
    if (family == "exponential") {
      cfg.demand_family = SyntheticConfig::DemandFamily::kExponential;
    } else if (family != "normal") {
      return Status::InvalidArgument("unknown --demand=" + family);
    }
    const std::string metric = flags.GetString("metric", "euclidean");
    if (metric == "manhattan") {
      cfg.distance_metric = SyntheticConfig::DistanceMetric::kManhattan;
    } else if (metric == "road") {
      cfg.distance_metric = SyntheticConfig::DistanceMetric::kRoadNetwork;
    } else if (metric != "euclidean") {
      return Status::InvalidArgument("unknown --metric=" + metric);
    }
    return GenerateSynthetic(cfg);
  }
  if (kind == "beijing") {
    BeijingConfig cfg;
    const std::string window = flags.GetString("window", "peak");
    if (window == "night") {
      cfg.window = BeijingConfig::Window::kLateNight;
    } else if (window != "peak") {
      return Status::InvalidArgument("unknown --window=" + window);
    }
    cfg.worker_duration = static_cast<int>(flags.GetInt("duration", 15));
    cfg.population_scale = flags.GetDouble("scale", 0.1);
    cfg.seed = static_cast<uint64_t>(flags.GetInt("seed", 2016));
    return GenerateBeijing(cfg);
  }
  return Status::InvalidArgument(
      "unknown workload '" + kind + "' (expected synthetic|beijing|replay)");
}

/// Drives the online engine from a JSONL event file.
int RunReplay(const FlagSet& flags, const PricingConfig& pricing) {
  // The common flags (see the file comment) apply here too.
  PostprocessOptions post;
  post.smoothing_lambda = flags.GetDouble("smooth", 0.0);
  if (flags.Has("cap")) post.price_cap = flags.GetDouble("cap", 5.0);
  const bool postprocess =
      post.smoothing_lambda > 0.0 || post.price_cap.has_value();
  const std::string csv = flags.GetString("csv", "");

  const std::string events_path = flags.GetString("events", "");
  const int grid_side = static_cast<int>(flags.GetInt("grid", 4));
  const double extent = flags.GetDouble("extent", 100.0);
  const std::string which = flags.GetString("strategy", "MAPS");
  const double demand_mu = flags.GetDouble("demand-mu", 2.0);
  const double demand_sigma = flags.GetDouble("demand-sigma", 1.0);
  const uint64_t oracle_seed =
      static_cast<uint64_t>(flags.GetInt("oracle-seed", 17));
  const int threads = static_cast<int>(flags.GetInt("threads", 0));
  const int mc_worlds = static_cast<int>(flags.GetInt("mc_worlds", 0));
  const int64_t checkpoint_every = flags.GetInt("checkpoint_every", 0);
  const std::string checkpoint_dir = flags.GetString("checkpoint_dir", ".");
  const std::string restore_from = flags.GetString("restore_from", "");
  ReplayLoadOptions load_options;
  load_options.skip_bad_events = flags.GetBool("skip_bad_events", false);

  EngineOptions engine_options;
  engine_options.lifecycle.single_use = flags.GetBool("single-use", true);
  engine_options.lifecycle.speed = flags.GetDouble("speed", 1.0);
  engine_options.lifecycle.reposition_prob = flags.GetDouble("reposition", 0.0);
  engine_options.mc_worlds = mc_worlds;

  if (Status st = flags.RejectUnread(); !st.ok()) return Fail(st.ToString());
  if (events_path.empty()) return Fail("replay needs --events=<file.jsonl>");

  std::ifstream in(events_path);
  if (!in) return Fail("cannot open " + events_path);
  ReplayLoadStats load_stats;
  auto events_or = LoadReplayLog(in, load_options, &load_stats);
  if (!events_or.ok()) {
    return Fail(events_path + ": " + events_or.status().ToString());
  }
  const std::vector<ReplayEvent>& events = events_or.ValueOrDie();

  auto grid_or =
      GridPartition::Make(Rect{0, 0, extent, extent}, grid_side, grid_side);
  if (!grid_or.ok()) return Fail(grid_or.status().ToString());
  const GridPartition& grid = grid_or.ValueOrDie();

  // Warm-up demand: every strategy trains on probes before serving, so the
  // replay assumes truncated-normal valuations over the price range.
  TruncatedNormalDemand proto(demand_mu, demand_sigma, pricing.p_min,
                              pricing.p_max);
  auto oracle_or = DemandOracle::Make(
      ReplicateDemand(proto, grid.num_cells()), oracle_seed);
  if (!oracle_or.ok()) return Fail(oracle_or.status().ToString());
  DemandOracle& oracle = oracle_or.ValueOrDie();

  std::unique_ptr<PricingStrategy> strategy;
  for (const StrategyFactory& factory : DefaultStrategies(pricing)) {
    if (factory.name == which) strategy = factory.make();
  }
  if (strategy == nullptr) {
    return Fail("replay takes one --strategy name, got " + which);
  }
  if (postprocess) {
    strategy =
        std::make_unique<PostprocessedStrategy>(std::move(strategy), post);
  }

  std::optional<ThreadPool> pool;
  if (threads > 0) {
    pool.emplace(threads);
    engine_options.pool = &*pool;
  }
  if (mc_worlds > 0) engine_options.mc_oracle = &oracle;
  MarketEngine engine(&grid, strategy.get(), engine_options);

  // A restored engine carries the checkpointed learned state, so warm-up
  // runs only on a fresh start.
  if (restore_from.empty()) {
    if (Status st = strategy->Warmup(grid, &oracle); !st.ok()) {
      return Fail(which + " warmup: " + st.ToString());
    }
  } else {
    std::string blob;
    if (Status st = ReadCheckpointFile(restore_from, &blob); !st.ok()) {
      return Fail(restore_from + ": " + st.ToString());
    }
    if (Status st = engine.RestoreFromCheckpoint(blob); !st.ok()) {
      return Fail(restore_from + ": " + st.ToString());
    }
    std::cout << "restored " << restore_from << " at period "
              << engine.current_period() << "\n";
  }
  // Replay the feed from the checkpointed boundary: everything up to and
  // including the current_period()-th close_period was already consumed.
  int64_t skip_closes = engine.current_period();

  Table table({"period", "tasks", "workers", "accepted", "matched",
               "revenue", "mc_revenue"});
  PeriodOutcome outcome;
  double total_revenue = 0.0;
  int64_t total_accepted = 0;
  int64_t total_matched = 0;
  for (const ReplayEvent& ev : events) {
    if (skip_closes > 0) {
      if (ev.kind == ReplayEvent::Kind::kClosePeriod) --skip_closes;
      continue;
    }
    Status st = Status::OK();
    switch (ev.kind) {
      case ReplayEvent::Kind::kSubmitTask: {
        Task task = ev.task;
        task.grid = grid.CellOf(task.origin);
        task.period = engine.current_period();
        if (task.distance <= 0.0) {
          task.distance = EuclideanDistance(task.origin, task.destination);
        }
        st = engine.SubmitTask(task, ev.has_valuation
                                         ? ev.valuation
                                         : MarketEngine::kNoValuation);
        break;
      }
      case ReplayEvent::Kind::kAddWorker: {
        Worker worker = ev.worker;
        worker.grid = grid.CellOf(worker.location);
        worker.period = engine.current_period();
        st = engine.AddWorker(worker);
        break;
      }
      case ReplayEvent::Kind::kRemoveWorker:
        st = engine.RemoveWorker(ev.id);
        break;
      case ReplayEvent::Kind::kObserveAcceptance:
        st = engine.ObserveAcceptance(ev.id, ev.accepted);
        break;
      case ReplayEvent::Kind::kClosePeriod: {
        st = engine.ClosePeriod(&outcome);
        if (st.ok() && !outcome.skipped) {
          table.AddRow(outcome.period, outcome.num_tasks,
                       outcome.num_available_workers,
                       static_cast<int64_t>(outcome.accepted.size()),
                       static_cast<int64_t>(outcome.matches.size()),
                       outcome.revenue, outcome.mc_expected_revenue);
          total_revenue += outcome.revenue;
          total_accepted += static_cast<int64_t>(outcome.accepted.size());
          total_matched += static_cast<int64_t>(outcome.matches.size());
        }
        if (st.ok() && checkpoint_every > 0 &&
            engine.current_period() % checkpoint_every == 0) {
          std::string blob;
          st = engine.SaveCheckpoint(&blob);
          if (st.ok()) {
            const std::string path =
                checkpoint_dir + "/checkpoint_" +
                std::to_string(engine.current_period()) + ".ckpt";
            st = WriteCheckpointFile(path, blob);
            if (st.ok()) std::cout << "checkpoint: " << path << "\n";
          }
        }
        break;
      }
    }
    if (!st.ok()) return Fail("event replay: " + st.ToString());
  }

  std::cout << "replayed " << events.size() << " events";
  if (load_stats.lines_skipped > 0) {
    std::cout << " (" << load_stats.lines_skipped << " malformed line(s)"
              << " skipped)";
  }
  std::cout << ", " << engine.current_period() << " periods closed ("
            << which << ")\n\n"
            << table.ToText() << "\ntotal revenue " << total_revenue << ", "
            << total_accepted << " accepted, " << total_matched
            << " matched, " << engine.strategy_seconds()
            << " s in the strategy\n";
  if (!csv.empty()) {
    if (Status st = table.WriteCsv(csv); !st.ok()) {
      return Fail(st.ToString());
    }
    std::cout << "wrote " << csv << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace maps

int main(int argc, char** argv) {
  using namespace maps;  // NOLINT

  auto flags_or = FlagSet::Parse(argc, argv);
  if (!flags_or.ok()) return Fail(flags_or.status().ToString());
  const FlagSet& flags = flags_or.ValueOrDie();
  if (flags.positional().size() != 1) {
    return Fail("usage: maps_cli <synthetic|beijing|replay> [--flags]");
  }

  PricingConfig pricing;
  pricing.p_min = flags.GetDouble("pmin", 1.0);
  pricing.p_max = flags.GetDouble("pmax", 5.0);
  pricing.alpha = flags.GetDouble("alpha", 0.25);

  if (flags.positional()[0] == "replay") return RunReplay(flags, pricing);

  PostprocessOptions post;
  post.smoothing_lambda = flags.GetDouble("smooth", 0.0);
  if (flags.Has("cap")) post.price_cap = flags.GetDouble("cap", 5.0);
  const bool postprocess =
      post.smoothing_lambda > 0.0 || post.price_cap.has_value();

  const std::string which = flags.GetString("strategy", "all");
  const double reposition = flags.GetDouble("reposition", 0.0);
  const std::string csv = flags.GetString("csv", "");

  auto workload_or = BuildWorkload(flags.positional()[0], flags);

  if (Status st = flags.RejectUnread(); !st.ok()) return Fail(st.ToString());
  if (!workload_or.ok()) return Fail(workload_or.status().ToString());
  Workload& workload = workload_or.ValueOrDie();
  workload.lifecycle.reposition_prob = reposition;

  std::cout << "workload: " << workload.name << " — "
            << workload.tasks.size() << " tasks, " << workload.workers.size()
            << " workers, " << workload.grid.num_cells() << " grids, "
            << workload.num_periods << " periods\n\n";

  Table table({"strategy", "revenue", "time_secs", "memory_mb", "accepted",
               "matched"});
  auto strategies = DefaultStrategies(pricing);
  size_t ran = 0;
  for (size_t s = 0; s < strategies.size(); ++s) {
    if (which != "all" && which != strategies[s].name) continue;
    std::unique_ptr<PricingStrategy> strategy = strategies[s].make();
    if (postprocess) {
      strategy = std::make_unique<PostprocessedStrategy>(std::move(strategy),
                                                         post);
    }
    SimOptions opts;
    opts.warmup_stream = 300 + s;
    auto run = RunSimulation(workload, strategy.get(), opts);
    if (!run.ok()) {
      return Fail(strategies[s].name + ": " + run.status().ToString());
    }
    const SimulationResult& r = run.ValueOrDie();
    table.AddRow(strategy->name(), r.total_revenue, r.total_time_sec,
                 static_cast<double>(r.memory_bytes) / (1024.0 * 1024.0),
                 r.num_accepted, r.num_matched);
    ++ran;
  }
  if (ran == 0) return Fail("no strategy matched --strategy=" + which);
  std::cout << table.ToText();
  if (!csv.empty()) {
    if (Status st = table.WriteCsv(csv); !st.ok()) {
      return Fail(st.ToString());
    }
    std::cout << "\nwrote " << csv << "\n";
  }
  return 0;
}
