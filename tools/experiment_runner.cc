// experiment_runner: one data-driven binary for every figure sweep.
//
// Replaces the 13 per-figure bench binaries (bench/fig6_*.cc, fig7_*.cc,
// fig8_*.cc, fig10_exponential.cc): pick experiments from the registry
// (src/sim/experiments.h), execute the strategy x workload matrix across a
// fixed thread pool, and emit one machine-readable JSON with per-cell
// revenue, timing, memory, and the thread count — plus the same stdout
// table and optional per-experiment CSV the old binaries produced.
//
// Cells (one strategy on one workload) are independent: every strategy
// instance is fresh and warms up on its own oracle fork, so cell results
// are bit-identical no matter how many threads execute the matrix.
//
// Usage:
//   experiment_runner --list
//   experiment_runner --experiments=fig6_workers --scale=0.02 --threads=4
//   experiment_runner --experiments=all --out=experiments.json
//
// Flags:
//   --experiments  comma-separated registry names, or "all" (default all)
//   --scale        population scale (default: MAPS_BENCH_SCALE env, else 1)
//   --threads      pool size (default: MAPS_THREADS env, else hardware)
//   --mc_worlds    Monte-Carlo worlds per period for the expected-revenue
//                  diagnostic column (counter-streamed, thread-count
//                  independent; 0 = off, the default)
//   --pipeline_periods  give every cell a second, cell-side pool that backs
//                  the simulator's period pipeline, the strategy's sharded
//                  round work, and the MC diagnostic (default 1). The
//                  matrix pool is never lent into a cell — its workers run
//                  the cells themselves and nested waits could deadlock —
//                  so within-cell parallelism gets its own pool; results
//                  are bit-identical either way
//   --out          JSON output path (default experiments.json)
//   --csv_dir      also write <experiment>.csv per experiment ("" disables;
//                  default: MAPS_BENCH_CSV_DIR env, else disabled)

#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "sim/experiments.h"
#include "sim/metrics.h"
#include "sim/simulator.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/thread_pool.h"

namespace maps {
namespace {

struct Cell {
  int point = 0;     // x-axis index within the experiment
  int strategy = 0;  // index into the strategy factory list
  Status status = Status::OK();
  SimulationResult result;
};

struct ExperimentRun {
  std::string name;
  std::string x_name;
  std::vector<std::string> x_labels;
  std::vector<Cell> cells;  // point-major, strategy-minor order
  double wall_secs = 0.0;
};

/// Runs one experiment's strategy x workload matrix on the pool. Workloads
/// are generated up front (serially, deterministic per point) and shared
/// read-only across cells; each cell forks the oracle for its warm-up.
Result<ExperimentRun> RunExperiment(
    const ExperimentSpec& spec,
    const std::vector<StrategyFactory>& strategies, ThreadPool* pool,
    ThreadPool* cell_pool, int mc_worlds, bool pipeline_periods) {
  ExperimentRun run;
  run.name = spec.name;
  run.x_name = spec.x_name;

  std::vector<Workload> workloads;
  workloads.reserve(spec.points.size());
  for (const ExperimentPoint& point : spec.points) {
    auto workload = point.generate();
    MAPS_RETURN_NOT_OK(workload.status());
    workloads.push_back(std::move(workload).ValueOrDie());
    run.x_labels.push_back(point.label);
  }

  const int num_points = static_cast<int>(spec.points.size());
  const int num_strategies = static_cast<int>(strategies.size());
  run.cells.resize(static_cast<size_t>(num_points) * num_strategies);
  for (int p = 0; p < num_points; ++p) {
    for (int s = 0; s < num_strategies; ++s) {
      Cell& cell = run.cells[p * num_strategies + s];
      cell.point = p;
      cell.strategy = s;
    }
  }

  const auto start = std::chrono::steady_clock::now();
  // One shard per cell: a cell is the natural work unit (a whole simulation
  // run), and its result does not depend on which worker executes it.
  const auto shards =
      SplitRange(static_cast<int64_t>(run.cells.size()),
                 static_cast<int64_t>(run.cells.size()));
  ParallelFor(pool, shards,
              [&](int /*shard*/, const IndexRange& range, int /*worker*/) {
                for (int64_t i = range.begin; i < range.end; ++i) {
                  Cell& cell = run.cells[i];
                  auto strategy = strategies[cell.strategy].make();
                  SimOptions options;
                  // Same stream schedule as the retired ExperimentSweep
                  // path: strategies draw independent probe randomness.
                  options.warmup_stream = 101 + cell.strategy;
                  // Counter-streamed, so the diagnostic is identical no
                  // matter how the matrix is threaded. The cell must NOT
                  // lend the matrix pool to its own simulation (nested
                  // waits on a fixed pool can deadlock): within-cell work
                  // runs on the separate cell pool, whose workers never
                  // wait on the matrix pool. All cell-side parallelism is
                  // bit-identical to the serial path by the DESIGN.md
                  // §8/§10 policy.
                  options.engine.mc_worlds = mc_worlds;
                  options.engine.pipeline_periods = pipeline_periods;
                  options.engine.pool = cell_pool;
                  auto result = RunSimulation(workloads[cell.point],
                                              strategy.get(), options);
                  cell.status = result.status();
                  if (result.ok()) {
                    cell.result = std::move(result).ValueOrDie();
                  }
                }
              });
  run.wall_secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();

  for (const Cell& cell : run.cells) {
    if (!cell.status.ok()) return cell.status;
  }
  return run;
}

Table RunToTable(const ExperimentRun& run,
                 const std::vector<StrategyFactory>& strategies) {
  Table table({run.x_name, "strategy", "revenue", "mc_revenue", "time_secs",
               "memory_mb", "accepted", "matched"});
  for (const Cell& cell : run.cells) {
    const SimulationResult& r = cell.result;
    table.AddRow(run.x_labels[cell.point], strategies[cell.strategy].name,
                 r.total_revenue, r.mc_expected_revenue, r.total_time_sec,
                 static_cast<double>(r.memory_bytes) / (1024.0 * 1024.0),
                 r.num_accepted, r.num_matched);
  }
  return table;
}

Status WriteJson(const std::string& path,
                 const std::vector<ExperimentRun>& runs,
                 const std::vector<StrategyFactory>& strategies, int threads,
                 double scale, int mc_worlds, bool pipeline_periods) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out << "{\n  \"schema\": \"maps-experiment-runner-v3\",\n"
      << "  \"threads\": " << threads << ",\n  \"scale\": " << scale
      << ",\n  \"mc_worlds\": " << mc_worlds
      << ",\n  \"pipeline_periods\": " << (pipeline_periods ? "true" : "false")
      << ",\n  \"experiments\": [\n";
  for (size_t e = 0; e < runs.size(); ++e) {
    const ExperimentRun& run = runs[e];
    out << "    {\"name\": \"" << run.name << "\", \"x_name\": \""
        << run.x_name << "\", \"wall_secs\": " << run.wall_secs
        << ", \"cells\": [\n";
    for (size_t c = 0; c < run.cells.size(); ++c) {
      const Cell& cell = run.cells[c];
      const SimulationResult& r = cell.result;
      out << "      {\"x\": \"" << run.x_labels[cell.point]
          << "\", \"strategy\": \"" << strategies[cell.strategy].name
          << "\", \"revenue\": " << r.total_revenue
          << ", \"mc_expected_revenue\": " << r.mc_expected_revenue
          << ", \"time_secs\": " << r.total_time_sec
          << ", \"memory_bytes\": " << r.memory_bytes
          << ", \"accepted\": " << r.num_accepted
          << ", \"matched\": " << r.num_matched << "}"
          << (c + 1 < run.cells.size() ? "," : "") << "\n";
    }
    out << "    ]}" << (e + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return Status::OK();
}

int Main(int argc, char** argv) {
  auto flags_or = FlagSet::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::cerr << flags_or.status() << "\n";
    return 2;
  }
  FlagSet flags = std::move(flags_or).ValueOrDie();

  ExperimentRegistryOptions registry;
  if (flags.Has("scale")) {
    registry.scale = flags.GetDouble("scale", 1.0);
    registry.scale_explicit = true;
  } else if (const char* env = std::getenv("MAPS_BENCH_SCALE")) {
    registry.scale = std::atof(env) > 0.0 ? std::atof(env) : 1.0;
    registry.scale_explicit = true;
  }

  if (flags.GetBool("list", false)) {
    for (const ExperimentSpec& spec : BuildExperiments(registry)) {
      std::cout << spec.name << " (x = " << spec.x_name << ", "
                << spec.points.size() << " points)\n";
    }
    return 0;
  }

  const int threads = static_cast<int>(
      flags.GetInt("threads", ThreadPool::DefaultThreadCount()));
  const int mc_worlds = static_cast<int>(flags.GetInt("mc_worlds", 0));
  if (mc_worlds < 0) {
    std::cerr << "--mc_worlds must be >= 0\n";
    return 2;
  }
  const bool pipeline_periods = flags.GetBool("pipeline_periods", true);
  const std::string out_path = flags.GetString("out", "experiments.json");
  const char* csv_env = std::getenv("MAPS_BENCH_CSV_DIR");
  const std::string csv_dir =
      flags.GetString("csv_dir", csv_env == nullptr ? "" : csv_env);
  const std::string selection = flags.GetString("experiments", "all");
  if (Status st = flags.RejectUnread(); !st.ok()) {
    std::cerr << st << "\n";
    return 2;
  }

  std::vector<ExperimentSpec> specs;
  if (selection == "all") {
    specs = BuildExperiments(registry);
  } else {
    std::stringstream ss(selection);
    std::string name;
    while (std::getline(ss, name, ',')) {
      if (name.empty()) continue;
      auto spec = FindExperiment(registry, name);
      if (!spec.ok()) {
        std::cerr << spec.status() << "\n";
        return 2;
      }
      specs.push_back(std::move(spec).ValueOrDie());
    }
  }
  if (specs.empty()) {
    std::cerr << "no experiments selected\n";
    return 2;
  }

  ThreadPool pool(threads);
  // Cell-side pool for the period pipeline / sharded strategy work: its
  // workers only ever run cell-submitted jobs and never wait on the matrix
  // pool, so the two pools cannot deadlock each other (see RunExperiment).
  std::optional<ThreadPool> cell_pool;
  if (pipeline_periods) cell_pool.emplace(threads);
  const auto strategies = DefaultStrategies(ExperimentPricing());
  std::vector<ExperimentRun> runs;
  for (const ExperimentSpec& spec : specs) {
    std::cout << "[experiment_runner] running " << spec.name << " ("
              << spec.points.size() << " points x " << strategies.size()
              << " strategies, " << threads << " threads)\n";
    auto run = RunExperiment(spec, strategies, &pool,
                             cell_pool ? &*cell_pool : nullptr, mc_worlds,
                             pipeline_periods);
    if (!run.ok()) {
      std::cerr << spec.name << ": " << run.status() << "\n";
      return 1;
    }
    runs.push_back(std::move(run).ValueOrDie());
    const ExperimentRun& done = runs.back();
    Table table = RunToTable(done, strategies);
    std::cout << "== " << done.name << " ==\n" << table.ToText() << "\n";
    if (!csv_dir.empty()) {
      Status st = table.WriteCsv(csv_dir + "/" + done.name + ".csv");
      if (!st.ok()) {
        std::cerr << done.name << ": " << st << "\n";
        return 1;
      }
    }
  }

  Status st = WriteJson(out_path, runs, strategies, threads, registry.scale,
                        mc_worlds, pipeline_periods);
  if (!st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace maps

int main(int argc, char** argv) { return maps::Main(argc, argv); }
