#!/usr/bin/env python3
"""Regression tests for compare_bench.py (the CI bench-smoke gate).

Run directly (python3 tools/test_compare_bench.py) or via ctest as
compare_bench_py. Pure stdlib: unittest + tempfile only.
"""

import contextlib
import importlib.util
import io
import json
import os
import sys
import tempfile
import unittest

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))


def _load_module():
    spec = importlib.util.spec_from_file_location(
        "compare_bench", os.path.join(TOOLS_DIR, "compare_bench.py"))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


compare_bench = _load_module()


def bench_doc(ns_by_key, scale="small", drop_ns_for=()):
    doc = {"scale": scale, "benchmarks": []}
    for name, ns in ns_by_key.items():
        entry = {"name": name, "ns_per_op": ns, "peak_bytes": 1024}
        if name in drop_ns_for:
            del entry["ns_per_op"]
        doc["benchmarks"].append(entry)
    return doc


class CompareBenchTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)

    def write(self, name, doc):
        path = os.path.join(self._tmp.name, name)
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    def run_main(self, old_doc, new_doc, extra_args=()):
        """Runs compare_bench.main() against two docs; returns (exit, stdout)."""
        argv = [
            "compare_bench.py",
            self.write("old.json", old_doc),
            self.write("new.json", new_doc),
        ] + list(extra_args)
        out = io.StringIO()
        saved_argv = sys.argv
        sys.argv = argv
        try:
            with contextlib.redirect_stdout(out):
                code = compare_bench.main()
        finally:
            sys.argv = saved_argv
        return code, out.getvalue()

    def test_identical_runs_pass(self):
        doc = bench_doc({"maps_price_round": 1000.0, "engine_period": 5000.0})
        code, out = self.run_main(doc, doc)
        self.assertEqual(code, 0)
        self.assertIn("OK: no tracked key regressed", out)

    def test_regression_beyond_threshold_fails(self):
        old = bench_doc({"maps_price_round": 1000.0})
        new = bench_doc({"maps_price_round": 1300.0})  # +30% > default 25%
        code, out = self.run_main(old, new)
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION", out)
        self.assertIn("maps_price_round", out)

    def test_slowdown_within_threshold_passes(self):
        old = bench_doc({"maps_price_round": 1000.0})
        new = bench_doc({"maps_price_round": 1200.0})  # +20% < 25%
        code, _ = self.run_main(old, new)
        self.assertEqual(code, 0)

    def test_custom_threshold_is_honored(self):
        old = bench_doc({"maps_price_round": 1000.0})
        new = bench_doc({"maps_price_round": 1200.0})
        code, _ = self.run_main(old, new, ["--threshold", "0.1"])
        self.assertEqual(code, 1)

    def test_speedup_never_fails(self):
        old = bench_doc({"maps_price_round": 1000.0})
        new = bench_doc({"maps_price_round": 200.0})
        code, _ = self.run_main(old, new)
        self.assertEqual(code, 0)

    def test_scale_mismatch_skips_the_gate(self):
        old = bench_doc({"maps_price_round": 1000.0}, scale="small")
        # A 10x "regression" must NOT fail when scales differ.
        new = bench_doc({"maps_price_round": 10000.0}, scale="large")
        code, out = self.run_main(old, new)
        self.assertEqual(code, 0)
        self.assertIn("skipping regression gate", out)

    def test_new_and_retired_keys_are_reported_not_fatal(self):
        old = bench_doc({"maps_price_round": 1000.0, "engine_period": 2000.0})
        new = bench_doc({"maps_price_round": 1000.0, "oracle_search": 500.0})
        code, out = self.run_main(old, new)
        self.assertEqual(code, 0)
        self.assertIn("retired", out)  # engine_period left
        self.assertIn("new", out)      # oracle_search arrived

    def test_missing_ns_per_op_is_no_data_not_a_crash(self):
        old = bench_doc({"maps_price_round": 1000.0})
        new = bench_doc({"maps_price_round": 1000.0},
                        drop_ns_for={"maps_price_round"})
        code, out = self.run_main(old, new)
        self.assertEqual(code, 0)
        self.assertIn("no-data", out)

    def test_untracked_keys_never_gate(self):
        # engine_period_pipelined is pool-backed and ungated by default.
        old = bench_doc({"maps_price_round": 1000.0,
                         "engine_period_pipelined": 100.0})
        new = bench_doc({"maps_price_round": 1000.0,
                         "engine_period_pipelined": 9000.0})
        code, _ = self.run_main(old, new)
        self.assertEqual(code, 0)

    def test_explicit_keys_override_the_default_set(self):
        old = bench_doc({"engine_period_pipelined": 100.0})
        new = bench_doc({"engine_period_pipelined": 9000.0})
        code, _ = self.run_main(old, new,
                                ["--keys", "engine_period_pipelined"])
        self.assertEqual(code, 1)

    def test_zero_old_time_regression_is_infinite_ratio(self):
        old = bench_doc({"maps_price_round": 0.0})
        new = bench_doc({"maps_price_round": 10.0})
        code, out = self.run_main(old, new)
        self.assertEqual(code, 1)
        self.assertIn("inf", out)

    # -- telemetry overhead gate (engine_period_metrics_on vs engine_period)

    def test_overhead_within_budget_passes(self):
        doc = bench_doc({"engine_period": 1000.0,
                         "engine_period_metrics_on": 1040.0})  # 4% < 5%
        code, out = self.run_main(doc, doc)
        self.assertEqual(code, 0)
        self.assertIn("engine_period_metrics_on / engine_period = 1.040", out)

    def test_overhead_beyond_budget_fails_even_without_regression(self):
        # Both files identical (no cross-file regression), but telemetry
        # costs 10% in the new run: the same-file gate must fail it.
        doc = bench_doc({"engine_period": 1000.0,
                         "engine_period_metrics_on": 1100.0})
        code, out = self.run_main(doc, doc)
        self.assertEqual(code, 1)
        self.assertIn("OVERHEAD", out)
        self.assertIn("telemetry overhead gate", out)

    def test_overhead_gate_only_fails_on_the_new_file(self):
        # Overhead violation in OLD only (since fixed) must not fail.
        old = bench_doc({"engine_period": 1000.0,
                         "engine_period_metrics_on": 1500.0})
        new = bench_doc({"engine_period": 1000.0,
                         "engine_period_metrics_on": 1020.0})
        code, _ = self.run_main(old, new)
        self.assertEqual(code, 0)

    def test_overhead_gate_applies_even_on_scale_mismatch(self):
        # The cross-file gate is skipped on scale mismatch, but the ratio
        # within the new file is scale-free and still gates.
        old = bench_doc({"engine_period": 1000.0}, scale="small")
        new = bench_doc({"engine_period": 1000.0,
                         "engine_period_metrics_on": 1200.0}, scale="large")
        code, out = self.run_main(old, new)
        self.assertEqual(code, 1)
        self.assertIn("skipping regression gate", out)
        self.assertIn("telemetry overhead gate", out)

    def test_overhead_gate_skips_when_keys_are_absent(self):
        # Baselines predating the telemetry keys must not trip the gate.
        doc = bench_doc({"engine_period": 1000.0})
        code, _ = self.run_main(doc, doc)
        self.assertEqual(code, 0)

    def test_check_overhead_skips_untimed_entries(self):
        benches = {"engine_period": {"name": "engine_period"},
                   "engine_period_metrics_on":
                       {"name": "engine_period_metrics_on",
                        "ns_per_op": 1100.0}}
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            failures = compare_bench.check_overhead(benches)
        self.assertEqual(failures, [])


if __name__ == "__main__":
    unittest.main()
