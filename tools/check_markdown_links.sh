#!/usr/bin/env bash
# Fails (exit 1) when any intra-repo markdown link is broken.
#
# Checks every [text](target) in the repo's tracked *.md files (skipping
# build trees). External links (a scheme like https://) and pure anchors
# (#section) are ignored; everything else must resolve to an existing file
# or directory relative to the linking document (anchors after the path are
# stripped). Run from anywhere inside the repo; CI runs it as the docs job.
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
status=0
checked=0

# Tracked markdown only when git is available; else a pruned find.
if git -C "$root" rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  files=$(git -C "$root" ls-files --cached --others --exclude-standard '*.md')
else
  files=$(cd "$root" && find . -name '*.md' -not -path './build*/*' \
            -not -path './.git/*' | sed 's|^\./||')
fi

for doc in $files; do
  dir="$root/$(dirname "$doc")"
  # Extract (target) of every markdown link; tolerate several per line.
  while IFS= read -r target; do
    case "$target" in
      ''|\#*) continue ;;                     # pure anchor
      *://*|mailto:*) continue ;;             # external
    esac
    path="${target%%#*}"                      # strip anchor
    path="${path%% \"*}"                      # strip optional "title"
    path="${path%% \'*}"                      # strip optional 'title'
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$root/$path" ]; then
      echo "BROKEN: $doc -> $target"
      status=1
    fi
    checked=$((checked + 1))
  done <<EOF
$(grep -o '\[[^]]*\]([^)]*)' "$root/$doc" 2>/dev/null | sed 's/^\[[^]]*\](//; s/)$//')
EOF
done

echo "checked $checked intra-repo markdown links"
exit $status
