#!/usr/bin/env python3
"""Diff two BENCH_micro.json files and fail on tracked-key regressions.

Usage:
  compare_bench.py OLD.json NEW.json [--threshold 0.25] [--keys k1,k2,...]

Compares ns_per_op for every tracked key present in BOTH files (keys only
in NEW are reported as new, keys only in OLD as retired; neither fails the
run). Exits 1 when any tracked key regressed by more than --threshold
(fractional; 0.25 = 25% slower), which is what the CI bench-smoke job gates
on. Scale mismatches between the two files make per-op times incomparable,
so the comparison is skipped (exit 0) with a notice.

Timing keys only: peak_bytes is reported for context but never gates —
footprint policy belongs to the peak_round_bytes tests.
"""

import argparse
import json
import sys

# Keys gated by default: the stable hot-path trajectory. Pool-backed keys
# (*_pooled, *_sharded, *_pipelined — e.g. engine_period_pipelined) default
# to ungated because their ns_per_op depends on the runner's core count,
# which differs between CI hosts; pass --keys to gate them on fixed
# hardware.
DEFAULT_KEYS = [
    "maps_price_round",
    "bipartite_graph_build",
    "oracle_search",
    "warmup_probing",
    "mc_expected_revenue",
    "simulator_periods",
    "engine_period",
    "checkpoint_save",
    "checkpoint_restore",
    # Sharded serving closes. k1 is serial (router + one region). k2/k4 run
    # the regions over a pool but are gated anyway: the close is dominated
    # by the matching core, whose work-split across bands (not the host's
    # core count) sets the trajectory, and a regression here is exactly the
    # kind the sharded tier exists to catch.
    "sharded_engine_period_k1",
    "sharded_engine_period_k2",
    "sharded_engine_period_k4",
    # Degraded serving: K=2 with failure domains on and a seeded coin-flip
    # close failure on region 1. Averages the quarantine close (rewind +
    # deferral sweep) and the recovery close (resubmission) so regressions
    # in the fault path itself are caught, not just the healthy path.
    "sharded_engine_period_degraded",
    # Telemetry: the same serial close as engine_period with a live
    # MetricsRegistry + TraceLog attached (also cross-gated against
    # engine_period within each file — see OVERHEAD_GATES), and the unit
    # cost of one Histogram::Record on the instrumented hot path.
    "engine_period_metrics_on",
    "obs_histogram_record",
]

# Same-file overhead gates: (numerator_key, baseline_key, max_ratio).
# Checked within NEW alone (and reported for OLD), so they hold even when
# the old/new scale mismatch skips the cross-file gate. The observability
# contract (DESIGN.md §16) budgets instrumentation at 5% of the close.
OVERHEAD_GATES = [
    ("engine_period_metrics_on", "engine_period", 1.05),
]


def load(path):
    with open(path) as f:
        doc = json.load(f)
    return doc, {b["name"]: b for b in doc.get("benchmarks", [])}


def check_overhead(benches, gates=None, label="new"):
    """Applies the same-file OVERHEAD_GATES to one bench map.

    Returns a list of (numerator_key, baseline_key, ratio, max_ratio)
    violations. Gates whose keys are absent or untimed are skipped (older
    baselines predate the telemetry keys), as is a non-positive baseline.
    """
    failures = []
    for num_key, base_key, max_ratio in (OVERHEAD_GATES if gates is None
                                         else gates):
        if num_key not in benches or base_key not in benches:
            continue
        num = benches[num_key].get("ns_per_op")
        base = benches[base_key].get("ns_per_op")
        if num is None or base is None or base <= 0:
            continue
        ratio = num / base
        flag = ""
        if ratio > max_ratio:
            flag = "  << OVERHEAD"
            failures.append((num_key, base_key, ratio, max_ratio))
        print(f"[{label}] {num_key} / {base_key} = {ratio:.3f} "
              f"(max {max_ratio:.2f}){flag}")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("old")
    parser.add_argument("new")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max tolerated fractional slowdown (default .25)")
    parser.add_argument("--keys", default=",".join(DEFAULT_KEYS),
                        help="comma-separated tracked keys to gate")
    args = parser.parse_args()

    old_doc, old = load(args.old)
    new_doc, new = load(args.new)

    if old_doc.get("scale") != new_doc.get("scale"):
        print(f"scale changed ({old_doc.get('scale')} -> "
              f"{new_doc.get('scale')}): per-op times not comparable, "
              "skipping regression gate")
        # Overhead ratios are scale-free (numerator and baseline come from
        # the same file), so that gate still applies to the new run.
        overhead = check_overhead(new)
        if overhead:
            worst = ", ".join(f"{nk} {r:.2f}x vs {bk} (max {m:.2f})"
                              for nk, bk, r, m in overhead)
            print(f"\nFAIL: telemetry overhead gate: {worst}")
            return 1
        return 0

    keys = [k for k in args.keys.split(",") if k]
    failures = []
    print(f"{'key':32} {'old ns/op':>14} {'new ns/op':>14} {'ratio':>8}")
    for key in keys:
        if key not in old:
            print(f"{key:32} {'-':>14} "
                  f"{new[key]['ns_per_op'] if key in new else '-':>14} "
                  f"{'new':>8}")
            continue
        if key not in new:
            print(f"{key:32} {old[key]['ns_per_op']:>14.0f} {'-':>14} "
                  f"{'retired':>8}")
            continue
        o, n = old[key].get("ns_per_op"), new[key].get("ns_per_op")
        if o is None or n is None:
            # A bench entry without a timing (e.g. a crashed run's partial
            # JSON) cannot gate; report it rather than crash the comparison.
            print(f"{key:32} {'?':>14} {'?':>14} {'no-data':>8}")
            continue
        ratio = n / o if o > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + args.threshold:
            flag = "  << REGRESSION"
            failures.append((key, ratio))
        print(f"{key:32} {o:>14.0f} {n:>14.0f} {ratio:>8.3f}{flag}")

    # Same-file telemetry overhead gates: the old file's ratio is printed
    # for context; only the new file's ratio gates.
    check_overhead(old, label="old")
    overhead = check_overhead(new)

    if failures or overhead:
        parts = []
        if failures:
            worst = ", ".join(f"{k} ({r:.2f}x)" for k, r in failures)
            parts.append(f"{len(failures)} tracked key(s) regressed more "
                         f"than {args.threshold:.0%}: {worst}")
        if overhead:
            worst = ", ".join(f"{nk} {r:.2f}x vs {bk} (max {m:.2f})"
                              for nk, bk, r, m in overhead)
            parts.append(f"telemetry overhead gate: {worst}")
        print(f"\nFAIL: {'; '.join(parts)}")
        return 1
    print(f"\nOK: no tracked key regressed more than {args.threshold:.0%} "
          "and telemetry overhead is within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
