// robustness_matrix: strategies x fuzzed adversarial scenarios, gated.
//
// For every (scenario, strategy) cell the runner materializes the scenario
// workload from (spec, --seed), streams it through a monolithic MarketEngine
// behind a snapshot-recording strategy wrapper, checks the conservation
// invariants of service/outcome_invariants.h after every close, and scores
// the posted prices of each recorded period against the hindsight oracle of
// pricing/oracle_exact.h (exact where the instance allows, CI-bounded Monte
// Carlo elsewhere). The result is one machine-readable ROBUSTNESS.json; the
// exit status is non-zero when any cell violated an invariant or exceeded
// its scenario's regret budget — which is what the CI robustness job gates
// on.
//
// Usage:
//   robustness_matrix --out=ROBUSTNESS.json [--scenarios=a,b]
//     [--strategies=MAPS,BaseP] [--seed=1] [--periods=16] [--threads=2]
//     [--regret_every=1] [--mc_batch=1024] [--mc_max_worlds=65536]
//     [--mc_rel=0.02] [--mc_abs=0.001] [--regret_budget=0]
//
//   # Emit one fuzzed scenario as a JSONL replay log and exit (the CI
//   # differential sharded-vs-monolith step feeds these to maps_cli):
//   robustness_matrix --emit_scenario=boundary_heavy_k2 --seed=1
//     --emit_out=boundary.jsonl [--inject_malformed_every=0]

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "pricing/oracle_exact.h"
#include "pricing/strategy.h"
#include "service/market_engine.h"
#include "service/outcome_invariants.h"
#include "sim/metrics.h"
#include "sim/scenario_fuzzer.h"
#include "util/flags.h"
#include "util/thread_pool.h"

namespace maps {
namespace {

int Fail(const std::string& message) {
  std::cerr << "robustness_matrix: " << message << "\n";
  return 1;
}

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string Quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

/// Rescales a spec to a shorter CI horizon, keeping every adversarial
/// window inside it (drift and churn land mid-horizon, the surge straddles
/// the middle).
ScenarioSpec WithHorizon(ScenarioSpec spec, int periods) {
  if (periods <= 0 || periods == spec.num_periods) return spec;
  spec.num_periods = periods;
  spec.drift_period = std::max(1, periods / 2);
  spec.churn_period = std::max(1, periods / 2);
  spec.surge_len = std::min(spec.surge_len, std::max(1, periods / 4));
  spec.surge_begin = std::max(0, periods / 2 - spec.surge_len / 2);
  return spec;
}

/// Pass-through strategy that records, per priced round, the snapshot
/// contents (tasks, workers) and the quotes the inner strategy posted —
/// exactly what EvaluatePeriodRegret needs to rebuild the period later.
class RegretProbe : public PricingStrategy {
 public:
  struct Round {
    int32_t period = 0;
    std::vector<Task> tasks;
    std::vector<Worker> workers;
    std::vector<double> prices;
  };

  explicit RegretProbe(PricingStrategy* inner) : inner_(inner) {}

  std::string name() const override { return inner_->name(); }

  Status Warmup(const GridPartition& grid, DemandOracle* history) override {
    return inner_->Warmup(grid, history);
  }

  void LendPool(ThreadPool* pool) override { inner_->LendPool(pool); }

  Status PriceRound(const MarketSnapshot& snapshot,
                    std::vector<double>* grid_prices) override {
    MAPS_RETURN_NOT_OK(inner_->PriceRound(snapshot, grid_prices));
    Round round;
    round.period = snapshot.period();
    round.tasks = snapshot.tasks();
    round.workers = snapshot.workers();
    round.prices = *grid_prices;
    rounds_.push_back(std::move(round));
    return Status::OK();
  }

  void ObserveFeedback(const MarketSnapshot& snapshot,
                       const std::vector<double>& grid_prices,
                       const std::vector<bool>& accepted) override {
    inner_->ObserveFeedback(snapshot, grid_prices, accepted);
  }

  size_t MemoryFootprintBytes() const override {
    return inner_->MemoryFootprintBytes();
  }

  const std::vector<Round>& rounds() const { return rounds_; }

 private:
  PricingStrategy* inner_;
  std::vector<Round> rounds_;
};

/// One scored period of a cell's regret curve (schema v2): enough to plot
/// regret-over-time and spot when a strategy starts bleeding, not just how
/// much it bled in total.
struct RegretCurvePoint {
  int32_t period = 0;
  double oracle = 0.0;
  double posted = 0.0;
  double regret = 0.0;  // raw, can go negative
};

/// Aggregated regret of one (scenario, strategy) cell.
struct RegretSummary {
  int64_t evaluated_periods = 0;
  std::map<std::string, int64_t> oracle_modes;
  double sum_oracle = 0.0;
  double sum_posted = 0.0;
  double sum_regret = 0.0;          // raw, can go negative (uniform regimes)
  double sum_regret_clipped = 0.0;  // per-period max(regret, 0)
  double max_period_regret_frac = 0.0;
  int64_t mc_worlds = 0;
  int64_t mc_converged = 0;
  /// sum_regret_clipped / sum_oracle (0 when the oracle earned nothing).
  double regret_frac = 0.0;
  /// Per-period curve, one point per scored period in period order.
  std::vector<RegretCurvePoint> curve;
};

/// Wall-clock latency of one engine stage across a cell's periods, lifted
/// from the cell's private MetricsRegistry at export time.
struct StageLatency {
  std::string name;  // e.g. "engine.close.matching_ns"
  int64_t count = 0;
  int64_t sum_ns = 0;
  int64_t p50_ns = 0;
  int64_t p90_ns = 0;
  int64_t p99_ns = 0;
};

/// One (scenario, strategy) cell of the matrix.
struct CellReport {
  std::string strategy;
  int closed_periods = 0;
  int skipped_periods = 0;
  int64_t invariant_violations = 0;
  std::string first_violation;
  double total_revenue = 0.0;
  RegretSummary regret;
  /// Per-stage close latencies (prebuild, price round, matching, MC) — the
  /// matrix doubles as a coarse perf profile of each strategy under stress.
  std::vector<StageLatency> stages;
  bool pass = true;
  std::string fail_reason;
};

struct MatrixConfig {
  uint64_t seed = 1;
  int periods = 0;
  int regret_every = 1;
  double regret_budget_override = 0.0;
  RegretOptions regret;
};

Result<CellReport> RunCell(const ScenarioSpec& spec, const Workload& workload,
                           const StrategyFactory& factory, size_t strategy_idx,
                           const MatrixConfig& config, ThreadPool* pool) {
  CellReport cell;
  cell.strategy = factory.name;

  const std::unique_ptr<PricingStrategy> inner = factory.make();
  RegretProbe probe(inner.get());

  // Each cell gets its own registry so stage latencies are attributable to
  // one (scenario, strategy) pair; telemetry never changes engine outputs.
  obs::MetricsRegistry registry;
  EngineOptions options;
  options.lifecycle = workload.lifecycle;
  options.pool = pool;
  options.metrics = &registry;
  MarketEngine engine(&workload.grid, &probe, options);

  DemandOracle history = workload.oracle.Fork(101 + strategy_idx);
  MAPS_RETURN_NOT_OK(probe.Warmup(workload.grid, &history));

  // Stream the workload through the event API, checking invariants at
  // every close.
  size_t next_task = 0;
  size_t next_worker = 0;
  PeriodOutcome outcome;
  EngineRejectionCounters previous;
  bool has_previous = false;
  std::vector<Task> period_tasks;
  for (int32_t t = 0; t < workload.num_periods; ++t) {
    while (next_worker < workload.workers.size() &&
           workload.workers[next_worker].period == t) {
      MAPS_RETURN_NOT_OK(engine.AddWorker(workload.workers[next_worker]));
      ++next_worker;
    }
    period_tasks.clear();
    while (next_task < workload.tasks.size() &&
           workload.tasks[next_task].period == t) {
      const Task& task = workload.tasks[next_task];
      MAPS_RETURN_NOT_OK(engine.SubmitTask(task, workload.valuations[next_task]));
      period_tasks.push_back(task);
      ++next_task;
    }
    MAPS_RETURN_NOT_OK(engine.ClosePeriod(&outcome));
    InvariantContext context;
    context.period_tasks = &period_tasks;
    if (has_previous) context.previous_rejections = &previous;
    const Status invariants = CheckPeriodOutcomeInvariants(outcome, context);
    if (!invariants.ok()) {
      ++cell.invariant_violations;
      if (cell.first_violation.empty()) {
        cell.first_violation = invariants.ToString();
      }
    }
    previous = outcome.rejections;
    has_previous = true;
    ++cell.closed_periods;
    if (outcome.skipped) ++cell.skipped_periods;
    cell.total_revenue += outcome.revenue;
  }

  // Hindsight regret of the recorded rounds (every --regret_every-th).
  MAPS_ASSIGN_OR_RETURN(PriceLadder ladder,
                        MakeLadderFromConfig(PricingConfig{}));
  for (size_t i = 0; i < probe.rounds().size();
       i += static_cast<size_t>(config.regret_every)) {
    const RegretProbe::Round& round = probe.rounds()[i];
    MAPS_ASSIGN_OR_RETURN(
        DemandOracle truth,
        DemandOracle::Make(ReplicateDemand(*TrueDemandAt(spec, round.period),
                                           workload.grid.num_cells()),
                           /*seed=*/1));
    const MarketSnapshot snapshot(&workload.grid, round.period, round.tasks,
                                  round.workers);
    MAPS_ASSIGN_OR_RETURN(
        PeriodRegret r,
        EvaluatePeriodRegret(snapshot, truth, ladder, round.prices,
                             config.regret));
    ++cell.regret.evaluated_periods;
    ++cell.regret.oracle_modes[OracleModeName(r.oracle_mode)];
    cell.regret.sum_oracle += r.oracle_value;
    cell.regret.sum_posted += r.posted_value;
    cell.regret.sum_regret += r.regret;
    cell.regret.sum_regret_clipped += std::max(r.regret, 0.0);
    if (r.oracle_value > 0.0) {
      cell.regret.max_period_regret_frac =
          std::max(cell.regret.max_period_regret_frac,
                   std::max(r.regret, 0.0) / r.oracle_value);
    }
    cell.regret.mc_worlds += r.mc_worlds;
    if (r.exact || r.mc_worlds > 0) ++cell.regret.mc_converged;
    cell.regret.curve.push_back(
        {round.period, r.oracle_value, r.posted_value, r.regret});
  }
  if (cell.regret.sum_oracle > 0.0) {
    cell.regret.regret_frac =
        cell.regret.sum_regret_clipped / cell.regret.sum_oracle;
  }

  // Lift the per-stage close timings out of the cell's registry.
  for (const auto& named : registry.histograms()) {
    if (named.metric->count() == 0) continue;
    StageLatency stage;
    stage.name = named.name;
    stage.count = named.metric->count();
    stage.sum_ns = named.metric->sum();
    stage.p50_ns = named.metric->Percentile(0.50);
    stage.p90_ns = named.metric->Percentile(0.90);
    stage.p99_ns = named.metric->Percentile(0.99);
    cell.stages.push_back(std::move(stage));
  }

  const double budget = config.regret_budget_override > 0.0
                            ? config.regret_budget_override
                            : spec.regret_budget_frac;
  if (cell.invariant_violations > 0) {
    cell.pass = false;
    cell.fail_reason = "invariant violation: " + cell.first_violation;
  } else if (cell.regret.regret_frac > budget) {
    cell.pass = false;
    std::ostringstream reason;
    reason << "regret fraction " << cell.regret.regret_frac
           << " exceeds budget " << budget;
    cell.fail_reason = reason.str();
  }
  return cell;
}

void WriteCellJson(std::ostream& out, const CellReport& cell,
                   const std::string& indent) {
  out << indent << "{\"strategy\":" << Quote(cell.strategy)
      << ",\"closed_periods\":" << cell.closed_periods
      << ",\"skipped_periods\":" << cell.skipped_periods
      << ",\"invariant_violations\":" << cell.invariant_violations
      << ",\"first_violation\":" << Quote(cell.first_violation)
      << ",\"total_revenue\":" << Num(cell.total_revenue) << ",\n"
      << indent << " \"regret\":{\"evaluated_periods\":"
      << cell.regret.evaluated_periods << ",\"oracle_modes\":{";
  bool first = true;
  for (const auto& [mode, count] : cell.regret.oracle_modes) {
    if (!first) out << ",";
    first = false;
    out << Quote(mode) << ":" << count;
  }
  out << "},\"sum_oracle\":" << Num(cell.regret.sum_oracle)
      << ",\"sum_posted\":" << Num(cell.regret.sum_posted)
      << ",\"sum_regret\":" << Num(cell.regret.sum_regret)
      << ",\"sum_regret_clipped\":" << Num(cell.regret.sum_regret_clipped)
      << ",\"regret_frac\":" << Num(cell.regret.regret_frac)
      << ",\"max_period_regret_frac\":"
      << Num(cell.regret.max_period_regret_frac)
      << ",\"mc_worlds\":" << cell.regret.mc_worlds << ",\n"
      << indent << "  \"curve\":[";
  for (size_t i = 0; i < cell.regret.curve.size(); ++i) {
    const RegretCurvePoint& p = cell.regret.curve[i];
    if (i > 0) out << ",";
    out << "{\"t\":" << p.period << ",\"oracle\":" << Num(p.oracle)
        << ",\"posted\":" << Num(p.posted)
        << ",\"regret\":" << Num(p.regret) << "}";
  }
  out << "]},\n"
      << indent << " \"stage_ns\":{";
  for (size_t i = 0; i < cell.stages.size(); ++i) {
    const StageLatency& s = cell.stages[i];
    if (i > 0) out << ",";
    out << Quote(s.name) << ":{\"count\":" << s.count << ",\"sum\":" << s.sum_ns
        << ",\"p50\":" << s.p50_ns << ",\"p90\":" << s.p90_ns
        << ",\"p99\":" << s.p99_ns << "}";
  }
  out << "},\n"
      << indent << " \"pass\":" << (cell.pass ? "true" : "false")
      << ",\"fail_reason\":" << Quote(cell.fail_reason) << "}";
}

int Main(int argc, char** argv) {
  auto flags_or = FlagSet::Parse(argc, argv);
  if (!flags_or.ok()) return Fail(flags_or.status().ToString());
  const FlagSet& flags = flags_or.ValueOrDie();

  MatrixConfig config;
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  config.periods = static_cast<int>(flags.GetInt("periods", 0));
  config.regret_every =
      std::max(1, static_cast<int>(flags.GetInt("regret_every", 1)));
  config.regret_budget_override = flags.GetDouble("regret_budget", 0.0);
  config.regret.mc.batch_worlds =
      static_cast<int>(flags.GetInt("mc_batch", 1024));
  config.regret.mc.max_worlds = flags.GetInt("mc_max_worlds", 65536);
  config.regret.mc.rel_half_width = flags.GetDouble("mc_rel", 0.02);
  config.regret.mc.abs_half_width = flags.GetDouble("mc_abs", 0.001);
  // The per-grid odometer costs combos x 2^n exact matchings per period —
  // viable only for genuinely tiny periods, so the matrix default is far
  // below the library's 2e6 research guard and typical fuzzer periods score
  // through the exact-uniform / MC-uniform regimes instead.
  config.regret.max_exact_tasks =
      static_cast<int>(flags.GetInt("max_exact_tasks", 16));
  config.regret.max_exact_combinations =
      flags.GetDouble("max_exact_combos", 4096.0);
  const int threads = static_cast<int>(flags.GetInt("threads", 0));
  const std::string scenarios_csv = flags.GetString("scenarios", "all");
  const std::string strategies_csv = flags.GetString("strategies", "all");
  const std::string out_path = flags.GetString("out", "ROBUSTNESS.json");
  const std::string emit_scenario = flags.GetString("emit_scenario", "");
  const std::string emit_out = flags.GetString("emit_out", "scenario.jsonl");
  const int inject_malformed_every =
      static_cast<int>(flags.GetInt("inject_malformed_every", 0));
  if (const Status st = flags.RejectUnread(); !st.ok()) {
    return Fail(st.ToString());
  }

  // Resolve the scenario slice.
  std::vector<ScenarioSpec> scenarios;
  for (const ScenarioSpec& spec : DefaultScenarioMatrix()) {
    scenarios.push_back(WithHorizon(spec, config.periods));
  }
  if (!emit_scenario.empty()) {
    for (const ScenarioSpec& spec : scenarios) {
      if (spec.name != emit_scenario) continue;
      std::ofstream out(emit_out);
      if (!out) return Fail("cannot open " + emit_out);
      const Status st = WriteScenarioLog(spec, config.seed, out,
                                         inject_malformed_every);
      if (!st.ok()) return Fail(st.ToString());
      std::cout << "wrote scenario '" << emit_scenario << "' (seed "
                << config.seed << ") to " << emit_out << "\n";
      return 0;
    }
    return Fail("unknown scenario '" + emit_scenario + "'");
  }
  if (scenarios_csv != "all") {
    std::vector<ScenarioSpec> picked;
    for (const std::string& name : SplitCsv(scenarios_csv)) {
      bool found = false;
      for (const ScenarioSpec& spec : scenarios) {
        if (spec.name == name) {
          picked.push_back(spec);
          found = true;
          break;
        }
      }
      if (!found) return Fail("unknown scenario '" + name + "'");
    }
    scenarios = std::move(picked);
  }

  // Resolve the strategy slice.
  std::vector<StrategyFactory> strategies = DefaultStrategies(PricingConfig{});
  if (strategies_csv != "all") {
    std::vector<StrategyFactory> picked;
    for (const std::string& name : SplitCsv(strategies_csv)) {
      bool found = false;
      for (const StrategyFactory& factory : strategies) {
        if (factory.name == name) {
          picked.push_back(factory);
          found = true;
          break;
        }
      }
      if (!found) return Fail("unknown strategy '" + name + "'");
    }
    strategies = std::move(picked);
  }

  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  config.regret.pool = pool.get();

  std::ofstream out(out_path);
  if (!out) return Fail("cannot open " + out_path);
  out << "{\"schema\":\"robustness_matrix/v2\",\"seed\":" << config.seed
      << ",\"threads\":" << threads
      << ",\"periods_override\":" << config.periods
      << ",\"regret_every\":" << config.regret_every << ",\n"
      << " \"mc\":{\"batch_worlds\":" << config.regret.mc.batch_worlds
      << ",\"max_worlds\":" << config.regret.mc.max_worlds
      << ",\"z\":" << Num(config.regret.mc.z)
      << ",\"rel_half_width\":" << Num(config.regret.mc.rel_half_width)
      << ",\"abs_half_width\":" << Num(config.regret.mc.abs_half_width)
      << "},\n \"scenarios\":[\n";

  std::vector<std::string> failures;
  for (size_t si = 0; si < scenarios.size(); ++si) {
    const ScenarioSpec& spec = scenarios[si];
    auto workload_or = BuildScenarioWorkload(spec, config.seed);
    if (!workload_or.ok()) return Fail(workload_or.status().ToString());
    const Workload& workload = workload_or.ValueOrDie();
    std::cout << "scenario " << spec.name << " ("
              << ScenarioFamilyName(spec.family) << "): "
              << workload.tasks.size() << " tasks, "
              << workload.workers.size() << " workers, "
              << workload.num_periods << " periods\n";

    out << "  {\"name\":" << Quote(spec.name) << ",\"family\":"
        << Quote(ScenarioFamilyName(spec.family))
        << ",\"periods\":" << spec.num_periods
        << ",\"tasks\":" << workload.tasks.size()
        << ",\"workers\":" << workload.workers.size()
        << ",\"regret_budget_frac\":" << Num(spec.regret_budget_frac)
        << ",\n   \"runs\":[\n";
    for (size_t ki = 0; ki < strategies.size(); ++ki) {
      auto cell_or =
          RunCell(spec, workload, strategies[ki], ki, config, pool.get());
      if (!cell_or.ok()) return Fail(cell_or.status().ToString());
      const CellReport& cell = cell_or.ValueOrDie();
      WriteCellJson(out, cell, "    ");
      out << (ki + 1 < strategies.size() ? ",\n" : "\n");
      std::cout << "  " << cell.strategy << ": revenue "
                << cell.total_revenue << ", regret_frac "
                << cell.regret.regret_frac << " ("
                << cell.regret.evaluated_periods << " periods scored, "
                << cell.regret.mc_worlds << " MC worlds), invariants "
                << (cell.invariant_violations == 0 ? "green" : "VIOLATED")
                << (cell.pass ? "" : "  << FAIL") << "\n";
      if (!cell.pass) {
        failures.push_back(spec.name + "/" + cell.strategy + ": " +
                           cell.fail_reason);
      }
    }
    out << "   ]}" << (si + 1 < scenarios.size() ? ",\n" : "\n");
  }
  out << " ],\n \"failures\":[";
  for (size_t i = 0; i < failures.size(); ++i) {
    if (i > 0) out << ",";
    out << Quote(failures[i]);
  }
  out << "]}\n";
  if (!out) return Fail("write to " + out_path + " failed");
  out.close();

  if (!failures.empty()) {
    std::cerr << "\nFAIL: " << failures.size() << " cell(s):\n";
    for (const std::string& f : failures) std::cerr << "  " << f << "\n";
    return 1;
  }
  std::cout << "\nOK: all cells passed; report at " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace maps

int main(int argc, char** argv) { return maps::Main(argc, argv); }
