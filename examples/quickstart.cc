// Quickstart: generate a small spatial crowdsourcing market, run MAPS and
// the unified base price against the identical workload, and compare
// revenue.
//
//   $ ./build/examples/quickstart

#include <iostream>

#include "pricing/base_pricing.h"
#include "pricing/maps.h"
#include "sim/simulator.h"
#include "sim/synthetic.h"

int main() {
  using namespace maps;  // NOLINT

  // 1. Describe the market: 500 single-use workers, 4000 tasks over 100
  //    one-minute periods on a 10x10 grid; requester valuations are
  //    truncated-normal per grid (Table 3 of the paper, scaled down).
  SyntheticConfig config;
  config.num_workers = 500;
  config.num_tasks = 4000;
  config.num_periods = 100;
  config.seed = 7;

  auto workload_or = GenerateSynthetic(config);
  if (!workload_or.ok()) {
    std::cerr << "generation failed: " << workload_or.status() << "\n";
    return 1;
  }
  const Workload& workload = workload_or.ValueOrDie();
  std::cout << "Market: " << workload.tasks.size() << " tasks, "
            << workload.workers.size() << " workers, "
            << workload.grid.num_cells() << " grids, " << workload.num_periods
            << " periods\n\n";

  // 2. Run MAPS. RunSimulation warms the strategy up on historical probes,
  //    then replays the T periods: price -> requesters decide -> match ->
  //    account revenue.
  MapsOptions maps_options;  // paper defaults: p in [1,5], alpha = 0.5
  Maps maps_strategy(maps_options);
  auto maps_run = RunSimulation(workload, &maps_strategy);
  if (!maps_run.ok()) {
    std::cerr << "MAPS failed: " << maps_run.status() << "\n";
    return 1;
  }

  // 3. Run the BaseP baseline on the *same* workload.
  BasePricing base_strategy{PricingConfig{}};
  auto base_run = RunSimulation(workload, &base_strategy);
  if (!base_run.ok()) {
    std::cerr << "BaseP failed: " << base_run.status() << "\n";
    return 1;
  }

  const SimulationResult& m = maps_run.ValueOrDie();
  const SimulationResult& b = base_run.ValueOrDie();
  std::cout << "MAPS : revenue " << m.total_revenue << "  (matched "
            << m.num_matched << "/" << m.num_tasks << " tasks, "
            << m.total_time_sec << " s)\n";
  std::cout << "BaseP: revenue " << b.total_revenue << "  (matched "
            << b.num_matched << "/" << b.num_tasks << " tasks, "
            << b.total_time_sec << " s)\n";
  std::cout << "\nMAPS uplift: "
            << 100.0 * (m.total_revenue / b.total_revenue - 1.0) << "%\n";
  return 0;
}
