// Food-delivery lunch rush: builds a CUSTOM workload directly against the
// public API (no generator) — restaurants cluster in a food court, couriers
// start near depots, orders spike at noon — then compares all five pricing
// strategies on the identical market.
//
//   $ ./build/examples/food_delivery

#include <algorithm>
#include <iostream>

#include "sim/metrics.h"
#include "sim/simulator.h"
#include "sim/workload.h"

int main() {
  using namespace maps;  // NOLINT

  // A 6 km x 6 km city quarter cut into 6x6 grids of 1 km.
  auto grid = GridPartition::Make(Rect{0, 0, 6, 6}, 6, 6).ValueOrDie();

  // Demand model: customers near the food court tolerate higher delivery
  // fees (truncated-normal mean 2.6) than the suburbs (mean 1.8).
  const Point food_court{2.0, 2.0};
  std::vector<std::unique_ptr<DemandModel>> models;
  for (int g = 0; g < grid.num_cells(); ++g) {
    const double dist = EuclideanDistance(grid.CellCenter(g), food_court);
    const double mu = dist < 2.0 ? 2.6 : 1.8;
    models.push_back(
        std::make_unique<TruncatedNormalDemand>(mu, 0.9, 1.0, 5.0));
  }
  DemandOracle oracle =
      DemandOracle::Make(std::move(models), 11).ValueOrDie();

  Workload lunch(grid, std::move(oracle));
  lunch.name = "lunch-rush";
  lunch.num_periods = 90;  // 11:00 - 12:30, one-minute batches
  lunch.lifecycle.single_use = false;
  lunch.lifecycle.speed = 0.4;  // 24 km/h e-bikes

  // Orders: Gaussian spike centered at 12:00 (period 60), pickups at the
  // food court or one of two restaurant strips, drop-offs anywhere.
  Rng rng(99);
  const std::vector<Point> kitchens = {{2.0, 2.0}, {4.5, 4.5}, {1.0, 5.0}};
  const int num_orders = 2500;
  for (int i = 0; i < num_orders; ++i) {
    Task t;
    const double when = SampleNormal(rng, 60.0, 18.0);
    t.period = static_cast<int32_t>(std::clamp(when, 0.0, 89.0));
    const Point& k = kitchens[rng.NextBounded(kitchens.size())];
    t.origin = Rect{0, 0, 6, 6}.Clamp(
        {SampleNormal(rng, k.x, 0.4), SampleNormal(rng, k.y, 0.4)});
    t.destination = {rng.NextDouble(0, 6), rng.NextDouble(0, 6)};
    t.distance = EuclideanDistance(t.origin, t.destination);
    t.grid = lunch.grid.CellOf(t.origin);
    lunch.tasks.push_back(t);
  }
  std::sort(lunch.tasks.begin(), lunch.tasks.end(),
            [](const Task& a, const Task& b) { return a.period < b.period; });
  for (size_t i = 0; i < lunch.tasks.size(); ++i) {
    lunch.tasks[i].id = static_cast<TaskId>(i);
    lunch.valuations.push_back(
        lunch.oracle.model(lunch.tasks[i].grid).Sample(rng));
  }

  // Couriers: 160 riders clock in during the first hour near two depots,
  // each works a 45-minute shift and can pick up within 1.5 km.
  const std::vector<Point> depots = {{2.5, 2.5}, {4.0, 4.0}};
  for (int i = 0; i < 160; ++i) {
    Worker w;
    w.period = static_cast<int32_t>(rng.NextBounded(60));
    const Point& d = depots[i % depots.size()];
    w.location = Rect{0, 0, 6, 6}.Clamp(
        {SampleNormal(rng, d.x, 0.8), SampleNormal(rng, d.y, 0.8)});
    w.radius = 1.5;
    w.duration = 45;
    w.grid = lunch.grid.CellOf(w.location);
    lunch.workers.push_back(w);
  }
  std::sort(lunch.workers.begin(), lunch.workers.end(),
            [](const Worker& a, const Worker& b) {
              return a.period < b.period;
            });
  for (size_t i = 0; i < lunch.workers.size(); ++i) {
    lunch.workers[i].id = static_cast<WorkerId>(i);
  }

  if (Status st = ValidateWorkload(lunch); !st.ok()) {
    std::cerr << "workload invalid: " << st << "\n";
    return 1;
  }
  std::cout << "Lunch rush: " << lunch.tasks.size() << " orders, "
            << lunch.workers.size() << " couriers, "
            << lunch.num_periods << " minutes\n\n";

  // Head-to-head: every strategy prices the same lunch rush.
  Table table({"strategy", "revenue", "orders_delivered", "time_secs"});
  auto strategies = DefaultStrategies(PricingConfig{});
  for (size_t s = 0; s < strategies.size(); ++s) {
    auto strategy = strategies[s].make();
    SimOptions opts;
    opts.warmup_stream = 60 + s;
    auto run = RunSimulation(lunch, strategy.get(), opts);
    if (!run.ok()) {
      std::cerr << strategies[s].name << " failed: " << run.status() << "\n";
      return 1;
    }
    const SimulationResult& r = run.ValueOrDie();
    table.AddRow(strategies[s].name, r.total_revenue, r.num_matched,
                 r.total_time_sec);
  }
  std::cout << table.ToText();
  std::cout << "\nDelivery fee = unit price x trip distance; couriers"
               " return to service after each drop-off until their shift"
               " ends.\n";
  return 0;
}
