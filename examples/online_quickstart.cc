// Online quickstart: drive the MarketEngine directly through its event API
// — the serving path a live platform uses, with no pre-materialized
// workload. Workers sign on and off mid-horizon, tasks stream in each
// period, and ClosePeriod() returns the per-grid quotes, the accepted set,
// and the matches.
//
//   $ ./build/example_online_quickstart

#include <algorithm>
#include <iostream>
#include <vector>

#include "market/demand_model.h"
#include "pricing/maps.h"
#include "rng/random.h"
#include "service/market_engine.h"

int main() {
  using namespace maps;  // NOLINT

  // 1. The city: a 4x4 grid over a 100x100 extent. Online serving needs no
  //    workload — just the partition and a strategy.
  auto grid_or = GridPartition::Make(Rect{0, 0, 100, 100}, 4, 4);
  if (!grid_or.ok()) {
    std::cerr << "grid: " << grid_or.status() << "\n";
    return 1;
  }
  const GridPartition& grid = grid_or.ValueOrDie();

  // 2. Warm MAPS up on historical demand (truncated-normal valuations),
  //    then hand it to the engine. In production the probes would come
  //    from logged accept/reject decisions.
  Maps strategy{MapsOptions{}};
  TruncatedNormalDemand proto(2.0, 1.0, 1.0, 5.0);
  auto oracle_or =
      DemandOracle::Make(ReplicateDemand(proto, grid.num_cells()), 17);
  if (!oracle_or.ok()) {
    std::cerr << "oracle: " << oracle_or.status() << "\n";
    return 1;
  }
  if (auto st = strategy.Warmup(grid, &oracle_or.ValueOrDie()); !st.ok()) {
    std::cerr << "warmup: " << st << "\n";
    return 1;
  }

  EngineOptions options;
  options.lifecycle.single_use = false;  // drivers turn around after rides
  options.lifecycle.speed = 25.0;
  MarketEngine engine(&grid, &strategy, options);

  // 3. Serve ten periods of streaming traffic. Every event below could
  //    equally arrive over the wire; the JSONL twin of this program is
  //    examples/online_churn.jsonl via `maps_cli replay`.
  Rng rng(42);
  WorkerId next_worker = 0;
  TaskId next_task = 0;
  for (int i = 0; i < 6; ++i) {
    Worker w;
    w.id = next_worker++;
    w.location = {rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    w.radius = 35.0;
    w.duration = 100;
    if (auto st = engine.AddWorker(w); !st.ok()) {
      std::cerr << "add_worker: " << st << "\n";
      return 1;
    }
  }

  double total_revenue = 0.0;
  PeriodOutcome outcome;
  for (int period = 0; period < 10; ++period) {
    // Bursty submissions: a quiet mid-horizon lull, busier edges.
    const int burst = period == 4 ? 0 : 4 + (period % 3) * 3;
    for (int i = 0; i < burst; ++i) {
      Task task;
      task.id = next_task++;
      task.origin = {rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
      task.destination = {rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
      task.distance = EuclideanDistance(task.origin, task.destination);
      task.grid = grid.CellOf(task.origin);
      // The requester's private valuation: the engine only uses it to
      // resolve acceptance; the strategy never sees it.
      const double valuation = rng.NextDouble(0.5, 5.5);
      if (auto st = engine.SubmitTask(task, valuation); !st.ok()) {
        std::cerr << "submit_task: " << st << "\n";
        return 1;
      }
    }

    // Mid-horizon churn: half the original fleet signs off at period 5,
    // replaced by three fresh drivers.
    if (period == 5) {
      for (WorkerId id = 0; id < 3; ++id) {
        if (auto st = engine.RemoveWorker(id); !st.ok()) {
          std::cerr << "remove_worker: " << st << "\n";
          return 1;
        }
      }
      for (int i = 0; i < 3; ++i) {
        Worker w;
        w.id = next_worker++;
        w.location = {rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
        w.radius = 35.0;
        w.duration = 100;
        if (auto st = engine.AddWorker(w); !st.ok()) {
          std::cerr << "add_worker: " << st << "\n";
          return 1;
        }
      }
      std::cout << "-- churn: workers 0-2 signed off, "
                << "3 new drivers signed on --\n";
    }

    if (auto st = engine.ClosePeriod(&outcome); !st.ok()) {
      std::cerr << "close_period: " << st << "\n";
      return 1;
    }
    if (outcome.skipped) {
      std::cout << "period " << outcome.period << ": idle (no tasks, no "
                << "available workers)\n";
      continue;
    }
    double p_lo = outcome.prices[0], p_hi = outcome.prices[0];
    for (double p : outcome.prices) {
      p_lo = std::min(p_lo, p);
      p_hi = std::max(p_hi, p);
    }
    total_revenue += outcome.revenue;
    std::cout << "period " << outcome.period << ": " << outcome.num_tasks
              << " tasks, " << outcome.num_available_workers << " workers, "
              << "quotes in [" << p_lo << ", " << p_hi << "], "
              << outcome.accepted.size() << " accepted, "
              << outcome.matches.size() << " matched, revenue "
              << outcome.revenue << "\n";
  }

  std::cout << "\nserved " << engine.current_period() << " periods, "
            << engine.num_live_workers() << " workers still live, total "
            << "revenue " << total_revenue << " ("
            << engine.strategy_seconds() << " s in the strategy)\n";
  return 0;
}
