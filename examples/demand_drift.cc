// Demand drift: shows MAPS's change detector (Sec. 4.2.2) adapting when the
// market's willingness to pay collapses mid-run — e.g. a fare-sensitive
// late-night crowd replacing commuters.
//
// The run prices the same grid over 200 periods. At period 100 the true
// valuation distribution drops from mean 3.2 to mean 1.6. A MAPS instance
// with the detector re-learns the acceptance ratios and lowers its price; an
// instance without it keeps pricing against stale statistics.
//
//   $ ./build/examples/demand_drift

#include <iostream>

#include "pricing/maps.h"
#include "util/csv.h"

namespace {

using namespace maps;  // NOLINT

constexpr int kPeriods = 200;
constexpr int kDriftAt = 100;
constexpr int kTasksPerPeriod = 60;

/// Replays the drifting market against one strategy; returns total revenue.
double Replay(Maps* strategy, const GridPartition& grid, uint64_t seed,
              Table* trace, const std::string& label) {
  TruncatedNormalDemand before(3.2, 0.8, 1.0, 5.0);
  TruncatedNormalDemand after(1.6, 0.8, 1.0, 5.0);

  // Warm up on the pre-drift demand.
  DemandOracle warm =
      DemandOracle::Make(ReplicateDemand(before, 1), seed).ValueOrDie();
  if (Status st = strategy->Warmup(grid, &warm); !st.ok()) {
    std::cerr << "warmup failed: " << st << "\n";
    return 0.0;
  }

  Rng rng(seed ^ 0xabcdef);
  double revenue = 0.0;
  std::vector<double> prices;
  for (int t = 0; t < kPeriods; ++t) {
    const DemandModel& truth =
        t < kDriftAt ? static_cast<const DemandModel&>(before)
                     : static_cast<const DemandModel&>(after);
    // One busy grid, plentiful couriers.
    std::vector<Task> tasks;
    std::vector<Worker> workers;
    for (int i = 0; i < kTasksPerPeriod; ++i) {
      Task task;
      task.id = i;
      task.period = t;
      task.origin = {5.0 + 0.01 * i, 5.0};
      task.destination = {8.0, 5.0};
      task.distance = 3.0;
      task.grid = grid.CellOf(task.origin);
      tasks.push_back(task);
      Worker w;
      w.id = i;
      w.period = t;
      w.location = {5.0, 5.0};
      w.radius = 5.0;
      w.grid = grid.CellOf(w.location);
      workers.push_back(w);
    }
    MarketSnapshot snap(&grid, t, std::move(tasks), std::move(workers));
    if (Status st = strategy->PriceRound(snap, &prices); !st.ok()) {
      std::cerr << "pricing failed: " << st << "\n";
      return revenue;
    }
    const double p = prices[snap.tasks()[0].grid];
    std::vector<bool> accepted(snap.tasks().size());
    int accepts = 0;
    for (size_t i = 0; i < accepted.size(); ++i) {
      accepted[i] = truth.Sample(rng) >= p;
      if (accepted[i]) ++accepts;
    }
    strategy->ObserveFeedback(snap, prices, accepted);
    revenue += accepts * 3.0 * p;  // every accepted task finds a courier
    if (trace != nullptr && t % 20 == 10) {
      trace->AddRow(label, t, p,
                    accepts / static_cast<double>(kTasksPerPeriod));
    }
  }
  return revenue;
}

}  // namespace

int main() {
  auto grid = GridPartition::Make(Rect{0, 0, 10, 10}, 1, 1).ValueOrDie();

  MapsOptions with_detector;
  with_detector.pricing.alpha = 0.25;
  with_detector.change_window = 120;  // two periods of feedback per window
  MapsOptions without_detector = with_detector;
  without_detector.use_change_detector = false;

  Table trace({"variant", "period", "unit_price", "accept_ratio"});
  Maps adaptive(with_detector);
  Maps stale(without_detector);
  const double adaptive_revenue = Replay(&adaptive, grid, 9, &trace, "MAPS");
  const double stale_revenue =
      Replay(&stale, grid, 9, &trace, "MAPS-no-detector");

  std::cout << "Demand drops from mean 3.2 to mean 1.6 at period "
            << kDriftAt << ".\n\n"
            << trace.ToText() << "\n";
  std::cout << "revenue with change detection:    " << adaptive_revenue
            << "  (" << adaptive.change_resets() << " rung resets)\n";
  std::cout << "revenue without change detection: " << stale_revenue << "\n";
  return 0;
}
