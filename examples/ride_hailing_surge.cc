// Ride-hailing surge map: runs MAPS on the Beijing evening-peak surrogate
// and renders the per-grid unit prices of a rush-hour period as an ASCII
// heat map — hotspot grids with scarce supply surge, quiet grids stay at
// the Myerson price.
//
//   $ ./build/examples/ride_hailing_surge

#include <algorithm>
#include <iomanip>
#include <iostream>

#include "pricing/maps.h"
#include "sim/beijing.h"
#include "sim/simulator.h"

namespace {

using namespace maps;  // NOLINT

/// Captures the price vector of the busiest period.
class SurgeProbe : public Maps {
 public:
  explicit SurgeProbe(const MapsOptions& options) : Maps(options) {}

  Status PriceRound(const MarketSnapshot& snapshot,
                    std::vector<double>* grid_prices) override {
    MAPS_RETURN_NOT_OK(Maps::PriceRound(snapshot, grid_prices));
    if (static_cast<int>(snapshot.tasks().size()) > busiest_tasks_) {
      busiest_tasks_ = static_cast<int>(snapshot.tasks().size());
      busiest_period_ = snapshot.period();
      busiest_prices_ = *grid_prices;
      busiest_demand_.assign(snapshot.num_grids(), 0);
      busiest_supply_.assign(snapshot.num_grids(), 0);
      for (int g = 0; g < snapshot.num_grids(); ++g) {
        busiest_demand_[g] = static_cast<int>(snapshot.TasksInGrid(g).size());
        busiest_supply_[g] =
            static_cast<int>(snapshot.WorkersInGrid(g).size());
      }
    }
    return Status::OK();
  }

  int busiest_period() const { return busiest_period_; }
  const std::vector<double>& prices() const { return busiest_prices_; }
  const std::vector<int>& demand() const { return busiest_demand_; }
  const std::vector<int>& supply() const { return busiest_supply_; }

 private:
  int busiest_tasks_ = -1;
  int busiest_period_ = -1;
  std::vector<double> busiest_prices_;
  std::vector<int> busiest_demand_;
  std::vector<int> busiest_supply_;
};

}  // namespace

int main() {
  BeijingConfig config;
  config.window = BeijingConfig::Window::kEveningPeak;
  config.worker_duration = 15;
  config.population_scale = 0.05;  // keep the demo snappy
  config.seed = 2016;

  auto workload_or = GenerateBeijing(config);
  if (!workload_or.ok()) {
    std::cerr << "generation failed: " << workload_or.status() << "\n";
    return 1;
  }
  const Workload& workload = workload_or.ValueOrDie();
  std::cout << "Evening peak surrogate: " << workload.tasks.size()
            << " ride requests, " << workload.workers.size()
            << " drivers, 10x8 grid over ~17x18 km\n";

  SurgeProbe strategy{MapsOptions{}};
  auto run = RunSimulation(workload, &strategy);
  if (!run.ok()) {
    std::cerr << "simulation failed: " << run.status() << "\n";
    return 1;
  }
  const SimulationResult& r = run.ValueOrDie();
  std::cout << "Total revenue over 120 minutes: " << r.total_revenue
            << "  (" << r.num_matched << " rides)\n\n";

  const auto& grid = workload.grid;
  std::cout << "Unit-price surge map at the busiest minute (period "
            << strategy.busiest_period() << "); rows north to south:\n\n";
  for (int row = grid.rows() - 1; row >= 0; --row) {
    for (int col = 0; col < grid.cols(); ++col) {
      const int g = row * grid.cols() + col;
      std::cout << std::fixed << std::setprecision(2)
                << strategy.prices()[g] << " ";
    }
    std::cout << "\n";
  }
  std::cout << "\nDemand/supply of the five busiest grids that minute:\n";
  std::vector<int> order(grid.num_cells());
  for (int g = 0; g < grid.num_cells(); ++g) order[g] = g;
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](int a, int b) {
                      return strategy.demand()[a] > strategy.demand()[b];
                    });
  for (int i = 0; i < 5; ++i) {
    const int g = order[i];
    std::cout << "  grid " << std::setw(2) << g << ": " << std::setw(3)
              << strategy.demand()[g] << " requests, " << std::setw(3)
              << strategy.supply()[g] << " drivers, unit price "
              << strategy.prices()[g] << "\n";
  }
  return 0;
}
