// Walks through the paper's running example (Examples 1, 3 and 5):
// three tasks, three workers, Table 1 acceptance ratios, candidate prices
// {1, 2, 3} — and shows that MAPS recovers the optimal prices {3, 3, 2}
// with expected total revenue 4.075 (the paper rounds to 4.1).

#include <iostream>

#include "graph/possible_worlds.h"
#include "market/demand_model.h"
#include "pricing/maps.h"
#include "pricing/oracle_search.h"

int main() {
  using namespace maps;  // NOLINT

  // The region of Example 1: an 8x8 square cut into 16 grids of side 2.
  auto grid = GridPartition::Make(Rect{0, 0, 8, 8}, 4, 4).ValueOrDie();

  // Table 1: S(1) = 0.9, S(2) = 0.8, S(3) = 0.5 in every grid.
  TabulatedDemand table_one({1.0, 2.0, 3.0}, {0.9, 0.8, 0.5});
  DemandOracle oracle =
      DemandOracle::Make(ReplicateDemand(table_one, grid.num_cells()), 5)
          .ValueOrDie();

  // r1 (d=1.3) and r2 (d=0.7) share one local market and one reachable
  // worker; r3 (d=1.0) has two workers of its own.
  auto make_task = [&](TaskId id, Point origin, double distance) {
    Task t;
    t.id = id;
    t.origin = origin;
    t.destination = {origin.x + distance, origin.y};
    t.distance = distance;
    t.grid = grid.CellOf(origin);
    return t;
  };
  auto make_worker = [&](WorkerId id, Point loc, double radius) {
    Worker w;
    w.id = id;
    w.location = loc;
    w.radius = radius;
    w.grid = grid.CellOf(loc);
    return w;
  };
  std::vector<Task> tasks = {make_task(0, {1.0, 5.0}, 1.3),
                             make_task(1, {1.5, 5.0}, 0.7),
                             make_task(2, {5.0, 3.0}, 1.0)};
  std::vector<Worker> workers = {make_worker(0, {1.2, 5.0}, 0.6),
                                 make_worker(1, {5.0, 3.2}, 0.5),
                                 make_worker(2, {5.2, 3.0}, 0.5)};
  MarketSnapshot snapshot(&grid, 0, tasks, workers);
  const GridId market_a = grid.CellOf({1.0, 5.0});
  const GridId market_b = grid.CellOf({5.0, 3.0});

  std::cout << "Example 1 geometry: r1, r2 in grid " << market_a
            << "; r3 in grid " << market_b << " (0-based ids)\n\n";

  // --- Example 3: expected revenue of the prices {3, 3, 2} by exhaustive
  //     possible-world enumeration (Fig. 2).
  std::vector<double> paper_prices(grid.num_cells(), 2.0);
  paper_prices[market_a] = 3.0;
  const double revenue_paper =
      ExpectedRevenueOfPrices(snapshot, oracle, paper_prices);
  std::cout << "E[U] of prices {3, 3, 2} over all 2^3 possible worlds: "
            << revenue_paper << " (paper: 4.1 after rounding)\n";

  // A uniform price of 2 — optimal without range constraints — earns less.
  std::vector<double> uniform_two(grid.num_cells(), 2.0);
  std::cout << "E[U] of the uniform price 2:                          "
            << ExpectedRevenueOfPrices(snapshot, oracle, uniform_two)
            << "\n\n";

  // --- Optimality: brute force over all 3^2 price assignments.
  auto ladder = PriceLadder::FromPrices({1.0, 2.0, 3.0}).ValueOrDie();
  auto best = OracleSearch(snapshot, oracle, ladder).ValueOrDie();
  std::cout << "Brute-force optimum: grid " << market_a << " -> "
            << best.grid_prices[market_a] << ", grid " << market_b << " -> "
            << best.grid_prices[market_b]
            << ", E[U] = " << best.expected_revenue << "\n\n";

  // --- Example 5: MAPS reproduces those prices from learned statistics.
  MapsOptions options;
  options.pricing.explicit_ladder = {1.0, 2.0, 3.0};
  Maps strategy(options);
  DemandOracle history = oracle.Fork(1);
  if (Status st = strategy.Warmup(grid, &history); !st.ok()) {
    std::cerr << "warmup failed: " << st << "\n";
    return 1;
  }
  std::vector<double> prices;
  if (Status st = strategy.PriceRound(snapshot, &prices); !st.ok()) {
    std::cerr << "pricing failed: " << st << "\n";
    return 1;
  }
  std::cout << "MAPS base price p_b = " << strategy.base_price() << "\n";
  std::cout << "MAPS prices: grid " << market_a << " -> " << prices[market_a]
            << " (limited supply surges), grid " << market_b << " -> "
            << prices[market_b] << " (Myerson price)\n";
  std::cout << "MAPS E[U] = "
            << ExpectedRevenueOfPrices(snapshot, oracle, prices) << "\n";
  return 0;
}
