// GridPartition: Definition 1 of the paper. The region of interest is split
// into rows x cols equal cells, indexed 0..G-1 from the bottom-left,
// row-major (the paper's Fig. 1c indexes the same way, 1-based).

#pragma once

#include <cstdint>
#include <vector>

#include "geo/point.h"
#include "util/result.h"

namespace maps {

using GridId = int32_t;

/// \brief Uniform grid partition of a rectangular region.
class GridPartition {
 public:
  /// \param region the region of interest
  /// \param rows number of cells along y
  /// \param cols number of cells along x
  static Result<GridPartition> Make(const Rect& region, int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  /// Total number of grid cells G.
  int num_cells() const { return rows_ * cols_; }
  const Rect& region() const { return region_; }

  /// Maps a point to its cell id; points outside the region are clamped to
  /// the nearest boundary cell (workloads clamp before insertion, so this is
  /// a belt-and-braces path).
  GridId CellOf(const Point& p) const;

  /// The cell's bounding rectangle.
  Rect CellRect(GridId id) const;

  /// The cell's center point.
  Point CellCenter(GridId id) const;

  /// All cell ids whose rectangle intersects the disc (center, radius).
  /// Used to enumerate grids a worker can serve.
  std::vector<GridId> CellsIntersectingDisc(const Point& center,
                                            double radius) const;

  /// Allocation-free variant: clears and fills `out` (hot-loop callers keep
  /// one scratch vector alive across queries).
  void CellsIntersectingDisc(const Point& center, double radius,
                             std::vector<GridId>* out) const;

 private:
  GridPartition(const Rect& region, int rows, int cols);

  Rect region_;
  int rows_;
  int cols_;
  double cell_w_;
  double cell_h_;
};

}  // namespace maps
