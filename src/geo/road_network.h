// Road-network travel distances.
//
// Definition 2 allows d_r to be "Euclidean or road-network distance". This
// module provides the latter as a synthetic Manhattan-style lattice: nodes
// at regular intersections, 4-connected street segments, each segment
// carrying a congestion factor >= 1. Travel distance between two points is
// the shortest path (Dijkstra) between their nearest intersections plus the
// straight-line approaches.

#pragma once

#include <cstdint>
#include <vector>

#include "geo/point.h"
#include "rng/random.h"
#include "util/result.h"

namespace maps {

/// \brief A lattice road network over a rectangular region.
class RoadNetwork {
 public:
  /// \param region     covered area
  /// \param nx, ny     number of intersections along x / y (>= 2 each)
  /// \param congestion_jitter segments get factor 1 + U(0, jitter); 0 makes
  ///        every street free-flowing (distance == Manhattan distance up to
  ///        the lattice approach error)
  /// \param seed       congestion randomness
  static Result<RoadNetwork> MakeLattice(const Rect& region, int nx, int ny,
                                         double congestion_jitter,
                                         uint64_t seed);

  int num_nodes() const { return nx_ * ny_; }
  int nx() const { return nx_; }
  int ny() const { return ny_; }

  /// Node index of the intersection nearest to p.
  int NearestNode(const Point& p) const;

  /// Location of node `id`.
  Point NodeLocation(int id) const;

  /// Shortest road distance between two points: straight-line to the
  /// nearest intersections plus the shortest path between them.
  double Distance(const Point& a, const Point& b) const;

  /// Shortest path length between two nodes (Dijkstra).
  double NodeDistance(int from, int to) const;

  /// Multiplies the congestion factor of every segment touching node ids in
  /// `nodes` (e.g. to model an incident around a stadium).
  void CongestArea(const Point& center, double radius, double factor);

 private:
  RoadNetwork(const Rect& region, int nx, int ny);

  struct Edge {
    int to;
    double length;  // congested length
  };

  void AddEdge(int a, int b, double length);

  Rect region_;
  int nx_, ny_;
  double step_x_, step_y_;
  std::vector<std::vector<Edge>> adj_;
};

}  // namespace maps
