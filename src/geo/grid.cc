#include "geo/grid.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace maps {

GridPartition::GridPartition(const Rect& region, int rows, int cols)
    : region_(region),
      rows_(rows),
      cols_(cols),
      cell_w_(region.width() / cols),
      cell_h_(region.height() / rows) {}

Result<GridPartition> GridPartition::Make(const Rect& region, int rows,
                                          int cols) {
  if (rows <= 0 || cols <= 0) {
    return Status::InvalidArgument("grid must have positive dimensions");
  }
  if (region.width() <= 0.0 || region.height() <= 0.0) {
    return Status::InvalidArgument("region must have positive area");
  }
  return GridPartition(region, rows, cols);
}

GridId GridPartition::CellOf(const Point& p) const {
  int cx = static_cast<int>(std::floor((p.x - region_.min_x) / cell_w_));
  int cy = static_cast<int>(std::floor((p.y - region_.min_y) / cell_h_));
  cx = std::clamp(cx, 0, cols_ - 1);
  cy = std::clamp(cy, 0, rows_ - 1);
  return cy * cols_ + cx;
}

Rect GridPartition::CellRect(GridId id) const {
  MAPS_DCHECK(id >= 0 && id < num_cells());
  const int cy = id / cols_;
  const int cx = id % cols_;
  Rect r;
  r.min_x = region_.min_x + cx * cell_w_;
  r.min_y = region_.min_y + cy * cell_h_;
  r.max_x = r.min_x + cell_w_;
  r.max_y = r.min_y + cell_h_;
  return r;
}

Point GridPartition::CellCenter(GridId id) const {
  const Rect r = CellRect(id);
  return Point{(r.min_x + r.max_x) / 2.0, (r.min_y + r.max_y) / 2.0};
}

std::vector<GridId> GridPartition::CellsIntersectingDisc(const Point& center,
                                                         double radius) const {
  std::vector<GridId> out;
  CellsIntersectingDisc(center, radius, &out);
  return out;
}

void GridPartition::CellsIntersectingDisc(const Point& center, double radius,
                                          std::vector<GridId>* out) const {
  out->clear();
  if (radius < 0.0) return;
  // Candidate cell range from the disc's bounding box, then an exact
  // rect-disc distance test.
  int cx_lo = static_cast<int>(
      std::floor((center.x - radius - region_.min_x) / cell_w_));
  int cx_hi = static_cast<int>(
      std::floor((center.x + radius - region_.min_x) / cell_w_));
  int cy_lo = static_cast<int>(
      std::floor((center.y - radius - region_.min_y) / cell_h_));
  int cy_hi = static_cast<int>(
      std::floor((center.y + radius - region_.min_y) / cell_h_));
  cx_lo = std::clamp(cx_lo, 0, cols_ - 1);
  cx_hi = std::clamp(cx_hi, 0, cols_ - 1);
  cy_lo = std::clamp(cy_lo, 0, rows_ - 1);
  cy_hi = std::clamp(cy_hi, 0, rows_ - 1);
  for (int cy = cy_lo; cy <= cy_hi; ++cy) {
    for (int cx = cx_lo; cx <= cx_hi; ++cx) {
      const GridId id = cy * cols_ + cx;
      const Rect r = CellRect(id);
      const double nx = std::clamp(center.x, r.min_x, r.max_x);
      const double ny = std::clamp(center.y, r.min_y, r.max_y);
      const double dx = center.x - nx;
      const double dy = center.y - ny;
      if (dx * dx + dy * dy <= radius * radius) out->push_back(id);
    }
  }
}

}  // namespace maps
