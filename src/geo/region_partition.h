// RegionPartition: the sharding layer between the city grid and the
// per-region serving engines (DESIGN.md §13). The G = rows x cols cells of a
// GridPartition are split into K contiguous horizontal bands of whole rows
// ("regions"), each owned by one MarketEngine shard. The split is a pure
// function of (rows, K) — no RNG, no configuration file — so two processes
// given the same grid and K always agree on ownership, which is what the
// checkpoint fingerprint and the boundary-stitch determinism argument rely
// on.
//
// A cell is a BOUNDARY cell when its row touches an adjacent band: the last
// row of every band but the highest, and the first row of every band but the
// lowest. Only workers standing in boundary cells can have a reach disc that
// crosses into a foreign band, so the stitch pass after a sharded close only
// ever inspects these cells.

#pragma once

#include <cstdint>
#include <vector>

#include "geo/grid.h"
#include "util/result.h"

namespace maps {

/// \brief Contiguous row-band partition of a grid into K regions.
class RegionPartition {
 public:
  /// \param grid the city partition being sharded (only rows/cols are read).
  /// \param num_regions K; must satisfy 1 <= K <= grid.rows() so every
  ///        region owns at least one full row.
  static Result<RegionPartition> Make(const GridPartition& grid,
                                      int num_regions);

  int num_regions() const { return num_regions_; }
  int rows() const { return rows_; }
  int cols() const { return cols_; }

  /// Region owning the given cell. `grid` must be a valid cell id.
  int RegionOfGrid(GridId grid) const {
    return region_of_row_[static_cast<int>(grid) / cols_];
  }
  int RegionOfRow(int row) const { return region_of_row_[row]; }

  /// First row of region k (rows are assigned to regions in ascending,
  /// contiguous blocks; region k owns rows [row_begin(k), row_end(k))).
  int row_begin(int k) const { return row_begin_[k]; }
  int row_end(int k) const { return row_begin_[k + 1]; }

  /// True when the cell's row is adjacent to a different region's band.
  /// With K == 1 no cell is a boundary cell.
  bool IsBoundaryGrid(GridId grid) const {
    return boundary_row_[static_cast<int>(grid) / cols_] != 0;
  }

  /// All boundary cell ids, ascending.
  const std::vector<GridId>& boundary_grids() const { return boundary_grids_; }

 private:
  RegionPartition() = default;

  int num_regions_ = 1;
  int rows_ = 0;
  int cols_ = 0;
  std::vector<int> row_begin_;      // size K + 1; row_begin_[K] == rows
  std::vector<int> region_of_row_;  // size rows
  std::vector<char> boundary_row_;  // size rows; 1 = touches another band
  std::vector<GridId> boundary_grids_;
};

}  // namespace maps
