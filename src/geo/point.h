// Planar points and axis-aligned rectangles for the region of interest.

#pragma once

#include <cmath>
#include <ostream>

namespace maps {

/// \brief A 2D point. For synthetic workloads the units are abstract
/// (the paper's 100x100 square); for the Beijing surrogate they are
/// kilometres in a local tangent plane.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << "(" << p.x << ", " << p.y << ")";
}

/// \brief Euclidean distance (the travel metric d_r and the range test both
/// use it; Definition 4's range constraint is a disc around the worker).
inline double EuclideanDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// \brief Manhattan distance, offered as an alternative travel metric
/// (the paper allows "Euclidean or road-network distance"; L1 is the usual
/// grid-road proxy).
inline double ManhattanDistance(const Point& a, const Point& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// \brief Axis-aligned rectangle [min_x, max_x) x [min_y, max_y).
struct Rect {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  double width() const { return max_x - min_x; }
  double height() const { return max_y - min_y; }

  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x < max_x && p.y >= min_y && p.y < max_y;
  }

  /// Clamps p into the half-open rectangle (used when Gaussian draws land
  /// outside the region of interest).
  Point Clamp(const Point& p) const {
    Point q = p;
    const double eps_x = width() * 1e-9;
    const double eps_y = height() * 1e-9;
    if (q.x < min_x) q.x = min_x;
    if (q.x >= max_x) q.x = max_x - eps_x;
    if (q.y < min_y) q.y = min_y;
    if (q.y >= max_y) q.y = max_y - eps_y;
    return q;
  }
};

}  // namespace maps
