#include "geo/region_partition.h"

#include <string>

namespace maps {

Result<RegionPartition> RegionPartition::Make(const GridPartition& grid,
                                              int num_regions) {
  const int rows = grid.rows();
  const int cols = grid.cols();
  if (num_regions < 1) {
    return Status::InvalidArgument("num_regions must be >= 1, got " +
                                   std::to_string(num_regions));
  }
  if (num_regions > rows) {
    return Status::InvalidArgument(
        "num_regions " + std::to_string(num_regions) + " exceeds the " +
        std::to_string(rows) + " grid row(s); every region needs a full row");
  }

  RegionPartition p;
  p.num_regions_ = num_regions;
  p.rows_ = rows;
  p.cols_ = cols;

  // Even contiguous split: the first rows % K bands get one extra row. Same
  // scheme as SplitRange (util/thread_pool.h) so band sizes differ by at
  // most one row.
  p.row_begin_.resize(num_regions + 1);
  const int base = rows / num_regions;
  const int extra = rows % num_regions;
  int row = 0;
  for (int k = 0; k < num_regions; ++k) {
    p.row_begin_[k] = row;
    row += base + (k < extra ? 1 : 0);
  }
  p.row_begin_[num_regions] = rows;

  p.region_of_row_.resize(rows);
  p.boundary_row_.assign(rows, 0);
  for (int k = 0; k < num_regions; ++k) {
    for (int r = p.row_begin_[k]; r < p.row_begin_[k + 1]; ++r) {
      p.region_of_row_[r] = k;
    }
    // A band's edge rows face the neighboring bands.
    if (k > 0) p.boundary_row_[p.row_begin_[k]] = 1;
    if (k + 1 < num_regions) p.boundary_row_[p.row_begin_[k + 1] - 1] = 1;
  }

  for (int r = 0; r < rows; ++r) {
    if (!p.boundary_row_[r]) continue;
    for (int c = 0; c < cols; ++c) {
      p.boundary_grids_.push_back(static_cast<GridId>(r) * cols + c);
    }
  }
  return p;
}

}  // namespace maps
