#include "geo/road_network.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "util/logging.h"

namespace maps {

RoadNetwork::RoadNetwork(const Rect& region, int nx, int ny)
    : region_(region),
      nx_(nx),
      ny_(ny),
      step_x_(region.width() / (nx - 1)),
      step_y_(region.height() / (ny - 1)) {
  adj_.resize(nx * ny);
}

Result<RoadNetwork> RoadNetwork::MakeLattice(const Rect& region, int nx,
                                             int ny,
                                             double congestion_jitter,
                                             uint64_t seed) {
  if (nx < 2 || ny < 2) {
    return Status::InvalidArgument("lattice needs >= 2 nodes per axis");
  }
  if (region.width() <= 0.0 || region.height() <= 0.0) {
    return Status::InvalidArgument("region must have positive area");
  }
  if (congestion_jitter < 0.0) {
    return Status::InvalidArgument("congestion jitter must be >= 0");
  }
  RoadNetwork net(region, nx, ny);
  Rng rng(seed);
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      const int id = y * nx + x;
      if (x + 1 < nx) {
        const double factor = 1.0 + rng.NextDouble(0.0, congestion_jitter);
        net.AddEdge(id, id + 1, net.step_x_ * factor);
      }
      if (y + 1 < ny) {
        const double factor = 1.0 + rng.NextDouble(0.0, congestion_jitter);
        net.AddEdge(id, id + nx, net.step_y_ * factor);
      }
    }
  }
  return net;
}

void RoadNetwork::AddEdge(int a, int b, double length) {
  adj_[a].push_back(Edge{b, length});
  adj_[b].push_back(Edge{a, length});
}

int RoadNetwork::NearestNode(const Point& p) const {
  int x = static_cast<int>(std::lround((p.x - region_.min_x) / step_x_));
  int y = static_cast<int>(std::lround((p.y - region_.min_y) / step_y_));
  x = std::clamp(x, 0, nx_ - 1);
  y = std::clamp(y, 0, ny_ - 1);
  return y * nx_ + x;
}

Point RoadNetwork::NodeLocation(int id) const {
  MAPS_DCHECK(id >= 0 && id < num_nodes());
  const int x = id % nx_;
  const int y = id / nx_;
  return Point{region_.min_x + x * step_x_, region_.min_y + y * step_y_};
}

double RoadNetwork::NodeDistance(int from, int to) const {
  MAPS_DCHECK(from >= 0 && from < num_nodes());
  MAPS_DCHECK(to >= 0 && to < num_nodes());
  if (from == to) return 0.0;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(num_nodes(), kInf);
  using QE = std::pair<double, int>;
  std::priority_queue<QE, std::vector<QE>, std::greater<QE>> queue;
  dist[from] = 0.0;
  queue.push({0.0, from});
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;
    if (u == to) return d;
    for (const Edge& e : adj_[u]) {
      const double nd = d + e.length;
      if (nd < dist[e.to]) {
        dist[e.to] = nd;
        queue.push({nd, e.to});
      }
    }
  }
  return dist[to];
}

double RoadNetwork::Distance(const Point& a, const Point& b) const {
  const int na = NearestNode(a);
  const int nb = NearestNode(b);
  const double approach_a = EuclideanDistance(a, NodeLocation(na));
  const double approach_b = EuclideanDistance(b, NodeLocation(nb));
  return approach_a + NodeDistance(na, nb) + approach_b;
}

void RoadNetwork::CongestArea(const Point& center, double radius,
                              double factor) {
  MAPS_CHECK_GE(factor, 1.0);
  const double r2 = radius * radius;
  auto inside = [&](int node) {
    const Point p = NodeLocation(node);
    const double dx = p.x - center.x;
    const double dy = p.y - center.y;
    return dx * dx + dy * dy <= r2;
  };
  for (int u = 0; u < num_nodes(); ++u) {
    for (Edge& e : adj_[u]) {
      // Each undirected edge is congested exactly once (owner = lower id)
      // when either endpoint lies in the area.
      if (e.to < u) continue;
      if (!inside(u) && !inside(e.to)) continue;
      e.length *= factor;
      for (Edge& back : adj_[e.to]) {
        if (back.to == u) {
          back.length = e.length;
          break;
        }
      }
    }
  }
}

}  // namespace maps
