// Hungarian algorithm (Jonker-Volgenant potentials variant) for maximum
// weight bipartite matching with ARBITRARY edge weights.
//
// O(n^2 * m) over a dense matrix; used only in tests and tiny instances to
// cross-validate MaxWeightTaskMatching and the possible-world enumerator.
// The matching does not have to be perfect: missing edges carry weight
// -infinity and a dummy "stay unmatched" option carries weight 0.

#pragma once

#include <vector>

#include "graph/bipartite_graph.h"
#include "graph/matching.h"

namespace maps {

/// \brief Exact max-weight (not necessarily perfect, not necessarily maximum
/// cardinality) bipartite matching on a dense weight matrix.
///
/// \param weight weight[l][r] is the gain of matching l to r; negative or
///        -inf entries mean "no edge". Unmatched vertices contribute 0.
/// \return optimal matching and its total weight.
struct DenseWeightedMatchingResult {
  std::vector<int> match_left;  // -1 = unmatched
  double total_weight = 0.0;
};

DenseWeightedMatchingResult HungarianMaxWeight(
    const std::vector<std::vector<double>>& weight);

}  // namespace maps
