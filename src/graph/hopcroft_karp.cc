#include "graph/hopcroft_karp.h"

#include <functional>
#include <limits>
#include <queue>

namespace maps {

namespace {
constexpr int kInf = std::numeric_limits<int>::max();
}

Matching HopcroftKarpMatching(const BipartiteGraph& g) {
  Matching m;
  m.match_left.assign(g.num_left(), Matching::kUnmatched);
  m.match_right.assign(g.num_right(), Matching::kUnmatched);

  std::vector<int> dist(g.num_left(), kInf);
  std::queue<int> bfs_queue;

  auto bfs = [&]() -> bool {
    for (int l = 0; l < g.num_left(); ++l) {
      if (m.match_left[l] == Matching::kUnmatched) {
        dist[l] = 0;
        bfs_queue.push(l);
      } else {
        dist[l] = kInf;
      }
    }
    bool found_free_right = false;
    while (!bfs_queue.empty()) {
      const int l = bfs_queue.front();
      bfs_queue.pop();
      for (int r : g.Neighbors(l)) {
        const int l2 = m.match_right[r];
        if (l2 == Matching::kUnmatched) {
          found_free_right = true;
        } else if (dist[l2] == kInf) {
          dist[l2] = dist[l] + 1;
          bfs_queue.push(l2);
        }
      }
    }
    return found_free_right;
  };

  // Iterative DFS along the BFS layering.
  std::function<bool(int)> dfs = [&](int l) -> bool {
    for (int r : g.Neighbors(l)) {
      const int l2 = m.match_right[r];
      if (l2 == Matching::kUnmatched ||
          (dist[l2] == dist[l] + 1 && dfs(l2))) {
        m.match_left[l] = r;
        m.match_right[r] = l;
        return true;
      }
    }
    dist[l] = kInf;  // dead end: prune for the rest of this phase
    return false;
  };

  while (bfs()) {
    for (int l = 0; l < g.num_left(); ++l) {
      if (m.match_left[l] == Matching::kUnmatched && dfs(l)) ++m.size;
    }
  }
  return m;
}

}  // namespace maps
