// BipartiteGraph: tasks (left) x workers (right) with an edge whenever the
// task origin lies inside the worker's range disc (the probabilistic
// bipartite graph B^t of Sec. 2.2, minus the probabilities, which live in
// the demand models).
//
// Storage is CSR over the left side: Neighbors(l) is a contiguous span.

#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "geo/grid.h"
#include "market/task.h"
#include "market/worker.h"

namespace maps {

/// \brief Reusable buffers for repeated spatial-join graph builds (one per
/// pricing round). Holding one per call site makes steady-state builds
/// allocation-free.
struct GraphBuildWorkspace {
  std::vector<std::vector<int>> tasks_by_cell;
  std::vector<std::pair<int, int>> edges;
  std::vector<int64_t> cursor;
  std::vector<GridId> cells;

  /// Approximate heap footprint (memory-model accounting). The edge list
  /// dominates a build's transient peak, ahead of the finished CSR.
  size_t FootprintBytes() const {
    size_t bytes = edges.capacity() * sizeof(std::pair<int, int>) +
                   cursor.capacity() * sizeof(int64_t) +
                   cells.capacity() * sizeof(GridId) +
                   tasks_by_cell.capacity() * sizeof(std::vector<int>);
    for (const auto& cell : tasks_by_cell) {
      bytes += cell.capacity() * sizeof(int);
    }
    return bytes;
  }
};

/// \brief Immutable bipartite adjacency, left = tasks, right = workers.
class BipartiteGraph {
 public:
  BipartiteGraph() = default;

  /// Builds from explicit edges (tests and reductions).
  static BipartiteGraph FromEdges(int num_left, int num_right,
                                  const std::vector<std::pair<int, int>>& edges);

  /// Builds from tasks/workers under the range constraint using a grid
  /// spatial join: each worker enumerates the cells its disc intersects and
  /// tests only tasks bucketed there, so construction is near-linear for
  /// realistic radii instead of O(|R|*|W|).
  static BipartiteGraph Build(const std::vector<Task>& tasks,
                              const std::vector<Worker>& workers,
                              const GridPartition& grid);

  /// As Build(), but reuses `ws` scratch and `out`'s own storage so a
  /// steady-state rebuild performs no heap allocation.
  static void BuildInto(const std::vector<Task>& tasks,
                        const std::vector<Worker>& workers,
                        const GridPartition& grid, GraphBuildWorkspace* ws,
                        BipartiteGraph* out);

  /// Number of graphs constructed process-wide (any builder). Exposed so
  /// tests can assert hot paths build exactly as often as intended — e.g.
  /// OracleSearch must build once per invocation, not once per price combo.
  static int64_t TotalBuildCount();

  int num_left() const { return num_left_; }
  int num_right() const { return num_right_; }
  int64_t num_edges() const { return static_cast<int64_t>(adj_.size()); }

  /// Right-side neighbors of left vertex `l`.
  std::span<const int> Neighbors(int l) const {
    return std::span<const int>(adj_.data() + offsets_[l],
                                adj_.data() + offsets_[l + 1]);
  }

  int Degree(int l) const {
    return static_cast<int>(offsets_[l + 1] - offsets_[l]);
  }

  /// Approximate heap footprint (memory-model accounting).
  size_t FootprintBytes() const {
    return adj_.capacity() * sizeof(int) + offsets_.capacity() * sizeof(int64_t);
  }

 private:
  /// CSR assembly shared by every builder; reuses this graph's storage.
  void AssignFromEdges(int num_left, int num_right,
                       const std::vector<std::pair<int, int>>& edges,
                       std::vector<int64_t>* cursor);

  int num_left_ = 0;
  int num_right_ = 0;
  std::vector<int64_t> offsets_;  // size num_left_+1
  std::vector<int> adj_;
};

}  // namespace maps
