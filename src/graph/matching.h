// Common result type for bipartite matchings.

#pragma once

#include <vector>

namespace maps {

/// \brief A matching over a BipartiteGraph: match_left[l] is the matched
/// right vertex (or kUnmatched), and symmetrically for match_right.
struct Matching {
  static constexpr int kUnmatched = -1;

  std::vector<int> match_left;
  std::vector<int> match_right;
  int size = 0;

  bool IsLeftMatched(int l) const { return match_left[l] != kUnmatched; }
  bool IsRightMatched(int r) const { return match_right[r] != kUnmatched; }
};

}  // namespace maps
