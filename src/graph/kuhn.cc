#include "graph/kuhn.h"

namespace maps {

namespace {

bool TryAugment(const BipartiteGraph& g, int l, std::vector<int>& visited,
                int stamp, Matching& m) {
  for (int r : g.Neighbors(l)) {
    if (visited[r] == stamp) continue;
    visited[r] = stamp;
    if (m.match_right[r] == Matching::kUnmatched ||
        TryAugment(g, m.match_right[r], visited, stamp, m)) {
      m.match_left[l] = r;
      m.match_right[r] = l;
      return true;
    }
  }
  return false;
}

}  // namespace

Matching KuhnMatching(const BipartiteGraph& graph) {
  Matching m;
  m.match_left.assign(graph.num_left(), Matching::kUnmatched);
  m.match_right.assign(graph.num_right(), Matching::kUnmatched);
  std::vector<int> visited(graph.num_right(), -1);
  for (int l = 0; l < graph.num_left(); ++l) {
    if (TryAugment(graph, l, visited, l, m)) ++m.size;
  }
  return m;
}

}  // namespace maps
