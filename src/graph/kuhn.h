// Kuhn's augmenting-path algorithm for maximum-cardinality bipartite
// matching: O(V * E). Simple and the reference implementation the other
// matchers are property-tested against.

#pragma once

#include "graph/bipartite_graph.h"
#include "graph/matching.h"

namespace maps {

/// \brief Computes a maximum-cardinality matching via repeated augmenting
/// path searches from each left vertex.
Matching KuhnMatching(const BipartiteGraph& graph);

}  // namespace maps
