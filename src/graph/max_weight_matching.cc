#include "graph/max_weight_matching.h"

#include <algorithm>
#include <numeric>

#include "graph/incremental_matching.h"
#include "util/logging.h"

namespace maps {

WeightedMatchingResult MaxWeightTaskMatching(
    const BipartiteGraph& graph, const std::vector<double>& left_weight) {
  MAPS_CHECK_EQ(static_cast<int>(left_weight.size()), graph.num_left());
  std::vector<int> order(graph.num_left());
  std::iota(order.begin(), order.end(), 0);
  // Stable tie-break on index for determinism.
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (left_weight[a] != left_weight[b])
      return left_weight[a] > left_weight[b];
    return a < b;
  });

  IncrementalMatching inc(&graph);
  WeightedMatchingResult result;
  for (int l : order) {
    if (left_weight[l] < 0.0) continue;  // never profitable
    if (inc.TryAugment(l)) {
      result.total_weight += left_weight[l];
    }
  }
  result.matching = inc.matching();
  return result;
}

}  // namespace maps
