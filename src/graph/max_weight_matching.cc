#include "graph/max_weight_matching.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace maps {

namespace {

double GreedyMatroidMatch(const BipartiteGraph& graph,
                          const std::vector<double>& left_weight,
                          MaxWeightMatchingWorkspace* ws) {
  MAPS_CHECK_EQ(static_cast<int>(left_weight.size()), graph.num_left());
  ws->order.resize(graph.num_left());
  std::iota(ws->order.begin(), ws->order.end(), 0);
  // Stable tie-break on index for determinism.
  std::sort(ws->order.begin(), ws->order.end(), [&](int a, int b) {
    if (left_weight[a] != left_weight[b])
      return left_weight[a] > left_weight[b];
    return a < b;
  });

  ws->inc.Reset(&graph);
  double total = 0.0;
  for (int l : ws->order) {
    if (left_weight[l] < 0.0) continue;  // never profitable
    if (ws->inc.TryAugment(l)) {
      total += left_weight[l];
    }
  }
  return total;
}

}  // namespace

WeightedMatchingResult MaxWeightTaskMatching(
    const BipartiteGraph& graph, const std::vector<double>& left_weight) {
  MaxWeightMatchingWorkspace ws;
  WeightedMatchingResult result;
  result.total_weight = GreedyMatroidMatch(graph, left_weight, &ws);
  result.matching = ws.inc.matching();
  return result;
}

double MaxWeightTaskMatchingValue(const BipartiteGraph& graph,
                                  const std::vector<double>& left_weight,
                                  MaxWeightMatchingWorkspace* ws) {
  return GreedyMatroidMatch(graph, left_weight, ws);
}

}  // namespace maps
