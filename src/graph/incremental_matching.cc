#include "graph/incremental_matching.h"

#include "util/logging.h"

namespace maps {

IncrementalMatching::IncrementalMatching(const BipartiteGraph* graph) {
  Reset(graph);
}

void IncrementalMatching::Reset(const BipartiteGraph* graph) {
  MAPS_CHECK(graph != nullptr);
  graph_ = graph;
  matching_.match_left.assign(graph->num_left(), Matching::kUnmatched);
  matching_.match_right.assign(graph->num_right(), Matching::kUnmatched);
  matching_.size = 0;
  visited_.assign(graph->num_right(), -1);
  stamp_ = 0;
  num_dead_ = 0;
  frames_.clear();
  touched_.clear();
}

bool IncrementalMatching::PushFrameWithLookahead(int l) {
  frames_.push_back(Frame{l, 0, -1});
  for (const int r : graph_->Neighbors(l)) {
    if (matching_.match_right[r] == Matching::kUnmatched) {
      // A free right vertex is never visited (reaching one ends a search)
      // and never dead (dead vertices are matched by construction), so no
      // stamp check is needed.
      visited_[r] = stamp_;
      frames_.back().r = r;
      return true;
    }
  }
  return false;
}

bool IncrementalMatching::Search(int root) {
  frames_.clear();
  if (PushFrameWithLookahead(root)) return true;
  while (!frames_.empty()) {
    Frame& f = frames_.back();
    const auto neighbors = graph_->Neighbors(f.l);
    if (f.next >= static_cast<int>(neighbors.size())) {
      frames_.pop_back();
      continue;
    }
    const int r = neighbors[f.next++];
    if (visited_[r] == stamp_ || visited_[r] == kDeadStamp) continue;
    visited_[r] = stamp_;
    touched_.push_back(r);
    f.r = r;
    // The frame's lookahead proved no neighbor is free, so r is matched.
    const int l2 = matching_.match_right[r];
    if (PushFrameWithLookahead(l2)) return true;
  }
  return false;
}

void IncrementalMatching::MarkTouchedDead(size_t count) {
  MAPS_DCHECK_LE(count, touched_.size());
  for (size_t i = 0; i < count; ++i) {
    if (visited_[touched_[i]] != kDeadStamp) {
      visited_[touched_[i]] = kDeadStamp;
      ++num_dead_;
    }
  }
}

void IncrementalMatching::CommitFrames() {
  for (const Frame& f : frames_) {
    matching_.match_left[f.l] = f.r;
    matching_.match_right[f.r] = f.l;
  }
  ++matching_.size;
}

bool IncrementalMatching::TryAugment(int l) {
  MAPS_DCHECK(l >= 0 && l < graph_->num_left());
  if (matching_.IsLeftMatched(l)) return true;
  ++stamp_;
  touched_.clear();
  if (Search(l)) {
    CommitFrames();
    return true;
  }
  MarkTouchedDead(touched_.size());
  return false;
}

bool IncrementalMatching::AnyAugmentable(const std::vector<int>& candidates) {
  ++stamp_;
  touched_.clear();
  for (int l : candidates) {
    if (matching_.IsLeftMatched(l)) continue;
    const size_t failed_prefix = touched_.size();
    if (Search(l)) {
      MarkTouchedDead(failed_prefix);
      return true;
    }
  }
  MarkTouchedDead(touched_.size());
  return false;
}

int IncrementalMatching::AugmentFirst(const std::vector<int>& candidates) {
  ++stamp_;
  touched_.clear();
  for (int l : candidates) {
    if (matching_.IsLeftMatched(l)) continue;
    const size_t failed_prefix = touched_.size();
    if (Search(l)) {
      MarkTouchedDead(failed_prefix);
      CommitFrames();
      return l;
    }
  }
  MarkTouchedDead(touched_.size());
  return Matching::kUnmatched;
}

int IncrementalMatching::FindAugmentablePath(
    const std::vector<int>& candidates, RecordedPath* out) {
  ++stamp_;
  touched_.clear();
  for (int l : candidates) {
    if (matching_.IsLeftMatched(l)) continue;
    const size_t failed_prefix = touched_.size();
    if (Search(l)) {
      // Only the region explored by PRIOR candidates' failed searches is a
      // certified closed region; this candidate's own tree is live.
      MarkTouchedDead(failed_prefix);
      out->edges.clear();
      out->edges.reserve(frames_.size());
      for (const Frame& f : frames_) out->edges.emplace_back(f.l, f.r);
      return l;
    }
  }
  MarkTouchedDead(touched_.size());
  out->clear();
  return Matching::kUnmatched;
}

bool IncrementalMatching::CommitPath(const RecordedPath& path) {
  if (path.empty()) return false;
  // Valid iff the root is still free, each interior right vertex is still
  // matched to the recorded successor, and the terminal right vertex is
  // still free. Edges themselves are immutable, so this is sufficient.
  if (matching_.IsLeftMatched(path.edges.front().first)) return false;
  const size_t k = path.edges.size();
  for (size_t i = 0; i < k; ++i) {
    const int r = path.edges[i].second;
    const int expected = (i + 1 < k) ? path.edges[i + 1].first
                                     : Matching::kUnmatched;
    if (matching_.match_right[r] != expected) return false;
  }
  for (const auto& [l, r] : path.edges) {
    matching_.match_left[l] = r;
    matching_.match_right[r] = l;
  }
  ++matching_.size;
  return true;
}

}  // namespace maps
