#include "graph/incremental_matching.h"

#include "util/logging.h"

namespace maps {

IncrementalMatching::IncrementalMatching(const BipartiteGraph* graph)
    : graph_(graph) {
  MAPS_CHECK(graph != nullptr);
  matching_.match_left.assign(graph->num_left(), Matching::kUnmatched);
  matching_.match_right.assign(graph->num_right(), Matching::kUnmatched);
  visited_.assign(graph->num_right(), -1);
}

bool IncrementalMatching::Dfs(int l, bool commit) {
  for (int r : graph_->Neighbors(l)) {
    if (visited_[r] == stamp_) continue;
    visited_[r] = stamp_;
    const int l2 = matching_.match_right[r];
    if (l2 == Matching::kUnmatched || Dfs(l2, commit)) {
      if (commit) {
        matching_.match_left[l] = r;
        matching_.match_right[r] = l;
      }
      return true;
    }
  }
  return false;
}

bool IncrementalMatching::TryAugment(int l) {
  MAPS_DCHECK(l >= 0 && l < graph_->num_left());
  if (matching_.IsLeftMatched(l)) return true;
  ++stamp_;
  if (Dfs(l, /*commit=*/true)) {
    ++matching_.size;
    return true;
  }
  return false;
}

bool IncrementalMatching::AnyAugmentable(const std::vector<int>& candidates) {
  for (int l : candidates) {
    if (matching_.IsLeftMatched(l)) continue;
    ++stamp_;
    if (Dfs(l, /*commit=*/false)) return true;
  }
  return false;
}

int IncrementalMatching::AugmentFirst(const std::vector<int>& candidates) {
  for (int l : candidates) {
    if (matching_.IsLeftMatched(l)) continue;
    if (TryAugment(l)) return l;
  }
  return Matching::kUnmatched;
}

}  // namespace maps
