#include "graph/possible_worlds.h"

#include "graph/max_weight_matching.h"
#include "util/logging.h"

namespace maps {

namespace {

double WorldRevenue(const BipartiteGraph& graph,
                    const std::vector<PricedTask>& tasks,
                    const std::vector<bool>& accepted) {
  std::vector<double> weights(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    // Rejected tasks are excluded from the world's graph entirely
    // (negative weight => greedy matcher skips them).
    weights[i] = accepted[i] ? tasks[i].distance * tasks[i].price : -1.0;
  }
  return MaxWeightTaskMatching(graph, weights).total_weight;
}

}  // namespace

double ExactExpectedRevenue(const BipartiteGraph& graph,
                            const std::vector<PricedTask>& tasks) {
  const int n = static_cast<int>(tasks.size());
  MAPS_CHECK_EQ(n, graph.num_left());
  MAPS_CHECK_LE(n, 25) << "possible-world enumeration is 2^n";
  double expectation = 0.0;
  std::vector<bool> accepted(n);
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    double prob = 1.0;
    for (int i = 0; i < n; ++i) {
      accepted[i] = (mask >> i) & 1u;
      prob *= accepted[i] ? tasks[i].accept_prob : 1.0 - tasks[i].accept_prob;
    }
    if (prob == 0.0) continue;
    expectation += prob * WorldRevenue(graph, tasks, accepted);
  }
  return expectation;
}

double MonteCarloExpectedRevenue(const BipartiteGraph& graph,
                                 const std::vector<PricedTask>& tasks,
                                 Rng& rng, int samples) {
  MAPS_CHECK_GT(samples, 0);
  MAPS_CHECK_EQ(static_cast<int>(tasks.size()), graph.num_left());
  double total = 0.0;
  std::vector<bool> accepted(tasks.size());
  for (int s = 0; s < samples; ++s) {
    for (size_t i = 0; i < tasks.size(); ++i) {
      accepted[i] = rng.NextBernoulli(tasks[i].accept_prob);
    }
    total += WorldRevenue(graph, tasks, accepted);
  }
  return total / samples;
}

}  // namespace maps
