#include "graph/possible_worlds.h"

#include <algorithm>
#include <numeric>

#include "rng/counter_rng.h"
#include "util/logging.h"

namespace maps {

namespace {

/// Precomputes the world-independent parts: per-task value d_r * p_r and
/// the greedy processing order (value descending, index ascending). A
/// world's revenue is then one pass over `order` skipping rejected tasks —
/// identical to sorting that world's weights, since rejection preserves the
/// relative order of the surviving tasks.
void PrepareWorkspace(const std::vector<PricedTask>& tasks,
                      PossibleWorldsWorkspace* ws) {
  const size_t n = tasks.size();
  ws->accepted.assign(n, 0);
  ws->value.resize(n);
  for (size_t i = 0; i < n; ++i) {
    ws->value[i] = tasks[i].distance * tasks[i].price;
  }
  ws->order.resize(n);
  std::iota(ws->order.begin(), ws->order.end(), 0);
  std::sort(ws->order.begin(), ws->order.end(), [&](int a, int b) {
    if (ws->value[a] != ws->value[b]) return ws->value[a] > ws->value[b];
    return a < b;
  });
}

// NOTE: this is the same greedy transversal-matroid discipline as
// MaxWeightTaskMatching (value-descending order, augmentability as the
// independence oracle); the possible_worlds test suite cross-validates the
// two against the Hungarian algorithm so they cannot silently diverge.
double WorldRevenue(const BipartiteGraph& graph,
                    PossibleWorldsWorkspace* ws) {
  ws->inc.Reset(&graph);
  double total = 0.0;
  for (int l : ws->order) {
    if (!ws->accepted[l]) continue;  // rejected: excluded from the world
    if (ws->inc.TryAugment(l)) total += ws->value[l];
  }
  return total;
}

/// Sums prob(world) * revenue(world) over the contiguous mask range
/// [begin, end). Shared by the serial overloads (one range covering the
/// whole space) and the pool-backed one (fixed shards), so both evaluate
/// every world identically.
double SumWorldsInRange(const BipartiteGraph& graph,
                        const std::vector<PricedTask>& tasks, int64_t begin,
                        int64_t end, PossibleWorldsWorkspace* ws) {
  const int n = static_cast<int>(tasks.size());
  double expectation = 0.0;
  for (int64_t mask = begin; mask < end; ++mask) {
    double prob = 1.0;
    for (int i = 0; i < n; ++i) {
      ws->accepted[i] = static_cast<char>((mask >> i) & 1);
      prob *= ws->accepted[i] ? tasks[i].accept_prob
                              : 1.0 - tasks[i].accept_prob;
    }
    if (prob == 0.0) continue;
    expectation += prob * WorldRevenue(graph, ws);
  }
  return expectation;
}

/// Fixed shard cap for the pool-backed enumeration. A constant (never the
/// thread count) so partial-sum boundaries — and therefore the rounding of
/// the final sum — are identical no matter how many workers execute them.
constexpr int64_t kExactRevenueShards = 64;

/// Fixed shard cap for the counter-based Monte-Carlo estimator; same
/// determinism rule as kExactRevenueShards.
constexpr int64_t kMonteCarloShards = 64;

}  // namespace

double ExactExpectedRevenue(const BipartiteGraph& graph,
                            const std::vector<PricedTask>& tasks,
                            PossibleWorldsWorkspace* ws) {
  const int n = static_cast<int>(tasks.size());
  MAPS_CHECK_EQ(n, graph.num_left());
  MAPS_CHECK_LE(n, 25) << "possible-world enumeration is 2^n";
  PrepareWorkspace(tasks, ws);
  return SumWorldsInRange(graph, tasks, 0, int64_t{1} << n, ws);
}

double ExactExpectedRevenue(const BipartiteGraph& graph,
                            const std::vector<PricedTask>& tasks,
                            ThreadPool* pool,
                            std::vector<PossibleWorldsWorkspace>* workspaces) {
  const int n = static_cast<int>(tasks.size());
  MAPS_CHECK_EQ(n, graph.num_left());
  MAPS_CHECK_LE(n, 25) << "possible-world enumeration is 2^n";
  const int num_workers = pool == nullptr ? 1 : pool->num_threads();
  workspaces->resize(num_workers);
  for (auto& ws : *workspaces) PrepareWorkspace(tasks, &ws);
  const auto shards = SplitRange(int64_t{1} << n, kExactRevenueShards);
  return ParallelReduce<double>(
      pool, shards, 0.0,
      [&](int /*shard*/, const IndexRange& range, int worker) {
        return SumWorldsInRange(graph, tasks, range.begin, range.end,
                                &(*workspaces)[worker]);
      },
      [](double acc, double partial) { return acc + partial; });
}

double ExactExpectedRevenue(const BipartiteGraph& graph,
                            const std::vector<PricedTask>& tasks) {
  PossibleWorldsWorkspace ws;
  return ExactExpectedRevenue(graph, tasks, &ws);
}

double MonteCarloExpectedRevenue(const BipartiteGraph& graph,
                                 const std::vector<PricedTask>& tasks,
                                 Rng& rng, int samples,
                                 PossibleWorldsWorkspace* ws) {
  MAPS_CHECK_GT(samples, 0);
  MAPS_CHECK_EQ(static_cast<int>(tasks.size()), graph.num_left());
  PrepareWorkspace(tasks, ws);
  double total = 0.0;
  for (int s = 0; s < samples; ++s) {
    for (size_t i = 0; i < tasks.size(); ++i) {
      ws->accepted[i] =
          static_cast<char>(rng.NextBernoulli(tasks[i].accept_prob));
    }
    total += WorldRevenue(graph, ws);
  }
  return total / samples;
}

double MonteCarloExpectedRevenue(const BipartiteGraph& graph,
                                 const std::vector<PricedTask>& tasks,
                                 Rng& rng, int samples) {
  PossibleWorldsWorkspace ws;
  return MonteCarloExpectedRevenue(graph, tasks, rng, samples, &ws);
}

double MonteCarloExpectedRevenue(
    const BipartiteGraph& graph, const std::vector<PricedTask>& tasks,
    uint64_t seed, int samples, ThreadPool* pool,
    std::vector<PossibleWorldsWorkspace>* workspaces) {
  MAPS_CHECK_GT(samples, 0);
  const int n = static_cast<int>(tasks.size());
  MAPS_CHECK_EQ(n, graph.num_left());
  const int num_workers = pool == nullptr ? 1 : pool->num_threads();
  workspaces->resize(num_workers);
  for (auto& ws : *workspaces) PrepareWorkspace(tasks, &ws);
  const auto shards = SplitRange(samples, kMonteCarloShards);
  const double total = ParallelReduce<double>(
      pool, shards, 0.0,
      [&](int /*shard*/, const IndexRange& range, int worker) {
        PossibleWorldsWorkspace* ws = &(*workspaces)[worker];
        double sum = 0.0;
        for (int64_t s = range.begin; s < range.end; ++s) {
          // World s's randomness is stream s of the (seed, ·) family; the
          // stream never depends on the shard layout, only on s itself.
          CounterRng rng(seed, static_cast<uint64_t>(s));
          for (int i = 0; i < n; ++i) {
            ws->accepted[i] =
                static_cast<char>(rng.NextBernoulli(tasks[i].accept_prob));
          }
          sum += WorldRevenue(graph, ws);
        }
        return sum;
      },
      [](double acc, double partial) { return acc + partial; });
  return total / samples;
}

WorldMomentSums MonteCarloRevenueMoments(
    const BipartiteGraph& graph, const std::vector<PricedTask>& tasks,
    uint64_t seed, int64_t first_world, int64_t num_worlds, ThreadPool* pool,
    std::vector<PossibleWorldsWorkspace>* workspaces) {
  MAPS_CHECK_GT(num_worlds, 0);
  MAPS_CHECK_GE(first_world, 0);
  const int n = static_cast<int>(tasks.size());
  MAPS_CHECK_EQ(n, graph.num_left());
  const int num_workers = pool == nullptr ? 1 : pool->num_threads();
  workspaces->resize(num_workers);
  for (auto& ws : *workspaces) PrepareWorkspace(tasks, &ws);
  // Shard layout depends on num_worlds only; `first_world` merely offsets
  // the ranges, so a batch's boundaries never depend on earlier batches.
  const auto shards = SplitRange(num_worlds, kMonteCarloShards);
  return ParallelReduce<WorldMomentSums>(
      pool, shards, WorldMomentSums{},
      [&](int /*shard*/, const IndexRange& range, int worker) {
        PossibleWorldsWorkspace* ws = &(*workspaces)[worker];
        WorldMomentSums m;
        for (int64_t s = range.begin; s < range.end; ++s) {
          const uint64_t world = static_cast<uint64_t>(first_world + s);
          CounterRng rng(seed, world);
          for (int i = 0; i < n; ++i) {
            ws->accepted[i] =
                static_cast<char>(rng.NextBernoulli(tasks[i].accept_prob));
          }
          const double revenue = WorldRevenue(graph, ws);
          m.sum += revenue;
          m.sum_squares += revenue * revenue;
        }
        return m;
      },
      [](WorldMomentSums acc, WorldMomentSums partial) {
        acc.sum += partial.sum;
        acc.sum_squares += partial.sum_squares;
        return acc;
      });
}

}  // namespace maps
