// IncrementalMatching: the pre-matching M' of Algorithm 2.
//
// MAPS grows the supply of one grid at a time; each growth step must verify
// that some still-unassigned task of that grid has an augmenting path in the
// current pre-matching. This class maintains the matching across such
// single-vertex augmentations.
//
// The search core is a single iterative DFS over reusable stack/visited
// buffers. It records the augmenting path it finds, so callers can separate
// "does a path exist?" (probe) from "apply it" (commit) without walking the
// alternating tree twice: a recorded path is revalidated in O(path length)
// and applied in O(path length), falling back to one fresh search only when
// an interleaved augmentation invalidated it.

#pragma once

#include <utility>
#include <vector>

#include "graph/bipartite_graph.h"
#include "graph/matching.h"

namespace maps {

/// \brief An augmenting path recorded by a probe: edges_[i] = (l_i, r_i)
/// where l_0 is the free root, r_last is a free right vertex, and each
/// l_{i+1} is the vertex currently matched to r_i. Applying the path matches
/// every (l_i, r_i) pair, growing the matching by one.
struct RecordedPath {
  std::vector<std::pair<int, int>> edges;

  bool empty() const { return edges.empty(); }
  void clear() { edges.clear(); }
};

/// \brief Maintains a bipartite matching under one-left-vertex-at-a-time
/// augmentation requests.
class IncrementalMatching {
 public:
  IncrementalMatching() = default;
  explicit IncrementalMatching(const BipartiteGraph* graph);

  /// Rebinds to `graph` and clears the matching, reusing all internal
  /// buffers (no steady-state allocations when graph sizes are stable).
  void Reset(const BipartiteGraph* graph);

  /// Tries to match left vertex `l` (possibly re-routing existing matches
  /// along an augmenting path). Returns true and mutates the matching on
  /// success; leaves the matching untouched on failure. No-op returning
  /// true if `l` is already matched.
  bool TryAugment(int l);

  /// True iff some vertex in `candidates` is unmatched but augmentable.
  /// Does NOT mutate the matching.
  bool AnyAugmentable(const std::vector<int>& candidates);

  /// Augments the first augmentable unmatched vertex in `candidates`;
  /// returns its index or Matching::kUnmatched when none succeeds.
  int AugmentFirst(const std::vector<int>& candidates);

  /// Probe: finds the first unmatched vertex in `candidates` with an
  /// augmenting path and records that path into `out` WITHOUT mutating the
  /// matching. Returns the vertex, or Matching::kUnmatched (and clears
  /// `out`) when none is augmentable. The visited set is shared across
  /// candidates: a failed search from one root proves every vertex it
  /// reached is exhausted for all later roots, so the whole probe costs one
  /// graph walk instead of one per candidate.
  int FindAugmentablePath(const std::vector<int>& candidates,
                          RecordedPath* out);

  /// Commit: re-validates `path` against the current matching in O(length)
  /// and applies it on success. Returns false (matching untouched) when an
  /// interleaved augmentation re-routed one of its vertices.
  bool CommitPath(const RecordedPath& path);

  const Matching& matching() const { return matching_; }
  int size() const { return matching_.size; }

  size_t FootprintBytes() const {
    return (matching_.match_left.capacity() +
            matching_.match_right.capacity() + visited_.capacity()) *
               sizeof(int) +
           frames_.capacity() * sizeof(Frame);
  }

 private:
  /// One frame of the iterative DFS: `l` is the left vertex being expanded,
  /// `next` the cursor into its neighbor span, `r` the right vertex the
  /// search descended through (valid once the frame has a child or the
  /// search succeeded at this frame).
  struct Frame {
    int l;
    int next;
    int r;
  };

  /// Iterative DFS from `root` under the current visited stamp. On success
  /// frames_ holds the augmenting path as (l, r) pairs; the matching is not
  /// mutated. Does NOT bump the stamp (callers choose sharing semantics).
  bool Search(int root);

  /// Applies the path currently held in frames_.
  void CommitFrames();

  const BipartiteGraph* graph_ = nullptr;
  Matching matching_;
  std::vector<int> visited_;
  int stamp_ = 0;
  std::vector<Frame> frames_;
};

}  // namespace maps
