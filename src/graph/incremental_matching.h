// IncrementalMatching: the pre-matching M' of Algorithm 2.
//
// MAPS grows the supply of one grid at a time; each growth step must verify
// that some still-unassigned task of that grid has an augmenting path in the
// current pre-matching. This class maintains the matching across such
// single-vertex augmentations.
//
// The search core is a single iterative DFS over reusable stack/visited
// buffers. It records the augmenting path it finds, so callers can separate
// "does a path exist?" (probe) from "apply it" (commit) without walking the
// alternating tree twice: a recorded path is revalidated in O(path length)
// and applied in O(path length), falling back to one fresh search only when
// an interleaved augmentation invalidated it.
//
// Two structural accelerations (PR 4); neither changes which left
// vertices end up matched (the transversal-matroid independence oracle),
// though the right-side pairing within that set may differ (see
// DESIGN.md §10):
//
//  * Free-worker lookahead. Before descending through matched workers, each
//    DFS frame scans its whole neighbor span for a free right vertex. Most
//    successful augmentations terminate at the first frame that has one, so
//    the common path is O(degree) instead of a deep alternating-tree walk.
//    Lookahead changes WHICH augmenting path is found, never whether one
//    exists: in a transversal matroid, augmentability from a root depends
//    only on the set of matched left vertices, not on how they are matched.
//  * Dead-region pruning. A failed search certifies that every right vertex
//    it visited belongs to a saturated closed region (all matched, and all
//    of their partners' edges lead back inside). No later augmenting path
//    can enter such a region while the matching only grows — augmentations
//    would have to traverse it forever without reaching a free vertex — so
//    those vertices are marked dead and skipped by every later search.
//    Failed probes across all grids then cost O(E) amortized per round
//    instead of O(E) each. Reset() clears the markings.

#pragma once

#include <utility>
#include <vector>

#include "graph/bipartite_graph.h"
#include "graph/matching.h"

namespace maps {

/// \brief An augmenting path recorded by a probe: edges_[i] = (l_i, r_i)
/// where l_0 is the free root, r_last is a free right vertex, and each
/// l_{i+1} is the vertex currently matched to r_i. Applying the path matches
/// every (l_i, r_i) pair, growing the matching by one.
struct RecordedPath {
  std::vector<std::pair<int, int>> edges;

  bool empty() const { return edges.empty(); }
  void clear() { edges.clear(); }
};

/// \brief Maintains a bipartite matching under one-left-vertex-at-a-time
/// augmentation requests.
class IncrementalMatching {
 public:
  IncrementalMatching() = default;
  explicit IncrementalMatching(const BipartiteGraph* graph);

  /// Rebinds to `graph` and clears the matching, reusing all internal
  /// buffers (no steady-state allocations when graph sizes are stable).
  void Reset(const BipartiteGraph* graph);

  /// Tries to match left vertex `l` (possibly re-routing existing matches
  /// along an augmenting path). Returns true and mutates the matching on
  /// success; leaves the matching untouched on failure. No-op returning
  /// true if `l` is already matched.
  bool TryAugment(int l);

  /// True iff some vertex in `candidates` is unmatched but augmentable.
  /// Does NOT mutate the matching.
  bool AnyAugmentable(const std::vector<int>& candidates);

  /// Augments the first augmentable unmatched vertex in `candidates`;
  /// returns its index or Matching::kUnmatched when none succeeds.
  int AugmentFirst(const std::vector<int>& candidates);

  /// Probe: finds the first unmatched vertex in `candidates` with an
  /// augmenting path and records that path into `out` WITHOUT mutating the
  /// matching. Returns the vertex, or Matching::kUnmatched (and clears
  /// `out`) when none is augmentable. The visited set is shared across
  /// candidates: a failed search from one root proves every vertex it
  /// reached is exhausted for all later roots, so the whole probe costs one
  /// graph walk instead of one per candidate.
  int FindAugmentablePath(const std::vector<int>& candidates,
                          RecordedPath* out);

  /// Commit: re-validates `path` against the current matching in O(length)
  /// and applies it on success. Returns false (matching untouched) when an
  /// interleaved augmentation re-routed one of its vertices.
  bool CommitPath(const RecordedPath& path);

  const Matching& matching() const { return matching_; }
  int size() const { return matching_.size; }

  /// Right vertices currently pruned as members of saturated closed regions
  /// (diagnostic/test hook; see the dead-region invariant above).
  int num_dead() const { return num_dead_; }

  size_t FootprintBytes() const {
    return (matching_.match_left.capacity() +
            matching_.match_right.capacity() + visited_.capacity() +
            touched_.capacity()) *
               sizeof(int) +
           frames_.capacity() * sizeof(Frame);
  }

 private:
  /// One frame of the iterative DFS: `l` is the left vertex being expanded,
  /// `next` the cursor into its neighbor span, `r` the right vertex the
  /// search descended through (valid once the frame has a child or the
  /// search succeeded at this frame).
  struct Frame {
    int l;
    int next;
    int r;
  };

  /// visited_ sentinel for dead-region membership. Stamps are >= 0 and -1
  /// means untouched, so -2 can never collide with a live stamp.
  static constexpr int kDeadStamp = -2;

  /// Iterative DFS from `root` under the current visited stamp. On success
  /// frames_ holds the augmenting path as (l, r) pairs; the matching is not
  /// mutated. Does NOT bump the stamp (callers choose sharing semantics).
  bool Search(int root);

  /// Pushes a frame for `l` after scanning its whole neighbor span for a
  /// free right vertex; returns true (frame completed with `r` set) when
  /// one exists, so the caller can stop searching immediately.
  bool PushFrameWithLookahead(int l);

  /// Marks touched_[0, count) dead: the union of all failed searches under
  /// one stamp is a saturated closed region (see the class comment).
  void MarkTouchedDead(size_t count);

  /// Applies the path currently held in frames_.
  void CommitFrames();

  const BipartiteGraph* graph_ = nullptr;
  Matching matching_;
  std::vector<int> visited_;
  int stamp_ = 0;
  int num_dead_ = 0;
  std::vector<Frame> frames_;
  /// Right vertices stamped by the current probe, in stamping order; the
  /// prefix written by failed candidate searches feeds MarkTouchedDead.
  std::vector<int> touched_;
};

}  // namespace maps
