// IncrementalMatching: the pre-matching M' of Algorithm 2.
//
// MAPS grows the supply of one grid at a time; each growth step must verify
// that some still-unassigned task of that grid has an augmenting path in the
// current pre-matching. This class maintains the matching across such
// single-vertex augmentations.

#pragma once

#include <vector>

#include "graph/bipartite_graph.h"
#include "graph/matching.h"

namespace maps {

/// \brief Maintains a bipartite matching under one-left-vertex-at-a-time
/// augmentation requests.
class IncrementalMatching {
 public:
  explicit IncrementalMatching(const BipartiteGraph* graph);

  /// Tries to match left vertex `l` (possibly re-routing existing matches
  /// along an augmenting path). Returns true and mutates the matching on
  /// success; leaves the matching untouched on failure. No-op returning
  /// true if `l` is already matched.
  bool TryAugment(int l);

  /// True iff some vertex in `candidates` is unmatched but augmentable.
  /// Does NOT mutate the matching.
  bool AnyAugmentable(const std::vector<int>& candidates);

  /// Augments the first augmentable unmatched vertex in `candidates`;
  /// returns its index or Matching::kUnmatched when none succeeds.
  int AugmentFirst(const std::vector<int>& candidates);

  const Matching& matching() const { return matching_; }
  int size() const { return matching_.size; }

  size_t FootprintBytes() const {
    return (matching_.match_left.capacity() +
            matching_.match_right.capacity() + visited_.capacity()) *
           sizeof(int);
  }

 private:
  bool Dfs(int l, bool commit);

  const BipartiteGraph* graph_;
  Matching matching_;
  std::vector<int> visited_;
  int stamp_ = 0;
};

}  // namespace maps
