// Exact expected total revenue via possible-world enumeration (Def. 5-6).
//
// Each requester independently accepts their offered price with probability
// S_g(p_r); a possible world is an acceptance subset, its revenue the
// maximum-weight matching over accepted tasks, and the expectation the
// probability-weighted sum over all 2^|R| worlds (Fig. 2 of the paper).
// Exponential, so usable only on small instances — it is the ground truth
// the pricing strategies are validated against.
//
// Per-world work is allocation-free: task values d_r * p_r and their greedy
// order are world-independent, so both are computed once per task set and a
// pooled workspace carries the acceptance/matching scratch across worlds.

#pragma once

#include <vector>

#include "graph/bipartite_graph.h"
#include "graph/incremental_matching.h"
#include "rng/random.h"
#include "util/thread_pool.h"

namespace maps {

/// \brief A task with its offered price and acceptance probability.
struct PricedTask {
  double distance = 0.0;     ///< d_r
  double price = 0.0;        ///< p_r (unit price)
  double accept_prob = 0.0;  ///< S_g(p_r)
};

/// \brief Scratch reused across worlds (and across whole evaluations when
/// the caller keeps it alive, e.g. OracleSearch's odometer loop).
struct PossibleWorldsWorkspace {
  std::vector<char> accepted;   ///< acceptance vector of the current world
  std::vector<double> value;    ///< d_r * p_r per task
  std::vector<int> order;       ///< task indices, value-descending
  IncrementalMatching inc;      ///< per-world greedy matching state

  /// Live bytes of the pooled buffers, matching state included (memory
  /// accounting for the benches).
  size_t FootprintBytes() const {
    return accepted.capacity() * sizeof(char) +
           value.capacity() * sizeof(double) +
           order.capacity() * sizeof(int) + inc.FootprintBytes();
  }
};

/// \brief Exact E[U(B^t)] by enumerating all 2^n acceptance subsets.
/// \pre tasks.size() <= 25 (hard check; beyond that use Monte Carlo).
double ExactExpectedRevenue(const BipartiteGraph& graph,
                            const std::vector<PricedTask>& tasks);

/// \brief As above, reusing `ws` buffers across calls.
double ExactExpectedRevenue(const BipartiteGraph& graph,
                            const std::vector<PricedTask>& tasks,
                            PossibleWorldsWorkspace* ws);

/// \brief Pool-backed enumeration: the 2^n mask space is split into a FIXED
/// number of contiguous shards (a function of n only), each shard sums its
/// worlds in mask order on one worker, and partials are added in shard
/// order — so the result is bit-identical for ANY thread count (1, 2, 8,
/// ...), though it may differ from the single-accumulator serial overloads
/// by floating-point association at shard boundaries.
///
/// `workspaces` follows the PR 1 pooling contract across invocations: it is
/// resized to the pool's worker count and each worker touches only its own
/// entry; capacities persist so steady-state calls allocate nothing.
double ExactExpectedRevenue(const BipartiteGraph& graph,
                            const std::vector<PricedTask>& tasks,
                            ThreadPool* pool,
                            std::vector<PossibleWorldsWorkspace>* workspaces);

/// \brief Monte-Carlo estimate of E[U(B^t)] with `samples` sampled worlds,
/// drawn from the caller's SEQUENTIAL stream. Kept for stream-aligned
/// single-threaded uses; the counter-based overload below is what shards.
double MonteCarloExpectedRevenue(const BipartiteGraph& graph,
                                 const std::vector<PricedTask>& tasks,
                                 Rng& rng, int samples);

/// \brief As above, reusing `ws` buffers across calls.
double MonteCarloExpectedRevenue(const BipartiteGraph& graph,
                                 const std::vector<PricedTask>& tasks,
                                 Rng& rng, int samples,
                                 PossibleWorldsWorkspace* ws);

/// \brief Pool-backed Monte Carlo: world s in [0, samples) draws its
/// acceptance vector from CounterRng stream (seed, s) — a pure function of
/// the world index, never of which worker ran it or how many worlds ran
/// before it. Worlds are split into a FIXED number of contiguous shards (a
/// function of `samples` only), each shard sums its worlds in index order,
/// and partials fold in shard order — so the estimate is bit-identical for
/// ANY thread count (1, 2, 8, ...), including `pool == nullptr`.
///
/// `workspaces` follows the PR 1 pooling contract: resized to the pool's
/// worker count, each worker touches only its own entry, capacities persist
/// across invocations.
double MonteCarloExpectedRevenue(const BipartiteGraph& graph,
                                 const std::vector<PricedTask>& tasks,
                                 uint64_t seed, int samples, ThreadPool* pool,
                                 std::vector<PossibleWorldsWorkspace>* workspaces);

/// \brief First two power sums of sampled world revenues — the raw material
/// of a confidence interval (mean = sum / n, variance from sum_squares).
struct WorldMomentSums {
  double sum = 0.0;          ///< Σ revenue(world)
  double sum_squares = 0.0;  ///< Σ revenue(world)^2
};

/// \brief Moments of worlds [first_world, first_world + num_worlds): world w
/// draws its acceptance vector from CounterRng stream (seed, w), exactly like
/// the counter-based MonteCarloExpectedRevenue overload, so batches taken at
/// [0, B), [B, 2B), ... concatenate into the same world sequence a single
/// [0, n*B) call would sample. The batch is split into a FIXED number of
/// contiguous shards (a function of num_worlds only) whose partial
/// (sum, sum_squares) pairs fold in shard order — bit-identical for ANY
/// thread count, including `pool == nullptr`. This is the primitive behind
/// the CI stopping rule in pricing/oracle_exact.h.
WorldMomentSums MonteCarloRevenueMoments(
    const BipartiteGraph& graph, const std::vector<PricedTask>& tasks,
    uint64_t seed, int64_t first_world, int64_t num_worlds, ThreadPool* pool,
    std::vector<PossibleWorldsWorkspace>* workspaces);

}  // namespace maps
