// Hopcroft-Karp maximum-cardinality bipartite matching: O(E * sqrt(V)).
// Used on the large instances (scalability sweeps) where Kuhn's O(V*E)
// would dominate the simulation loop.

#pragma once

#include "graph/bipartite_graph.h"
#include "graph/matching.h"

namespace maps {

/// \brief Computes a maximum-cardinality matching via BFS layering and
/// layered DFS augmentation.
Matching HopcroftKarpMatching(const BipartiteGraph& graph);

}  // namespace maps
