#include "graph/bipartite_graph.h"

#include <algorithm>

#include "util/logging.h"

namespace maps {

BipartiteGraph BipartiteGraph::FromEdges(
    int num_left, int num_right, std::vector<std::pair<int, int>> edges) {
  BipartiteGraph g;
  g.num_left_ = num_left;
  g.num_right_ = num_right;
  g.offsets_.assign(num_left + 1, 0);
  for (const auto& [l, r] : edges) {
    MAPS_CHECK(l >= 0 && l < num_left) << "left vertex out of range";
    MAPS_CHECK(r >= 0 && r < num_right) << "right vertex out of range";
    ++g.offsets_[l + 1];
  }
  for (int l = 0; l < num_left; ++l) g.offsets_[l + 1] += g.offsets_[l];
  g.adj_.resize(edges.size());
  std::vector<int64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [l, r] : edges) {
    g.adj_[cursor[l]++] = r;
  }
  // Deterministic neighbor order regardless of input edge order.
  for (int l = 0; l < num_left; ++l) {
    std::sort(g.adj_.begin() + g.offsets_[l], g.adj_.begin() + g.offsets_[l + 1]);
  }
  return g;
}

BipartiteGraph BipartiteGraph::Build(const std::vector<Task>& tasks,
                                     const std::vector<Worker>& workers,
                                     const GridPartition& grid) {
  // Bucket task indices by grid cell.
  std::vector<std::vector<int>> tasks_by_cell(grid.num_cells());
  for (int i = 0; i < static_cast<int>(tasks.size()); ++i) {
    tasks_by_cell[tasks[i].grid].push_back(i);
  }
  std::vector<std::pair<int, int>> edges;
  for (int w = 0; w < static_cast<int>(workers.size()); ++w) {
    const Worker& worker = workers[w];
    const double r2 = worker.radius * worker.radius;
    for (GridId cell :
         grid.CellsIntersectingDisc(worker.location, worker.radius)) {
      for (int t : tasks_by_cell[cell]) {
        const Point& o = tasks[t].origin;
        const double dx = o.x - worker.location.x;
        const double dy = o.y - worker.location.y;
        if (dx * dx + dy * dy <= r2) edges.emplace_back(t, w);
      }
    }
  }
  return FromEdges(static_cast<int>(tasks.size()),
                   static_cast<int>(workers.size()), std::move(edges));
}

}  // namespace maps
