#include "graph/bipartite_graph.h"

#include <algorithm>
#include <atomic>

#include "util/logging.h"

namespace maps {

namespace {

std::atomic<int64_t> g_build_count{0};

}  // namespace

int64_t BipartiteGraph::TotalBuildCount() {
  return g_build_count.load(std::memory_order_relaxed);
}

void BipartiteGraph::AssignFromEdges(
    int num_left, int num_right,
    const std::vector<std::pair<int, int>>& edges,
    std::vector<int64_t>* cursor) {
  g_build_count.fetch_add(1, std::memory_order_relaxed);
  num_left_ = num_left;
  num_right_ = num_right;
  offsets_.assign(num_left + 1, 0);
  for (const auto& [l, r] : edges) {
    MAPS_CHECK(l >= 0 && l < num_left) << "left vertex out of range";
    MAPS_CHECK(r >= 0 && r < num_right) << "right vertex out of range";
    ++offsets_[l + 1];
  }
  for (int l = 0; l < num_left; ++l) offsets_[l + 1] += offsets_[l];
  adj_.resize(edges.size());
  cursor->assign(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [l, r] : edges) {
    adj_[(*cursor)[l]++] = r;
  }
  // Deterministic neighbor order regardless of input edge order.
  for (int l = 0; l < num_left; ++l) {
    std::sort(adj_.begin() + offsets_[l], adj_.begin() + offsets_[l + 1]);
  }
}

BipartiteGraph BipartiteGraph::FromEdges(
    int num_left, int num_right,
    const std::vector<std::pair<int, int>>& edges) {
  BipartiteGraph g;
  std::vector<int64_t> cursor;
  g.AssignFromEdges(num_left, num_right, edges, &cursor);
  return g;
}

void BipartiteGraph::BuildInto(const std::vector<Task>& tasks,
                               const std::vector<Worker>& workers,
                               const GridPartition& grid,
                               GraphBuildWorkspace* ws, BipartiteGraph* out) {
  // Bucket task indices by grid cell, clearing (not freeing) old buckets.
  ws->tasks_by_cell.resize(grid.num_cells());
  for (auto& cell : ws->tasks_by_cell) cell.clear();
  for (int i = 0; i < static_cast<int>(tasks.size()); ++i) {
    ws->tasks_by_cell[tasks[i].grid].push_back(i);
  }
  ws->edges.clear();
  for (int w = 0; w < static_cast<int>(workers.size()); ++w) {
    const Worker& worker = workers[w];
    const double r2 = worker.radius * worker.radius;
    grid.CellsIntersectingDisc(worker.location, worker.radius, &ws->cells);
    for (GridId cell : ws->cells) {
      for (int t : ws->tasks_by_cell[cell]) {
        const Point& o = tasks[t].origin;
        const double dx = o.x - worker.location.x;
        const double dy = o.y - worker.location.y;
        if (dx * dx + dy * dy <= r2) ws->edges.emplace_back(t, w);
      }
    }
  }
  out->AssignFromEdges(static_cast<int>(tasks.size()),
                       static_cast<int>(workers.size()), ws->edges,
                       &ws->cursor);
}

BipartiteGraph BipartiteGraph::Build(const std::vector<Task>& tasks,
                                     const std::vector<Worker>& workers,
                                     const GridPartition& grid) {
  GraphBuildWorkspace ws;
  BipartiteGraph g;
  BuildInto(tasks, workers, grid, &ws, &g);
  return g;
}

}  // namespace maps
