// Exact maximum-weight bipartite matching for TASK-SIDE weights.
//
// In Definition 5 the weight of edge (r, w) is d_r * p_r, which depends only
// on the task endpoint r. The sets of tasks that can be simultaneously
// matched form a transversal matroid, and maximizing a sum of per-element
// weights over a matroid is solved EXACTLY by the greedy algorithm:
// process tasks in non-increasing weight order and accept a task iff an
// augmenting path exists in the matching built so far (matroid independence
// oracle = augmentability). This is O(sorting + sum of augmentation costs),
// far cheaper than the O(n^3) Hungarian algorithm, and is cross-validated
// against Hungarian in the test suite.

#pragma once

#include <vector>

#include "graph/bipartite_graph.h"
#include "graph/incremental_matching.h"
#include "graph/matching.h"

namespace maps {

/// \brief Result of a weighted matching computation.
struct WeightedMatchingResult {
  Matching matching;
  double total_weight = 0.0;
};

/// \brief Reusable buffers for repeated MaxWeightTaskMatching calls over
/// graphs of similar size (the possible-world enumerator solves one matching
/// per world; pooling removes every per-world allocation).
struct MaxWeightMatchingWorkspace {
  std::vector<int> order;
  IncrementalMatching inc;
};

/// \brief Exact max-weight matching when weight[l] is attached to the left
/// vertex (weights must be non-negative; negative-weight vertices are
/// skipped).
WeightedMatchingResult MaxWeightTaskMatching(
    const BipartiteGraph& graph, const std::vector<double>& left_weight);

/// \brief Allocation-free variant: returns only the total weight, reusing
/// `ws` buffers. The matching itself stays in ws->inc.matching().
double MaxWeightTaskMatchingValue(const BipartiteGraph& graph,
                                  const std::vector<double>& left_weight,
                                  MaxWeightMatchingWorkspace* ws);

}  // namespace maps
