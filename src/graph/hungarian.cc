#include "graph/hungarian.h"

#include <cmath>
#include <limits>

#include "util/logging.h"

namespace maps {

namespace {
// Cost substituted for missing edges; must dwarf any legitimate weight yet
// stay far from double overflow when mixed with potentials.
constexpr double kBigCost = 1e12;
}  // namespace

DenseWeightedMatchingResult HungarianMaxWeight(
    const std::vector<std::vector<double>>& weight) {
  const int n = static_cast<int>(weight.size());
  DenseWeightedMatchingResult out;
  out.match_left.assign(n, -1);
  if (n == 0) return out;
  const int nr = static_cast<int>(weight[0].size());
  for (const auto& row : weight) {
    MAPS_CHECK_EQ(static_cast<int>(row.size()), nr);
  }

  // Min-cost rectangular assignment with nl dummy columns of cost 0 so each
  // left vertex may stay unmatched for free. cost = -weight clamped so a
  // non-positive-gain edge is never preferred over a dummy.
  const int m = nr + n;
  auto cost = [&](int i, int j) -> double {
    if (j >= nr) return 0.0;  // dummy column
    const double w = weight[i][j];
    if (!std::isfinite(w) || w <= 0.0) return kBigCost;
    return -w;
  };

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // e-maxx Hungarian with row/column potentials, 1-indexed.
  std::vector<double> u(n + 1, 0.0), v(m + 1, 0.0);
  std::vector<int> p(m + 1, 0), way(m + 1, 0);
  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<double> minv(m + 1, kInf);
    std::vector<char> used(m + 1, 0);
    do {
      used[j0] = 1;
      const int i0 = p[j0];
      double delta = kInf;
      int j1 = -1;
      for (int j = 1; j <= m; ++j) {
        if (used[j]) continue;
        const double cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      MAPS_CHECK_GE(j1, 0);
      for (int j = 0; j <= m; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const int j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  for (int j = 1; j <= m; ++j) {
    if (p[j] == 0) continue;
    const int i = p[j] - 1;
    if (j - 1 < nr) {
      const double w = weight[i][j - 1];
      if (std::isfinite(w) && w > 0.0) {
        out.match_left[i] = j - 1;
        out.total_weight += w;
      }
    }
  }
  return out;
}

}  // namespace maps
