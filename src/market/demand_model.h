// Demand models: the distribution of private valuations v_r in one grid.
//
// Definition 3: the acceptance ratio at price p is S(p) = Pr[v_r > p]
// = 1 - F(p). The paper's analysis assumes F is a Monotone-Hazard-Rate
// distribution (normal/exponential/uniform all qualify); the Myerson
// reserve price argmax_p p*S(p) is then the unique maximizer.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "rng/distributions.h"
#include "rng/random.h"

namespace maps {

/// \brief Distribution of private valuations within one grid cell.
class DemandModel {
 public:
  virtual ~DemandModel() = default;

  /// CDF F(p) = Pr[v_r <= p].
  virtual double Cdf(double p) const = 0;

  /// Draws one private valuation.
  virtual double Sample(RandomSource& rng) const = 0;

  virtual std::unique_ptr<DemandModel> Clone() const = 0;

  virtual std::string ToString() const = 0;

  /// Acceptance ratio S(p) = 1 - F(p) (Definition 3).
  double AcceptRatio(double p) const { return 1.0 - Cdf(p); }

  /// Expected per-unit-distance revenue p * S(p).
  double ExpectedUnitRevenue(double p) const { return p * AcceptRatio(p); }

  /// Numerically locates the Myerson reserve price argmax p*S(p) on
  /// [lo, hi]: dense scan followed by ternary refinement (p*S(p) is
  /// unimodal for MHR demand).
  double MyersonPrice(double lo, double hi) const;
};

/// \brief Valuations ~ Normal(mean, stddev) truncated to [lo, hi]
/// (the paper's default; Table 3 "demand distribution").
class TruncatedNormalDemand : public DemandModel {
 public:
  TruncatedNormalDemand(double mean, double stddev, double lo, double hi);

  double Cdf(double p) const override;
  double Sample(RandomSource& rng) const override;
  std::unique_ptr<DemandModel> Clone() const override;
  std::string ToString() const override;

  double mean_parameter() const { return dist_.mean_parameter(); }

 private:
  TruncatedNormal dist_;
};

/// \brief Valuations ~ Exponential(rate) shifted to start at lo and truncated
/// at hi (appendix D varies the rate alpha in {0.5 .. 1.5}).
class TruncatedExponentialDemand : public DemandModel {
 public:
  TruncatedExponentialDemand(double rate, double lo, double hi);

  double Cdf(double p) const override;
  double Sample(RandomSource& rng) const override;
  std::unique_ptr<DemandModel> Clone() const override;
  std::string ToString() const override;

  double rate() const { return rate_; }

 private:
  double rate_, lo_, hi_;
  double mass_;  // CDF mass of the untruncated exponential on [0, hi-lo]
};

/// \brief Valuations ~ Uniform[lo, hi].
class UniformDemand : public DemandModel {
 public:
  UniformDemand(double lo, double hi);

  double Cdf(double p) const override;
  double Sample(RandomSource& rng) const override;
  std::unique_ptr<DemandModel> Clone() const override;
  std::string ToString() const override;

 private:
  double lo_, hi_;
};

/// \brief Deterministic valuation (used by the NP-hardness gadget tests and
/// for markets with fully known demand).
class PointMassDemand : public DemandModel {
 public:
  explicit PointMassDemand(double value);

  double Cdf(double p) const override;
  double Sample(RandomSource& rng) const override;
  std::unique_ptr<DemandModel> Clone() const override;
  std::string ToString() const override;

  double value() const { return value_; }

 private:
  double value_;
};

/// \brief Piecewise-constant acceptance ratios given at a set of prices,
/// like Table 1 of the paper (S(1)=0.9, S(2)=0.8, S(3)=0.5).
///
/// Between listed prices the acceptance ratio is that of the largest listed
/// price <= p; above the last listed price it drops to `tail`.
class TabulatedDemand : public DemandModel {
 public:
  /// \param prices ascending prices
  /// \param accept_ratios S(p) at each listed price, non-increasing
  /// \param tail S(p) beyond the last price (default 0)
  TabulatedDemand(std::vector<double> prices,
                  std::vector<double> accept_ratios, double tail = 0.0);

  double Cdf(double p) const override;
  double Sample(RandomSource& rng) const override;
  std::unique_ptr<DemandModel> Clone() const override;
  std::string ToString() const override;

 private:
  std::vector<double> prices_;
  std::vector<double> accept_;
  double tail_;
};

}  // namespace maps
