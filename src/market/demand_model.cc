#include "market/demand_model.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace maps {

double DemandModel::MyersonPrice(double lo, double hi) const {
  MAPS_CHECK_LT(lo, hi);
  // Dense scan: robust to plateaus and step demand; p*S(p) is unimodal for
  // MHR distributions so the scan brackets the maximizer.
  constexpr int kScanPoints = 512;
  double best_p = lo;
  double best_v = ExpectedUnitRevenue(lo);
  for (int i = 1; i <= kScanPoints; ++i) {
    const double p = lo + (hi - lo) * i / kScanPoints;
    const double v = ExpectedUnitRevenue(p);
    if (v > best_v) {
      best_v = v;
      best_p = p;
    }
  }
  // Ternary refinement in the bracketing interval.
  double a = std::max(lo, best_p - (hi - lo) / kScanPoints);
  double b = std::min(hi, best_p + (hi - lo) / kScanPoints);
  for (int iter = 0; iter < 80; ++iter) {
    const double m1 = a + (b - a) / 3.0;
    const double m2 = b - (b - a) / 3.0;
    if (ExpectedUnitRevenue(m1) < ExpectedUnitRevenue(m2)) {
      a = m1;
    } else {
      b = m2;
    }
  }
  const double refined = (a + b) / 2.0;
  return ExpectedUnitRevenue(refined) >= best_v ? refined : best_p;
}

// ---------------------------------------------------------------------------
// TruncatedNormalDemand

TruncatedNormalDemand::TruncatedNormalDemand(double mean, double stddev,
                                             double lo, double hi)
    : dist_(mean, stddev, lo, hi) {}

double TruncatedNormalDemand::Cdf(double p) const { return dist_.Cdf(p); }

double TruncatedNormalDemand::Sample(RandomSource& rng) const {
  return dist_.Sample(rng);
}

std::unique_ptr<DemandModel> TruncatedNormalDemand::Clone() const {
  return std::make_unique<TruncatedNormalDemand>(*this);
}

std::string TruncatedNormalDemand::ToString() const {
  std::ostringstream os;
  os << "TruncatedNormal(mu=" << dist_.mean_parameter()
     << ", sigma=" << dist_.stddev_parameter() << ", [" << dist_.lo() << ","
     << dist_.hi() << "])";
  return os.str();
}

// ---------------------------------------------------------------------------
// TruncatedExponentialDemand

TruncatedExponentialDemand::TruncatedExponentialDemand(double rate, double lo,
                                                       double hi)
    : rate_(rate), lo_(lo), hi_(hi) {
  MAPS_CHECK_GT(rate, 0.0);
  MAPS_CHECK_LT(lo, hi);
  mass_ = 1.0 - std::exp(-rate_ * (hi_ - lo_));
  MAPS_CHECK_GT(mass_, 0.0);
}

double TruncatedExponentialDemand::Cdf(double p) const {
  if (p <= lo_) return 0.0;
  if (p >= hi_) return 1.0;
  return (1.0 - std::exp(-rate_ * (p - lo_))) / mass_;
}

double TruncatedExponentialDemand::Sample(RandomSource& rng) const {
  double u = rng.NextDouble();
  // Inverse CDF of the truncated exponential.
  const double x = -std::log(1.0 - u * mass_) / rate_;
  return std::min(lo_ + x, hi_);
}

std::unique_ptr<DemandModel> TruncatedExponentialDemand::Clone() const {
  return std::make_unique<TruncatedExponentialDemand>(*this);
}

std::string TruncatedExponentialDemand::ToString() const {
  std::ostringstream os;
  os << "TruncatedExponential(rate=" << rate_ << ", [" << lo_ << "," << hi_
     << "])";
  return os.str();
}

// ---------------------------------------------------------------------------
// UniformDemand

UniformDemand::UniformDemand(double lo, double hi) : lo_(lo), hi_(hi) {
  MAPS_CHECK_LT(lo, hi);
}

double UniformDemand::Cdf(double p) const {
  if (p <= lo_) return 0.0;
  if (p >= hi_) return 1.0;
  return (p - lo_) / (hi_ - lo_);
}

double UniformDemand::Sample(RandomSource& rng) const {
  return rng.NextDouble(lo_, hi_);
}

std::unique_ptr<DemandModel> UniformDemand::Clone() const {
  return std::make_unique<UniformDemand>(*this);
}

std::string UniformDemand::ToString() const {
  std::ostringstream os;
  os << "Uniform[" << lo_ << "," << hi_ << "]";
  return os.str();
}

// ---------------------------------------------------------------------------
// PointMassDemand

PointMassDemand::PointMassDemand(double value) : value_(value) {}

double PointMassDemand::Cdf(double p) const {
  // Pr[v <= p]; the accept rule is v >= p, so strictly below the atom the
  // CDF must be 0 and at/above it 1 minus nothing: accept iff p <= value.
  return p > value_ ? 1.0 : 0.0;
}

double PointMassDemand::Sample(RandomSource&) const { return value_; }

std::unique_ptr<DemandModel> PointMassDemand::Clone() const {
  return std::make_unique<PointMassDemand>(*this);
}

std::string PointMassDemand::ToString() const {
  std::ostringstream os;
  os << "PointMass(" << value_ << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// TabulatedDemand

TabulatedDemand::TabulatedDemand(std::vector<double> prices,
                                 std::vector<double> accept_ratios,
                                 double tail)
    : prices_(std::move(prices)),
      accept_(std::move(accept_ratios)),
      tail_(tail) {
  MAPS_CHECK_EQ(prices_.size(), accept_.size());
  MAPS_CHECK(!prices_.empty());
  for (size_t i = 1; i < prices_.size(); ++i) {
    MAPS_CHECK_LT(prices_[i - 1], prices_[i]);
    MAPS_CHECK_GE(accept_[i - 1], accept_[i]) << "S(p) must be non-increasing";
  }
  MAPS_CHECK_GE(accept_.back(), tail_);
  MAPS_CHECK_LE(accept_.front(), 1.0);
  MAPS_CHECK_GE(tail_, 0.0);
}

double TabulatedDemand::Cdf(double p) const {
  // Valuations are atoms at the listed prices (plus a reject atom far below
  // and a tail atom above), so Pr[v >= p] = accept_[i] for the smallest
  // listed price p_i >= p.
  if (p > prices_.back()) return 1.0 - tail_;
  auto it = std::lower_bound(prices_.begin(), prices_.end(), p);
  const size_t idx = static_cast<size_t>(it - prices_.begin());
  return 1.0 - accept_[idx];
}

double TabulatedDemand::Sample(RandomSource& rng) const {
  const double u = rng.NextDouble();
  if (u < tail_) return prices_.back() + 1.0;  // accepts every listed price
  for (size_t i = prices_.size(); i-- > 0;) {
    if (u < accept_[i]) return prices_[i];
  }
  return prices_.front() - 1e6;  // rejects everything
}

std::unique_ptr<DemandModel> TabulatedDemand::Clone() const {
  return std::make_unique<TabulatedDemand>(*this);
}

std::string TabulatedDemand::ToString() const {
  std::ostringstream os;
  os << "Tabulated{";
  for (size_t i = 0; i < prices_.size(); ++i) {
    if (i > 0) os << ", ";
    os << "S(" << prices_[i] << ")=" << accept_[i];
  }
  os << "}";
  return os.str();
}

}  // namespace maps
