// Crowd workers (Definition 4).

#pragma once

#include <cstdint>
#include <limits>

#include "geo/grid.h"
#include "geo/point.h"

namespace maps {

using WorkerId = int64_t;

/// \brief A crowd worker w = <t, l_w, a_w>.
struct Worker {
  WorkerId id = -1;
  /// First time period the worker is available.
  int32_t period = 0;
  /// Current location l_w.
  Point location;
  /// Range constraint radius a_w: the worker can serve task r iff
  /// EuclideanDistance(origin_r, location) <= radius.
  double radius = 0.0;
  /// Total periods of availability (kUnlimited => stays until matched once;
  /// the synthetic workloads use single-use workers, the Beijing surrogate
  /// uses finite durations with ride turnaround).
  int32_t duration = kUnlimitedDuration;
  /// Grid cell of the current location.
  GridId grid = -1;

  static constexpr int32_t kUnlimitedDuration =
      std::numeric_limits<int32_t>::max();

  /// Range-constraint test against a task origin.
  bool CanReach(const Point& task_origin) const {
    return EuclideanDistance(location, task_origin) <= radius;
  }
};

}  // namespace maps
