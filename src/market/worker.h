// Crowd workers (Definition 4).

#pragma once

#include <cstdint>
#include <limits>

#include "geo/grid.h"
#include "geo/point.h"

namespace maps {

using WorkerId = int64_t;

/// \brief A crowd worker w = <t, l_w, a_w>.
struct Worker {
  WorkerId id = -1;
  /// First time period the worker is available.
  int32_t period = 0;
  /// Current location l_w.
  Point location;
  /// Range constraint radius a_w: the worker can serve task r iff
  /// EuclideanDistance(origin_r, location) <= radius.
  double radius = 0.0;
  /// Total periods of availability (kUnlimited => stays until matched once;
  /// the synthetic workloads use single-use workers, the Beijing surrogate
  /// uses finite durations with ride turnaround).
  int32_t duration = kUnlimitedDuration;
  /// Grid cell of the current location.
  GridId grid = -1;

  static constexpr int32_t kUnlimitedDuration =
      std::numeric_limits<int32_t>::max();

  /// Range-constraint test against a task origin.
  bool CanReach(const Point& task_origin) const {
    return EuclideanDistance(location, task_origin) <= radius;
  }
};

/// \brief Worker lifecycle policy of a market: what happens to a worker
/// after a match and between matches. Lives next to Worker (not in sim/) so
/// the online MarketEngine can enforce it without depending on workloads.
struct WorkerLifecycle {
  /// true: a worker disappears after serving one task (the paper's synthetic
  /// setting); false: the worker is busy for the ride duration, reappears at
  /// the task's destination, and retires after `Worker::duration` periods of
  /// membership (the Beijing setting).
  bool single_use = true;
  /// Travel speed in distance units per period; ride time is
  /// ceil(d_r / speed) periods. Only used when !single_use.
  double speed = 1.0;

  /// Idle-worker repositioning (Sec. 4.2.3's practical note: higher unit
  /// prices "motivate more drivers to move to these regions"). Each period,
  /// every idle worker independently moves, with this probability, to the
  /// highest-priced cell in its 8-neighborhood when that price beats the
  /// current cell's. 0 disables repositioning.
  double reposition_prob = 0.0;
  /// Seed of the repositioning decision stream (keeps runs deterministic).
  uint64_t reposition_seed = 77;
};

}  // namespace maps
