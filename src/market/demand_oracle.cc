#include "market/demand_oracle.h"

#include "rng/counter_rng.h"
#include "util/logging.h"

namespace maps {

namespace {
/// Domain separator between the oracle's counter-based probe streams and
/// any other CounterRng family derived from the same experiment seed.
constexpr uint64_t kProbeStreamDomain = 0x70726f6265ULL;  // "probe"
}  // namespace

DemandOracle::DemandOracle(std::vector<std::unique_ptr<DemandModel>> per_grid,
                           uint64_t seed)
    : models_(std::move(per_grid)), rng_(seed), seed_(seed) {}

Result<DemandOracle> DemandOracle::Make(
    std::vector<std::unique_ptr<DemandModel>> per_grid, uint64_t seed) {
  if (per_grid.empty()) {
    return Status::InvalidArgument("oracle needs at least one grid model");
  }
  for (const auto& m : per_grid) {
    if (m == nullptr) {
      return Status::InvalidArgument("null demand model");
    }
  }
  return DemandOracle(std::move(per_grid), seed);
}

const DemandModel& DemandOracle::model(int grid) const {
  MAPS_CHECK(grid >= 0 && grid < num_grids()) << "grid " << grid;
  return *models_[grid];
}

double DemandOracle::TrueAcceptRatio(int grid, double p) const {
  return model(grid).AcceptRatio(p);
}

bool DemandOracle::ProbeAccept(int grid, double p) {
  ++num_probes_;
  const double v = models_[grid]->Sample(rng_);
  return v >= p;
}

int64_t DemandOracle::CountProbeAccepts(int grid, double p, int64_t trials,
                                        uint64_t stream) const {
  MAPS_CHECK(grid >= 0 && grid < num_grids()) << "grid " << grid;
  MAPS_CHECK_GE(trials, 0);
  CounterRng rng(seed_ ^ kProbeStreamDomain, stream);
  const DemandModel& model = *models_[grid];
  int64_t accepts = 0;
  for (int64_t s = 0; s < trials; ++s) {
    if (model.Sample(rng) >= p) ++accepts;
  }
  return accepts;
}

double DemandOracle::SampleValuation(int grid) {
  return models_[grid]->Sample(rng_);
}

DemandOracle DemandOracle::Fork(uint64_t stream) const {
  std::vector<std::unique_ptr<DemandModel>> copies;
  copies.reserve(models_.size());
  for (const auto& m : models_) copies.push_back(m->Clone());
  return DemandOracle(std::move(copies),
                      seed_ ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
}

void DemandOracle::ReplaceModel(int grid, std::unique_ptr<DemandModel> model) {
  MAPS_CHECK(grid >= 0 && grid < num_grids());
  MAPS_CHECK(model != nullptr);
  models_[grid] = std::move(model);
}

std::vector<std::unique_ptr<DemandModel>> ReplicateDemand(
    const DemandModel& model, int num_grids) {
  std::vector<std::unique_ptr<DemandModel>> out;
  out.reserve(num_grids);
  for (int g = 0; g < num_grids; ++g) out.push_back(model.Clone());
  return out;
}

}  // namespace maps
