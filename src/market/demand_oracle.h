// DemandOracle: per-grid ground-truth valuation distributions.
//
// The oracle plays two roles:
//  * the simulator draws true valuations v_r from it when generating tasks;
//  * pricing strategies probe it during warm-up ("use the price p for h(p)
//    requesters who recently have issued tasks", Algorithm 1 line 6) —
//    each probe draws a fresh historical requester and returns only the
//    accept/reject bit, never the valuation.

#pragma once

#include <memory>
#include <vector>

#include "market/demand_model.h"
#include "rng/random.h"
#include "util/result.h"

namespace maps {

/// \brief Ground truth demand per grid plus probe bookkeeping.
class DemandOracle {
 public:
  /// \param per_grid one demand model per grid cell (size G)
  /// \param seed RNG seed for probe draws
  static Result<DemandOracle> Make(
      std::vector<std::unique_ptr<DemandModel>> per_grid, uint64_t seed);

  int num_grids() const { return static_cast<int>(models_.size()); }

  const DemandModel& model(int grid) const;

  /// True acceptance ratio S_g(p) — test/benchmark use only; strategies
  /// must not call this (they only get probes and feedback).
  double TrueAcceptRatio(int grid, double p) const;

  /// Simulates offering price `p` to one fresh historical requester in
  /// `grid`; returns whether they accept (v >= p).
  bool ProbeAccept(int grid, double p);

  /// Draws a fresh valuation (simulator use when generating tasks).
  double SampleValuation(int grid);

  /// Number of probes issued so far (all grids) — warm-up cost accounting.
  int64_t num_probes() const { return num_probes_; }

  /// Deep copy with an independent RNG stream; lets every strategy warm up
  /// against identical ground truth without sharing probe randomness.
  DemandOracle Fork(uint64_t stream) const;

  /// Replaces the model of one grid (used to emulate demand drift for the
  /// change-detector tests).
  void ReplaceModel(int grid, std::unique_ptr<DemandModel> model);

 private:
  DemandOracle(std::vector<std::unique_ptr<DemandModel>> per_grid,
               uint64_t seed);

  std::vector<std::unique_ptr<DemandModel>> models_;
  Rng rng_;
  uint64_t seed_;
  int64_t num_probes_ = 0;
};

/// \brief Convenience: G copies of the same model.
std::vector<std::unique_ptr<DemandModel>> ReplicateDemand(
    const DemandModel& model, int num_grids);

}  // namespace maps
