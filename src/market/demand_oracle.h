// DemandOracle: per-grid ground-truth valuation distributions.
//
// The oracle plays two roles:
//  * the simulator draws true valuations v_r from it when generating tasks;
//  * pricing strategies probe it during warm-up ("use the price p for h(p)
//    requesters who recently have issued tasks", Algorithm 1 line 6) —
//    each probe draws a fresh historical requester and returns only the
//    accept/reject bit, never the valuation.

#pragma once

#include <memory>
#include <vector>

#include "market/demand_model.h"
#include "rng/random.h"
#include "util/result.h"

namespace maps {

/// \brief Ground truth demand per grid plus probe bookkeeping.
class DemandOracle {
 public:
  /// \param per_grid one demand model per grid cell (size G)
  /// \param seed RNG seed for probe draws
  static Result<DemandOracle> Make(
      std::vector<std::unique_ptr<DemandModel>> per_grid, uint64_t seed);

  int num_grids() const { return static_cast<int>(models_.size()); }

  const DemandModel& model(int grid) const;

  /// True acceptance ratio S_g(p) — test/benchmark use only; strategies
  /// must not call this (they only get probes and feedback).
  double TrueAcceptRatio(int grid, double p) const;

  /// Simulates offering price `p` to one fresh historical requester in
  /// `grid`; returns whether they accept (v >= p). Draws from the oracle's
  /// SEQUENTIAL probe stream — callers that shard probes across workers use
  /// CountProbeAccepts instead.
  bool ProbeAccept(int grid, double p);

  /// Batch probe on an independent counter stream: offers `p` to `trials`
  /// fresh historical requesters in `grid` and returns how many accept.
  /// The draws come from CounterRng stream (probe seed, `stream`), so the
  /// result is a pure function of (models, seed, grid, p, trials, stream) —
  /// independent of the sequential probe state, of call order, and of which
  /// thread runs it (const; models are immutable). Probe-cost accounting is
  /// NOT performed here: the warm-up driver calls AccountProbes once with
  /// the deterministic total, keeping num_probes() race-free.
  int64_t CountProbeAccepts(int grid, double p, int64_t trials,
                            uint64_t stream) const;

  /// Adds externally-drawn probes (CountProbeAccepts batches) to the
  /// num_probes() accounting.
  void AccountProbes(int64_t n) { num_probes_ += n; }

  /// Draws a fresh valuation (simulator use when generating tasks).
  double SampleValuation(int grid);

  /// Number of probes issued so far (all grids) — warm-up cost accounting.
  int64_t num_probes() const { return num_probes_; }

  /// Deep copy with an independent RNG stream; lets every strategy warm up
  /// against identical ground truth without sharing probe randomness.
  DemandOracle Fork(uint64_t stream) const;

  /// Replaces the model of one grid (used to emulate demand drift for the
  /// change-detector tests).
  void ReplaceModel(int grid, std::unique_ptr<DemandModel> model);

 private:
  DemandOracle(std::vector<std::unique_ptr<DemandModel>> per_grid,
               uint64_t seed);

  std::vector<std::unique_ptr<DemandModel>> models_;
  Rng rng_;
  uint64_t seed_;
  int64_t num_probes_ = 0;
};

/// \brief Convenience: G copies of the same model.
std::vector<std::unique_ptr<DemandModel>> ReplicateDemand(
    const DemandModel& model, int num_grids);

}  // namespace maps
