// Spatial tasks (Definition 2). The requester's private valuation v_r is
// deliberately NOT stored here: strategies must never observe it. The
// simulator keeps valuations in a parallel array (see sim/workload.h) and
// only reveals accept/reject feedback, exactly like the real platform.

#pragma once

#include <cstdint>

#include "geo/grid.h"
#include "geo/point.h"

namespace maps {

using TaskId = int64_t;

/// \brief A spatial task r = <t, ori_r, des_r> plus derived fields.
struct Task {
  TaskId id = -1;
  /// Time period the task is issued in.
  int32_t period = 0;
  /// Requester's origin; determines the local market (grid).
  Point origin;
  /// Destination the worker must travel to.
  Point destination;
  /// Travel distance d_r from origin to destination; revenue is d_r * p.
  double distance = 0.0;
  /// Grid cell of the origin (cached; equals partition.CellOf(origin)).
  GridId grid = -1;
};

}  // namespace maps
