// MarketSnapshot: everything a pricing strategy may observe about one time
// period — the issued tasks, the available workers, and the grid partition.
// Valuations are absent by construction.
//
// Construction is staged so the simulator can pipeline periods (see
// DESIGN.md §10): the task side (bucketing, descending-distance prefix
// sums) depends only on the immutable workload and can be built for period
// t+1 on a worker thread while period t is being priced; the worker side
// depends on the serial worker-lifecycle state and is attached afterwards.
// Both stages reuse all internal storage across calls, so a double-buffered
// pair of snapshots performs no steady-state allocation.

#pragma once

#include <vector>

#include "geo/grid.h"
#include "market/task.h"
#include "market/worker.h"

namespace maps {

/// \brief Immutable per-period view of the market handed to strategies.
class MarketSnapshot {
 public:
  /// Staged construction: ResetTasks() then SetWorkers() before first use.
  MarketSnapshot() = default;

  /// One-shot construction (equivalent to the staged pair).
  MarketSnapshot(const GridPartition* grid, int32_t period,
                 std::vector<Task> tasks, std::vector<Worker> workers);

  /// Stage 1: rebinds the snapshot to (`grid`, `period`), copies the tasks
  /// of [begin, end) and rebuilds the per-grid task index and distance
  /// prefix sums. Reuses all storage; any previously attached workers are
  /// discarded (call SetWorkers() before handing the snapshot out).
  void ResetTasks(const GridPartition* grid, int32_t period,
                  const Task* begin, const Task* end);

  /// Stage 2: copies the workers of [begin, end) and rebuilds the per-grid
  /// worker index. Requires ResetTasks() to have bound a grid.
  void SetWorkers(const Worker* begin, const Worker* end);

  int32_t period() const { return period_; }
  const GridPartition& grid() const { return *grid_; }
  int num_grids() const { return grid_->num_cells(); }

  const std::vector<Task>& tasks() const { return tasks_; }
  const std::vector<Worker>& workers() const { return workers_; }

  /// Indices into tasks() whose origin lies in `g`.
  const std::vector<int>& TasksInGrid(GridId g) const;

  /// Indices into workers() currently located in `g`.
  const std::vector<int>& WorkersInGrid(GridId g) const;

  /// Prefix sums over grid `g`'s task distances in descending order —
  /// element k is the sum of the k largest distances (element 0 is 0;
  /// size = tasks-in-grid + 1). This is the d_{r_1} >= d_{r_2} >= ...
  /// ordering the supply curve of Eq. (1) sums over, cached so the
  /// Algorithm 3 maximizer evaluates any top-n sum in O(1) instead of
  /// re-summing per ladder rung. The k-th largest distance itself is
  /// prefix[k] - prefix[k-1].
  const std::vector<double>& DistancePrefixSumsInGrid(GridId g) const;

  /// Sum of all task distances in grid `g` (demand-curve scale C).
  double TotalDistanceInGrid(GridId g) const;

  /// Resident bytes of this snapshot's internal storage (task/worker copies
  /// plus the per-grid indices and prefix sums), by capacity. Used by the
  /// engine's platform-memory accounting: a double-buffered pair must count
  /// BOTH slots, not just the one currently handed to the strategy.
  size_t FootprintBytes() const;

 private:
  void IndexTasks();
  void IndexWorkers();

  const GridPartition* grid_ = nullptr;
  int32_t period_ = 0;
  std::vector<Task> tasks_;
  std::vector<Worker> workers_;
  std::vector<std::vector<int>> tasks_by_grid_;
  std::vector<std::vector<int>> workers_by_grid_;
  std::vector<std::vector<double>> dist_prefix_by_grid_;
  std::vector<double> total_dist_by_grid_;
  std::vector<double> sort_scratch_;
};

}  // namespace maps
