// MarketSnapshot: everything a pricing strategy may observe about one time
// period — the issued tasks, the available workers, and the grid partition.
// Valuations are absent by construction.

#pragma once

#include <vector>

#include "geo/grid.h"
#include "market/task.h"
#include "market/worker.h"

namespace maps {

/// \brief Immutable per-period view of the market handed to strategies.
class MarketSnapshot {
 public:
  MarketSnapshot(const GridPartition* grid, int32_t period,
                 std::vector<Task> tasks, std::vector<Worker> workers);

  int32_t period() const { return period_; }
  const GridPartition& grid() const { return *grid_; }
  int num_grids() const { return grid_->num_cells(); }

  const std::vector<Task>& tasks() const { return tasks_; }
  const std::vector<Worker>& workers() const { return workers_; }

  /// Indices into tasks() whose origin lies in `g`.
  const std::vector<int>& TasksInGrid(GridId g) const;

  /// Indices into workers() currently located in `g`.
  const std::vector<int>& WorkersInGrid(GridId g) const;

  /// Prefix sums over grid `g`'s task distances in descending order —
  /// element k is the sum of the k largest distances (element 0 is 0;
  /// size = tasks-in-grid + 1). This is the d_{r_1} >= d_{r_2} >= ...
  /// ordering the supply curve of Eq. (1) sums over, cached so the
  /// Algorithm 3 maximizer evaluates any top-n sum in O(1) instead of
  /// re-summing per ladder rung. The k-th largest distance itself is
  /// prefix[k] - prefix[k-1].
  const std::vector<double>& DistancePrefixSumsInGrid(GridId g) const;

  /// Sum of all task distances in grid `g` (demand-curve scale C).
  double TotalDistanceInGrid(GridId g) const;

 private:
  const GridPartition* grid_;
  int32_t period_;
  std::vector<Task> tasks_;
  std::vector<Worker> workers_;
  std::vector<std::vector<int>> tasks_by_grid_;
  std::vector<std::vector<int>> workers_by_grid_;
  std::vector<std::vector<double>> dist_prefix_by_grid_;
  std::vector<double> total_dist_by_grid_;
};

}  // namespace maps
