#include "market/market_state.h"

#include <algorithm>

#include "util/logging.h"

namespace maps {

MarketSnapshot::MarketSnapshot(const GridPartition* grid, int32_t period,
                               std::vector<Task> tasks,
                               std::vector<Worker> workers)
    : grid_(grid),
      period_(period),
      tasks_(std::move(tasks)),
      workers_(std::move(workers)) {
  MAPS_CHECK(grid_ != nullptr);
  const int g = grid_->num_cells();
  tasks_by_grid_.resize(g);
  workers_by_grid_.resize(g);
  sorted_dist_by_grid_.resize(g);
  total_dist_by_grid_.assign(g, 0.0);
  for (int i = 0; i < static_cast<int>(tasks_.size()); ++i) {
    const Task& t = tasks_[i];
    MAPS_DCHECK(t.grid >= 0 && t.grid < g);
    tasks_by_grid_[t.grid].push_back(i);
    sorted_dist_by_grid_[t.grid].push_back(t.distance);
    total_dist_by_grid_[t.grid] += t.distance;
  }
  for (int i = 0; i < static_cast<int>(workers_.size()); ++i) {
    const Worker& w = workers_[i];
    MAPS_DCHECK(w.grid >= 0 && w.grid < g);
    workers_by_grid_[w.grid].push_back(i);
  }
  for (auto& d : sorted_dist_by_grid_) {
    std::sort(d.begin(), d.end(), std::greater<double>());
  }
}

const std::vector<int>& MarketSnapshot::TasksInGrid(GridId g) const {
  MAPS_DCHECK(g >= 0 && g < num_grids());
  return tasks_by_grid_[g];
}

const std::vector<int>& MarketSnapshot::WorkersInGrid(GridId g) const {
  MAPS_DCHECK(g >= 0 && g < num_grids());
  return workers_by_grid_[g];
}

const std::vector<double>& MarketSnapshot::SortedDistancesInGrid(
    GridId g) const {
  MAPS_DCHECK(g >= 0 && g < num_grids());
  return sorted_dist_by_grid_[g];
}

double MarketSnapshot::TotalDistanceInGrid(GridId g) const {
  MAPS_DCHECK(g >= 0 && g < num_grids());
  return total_dist_by_grid_[g];
}

}  // namespace maps
