#include "market/market_state.h"

#include <algorithm>

#include "util/logging.h"

namespace maps {

MarketSnapshot::MarketSnapshot(const GridPartition* grid, int32_t period,
                               std::vector<Task> tasks,
                               std::vector<Worker> workers)
    : grid_(grid),
      period_(period),
      tasks_(std::move(tasks)),
      workers_(std::move(workers)) {
  MAPS_CHECK(grid_ != nullptr);
  IndexTasks();
  IndexWorkers();
}

void MarketSnapshot::ResetTasks(const GridPartition* grid, int32_t period,
                                const Task* begin, const Task* end) {
  MAPS_CHECK(grid != nullptr);
  grid_ = grid;
  period_ = period;
  tasks_.assign(begin, end);
  IndexTasks();
}

void MarketSnapshot::SetWorkers(const Worker* begin, const Worker* end) {
  MAPS_CHECK(grid_ != nullptr) << "SetWorkers before ResetTasks";
  workers_.assign(begin, end);
  IndexWorkers();
}

void MarketSnapshot::IndexTasks() {
  const int g = grid_->num_cells();
  tasks_by_grid_.resize(g);
  dist_prefix_by_grid_.resize(g);
  total_dist_by_grid_.assign(g, 0.0);
  for (int c = 0; c < g; ++c) tasks_by_grid_[c].clear();
  for (int i = 0; i < static_cast<int>(tasks_.size()); ++i) {
    const Task& t = tasks_[i];
    MAPS_DCHECK(t.grid >= 0 && t.grid < g);
    tasks_by_grid_[t.grid].push_back(i);
  }
  // Sort each grid's distances descending in scratch, then keep only the
  // prefix sums (the maximizer reads top-n sums, never single distances).
  for (int c = 0; c < g; ++c) {
    sort_scratch_.clear();
    for (int i : tasks_by_grid_[c]) {
      sort_scratch_.push_back(tasks_[i].distance);
    }
    std::sort(sort_scratch_.begin(), sort_scratch_.end(),
              std::greater<double>());
    auto& prefix = dist_prefix_by_grid_[c];
    prefix.resize(sort_scratch_.size() + 1);
    prefix[0] = 0.0;
    for (size_t k = 0; k < sort_scratch_.size(); ++k) {
      prefix[k + 1] = prefix[k] + sort_scratch_[k];
    }
    // Same summation order as the prefix, so top-n/total ratios computed
    // from the two can never exceed 1 by a rounding ulp.
    total_dist_by_grid_[c] = prefix.back();
  }
}

void MarketSnapshot::IndexWorkers() {
  const int g = grid_->num_cells();
  workers_by_grid_.resize(g);
  for (int c = 0; c < g; ++c) workers_by_grid_[c].clear();
  for (int i = 0; i < static_cast<int>(workers_.size()); ++i) {
    const Worker& w = workers_[i];
    MAPS_DCHECK(w.grid >= 0 && w.grid < g);
    workers_by_grid_[w.grid].push_back(i);
  }
}

const std::vector<double>& MarketSnapshot::DistancePrefixSumsInGrid(
    GridId g) const {
  MAPS_DCHECK(g >= 0 && g < num_grids());
  return dist_prefix_by_grid_[g];
}

const std::vector<int>& MarketSnapshot::TasksInGrid(GridId g) const {
  MAPS_DCHECK(g >= 0 && g < num_grids());
  return tasks_by_grid_[g];
}

const std::vector<int>& MarketSnapshot::WorkersInGrid(GridId g) const {
  MAPS_DCHECK(g >= 0 && g < num_grids());
  return workers_by_grid_[g];
}

double MarketSnapshot::TotalDistanceInGrid(GridId g) const {
  MAPS_DCHECK(g >= 0 && g < num_grids());
  return total_dist_by_grid_[g];
}

size_t MarketSnapshot::FootprintBytes() const {
  size_t bytes = tasks_.capacity() * sizeof(Task) +
                 workers_.capacity() * sizeof(Worker) +
                 total_dist_by_grid_.capacity() * sizeof(double) +
                 sort_scratch_.capacity() * sizeof(double) +
                 tasks_by_grid_.capacity() * sizeof(std::vector<int>) +
                 workers_by_grid_.capacity() * sizeof(std::vector<int>) +
                 dist_prefix_by_grid_.capacity() * sizeof(std::vector<double>);
  for (const auto& v : tasks_by_grid_) bytes += v.capacity() * sizeof(int);
  for (const auto& v : workers_by_grid_) bytes += v.capacity() * sizeof(int);
  for (const auto& v : dist_prefix_by_grid_) {
    bytes += v.capacity() * sizeof(double);
  }
  return bytes;
}

}  // namespace maps
