// Minimal --key=value command-line parsing for the CLI tools. No external
// dependencies; unknown flags are an error so typos fail loudly.

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/result.h"

namespace maps {

/// \brief Parsed command line: positional arguments plus --key=value flags
/// (`--flag` alone stores "true").
class FlagSet {
 public:
  /// Parses argv; returns an error for malformed tokens.
  static Result<FlagSet> Parse(int argc, const char* const* argv);

  const std::vector<std::string>& positional() const { return positional_; }

  bool Has(const std::string& key) const { return flags_.count(key) > 0; }

  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  /// Keys that were provided but never read — surfaced so a CLI can reject
  /// unknown flags after it finished querying.
  std::set<std::string> UnreadKeys() const;

  /// InvalidArgument naming every provided-but-never-read flag ("unknown
  /// flag(s): --foo --bar"), OK when none remain. Every CLI calls this
  /// after its last Get*() so misspelled flags fail loudly instead of
  /// silently falling back to defaults.
  Status RejectUnread() const;

 private:
  std::map<std::string, std::string> flags_;
  mutable std::set<std::string> read_;
  std::vector<std::string> positional_;
};

}  // namespace maps
