// Status: lightweight error propagation in the style of Arrow/RocksDB.
//
// Library code returns Status (or Result<T>, see result.h) instead of
// throwing. Constructing an error Status captures a code and a message;
// OK statuses are free of allocation.

#pragma once

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace maps {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kNotImplemented = 7,
};

/// \brief Returns a human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: OK, or an error code plus message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(msg)});
    }
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    std::string out = StatusCodeToString(code());
    out += ": ";
    out += message();
    return out;
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  // shared_ptr keeps Status cheap to copy; errors are rare and cold.
  std::shared_ptr<const State> state_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

inline const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
  }
  return "Unknown";
}

}  // namespace maps

/// Propagates a non-OK Status to the caller.
#define MAPS_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::maps::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (false)
