#include "util/fault_injector.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "obs/trace.h"
#include "rng/counter_rng.h"
#include "util/logging.h"

namespace maps {

namespace {

/// Purpose-keyed stream id for one fault site: a splitmix-style mix of
/// (kind, a, b) so distinct sites draw from independent CounterRng streams
/// of the plan seed (DESIGN.md §9).
uint64_t SiteStream(FaultRule::Kind kind, int32_t a, int32_t b) {
  uint64_t h = 0x66616c7401ULL;  // "falt" + domain tag
  h = (h ^ static_cast<uint64_t>(static_cast<int>(kind) + 1)) *
      0x9E3779B97F4A7C15ULL;
  h = (h ^ static_cast<uint64_t>(static_cast<uint32_t>(a + 1))) *
      0xBF58476D1CE4E5B9ULL;
  h = (h ^ static_cast<uint64_t>(static_cast<uint32_t>(b + 1))) *
      0x94D049BB133111EBULL;
  return h;
}

/// Draw index 0 of the site's stream mapped to [0, 1) — the site's one
/// probabilistic decision, identical no matter when or how often asked.
double SiteUniform(uint64_t seed, FaultRule::Kind kind, int32_t a, int32_t b) {
  CounterRng rng(seed, SiteStream(kind, a, b));
  return static_cast<double>(rng.NextUint64() >> 11) * 0x1.0p-53;
}

const char* const kKindNames[FaultRule::kNumKinds] = {
    "close_fail", "close_stall", "ckpt_io", "ckpt_torn", "read_err"};

bool ParseKind(const std::string& word, FaultRule::Kind* out) {
  for (int k = 0; k < FaultRule::kNumKinds; ++k) {
    if (word == kKindNames[k]) {
      *out = static_cast<FaultRule::Kind>(k);
      return true;
    }
  }
  return false;
}

Status ClauseError(const std::string& clause, const std::string& what) {
  return Status::InvalidArgument("fault plan clause '" + clause + "': " +
                                 what);
}

/// Full-string non-negative integer parse.
bool ParseI32(const std::string& s, int32_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno == ERANGE || v < 0 ||
      v > INT32_MAX) {
    return false;
  }
  *out = static_cast<int32_t>(v);
  return true;
}

}  // namespace

const char* FaultKindName(FaultRule::Kind kind) {
  return kKindNames[static_cast<int>(kind)];
}

Status ValidateFaultPlan(const FaultPlan& plan) {
  for (size_t i = 0; i < plan.rules.size(); ++i) {
    const FaultRule& rule = plan.rules[i];
    const std::string where =
        "fault rule " + std::to_string(i) + " (" + FaultKindName(rule.kind) +
        ")";
    if (static_cast<int>(rule.kind) < 0 ||
        static_cast<int>(rule.kind) >= FaultRule::kNumKinds) {
      return Status::InvalidArgument(where + " has an unknown kind");
    }
    if (rule.site_a < -1 || rule.site_b < -1) {
      return Status::InvalidArgument(
          where + " has a site coordinate below -1 (-1 means any)");
    }
    if (!(rule.probability >= 0.0 && rule.probability <= 1.0)) {
      return Status::InvalidArgument(
          where + " probability " + std::to_string(rule.probability) +
          " outside [0, 1]");
    }
    if (rule.max_fires != -1 && rule.max_fires < 1) {
      return Status::InvalidArgument(
          where + " max_fires " + std::to_string(rule.max_fires) +
          " (use -1 for unlimited, otherwise >= 1)");
    }
  }
  return Status::OK();
}

Result<FaultPlan> ParseFaultPlan(const std::string& text) {
  FaultPlan plan;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t sep = text.find(';', pos);
    if (sep == std::string::npos) sep = text.size();
    std::string clause = text.substr(pos, sep - pos);
    pos = sep + 1;
    // Trim surrounding whitespace; empty clauses (trailing ';') are fine.
    size_t b = 0, e = clause.size();
    while (b < e && std::isspace(static_cast<unsigned char>(clause[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(clause[e - 1])))
      --e;
    clause = clause.substr(b, e - b);
    if (clause.empty()) {
      if (pos > text.size()) break;
      continue;
    }

    if (clause.rfind("seed=", 0) == 0) {
      const std::string value = clause.substr(5);
      if (value.empty()) return ClauseError(clause, "empty seed");
      errno = 0;
      char* end = nullptr;
      const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
      if (end != value.c_str() + value.size() || errno == ERANGE) {
        return ClauseError(clause, "seed is not a uint64");
      }
      plan.seed = static_cast<uint64_t>(v);
      continue;
    }

    FaultRule rule;
    size_t i = 0;
    while (i < clause.size() && clause[i] != '@' && clause[i] != '~' &&
           clause[i] != 'x') {
      ++i;
    }
    if (!ParseKind(clause.substr(0, i), &rule.kind)) {
      return ClauseError(clause,
                         "unknown fault kind '" + clause.substr(0, i) +
                             "' (close_fail|close_stall|ckpt_io|ckpt_torn|"
                             "read_err)");
    }
    if (i < clause.size() && clause[i] == '@') {
      ++i;
      bool any_coord = false;
      while (i < clause.size() && (clause[i] == 'r' || clause[i] == 'p')) {
        const char which = clause[i++];
        const size_t start = i;
        while (i < clause.size() &&
               std::isdigit(static_cast<unsigned char>(clause[i]))) {
          ++i;
        }
        int32_t value;
        if (!ParseI32(clause.substr(start, i - start), &value)) {
          return ClauseError(clause, std::string("selector '") + which +
                                         "' needs a non-negative integer");
        }
        (which == 'r' ? rule.site_a : rule.site_b) = value;
        any_coord = true;
      }
      if (!any_coord) {
        return ClauseError(clause, "'@' needs at least one of rN / pN");
      }
    }
    if (i < clause.size() && clause[i] == '~') {
      ++i;
      const size_t start = i;
      while (i < clause.size() && clause[i] != 'x') ++i;
      const std::string value = clause.substr(start, i - start);
      char* end = nullptr;
      rule.probability = std::strtod(value.c_str(), &end);
      if (value.empty() || end != value.c_str() + value.size()) {
        return ClauseError(clause, "'~' needs a probability");
      }
    }
    if (i < clause.size() && clause[i] == 'x') {
      ++i;
      int32_t value;
      if (!ParseI32(clause.substr(i), &value) || value < 1) {
        return ClauseError(clause, "'x' needs a positive fire budget");
      }
      rule.max_fires = value;
      i = clause.size();
    }
    if (i != clause.size()) {
      return ClauseError(clause, "trailing characters '" + clause.substr(i) +
                                     "'");
    }
    plan.rules.push_back(rule);
  }
  MAPS_RETURN_NOT_OK(ValidateFaultPlan(plan));
  return plan;
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

Status FaultInjector::Arm(const FaultPlan& plan) {
  MAPS_RETURN_NOT_OK(ValidateFaultPlan(plan));
  plan_ = plan;
  rule_fires_.assign(plan_.rules.size(), 0);
  for (int64_t& f : kind_fires_) f = 0;
  next_write_site_ = 0;
  armed_ = true;
  return Status::OK();
}

void FaultInjector::Disarm() {
  armed_ = false;
  plan_ = FaultPlan();
  rule_fires_.clear();
  for (int64_t& f : kind_fires_) f = 0;
  next_write_site_ = 0;
}

bool FaultInjector::ShouldFire(FaultRule::Kind kind, int32_t site_a,
                               int32_t site_b) {
  if (!armed_) return false;
  for (size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& rule = plan_.rules[i];
    if (rule.kind != kind) continue;
    if (rule.site_a != -1 && rule.site_a != site_a) continue;
    if (rule.site_b != -1 && rule.site_b != site_b) continue;
    if (rule.max_fires != -1 && rule_fires_[i] >= rule.max_fires) continue;
    if (rule.probability < 1.0 &&
        SiteUniform(plan_.seed, kind, site_a, site_b) >= rule.probability) {
      continue;
    }
    ++rule_fires_[i];
    ++kind_fires_[static_cast<int>(kind)];
    if (trace_ != nullptr) {
      // Site coordinates map onto the event fields as documented in the
      // header: b is a period (close kinds) or call index, a is a region
      // (close kinds) or write attempt.
      trace_->Emit(obs::TraceEvent::Kind::kFaultFired, site_b, site_a,
                   static_cast<int64_t>(i), FaultKindName(kind));
    }
    return true;
  }
  return false;
}

int64_t FaultInjector::fires(FaultRule::Kind kind) const {
  return kind_fires_[static_cast<int>(kind)];
}

int32_t FaultInjector::NextWriteSite() {
  if (!armed_) return 0;
  return next_write_site_++;
}

ScopedFaultPlan::ScopedFaultPlan(const FaultPlan& plan) {
  MAPS_CHECK(FaultInjector::Global().Arm(plan).ok());
}

ScopedFaultPlan::ScopedFaultPlan(const std::string& text) {
  auto plan_or = ParseFaultPlan(text);
  MAPS_CHECK(plan_or.ok());
  MAPS_CHECK(FaultInjector::Global().Arm(plan_or.ValueOrDie()).ok());
}

ScopedFaultPlan::~ScopedFaultPlan() { FaultInjector::Global().Disarm(); }

}  // namespace maps
