#include "util/memory_model.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace maps {

void MemoryModel::Set(const std::string& component, size_t bytes) {
  auto it = components_.find(component);
  size_t old = (it == components_.end()) ? 0 : it->second;
  components_[component] = bytes;
  current_ += bytes;
  current_ -= old;
  UpdatePeak();
}

void MemoryModel::Add(const std::string& component, size_t bytes) {
  components_[component] += bytes;
  current_ += bytes;
  UpdatePeak();
}

void MemoryModel::Release(const std::string& component, size_t bytes) {
  auto it = components_.find(component);
  if (it == components_.end()) return;
  size_t dec = bytes < it->second ? bytes : it->second;
  it->second -= dec;
  current_ -= dec;
}

size_t MemoryModel::CurrentBytes() const { return current_; }

void MemoryModel::Reset() {
  components_.clear();
  current_ = 0;
  peak_ = 0;
}

void MemoryModel::UpdatePeak() {
  if (current_ > peak_) peak_ = current_;
}

size_t ProcessRssBytes() {
  std::ifstream statm("/proc/self/statm");
  if (!statm) return 0;
  size_t total = 0, resident = 0;
  statm >> total >> resident;
  return resident * static_cast<size_t>(sysconf(_SC_PAGESIZE));
}

size_t ProcessPeakRssBytes() {
  std::ifstream status("/proc/self/status");
  if (!status) return 0;
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      size_t kb = 0;
      std::sscanf(line.c_str(), "VmHWM: %zu kB", &kb);
      return kb * 1024;
    }
  }
  return 0;
}

}  // namespace maps
