// Analytic per-strategy memory accounting, plus process RSS helpers.
//
// The paper reports per-strategy memory (Figs. 6-8, third rows). Comparing
// strategies via process RSS inside one binary is meaningless (the allocator
// never returns pages), so the library models the live footprint of each
// strategy's data structures: components register their byte counts with a
// MemoryModel and benches report the peak.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>

namespace maps {

/// \brief Tracks named byte counts and the overall peak.
class MemoryModel {
 public:
  /// Sets the current footprint of `component` to `bytes`.
  void Set(const std::string& component, size_t bytes);

  /// Adds `bytes` to `component` (may be negative via Release()).
  void Add(const std::string& component, size_t bytes);
  void Release(const std::string& component, size_t bytes);

  /// Sum of all components right now.
  size_t CurrentBytes() const;

  /// Largest value CurrentBytes() has reached.
  size_t PeakBytes() const { return peak_; }

  double PeakMiB() const {
    return static_cast<double>(peak_) / (1024.0 * 1024.0);
  }

  void Reset();

 private:
  void UpdatePeak();

  std::unordered_map<std::string, size_t> components_;
  size_t current_ = 0;
  size_t peak_ = 0;
};

/// \brief Reads the process's current resident set size in bytes
/// (Linux /proc/self/statm); returns 0 when unavailable.
size_t ProcessRssBytes();

/// \brief Reads the process's peak RSS (VmHWM) in bytes; 0 when unavailable.
size_t ProcessPeakRssBytes();

}  // namespace maps
