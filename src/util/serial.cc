#include "util/serial.h"

#include <cstring>

namespace maps {

namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      entries[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  static const Crc32Table table;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = table.entries[(c ^ p[i]) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void StateWriter::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void StateWriter::PutString(const std::string& s) {
  PutU64(s.size());
  buf_.append(s);
}

void StateWriter::PutBytes(const void* data, size_t len) {
  buf_.append(static_cast<const char*>(data), len);
}

Status StateReader::Need(size_t n, const char* what) {
  if (size_ - off_ < n) {
    return Status::InvalidArgument(
        "truncated payload: need " + std::to_string(n) + " byte(s) for " +
        what + " at offset " + std::to_string(off_) + ", have " +
        std::to_string(size_ - off_));
  }
  return Status::OK();
}

uint64_t StateReader::TakeLittleEndian(int bytes) {
  uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<uint64_t>(data_[off_ + i]) << (8 * i);
  }
  off_ += bytes;
  return v;
}

Status StateReader::GetU8(uint8_t* out, const char* what) {
  MAPS_RETURN_NOT_OK(Need(1, what));
  *out = data_[off_++];
  return Status::OK();
}

Status StateReader::GetU32(uint32_t* out, const char* what) {
  MAPS_RETURN_NOT_OK(Need(4, what));
  *out = static_cast<uint32_t>(TakeLittleEndian(4));
  return Status::OK();
}

Status StateReader::GetU64(uint64_t* out, const char* what) {
  MAPS_RETURN_NOT_OK(Need(8, what));
  *out = TakeLittleEndian(8);
  return Status::OK();
}

Status StateReader::GetI32(int32_t* out, const char* what) {
  uint32_t v;
  MAPS_RETURN_NOT_OK(GetU32(&v, what));
  *out = static_cast<int32_t>(v);
  return Status::OK();
}

Status StateReader::GetI64(int64_t* out, const char* what) {
  uint64_t v;
  MAPS_RETURN_NOT_OK(GetU64(&v, what));
  *out = static_cast<int64_t>(v);
  return Status::OK();
}

Status StateReader::GetDouble(double* out, const char* what) {
  uint64_t bits;
  MAPS_RETURN_NOT_OK(GetU64(&bits, what));
  std::memcpy(out, &bits, sizeof(*out));
  return Status::OK();
}

Status StateReader::GetBool(bool* out, const char* what) {
  const size_t at = off_;
  uint8_t v;
  MAPS_RETURN_NOT_OK(GetU8(&v, what));
  if (v > 1) {
    off_ = at;
    return Status::InvalidArgument(
        "invalid bool value " + std::to_string(v) + " for " + what +
        " at offset " + std::to_string(at));
  }
  *out = v != 0;
  return Status::OK();
}

Status StateReader::GetString(std::string* out, const char* what) {
  const size_t at = off_;
  uint64_t len;
  MAPS_RETURN_NOT_OK(GetU64(&len, what));
  if (len > size_ - off_) {
    off_ = at;
    return Status::InvalidArgument(
        "truncated payload: string " + std::string(what) + " at offset " +
        std::to_string(at) + " claims " + std::to_string(len) +
        " byte(s), have " + std::to_string(size_ - at - 8));
  }
  out->assign(reinterpret_cast<const char*>(data_ + off_),
              static_cast<size_t>(len));
  off_ += static_cast<size_t>(len);
  return Status::OK();
}

Status StateReader::GetBytes(void* out, size_t n, const char* what) {
  MAPS_RETURN_NOT_OK(Need(n, what));
  std::memcpy(out, data_ + off_, n);
  off_ += n;
  return Status::OK();
}

Status StateReader::ExpectEnd(const char* what) {
  if (off_ != size_) {
    return Status::InvalidArgument(
        std::string(what) + " has " + std::to_string(size_ - off_) +
        " trailing byte(s) at offset " + std::to_string(off_));
  }
  return Status::OK();
}

Status CheckDecodedCount(const StateReader& r, uint64_t n, size_t elem_bytes,
                         const char* what) {
  if (elem_bytes > 0 && n > r.remaining() / elem_bytes) {
    return Status::InvalidArgument(
        std::string(what) + " count " + std::to_string(n) +
        " exceeds remaining payload at offset " + std::to_string(r.offset()));
  }
  return Status::OK();
}

}  // namespace maps
