#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "obs/metrics.h"
#include "util/logging.h"

namespace maps {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::AttachMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  const auto wall = obs::Determinism::kWallClock;
  m_queue_depth_ = registry->GetGauge("pool.queue_depth", wall);
  m_tasks_ = registry->GetCounter("pool.tasks_submitted", wall);
  m_task_run_ns_ = registry->GetHistogram("pool.task_run_ns", wall);
}

void ThreadPool::Submit(std::function<void(int)> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    MAPS_CHECK(!stop_) << "Submit on a stopped ThreadPool";
    queue_.push(std::move(fn));
    if (m_queue_depth_ != nullptr) {
      m_queue_depth_->Set(static_cast<int64_t>(queue_.size()));
    }
  }
  if (m_tasks_ != nullptr) m_tasks_->Increment();
  cv_.notify_one();
}

void ThreadPool::WorkerLoop(int worker) {
  while (true) {
    std::function<void(int)> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop();
      if (m_queue_depth_ != nullptr) {
        m_queue_depth_->Set(static_cast<int64_t>(queue_.size()));
      }
    }
    if (m_task_run_ns_ != nullptr) {
      const auto start = std::chrono::steady_clock::now();
      task(worker);
      m_task_run_ns_->Record(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
    } else {
      task(worker);
    }
  }
}

int ThreadPool::DefaultThreadCount() {
  if (const char* env = std::getenv("MAPS_THREADS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::vector<IndexRange> SplitRange(int64_t n, int64_t max_shards) {
  std::vector<IndexRange> shards;
  if (n <= 0) return shards;
  const int64_t count = std::max<int64_t>(1, std::min(n, max_shards));
  shards.reserve(count);
  // Near-equal contiguous ranges; the first (n % count) shards take one
  // extra element so sizes differ by at most 1.
  const int64_t base = n / count;
  const int64_t extra = n % count;
  int64_t begin = 0;
  for (int64_t s = 0; s < count; ++s) {
    const int64_t size = base + (s < extra ? 1 : 0);
    shards.push_back(IndexRange{begin, begin + size});
    begin += size;
  }
  return shards;
}

void ParallelFor(ThreadPool* pool, const std::vector<IndexRange>& shards,
                 const std::function<void(int shard, const IndexRange& range,
                                          int worker)>& fn) {
  if (shards.empty()) return;
  if (pool == nullptr || pool->num_threads() == 1 || shards.size() == 1) {
    // Inline path: worker index 0, identical shard order. Keeping this path
    // byte-for-byte equivalent to the pooled one is what lets the serial
    // API be "parallel with one shard".
    for (size_t s = 0; s < shards.size(); ++s) {
      fn(static_cast<int>(s), shards[s], 0);
    }
    return;
  }
  internal::Latch latch(static_cast<int>(shards.size()));
  for (size_t s = 0; s < shards.size(); ++s) {
    pool->Submit([&, s](int worker) {
      fn(static_cast<int>(s), shards[s], worker);
      latch.Done();
    });
  }
  latch.Wait();
}

}  // namespace maps
