// Minimal leveled logging plus CHECK macros, Arrow/RocksDB style.
//
// MAPS_CHECK* abort on violation and are kept in release builds: invariant
// violations in a pricing engine must fail loudly, not corrupt revenue
// accounting. MAPS_DCHECK* compile out in NDEBUG builds.

#pragma once

#include <sstream>
#include <string>

namespace maps {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates a log line and emits it (or aborts for fatal) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool fatal_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace maps

#define MAPS_LOG(level)                                                  \
  ::maps::internal::LogMessage(::maps::LogLevel::k##level, __FILE__, \
                               __LINE__)

#define MAPS_CHECK(cond)                                                    \
  if (!(cond))                                                              \
  ::maps::internal::LogMessage(::maps::LogLevel::kError, __FILE__,          \
                               __LINE__, /*fatal=*/true)                    \
      << "Check failed: " #cond " "

#define MAPS_CHECK_OP(a, b, op) MAPS_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "
#define MAPS_CHECK_EQ(a, b) MAPS_CHECK_OP(a, b, ==)
#define MAPS_CHECK_NE(a, b) MAPS_CHECK_OP(a, b, !=)
#define MAPS_CHECK_LT(a, b) MAPS_CHECK_OP(a, b, <)
#define MAPS_CHECK_LE(a, b) MAPS_CHECK_OP(a, b, <=)
#define MAPS_CHECK_GT(a, b) MAPS_CHECK_OP(a, b, >)
#define MAPS_CHECK_GE(a, b) MAPS_CHECK_OP(a, b, >=)

#ifdef NDEBUG
#define MAPS_DCHECK(cond) \
  while (false) MAPS_CHECK(cond)
#else
#define MAPS_DCHECK(cond) MAPS_CHECK(cond)
#endif

#define MAPS_DCHECK_EQ(a, b) MAPS_DCHECK((a) == (b))
#define MAPS_DCHECK_NE(a, b) MAPS_DCHECK((a) != (b))
#define MAPS_DCHECK_LT(a, b) MAPS_DCHECK((a) < (b))
#define MAPS_DCHECK_LE(a, b) MAPS_DCHECK((a) <= (b))
#define MAPS_DCHECK_GT(a, b) MAPS_DCHECK((a) > (b))
#define MAPS_DCHECK_GE(a, b) MAPS_DCHECK((a) >= (b))
