#include "util/flags.h"

#include <cstdlib>

namespace maps {

Result<FlagSet> FlagSet::Parse(int argc, const char* const* argv) {
  FlagSet out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      out.positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    if (body.empty()) {
      return Status::InvalidArgument("bare '--' is not a flag");
    }
    const size_t eq = body.find('=');
    if (eq == std::string::npos) {
      out.flags_[body] = "true";
    } else if (eq == 0) {
      return Status::InvalidArgument("flag with empty name: " + arg);
    } else {
      out.flags_[body.substr(0, eq)] = body.substr(eq + 1);
    }
  }
  return out;
}

std::string FlagSet::GetString(const std::string& key,
                               const std::string& fallback) const {
  read_.insert(key);
  auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

int64_t FlagSet::GetInt(const std::string& key, int64_t fallback) const {
  read_.insert(key);
  auto it = flags_.find(key);
  return it == flags_.end() ? fallback : std::atoll(it->second.c_str());
}

double FlagSet::GetDouble(const std::string& key, double fallback) const {
  read_.insert(key);
  auto it = flags_.find(key);
  return it == flags_.end() ? fallback : std::atof(it->second.c_str());
}

bool FlagSet::GetBool(const std::string& key, bool fallback) const {
  read_.insert(key);
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::set<std::string> FlagSet::UnreadKeys() const {
  std::set<std::string> out;
  for (const auto& [k, v] : flags_) {
    if (read_.count(k) == 0) out.insert(k);
  }
  return out;
}

Status FlagSet::RejectUnread() const {
  const std::set<std::string> unread = UnreadKeys();
  if (unread.empty()) return Status::OK();
  std::string joined;
  for (const auto& k : unread) joined += " --" + k;
  return Status::InvalidArgument("unknown flag(s):" + joined);
}

}  // namespace maps
