// Byte-level serialization primitives for checkpoint payloads.
//
// StateWriter appends fixed-width little-endian fields to a growable
// buffer; StateReader walks the same encoding with bounds checks and
// returns an offset-bearing Status instead of reading out of range.
// Doubles round-trip by bit pattern (NaN payloads included), so decoded
// state is bit-identical to what was saved — the property the
// checkpoint/restore determinism contract rests on (DESIGN.md §12).

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace maps {

/// \brief CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `len`
/// bytes. Pass a previous result as `seed` to checksum incrementally.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

/// \brief Appends little-endian fields to an in-memory buffer. Writing is
/// infallible; the buffer grows as needed.
class StateWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutLittleEndian(v, 4); }
  void PutU64(uint64_t v) { PutLittleEndian(v, 8); }
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  /// Bit-pattern encoding: every double (NaN payloads included) survives a
  /// round trip exactly.
  void PutDouble(double v);
  /// u64 byte length followed by the raw bytes.
  void PutString(const std::string& s);
  void PutBytes(const void* data, size_t len);

  const std::string& data() const { return buf_; }
  size_t size() const { return buf_.size(); }

 private:
  void PutLittleEndian(uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  std::string buf_;
};

/// \brief Bounds-checked reader over a StateWriter encoding.
///
/// Every getter fails with an InvalidArgument Status naming the byte
/// offset and the field being decoded; the cursor does not advance on
/// failure. The referenced buffer must outlive the reader.
class StateReader {
 public:
  StateReader(const void* data, size_t size)
      : data_(static_cast<const uint8_t*>(data)), size_(size) {}
  explicit StateReader(const std::string& buf)
      : StateReader(buf.data(), buf.size()) {}

  Status GetU8(uint8_t* out, const char* what = "u8");
  Status GetU32(uint32_t* out, const char* what = "u32");
  Status GetU64(uint64_t* out, const char* what = "u64");
  Status GetI32(int32_t* out, const char* what = "i32");
  Status GetI64(int64_t* out, const char* what = "i64");
  Status GetDouble(double* out, const char* what = "double");
  /// Requires the encoded byte to be exactly 0 or 1.
  Status GetBool(bool* out, const char* what = "bool");
  Status GetString(std::string* out, const char* what = "string");
  /// Copies `n` raw bytes (no length prefix) into `out`.
  Status GetBytes(void* out, size_t n, const char* what = "bytes");

  /// Bytes consumed so far.
  size_t offset() const { return off_; }
  /// Bytes left to consume.
  size_t remaining() const { return size_ - off_; }

  /// Fails unless the payload was consumed exactly — trailing bytes mean
  /// a corrupt or mismatched encoding.
  Status ExpectEnd(const char* what = "payload");

 private:
  Status Need(size_t n, const char* what);
  uint64_t TakeLittleEndian(int bytes);

  const uint8_t* data_;
  size_t size_;
  size_t off_ = 0;
};

/// \brief Guards a u64 element count decoded from untrusted bytes before
/// any container resize: a count that cannot possibly fit in the reader's
/// remaining payload is corruption, and resizing to it first would
/// allocate gigabytes.
Status CheckDecodedCount(const StateReader& r, uint64_t n, size_t elem_bytes,
                         const char* what);

}  // namespace maps
