// Result<T>: value-or-Status, in the style of arrow::Result.

#pragma once

#include <cstdlib>
#include <iostream>
#include <utility>
#include <variant>

#include "util/status.h"

namespace maps {

/// \brief Holds either a value of type T or an error Status.
///
/// Accessing the value of an errored Result aborts; callers must check
/// ok() first or use ValueOrDie() only when the invariant is guaranteed.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success path).
  Result(T value) : state_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status.
  Result(Status status) : state_(std::move(status)) {  // NOLINT
    if (std::get<Status>(state_).ok()) {
      std::cerr << "Result constructed from OK status\n";
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(state_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(state_);
  }

  const T& ValueOrDie() const& {
    DieIfError();
    return std::get<T>(state_);
  }
  T& ValueOrDie() & {
    DieIfError();
    return std::get<T>(state_);
  }
  T&& ValueOrDie() && {
    DieIfError();
    return std::move(std::get<T>(state_));
  }

  /// Returns the value, or `fallback` when errored.
  T ValueOr(T fallback) const {
    if (ok()) return std::get<T>(state_);
    return fallback;
  }

 private:
  void DieIfError() const {
    if (!ok()) {
      std::cerr << "Result::ValueOrDie on error: " << status().ToString()
                << "\n";
      std::abort();
    }
  }

  std::variant<T, Status> state_;
};

}  // namespace maps

/// Assigns the value of a Result expression to `lhs`, propagating errors.
#define MAPS_ASSIGN_OR_RETURN(lhs, rexpr)          \
  auto MAPS_CONCAT_(result_, __LINE__) = (rexpr);  \
  if (!MAPS_CONCAT_(result_, __LINE__).ok())       \
    return MAPS_CONCAT_(result_, __LINE__).status(); \
  lhs = std::move(MAPS_CONCAT_(result_, __LINE__)).ValueOrDie()

#define MAPS_CONCAT_INNER_(a, b) a##b
#define MAPS_CONCAT_(a, b) MAPS_CONCAT_INNER_(a, b)
