// Deterministic fault injection for robustness testing (DESIGN.md §15).
//
// A FaultPlan is a declarative list of armed fault sites — "fail region 1's
// close at period 3", "error the 2nd checkpoint write", "tear the replay
// stream at line 40" — parsed from a compact flag string and validated like
// a ScenarioSpec. Instrumented production code asks the process-wide
// FaultInjector whether a named site fires; the injector is DISARMED by
// default, so the production path pays one branch on a bool and nothing
// else.
//
// Firing is deterministic per the §9 contract: a probabilistic rule draws
// its decision from CounterRng(plan.seed, stream = hash(kind, site)), draw
// index 0 — a pure function of (plan, seed, site). Two runs with the same
// plan over the same event stream inject the same faults at the same
// sites, which is what lets the chaos harness diff a faulted run against
// expectations bit for bit. (A rule's optional fire budget `max_fires` is
// consumed in site-query order; the query order of a deterministic engine
// is itself deterministic, so budgeted rules reproduce too.)
//
// Site coordinates per kind (a, b below; -1 in a rule means "any"):
//   kRegionCloseFail   a = region, b = period   (sharded close dispatch)
//   kRegionCloseStall  a = region, b = period   (close runs, result dropped)
//   kCheckpointWriteError  a = write attempt, b = write call index
//   kCheckpointTornWrite   a = write attempt, b = write call index
//   kReplayReadError   a = -1,     b = 1-based line number
//
// The injector is NOT thread-safe; every instrumented call site queries it
// from the serial driver thread (the sharded engine decides region faults
// before dispatching the concurrent closes).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace maps {

namespace obs {
class TraceLog;
}  // namespace obs

/// \brief One armed fault: a kind, an optional site filter, an optional
/// firing probability, and an optional total-fire budget.
struct FaultRule {
  enum class Kind {
    kRegionCloseFail = 0,   ///< region close fails before it runs
    kRegionCloseStall,      ///< region close runs but misses its deadline
    kCheckpointWriteError,  ///< checkpoint write attempt returns an I/O error
    kCheckpointTornWrite,   ///< checkpoint write attempt tears mid-payload
    kReplayReadError,       ///< replay stream read fails structurally
  };
  static constexpr int kNumKinds = 5;

  Kind kind = Kind::kRegionCloseFail;
  /// First site coordinate (region / write attempt); -1 matches any.
  int32_t site_a = -1;
  /// Second site coordinate (period / write index / line); -1 matches any.
  int32_t site_b = -1;
  /// Chance the rule fires at a matching site, drawn positionally from the
  /// site's own CounterRng stream. 1.0 always fires.
  double probability = 1.0;
  /// Total fires this rule may produce; -1 is unlimited.
  int32_t max_fires = -1;
};

/// \brief A full injection plan: the seed for probabilistic decisions plus
/// the armed rules. Default-constructed (no rules) is a valid no-op plan.
struct FaultPlan {
  uint64_t seed = 0;
  std::vector<FaultRule> rules;
  bool empty() const { return rules.empty(); }
};

/// Short stable name for a kind ("close_fail", "ckpt_io", ...); also the
/// grammar keyword ParseFaultPlan accepts.
const char* FaultKindName(FaultRule::Kind kind);

/// \brief Rejects plans the injector cannot honor: probability outside
/// [0, 1], max_fires < 1 (other than the -1 sentinel), site coordinates
/// below -1.
Status ValidateFaultPlan(const FaultPlan& plan);

/// \brief Parses the compact plan grammar:
///
///   plan   := clause (';' clause)*            (empty string = no-op plan)
///   clause := 'seed=' uint64
///           | kind site? prob? budget?
///   kind   := close_fail | close_stall | ckpt_io | ckpt_torn | read_err
///   site   := '@' ('r' int)? ('p' int)?       ('r1p3', 'r1', 'p3')
///   prob   := '~' double                      (firing probability)
///   budget := 'x' int                         (max total fires)
///
/// Example: "seed=7;close_fail@r1p3;ckpt_io@p2~0.5x1". The result is
/// validated before it is returned.
Result<FaultPlan> ParseFaultPlan(const std::string& text);

/// \brief The process-wide injector instrumented code queries. Disarmed by
/// default: armed() is false and every ShouldFire returns false without
/// touching the plan.
class FaultInjector {
 public:
  /// The singleton every instrumented site consults.
  static FaultInjector& Global();

  /// Arms `plan` (validated first), resetting all fire counters and the
  /// write-site counter. Arming an empty plan is allowed and fires nothing.
  Status Arm(const FaultPlan& plan);

  /// Returns to the no-op state.
  void Disarm();

  bool armed() const { return armed_; }

  /// True when an armed rule of `kind` covers site (a, b) and its
  /// probability draw (a pure function of plan.seed, kind, a, b) passes,
  /// and its fire budget is not exhausted. Counts the fire.
  bool ShouldFire(FaultRule::Kind kind, int32_t site_a, int32_t site_b);

  /// Total fires of `kind` since the last Arm.
  int64_t fires(FaultRule::Kind kind) const;

  /// Monotone index of checkpoint-write calls since the last Arm — the
  /// site_b coordinate WriteCheckpointFile passes for its faults. Always 0
  /// while disarmed so the production path stays stateless.
  int32_t NextWriteSite();

  /// Attaches a trace sink (non-owning; null detaches): every fire appends
  /// one kFaultFired event with the kind name as detail. Because the
  /// injector is only ever queried from the serial driver thread (see the
  /// header comment), the appends interleave deterministically with the
  /// engine's own trace events. Survives Arm/Disarm.
  void AttachTrace(obs::TraceLog* trace) { trace_ = trace; }

 private:
  FaultInjector() = default;

  bool armed_ = false;
  FaultPlan plan_;
  std::vector<int64_t> rule_fires_;
  int64_t kind_fires_[FaultRule::kNumKinds] = {};
  int32_t next_write_site_ = 0;
  obs::TraceLog* trace_ = nullptr;
};

/// \brief Arms the global injector for a scope (tests, CLI runs) and
/// disarms it on destruction. The plan must validate — construction aborts
/// on an invalid plan, which is what a test wants.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(const FaultPlan& plan);
  explicit ScopedFaultPlan(const std::string& text);
  ~ScopedFaultPlan();

  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace maps
