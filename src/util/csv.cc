#include "util/csv.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/logging.h"

namespace maps {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  MAPS_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::FormatDouble(double v) {
  char buf[64];
  if (std::abs(v) >= 1e6 || (v != 0.0 && std::abs(v) < 1e-3)) {
    std::snprintf(buf, sizeof(buf), "%.4g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4f", v);
  }
  return buf;
}

std::string Table::ToText() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(header_);
  size_t total = header_.size() > 0 ? 2 * (header_.size() - 1) : 0;
  for (size_t w : widths) total += w;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::ToCsv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

Status Table::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path);
  out << ToCsv();
  if (!out) return Status::Internal("write failed for " + path);
  return Status::OK();
}

}  // namespace maps
