// Fixed-size worker pool plus deterministic parallel-for / parallel-reduce.
//
// Determinism policy (see DESIGN.md, "Parallel determinism"): work is split
// into a FIXED number of contiguous shards derived from the problem size
// only — never from the thread count — each shard computes its partial
// result in serial order, and partials are folded in ascending shard index.
// Because shard boundaries and per-shard evaluation order are independent of
// how shards land on workers, every result is bit-identical for any pool
// size (including 1), and argmax-style reductions break ties by the lowest
// index. Threads only decide WHEN a shard runs, never WHAT it computes.
//
// Per-thread scratch: shard callbacks receive the executing worker's index
// in [0, num_threads()), so callers keep one pre-sized workspace per worker
// (the PR 1 workspace-pooling contract) and shards reuse them without
// locking. Scratch contents must not affect results — they are cleared by
// the consumer before use, exactly like PossibleWorldsWorkspace.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace maps {

namespace obs {
class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
}  // namespace obs

/// \brief Fixed pool of worker threads consuming a FIFO task queue.
///
/// The pool is reusable across invocations: ParallelFor/ParallelReduce leave
/// no residual state behind, so one pool can back many sweeps (the
/// experiment runner holds a single pool for its whole matrix).
class ThreadPool {
 public:
  /// \param num_threads worker count; clamped to >= 1. The pool may hold
  /// more threads than hardware cores (useful for determinism tests).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task; `fn` receives the executing worker's index.
  void Submit(std::function<void(int worker)> fn);

  /// Default worker count: MAPS_THREADS env var if set (> 0), otherwise
  /// std::thread::hardware_concurrency().
  static int DefaultThreadCount();

  /// Resolves "pool.*" telemetry from `registry` (no-op when null): a
  /// queue-depth gauge (current + high-water), a submitted-task counter,
  /// and a task execution-latency histogram — all wall-clock; scheduling
  /// is the one place the engine is deliberately non-deterministic. Call
  /// before the pool has work in flight.
  void AttachMetrics(obs::MetricsRegistry* registry);

 private:
  void WorkerLoop(int worker);

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void(int)>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
  obs::Gauge* m_queue_depth_ = nullptr;    // written under mu_
  obs::Counter* m_tasks_ = nullptr;        // wall-clock: depends on pooling
  obs::Histogram* m_task_run_ns_ = nullptr;
};

namespace internal {

/// Blocks until `Done` has been called `expected` times.
class Latch {
 public:
  explicit Latch(int expected) : remaining_(expected) {}

  void Done() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--remaining_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return remaining_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int remaining_;
};

}  // namespace internal

/// \brief Contiguous index shard [begin, end) of a larger range.
struct IndexRange {
  int64_t begin = 0;
  int64_t end = 0;
  int64_t size() const { return end - begin; }
};

/// \brief Splits [0, n) into at most `max_shards` near-equal contiguous
/// ranges. Pure function of (n, max_shards): callers MUST derive
/// `max_shards` from the problem, not from the thread count, or results
/// stop being thread-count-independent.
std::vector<IndexRange> SplitRange(int64_t n, int64_t max_shards);

/// \brief Runs `fn(shard_index, range, worker)` for every shard on the pool
/// (inline when `pool` is null or single-shard). Returns after all shards
/// completed. `fn` must not throw.
void ParallelFor(ThreadPool* pool, const std::vector<IndexRange>& shards,
                 const std::function<void(int shard, const IndexRange& range,
                                          int worker)>& fn);

/// \brief Deterministic map/reduce: `map(shard, range, worker)` produces one
/// partial per shard; partials are folded left-to-right in shard order with
/// `reduce(acc, partial)` starting from `init`. The reduction itself runs on
/// the calling thread, so it is sequential and ordered by construction.
template <typename T>
T ParallelReduce(ThreadPool* pool, const std::vector<IndexRange>& shards,
                 T init,
                 const std::function<T(int shard, const IndexRange& range,
                                       int worker)>& map,
                 const std::function<T(T acc, T partial)>& reduce) {
  std::vector<T> partials(shards.size(), init);
  ParallelFor(pool, shards,
              [&](int shard, const IndexRange& range, int worker) {
                partials[shard] = map(shard, range, worker);
              });
  T acc = init;
  for (size_t s = 0; s < partials.size(); ++s) {
    acc = reduce(std::move(acc), std::move(partials[s]));
  }
  return acc;
}

}  // namespace maps
