// CSV table writer used by the benchmark harnesses.
//
// Every bench binary prints the paper's series to stdout in an aligned table
// and optionally mirrors the rows to a CSV file for plotting.

#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace maps {

/// \brief Accumulates rows of string cells and renders them as CSV and as an
/// aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats each cell with operator<<.
  template <typename... Ts>
  void AddRow(const Ts&... cells) {
    std::vector<std::string> row;
    row.reserve(sizeof...(Ts));
    (row.push_back(FormatCell(cells)), ...);
    AddRow(std::move(row));
  }

  size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Renders an aligned, human-readable table.
  std::string ToText() const;

  /// Renders RFC-4180-ish CSV (no quoting needed for our numeric cells).
  std::string ToCsv() const;

  /// Writes the CSV rendering to `path`.
  Status WriteCsv(const std::string& path) const;

 private:
  template <typename T>
  static std::string FormatCell(const T& v) {
    if constexpr (std::is_same_v<T, std::string>) {
      return v;
    } else if constexpr (std::is_convertible_v<T, const char*>) {
      return std::string(v);
    } else if constexpr (std::is_floating_point_v<T>) {
      return FormatDouble(static_cast<double>(v));
    } else {
      return std::to_string(v);
    }
  }

  static std::string FormatDouble(double v);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace maps
