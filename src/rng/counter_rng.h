// CounterRng: a counter-based random engine (Philox 4x64-10 family).
//
// A counter-based RNG has NO sequential state shared between streams: the
// n-th output of stream (seed, stream) is a pure function
//     output[n] = cipher_{key = (seed, stream)}(block(n)),
// where `cipher` is a Philox-style block function (Salmon et al., "Parallel
// Random Numbers: As Easy as 1, 2, 3", SC'11). Consequences the rest of the
// repository builds on (DESIGN.md §9):
//
//  * Sharding is free. World i of a Monte-Carlo estimate draws from stream
//    (seed, i); whichever worker evaluates world i — and no matter how many
//    worlds ran before it — the draws are identical. The sequential Rng
//    cannot offer this: its n-th output depends on every prior draw.
//  * Streams are independent by cipher design. Distinct keys give unrelated
//    permutations of the counter space, so adjacent stream ids (0, 1, 2, …)
//    are as independent as random keys — no hash-the-seed heuristics.
//  * Reproducibility is positional. (seed, stream, draw index) names one
//    64-bit word, forever, on every platform; nothing about thread
//    scheduling, shard shape, or wall-clock time can reach the output.
//
// The block function is Philox 4x64-10: 10 rounds of two 64x64->128
// multiplies plus key injection, the recommended-strength member of the
// Philox 4x64 family (it passes BigCrush/PractRand; the statistical-quality
// tests in tests/rng/counter_rng_test.cc guard this implementation).

#pragma once

#include <array>
#include <cstdint>

#include "rng/random.h"

namespace maps {

/// \brief One Philox 4x64-10 block: encrypts `counter` under `key`,
/// producing 4 output words. Exposed for the known-answer tests.
std::array<uint64_t, 4> Philox4x64Block(const std::array<uint64_t, 2>& key,
                                        const std::array<uint64_t, 4>& counter);

/// \brief Counter-based engine: stream (seed, stream) yields an independent,
/// reproducible sequence. Cheap to construct (two words of key, no state
/// expansion), so per-world/per-task construction inside hot loops is fine.
///
/// Satisfies UniformRandomBitGenerator; `final` so calls through a concrete
/// CounterRng& devirtualize.
class CounterRng final : public RandomSource {
 public:
  using result_type = uint64_t;

  /// Stream `stream` of the family rooted at `seed`. The pair is the cipher
  /// key; distinct (seed, stream) pairs give independent sequences.
  explicit CounterRng(uint64_t seed, uint64_t stream = 0)
      : key_{seed, stream} {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return NextUint64(); }

  uint64_t NextUint64() override;

  /// Repositions the engine at draw index `n` of its stream (the n-th value
  /// NextUint64 would produce on a fresh engine). O(1) — this is what makes
  /// counter-based streams seekable.
  void Seek(uint64_t n);

  uint64_t seed() const { return key_[0]; }
  uint64_t stream() const { return key_[1]; }

 private:
  std::array<uint64_t, 2> key_;
  uint64_t block_ = 0;               // next block index to encrypt
  std::array<uint64_t, 4> buffer_{}; // decrypted words of block_ - 1
  int buffered_ = 0;                 // unread words left in buffer_
};

}  // namespace maps
