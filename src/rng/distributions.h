// Samplers and closed-form CDFs for the distributions the paper uses:
// normal (temporal/spatial/demand), truncated normal (valuations restricted
// to [1,5]), exponential (appendix D), and uniform.

#pragma once

#include <cmath>

#include "rng/random.h"

namespace maps {

/// \brief Standard normal CDF Phi(x).
double StdNormalCdf(double x);

/// \brief Standard normal density phi(x).
double StdNormalPdf(double x);

/// \brief Inverse standard normal CDF (Acklam's rational approximation,
/// |error| < 1.15e-9). Input must lie in (0, 1).
double StdNormalQuantile(double p);

/// \brief Draws one N(mean, stddev^2) sample (Box-Muller, deterministic).
double SampleNormal(RandomSource& rng, double mean, double stddev);

/// \brief Draws an Exp(rate) sample via inversion.
double SampleExponential(RandomSource& rng, double rate);

/// \brief Normal distribution truncated to [lo, hi], sampled by inversion so
/// a single uniform drives one sample (keeps streams aligned).
class TruncatedNormal {
 public:
  TruncatedNormal(double mean, double stddev, double lo, double hi);

  double Sample(RandomSource& rng) const;

  /// CDF of the truncated distribution at x.
  double Cdf(double x) const;

  /// Density of the truncated distribution at x.
  double Pdf(double x) const;

  double mean_parameter() const { return mean_; }
  double stddev_parameter() const { return stddev_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

 private:
  double mean_, stddev_, lo_, hi_;
  double alpha_, beta_;   // standardized bounds
  double z_;              // Phi(beta) - Phi(alpha)
  double cdf_alpha_;
};

}  // namespace maps
