// Deterministic random number engines.
//
// Every experiment in the repository is seeded; identical seeds must produce
// bit-identical runs across platforms, so we implement the engines ourselves
// instead of relying on (implementation-defined) std::normal_distribution.
//
// Two engine families share the RandomSource interface (DESIGN.md §9):
//  * Rng (xoshiro256**): a fast SEQUENTIAL stream — one state, one order of
//    consumption. Right for single-threaded replay (workload generation,
//    worker repositioning) where draw order is part of the contract.
//  * CounterRng (counter_rng.h, Philox-style): a COUNTER-BASED stream family
//    keyed by (seed, stream) with no sequential state, so stream i's output
//    never depends on how many draws stream j made. Right for sharded work
//    (Monte-Carlo worlds, warm-up probe tasks) that must stay bit-identical
//    for any thread count.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace maps {

/// \brief SplitMix64: used to expand a single 64-bit seed into engine state.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// \brief Engine-agnostic source of random 64-bit words.
///
/// Samplers (distributions.h, DemandModel::Sample) accept a RandomSource so
/// the same inversion code runs off a sequential Rng or a per-stream
/// CounterRng. The derived helpers consume exactly one NextUint64 per draw
/// wherever possible, keeping streams aligned across engines. NextBounded
/// is the one documented exception: its rejection loop re-draws with
/// probability (2^64 mod bound) / 2^64 — negligible for small bounds but
/// approaching 1/2 as bound nears 2^63 — so stream-aligned consumers must
/// not use it (the repo's samplers draw via NextDouble only).
class RandomSource {
 public:
  virtual ~RandomSource() = default;

  virtual uint64_t NextUint64() = 0;

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Bernoulli trial with success probability p.
  bool NextBernoulli(double p);
};

/// \brief xoshiro256**: fast, high-quality 64-bit PRNG (Blackman & Vigna).
///
/// Satisfies UniformRandomBitGenerator so it can also drive <random> adaptors
/// in tests. `final` so calls through a concrete Rng& devirtualize.
class Rng final : public RandomSource {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return NextUint64(); }

  uint64_t NextUint64() override;

  /// Derives an independent child generator; `stream` diversifies children
  /// created from the same parent state. The child seed combines a parent
  /// draw with a Weyl-spread stream id and is then expanded through
  /// SplitMix64 by the constructor, so adjacent streams land on unrelated
  /// xoshiro states (pinned by the stream-independence tests; prefer
  /// CounterRng when streams must be a pure function of an index).
  Rng Fork(uint64_t stream);

  /// Snapshots the raw xoshiro256** state for checkpointing; LoadState
  /// resumes the stream at exactly the saved position, so draws after a
  /// restore are bit-identical to the uninterrupted sequence.
  std::array<uint64_t, 4> SaveState() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void LoadState(const std::array<uint64_t, 4>& state) {
    for (int i = 0; i < 4; ++i) s_[i] = state[static_cast<size_t>(i)];
  }

 private:
  uint64_t s_[4];
};

}  // namespace maps
