// Deterministic random number engines.
//
// Every experiment in the repository is seeded; identical seeds must produce
// bit-identical runs across platforms, so we implement the engines ourselves
// instead of relying on (implementation-defined) std::normal_distribution.

#pragma once

#include <cstdint>

namespace maps {

/// \brief SplitMix64: used to expand a single 64-bit seed into engine state.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// \brief xoshiro256**: fast, high-quality 64-bit PRNG (Blackman & Vigna).
///
/// Satisfies UniformRandomBitGenerator so it can also drive <random> adaptors
/// in tests.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return NextUint64(); }

  uint64_t NextUint64();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Bernoulli trial with success probability p.
  bool NextBernoulli(double p);

  /// Derives an independent child generator; `stream` diversifies children
  /// created from the same parent state.
  Rng Fork(uint64_t stream);

 private:
  uint64_t s_[4];
};

}  // namespace maps
