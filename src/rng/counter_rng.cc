#include "rng/counter_rng.h"

namespace maps {

namespace {

// Philox 4x64 round constants (Salmon et al., SC'11, Table 2): the
// multipliers and the Weyl increments of the key schedule.
constexpr uint64_t kPhiloxM0 = 0xD2E7470EE14C6C93ULL;
constexpr uint64_t kPhiloxM1 = 0xCA5A826395121157ULL;
constexpr uint64_t kPhiloxW0 = 0x9E3779B97F4A7C15ULL;  // golden ratio
constexpr uint64_t kPhiloxW1 = 0xBB67AE8584CAA73BULL;  // sqrt(3) - 1

inline void MulHiLo(uint64_t a, uint64_t b, uint64_t* hi, uint64_t* lo) {
  const __uint128_t p = static_cast<__uint128_t>(a) * b;
  *hi = static_cast<uint64_t>(p >> 64);
  *lo = static_cast<uint64_t>(p);
}

}  // namespace

std::array<uint64_t, 4> Philox4x64Block(
    const std::array<uint64_t, 2>& key,
    const std::array<uint64_t, 4>& counter) {
  uint64_t x0 = counter[0], x1 = counter[1], x2 = counter[2], x3 = counter[3];
  uint64_t k0 = key[0], k1 = key[1];
  for (int round = 0; round < 10; ++round) {
    uint64_t hi0, lo0, hi1, lo1;
    MulHiLo(kPhiloxM0, x0, &hi0, &lo0);
    MulHiLo(kPhiloxM1, x2, &hi1, &lo1);
    const uint64_t y0 = hi1 ^ x1 ^ k0;
    const uint64_t y1 = lo1;
    const uint64_t y2 = hi0 ^ x3 ^ k1;
    const uint64_t y3 = lo0;
    x0 = y0;
    x1 = y1;
    x2 = y2;
    x3 = y3;
    k0 += kPhiloxW0;
    k1 += kPhiloxW1;
  }
  return {x0, x1, x2, x3};
}

uint64_t CounterRng::NextUint64() {
  if (buffered_ == 0) {
    buffer_ = Philox4x64Block(key_, {block_, 0, 0, 0});
    ++block_;
    buffered_ = 4;
  }
  // Words are served in block order: index 4*(block_-1) + (4 - buffered_).
  return buffer_[4 - buffered_--];
}

void CounterRng::Seek(uint64_t n) {
  block_ = n / 4;
  buffered_ = 0;
  const int skip = static_cast<int>(n % 4);
  if (skip != 0) {
    buffer_ = Philox4x64Block(key_, {block_, 0, 0, 0});
    ++block_;
    buffered_ = 4 - skip;
  }
}

}  // namespace maps
