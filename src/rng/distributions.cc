#include "rng/distributions.h"

#include "util/logging.h"

namespace maps {

double StdNormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double StdNormalPdf(double x) {
  static const double kInvSqrt2Pi = 0.3989422804014327;
  return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}

double StdNormalQuantile(double p) {
  MAPS_CHECK(p > 0.0 && p < 1.0) << "quantile input " << p;
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  static const double p_low = 0.02425;
  double q, r, x;
  if (p < p_low) {
    q = std::sqrt(-2 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  } else if (p <= 1 - p_low) {
    q = p - 0.5;
    r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  } else {
    q = std::sqrt(-2 * std::log(1 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  // One step of Halley's method against the true CDF tightens the tails.
  double e = StdNormalCdf(x) - p;
  double u = e * std::sqrt(2 * M_PI) * std::exp(x * x / 2);
  x = x - u / (1 + x * u / 2);
  return x;
}

double SampleNormal(RandomSource& rng, double mean, double stddev) {
  // Box-Muller; we intentionally burn the second variate to keep one
  // uniform-pair -> one sample (stream alignment beats a 2x speedup here).
  double u1 = rng.NextDouble();
  double u2 = rng.NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

double SampleExponential(RandomSource& rng, double rate) {
  MAPS_CHECK_GT(rate, 0.0);
  double u = rng.NextDouble();
  if (u >= 1.0) u = 1.0 - 0x1.0p-53;
  return -std::log(1.0 - u) / rate;
}

TruncatedNormal::TruncatedNormal(double mean, double stddev, double lo,
                                 double hi)
    : mean_(mean), stddev_(stddev), lo_(lo), hi_(hi) {
  MAPS_CHECK_GT(stddev, 0.0);
  MAPS_CHECK_LT(lo, hi);
  alpha_ = (lo - mean) / stddev;
  beta_ = (hi - mean) / stddev;
  cdf_alpha_ = StdNormalCdf(alpha_);
  z_ = StdNormalCdf(beta_) - cdf_alpha_;
  MAPS_CHECK_GT(z_, 0.0) << "truncation interval has no mass";
}

double TruncatedNormal::Sample(RandomSource& rng) const {
  double u = rng.NextDouble();
  double p = cdf_alpha_ + u * z_;
  // Clamp away from {0,1} for the quantile's domain.
  p = std::min(std::max(p, 0x1.0p-53), 1.0 - 0x1.0p-53);
  double x = mean_ + stddev_ * StdNormalQuantile(p);
  return std::min(std::max(x, lo_), hi_);
}

double TruncatedNormal::Cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (StdNormalCdf((x - mean_) / stddev_) - cdf_alpha_) / z_;
}

double TruncatedNormal::Pdf(double x) const {
  if (x < lo_ || x > hi_) return 0.0;
  return StdNormalPdf((x - mean_) / stddev_) / (stddev_ * z_);
}

}  // namespace maps
