#include "rng/random.h"

namespace maps {

namespace {
inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

uint64_t RandomSource::NextBounded(uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method.
  __uint128_t m = static_cast<__uint128_t>(NextUint64()) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = (0ULL - bound) % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(NextUint64()) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double RandomSource::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double RandomSource::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool RandomSource::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

Rng Rng::Fork(uint64_t stream) {
  uint64_t mix = NextUint64();
  return Rng(mix ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
}

}  // namespace maps
