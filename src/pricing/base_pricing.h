// Base pricing (Sec. 3, Algorithm 1).
//
// During warm-up, every grid samples the geometric price ladder with
// Hoeffding-sized probe budgets, estimates its Myerson reserve price as the
// ladder argmax of p * S_hat(p) (ties toward the smaller price), and the
// base price p_b is the arithmetic mean over grids. Every round then prices
// all grids at p_b.
//
// The probe schedule is embarrassingly parallel per (grid, rung): every
// pair draws from its own counter stream (DemandOracle::CountProbeAccepts),
// so the schedule shards over a lent ThreadPool and is bit-identical for
// any thread count — including no pool at all.

#pragma once

#include <cstdint>
#include <vector>

#include "pricing/strategy.h"
#include "stats/price_ladder.h"
#include "util/thread_pool.h"

namespace maps {

/// \brief Algorithm 1's Hoeffding probe budgets, one per ladder rung:
/// h(p_i) = ProbeBudget(p_i, eps, delta, k). Shared by every strategy that
/// warm-starts from the schedule (BaseP directly; CappedUCB for a fair
/// comparison) so the "identical demand knowledge" invariant is structural,
/// not two loops that must stay in sync.
std::vector<int64_t> ProbeBudgets(const PriceLadder& ladder,
                                  const PricingConfig& config);

/// \brief Runs Algorithm 1's probe schedule: offers ladder rung i to
/// probes[i] historical requesters of every grid, one (grid, rung) pair per
/// counter stream (stream id = grid * ladder.size() + rung). Returns accept
/// counts indexed [grid * ladder.size() + rung]. Sharded over `pool`
/// (inline when null) with a FIXED shard split — results are a pure
/// function of (oracle seed, ladder, probes), never of the thread count.
/// Accounts probes on `history` once, deterministically.
std::vector<int64_t> RunProbeSchedule(DemandOracle* history, int num_grids,
                                      const PriceLadder& ladder,
                                      const std::vector<int64_t>& probes,
                                      ThreadPool* pool);

/// \brief The BaseP strategy; also reused by SDR/SDE/MAPS to obtain p_b.
class BasePricing : public PricingStrategy {
 public:
  explicit BasePricing(const PricingConfig& config);

  std::string name() const override { return "BaseP"; }

  Status Warmup(const GridPartition& grid, DemandOracle* history) override;

  Status PriceRound(const MarketSnapshot& snapshot,
                    std::vector<double>* grid_prices) override;

  void LendPool(ThreadPool* pool) override { pool_ = pool; }

  size_t MemoryFootprintBytes() const override;

  /// Warm-up state (p_b, Myerson estimates, observed ratios, probe
  /// budgets). LoadState verifies the ladder fingerprint and commits
  /// all-or-nothing.
  Status SaveState(StateWriter* w) const override;
  Status LoadState(StateReader* r) override;

  /// The unified base price p_b (valid after Warmup).
  double base_price() const { return base_price_; }

  /// Estimated per-grid Myerson reserve prices p_m^g (valid after Warmup).
  const std::vector<double>& grid_myerson_prices() const {
    return grid_myerson_; }

  /// Observed acceptance ratios S_hat_g(p) per ladder rung (valid after
  /// Warmup); exposed so MAPS can warm-start its UCB tables.
  const std::vector<std::vector<double>>& observed_accept_ratios() const {
    return observed_accept_;
  }

  /// Probe count per rung (identical across grids by construction).
  const std::vector<int64_t>& probes_per_rung() const { return probes_; }

  const PriceLadder& ladder() const { return ladder_; }
  const PricingConfig& config() const { return config_; }
  bool warmed_up() const { return warmed_up_; }

 private:
  PricingConfig config_;
  PriceLadder ladder_;
  std::vector<double> grid_myerson_;
  std::vector<std::vector<double>> observed_accept_;
  std::vector<int64_t> probes_;
  double base_price_ = 0.0;
  bool warmed_up_ = false;
  ThreadPool* pool_ = nullptr;  // lent, non-owning; null = inline warm-up
};

}  // namespace maps
