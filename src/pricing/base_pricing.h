// Base pricing (Sec. 3, Algorithm 1).
//
// During warm-up, every grid samples the geometric price ladder with
// Hoeffding-sized probe budgets, estimates its Myerson reserve price as the
// ladder argmax of p * S_hat(p) (ties toward the smaller price), and the
// base price p_b is the arithmetic mean over grids. Every round then prices
// all grids at p_b.

#pragma once

#include <vector>

#include "pricing/strategy.h"
#include "stats/price_ladder.h"

namespace maps {

/// \brief The BaseP strategy; also reused by SDR/SDE/MAPS to obtain p_b.
class BasePricing : public PricingStrategy {
 public:
  explicit BasePricing(const PricingConfig& config);

  std::string name() const override { return "BaseP"; }

  Status Warmup(const GridPartition& grid, DemandOracle* history) override;

  Status PriceRound(const MarketSnapshot& snapshot,
                    std::vector<double>* grid_prices) override;

  size_t MemoryFootprintBytes() const override;

  /// The unified base price p_b (valid after Warmup).
  double base_price() const { return base_price_; }

  /// Estimated per-grid Myerson reserve prices p_m^g (valid after Warmup).
  const std::vector<double>& grid_myerson_prices() const {
    return grid_myerson_; }

  /// Observed acceptance ratios S_hat_g(p) per ladder rung (valid after
  /// Warmup); exposed so MAPS can warm-start its UCB tables.
  const std::vector<std::vector<double>>& observed_accept_ratios() const {
    return observed_accept_;
  }

  /// Probe count per rung (identical across grids by construction).
  const std::vector<int64_t>& probes_per_rung() const { return probes_; }

  const PriceLadder& ladder() const { return ladder_; }
  const PricingConfig& config() const { return config_; }
  bool warmed_up() const { return warmed_up_; }

 private:
  PricingConfig config_;
  PriceLadder ladder_;
  std::vector<double> grid_myerson_;
  std::vector<std::vector<double>> observed_accept_;
  std::vector<int64_t> probes_;
  double base_price_ = 0.0;
  bool warmed_up_ = false;
};

}  // namespace maps
