// OracleSearch: brute-force optimal grid pricing for TINY instances.
//
// Enumerates every assignment of ladder prices to the non-empty grids and
// scores each by exact possible-world expected revenue (Definition 6) using
// the TRUE acceptance ratios. Exponential in both the number of non-empty
// grids and the number of tasks — strictly a ground-truth generator for the
// approximation-ratio tests (Theorem 8's (1 - 1/e) bound).

#pragma once

#include <vector>

#include "market/demand_oracle.h"
#include "market/market_state.h"
#include "stats/price_ladder.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace maps {

/// \brief Optimal prices and their exact expected revenue.
struct OracleSearchResult {
  std::vector<double> grid_prices;
  double expected_revenue = 0.0;
};

/// \brief Exhaustive search over ladder price assignments.
/// \pre at most 25 tasks; at most ~1e6 price combinations.
Result<OracleSearchResult> OracleSearch(const MarketSnapshot& snapshot,
                                        const DemandOracle& truth,
                                        const PriceLadder& ladder);

/// \brief Pool-backed exhaustive search. The price-combination odometer is
/// sharded into a FIXED number of contiguous linear-index ranges (a
/// function of the combination count only), each worker sweeps its ranges
/// with a private PossibleWorldsWorkspace + priced scratch, and the global
/// argmax is reduced in shard order with ties broken by the LOWEST
/// combination index. Every combination's value is computed exactly as in
/// the serial sweep, so the result — prices and revenue — is bit-identical
/// to the serial overload and to itself under any thread count. The graph
/// is still built exactly once per invocation. `pool == nullptr` runs the
/// same sharded sweep inline.
Result<OracleSearchResult> OracleSearch(const MarketSnapshot& snapshot,
                                        const DemandOracle& truth,
                                        const PriceLadder& ladder,
                                        ThreadPool* pool);

/// \brief Exact expected revenue of a specific price assignment under the
/// true acceptance ratios (helper shared with tests).
double ExpectedRevenueOfPrices(const MarketSnapshot& snapshot,
                               const DemandOracle& truth,
                               const std::vector<double>& grid_prices);

}  // namespace maps
