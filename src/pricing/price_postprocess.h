// Price post-processors implementing the practical notes of Sec. 4.2.3:
//
//   "A cap on the unit prices can be set[ ] bounded prices. Spatial
//    smoothing can also be integrated to reduce the gap of unit prices
//    among neighbouring grids."
//
// Both are pure transforms over a round's price vector and compose with any
// PricingStrategy via PostprocessedStrategy.

#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "pricing/strategy.h"

namespace maps {

/// \brief Clamps every grid price into [floor, cap].
void ApplyPriceBounds(double floor, double cap, std::vector<double>* prices);

/// \brief Diffusive spatial smoothing: `rounds` Jacobi steps of
///   p_g <- (1 - lambda) * p_g + lambda * mean(4-neighborhood of g).
/// lambda in [0, 1]; boundary cells average over their existing neighbors.
void SmoothPrices(const GridPartition& grid, double lambda, int rounds,
                  std::vector<double>* prices);

/// \brief Largest absolute price difference across 4-adjacent cells —
/// the "gap of unit prices among neighbouring grids" the smoothing bounds.
double MaxNeighborGap(const GridPartition& grid,
                      const std::vector<double>& prices);

/// \brief Post-processing configuration.
struct PostprocessOptions {
  /// Hard bounds applied after smoothing (disabled when unset).
  std::optional<double> price_floor;
  std::optional<double> price_cap;
  /// Smoothing strength per round; 0 disables smoothing.
  double smoothing_lambda = 0.0;
  int smoothing_rounds = 1;
};

/// \brief Decorator running a post-processor over an inner strategy's
/// prices each round. Feedback is forwarded with the *processed* prices,
/// because those are what requesters actually saw.
class PostprocessedStrategy : public PricingStrategy {
 public:
  PostprocessedStrategy(std::unique_ptr<PricingStrategy> inner,
                        const PostprocessOptions& options);

  std::string name() const override;

  Status Warmup(const GridPartition& grid, DemandOracle* history) override;

  Status PriceRound(const MarketSnapshot& snapshot,
                    std::vector<double>* grid_prices) override;

  void ObserveFeedback(const MarketSnapshot& snapshot,
                       const std::vector<double>& grid_prices,
                       const std::vector<bool>& accepted) override;

  size_t MemoryFootprintBytes() const override;

  /// Post-processing is a pure transform; all learned state lives in the
  /// inner strategy, so state hooks delegate verbatim.
  Status SaveState(StateWriter* w) const override {
    return inner_->SaveState(w);
  }
  Status LoadState(StateReader* r) override { return inner_->LoadState(r); }

  PricingStrategy* inner() { return inner_.get(); }

 private:
  std::unique_ptr<PricingStrategy> inner_;
  PostprocessOptions options_;
};

}  // namespace maps
