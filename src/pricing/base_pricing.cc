#include "pricing/base_pricing.h"

#include "stats/hoeffding.h"
#include "util/logging.h"

namespace maps {

BasePricing::BasePricing(const PricingConfig& config)
    : config_(config), ladder_(MakeLadderFromConfig(config).ValueOrDie()) {}

Status BasePricing::Warmup(const GridPartition& grid, DemandOracle* history) {
  if (history == nullptr) {
    return Status::InvalidArgument("BasePricing warm-up needs history");
  }
  if (history->num_grids() != grid.num_cells()) {
    return Status::InvalidArgument("oracle/grid cell count mismatch");
  }
  const int num_grids = grid.num_cells();
  // The actual candidate count (equals Algorithm 1's k for geometric
  // ladders, and the explicit set's size otherwise).
  const int k = ladder_.size();

  grid_myerson_.assign(num_grids, config_.p_min);
  observed_accept_.assign(num_grids,
                          std::vector<double>(ladder_.size(), 0.0));
  probes_.assign(ladder_.size(), 0);
  for (int i = 0; i < ladder_.size(); ++i) {
    probes_[i] = ProbeBudget(ladder_.price(i), config_.eps, config_.delta, k);
  }

  double sum = 0.0;
  for (int g = 0; g < num_grids; ++g) {
    double best_value = -1.0;
    double best_price = config_.p_min;
    // Ascending ladder scan; strict '>' keeps the smaller price on ties
    // (a tie at a lower price means a higher acceptance ratio).
    for (int i = 0; i < ladder_.size(); ++i) {
      const double p = ladder_.price(i);
      const int64_t h = probes_[i];
      int64_t accepts = 0;
      for (int64_t s = 0; s < h; ++s) {
        if (history->ProbeAccept(g, p)) ++accepts;
      }
      const double s_hat =
          static_cast<double>(accepts) / static_cast<double>(h);
      observed_accept_[g][i] = s_hat;
      if (p * s_hat > best_value) {
        best_value = p * s_hat;
        best_price = p;
      }
    }
    grid_myerson_[g] = best_price;
    sum += best_price;
  }
  base_price_ = sum / num_grids;
  warmed_up_ = true;
  return Status::OK();
}

Status BasePricing::PriceRound(const MarketSnapshot& snapshot,
                               std::vector<double>* grid_prices) {
  if (!warmed_up_) {
    return Status::FailedPrecondition("BasePricing used before Warmup");
  }
  grid_prices->assign(snapshot.num_grids(), base_price_);
  return Status::OK();
}

size_t BasePricing::MemoryFootprintBytes() const {
  size_t bytes = grid_myerson_.capacity() * sizeof(double) +
                 probes_.capacity() * sizeof(int64_t) +
                 ladder_.prices().capacity() * sizeof(double);
  for (const auto& row : observed_accept_) {
    bytes += row.capacity() * sizeof(double);
  }
  return bytes;
}

}  // namespace maps
