#include "pricing/base_pricing.h"

#include "stats/hoeffding.h"
#include "util/logging.h"

namespace maps {

namespace {
/// Fixed shard cap for the (grid, rung) probe matrix. A constant of the
/// schedule (never the thread count) per the DESIGN.md §8 policy; each pair
/// is a pure function of its stream id anyway, so sharding only affects
/// scheduling, not results.
constexpr int64_t kProbeShards = 64;
}  // namespace

std::vector<int64_t> ProbeBudgets(const PriceLadder& ladder,
                                  const PricingConfig& config) {
  std::vector<int64_t> probes(ladder.size());
  for (int i = 0; i < ladder.size(); ++i) {
    probes[i] =
        ProbeBudget(ladder.price(i), config.eps, config.delta, ladder.size());
  }
  return probes;
}

std::vector<int64_t> RunProbeSchedule(DemandOracle* history, int num_grids,
                                      const PriceLadder& ladder,
                                      const std::vector<int64_t>& probes,
                                      ThreadPool* pool) {
  const int k = ladder.size();
  MAPS_CHECK_EQ(static_cast<int>(probes.size()), k);
  std::vector<int64_t> accepts(static_cast<size_t>(num_grids) * k, 0);
  const auto shards =
      SplitRange(static_cast<int64_t>(accepts.size()), kProbeShards);
  ParallelFor(pool, shards,
              [&](int /*shard*/, const IndexRange& range, int /*worker*/) {
                for (int64_t idx = range.begin; idx < range.end; ++idx) {
                  const int g = static_cast<int>(idx / k);
                  const int i = static_cast<int>(idx % k);
                  accepts[idx] = history->CountProbeAccepts(
                      g, ladder.price(i), probes[i],
                      /*stream=*/static_cast<uint64_t>(idx));
                }
              });
  int64_t total = 0;
  for (int i = 0; i < k; ++i) total += probes[i];
  history->AccountProbes(total * num_grids);
  return accepts;
}

BasePricing::BasePricing(const PricingConfig& config)
    : config_(config), ladder_(MakeLadderFromConfig(config).ValueOrDie()) {}

Status BasePricing::Warmup(const GridPartition& grid, DemandOracle* history) {
  if (history == nullptr) {
    return Status::InvalidArgument("BasePricing warm-up needs history");
  }
  if (history->num_grids() != grid.num_cells()) {
    return Status::InvalidArgument("oracle/grid cell count mismatch");
  }
  const int num_grids = grid.num_cells();
  // The actual candidate count (equals Algorithm 1's k for geometric
  // ladders, and the explicit set's size otherwise).
  const int k = ladder_.size();

  grid_myerson_.assign(num_grids, config_.p_min);
  observed_accept_.assign(num_grids,
                          std::vector<double>(ladder_.size(), 0.0));
  probes_ = ProbeBudgets(ladder_, config_);

  // Lines 5-7, sharded: every (grid, rung) pair probes on its own counter
  // stream, so this loop nest parallelizes without changing a single draw.
  const std::vector<int64_t> accepts =
      RunProbeSchedule(history, num_grids, ladder_, probes_, pool_);

  double sum = 0.0;
  for (int g = 0; g < num_grids; ++g) {
    double best_value = -1.0;
    double best_price = config_.p_min;
    // Ascending ladder scan; strict '>' keeps the smaller price on ties
    // (a tie at a lower price means a higher acceptance ratio).
    for (int i = 0; i < ladder_.size(); ++i) {
      const double p = ladder_.price(i);
      const double s_hat = static_cast<double>(accepts[g * k + i]) /
                           static_cast<double>(probes_[i]);
      observed_accept_[g][i] = s_hat;
      if (p * s_hat > best_value) {
        best_value = p * s_hat;
        best_price = p;
      }
    }
    grid_myerson_[g] = best_price;
    sum += best_price;
  }
  base_price_ = sum / num_grids;
  warmed_up_ = true;
  return Status::OK();
}

Status BasePricing::PriceRound(const MarketSnapshot& snapshot,
                               std::vector<double>* grid_prices) {
  if (!warmed_up_) {
    return Status::FailedPrecondition("BasePricing used before Warmup");
  }
  grid_prices->assign(snapshot.num_grids(), base_price_);
  return Status::OK();
}

namespace {
constexpr uint32_t kBasePricingStateVersion = 1;
}  // namespace

Status BasePricing::SaveState(StateWriter* w) const {
  w->PutU32(kBasePricingStateVersion);
  // Ladder fingerprint: configuration, not state — written so a restore
  // into a differently configured strategy fails loudly instead of
  // misinterpreting rung indices.
  w->PutU64(ladder_.prices().size());
  for (double p : ladder_.prices()) w->PutDouble(p);
  w->PutBool(warmed_up_);
  w->PutDouble(base_price_);
  w->PutU64(grid_myerson_.size());
  for (double p : grid_myerson_) w->PutDouble(p);
  w->PutU64(observed_accept_.size());
  for (const auto& row : observed_accept_) {
    w->PutU64(row.size());
    for (double v : row) w->PutDouble(v);
  }
  w->PutU64(probes_.size());
  for (int64_t p : probes_) w->PutI64(p);
  return Status::OK();
}

Status BasePricing::LoadState(StateReader* r) {
  uint32_t version;
  MAPS_RETURN_NOT_OK(r->GetU32(&version, "BaseP state version"));
  if (version != kBasePricingStateVersion) {
    return Status::InvalidArgument("unsupported BaseP state version " +
                                   std::to_string(version));
  }
  uint64_t rungs;
  MAPS_RETURN_NOT_OK(r->GetU64(&rungs, "BaseP ladder size"));
  if (rungs != ladder_.prices().size()) {
    return Status::InvalidArgument(
        "BaseP ladder size mismatch: checkpoint has " + std::to_string(rungs) +
        ", configured " + std::to_string(ladder_.prices().size()));
  }
  for (uint64_t i = 0; i < rungs; ++i) {
    double p;
    MAPS_RETURN_NOT_OK(r->GetDouble(&p, "BaseP ladder price"));
    if (p != ladder_.price(static_cast<int>(i))) {
      return Status::InvalidArgument(
          "BaseP ladder price mismatch at rung " + std::to_string(i));
    }
  }
  bool warmed_up;
  double base_price;
  MAPS_RETURN_NOT_OK(r->GetBool(&warmed_up, "BaseP warmed_up"));
  MAPS_RETURN_NOT_OK(r->GetDouble(&base_price, "BaseP base_price"));

  uint64_t n;
  MAPS_RETURN_NOT_OK(r->GetU64(&n, "BaseP myerson count"));
  MAPS_RETURN_NOT_OK(CheckDecodedCount(*r, n, 8, "BaseP myerson"));
  std::vector<double> myerson(static_cast<size_t>(n));
  for (auto& p : myerson) MAPS_RETURN_NOT_OK(r->GetDouble(&p, "BaseP myerson"));

  MAPS_RETURN_NOT_OK(r->GetU64(&n, "BaseP accept-ratio grid count"));
  MAPS_RETURN_NOT_OK(CheckDecodedCount(*r, n, 8, "BaseP accept-ratio grids"));
  std::vector<std::vector<double>> observed(static_cast<size_t>(n));
  for (auto& row : observed) {
    uint64_t row_n;
    MAPS_RETURN_NOT_OK(r->GetU64(&row_n, "BaseP accept-ratio rung count"));
    if (row_n != rungs) {
      return Status::InvalidArgument(
          "BaseP accept-ratio row has " + std::to_string(row_n) +
          " rungs, ladder has " + std::to_string(rungs));
    }
    row.resize(static_cast<size_t>(row_n));
    for (auto& v : row) {
      MAPS_RETURN_NOT_OK(r->GetDouble(&v, "BaseP accept ratio"));
    }
  }

  MAPS_RETURN_NOT_OK(r->GetU64(&n, "BaseP probe count"));
  MAPS_RETURN_NOT_OK(CheckDecodedCount(*r, n, 8, "BaseP probes"));
  std::vector<int64_t> probes(static_cast<size_t>(n));
  for (auto& p : probes) MAPS_RETURN_NOT_OK(r->GetI64(&p, "BaseP probes"));

  warmed_up_ = warmed_up;
  base_price_ = base_price;
  grid_myerson_ = std::move(myerson);
  observed_accept_ = std::move(observed);
  probes_ = std::move(probes);
  return Status::OK();
}

size_t BasePricing::MemoryFootprintBytes() const {
  size_t bytes = grid_myerson_.capacity() * sizeof(double) +
                 probes_.capacity() * sizeof(int64_t) +
                 ladder_.prices().capacity() * sizeof(double);
  for (const auto& row : observed_accept_) {
    bytes += row.capacity() * sizeof(double);
  }
  return bytes;
}

}  // namespace maps
