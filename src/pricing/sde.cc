#include "pricing/sde.h"

#include <algorithm>
#include <cmath>

namespace maps {

Sde::Sde(const PricingConfig& config) : config_(config), base_(config) {}

Status Sde::Warmup(const GridPartition& grid, DemandOracle* history) {
  return base_.Warmup(grid, history);
}

Status Sde::PriceRound(const MarketSnapshot& snapshot,
                       std::vector<double>* grid_prices) {
  if (!base_.warmed_up()) {
    return Status::FailedPrecondition("SDE used before Warmup");
  }
  const double p_b = base_.base_price();
  grid_prices->assign(snapshot.num_grids(), p_b);
  for (int g = 0; g < snapshot.num_grids(); ++g) {
    const double demand =
        static_cast<double>(snapshot.TasksInGrid(g).size());
    const double supply =
        static_cast<double>(snapshot.WorkersInGrid(g).size());
    if (demand > supply) {
      // supply - demand < 0 here, so the exp term is in (0, 1).
      const double multiplier = 1.0 + 2.0 * std::exp(supply - demand);
      (*grid_prices)[g] =
          std::clamp(p_b * multiplier, config_.p_min, config_.p_max);
    }
  }
  return Status::OK();
}

size_t Sde::MemoryFootprintBytes() const {
  return base_.MemoryFootprintBytes() + sizeof(*this);
}

}  // namespace maps
