// CappedUCB baseline (Sec. 5.1; Babaioff et al., "Dynamic Pricing with
// Limited Supply"). Each grid is treated as an ISOLATED market:
//   p^g = argmax_p min( |R^{tg}| * p * S_hat_g(p),  |W^{tg}| * p ),
// i.e. our Eq. (1) with n^{tg} = |W^{tg}| (workers physically located in the
// grid) and every d_r = 1. Acceptance ratios are learned with the same UCB
// machinery as MAPS, but no supply is shared across grids — which is exactly
// why it underperforms MAPS when workers straddle grid boundaries.
//
// Per the paper's observation that CappedUCB "needs to store more
// information such as the number of tasks and workers in each grid", the
// implementation keeps a per-grid, per-period demand/supply history: the
// original algorithm prices against a fixed known supply over a horizon, so
// the adaptation estimates arrival statistics from that log.

#pragma once

#include <vector>

#include "pricing/strategy.h"
#include "stats/price_ladder.h"
#include "stats/ucb.h"

namespace maps {

/// \brief Per-grid independent UCB pricing with a supply cap.
class CappedUcb : public PricingStrategy {
 public:
  explicit CappedUcb(const PricingConfig& config, bool warm_start = true);

  std::string name() const override { return "CappedUCB"; }

  Status Warmup(const GridPartition& grid, DemandOracle* history) override;

  void LendPool(ThreadPool* pool) override { pool_ = pool; }

  Status PriceRound(const MarketSnapshot& snapshot,
                    std::vector<double>* grid_prices) override;

  void ObserveFeedback(const MarketSnapshot& snapshot,
                       const std::vector<double>& grid_prices,
                       const std::vector<bool>& accepted) override;

  size_t MemoryFootprintBytes() const override;

  /// Learned state: per-grid UCB tables, the arrival log, and the reset
  /// counter. LoadState commits all-or-nothing.
  Status SaveState(StateWriter* w) const override;
  Status LoadState(StateReader* r) override;

  const PriceLadder& ladder() const { return ladder_; }

  /// Total UCB observations recorded for grid `g` (diagnostic/test hook:
  /// guards the grid-count-change reset policy).
  int64_t UcbObservations(int g) const;

  /// Times a grid-count change forced a full learned-state reset. Stable
  /// grid counts must keep this at zero; every increment is also logged.
  int64_t grid_state_resets() const { return grid_state_resets_; }

 private:
  void EnsureGridState(int num_grids);

  PricingConfig config_;
  bool warm_start_;
  PriceLadder ladder_;
  bool warmed_up_ = false;
  int64_t grid_state_resets_ = 0;
  ThreadPool* pool_ = nullptr;  // lent, non-owning; null = inline warm-up
  std::vector<UcbEstimator> ucb_;  // per grid
  // Arrival log: per grid, (|R^{tg}|, |W^{tg}|) for every period seen.
  std::vector<std::vector<std::pair<int32_t, int32_t>>> arrivals_;
  // ObserveFeedback scratch: one snapped rung index per grid (the posted
  // price is per-grid, so snapping per task re-derived the same value).
  std::vector<int> feedback_rung_;
};

}  // namespace maps
