#include "pricing/sdr.h"

#include <algorithm>

namespace maps {

Sdr::Sdr(const PricingConfig& config, double coefficient)
    : config_(config), coefficient_(coefficient), base_(config) {}

Status Sdr::Warmup(const GridPartition& grid, DemandOracle* history) {
  return base_.Warmup(grid, history);
}

Status Sdr::PriceRound(const MarketSnapshot& snapshot,
                       std::vector<double>* grid_prices) {
  if (!base_.warmed_up()) {
    return Status::FailedPrecondition("SDR used before Warmup");
  }
  const double p_b = base_.base_price();
  grid_prices->assign(snapshot.num_grids(), p_b);
  for (int g = 0; g < snapshot.num_grids(); ++g) {
    const size_t demand = snapshot.TasksInGrid(g).size();
    const size_t supply = snapshot.WorkersInGrid(g).size();
    if (demand > supply) {
      const double ratio = supply > 0
                               ? static_cast<double>(demand) /
                                     static_cast<double>(supply)
                               : static_cast<double>(demand);
      (*grid_prices)[g] = std::clamp(coefficient_ * p_b * ratio,
                                     config_.p_min, config_.p_max);
    }
  }
  return Status::OK();
}

size_t Sdr::MemoryFootprintBytes() const {
  return base_.MemoryFootprintBytes() + sizeof(*this);
}

}  // namespace maps
