// MAPS: MAtching-based Pricing Strategy (Sec. 4, Algorithms 2-3).
//
// Per period, MAPS (i) builds the task x worker bipartite graph under the
// range constraints, (ii) greedily distributes the dependent supply: a
// max-heap over grids repeatedly admits the single worker addition with the
// largest increase Delta^g in the approximate expected revenue
//     L^g(n, p) = min( sum_r d_r * p * S_g(p),  sum_{i<=n} d_{r_i} * p ),
// verifying feasibility through augmenting paths in a pre-matching M', and
// (iii) prices each grid at the UCB-index maximizer of Algorithm 3 for its
// final supply level. Acceptance ratios are learned online with UCB and
// guarded by a binomial change detector.
//
// The matching core is allocation-free in steady state: the graph, the
// pre-matching, the heap, and every per-grid scratch vector are pooled
// across rounds, and each heap pop performs at most one alternating-tree
// walk (the probe records the augmenting path; the later admission
// revalidates and applies it in O(path) instead of searching again).
//
// Within a round the UCB state is frozen, so each grid's per-rung
// optimistic values are a round constant. PriceRound therefore precomputes
// them once per round — sharded over a lent ThreadPool under the DESIGN.md
// §8 fixed-shard policy — and evaluates Algorithm 3 incrementally: because
// the supply ratio is non-decreasing in n, a monotone rung pointer replaces
// the per-pop ladder scan (see DESIGN.md §10). Results are bit-identical to
// the reference scan, including the tie rule (larger price on equal index).

#pragma once

#include <memory>
#include <vector>

#include "graph/bipartite_graph.h"
#include "graph/incremental_matching.h"
#include "pricing/base_pricing.h"
#include "pricing/strategy.h"
#include "stats/change_detector.h"
#include "stats/price_ladder.h"
#include "stats/ucb.h"

namespace maps {

/// \brief MAPS tuning knobs.
struct MapsOptions {
  PricingConfig pricing;

  /// How Delta^g is computed when a grid contemplates one more worker.
  enum class DeltaMode {
    /// Increase of the L^g estimate itself (what Theorem 8's submodularity
    /// argument needs); the default.
    kExpectedRevenueGain,
    /// The literal return of Algorithm 3's listing:
    /// p_new*S_hat(p_new) - p_old*S_hat(p_old).
    kPaperLiteral,
  };
  DeltaMode delta_mode = DeltaMode::kExpectedRevenueGain;

  /// How the per-grid expected revenue is approximated (Eq. (1) vs the
  /// alternative the paper's appendix C.6 proposes and "leaves to future
  /// work").
  enum class SupplyApprox {
    /// Eq. (1): L = min( sum_r d_r p S(p), sum_{i<=n} d_{r_i} p ).
    kMinOfCurves,
    /// Appendix C.6: L = sum_{i=1}^{min(ceil(|R^{tg}| S(p)), n)}
    /// d_{r_i} p S(p) — expected accepted demand truncated by the supply.
    kTruncatedExpectation,
  };
  SupplyApprox supply_approx = SupplyApprox::kMinOfCurves;

  /// Run Algorithm 1 during Warmup to obtain p_b and warm-start the UCB
  /// tables from its probes (the paper feeds p_b into Algorithm 2).
  bool warm_start_from_base = true;

  /// Binomial change detection (Sec. 4.2.2); a flagged change re-seeds the
  /// flagged rung's UCB statistics from the most recent window.
  bool use_change_detector = true;
  /// Observations per detector window (the paper's m, unspecified there).
  /// Larger windows trade detection latency for fewer false flags on
  /// stationary demand.
  int change_window = 200;

  /// Evaluate Algorithm 3 through the round-scoped maximizer engine
  /// (precomputed per-rung optimistic values + monotone-pointer envelope;
  /// see DESIGN.md §10). Only applies under kMinOfCurves — the truncated-
  /// expectation variant always uses the reference scan. The engine is
  /// bit-identical to the scan; `false` keeps the reference scan for A/B
  /// verification and debugging.
  bool use_maximizer_engine = true;
};

/// \brief The MAPS pricing strategy.
class Maps : public PricingStrategy {
 public:
  explicit Maps(const MapsOptions& options);

  std::string name() const override { return "MAPS"; }

  Status Warmup(const GridPartition& grid, DemandOracle* history) override;

  /// The lent pool backs the warm-up probe schedule (via BasePricing) and
  /// PriceRound's per-round maximizer precompute. Both shard per DESIGN.md
  /// §8/§10, so results are bit-identical with or without a pool. The heap
  /// admission itself stays sequential by construction.
  void LendPool(ThreadPool* pool) override {
    pool_ = pool;
    base_.LendPool(pool);
  }

  Status PriceRound(const MarketSnapshot& snapshot,
                    std::vector<double>* grid_prices) override;

  void ObserveFeedback(const MarketSnapshot& snapshot,
                       const std::vector<double>& grid_prices,
                       const std::vector<bool>& accepted) override;

  size_t MemoryFootprintBytes() const override;

  /// Learned state: nested BaseP warm-up, per-grid UCB tables, per-rung
  /// change detectors, and reset counters. Round scratch (graph, heap,
  /// maximizer engine) is rebuilt every PriceRound and not serialized.
  /// LoadState commits all-or-nothing.
  Status SaveState(StateWriter* w) const override;
  Status LoadState(StateReader* r) override;

  double base_price() const { return base_.base_price(); }
  const PriceLadder& ladder() const { return ladder_; }
  const MapsOptions& options() const { return options_; }

  /// Supply levels n^{tg} chosen in the most recent PriceRound.
  const std::vector<int>& last_supply() const { return last_supply_; }

  /// Delta^g sequences admitted per grid in the most recent PriceRound
  /// (exposed for the Lemma 9 monotonicity tests).
  const std::vector<std::vector<double>>& last_delta_trace() const {
    return last_delta_trace_;
  }

  /// Number of UCB resets triggered by the change detector so far.
  int64_t change_resets() const { return change_resets_; }

  /// Total UCB observations recorded for grid `g` (diagnostic/test hook:
  /// guards the grid-count-change reset policy).
  int64_t UcbObservations(int g) const;

  /// Times a grid-count change forced a full learned-state reset. Stable
  /// grid counts must keep this at zero; every increment is also logged.
  int64_t grid_state_resets() const { return grid_state_resets_; }

  /// Peak bytes of the per-round transient structures (bipartite graph +
  /// pre-matching + maximizer engine). Reported separately from
  /// MemoryFootprintBytes() because they are pooled round-scratch, not
  /// learned state; the ablation bench surfaces them, and a regression
  /// test asserts the value stabilizes after the first rounds (pooling
  /// regressions show up as unbounded growth).
  size_t peak_round_bytes() const { return peak_round_bytes_; }

 private:
  struct Maximizer {
    double price = 0.0;
    double l_value = 0.0;      // L-hat at (n, price), absolute units
    double unit_revenue = 0.0; // p * S_hat(p) at the chosen price
    /// Supply-unconstrained ceiling of the index, max_p min(opt(p), p):
    /// since ratio <= 1, no supply level can push L-hat above
    /// total_dist * ceiling. Used to detect plateaus of the discretized
    /// index (see PriceRound).
    double ceiling = 0.0;
  };

  /// One max-heap tuple ((g, n_new, p_new), Delta^g) of Algorithm 2.
  struct HeapEntry {
    double delta = 0.0;
    int grid = -1;
    int n_new = 0;
    double p_new = 0.0;
    double l_new = 0.0;
    double unit_new = 0.0;
    uint64_t seq = 0;  // FIFO tie-break for determinism
  };

  /// Per-grid cursor of the incremental Algorithm-3 evaluation. Rungs above
  /// `front` are proven saturated (their optimistic value caps the index);
  /// `sat_idx/sat_key` is the champion among them. Both only move monotonely
  /// within a round because the supply ratio is non-decreasing in n.
  struct EngineCursor {
    int front = 0;
    int sat_idx = -1;
    double sat_key = -1.0;
  };

  /// Algorithm 3, reference implementation: full descending ladder scan.
  /// \param dist_prefix prefix sums of the grid's descending task
  ///                    distances (dist_prefix[k] = sum of top k)
  /// \param total_dist  C' = sum of all distances (== dist_prefix.back())
  /// \param n           contemplated supply level (1 <= n < |dist_prefix|)
  Maximizer CalcMaximizer(int g, const std::vector<double>& dist_prefix,
                          double total_dist, int n) const;

  /// Algorithm 3 through the round engine: advances grid g's monotone rung
  /// pointer to the supply ratio at n and reads the envelope maximum.
  /// Bit-identical to CalcMaximizer under kMinOfCurves (see DESIGN.md §10).
  Maximizer EvalMaximizerEngine(int g, const std::vector<double>& dist_prefix,
                                double total_dist, int n);

  /// Fills the round-frozen engine tables (per-rung optimistic values,
  /// p * mean, per-grid ceiling) and resets every cursor; sharded over the
  /// lent pool with per-grid disjoint writes.
  void PrecomputeRoundEngine(int num_grids);

  /// Resets the pooled per-round scratch (supplies, traces, recorded
  /// paths, price/L cursors, heap) for `num_grids` grids at base price
  /// `p_b`. Contents are dead between rounds; capacity is retained so
  /// steady-state rounds allocate nothing.
  void ResetRoundScratch(int num_grids, double p_b);

  void EnsureGridState(int num_grids);

  /// Max-heap ordering on Delta with FIFO tie-break (determinism).
  static bool HeapBefore(const HeapEntry& a, const HeapEntry& b) {
    if (a.delta != b.delta) return a.delta < b.delta;
    return a.seq > b.seq;
  }
  void PushHeap(const HeapEntry& entry);
  HeapEntry PopHeap();

  MapsOptions options_;
  PriceLadder ladder_;
  BasePricing base_;
  bool warmed_up_ = false;
  ThreadPool* pool_ = nullptr;  // non-owning; see LendPool

  std::vector<UcbEstimator> ucb_;                  // per grid
  std::vector<std::vector<ChangeDetector>> change_;  // per grid x rung

  std::vector<int> last_supply_;
  std::vector<std::vector<double>> last_delta_trace_;
  int64_t change_resets_ = 0;
  int64_t grid_state_resets_ = 0;
  size_t peak_round_bytes_ = 0;

  // Pooled round scratch (contents are dead between rounds; capacity is
  // retained so steady-state rounds allocate nothing).
  GraphBuildWorkspace build_ws_;
  BipartiteGraph graph_;
  IncrementalMatching pre_matching_;
  std::vector<RecordedPath> pending_path_;  // per grid: next growth step
  std::vector<HeapEntry> heap_;
  std::vector<double> cur_price_;
  std::vector<double> cur_l_;
  std::vector<double> cur_unit_;
  std::vector<char> finalized_;

  // Round-scoped maximizer engine tables (flat [grid * ladder + rung]).
  bool engine_active_ = false;
  std::vector<double> engine_opt_;    // OptimisticUnitRevenue per rung
  std::vector<double> engine_punit_;  // price * mean per rung
  std::vector<double> engine_ceiling_;  // per grid: max_i min(opt_i, p_i)
  std::vector<EngineCursor> engine_cursor_;  // per grid

  // ObserveFeedback scratch: one snapped rung index per grid (the posted
  // price is per-grid, so snapping per task re-derived the same value
  // |tasks-in-grid| times).
  std::vector<int> feedback_rung_;
};

}  // namespace maps
