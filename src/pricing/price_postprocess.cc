#include "pricing/price_postprocess.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace maps {

void ApplyPriceBounds(double floor, double cap, std::vector<double>* prices) {
  MAPS_CHECK_LE(floor, cap);
  for (double& p : *prices) p = std::clamp(p, floor, cap);
}

void SmoothPrices(const GridPartition& grid, double lambda, int rounds,
                  std::vector<double>* prices) {
  MAPS_CHECK(lambda >= 0.0 && lambda <= 1.0) << "lambda " << lambda;
  MAPS_CHECK_EQ(static_cast<int>(prices->size()), grid.num_cells());
  if (lambda == 0.0 || rounds <= 0) return;
  const int rows = grid.rows();
  const int cols = grid.cols();
  std::vector<double> next(prices->size());
  for (int round = 0; round < rounds; ++round) {
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        const int g = r * cols + c;
        double sum = 0.0;
        int n = 0;
        if (r > 0) {
          sum += (*prices)[g - cols];
          ++n;
        }
        if (r + 1 < rows) {
          sum += (*prices)[g + cols];
          ++n;
        }
        if (c > 0) {
          sum += (*prices)[g - 1];
          ++n;
        }
        if (c + 1 < cols) {
          sum += (*prices)[g + 1];
          ++n;
        }
        next[g] = n > 0
                      ? (1.0 - lambda) * (*prices)[g] + lambda * sum / n
                      : (*prices)[g];
      }
    }
    prices->swap(next);
  }
}

double MaxNeighborGap(const GridPartition& grid,
                      const std::vector<double>& prices) {
  MAPS_CHECK_EQ(static_cast<int>(prices.size()), grid.num_cells());
  const int rows = grid.rows();
  const int cols = grid.cols();
  double gap = 0.0;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int g = r * cols + c;
      if (r + 1 < rows) {
        gap = std::max(gap, std::abs(prices[g] - prices[g + cols]));
      }
      if (c + 1 < cols) {
        gap = std::max(gap, std::abs(prices[g] - prices[g + 1]));
      }
    }
  }
  return gap;
}

PostprocessedStrategy::PostprocessedStrategy(
    std::unique_ptr<PricingStrategy> inner, const PostprocessOptions& options)
    : inner_(std::move(inner)), options_(options) {
  MAPS_CHECK(inner_ != nullptr);
}

std::string PostprocessedStrategy::name() const {
  std::string out = inner_->name();
  if (options_.smoothing_lambda > 0.0) out += "+smooth";
  if (options_.price_cap || options_.price_floor) out += "+cap";
  return out;
}

Status PostprocessedStrategy::Warmup(const GridPartition& grid,
                                     DemandOracle* history) {
  return inner_->Warmup(grid, history);
}

Status PostprocessedStrategy::PriceRound(const MarketSnapshot& snapshot,
                                         std::vector<double>* grid_prices) {
  MAPS_RETURN_NOT_OK(inner_->PriceRound(snapshot, grid_prices));
  if (options_.smoothing_lambda > 0.0) {
    SmoothPrices(snapshot.grid(), options_.smoothing_lambda,
                 options_.smoothing_rounds, grid_prices);
  }
  if (options_.price_floor || options_.price_cap) {
    const double lo = options_.price_floor.value_or(0.0);
    const double hi = options_.price_cap.value_or(
        std::numeric_limits<double>::infinity());
    ApplyPriceBounds(lo, hi, grid_prices);
  }
  return Status::OK();
}

void PostprocessedStrategy::ObserveFeedback(
    const MarketSnapshot& snapshot, const std::vector<double>& grid_prices,
    const std::vector<bool>& accepted) {
  inner_->ObserveFeedback(snapshot, grid_prices, accepted);
}

size_t PostprocessedStrategy::MemoryFootprintBytes() const {
  return inner_->MemoryFootprintBytes() + sizeof(*this);
}

}  // namespace maps
