#include "pricing/oracle_search.h"

#include <cmath>
#include <cstdint>
#include <limits>

#include "graph/bipartite_graph.h"
#include "graph/possible_worlds.h"
#include "util/logging.h"

namespace maps {

namespace {

/// Scores one price assignment against a graph built once by the caller.
/// `priced` and `ws` are caller-owned scratch so the odometer loop performs
/// no per-combination allocation.
double ScorePrices(const BipartiteGraph& graph, const MarketSnapshot& snapshot,
                   const DemandOracle& truth,
                   const std::vector<double>& grid_prices,
                   std::vector<PricedTask>* priced,
                   PossibleWorldsWorkspace* ws) {
  priced->clear();
  for (const Task& t : snapshot.tasks()) {
    const double p = grid_prices[t.grid];
    priced->push_back(
        PricedTask{t.distance, p, truth.TrueAcceptRatio(t.grid, p)});
  }
  return ExactExpectedRevenue(graph, *priced, ws);
}

/// Everything one worker needs to sweep combination ranges without touching
/// shared mutable state: a full price vector, the odometer digits, and the
/// scoring scratch of PR 1's pooling contract.
struct SweepScratch {
  std::vector<double> prices;
  std::vector<int> choice;
  std::vector<PricedTask> priced;
  PossibleWorldsWorkspace ws;
};

/// One shard's local optimum: best value and the linear combination index
/// that attained it first (= lowest index, since sweeps walk ascending).
struct SweepBest {
  double value = -1.0;
  int64_t combo = std::numeric_limits<int64_t>::max();
};

/// Decodes linear combination index `combo` into odometer digits: digit i
/// (the rung of busy grid i) has weight ladder_size^i, matching the classic
/// odometer that increments digit 0 fastest.
void DecodeCombo(int64_t combo, int ladder_size, std::vector<int>* choice) {
  for (size_t i = 0; i < choice->size(); ++i) {
    (*choice)[i] = static_cast<int>(combo % ladder_size);
    combo /= ladder_size;
  }
}

/// Sweeps combinations [begin, end) in ascending linear-index order.
/// Identical evaluation per combination regardless of sharding, so the
/// serial sweep is literally the one-shard case.
SweepBest SweepRange(const BipartiteGraph& graph,
                     const MarketSnapshot& snapshot, const DemandOracle& truth,
                     const PriceLadder& ladder,
                     const std::vector<int>& busy_grids, int64_t begin,
                     int64_t end, SweepScratch* scratch) {
  scratch->prices.assign(snapshot.num_grids(), ladder.p_min());
  scratch->choice.resize(busy_grids.size());
  DecodeCombo(begin, ladder.size(), &scratch->choice);
  SweepBest best;
  for (int64_t combo = begin; combo < end; ++combo) {
    for (size_t i = 0; i < busy_grids.size(); ++i) {
      scratch->prices[busy_grids[i]] = ladder.price(scratch->choice[i]);
    }
    const double value = ScorePrices(graph, snapshot, truth, scratch->prices,
                                     &scratch->priced, &scratch->ws);
    // Strict '>' keeps the first (lowest-index) maximum, the global
    // tie-break rule of the ordered reduction.
    if (value > best.value) {
      best.value = value;
      best.combo = combo;
    }
    // Odometer increment (digit 0 fastest).
    for (size_t pos = 0; pos < scratch->choice.size(); ++pos) {
      if (++scratch->choice[pos] < ladder.size()) break;
      scratch->choice[pos] = 0;
    }
  }
  return best;
}

/// Fixed shard cap for the combination sweep: a constant (never the thread
/// count), so shard boundaries — and the per-shard argmax partials — are
/// the same whether 1 or 8 workers execute them.
constexpr int64_t kOracleSweepShards = 64;

}  // namespace

double ExpectedRevenueOfPrices(const MarketSnapshot& snapshot,
                               const DemandOracle& truth,
                               const std::vector<double>& grid_prices) {
  const BipartiteGraph graph = BipartiteGraph::Build(
      snapshot.tasks(), snapshot.workers(), snapshot.grid());
  std::vector<PricedTask> priced;
  priced.reserve(snapshot.tasks().size());
  PossibleWorldsWorkspace ws;
  return ScorePrices(graph, snapshot, truth, grid_prices, &priced, &ws);
}

Result<OracleSearchResult> OracleSearch(const MarketSnapshot& snapshot,
                                        const DemandOracle& truth,
                                        const PriceLadder& ladder) {
  return OracleSearch(snapshot, truth, ladder, /*pool=*/nullptr);
}

Result<OracleSearchResult> OracleSearch(const MarketSnapshot& snapshot,
                                        const DemandOracle& truth,
                                        const PriceLadder& ladder,
                                        ThreadPool* pool) {
  if (snapshot.tasks().size() > 25) {
    return Status::InvalidArgument("too many tasks for exact enumeration");
  }
  std::vector<int> busy_grids;
  for (int g = 0; g < snapshot.num_grids(); ++g) {
    if (!snapshot.TasksInGrid(g).empty()) busy_grids.push_back(g);
  }
  const double combos =
      std::pow(static_cast<double>(ladder.size()),
               static_cast<double>(busy_grids.size()));
  if (combos > 2e6) {
    return Status::InvalidArgument("price combination space too large");
  }
  int64_t total = 1;
  for (size_t i = 0; i < busy_grids.size(); ++i) total *= ladder.size();

  // The graph depends only on geometry, never on prices: build it ONCE for
  // the whole odometer sweep instead of once per price combination.
  const BipartiteGraph graph = BipartiteGraph::Build(
      snapshot.tasks(), snapshot.workers(), snapshot.grid());

  const int num_workers = pool == nullptr ? 1 : pool->num_threads();
  std::vector<SweepScratch> scratch(num_workers);
  for (auto& s : scratch) {
    s.priced.reserve(snapshot.tasks().size());
  }

  const auto shards = SplitRange(total, kOracleSweepShards);
  const SweepBest best = ParallelReduce<SweepBest>(
      pool, shards, SweepBest{},
      [&](int /*shard*/, const IndexRange& range, int worker) {
        return SweepRange(graph, snapshot, truth, ladder, busy_grids,
                          range.begin, range.end, &scratch[worker]);
      },
      [](SweepBest acc, SweepBest partial) {
        // Deterministic argmax: larger value wins; equal values keep the
        // lower combination index (partials arrive in shard order, but this
        // rule makes the reduction order-independent too).
        if (partial.value > acc.value ||
            (partial.value == acc.value && partial.combo < acc.combo)) {
          return partial;
        }
        return acc;
      });

  OracleSearchResult result;
  result.grid_prices.assign(snapshot.num_grids(), ladder.p_min());
  result.expected_revenue = best.value;
  std::vector<int> choice(busy_grids.size());
  DecodeCombo(best.combo, ladder.size(), &choice);
  for (size_t i = 0; i < busy_grids.size(); ++i) {
    result.grid_prices[busy_grids[i]] = ladder.price(choice[i]);
  }
  return result;
}

}  // namespace maps
