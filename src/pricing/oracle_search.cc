#include "pricing/oracle_search.h"

#include <cmath>

#include "graph/bipartite_graph.h"
#include "graph/possible_worlds.h"
#include "util/logging.h"

namespace maps {

namespace {

/// Scores one price assignment against a graph built once by the caller.
/// `priced` and `ws` are caller-owned scratch so the odometer loop performs
/// no per-combination allocation.
double ScorePrices(const BipartiteGraph& graph, const MarketSnapshot& snapshot,
                   const DemandOracle& truth,
                   const std::vector<double>& grid_prices,
                   std::vector<PricedTask>* priced,
                   PossibleWorldsWorkspace* ws) {
  priced->clear();
  for (const Task& t : snapshot.tasks()) {
    const double p = grid_prices[t.grid];
    priced->push_back(
        PricedTask{t.distance, p, truth.TrueAcceptRatio(t.grid, p)});
  }
  return ExactExpectedRevenue(graph, *priced, ws);
}

}  // namespace

double ExpectedRevenueOfPrices(const MarketSnapshot& snapshot,
                               const DemandOracle& truth,
                               const std::vector<double>& grid_prices) {
  const BipartiteGraph graph = BipartiteGraph::Build(
      snapshot.tasks(), snapshot.workers(), snapshot.grid());
  std::vector<PricedTask> priced;
  priced.reserve(snapshot.tasks().size());
  PossibleWorldsWorkspace ws;
  return ScorePrices(graph, snapshot, truth, grid_prices, &priced, &ws);
}

Result<OracleSearchResult> OracleSearch(const MarketSnapshot& snapshot,
                                        const DemandOracle& truth,
                                        const PriceLadder& ladder) {
  if (snapshot.tasks().size() > 25) {
    return Status::InvalidArgument("too many tasks for exact enumeration");
  }
  std::vector<int> busy_grids;
  for (int g = 0; g < snapshot.num_grids(); ++g) {
    if (!snapshot.TasksInGrid(g).empty()) busy_grids.push_back(g);
  }
  const double combos =
      std::pow(static_cast<double>(ladder.size()),
               static_cast<double>(busy_grids.size()));
  if (combos > 2e6) {
    return Status::InvalidArgument("price combination space too large");
  }

  // The graph depends only on geometry, never on prices: build it ONCE for
  // the whole odometer sweep instead of once per price combination.
  const BipartiteGraph graph = BipartiteGraph::Build(
      snapshot.tasks(), snapshot.workers(), snapshot.grid());
  std::vector<PricedTask> priced;
  priced.reserve(snapshot.tasks().size());
  PossibleWorldsWorkspace ws;

  OracleSearchResult best;
  best.grid_prices.assign(snapshot.num_grids(), ladder.p_min());
  best.expected_revenue = -1.0;

  std::vector<int> choice(busy_grids.size(), 0);
  std::vector<double> prices(snapshot.num_grids(), ladder.p_min());
  while (true) {
    for (size_t i = 0; i < busy_grids.size(); ++i) {
      prices[busy_grids[i]] = ladder.price(choice[i]);
    }
    const double value =
        ScorePrices(graph, snapshot, truth, prices, &priced, &ws);
    if (value > best.expected_revenue) {
      best.expected_revenue = value;
      best.grid_prices = prices;
    }
    // Odometer increment.
    size_t pos = 0;
    while (pos < choice.size()) {
      if (++choice[pos] < ladder.size()) break;
      choice[pos] = 0;
      ++pos;
    }
    if (pos == choice.size()) break;
    if (choice.empty()) break;
  }
  return best;
}

}  // namespace maps
