#include "pricing/maps.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace maps {

namespace {

constexpr double kInfDelta = std::numeric_limits<double>::infinity();
// Increases at or below this are "zero" (finalize the grid).
constexpr double kDeltaEps = 1e-12;
// Priority scale for plateau growth (see PriceRound): small enough that a
// plateau step always ranks below any real revenue increase.
constexpr double kPlateauPriority = 1e-9;
// Shard cap for the per-round engine precompute: a constant of the
// consumer, never the thread count (DESIGN.md §8).
constexpr int64_t kEnginePrecomputeShards = 64;

}  // namespace

Maps::Maps(const MapsOptions& options)
    : options_(options),
      ladder_(MakeLadderFromConfig(options.pricing).ValueOrDie()),
      base_(options.pricing) {}

void Maps::EnsureGridState(int num_grids) {
  const int current = static_cast<int>(ucb_.size());
  if (current == num_grids) return;
  if (current > 0) {
    // A different grid count means a different partition of the region, so
    // grid indices no longer denote the same geographic cells — carrying
    // statistics over by index would silently price cells from another
    // area's learned demand. Reset everything, but never silently: this
    // discards all learned UCB/change-detector state.
    MAPS_LOG(Warning) << "MAPS grid count changed from " << current << " to "
                      << num_grids
                      << "; resetting all learned UCB/change-detector state"
                      << " (cell indices changed meaning)";
    ++grid_state_resets_;
  }
  ucb_.clear();
  change_.clear();
  ucb_.reserve(num_grids);
  change_.reserve(num_grids);
  for (int g = 0; g < num_grids; ++g) {
    ucb_.emplace_back(&ladder_);
    std::vector<ChangeDetector> row;
    row.reserve(ladder_.size());
    for (int i = 0; i < ladder_.size(); ++i) {
      row.emplace_back(options_.change_window);
    }
    change_.push_back(std::move(row));
  }
}

int64_t Maps::UcbObservations(int g) const {
  MAPS_CHECK(g >= 0 && g < static_cast<int>(ucb_.size()));
  return ucb_[g].total_observations();
}

Status Maps::Warmup(const GridPartition& grid, DemandOracle* history) {
  EnsureGridState(grid.num_cells());
  if (options_.warm_start_from_base) {
    MAPS_RETURN_NOT_OK(base_.Warmup(grid, history));
    // Seed the UCB tables with Algorithm 1's probe statistics so online
    // pricing starts from the same demand knowledge the base price has.
    const auto& ratios = base_.observed_accept_ratios();
    const auto& probes = base_.probes_per_rung();
    for (int g = 0; g < grid.num_cells(); ++g) {
      for (int i = 0; i < ladder_.size(); ++i) {
        const int64_t trials = probes[i];
        const int64_t accepts = static_cast<int64_t>(
            std::llround(ratios[g][i] * static_cast<double>(trials)));
        ucb_[g].ObserveBulk(i, trials, accepts);
      }
    }
  }
  warmed_up_ = true;
  return Status::OK();
}

Maps::Maximizer Maps::CalcMaximizer(int g,
                                    const std::vector<double>& dist_prefix,
                                    double total_dist, int n) const {
  MAPS_DCHECK_GT(total_dist, 0.0);
  MAPS_DCHECK(n >= 1 && n < static_cast<int>(dist_prefix.size()));

  if (options_.supply_approx == MapsOptions::SupplyApprox::kMinOfCurves) {
    const double topn_dist = dist_prefix[n];
    const double ratio = std::min(topn_dist / total_dist, 1.0);
    Maximizer best;
    double best_index = -1.0;
    // Algorithm 3 iterates prices from large to small with a strict '<'
    // improvement test, so ties keep the larger price.
    for (int i = ladder_.size() - 1; i >= 0; --i) {
      const double p = ladder_.price(i);
      // The paper's index, uncapped: clamping the optimistic term (e.g. at
      // p, since S <= 1) would break UCB's shift-neutrality — low rungs
      // whose optimistic value exceeds the clamp get clipped while high
      // rungs do not, biasing the argmax upward. Unexplored rungs
      // (radius = +inf) are bounded by the supply term, exactly as Eq. (1)
      // intends.
      const double optimistic = ucb_[g].OptimisticUnitRevenue(i);
      const double index = std::min(optimistic, ratio * p);
      if (index > best_index) {
        best_index = index;
        best.price = p;
        best.l_value = total_dist * index;
        best.unit_revenue = p * ucb_[g].mean(i);
      }
      best.ceiling = std::max(best.ceiling, std::min(optimistic, p));
    }
    return best;
  }

  // Appendix C.6's alternative: L = sum_{i<=k} d_{r_i} * p * S(p) with
  // k = min(ceil(|R| * S(p)), n) — the expected accepted demand truncated
  // by the allocated supply, valued at the expected unit revenue.
  const int num_tasks = static_cast<int>(dist_prefix.size()) - 1;
  Maximizer best;
  double best_value = -1.0;
  for (int i = ladder_.size() - 1; i >= 0; --i) {
    const double p = ladder_.price(i);
    // Optimistic acceptance ratio derived from the UCB index, in [0, 1].
    const double s_opt =
        std::min(ucb_[g].OptimisticUnitRevenue(i) / p, 1.0);
    const int expected_accepts =
        static_cast<int>(std::ceil(num_tasks * s_opt));
    auto value_with_supply = [&](int supply) {
      const int k = std::min(expected_accepts, supply);
      return dist_prefix[k] * p * s_opt;
    };
    const double value = value_with_supply(n);
    if (value > best_value) {
      best_value = value;
      best.price = p;
      best.l_value = value;
      best.unit_revenue = p * ucb_[g].mean(i);
    }
    // Ceiling: the value with unbounded supply (k = expected accepts).
    best.ceiling =
        std::max(best.ceiling, value_with_supply(num_tasks) / total_dist);
  }
  return best;
}

void Maps::PrecomputeRoundEngine(int num_grids) {
  const int num_rungs = ladder_.size();
  engine_opt_.resize(static_cast<size_t>(num_grids) * num_rungs);
  engine_punit_.resize(static_cast<size_t>(num_grids) * num_rungs);
  engine_ceiling_.resize(num_grids);
  engine_cursor_.resize(num_grids);
  // Writes are disjoint per grid and the UCB state is frozen for the whole
  // round, so the fill is bit-identical for any pool size (including none).
  const auto shards = SplitRange(num_grids, kEnginePrecomputeShards);
  ParallelFor(pool_, shards,
              [&](int /*shard*/, const IndexRange& range, int /*worker*/) {
                for (int64_t g = range.begin; g < range.end; ++g) {
                  double* opt = &engine_opt_[g * num_rungs];
                  double* punit = &engine_punit_[g * num_rungs];
                  double ceiling = 0.0;
                  // Descending, mirroring the reference scan's fold order.
                  for (int i = num_rungs - 1; i >= 0; --i) {
                    const double p = ladder_.price(i);
                    opt[i] = ucb_[g].OptimisticUnitRevenue(i);
                    punit[i] = p * ucb_[g].mean(i);
                    ceiling = std::max(ceiling, std::min(opt[i], p));
                  }
                  engine_ceiling_[g] = ceiling;
                  engine_cursor_[g] =
                      EngineCursor{num_rungs - 1, -1, -1.0};
                }
              });
}

Maps::Maximizer Maps::EvalMaximizerEngine(
    int g, const std::vector<double>& dist_prefix, double total_dist,
    int n) {
  MAPS_DCHECK_GT(total_dist, 0.0);
  MAPS_DCHECK(n >= 1 && n < static_cast<int>(dist_prefix.size()));
  const int num_rungs = ladder_.size();
  const double ratio = std::min(dist_prefix[n] / total_dist, 1.0);
  const double* opt = &engine_opt_[static_cast<size_t>(g) * num_rungs];
  EngineCursor& cur = engine_cursor_[g];

  // The ratio is non-decreasing in n and n is non-decreasing across a
  // grid's evaluations within a round, so rungs saturate (optimistic value
  // <= ratio * price) top-down and never desaturate: `front` only moves
  // left. A saturated rung's index is its (round-constant) optimistic
  // value; the champion among them folds in decreasing rung order, so the
  // strict '>' keeps the larger price on ties — exactly the reference
  // scan's rule.
  while (cur.front >= 0 &&
         opt[cur.front] <= ratio * ladder_.price(cur.front)) {
    if (opt[cur.front] > cur.sat_key) {
      cur.sat_key = opt[cur.front];
      cur.sat_idx = cur.front;
    }
    --cur.front;
  }

  // Unsaturated rungs all have index ratio * price, so the best of them is
  // the highest-priced one: `front` itself. Rungs below can never win
  // (smaller price, same ratio), and on exact ties the scan would keep the
  // higher rung — which is the saturated champion when both exist, since
  // every saturated rung lies above `front`.
  int best_i;
  double best_key;
  if (cur.front < 0) {
    best_i = cur.sat_idx;
    best_key = cur.sat_key;
  } else {
    const double unsat_key = ratio * ladder_.price(cur.front);
    if (cur.sat_idx >= 0 && cur.sat_key >= unsat_key) {
      best_i = cur.sat_idx;
      best_key = cur.sat_key;
    } else {
      best_i = cur.front;
      best_key = unsat_key;
    }
  }
  MAPS_DCHECK_GE(best_i, 0);

  Maximizer best;
  best.price = ladder_.price(best_i);
  best.l_value = total_dist * best_key;
  best.unit_revenue =
      engine_punit_[static_cast<size_t>(g) * num_rungs + best_i];
  best.ceiling = engine_ceiling_[g];
  return best;
}

void Maps::PushHeap(const HeapEntry& entry) {
  heap_.push_back(entry);
  std::push_heap(heap_.begin(), heap_.end(), &Maps::HeapBefore);
}

Maps::HeapEntry Maps::PopHeap() {
  std::pop_heap(heap_.begin(), heap_.end(), &Maps::HeapBefore);
  const HeapEntry top = heap_.back();
  heap_.pop_back();
  return top;
}

void Maps::ResetRoundScratch(int num_grids, double p_b) {
  last_supply_.assign(num_grids, 0);
  last_delta_trace_.resize(num_grids);
  for (auto& trace : last_delta_trace_) trace.clear();
  pending_path_.resize(num_grids);
  // Paths recorded last round reference last round's graph; CommitPath
  // cannot detect cross-graph staleness, so drop them (capacity retained).
  for (auto& path : pending_path_) path.clear();

  cur_price_.assign(num_grids, p_b);
  cur_l_.assign(num_grids, 0.0);
  cur_unit_.assign(num_grids, 0.0);
  finalized_.assign(num_grids, 0);
  heap_.clear();
}

Status Maps::PriceRound(const MarketSnapshot& snapshot,
                        std::vector<double>* grid_prices) {
  if (!warmed_up_) {
    return Status::FailedPrecondition("MAPS used before Warmup");
  }
  const int num_grids = snapshot.num_grids();
  EnsureGridState(num_grids);

  const double p_b =
      options_.warm_start_from_base
          ? base_.base_price()
          : ladder_.Snap(std::sqrt(ladder_.p_min() * ladder_.p_max()));

  // Line 1: the bipartite graph under the range constraints. Graph,
  // matching, heap, and per-grid scratch are pooled members — steady-state
  // rounds perform no heap allocation.
  BipartiteGraph::BuildInto(snapshot.tasks(), snapshot.workers(),
                            snapshot.grid(), &build_ws_, &graph_);
  // Line 2: the pre-matching M'.
  pre_matching_.Reset(&graph_);

  grid_prices->assign(num_grids, p_b);
  ResetRoundScratch(num_grids, p_b);

  engine_active_ =
      options_.use_maximizer_engine &&
      options_.supply_approx == MapsOptions::SupplyApprox::kMinOfCurves;
  if (engine_active_) PrecomputeRoundEngine(num_grids);

  uint64_t seq = 0;
  // Lines 3-4: one infinity-keyed tuple per grid.
  for (int g = 0; g < num_grids; ++g) {
    PushHeap(HeapEntry{kInfDelta, g, 0, p_b, 0.0, 0.0, seq++});
  }

  // Lines 5-21.
  while (!heap_.empty()) {
    const HeapEntry e = PopHeap();
    const int g = e.grid;
    const auto& grid_tasks = snapshot.TasksInGrid(g);

    if (e.delta != kInfDelta) {
      if (e.delta <= kDeltaEps) {
        // Lines 11-14: zero increase => final price, capped at p_max.
        grid_prices->at(g) = std::min(e.p_new, ladder_.p_max());
        finalized_[g] = 1;
        continue;
      }
      // Lines 9-10: admit the increase. The probe that priced this entry
      // recorded its augmenting path; if no other grid's admission touched
      // it since, applying it is O(path length). Otherwise fall back to one
      // fresh single-pass search-and-commit; only when that also fails has
      // the grid lost the ability to grow.
      bool augmented = pre_matching_.CommitPath(pending_path_[g]);
      if (!augmented) {
        augmented =
            pre_matching_.AugmentFirst(grid_tasks) != Matching::kUnmatched;
      }
      if (!augmented) {
        PushHeap(HeapEntry{0.0, g, last_supply_[g], cur_price_[g], cur_l_[g],
                           cur_unit_[g], seq++});
        continue;
      }
      last_supply_[g] = e.n_new;
      cur_price_[g] = e.p_new;
      cur_l_[g] = e.l_new;
      cur_unit_[g] = e.unit_new;
      last_delta_trace_[g].push_back(e.delta);
    }

    // Lines 16-21: attempt to grow the grid's supply by one worker. The
    // probe doubles as the admission's path search (recorded for the later
    // commit), so each pop walks the alternating tree at most once.
    if (grid_tasks.empty() ||
        pre_matching_.FindAugmentablePath(grid_tasks, &pending_path_[g]) ==
            Matching::kUnmatched) {
      PushHeap(HeapEntry{0.0, g, last_supply_[g], cur_price_[g], cur_l_[g],
                         cur_unit_[g], seq++});
      continue;
    }
    const int n_next = last_supply_[g] + 1;
    const auto& dist_prefix = snapshot.DistancePrefixSumsInGrid(g);
    MAPS_DCHECK_LT(n_next, static_cast<int>(dist_prefix.size()));
    const double total = snapshot.TotalDistanceInGrid(g);
    const Maximizer maxi =
        engine_active_ ? EvalMaximizerEngine(g, dist_prefix, total, n_next)
                       : CalcMaximizer(g, dist_prefix, total, n_next);
    double delta =
        options_.delta_mode == MapsOptions::DeltaMode::kExpectedRevenueGain
            ? maxi.l_value - cur_l_[g]
            : maxi.unit_revenue - cur_unit_[g];
    if (delta <= kDeltaEps &&
        options_.delta_mode ==
            MapsOptions::DeltaMode::kExpectedRevenueGain) {
      // Plateau handling. On the continuous revenue curve a zero increase
      // is permanent (the paper's Lemma 9 argument), but on a discrete
      // ladder max_p min(opt(p), ratio*p) can stall and then jump: a high
      // rung saturates at its opt value while a better low rung is still
      // supply-bound. If headroom to the supply-unconstrained ceiling
      // remains, keep growing this grid — at a priority far below every
      // genuine increase, so plateau growth never steals a worker from a
      // grid with real marginal revenue.
      const double headroom = total * maxi.ceiling - maxi.l_value;
      if (headroom > 1e-9 * std::max(total, 1.0)) {
        delta = kPlateauPriority * headroom;
      }
    }
    if (delta <= kDeltaEps) {
      PushHeap(HeapEntry{0.0, g, last_supply_[g], cur_price_[g], cur_l_[g],
                         cur_unit_[g], seq++});
    } else {
      PushHeap(HeapEntry{delta, g, n_next, maxi.price, maxi.l_value,
                         maxi.unit_revenue, seq++});
    }
  }

  for (int g = 0; g < num_grids; ++g) {
    MAPS_DCHECK(finalized_[g]) << "grid " << g << " never finalized";
  }

  size_t round_bytes =
      graph_.FootprintBytes() + pre_matching_.FootprintBytes() +
      build_ws_.FootprintBytes() + heap_.capacity() * sizeof(HeapEntry) +
      (engine_opt_.capacity() + engine_punit_.capacity() +
       engine_ceiling_.capacity()) *
          sizeof(double) +
      engine_cursor_.capacity() * sizeof(EngineCursor);
  for (const auto& path : pending_path_) {
    round_bytes += path.edges.capacity() * sizeof(std::pair<int, int>);
  }
  peak_round_bytes_ = std::max(peak_round_bytes_, round_bytes);
  return Status::OK();
}

void Maps::ObserveFeedback(const MarketSnapshot& snapshot,
                           const std::vector<double>& grid_prices,
                           const std::vector<bool>& accepted) {
  MAPS_CHECK_EQ(accepted.size(), snapshot.tasks().size());
  MAPS_CHECK_EQ(static_cast<int>(grid_prices.size()), snapshot.num_grids());
  // The posted price — and therefore the snapped rung — is per grid, so
  // resolve each grid's rung once instead of once per task.
  feedback_rung_.resize(snapshot.num_grids());
  for (int g = 0; g < snapshot.num_grids(); ++g) {
    feedback_rung_[g] = ladder_.SnapIndex(grid_prices[g]);
  }
  for (size_t i = 0; i < snapshot.tasks().size(); ++i) {
    const int g = snapshot.tasks()[i].grid;
    const int idx = feedback_rung_[g];
    ucb_[g].Observe(idx, accepted[i]);
    if (options_.use_change_detector &&
        change_[g][idx].Observe(accepted[i])) {
      // S_g(p) drifted at this price: drop the rung's history and re-seed
      // it from the detector's just-completed window, which reflects the
      // post-change rate. Two deliberate deviations from a naive reading
      // of the paper (see DESIGN.md):
      //  * only the flagged rung is touched — the detector compares two
      //    noisy windows and false-flags ~16% of the time on stationary
      //    demand, so whole-grid resets would routinely destroy good
      //    estimates;
      //  * re-seeding (instead of resetting to "unobserved") prevents the
      //    rung from becoming infinitely optimistic and dragging the
      //    grid's price to p_max for dozens of periods while it relearns.
      ChangeDetector& det = change_[g][idx];
      const int64_t window = det.window_size();
      const int64_t window_accepts = static_cast<int64_t>(
          std::llround(det.reference_rate() * static_cast<double>(window)));
      ucb_[g].ResetRung(idx);
      ucb_[g].ObserveBulk(idx, window, window_accepts);
      ++change_resets_;
    }
  }
}

namespace {
constexpr uint32_t kMapsStateVersion = 1;
}  // namespace

Status Maps::SaveState(StateWriter* w) const {
  w->PutU32(kMapsStateVersion);
  MAPS_RETURN_NOT_OK(base_.SaveState(w));
  w->PutBool(warmed_up_);
  w->PutU64(ucb_.size());
  for (const auto& u : ucb_) u.Save(w);
  for (const auto& row : change_) {
    w->PutU64(row.size());
    for (const auto& det : row) det.Save(w);
  }
  w->PutI64(change_resets_);
  w->PutI64(grid_state_resets_);
  return Status::OK();
}

Status Maps::LoadState(StateReader* r) {
  uint32_t version;
  MAPS_RETURN_NOT_OK(r->GetU32(&version, "MAPS state version"));
  if (version != kMapsStateVersion) {
    return Status::InvalidArgument("unsupported MAPS state version " +
                                   std::to_string(version));
  }
  // Decode everything into temporaries; commit only when the whole payload
  // decoded, so a corrupt tail cannot leave the strategy half-restored.
  BasePricing base = base_;
  MAPS_RETURN_NOT_OK(base.LoadState(r));
  bool warmed_up;
  MAPS_RETURN_NOT_OK(r->GetBool(&warmed_up, "MAPS warmed_up"));
  uint64_t grids;
  MAPS_RETURN_NOT_OK(r->GetU64(&grids, "MAPS grid count"));
  // Each grid's UCB payload is at least its rung-count word.
  MAPS_RETURN_NOT_OK(CheckDecodedCount(*r, grids, 8, "MAPS grids"));
  std::vector<UcbEstimator> ucb;
  ucb.reserve(static_cast<size_t>(grids));
  for (uint64_t g = 0; g < grids; ++g) {
    ucb.emplace_back(&ladder_);
    MAPS_RETURN_NOT_OK(ucb.back().Load(r));
  }
  std::vector<std::vector<ChangeDetector>> change;
  change.reserve(static_cast<size_t>(grids));
  for (uint64_t g = 0; g < grids; ++g) {
    uint64_t row_n;
    MAPS_RETURN_NOT_OK(r->GetU64(&row_n, "MAPS detector rung count"));
    if (row_n != static_cast<uint64_t>(ladder_.size())) {
      return Status::InvalidArgument(
          "MAPS detector row has " + std::to_string(row_n) +
          " rungs, ladder has " + std::to_string(ladder_.size()));
    }
    std::vector<ChangeDetector> row;
    row.reserve(static_cast<size_t>(row_n));
    for (uint64_t i = 0; i < row_n; ++i) {
      row.emplace_back(options_.change_window);
      MAPS_RETURN_NOT_OK(row.back().Load(r));
    }
    change.push_back(std::move(row));
  }
  int64_t change_resets, grid_state_resets;
  MAPS_RETURN_NOT_OK(r->GetI64(&change_resets, "MAPS change_resets"));
  MAPS_RETURN_NOT_OK(r->GetI64(&grid_state_resets, "MAPS grid_state_resets"));
  if (change_resets < 0 || grid_state_resets < 0) {
    return Status::InvalidArgument("MAPS reset counters are negative");
  }

  base_ = std::move(base);
  warmed_up_ = warmed_up;
  ucb_ = std::move(ucb);
  change_ = std::move(change);
  change_resets_ = change_resets;
  grid_state_resets_ = grid_state_resets;
  return Status::OK();
}

size_t Maps::MemoryFootprintBytes() const {
  // Persistent learned state only; the pooled round scratch (graph +
  // pre-matching + engine tables) is tracked via peak_round_bytes().
  size_t bytes = base_.MemoryFootprintBytes();
  for (const auto& u : ucb_) bytes += u.FootprintBytes();
  bytes += change_.size() * ladder_.size() * sizeof(ChangeDetector);
  bytes += last_supply_.capacity() * sizeof(int);
  return bytes;
}

}  // namespace maps
