// Exact-oracle regret harness (the ground truth behind ROBUSTNESS.json).
//
// Two layers on top of the possible-world machinery:
//
//  * MonteCarloExpectedRevenueWithCI — the counter-based Monte-Carlo
//    estimator of possible_worlds.h extended with a confidence-interval
//    stopping rule, so mid-size instances (hundreds of tasks, where the 2^n
//    exact enumeration is hopeless) get an oracle score with a KNOWN error
//    bar. Worlds are consumed in fixed-size batches; after each batch the
//    normal-approximation half width z * stddev / sqrt(n) is compared
//    against the tolerance. Both the batch schedule and the per-batch
//    (sum, sum_squares) folds are pure functions of (seed, options), never
//    of the thread count, so the estimate — including WHEN it stops — is
//    bit-identical at 1, 2, or 8 threads.
//
//  * EvaluatePeriodRegret — scores one period's posted prices against the
//    best fixed ladder pricing in hindsight. Three oracle regimes, picked
//    per instance:
//      kExactPerGrid:  <= 25 tasks and a feasible combination space — the
//                      full OracleSearch odometer, exact per-grid optimum.
//      kExactUniform:  <= 25 tasks but too many busy grids — the best
//                      UNIFORM ladder price, each candidate scored exactly.
//      kMcUniform:     > 25 tasks — best uniform ladder price, every
//                      candidate (and the posted prices) scored by the
//                      CI-bounded Monte Carlo above.
//    The uniform fallback is a LOWER bound on the per-grid optimum, so
//    regret against it can be negative for strategies that exploit per-grid
//    differentiation; the report says which regime produced the number.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"
#include "graph/possible_worlds.h"
#include "market/demand_oracle.h"
#include "market/market_state.h"
#include "stats/price_ladder.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace maps {

/// \brief Stopping rule for the CI-bounded Monte-Carlo oracle. The estimate
/// stops at the first multiple of `batch_worlds` where the half width falls
/// below max(rel_half_width * |mean|, abs_half_width), or at `max_worlds`.
struct McCiOptions {
  /// Seed family: world w draws from CounterRng stream (seed, w).
  uint64_t seed = 0x6f7263636949ULL;  // "orcciI"
  /// Worlds added between two half-width checks. Part of the determinism
  /// contract: the sampled world sequence is identical for any thread count
  /// because batch boundaries are a function of this constant only.
  int batch_worlds = 1024;
  /// Hard cap on sampled worlds (the estimate reports converged = false
  /// when it stops here).
  int64_t max_worlds = 1 << 17;
  /// Two-sided normal quantile of the interval (default: 99%).
  double z = 2.5758293035489004;
  /// Relative tolerance: stop when half_width <= rel_half_width * |mean|.
  double rel_half_width = 0.02;
  /// Absolute floor so a near-zero mean (empty-ish markets) still stops.
  double abs_half_width = 1e-3;
};

/// \brief A Monte-Carlo estimate with its half width.
struct McCiEstimate {
  double mean = 0.0;
  /// z * sample-stddev / sqrt(worlds); 0 when worlds < 2.
  double half_width = 0.0;
  int64_t worlds = 0;
  /// True when the stopping rule was satisfied before max_worlds.
  bool converged = false;
};

/// \brief CI-bounded Monte-Carlo expected revenue of priced tasks.
/// Bit-identical — mean, half width, world count, convergence flag — for
/// any thread count, including `pool == nullptr`.
McCiEstimate MonteCarloExpectedRevenueWithCI(
    const BipartiteGraph& graph, const std::vector<PricedTask>& tasks,
    const McCiOptions& options, ThreadPool* pool,
    std::vector<PossibleWorldsWorkspace>* workspaces);

/// \brief Convenience overload: builds the graph and priced tasks from a
/// snapshot, the true demand, and a per-grid price vector.
McCiEstimate MonteCarloRevenueOfPricesWithCI(
    const MarketSnapshot& snapshot, const DemandOracle& truth,
    const std::vector<double>& grid_prices, const McCiOptions& options,
    ThreadPool* pool = nullptr);

/// \brief Which oracle regime scored the hindsight optimum.
enum class OracleMode {
  kExactPerGrid,  ///< full OracleSearch odometer, exact per-grid optimum
  kExactUniform,  ///< best uniform ladder price, candidates scored exactly
  kMcUniform,     ///< best uniform ladder price, candidates scored by MC-CI
};

const char* OracleModeName(OracleMode mode);

/// \brief Knobs for EvaluatePeriodRegret.
struct RegretOptions {
  /// Stopping rule shared by every MC-scored quantity of the evaluation.
  McCiOptions mc;
  /// Beyond this many tasks the 2^n exact enumeration is off the table.
  int max_exact_tasks = 25;
  /// Beyond this many ladder combinations the per-grid odometer is off the
  /// table (matches the OracleSearch guard).
  double max_exact_combinations = 2e6;
  /// Optional pool; results are bit-identical with or without it.
  ThreadPool* pool = nullptr;
};

/// \brief One period's regret versus the hindsight oracle.
struct PeriodRegret {
  OracleMode oracle_mode = OracleMode::kExactPerGrid;
  /// True when BOTH sides were scored by exact enumeration (half widths 0).
  bool exact = false;
  /// Expected revenue of the oracle's prices (and its error bar).
  double oracle_value = 0.0;
  double oracle_half_width = 0.0;
  /// Expected revenue of the strategy's posted prices (and its error bar).
  double posted_value = 0.0;
  double posted_half_width = 0.0;
  /// oracle_value - posted_value. May be negative in the uniform regimes.
  double regret = 0.0;
  /// Total Monte-Carlo worlds sampled across both sides (0 when exact).
  int64_t mc_worlds = 0;
  /// The oracle's full per-grid price vector.
  std::vector<double> oracle_prices;
};

/// \brief Scores `posted_prices` for the period in `snapshot` against the
/// best fixed ladder pricing in hindsight under the TRUE demand. The
/// snapshot must carry the period's tasks and available workers;
/// `posted_prices` must have one entry per grid cell. Deterministic and
/// bit-identical for any thread count.
Result<PeriodRegret> EvaluatePeriodRegret(
    const MarketSnapshot& snapshot, const DemandOracle& truth,
    const PriceLadder& ladder, const std::vector<double>& posted_prices,
    const RegretOptions& options = {});

}  // namespace maps
