// SDE baseline (Sec. 5.1): prices by the supply-demand DIFFERENCE through an
// exponential,
//   p^{tg} = p_b * (1 + 2 * e^{|W^{tg}| - |R^{tg}|})  when |R^{tg}| > |W^{tg}|,
//   p^{tg} = p_b                                      otherwise.
// The exponent is negative in the surge branch, so the multiplier lies in
// (1, 3]; prices are clamped to [p_min, p_max].

#pragma once

#include "pricing/base_pricing.h"
#include "pricing/strategy.h"

namespace maps {

/// \brief Supply-Demand-difference-Exponential heuristic baseline.
class Sde : public PricingStrategy {
 public:
  explicit Sde(const PricingConfig& config);

  std::string name() const override { return "SDE"; }

  Status Warmup(const GridPartition& grid, DemandOracle* history) override;

  void LendPool(ThreadPool* pool) override { base_.LendPool(pool); }

  Status PriceRound(const MarketSnapshot& snapshot,
                    std::vector<double>* grid_prices) override;

  size_t MemoryFootprintBytes() const override;

  /// SDE's only learned state is the nested BaseP warm-up; the exponential
  /// rule itself is stateless, so state hooks delegate to base_ (which
  /// commits all-or-nothing).
  Status SaveState(StateWriter* w) const override {
    return base_.SaveState(w);
  }
  Status LoadState(StateReader* r) override { return base_.LoadState(r); }

  double base_price() const { return base_.base_price(); }

 private:
  PricingConfig config_;
  BasePricing base_;
};

}  // namespace maps
