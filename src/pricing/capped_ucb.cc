#include "pricing/capped_ucb.h"

#include <algorithm>
#include <cmath>

#include "pricing/base_pricing.h"
#include "util/logging.h"

namespace maps {

CappedUcb::CappedUcb(const PricingConfig& config, bool warm_start)
    : config_(config),
      warm_start_(warm_start),
      ladder_(MakeLadderFromConfig(config).ValueOrDie()) {}

void CappedUcb::EnsureGridState(int num_grids) {
  const int current = static_cast<int>(ucb_.size());
  if (current == num_grids) return;
  if (current > 0) {
    // Same policy as Maps::EnsureGridState (ported from the PR 1 fix): a
    // different grid count means a different partition, so indices no
    // longer denote the same cells and carrying statistics over by position
    // would mislearn. Reset — but never silently: all learned UCB state and
    // the arrival log are discarded, so log and count it.
    MAPS_LOG(Warning) << "CappedUCB grid count changed from " << current
                      << " to " << num_grids
                      << "; resetting all learned UCB state and arrival logs"
                      << " (cell indices changed meaning)";
    ++grid_state_resets_;
  }
  ucb_.clear();
  ucb_.reserve(num_grids);
  for (int g = 0; g < num_grids; ++g) ucb_.emplace_back(&ladder_);
  arrivals_.assign(num_grids, {});
}

int64_t CappedUcb::UcbObservations(int g) const {
  MAPS_CHECK(g >= 0 && g < static_cast<int>(ucb_.size()));
  return ucb_[g].total_observations();
}

Status CappedUcb::Warmup(const GridPartition& grid, DemandOracle* history) {
  EnsureGridState(grid.num_cells());
  if (warm_start_) {
    if (history == nullptr) {
      return Status::InvalidArgument("CappedUCB warm-up needs history");
    }
    // Same probe schedule as Algorithm 1, for a fair comparison: every
    // learning strategy starts with identical demand knowledge. Shares the
    // budgets AND the counter-stream schedule (and therefore the exact
    // draws) with BasePricing::Warmup; shards over a lent pool,
    // bit-identical without.
    const int k = ladder_.size();
    const std::vector<int64_t> probes = ProbeBudgets(ladder_, config_);
    const std::vector<int64_t> accepts =
        RunProbeSchedule(history, grid.num_cells(), ladder_, probes, pool_);
    for (int g = 0; g < grid.num_cells(); ++g) {
      for (int i = 0; i < k; ++i) {
        ucb_[g].ObserveBulk(i, probes[i], accepts[g * k + i]);
      }
    }
  }
  warmed_up_ = true;
  return Status::OK();
}

Status CappedUcb::PriceRound(const MarketSnapshot& snapshot,
                             std::vector<double>* grid_prices) {
  if (!warmed_up_) {
    return Status::FailedPrecondition("CappedUCB used before Warmup");
  }
  EnsureGridState(snapshot.num_grids());
  grid_prices->assign(snapshot.num_grids(), ladder_.p_min());
  for (int g = 0; g < snapshot.num_grids(); ++g) {
    const double demand =
        static_cast<double>(snapshot.TasksInGrid(g).size());
    const double supply =
        static_cast<double>(snapshot.WorkersInGrid(g).size());
    arrivals_[g].emplace_back(static_cast<int32_t>(demand),
                              static_cast<int32_t>(supply));
    double best_index = -1.0;
    double best_price = ladder_.p_min();
    // Ascending scan with strict '>' implements the paper's general tie
    // rule (smaller price wins ties). This matters when |W^{tg}| = 0: every
    // index is zero and CappedUCB, blind to workers that could roam in from
    // neighboring grids, prices at p_min.
    for (int i = 0; i < ladder_.size(); ++i) {
      const double p = ladder_.price(i);
      // Uncapped optimism, same reasoning as Maps::CalcMaximizer: the
      // supply term bounds unexplored rungs.
      const double optimistic = ucb_[g].OptimisticUnitRevenue(i);
      const double index = std::min(demand * optimistic, supply * p);
      if (index > best_index) {
        best_index = index;
        best_price = p;
      }
    }
    (*grid_prices)[g] = best_price;
  }
  return Status::OK();
}

void CappedUcb::ObserveFeedback(const MarketSnapshot& snapshot,
                                const std::vector<double>& grid_prices,
                                const std::vector<bool>& accepted) {
  MAPS_CHECK_EQ(accepted.size(), snapshot.tasks().size());
  MAPS_CHECK_EQ(static_cast<int>(grid_prices.size()), snapshot.num_grids());
  // Per-grid prices snap to the same rung for every task in the grid;
  // resolve each grid once (mirrors Maps::ObserveFeedback).
  feedback_rung_.resize(snapshot.num_grids());
  for (int g = 0; g < snapshot.num_grids(); ++g) {
    feedback_rung_[g] = ladder_.SnapIndex(grid_prices[g]);
  }
  for (size_t i = 0; i < snapshot.tasks().size(); ++i) {
    const int g = snapshot.tasks()[i].grid;
    ucb_[g].Observe(feedback_rung_[g], accepted[i]);
  }
}

namespace {
constexpr uint32_t kCappedUcbStateVersion = 1;
}  // namespace

Status CappedUcb::SaveState(StateWriter* w) const {
  w->PutU32(kCappedUcbStateVersion);
  w->PutBool(warmed_up_);
  w->PutU64(ucb_.size());
  for (const auto& u : ucb_) u.Save(w);
  for (const auto& log : arrivals_) {
    w->PutU64(log.size());
    for (const auto& [demand, supply] : log) {
      w->PutI32(demand);
      w->PutI32(supply);
    }
  }
  w->PutI64(grid_state_resets_);
  return Status::OK();
}

Status CappedUcb::LoadState(StateReader* r) {
  uint32_t version;
  MAPS_RETURN_NOT_OK(r->GetU32(&version, "CappedUCB state version"));
  if (version != kCappedUcbStateVersion) {
    return Status::InvalidArgument("unsupported CappedUCB state version " +
                                   std::to_string(version));
  }
  bool warmed_up;
  MAPS_RETURN_NOT_OK(r->GetBool(&warmed_up, "CappedUCB warmed_up"));
  uint64_t grids;
  MAPS_RETURN_NOT_OK(r->GetU64(&grids, "CappedUCB grid count"));
  MAPS_RETURN_NOT_OK(CheckDecodedCount(*r, grids, 8, "CappedUCB grids"));
  std::vector<UcbEstimator> ucb;
  ucb.reserve(static_cast<size_t>(grids));
  for (uint64_t g = 0; g < grids; ++g) {
    ucb.emplace_back(&ladder_);
    MAPS_RETURN_NOT_OK(ucb.back().Load(r));
  }
  std::vector<std::vector<std::pair<int32_t, int32_t>>> arrivals(
      static_cast<size_t>(grids));
  for (auto& log : arrivals) {
    uint64_t n;
    MAPS_RETURN_NOT_OK(r->GetU64(&n, "CappedUCB arrival count"));
    MAPS_RETURN_NOT_OK(CheckDecodedCount(*r, n, 8, "CappedUCB arrivals"));
    log.resize(static_cast<size_t>(n));
    for (auto& [demand, supply] : log) {
      MAPS_RETURN_NOT_OK(r->GetI32(&demand, "CappedUCB arrival demand"));
      MAPS_RETURN_NOT_OK(r->GetI32(&supply, "CappedUCB arrival supply"));
    }
  }
  int64_t grid_state_resets;
  MAPS_RETURN_NOT_OK(
      r->GetI64(&grid_state_resets, "CappedUCB grid_state_resets"));
  if (grid_state_resets < 0) {
    return Status::InvalidArgument("CappedUCB reset counter is negative");
  }

  warmed_up_ = warmed_up;
  ucb_ = std::move(ucb);
  arrivals_ = std::move(arrivals);
  grid_state_resets_ = grid_state_resets;
  return Status::OK();
}

size_t CappedUcb::MemoryFootprintBytes() const {
  size_t bytes = ladder_.prices().capacity() * sizeof(double);
  for (const auto& u : ucb_) bytes += u.FootprintBytes();
  for (const auto& log : arrivals_) {
    bytes += log.capacity() * sizeof(std::pair<int32_t, int32_t>);
  }
  return bytes;
}

}  // namespace maps
