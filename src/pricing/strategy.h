// PricingStrategy: the interface every pricing scheme implements.
//
// Information flow mirrors the real platform:
//   1. Warmup(): the strategy may probe historical requesters (offer a price,
//      observe accept/reject) before the evaluation horizon starts.
//   2. PriceRound(): each time period, given the issued tasks and available
//      workers (never the valuations), emit one unit price per grid.
//   3. ObserveFeedback(): after requesters decide, the strategy sees which
//      tasks accepted — the only demand signal available online.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "market/demand_oracle.h"
#include "market/market_state.h"
#include "stats/price_ladder.h"
#include "util/serial.h"
#include "util/status.h"

namespace maps {

class ThreadPool;

/// \brief Shared pricing knobs (Algorithm 1 parameters; Example 4 defaults).
struct PricingConfig {
  double p_min = 1.0;   ///< lower bound of candidate prices
  double p_max = 5.0;   ///< upper bound of candidate prices
  double alpha = 0.5;   ///< ladder multiplier: successive prices differ by (1+alpha)
  double eps = 0.2;     ///< Hoeffding accuracy target of Algorithm 1
  double delta = 0.01;  ///< Hoeffding failure probability of Algorithm 1

  /// Optional explicit candidate set overriding the geometric ladder
  /// (the paper's running example prices at {1, 2, 3}). When non-empty it
  /// must be strictly ascending; p_min/p_max are taken from its endpoints.
  std::vector<double> explicit_ladder;
};

/// \brief Builds the candidate ladder a config describes (explicit set when
/// given, geometric otherwise).
inline Result<PriceLadder> MakeLadderFromConfig(const PricingConfig& config) {
  if (!config.explicit_ladder.empty()) {
    return PriceLadder::FromPrices(config.explicit_ladder);
  }
  return PriceLadder::Make(config.p_min, config.p_max, config.alpha);
}

/// \brief Abstract pricing strategy.
class PricingStrategy {
 public:
  virtual ~PricingStrategy() = default;

  /// Display name used in benchmark tables ("MAPS", "BaseP", ...).
  virtual std::string name() const = 0;

  /// One-off training against historical demand. `history` yields fresh
  /// accept/reject probes; implementations must not assume anything else
  /// about it. Default: no warm-up.
  virtual Status Warmup(const GridPartition& grid, DemandOracle* history) {
    (void)grid;
    (void)history;
    return Status::OK();
  }

  /// Lends a thread pool for the strategy's internal parallelism (the
  /// Algorithm-1 warm-up probe schedule, MAPS's per-round maximizer
  /// precompute). Non-owning: the pool must outlive its use by the
  /// strategy — lending nullptr clears a previously lent pool, which
  /// callers reusing a strategy across pool lifetimes must do. A lent
  /// pool must never change results —
  /// strategies shard work per the DESIGN.md §8/§9 determinism policy, so
  /// output is bit-identical with or without one. Do NOT lend a pool whose
  /// workers are executing this strategy (e.g. inside an experiment-runner
  /// cell): nested waits can deadlock a fixed pool. Default: ignore.
  virtual void LendPool(ThreadPool* pool) { (void)pool; }

  /// Computes the unit price for every grid for this period.
  /// \param[out] grid_prices resized to snapshot.num_grids()
  virtual Status PriceRound(const MarketSnapshot& snapshot,
                            std::vector<double>* grid_prices) = 0;

  /// Reports requester decisions: accepted[i] corresponds to
  /// snapshot.tasks()[i]. Default: ignore.
  virtual void ObserveFeedback(const MarketSnapshot& snapshot,
                               const std::vector<double>& grid_prices,
                               const std::vector<bool>& accepted) {
    (void)snapshot;
    (void)grid_prices;
    (void)accepted;
  }

  /// Current live footprint of the strategy's internal state, for the
  /// paper's memory plots. Default 0 (stateless).
  virtual size_t MemoryFootprintBytes() const { return 0; }

  /// Serializes the strategy's learned state for checkpointing (DESIGN.md
  /// §12). Configuration (the ladder, tuning options) is NOT serialized —
  /// the restoring process reconstructs the strategy from the same config,
  /// and LoadState cross-checks cheap fingerprints (ladder size/prices)
  /// where available. Every payload starts with a strategy-private u32
  /// version so formats can evolve independently. The default covers
  /// stateless strategies: a version tag and nothing else.
  virtual Status SaveState(StateWriter* w) const {
    w->PutU32(1);
    return Status::OK();
  }

  /// Restores state written by SaveState on an identically configured
  /// strategy. All-or-nothing: on any failure the strategy is left
  /// unchanged.
  virtual Status LoadState(StateReader* r) {
    uint32_t version = 0;
    MAPS_RETURN_NOT_OK(r->GetU32(&version, "strategy state version"));
    if (version != 1) {
      return Status::InvalidArgument(
          "unsupported stateless strategy state version " +
          std::to_string(version));
    }
    return Status::OK();
  }
};

}  // namespace maps
