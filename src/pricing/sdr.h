// SDR baseline (Sec. 5.1): prices a grid by the inverse supply-demand ratio,
//   p^{tg} = coef * p_b * |R^{tg}| / |W^{tg}|   when |R^{tg}| > |W^{tg}|,
//   p^{tg} = p_b                                otherwise,
// with the paper's empirically-tuned coefficient 0.5. Prices are clamped to
// [p_min, p_max] like every strategy's output.

#pragma once

#include "pricing/base_pricing.h"
#include "pricing/strategy.h"

namespace maps {

/// \brief Supply-Demand-Ratio heuristic baseline.
class Sdr : public PricingStrategy {
 public:
  /// \param coefficient the paper uses 0.5 after empirical tuning
  explicit Sdr(const PricingConfig& config, double coefficient = 0.5);

  std::string name() const override { return "SDR"; }

  Status Warmup(const GridPartition& grid, DemandOracle* history) override;

  void LendPool(ThreadPool* pool) override { base_.LendPool(pool); }

  Status PriceRound(const MarketSnapshot& snapshot,
                    std::vector<double>* grid_prices) override;

  size_t MemoryFootprintBytes() const override;

  /// SDR's only learned state is the nested BaseP warm-up; the ratio rule
  /// itself is stateless, so state hooks delegate to base_ (which commits
  /// all-or-nothing).
  Status SaveState(StateWriter* w) const override {
    return base_.SaveState(w);
  }
  Status LoadState(StateReader* r) override { return base_.LoadState(r); }

  double base_price() const { return base_.base_price(); }

 private:
  PricingConfig config_;
  double coefficient_;
  BasePricing base_;
};

}  // namespace maps
