#include "pricing/oracle_exact.h"

#include <algorithm>
#include <cmath>

#include "pricing/oracle_search.h"
#include "util/logging.h"

namespace maps {

namespace {

/// Builds the PricedTask vector for a snapshot under a price assignment:
/// task r pays grid_prices[g(r)] per unit distance and accepts with the
/// TRUE ratio S_g(p). Shared by every scoring path so exact and MC scores
/// of the same prices see byte-identical inputs.
void BuildPricedTasks(const MarketSnapshot& snapshot, const DemandOracle& truth,
                      const std::vector<double>& grid_prices,
                      std::vector<PricedTask>* priced) {
  priced->clear();
  priced->reserve(snapshot.tasks().size());
  for (const Task& t : snapshot.tasks()) {
    const double p = grid_prices[t.grid];
    priced->push_back(
        PricedTask{t.distance, p, truth.TrueAcceptRatio(t.grid, p)});
  }
}

/// Half width of the normal-approximation CI from power sums. Uses the
/// unbiased sample variance; clamps the 2^-53-scale negative values that
/// cancellation can produce.
double HalfWidth(const WorldMomentSums& m, int64_t n, double z) {
  if (n < 2) return 0.0;
  const double nn = static_cast<double>(n);
  double var = (m.sum_squares - m.sum * m.sum / nn) / (nn - 1.0);
  if (var < 0.0) var = 0.0;
  return z * std::sqrt(var / nn);
}

}  // namespace

McCiEstimate MonteCarloExpectedRevenueWithCI(
    const BipartiteGraph& graph, const std::vector<PricedTask>& tasks,
    const McCiOptions& options, ThreadPool* pool,
    std::vector<PossibleWorldsWorkspace>* workspaces) {
  MAPS_CHECK_GT(options.batch_worlds, 0);
  MAPS_CHECK_GE(options.max_worlds, options.batch_worlds);
  WorldMomentSums total;
  McCiEstimate est;
  while (est.worlds < options.max_worlds) {
    const int64_t batch = std::min<int64_t>(
        options.batch_worlds, options.max_worlds - est.worlds);
    const WorldMomentSums m = MonteCarloRevenueMoments(
        graph, tasks, options.seed, /*first_world=*/est.worlds, batch, pool,
        workspaces);
    // One fixed fold order: batches accumulate in schedule order, shards
    // within a batch in shard order — nothing depends on the thread count.
    total.sum += m.sum;
    total.sum_squares += m.sum_squares;
    est.worlds += batch;
    est.mean = total.sum / static_cast<double>(est.worlds);
    est.half_width = HalfWidth(total, est.worlds, options.z);
    const double tolerance = std::max(
        options.rel_half_width * std::abs(est.mean), options.abs_half_width);
    if (est.worlds >= 2 && est.half_width <= tolerance) {
      est.converged = true;
      break;
    }
  }
  return est;
}

McCiEstimate MonteCarloRevenueOfPricesWithCI(
    const MarketSnapshot& snapshot, const DemandOracle& truth,
    const std::vector<double>& grid_prices, const McCiOptions& options,
    ThreadPool* pool) {
  const BipartiteGraph graph = BipartiteGraph::Build(
      snapshot.tasks(), snapshot.workers(), snapshot.grid());
  std::vector<PricedTask> priced;
  BuildPricedTasks(snapshot, truth, grid_prices, &priced);
  std::vector<PossibleWorldsWorkspace> workspaces;
  return MonteCarloExpectedRevenueWithCI(graph, priced, options, pool,
                                         &workspaces);
}

const char* OracleModeName(OracleMode mode) {
  switch (mode) {
    case OracleMode::kExactPerGrid:
      return "exact_per_grid";
    case OracleMode::kExactUniform:
      return "exact_uniform";
    case OracleMode::kMcUniform:
      return "mc_uniform";
  }
  return "unknown";
}

Result<PeriodRegret> EvaluatePeriodRegret(
    const MarketSnapshot& snapshot, const DemandOracle& truth,
    const PriceLadder& ladder, const std::vector<double>& posted_prices,
    const RegretOptions& options) {
  const int num_grids = snapshot.num_grids();
  if (static_cast<int>(posted_prices.size()) != num_grids) {
    return Status::InvalidArgument(
        "posted_prices has " + std::to_string(posted_prices.size()) +
        " entries for " + std::to_string(num_grids) + " grids");
  }
  if (truth.num_grids() != num_grids) {
    return Status::InvalidArgument("demand oracle grid count mismatch");
  }

  PeriodRegret report;
  const int num_tasks = static_cast<int>(snapshot.tasks().size());
  if (num_tasks == 0) {
    // Nothing to price: both sides are exactly zero.
    report.exact = true;
    report.oracle_prices.assign(num_grids, ladder.p_min());
    return report;
  }

  int busy_grids = 0;
  for (int g = 0; g < num_grids; ++g) {
    if (!snapshot.TasksInGrid(g).empty()) ++busy_grids;
  }
  const double combos = std::pow(static_cast<double>(ladder.size()),
                                 static_cast<double>(busy_grids));
  const bool exact_tasks = num_tasks <= options.max_exact_tasks;

  const BipartiteGraph graph = BipartiteGraph::Build(
      snapshot.tasks(), snapshot.workers(), snapshot.grid());
  std::vector<PricedTask> priced;
  std::vector<PossibleWorldsWorkspace> workspaces;

  // Scores one full price vector under the regime the instance size allows.
  const auto score = [&](const std::vector<double>& prices) -> McCiEstimate {
    BuildPricedTasks(snapshot, truth, prices, &priced);
    if (exact_tasks) {
      McCiEstimate e;
      e.mean = ExactExpectedRevenue(graph, priced, options.pool, &workspaces);
      e.converged = true;
      return e;
    }
    return MonteCarloExpectedRevenueWithCI(graph, priced, options.mc,
                                           options.pool, &workspaces);
  };

  // Strategy side.
  const McCiEstimate posted = score(posted_prices);
  report.posted_value = posted.mean;
  report.posted_half_width = posted.half_width;
  report.mc_worlds += posted.worlds;

  // Oracle side.
  if (exact_tasks && combos <= options.max_exact_combinations) {
    report.oracle_mode = OracleMode::kExactPerGrid;
    MAPS_ASSIGN_OR_RETURN(OracleSearchResult best,
                          OracleSearch(snapshot, truth, ladder, options.pool));
    report.oracle_value = best.expected_revenue;
    report.oracle_prices = std::move(best.grid_prices);
  } else {
    report.oracle_mode =
        exact_tasks ? OracleMode::kExactUniform : OracleMode::kMcUniform;
    // Best single ladder price posted uniformly: |ladder| candidates, each
    // scored like the strategy side. Ties keep the lowest rung.
    std::vector<double> candidate(num_grids);
    double best_value = -1.0;
    for (int rung = 0; rung < ladder.size(); ++rung) {
      std::fill(candidate.begin(), candidate.end(), ladder.price(rung));
      const McCiEstimate e = score(candidate);
      report.mc_worlds += e.worlds;
      if (e.mean > best_value) {
        best_value = e.mean;
        report.oracle_value = e.mean;
        report.oracle_half_width = e.half_width;
        report.oracle_prices = candidate;
      }
    }
  }

  report.exact = exact_tasks;
  report.regret = report.oracle_value - report.posted_value;
  return report;
}

}  // namespace maps
