// ExperimentSweep: the shared harness behind every figure bench.
//
// A bench declares its x-axis, generates one Workload per x value, and the
// sweep runs all five strategies of Sec. 5.1 against each workload,
// accumulating the paper's three series (revenue, running time, memory) in
// one table.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pricing/strategy.h"
#include "sim/simulator.h"
#include "sim/workload.h"
#include "util/csv.h"

namespace maps {

/// \brief Named factory so every sweep point gets a fresh strategy instance
/// (statistics must not leak between x values).
struct StrategyFactory {
  std::string name;
  std::function<std::unique_ptr<PricingStrategy>()> make;
};

/// \brief The paper's five strategies: MAPS, BaseP, SDR, SDE, CappedUCB.
std::vector<StrategyFactory> DefaultStrategies(const PricingConfig& config);

/// \brief Collects (x, strategy) -> {revenue, time, memory} rows.
class ExperimentSweep {
 public:
  /// \param experiment e.g. "fig6_workers"
  /// \param x_name     e.g. "|W|"
  ExperimentSweep(std::string experiment, std::string x_name);

  /// Runs every factory against the workload; rows are appended in factory
  /// order. Strategies warm up on independent oracle forks.
  Status RunPoint(const std::string& x_value, const Workload& workload,
                  const std::vector<StrategyFactory>& strategies);

  const Table& table() const { return table_; }

  /// Prints the aligned table to stdout and writes `<experiment>.csv` into
  /// `csv_dir` (skipped when csv_dir is empty).
  Status Report(const std::string& csv_dir = ".") const;

 private:
  std::string experiment_;
  Table table_;
};

}  // namespace maps
