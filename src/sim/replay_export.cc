#include "sim/replay_export.h"

#include <cinttypes>
#include <cstdio>
#include <string>

namespace maps {

namespace {

/// %.17g: shortest spelling that still round-trips every double through
/// the replay parser's strtod bit-identically.
std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string Int(int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

}  // namespace

Status WriteReplayLog(const Workload& workload, std::ostream& out) {
  MAPS_RETURN_NOT_OK(ValidateWorkload(workload));
  out << "# " << workload.name << ": " << workload.tasks.size()
      << " task(s), " << workload.workers.size() << " worker(s), "
      << workload.num_periods << " period(s)\n";
  size_t next_task = 0;
  size_t next_worker = 0;
  for (int32_t t = 0; t < workload.num_periods; ++t) {
    while (next_worker < workload.workers.size() &&
           workload.workers[next_worker].period == t) {
      const Worker& w = workload.workers[next_worker];
      out << "{\"event\":\"add_worker\",\"id\":" << Int(w.id)
          << ",\"x\":" << Num(w.location.x) << ",\"y\":" << Num(w.location.y)
          << ",\"radius\":" << Num(w.radius);
      if (w.duration != Worker::kUnlimitedDuration) {
        out << ",\"duration\":" << Int(w.duration);
      }
      out << "}\n";
      ++next_worker;
    }
    while (next_task < workload.tasks.size() &&
           workload.tasks[next_task].period == t) {
      const Task& task = workload.tasks[next_task];
      out << "{\"event\":\"submit_task\",\"id\":" << Int(task.id)
          << ",\"ox\":" << Num(task.origin.x)
          << ",\"oy\":" << Num(task.origin.y)
          << ",\"dx\":" << Num(task.destination.x)
          << ",\"dy\":" << Num(task.destination.y)
          << ",\"distance\":" << Num(task.distance)
          << ",\"valuation\":" << Num(workload.valuations[next_task])
          << "}\n";
      ++next_task;
    }
    out << "{\"event\":\"close_period\"}\n";
  }
  if (!out) return Status::Internal("replay log write failed");
  return Status::OK();
}

}  // namespace maps
