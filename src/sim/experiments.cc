#include "sim/experiments.h"

#include <algorithm>
#include <cstdio>

#include "sim/beijing.h"
#include "sim/synthetic.h"

namespace maps {

namespace {

std::string Fmt(const char* fmt, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

/// Applies the population scale to a synthetic config (the retired
/// bench_common.h `Scaled`).
SyntheticConfig Scaled(SyntheticConfig cfg, double scale) {
  cfg.num_workers = std::max(1, static_cast<int>(cfg.num_workers * scale));
  cfg.num_tasks = std::max(1, static_cast<int>(cfg.num_tasks * scale));
  return cfg;
}

/// One synthetic sweep: `mutate(i-th x value)` edits a default config; the
/// per-point dataset seed (1000 + 17i) matches the retired binaries.
template <typename X>
ExperimentSpec SyntheticSweep(std::string name, std::string x_name,
                              const std::vector<X>& xs,
                              std::function<std::string(X)> label,
                              std::function<void(SyntheticConfig&, X)> mutate,
                              double scale) {
  ExperimentSpec spec;
  spec.name = std::move(name);
  spec.x_name = std::move(x_name);
  for (size_t i = 0; i < xs.size(); ++i) {
    SyntheticConfig cfg;
    mutate(cfg, xs[i]);
    cfg = Scaled(cfg, scale);
    cfg.seed = 1000 + 17 * i;  // fresh dataset per x value, deterministic
    spec.points.push_back(
        {label(xs[i]), [cfg] { return GenerateSynthetic(cfg); }});
  }
  return spec;
}

ExperimentSpec BeijingSweep(std::string name, BeijingConfig::Window window,
                            const ExperimentRegistryOptions& options) {
  ExperimentSpec spec;
  spec.name = std::move(name);
  spec.x_name = "delta_w";
  const std::vector<int> durations = {5, 10, 15, 20, 25};
  for (size_t i = 0; i < durations.size(); ++i) {
    BeijingConfig cfg;
    cfg.window = window;
    cfg.worker_duration = durations[i];
    // The dedicated binaries defaulted to 0.1 of the published populations
    // unless a scale was given; an explicit scale replaces that default.
    cfg.population_scale =
        options.scale_explicit ? std::min(1.0, options.scale) : 0.1;
    cfg.seed = 2016 + 31 * i;
    spec.points.push_back({std::to_string(durations[i]),
                           [cfg] { return GenerateBeijing(cfg); }});
  }
  return spec;
}

}  // namespace

std::vector<ExperimentSpec> BuildExperiments(
    const ExperimentRegistryOptions& options) {
  const double scale = options.scale;
  std::vector<ExperimentSpec> all;

  auto str_label_int = [](int v) { return std::to_string(v); };
  auto one_dec = [](double v) { return Fmt("%.1f", v); };

  // Fig. 6: workers, tasks, temporal mean, spatial mean (Table 3).
  all.push_back(SyntheticSweep<int>(
      "fig6_workers", "|W|", {1250, 2500, 5000, 7500, 10000}, str_label_int,
      [](SyntheticConfig& c, int w) { c.num_workers = w; }, scale));
  all.push_back(SyntheticSweep<int>(
      "fig6_tasks", "|R|", {5000, 10000, 20000, 30000, 40000}, str_label_int,
      [](SyntheticConfig& c, int r) { c.num_tasks = r; }, scale));
  all.push_back(SyntheticSweep<double>(
      "fig6_temporal", "mu", {0.1, 0.3, 0.5, 0.7, 0.9}, one_dec,
      [](SyntheticConfig& c, double mu) { c.temporal_mu = mu; }, scale));
  all.push_back(SyntheticSweep<double>(
      "fig6_spatial", "mean", {0.1, 0.3, 0.5, 0.7, 0.9}, one_dec,
      [](SyntheticConfig& c, double m) { c.spatial_mean = m; }, scale));

  // Fig. 7: demand mean/stddev, periods, grid count.
  all.push_back(SyntheticSweep<double>(
      "fig7_demand_mu", "mu", {1.0, 1.5, 2.0, 2.5, 3.0}, one_dec,
      [](SyntheticConfig& c, double mu) { c.demand_mu = mu; }, scale));
  all.push_back(SyntheticSweep<double>(
      "fig7_demand_sigma", "sigma", {0.5, 1.0, 1.5, 2.0, 2.5}, one_dec,
      [](SyntheticConfig& c, double s) { c.demand_sigma = s; }, scale));
  all.push_back(SyntheticSweep<int>(
      "fig7_periods", "T", {200, 400, 600, 800, 1000}, str_label_int,
      [](SyntheticConfig& c, int t) { c.num_periods = t; }, scale));
  all.push_back(SyntheticSweep<int>(
      "fig7_grids", "G", {5, 10, 15, 20, 25},
      [](int side) { return std::to_string(side * side); },
      [](SyntheticConfig& c, int side) {
        c.grid_rows = side;
        c.grid_cols = side;
      },
      scale));

  // Fig. 8: worker radius, scalability, the two Beijing windows.
  all.push_back(SyntheticSweep<int>(
      "fig8_radius", "a_w", {5, 10, 15, 20, 25}, str_label_int,
      [](SyntheticConfig& c, int r) { c.worker_radius = r; }, scale));
  {
    // Scalability defaults to 0.1 of the paper's 100k..500k unless a scale
    // was given (then the explicit scale applies to the full sizes).
    const double default_scale = options.scale_explicit ? 1.0 : 0.1;
    ExperimentSpec spec = SyntheticSweep<int>(
        "fig8_scalability", "|W|=|R|",
        {100000, 200000, 300000, 400000, 500000},
        [default_scale](int n) {
          return std::to_string(static_cast<int>(n * default_scale));
        },
        [default_scale](SyntheticConfig& c, int n) {
          c.num_workers = static_cast<int>(n * default_scale);
          c.num_tasks = static_cast<int>(n * default_scale);
        },
        options.scale_explicit ? scale : 1.0);
    all.push_back(std::move(spec));
  }
  all.push_back(
      BeijingSweep("fig8_beijing1", BeijingConfig::Window::kEveningPeak,
                   options));
  all.push_back(
      BeijingSweep("fig8_beijing2", BeijingConfig::Window::kLateNight,
                   options));

  // Fig. 10 (appendix D): exponential demand rate.
  all.push_back(SyntheticSweep<double>(
      "fig10_exponential", "alpha", {0.5, 0.75, 1.0, 1.25, 1.5},
      [](double v) { return Fmt("%.2f", v); },
      [](SyntheticConfig& c, double alpha) {
        c.demand_family = SyntheticConfig::DemandFamily::kExponential;
        c.demand_rate = alpha;
      },
      scale));

  return all;
}

Result<ExperimentSpec> FindExperiment(const ExperimentRegistryOptions& options,
                                      const std::string& name) {
  for (ExperimentSpec& spec : BuildExperiments(options)) {
    if (spec.name == name) return std::move(spec);
  }
  return Status::NotFound("unknown experiment: " + name);
}

}  // namespace maps
