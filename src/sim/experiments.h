// Data-driven registry of the paper's figure sweeps (Figs. 6-8 and 10).
//
// Each sweep that previously required a dedicated bench binary
// (bench/fig6_workers.cc, bench/fig7_grids.cc, ...) is one ExperimentSpec:
// a name, an x-axis label, and one lazily-generated Workload per x value.
// The experiment runner (tools/experiment_runner.cc) executes any subset of
// the registry as a strategy x workload matrix across a thread pool; tests
// cover the registry itself so a sweep cannot silently disappear.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "pricing/strategy.h"
#include "sim/workload.h"
#include "util/result.h"

namespace maps {

/// \brief Pricing knobs shared by every sweep consumer (the experiment
/// runner and the remaining bench binaries): the paper's [1, 5] price
/// interval with a finer ladder (alpha = 0.25, 8 rungs) than Example 4's
/// illustrative alpha = 0.5, so per-grid heterogeneity is resolvable.
/// Single definition on purpose — cross-binary revenue comparisons are only
/// valid while everyone prices on the same ladder.
inline PricingConfig ExperimentPricing() {
  PricingConfig cfg;
  cfg.alpha = 0.25;
  return cfg;
}

/// \brief One x-axis point: label plus a deterministic workload generator.
/// Generation is deferred so listing the registry stays free.
struct ExperimentPoint {
  std::string label;
  std::function<Result<Workload>()> generate;
};

/// \brief One figure sweep.
struct ExperimentSpec {
  std::string name;    ///< e.g. "fig6_workers"
  std::string x_name;  ///< e.g. "|W|"
  std::vector<ExperimentPoint> points;
};

/// \brief Registry knobs, mirroring the retired bench binaries' behavior.
struct ExperimentRegistryOptions {
  /// Population scale on |W| and |R| (1.0 = the paper's sizes).
  double scale = 1.0;
  /// Whether `scale` was set explicitly (flag or MAPS_BENCH_SCALE). When
  /// false, fig8_scalability and the Beijing sweeps default to 0.1 of the
  /// published populations for turnaround time, exactly as their dedicated
  /// binaries did.
  bool scale_explicit = false;
};

/// \brief Builds all figure sweeps: fig6_{workers,tasks,temporal,spatial},
/// fig7_{demand_mu,demand_sigma,periods,grids}, fig8_{radius,scalability,
/// beijing1,beijing2}, fig10_exponential. Workload seeds and scaling match
/// the retired per-figure binaries, so results are comparable across the
/// consolidation.
std::vector<ExperimentSpec> BuildExperiments(
    const ExperimentRegistryOptions& options);

/// \brief Convenience: the spec with `name`, or NotFound.
Result<ExperimentSpec> FindExperiment(const ExperimentRegistryOptions& options,
                                      const std::string& name);

}  // namespace maps
