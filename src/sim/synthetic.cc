#include "sim/synthetic.h"

#include <algorithm>
#include <cmath>

#include <optional>

#include "geo/region_partition.h"
#include "geo/road_network.h"
#include "rng/distributions.h"
#include "util/logging.h"

namespace maps {

namespace {

/// Normal draw "conditioned on the entire time span": re-draw until the
/// sample falls in [0, T), with a clamped fallback to stay total.
int32_t SampledPeriod(Rng& rng, double mu, double sigma, int num_periods) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double x = SampleNormal(rng, mu, sigma);
    if (x >= 0.0 && x < num_periods) return static_cast<int32_t>(x);
  }
  const double x =
      std::clamp(SampleNormal(rng, mu, sigma), 0.0,
                 static_cast<double>(num_periods) - 1.0);
  return static_cast<int32_t>(x);
}

Point SampleGaussianPoint(Rng& rng, const Rect& region, double mean_frac,
                          double sigma) {
  const Point mean{region.min_x + mean_frac * region.width(),
                   region.min_y + mean_frac * region.height()};
  const Point raw{SampleNormal(rng, mean.x, sigma),
                  SampleNormal(rng, mean.y, sigma)};
  return region.Clamp(raw);
}

}  // namespace

Result<Workload> GenerateSynthetic(const SyntheticConfig& cfg) {
  if (cfg.num_tasks < 0 || cfg.num_workers < 0) {
    return Status::InvalidArgument("negative population");
  }
  if (cfg.num_periods <= 0) {
    return Status::InvalidArgument("num_periods must be positive");
  }
  if (cfg.v_lo >= cfg.v_hi) {
    return Status::InvalidArgument("valuation interval empty");
  }
  if (cfg.sharded_regions < 1) {
    return Status::InvalidArgument("sharded_regions must be >= 1");
  }
  if (cfg.boundary_worker_frac < 0.0 || cfg.boundary_worker_frac > 1.0) {
    return Status::InvalidArgument("boundary_worker_frac outside [0, 1]");
  }
  if (cfg.region_skew < 0.0) {
    return Status::InvalidArgument("region_skew must be >= 0");
  }

  Rect region{0.0, 0.0, cfg.region_size, cfg.region_size};
  MAPS_ASSIGN_OR_RETURN(GridPartition grid,
                        GridPartition::Make(region, cfg.grid_rows,
                                            cfg.grid_cols));

  // Multi-region shaping: band y-ranges with geometrically skewed demand
  // weights, and the internal boundary lines workers crowd around.
  struct Band {
    double y_lo, y_hi;
  };
  std::vector<Band> bands;
  std::vector<double> band_cum;  // cumulative band weights
  std::vector<double> boundary_lines;
  if (cfg.sharded_regions > 1) {
    MAPS_ASSIGN_OR_RETURN(RegionPartition part,
                          RegionPartition::Make(grid, cfg.sharded_regions));
    const double cell_h = cfg.region_size / cfg.grid_rows;
    double total = 0.0;
    double weight = 1.0;
    for (int k = 0; k < part.num_regions(); ++k) {
      bands.push_back({part.row_begin(k) * cell_h, part.row_end(k) * cell_h});
      total += weight;
      band_cum.push_back(total);
      weight *= 1.0 + cfg.region_skew;
      if (k > 0) boundary_lines.push_back(part.row_begin(k) * cell_h);
    }
  }

  Rng master(cfg.seed);
  Rng grid_rng = master.Fork(1);
  Rng task_rng = master.Fork(2);
  Rng worker_rng = master.Fork(3);
  Rng valuation_rng = master.Fork(4);

  // Per-grid demand models: base parameters with seeded per-grid jitter
  // ("the valuations v_r are drawn ... w.r.t. the mean of g").
  std::vector<std::unique_ptr<DemandModel>> models;
  models.reserve(grid.num_cells());
  for (int g = 0; g < grid.num_cells(); ++g) {
    const double jitter =
        grid_rng.NextDouble(-cfg.grid_mu_jitter, cfg.grid_mu_jitter);
    if (cfg.demand_family == SyntheticConfig::DemandFamily::kNormal) {
      const double mu = std::clamp(cfg.demand_mu + jitter, cfg.v_lo, cfg.v_hi);
      models.push_back(std::make_unique<TruncatedNormalDemand>(
          mu, cfg.demand_sigma, cfg.v_lo, cfg.v_hi));
    } else {
      // Jitter scales the rate by up to +/-10% so grids stay heterogeneous.
      const double scale =
          1.0 + 0.1 * jitter / std::max(cfg.grid_mu_jitter, 1e-9);
      models.push_back(std::make_unique<TruncatedExponentialDemand>(
          cfg.demand_rate * scale, cfg.v_lo, cfg.v_hi));
    }
  }
  MAPS_ASSIGN_OR_RETURN(
      DemandOracle oracle,
      DemandOracle::Make(std::move(models), master.NextUint64()));

  Workload w(std::move(grid), std::move(oracle));
  w.name = "synthetic";
  w.num_periods = cfg.num_periods;
  w.lifecycle.single_use = true;

  const double temporal_sigma = cfg.temporal_sigma * cfg.num_periods;

  // Travel metric for d_r.
  std::optional<RoadNetwork> roads;
  if (cfg.distance_metric == SyntheticConfig::DistanceMetric::kRoadNetwork) {
    MAPS_ASSIGN_OR_RETURN(
        RoadNetwork net,
        RoadNetwork::MakeLattice(region, cfg.road_nodes_per_axis,
                                 cfg.road_nodes_per_axis,
                                 cfg.road_congestion_jitter,
                                 master.NextUint64()));
    roads.emplace(std::move(net));
  }
  auto travel_distance = [&](const Point& a, const Point& b) {
    switch (cfg.distance_metric) {
      case SyntheticConfig::DistanceMetric::kManhattan:
        return ManhattanDistance(a, b);
      case SyntheticConfig::DistanceMetric::kRoadNetwork:
        return roads->Distance(a, b);
      case SyntheticConfig::DistanceMetric::kEuclidean:
        break;
    }
    return EuclideanDistance(a, b);
  };

  // Tasks.
  w.tasks.reserve(cfg.num_tasks);
  w.valuations.reserve(cfg.num_tasks);
  for (int i = 0; i < cfg.num_tasks; ++i) {
    Task t;
    t.period = SampledPeriod(task_rng, cfg.temporal_mu * cfg.num_periods,
                             temporal_sigma, cfg.num_periods);
    if (!bands.empty()) {
      // Band-first draw: region k is (1+region_skew)^k times as likely as
      // region 0, y uniform within the band, x the usual Gaussian.
      const double u = task_rng.NextDouble(0.0, band_cum.back());
      size_t k = static_cast<size_t>(
          std::lower_bound(band_cum.begin(), band_cum.end(), u) -
          band_cum.begin());
      if (k >= bands.size()) k = bands.size() - 1;
      const Point raw{SampleNormal(task_rng,
                                   cfg.spatial_mean * cfg.region_size,
                                   cfg.spatial_sigma),
                      task_rng.NextDouble(bands[k].y_lo, bands[k].y_hi)};
      t.origin = region.Clamp(raw);
    } else {
      t.origin = SampleGaussianPoint(task_rng, region, cfg.spatial_mean,
                                     cfg.spatial_sigma);
    }
    t.destination = Point{task_rng.NextDouble(0.0, cfg.region_size),
                          task_rng.NextDouble(0.0, cfg.region_size)};
    t.distance = travel_distance(t.origin, t.destination);
    t.grid = w.grid.CellOf(t.origin);
    w.tasks.push_back(t);
  }
  std::stable_sort(w.tasks.begin(), w.tasks.end(),
                   [](const Task& a, const Task& b) {
                     return a.period < b.period;
                   });
  for (size_t i = 0; i < w.tasks.size(); ++i) {
    w.tasks[i].id = static_cast<TaskId>(i);
    w.valuations.push_back(w.oracle.model(w.tasks[i].grid)
                               .Sample(valuation_rng));
  }

  // Workers (single-use; unlimited duration until matched).
  w.workers.reserve(cfg.num_workers);
  for (int i = 0; i < cfg.num_workers; ++i) {
    Worker ww;
    ww.period =
        SampledPeriod(worker_rng, cfg.worker_temporal_mu * cfg.num_periods,
                      temporal_sigma, cfg.num_periods);
    if (!boundary_lines.empty() &&
        worker_rng.NextDouble(0.0, 1.0) < cfg.boundary_worker_frac) {
      // Boundary-heavy placement: within half a cell of an internal band
      // boundary, so the worker's reach disc straddles two regions.
      const size_t b = static_cast<size_t>(worker_rng.NextUint64() %
                                           boundary_lines.size());
      const double margin = 0.5 * (cfg.region_size / cfg.grid_rows);
      const Point raw{worker_rng.NextDouble(0.0, cfg.region_size),
                      boundary_lines[b] +
                          worker_rng.NextDouble(-margin, margin)};
      ww.location = region.Clamp(raw);
    } else {
      ww.location = SampleGaussianPoint(worker_rng, region,
                                        cfg.worker_spatial_mean,
                                        cfg.spatial_sigma);
    }
    ww.radius = cfg.worker_radius;
    ww.duration = Worker::kUnlimitedDuration;
    ww.grid = w.grid.CellOf(ww.location);
    w.workers.push_back(ww);
  }
  std::stable_sort(w.workers.begin(), w.workers.end(),
                   [](const Worker& a, const Worker& b) {
                     return a.period < b.period;
                   });
  for (size_t i = 0; i < w.workers.size(); ++i) {
    w.workers[i].id = static_cast<WorkerId>(i);
  }

  MAPS_RETURN_NOT_OK(ValidateWorkload(w));
  return w;
}

}  // namespace maps
