// Emits a materialized Workload as a JSONL replay event log in the
// service/replay_log.h schema — the bridge from the batch generators
// (synthetic, Beijing) to the streaming serving path: generate once, write
// the log, then replay it through `maps_cli replay` (monolithic or
// --regions=K sharded) without ever materializing the workload again.

#pragma once

#include <ostream>

#include "sim/workload.h"
#include "util/status.h"

namespace maps {

/// \brief Writes one event line per worker arrival, task submission (with
/// its hidden valuation), and period close, in period order. Doubles are
/// printed with 17 significant digits so a parse of the emitted log
/// round-trips bit-identically. Workers with unlimited duration omit the
/// "duration" field.
Status WriteReplayLog(const Workload& workload, std::ostream& out);

}  // namespace maps
