#include "sim/metrics.h"

#include <iostream>

#include "pricing/base_pricing.h"
#include "pricing/capped_ucb.h"
#include "pricing/maps.h"
#include "pricing/sde.h"
#include "pricing/sdr.h"

namespace maps {

std::vector<StrategyFactory> DefaultStrategies(const PricingConfig& config) {
  std::vector<StrategyFactory> out;
  out.push_back({"MAPS", [config] {
                   MapsOptions opts;
                   opts.pricing = config;
                   return std::make_unique<Maps>(opts);
                 }});
  out.push_back({"BaseP", [config] {
                   return std::make_unique<BasePricing>(config);
                 }});
  out.push_back(
      {"SDR", [config] { return std::make_unique<Sdr>(config); }});
  out.push_back(
      {"SDE", [config] { return std::make_unique<Sde>(config); }});
  out.push_back({"CappedUCB", [config] {
                   return std::make_unique<CappedUcb>(config);
                 }});
  return out;
}

ExperimentSweep::ExperimentSweep(std::string experiment, std::string x_name)
    : experiment_(std::move(experiment)),
      table_({x_name, "strategy", "revenue", "time_secs", "memory_mb",
              "accepted", "matched"}) {}

Status ExperimentSweep::RunPoint(
    const std::string& x_value, const Workload& workload,
    const std::vector<StrategyFactory>& strategies) {
  for (size_t s = 0; s < strategies.size(); ++s) {
    std::unique_ptr<PricingStrategy> strategy = strategies[s].make();
    SimOptions options;
    options.warmup_stream = 101 + s;  // independent probe randomness
    auto run = RunSimulation(workload, strategy.get(), options);
    MAPS_RETURN_NOT_OK(run.status());
    const SimulationResult& r = run.ValueOrDie();
    table_.AddRow(x_value, strategies[s].name, r.total_revenue,
                  r.total_time_sec,
                  static_cast<double>(r.memory_bytes) / (1024.0 * 1024.0),
                  r.num_accepted, r.num_matched);
  }
  return Status::OK();
}

Status ExperimentSweep::Report(const std::string& csv_dir) const {
  std::cout << "== " << experiment_ << " ==\n" << table_.ToText() << "\n";
  if (!csv_dir.empty()) {
    return table_.WriteCsv(csv_dir + "/" + experiment_ + ".csv");
  }
  return Status::OK();
}

}  // namespace maps
