// Seeded adversarial scenario fuzzer: declarative specs -> reproducible
// JSONL replay logs.
//
// Each ScenarioSpec names one adversarial family — demand drift
// mid-horizon, flash surges, region-correlated worker churn, boundary-heavy
// placement, churn storms — plus the knobs that shape it. BuildScenarioWorkload
// materializes the spec into a Workload using purpose-keyed CounterRng
// streams, so the workload (and therefore the replay_export JSONL) is a pure
// function of (spec, seed): same inputs, byte-identical log, forever. The
// robustness matrix (tools/robustness_matrix.cc) sweeps strategies over
// DefaultScenarioMatrix() and gates regret/invariants per scenario.
//
// The fuzzer also owns the corpus of malformed replay lines it can emit in
// corruption mode (WriteScenarioLog with inject_malformed_every > 0) — the
// same corpus replay_log_test.cc asserts line-precise errors for, so the
// parser's error paths and the fuzzer's corruption vocabulary cannot drift
// apart.

#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "market/demand_model.h"
#include "sim/workload.h"
#include "util/result.h"

namespace maps {

/// \brief One adversarial scenario: a family plus its shaping knobs.
struct ScenarioSpec {
  enum class Family {
    kBaseline,       ///< stationary demand, uniform placement (control)
    kDemandDrift,    ///< valuation mean shifts at drift_period
    kFlashSurge,     ///< task volume multiplies inside a short window
    kRegionChurn,    ///< one row band's workers all retire at churn_period
    kBoundaryHeavy,  ///< placement concentrated on region-seam cells
    kChurnStorm,     ///< every worker lives only churn_storm_duration periods
  };

  std::string name;  ///< unique label (report keys, file names)
  Family family = Family::kBaseline;

  // Horizon and geometry.
  int num_periods = 40;
  int grid_rows = 4;
  int grid_cols = 4;
  double extent = 100.0;  ///< square region [0, extent)^2

  // Arrival volume. Per-period counts get a deterministic +/-25% jitter
  // drawn from the count stream, so period sizes vary but reproducibly.
  int tasks_per_period = 12;
  int workers_per_period = 4;
  int initial_workers = 12;  ///< extra workers seeded at period 0

  // Worker shape.
  double worker_radius_lo = 15.0;
  double worker_radius_hi = 40.0;
  int32_t worker_duration = 20;  ///< periods of membership (turnaround mode)
  double worker_speed = 50.0;    ///< lifecycle speed (ride turnaround)

  // Demand: valuations ~ TruncatedNormal(mu, sigma) on [v_lo, v_hi].
  double demand_mu = 2.5;
  double demand_sigma = 1.0;
  double v_lo = 1.0;
  double v_hi = 5.0;

  // kDemandDrift: mu becomes demand_mu + drift_mu_delta at drift_period.
  double drift_mu_delta = -1.0;
  int drift_period = 20;

  // kFlashSurge: tasks multiply by surge_multiplier in
  // [surge_begin, surge_begin + surge_len).
  int surge_begin = 18;
  int surge_len = 4;
  double surge_multiplier = 6.0;

  // kRegionChurn: workers in rows [0, churn_region_rows) are over-supplied
  // before churn_period and ALL retire exactly at churn_period.
  int churn_region_rows = 2;
  int churn_period = 20;
  double churn_band_bias = 0.7;  ///< pre-churn share of workers in the band

  // kBoundaryHeavy: this share of tasks AND workers lands in boundary cells
  // of the K-region row-band partition.
  double boundary_frac = 0.85;
  int num_regions = 2;

  // kChurnStorm: every worker's lifetime; arrivals double to compensate.
  int32_t churn_storm_duration = 2;

  // Robustness-matrix gate: mean per-period regret must stay below this
  // fraction of the oracle value (see docs/robustness_matrix.md).
  double regret_budget_frac = 0.9;
};

const char* ScenarioFamilyName(ScenarioSpec::Family family);

/// \brief Rejects specs the generator cannot honor (empty name, non-positive
/// horizon/geometry/volume, fractions outside [0, 1], windows outside the
/// horizon, more regions than rows, ...).
Status ValidateScenarioSpec(const ScenarioSpec& spec);

/// \brief Materializes the spec into a validated Workload. Pure function of
/// (spec, seed): every random draw comes from a purpose-keyed CounterRng
/// stream of `seed`, so two calls agree field for field. The workload's
/// oracle carries the PRE-drift demand — warm-up sees the world as it was,
/// which is exactly what makes kDemandDrift adversarial; per-period truth is
/// available via TrueDemandAt.
Result<Workload> BuildScenarioWorkload(const ScenarioSpec& spec,
                                       uint64_t seed);

/// \brief The demand model actually generating valuations at `period`
/// (differs from the workload oracle only for kDemandDrift after the drift).
std::unique_ptr<DemandModel> TrueDemandAt(const ScenarioSpec& spec,
                                          int32_t period);

/// \brief Builds the workload and emits it through replay_export. Byte
/// identical for identical (spec, seed). With inject_malformed_every = N > 0,
/// every N-th event line is followed by the next MalformedReplayLineCorpus()
/// entry (cyclically) — a corrupted-but-recoverable log for exercising
/// skip_bad_events at scale.
Status WriteScenarioLog(const ScenarioSpec& spec, uint64_t seed,
                        std::ostream& out, int inject_malformed_every = 0);

/// \brief The seeded CI matrix slice: one spec per adversarial family (six
/// total, >= 5 non-baseline), each tuned to finish in seconds.
const std::vector<ScenarioSpec>& DefaultScenarioMatrix();

/// \brief One malformed replay line the fuzzer can emit, labeled with its
/// error class and (when the damage is a single field) the offending field.
struct MalformedReplayLine {
  const char* label;   ///< error class, e.g. "overflow-int"
  const char* field;   ///< offending field name, or nullptr for structural
  const char* line;    ///< the raw JSONL line
  const char* expect;  ///< fragment the parser's error message must contain
};

/// \brief Every malformed-line class the fuzzer's corruption mode emits.
/// replay_log_test.cc asserts a line-precise strict-mode error for each.
const std::vector<MalformedReplayLine>& MalformedReplayLineCorpus();

}  // namespace maps
