// Synthetic workload generator reproducing Table 3 of the paper.
//
// Locations live in a [0, region_size]^2 square. Task/worker start periods
// are normal draws conditioned on [0, T); origins are 2D Gaussians;
// destinations are uniform; valuations are drawn per grid from a truncated
// normal (default) or truncated exponential (appendix D) demand family.

#pragma once

#include <cstdint>

#include "sim/workload.h"
#include "util/result.h"

namespace maps {

/// \brief Table 3 parameters. Defaults are the paper's bold settings
/// (re-derived in DESIGN.md where the text lost the bold markers).
struct SyntheticConfig {
  int num_workers = 5000;   ///< |W|
  int num_tasks = 20000;    ///< |R|

  /// Mean of the task temporal distribution, as a fraction of T.
  double temporal_mu = 0.5;
  /// Worker temporal mean is fixed at T/2 in the paper's sweeps.
  double worker_temporal_mu = 0.5;
  /// Stddev of the temporal distribution, as a fraction of T (unstated in
  /// the paper; see DESIGN.md).
  double temporal_sigma = 0.2;

  /// Mean of the task spatial distribution, as a fraction of region_size
  /// (applied to both coordinates: 0.5 => center (50, 50)).
  double spatial_mean = 0.5;
  double worker_spatial_mean = 0.5;
  /// Stddev of the spatial Gaussian in distance units.
  double spatial_sigma = 10.0;

  /// Demand distribution family and parameters.
  enum class DemandFamily { kNormal, kExponential };
  DemandFamily demand_family = DemandFamily::kNormal;
  double demand_mu = 2.0;     ///< normal mean
  double demand_sigma = 1.0;  ///< normal stddev
  double demand_rate = 1.0;   ///< exponential rate (appendix D's alpha)
  /// Valuations are restricted to [v_lo, v_hi] (paper: [1, 5]).
  double v_lo = 1.0;
  double v_hi = 5.0;
  /// Half-width of the per-grid jitter on the demand mean ("the mean of g").
  double grid_mu_jitter = 0.5;

  /// Travel metric for d_r (Definition 2: "Euclidean or road-network
  /// distance"). Road-network uses a synthetic congested lattice.
  enum class DistanceMetric { kEuclidean, kManhattan, kRoadNetwork };
  DistanceMetric distance_metric = DistanceMetric::kEuclidean;
  /// Lattice resolution and congestion of the road network metric.
  int road_nodes_per_axis = 21;
  double road_congestion_jitter = 0.3;

  int num_periods = 400;  ///< T
  int grid_rows = 10;     ///< sqrt(G) for the paper's square grids
  int grid_cols = 10;
  double worker_radius = 15.0;  ///< a_w
  double region_size = 100.0;

  /// Multi-region workload shaping (exercises the sharded engine,
  /// DESIGN.md §13). With sharded_regions > 1 the grid is split into that
  /// many contiguous row bands (the RegionPartition layout) and:
  ///   * task origins are drawn band-first with geometrically skewed band
  ///     weights (band k is ~(1+region_skew)^k as likely as band 0), so
  ///     demand is region-skewed;
  ///   * a boundary_worker_frac share of workers is placed within half a
  ///     cell of an internal band boundary line — the population the
  ///     boundary stitch exists for.
  /// sharded_regions == 1 leaves the paper's Table-3 shape untouched.
  int sharded_regions = 1;
  double region_skew = 0.0;
  double boundary_worker_frac = 0.0;

  uint64_t seed = 42;
};

/// \brief Materializes a workload from the config.
Result<Workload> GenerateSynthetic(const SyntheticConfig& config);

}  // namespace maps
