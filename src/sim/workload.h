// Workload: a fully materialized experiment instance — grid partition,
// tasks with hidden valuations, workers, and the ground-truth demand oracle.
//
// A Workload is generated once per experiment point and reused across all
// strategies so every strategy faces the identical market (identical tasks,
// valuations, workers); only warm-up probe randomness differs (per-strategy
// oracle forks).

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "geo/grid.h"
#include "market/demand_oracle.h"
#include "market/task.h"
#include "market/worker.h"

namespace maps {

/// \brief Worker lifecycle policy of a workload.
struct WorkerLifecycle {
  /// true: a worker disappears after serving one task (the paper's synthetic
  /// setting); false: the worker is busy for the ride duration, reappears at
  /// the task's destination, and retires after `Worker::duration` periods of
  /// membership (the Beijing setting).
  bool single_use = true;
  /// Travel speed in distance units per period; ride time is
  /// ceil(d_r / speed) periods. Only used when !single_use.
  double speed = 1.0;

  /// Idle-worker repositioning (Sec. 4.2.3's practical note: higher unit
  /// prices "motivate more drivers to move to these regions"). Each period,
  /// every idle worker independently moves, with this probability, to the
  /// highest-priced cell in its 8-neighborhood when that price beats the
  /// current cell's. 0 disables repositioning.
  double reposition_prob = 0.0;
  /// Seed of the repositioning decision stream (keeps runs deterministic).
  uint64_t reposition_seed = 77;
};

/// \brief One experiment instance.
struct Workload {
  std::string name;
  GridPartition grid;
  int num_periods = 0;

  /// All tasks across all periods, sorted by (period, id).
  std::vector<Task> tasks;
  /// valuations[i] is the hidden v_r of tasks[i] (index == Task::id).
  std::vector<double> valuations;
  /// All workers, sorted by (period, id).
  std::vector<Worker> workers;

  /// Ground-truth demand; strategies only ever receive forks of it.
  DemandOracle oracle;

  WorkerLifecycle lifecycle;

  Workload(GridPartition g, DemandOracle o)
      : grid(std::move(g)), oracle(std::move(o)) {}
};

/// \brief Validates internal consistency (ids, ordering, grid bounds).
/// Generators call this before returning; tests call it on hand-built
/// workloads.
Status ValidateWorkload(const Workload& w);

}  // namespace maps
