// Workload: a fully materialized experiment instance — grid partition,
// tasks with hidden valuations, workers, and the ground-truth demand oracle.
//
// A Workload is generated once per experiment point and reused across all
// strategies so every strategy faces the identical market (identical tasks,
// valuations, workers); only warm-up probe randomness differs (per-strategy
// oracle forks).

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "geo/grid.h"
#include "market/demand_oracle.h"
#include "market/task.h"
#include "market/worker.h"

namespace maps {

// WorkerLifecycle moved to market/worker.h (the online MarketEngine
// enforces it too); re-exported here for workload builders.

/// \brief One experiment instance.
struct Workload {
  std::string name;
  GridPartition grid;
  int num_periods = 0;

  /// All tasks across all periods, sorted by (period, id).
  std::vector<Task> tasks;
  /// valuations[i] is the hidden v_r of tasks[i] (index == Task::id).
  std::vector<double> valuations;
  /// All workers, sorted by (period, id).
  std::vector<Worker> workers;

  /// Ground-truth demand; strategies only ever receive forks of it.
  DemandOracle oracle;

  WorkerLifecycle lifecycle;

  Workload(GridPartition g, DemandOracle o)
      : grid(std::move(g)), oracle(std::move(o)) {}
};

/// \brief Validates internal consistency (ids, ordering, grid bounds).
/// Generators call this before returning; tests call it on hand-built
/// workloads.
Status ValidateWorkload(const Workload& w);

}  // namespace maps
