#include "sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <queue>
#include <utility>

#include "graph/bipartite_graph.h"
#include "graph/max_weight_matching.h"
#include "graph/possible_worlds.h"
#include "rng/random.h"
#include "util/logging.h"

namespace maps {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Mutable per-worker lifecycle state.
struct WorkerState {
  int32_t next_free = 0;   // first period the worker is idle again
  int32_t retire_at = 0;   // first period the worker is gone
  bool consumed = false;   // single-use worker already served a task
  Point location;          // current position (turnaround moves it)
  GridId grid = -1;
};

}  // namespace

Result<SimulationResult> RunSimulation(const Workload& workload,
                                       PricingStrategy* strategy,
                                       const SimOptions& options) {
  if (strategy == nullptr) {
    return Status::InvalidArgument("null strategy");
  }
  MAPS_RETURN_NOT_OK(ValidateWorkload(workload));

  SimulationResult result;

  // Internal parallelism (warm-up probe schedule, MAPS's round precompute):
  // bit-identical with or without the lent pool, so this changes nothing
  // but wall-clock. Lent unconditionally so a pool-less run clears any
  // pool a previous simulation lent to a reused strategy (which may be
  // destroyed by now).
  strategy->LendPool(options.pool);

  // Warm-up against a fork of the ground truth: independent probe
  // randomness, identical demand.
  if (!options.skip_warmup) {
    const auto warm_start = Clock::now();
    DemandOracle history = workload.oracle.Fork(options.warmup_stream);
    MAPS_RETURN_NOT_OK(strategy->Warmup(workload.grid, &history));
    result.warmup_time_sec = Seconds(warm_start, Clock::now());
  }

  const bool single_use = workload.lifecycle.single_use;
  const double speed = workload.lifecycle.speed;

  std::vector<WorkerState> state(workload.workers.size());
  for (size_t i = 0; i < workload.workers.size(); ++i) {
    const Worker& w = workload.workers[i];
    state[i].next_free = w.period;
    state[i].retire_at =
        w.duration == Worker::kUnlimitedDuration
            ? std::numeric_limits<int32_t>::max()
            : w.period + w.duration;
    state[i].location = w.location;
    state[i].grid = w.grid;
  }

  // Worker scheduling: pending entry pointer + busy heap + idle list.
  size_t next_entry = 0;
  using BusyEntry = std::pair<int32_t, int>;  // (next_free, pool index)
  std::priority_queue<BusyEntry, std::vector<BusyEntry>,
                      std::greater<BusyEntry>>
      busy;
  std::vector<int> idle;

  size_t peak_platform_bytes = 0;
  size_t peak_strategy_bytes = 0;
  Rng reposition_rng(workload.lifecycle.reposition_seed);

  std::vector<double> prices;
  std::vector<bool> accepted;
  std::vector<double> weights;
  std::vector<Worker> period_workers;  // pooled across periods
  std::vector<int> pool_of;  // snapshot worker index -> pool index
  std::vector<char> matched_flag(workload.workers.size(), 0);
  GraphBuildWorkspace graph_ws;
  BipartiteGraph graph;
  MaxWeightMatchingWorkspace match_ws;
  // Monte-Carlo diagnostic scratch, pooled across periods.
  std::vector<PricedTask> mc_priced;
  std::vector<PossibleWorldsWorkspace> mc_workspaces;

  // Period pipeline (see SimOptions::pipeline_periods and DESIGN.md §10):
  // the task side of period t+1's snapshot — a pure function of the
  // validated, period-sorted, immutable workload — is built on the pool
  // while period t runs. Two snapshot slots alternate by period parity;
  // at most one prebuild job is ever outstanding, and the worker side is
  // attached on this thread only after period t's lifecycle updates, so
  // the pipelined run is bit-identical to the serial one.
  const bool pipelined = options.pipeline_periods && options.pool != nullptr;

  // Per-period task ranges, equivalent to the sequential cursor scan the
  // serial path uses (ValidateWorkload guarantees period-sorted tasks).
  std::vector<std::pair<size_t, size_t>> task_range(workload.num_periods);
  {
    size_t i = 0;
    for (int32_t t = 0; t < workload.num_periods; ++t) {
      const size_t begin = i;
      while (i < workload.tasks.size() && workload.tasks[i].period == t) ++i;
      task_range[t] = {begin, i};
    }
  }
  const Task* task_base = workload.tasks.data();
  MarketSnapshot snap_slots[2];
  auto build_task_side = [&](int32_t t) {
    snap_slots[t % 2].ResetTasks(&workload.grid, t,
                                 task_base + task_range[t].first,
                                 task_base + task_range[t].second);
  };
  std::unique_ptr<internal::Latch> prebuild_latch;
  auto submit_prebuild = [&](int32_t t) {
    if (!pipelined || t >= workload.num_periods) return;
    prebuild_latch = std::make_unique<internal::Latch>(1);
    internal::Latch* latch = prebuild_latch.get();
    options.pool->Submit([&build_task_side, latch, t](int /*worker*/) {
      build_task_side(t);
      latch->Done();
    });
  };
  // Early returns below must not leave a prebuild job referencing this
  // frame; drain it on every exit path.
  struct PrebuildDrain {
    std::unique_ptr<internal::Latch>* latch;
    ~PrebuildDrain() {
      if (latch->get() != nullptr) (*latch)->Wait();
    }
  } drain{&prebuild_latch};

  submit_prebuild(0);
  for (int32_t t = 0; t < workload.num_periods; ++t) {
    MarketSnapshot& snapshot = snap_slots[t % 2];
    if (pipelined) {
      prebuild_latch->Wait();
      prebuild_latch.reset();
    } else {
      build_task_side(t);
    }
    // Kick off period t+1's task side before this period's work; it
    // touches only the other slot and the immutable workload.
    submit_prebuild(t + 1);

    // Admit workers entering this period.
    while (next_entry < workload.workers.size() &&
           workload.workers[next_entry].period == t) {
      idle.push_back(static_cast<int>(next_entry));
      ++next_entry;
    }
    // Return workers whose ride finished.
    while (!busy.empty() && busy.top().first <= t) {
      idle.push_back(busy.top().second);
      busy.pop();
    }

    // Collect available workers, dropping retired ones permanently.
    period_workers.clear();
    pool_of.clear();
    size_t keep = 0;
    for (int idx : idle) {
      if (state[idx].consumed || t >= state[idx].retire_at) continue;
      idle[keep++] = idx;
      Worker w = workload.workers[idx];
      w.location = state[idx].location;
      w.grid = state[idx].grid;
      period_workers.push_back(w);
      pool_of.push_back(idx);
    }
    idle.resize(keep);

    if (snapshot.tasks().empty() && period_workers.empty()) continue;

    snapshot.SetWorkers(period_workers.data(),
                        period_workers.data() + period_workers.size());

    // Price.
    const auto price_start = Clock::now();
    MAPS_RETURN_NOT_OK(strategy->PriceRound(snapshot, &prices));
    if (static_cast<int>(prices.size()) != snapshot.num_grids()) {
      return Status::Internal(strategy->name() +
                              " returned wrong price vector size");
    }

    // Requesters decide; the strategy sees only the bits.
    accepted.assign(snapshot.tasks().size(), false);
    for (size_t i = 0; i < snapshot.tasks().size(); ++i) {
      const Task& task = snapshot.tasks()[i];
      accepted[i] = workload.valuations[task.id] >= prices[task.grid];
    }
    strategy->ObserveFeedback(snapshot, prices, accepted);
    result.pricing_time_sec += Seconds(price_start, Clock::now());

    // Assignment: maximum-weight matching over accepted tasks (Def. 5).
    // Graph and matching buffers are pooled across periods.
    BipartiteGraph::BuildInto(snapshot.tasks(), snapshot.workers(),
                              workload.grid, &graph_ws, &graph);

    // Monte-Carlo expected-revenue diagnostic: E[U(B^t)] of the posted
    // prices under the TRUE acceptance ratios (Def. 6), estimated over
    // mc_worlds counter-streamed possible worlds. Uses the same
    // geometry-only graph the assignment uses; period t's worlds live in
    // seed family mc_seed + t so every (period, world) pair is an
    // independent, reproducible stream.
    double period_mc = 0.0;
    if (options.mc_worlds > 0 && !snapshot.tasks().empty()) {
      mc_priced.clear();
      for (const Task& task : snapshot.tasks()) {
        const double p = prices[task.grid];
        mc_priced.push_back(PricedTask{
            task.distance, p, workload.oracle.TrueAcceptRatio(task.grid, p)});
      }
      period_mc = MonteCarloExpectedRevenue(
          graph, mc_priced, options.mc_seed + static_cast<uint64_t>(t),
          options.mc_worlds, options.pool, &mc_workspaces);
      result.mc_expected_revenue += period_mc;
    }
    weights.assign(snapshot.tasks().size(), -1.0);
    int32_t n_accepted = 0;
    for (size_t i = 0; i < snapshot.tasks().size(); ++i) {
      if (!accepted[i]) continue;
      ++n_accepted;
      weights[i] =
          snapshot.tasks()[i].distance * prices[snapshot.tasks()[i].grid];
    }
    // Called for the matching it leaves in match_ws.inc; revenue needs
    // per-task attribution below, not the returned total.
    (void)MaxWeightTaskMatchingValue(graph, weights, &match_ws);
    const Matching& period_matching = match_ws.inc.matching();

    // Revenue and worker lifecycle updates.
    double period_revenue = 0.0;
    int32_t n_matched = 0;
    for (size_t i = 0; i < snapshot.tasks().size(); ++i) {
      const int r = period_matching.match_left[i];
      if (r == Matching::kUnmatched) continue;
      MAPS_DCHECK(accepted[i]);
      ++n_matched;
      period_revenue += weights[i];
      const int pool_idx = pool_of[r];
      if (single_use) {
        state[pool_idx].consumed = true;
      } else {
        const Task& task = snapshot.tasks()[i];
        const int32_t ride = std::max(
            1, static_cast<int32_t>(std::ceil(task.distance / speed)));
        state[pool_idx].next_free = t + ride;
        state[pool_idx].location = task.destination;
        state[pool_idx].grid = workload.grid.CellOf(task.destination);
        busy.push({state[pool_idx].next_free, pool_idx});
      }
      matched_flag[pool_idx] = 1;
    }

    // Drop matched workers from the idle list in one pass.
    if (n_matched > 0) {
      size_t keep2 = 0;
      for (int idx : idle) {
        if (matched_flag[idx]) {
          matched_flag[idx] = 0;
        } else {
          idle[keep2++] = idx;
        }
      }
      idle.resize(keep2);
    }

    // Idle workers chase surge prices (Sec. 4.2.3): move to the best-priced
    // adjacent cell with probability reposition_prob.
    if (workload.lifecycle.reposition_prob > 0.0) {
      const GridPartition& gp = workload.grid;
      for (int idx : idle) {
        if (!reposition_rng.NextBernoulli(
                workload.lifecycle.reposition_prob)) {
          continue;
        }
        const GridId here = state[idx].grid;
        const int row = here / gp.cols();
        const int col = here % gp.cols();
        GridId best = here;
        for (int dr = -1; dr <= 1; ++dr) {
          for (int dc = -1; dc <= 1; ++dc) {
            const int nr = row + dr;
            const int nc = col + dc;
            if (nr < 0 || nr >= gp.rows() || nc < 0 || nc >= gp.cols()) {
              continue;
            }
            const GridId cand = nr * gp.cols() + nc;
            if (prices[cand] > prices[best]) best = cand;
          }
        }
        if (best != here) {
          state[idx].location = gp.CellCenter(best);
          state[idx].grid = best;
        }
      }
    }

    result.total_revenue += period_revenue;
    result.num_tasks += static_cast<int64_t>(snapshot.tasks().size());
    result.num_accepted += n_accepted;
    result.num_matched += n_matched;

    const size_t platform_bytes =
        graph.FootprintBytes() +
        snapshot.tasks().capacity() * sizeof(Task) +
        snapshot.workers().capacity() * sizeof(Worker) +
        state.capacity() * sizeof(WorkerState);
    peak_platform_bytes = std::max(peak_platform_bytes, platform_bytes);
    peak_strategy_bytes =
        std::max(peak_strategy_bytes, strategy->MemoryFootprintBytes());

    if (options.collect_per_period) {
      PeriodStats ps;
      ps.period = t;
      ps.revenue = period_revenue;
      ps.mc_expected_revenue = period_mc;
      ps.num_tasks = static_cast<int32_t>(snapshot.tasks().size());
      ps.num_accepted = n_accepted;
      ps.num_matched = n_matched;
      ps.num_available_workers =
          static_cast<int32_t>(snapshot.workers().size());
      result.per_period.push_back(ps);
    }
  }

  result.total_time_sec = result.warmup_time_sec + result.pricing_time_sec;
  result.memory_bytes = peak_platform_bytes + peak_strategy_bytes;
  return result;
}

}  // namespace maps
