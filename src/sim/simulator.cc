#include "sim/simulator.h"

#include <chrono>
#include <utility>

#include "service/replay_driver.h"
#include "util/logging.h"

namespace maps {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

Result<SimulationResult> RunSimulation(const Workload& workload,
                                       PricingStrategy* strategy,
                                       const SimOptions& options) {
  if (strategy == nullptr) {
    return Status::InvalidArgument("null strategy");
  }
  MAPS_RETURN_NOT_OK(ValidateWorkload(workload));

  SimulationResult result;

  // The engine owns the per-period loop; the market-shaped engine knobs
  // come from the workload, everything else from the caller. Construction
  // lends the pool to the strategy (clearing a stale pool on reuse).
  EngineOptions engine_options = options.engine;
  engine_options.lifecycle = workload.lifecycle;
  engine_options.mc_oracle = &workload.oracle;
  MarketEngine engine(&workload.grid, strategy, engine_options);

  // Warm-up against a fork of the ground truth: independent probe
  // randomness, identical demand.
  if (!options.skip_warmup) {
    const auto warm_start = Clock::now();
    DemandOracle history = workload.oracle.Fork(options.warmup_stream);
    MAPS_RETURN_NOT_OK(strategy->Warmup(workload.grid, &history));
    result.warmup_time_sec = Seconds(warm_start, Clock::now());
  }

  // Per-period task ranges over the validated, period-sorted task array.
  std::vector<std::pair<size_t, size_t>> task_range(workload.num_periods);
  {
    size_t i = 0;
    for (int32_t t = 0; t < workload.num_periods; ++t) {
      const size_t begin = i;
      while (i < workload.tasks.size() && workload.tasks[i].period == t) ++i;
      task_range[t] = {begin, i};
    }
  }
  const Task* task_base = workload.tasks.data();
  const double* val_base = workload.valuations.data();

  // Replay: stage period 0, then per period stage t+1 (prebuilt on the
  // pool when pipelining), admit the period's workers, and close.
  if (workload.num_periods > 0) {
    for (size_t i = task_range[0].first; i < task_range[0].second; ++i) {
      MAPS_RETURN_NOT_OK(engine.SubmitTask(task_base[i], val_base[i]));
    }
  }
  size_t next_entry = 0;
  PeriodOutcome outcome;
  for (int32_t t = 0; t < workload.num_periods; ++t) {
    if (t + 1 < workload.num_periods) {
      const auto [begin, end] = task_range[t + 1];
      MAPS_RETURN_NOT_OK(engine.StageNextPeriodTasks(
          task_base + begin, task_base + end, val_base + begin));
    }
    while (next_entry < workload.workers.size() &&
           workload.workers[next_entry].period == t) {
      MAPS_RETURN_NOT_OK(engine.AddWorker(workload.workers[next_entry]));
      ++next_entry;
    }
    MAPS_RETURN_NOT_OK(engine.ClosePeriod(&outcome));
    if (outcome.skipped) continue;

    result.total_revenue += outcome.revenue;
    result.mc_expected_revenue += outcome.mc_expected_revenue;
    result.num_tasks += outcome.num_tasks;
    result.num_accepted += static_cast<int64_t>(outcome.accepted.size());
    result.num_matched += static_cast<int64_t>(outcome.matches.size());

    if (options.collect_per_period) {
      PeriodStats ps;
      ps.period = outcome.period;
      ps.revenue = outcome.revenue;
      ps.mc_expected_revenue = outcome.mc_expected_revenue;
      ps.num_tasks = outcome.num_tasks;
      ps.num_accepted = static_cast<int32_t>(outcome.accepted.size());
      ps.num_matched = static_cast<int32_t>(outcome.matches.size());
      ps.num_available_workers = outcome.num_available_workers;
      result.per_period.push_back(ps);
    }
  }

  result.pricing_time_sec = engine.strategy_seconds();
  result.total_time_sec = result.warmup_time_sec + result.pricing_time_sec;
  result.memory_bytes =
      engine.peak_platform_bytes() + engine.peak_strategy_bytes();
  return result;
}

Result<SimulationResult> RunReplayStream(ReplayEventStream* stream,
                                         const GridPartition& grid,
                                         PricingStrategy* strategy,
                                         const DemandOracle* warmup_oracle,
                                         const SimOptions& options) {
  if (stream == nullptr) return Status::InvalidArgument("null event stream");
  if (strategy == nullptr) return Status::InvalidArgument("null strategy");

  SimulationResult result;
  MarketEngine engine(&grid, strategy, options.engine);

  if (!options.skip_warmup && warmup_oracle != nullptr) {
    const auto warm_start = Clock::now();
    DemandOracle history = warmup_oracle->Fork(options.warmup_stream);
    MAPS_RETURN_NOT_OK(strategy->Warmup(grid, &history));
    result.warmup_time_sec = Seconds(warm_start, Clock::now());
  }

  ReplayStreamOptions drive;
  if (options.collect_per_period) {
    drive.on_close = [&result](const PeriodOutcome& outcome) {
      if (outcome.skipped) return Status::OK();
      PeriodStats ps;
      ps.period = outcome.period;
      ps.revenue = outcome.revenue;
      ps.mc_expected_revenue = outcome.mc_expected_revenue;
      ps.num_tasks = outcome.num_tasks;
      ps.num_accepted = static_cast<int32_t>(outcome.accepted.size());
      ps.num_matched = static_cast<int32_t>(outcome.matches.size());
      ps.num_available_workers = outcome.num_available_workers;
      result.per_period.push_back(ps);
      result.mc_expected_revenue += outcome.mc_expected_revenue;
      result.num_tasks += outcome.num_tasks;
      return Status::OK();
    };
  } else {
    drive.on_close = [&result](const PeriodOutcome& outcome) {
      result.mc_expected_revenue += outcome.mc_expected_revenue;
      result.num_tasks += outcome.num_tasks;
      return Status::OK();
    };
  }
  auto summary_or = ReplayEventsThroughEngine(stream, grid, &engine, drive);
  MAPS_RETURN_NOT_OK(summary_or.status());
  const ReplayStreamSummary& summary = summary_or.ValueOrDie();
  result.total_revenue = summary.total_revenue;
  result.num_accepted = summary.total_accepted;
  result.num_matched = summary.total_matched;

  result.pricing_time_sec = engine.strategy_seconds();
  result.total_time_sec = result.warmup_time_sec + result.pricing_time_sec;
  result.memory_bytes =
      engine.peak_platform_bytes() + engine.peak_strategy_bytes();
  return result;
}

}  // namespace maps
