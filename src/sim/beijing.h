// Beijing taxi-trace SURROGATE generator (Table 4 of the paper).
//
// The original evaluation uses proprietary Didi Chuxing taxi-calling logs.
// This generator synthesizes traces calibrated to every statistic Table 4
// publishes — population counts, the 10x8 grid over (116.30, 39.84)-
// (116.50, 40.0) (~17.1 km x 17.8 km), 120 one-minute periods, 3 km worker
// radius — and to the qualitative structure of the two windows:
//
//   #1 evening peak (5-7 pm): |W| = 28210, |R| = 113372; heavy demand
//      clustered at business-district hotspots, destinations spread toward
//      residential areas, arrival rate peaking mid-window.
//   #2 late night (0-2 am):   |W| = 19006, |R| = 55659; demand clustered at
//      entertainment districts, thinning over time, higher valuations.
//
// Workers complete a ride in ceil(d_r / speed) periods, reappear at the
// destination, and retire delta_w periods after entering (the paper's
// x-axis for Figs. 8c-8l). See DESIGN.md for the substitution argument.

#pragma once

#include <cstdint>

#include "sim/workload.h"
#include "util/result.h"

namespace maps {

/// \brief Parameters of the surrogate trace.
struct BeijingConfig {
  enum class Window { kEveningPeak, kLateNight };
  Window window = Window::kEveningPeak;

  /// Worker availability duration delta_w in periods (paper sweeps 5..25).
  int worker_duration = 15;

  /// Scale factor on the published population counts (1.0 = full size;
  /// tests use smaller scales).
  double population_scale = 1.0;

  /// Taxi speed in km per one-minute period (1.0 => 60 km/h).
  double speed_km_per_period = 1.0;

  uint64_t seed = 2016;
};

/// \brief Materializes the surrogate workload.
Result<Workload> GenerateBeijing(const BeijingConfig& config);

}  // namespace maps
