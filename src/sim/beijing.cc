#include "sim/beijing.h"

#include <algorithm>
#include <cmath>

#include "rng/distributions.h"
#include "util/logging.h"

namespace maps {

namespace {

// Table 4 constants. The lon/lat rectangle is mapped to a local tangent
// plane in km: 0.2 deg lon * cos(39.9 deg) * 111.32 km ~= 17.08 km wide,
// 0.16 deg lat * 111.32 km ~= 17.81 km tall; 10 columns x 8 rows of
// 0.02 deg x 0.02 deg cells.
constexpr double kRegionWidthKm = 17.08;
constexpr double kRegionHeightKm = 17.81;
constexpr int kGridCols = 10;
constexpr int kGridRows = 8;
constexpr int kNumPeriods = 120;
constexpr double kWorkerRadiusKm = 3.0;
constexpr int kPeakWorkers = 28210;
constexpr int kPeakTasks = 113372;
constexpr int kNightWorkers = 19006;
constexpr int kNightTasks = 55659;

struct Hotspot {
  Point center;
  double sigma;
  double weight;
};

Point SampleFromMixture(Rng& rng, const std::vector<Hotspot>& spots,
                        double uniform_weight, const Rect& region) {
  double total = uniform_weight;
  for (const auto& h : spots) total += h.weight;
  double u = rng.NextDouble() * total;
  for (const auto& h : spots) {
    if (u < h.weight) {
      return region.Clamp(Point{SampleNormal(rng, h.center.x, h.sigma),
                                SampleNormal(rng, h.center.y, h.sigma)});
    }
    u -= h.weight;
  }
  return Point{rng.NextDouble(region.min_x, region.max_x),
               rng.NextDouble(region.min_y, region.max_y)};
}

}  // namespace

Result<Workload> GenerateBeijing(const BeijingConfig& cfg) {
  if (cfg.worker_duration <= 0) {
    return Status::InvalidArgument("worker_duration must be positive");
  }
  if (cfg.population_scale <= 0.0 || cfg.population_scale > 1.0) {
    return Status::InvalidArgument("population_scale must be in (0, 1]");
  }

  const bool peak = cfg.window == BeijingConfig::Window::kEveningPeak;
  const int num_tasks = static_cast<int>(
      (peak ? kPeakTasks : kNightTasks) * cfg.population_scale);
  const int num_workers = static_cast<int>(
      (peak ? kPeakWorkers : kNightWorkers) * cfg.population_scale);

  Rect region{0.0, 0.0, kRegionWidthKm, kRegionHeightKm};
  MAPS_ASSIGN_OR_RETURN(
      GridPartition grid, GridPartition::Make(region, kGridRows, kGridCols));

  // Hotspot geography. Evening peak: task origins at business districts
  // (CBD east, Zhongguancun northwest, Financial Street center), spreading
  // to residential destinations. Late night: origins at entertainment
  // districts (Sanlitun, Houhai), destinations residential.
  std::vector<Hotspot> origin_spots, dest_spots, worker_spots;
  if (peak) {
    origin_spots = {{{13.0, 10.0}, 1.6, 0.35},
                    {{4.0, 13.5}, 1.8, 0.25},
                    {{8.5, 9.0}, 1.5, 0.20}};
    dest_spots = {{{3.0, 4.0}, 2.5, 0.25},
                  {{14.0, 15.0}, 2.5, 0.25},
                  {{9.0, 3.0}, 2.5, 0.20}};
    worker_spots = {{{12.0, 9.5}, 2.5, 0.30}, {{7.0, 9.0}, 3.0, 0.30}};
  } else {
    origin_spots = {{{12.5, 11.5}, 1.2, 0.45}, {{8.0, 12.0}, 1.4, 0.30}};
    dest_spots = {{{4.0, 5.0}, 3.0, 0.30}, {{13.0, 4.0}, 3.0, 0.30}};
    worker_spots = {{{11.0, 10.5}, 3.0, 0.40}};
  }

  Rng master(cfg.seed);
  Rng grid_rng = master.Fork(1);
  Rng task_rng = master.Fork(2);
  Rng worker_rng = master.Fork(3);
  Rng valuation_rng = master.Fork(4);

  // Valuations: truncated normal per grid. Late-night requesters pay more
  // (scarce supply, urgency); hotspot-adjacent grids value rides higher.
  std::vector<std::unique_ptr<DemandModel>> models;
  models.reserve(grid.num_cells());
  const double base_mu = peak ? 2.0 : 2.5;
  for (int g = 0; g < grid.num_cells(); ++g) {
    const Point c = grid.CellCenter(g);
    double spot_boost = 0.0;
    for (const auto& h : origin_spots) {
      spot_boost = std::max(
          spot_boost, 0.6 * std::exp(-EuclideanDistance(c, h.center) / 6.0));
    }
    const double jitter = grid_rng.NextDouble(-0.2, 0.2);
    const double mu = std::clamp(base_mu + spot_boost + jitter, 1.0, 5.0);
    models.push_back(
        std::make_unique<TruncatedNormalDemand>(mu, 1.0, 1.0, 5.0));
  }
  MAPS_ASSIGN_OR_RETURN(
      DemandOracle oracle,
      DemandOracle::Make(std::move(models), master.NextUint64()));

  Workload w(std::move(grid), std::move(oracle));
  w.name = peak ? "beijing#1 (5pm-7pm)" : "beijing#2 (0am-2am)";
  w.num_periods = kNumPeriods;
  w.lifecycle.single_use = false;
  w.lifecycle.speed = cfg.speed_km_per_period;

  // Temporal profile: evening demand peaks mid-window; late-night demand
  // decays from the start (bars close, then the city sleeps).
  auto sample_task_period = [&](Rng& rng) -> int32_t {
    if (peak) {
      const double x = SampleNormal(rng, 0.5 * kNumPeriods, 0.25 * kNumPeriods);
      return static_cast<int32_t>(
          std::clamp(x, 0.0, static_cast<double>(kNumPeriods - 1)));
    }
    const double x = SampleExponential(rng, 1.0 / (0.35 * kNumPeriods));
    return static_cast<int32_t>(
        std::clamp(x, 0.0, static_cast<double>(kNumPeriods - 1)));
  };

  w.tasks.reserve(num_tasks);
  w.valuations.reserve(num_tasks);
  for (int i = 0; i < num_tasks; ++i) {
    Task t;
    t.period = sample_task_period(task_rng);
    t.origin = SampleFromMixture(task_rng, origin_spots, 0.20, region);
    t.destination = SampleFromMixture(task_rng, dest_spots, 0.25, region);
    t.distance = EuclideanDistance(t.origin, t.destination);
    t.grid = w.grid.CellOf(t.origin);
    w.tasks.push_back(t);
  }
  std::stable_sort(w.tasks.begin(), w.tasks.end(),
                   [](const Task& a, const Task& b) {
                     return a.period < b.period;
                   });
  for (size_t i = 0; i < w.tasks.size(); ++i) {
    w.tasks[i].id = static_cast<TaskId>(i);
    w.valuations.push_back(
        w.oracle.model(w.tasks[i].grid).Sample(valuation_rng));
  }

  // Workers trickle in over the first three quarters of the window so late
  // arrivals can still serve delta_w periods.
  w.workers.reserve(num_workers);
  for (int i = 0; i < num_workers; ++i) {
    Worker ww;
    ww.period = static_cast<int32_t>(
        worker_rng.NextBounded(static_cast<uint64_t>(kNumPeriods * 3 / 4)));
    ww.location = SampleFromMixture(worker_rng, worker_spots, 0.40, region);
    ww.radius = kWorkerRadiusKm;
    ww.duration = cfg.worker_duration;
    ww.grid = w.grid.CellOf(ww.location);
    w.workers.push_back(ww);
  }
  std::stable_sort(w.workers.begin(), w.workers.end(),
                   [](const Worker& a, const Worker& b) {
                     return a.period < b.period;
                   });
  for (size_t i = 0; i < w.workers.size(); ++i) {
    w.workers[i].id = static_cast<WorkerId>(i);
  }

  MAPS_RETURN_NOT_OK(ValidateWorkload(w));
  return w;
}

}  // namespace maps
