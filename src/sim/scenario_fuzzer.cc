#include "sim/scenario_fuzzer.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "geo/region_partition.h"
#include "rng/counter_rng.h"
#include "sim/replay_export.h"

namespace maps {

namespace {

/// Purpose keys of the CounterRng streams: every draw category has its own
/// stream of `seed`, so adding a draw to one category never shifts another
/// (the reproducibility contract is per-field, not just per-file).
enum Stream : uint64_t {
  kCountStream = 1,
  kWorkerPosStream = 2,
  kWorkerAttrStream = 3,
  kTaskPosStream = 4,
  kTaskDestStream = 5,
  kValuationStream = 6,
  kOracleProbeStream = 7,
};

/// Deterministic +/-25% jitter around `base`, at least 1.
int JitteredCount(int base, CounterRng* rng) {
  const double factor = 0.75 + 0.5 * rng->NextDouble();
  return std::max(1, static_cast<int>(std::lround(base * factor)));
}

/// Uniform point in the scenario's square region.
Point UniformPoint(const ScenarioSpec& spec, CounterRng* rng) {
  return Point{rng->NextDouble(0.0, spec.extent),
               rng->NextDouble(0.0, spec.extent)};
}

/// Uniform point inside one grid cell (used for boundary-heavy placement).
Point PointInCell(const GridPartition& grid, GridId cell, CounterRng* rng) {
  const Rect r = grid.CellRect(cell);
  return Point{rng->NextDouble(r.min_x, r.max_x),
               rng->NextDouble(r.min_y, r.max_y)};
}

/// Number of tasks arriving at period t (surge window applied).
int TasksAt(const ScenarioSpec& spec, int32_t t, CounterRng* rng) {
  int base = spec.tasks_per_period;
  if (spec.family == ScenarioSpec::Family::kFlashSurge &&
      t >= spec.surge_begin && t < spec.surge_begin + spec.surge_len) {
    base = static_cast<int>(std::lround(base * spec.surge_multiplier));
  }
  return JitteredCount(base, rng);
}

/// Number of workers arriving at period t (storms double the inflow to
/// compensate for the short lifetimes).
int WorkersAt(const ScenarioSpec& spec, int32_t t, CounterRng* rng) {
  int base = spec.workers_per_period;
  if (spec.family == ScenarioSpec::Family::kChurnStorm) base *= 2;
  if (t == 0) base += spec.initial_workers;
  return JitteredCount(base, rng);
}

}  // namespace

const char* ScenarioFamilyName(ScenarioSpec::Family family) {
  switch (family) {
    case ScenarioSpec::Family::kBaseline:
      return "baseline";
    case ScenarioSpec::Family::kDemandDrift:
      return "demand_drift";
    case ScenarioSpec::Family::kFlashSurge:
      return "flash_surge";
    case ScenarioSpec::Family::kRegionChurn:
      return "region_churn";
    case ScenarioSpec::Family::kBoundaryHeavy:
      return "boundary_heavy";
    case ScenarioSpec::Family::kChurnStorm:
      return "churn_storm";
  }
  return "unknown";
}

Status ValidateScenarioSpec(const ScenarioSpec& spec) {
  const auto fail = [&](const std::string& what) {
    return Status::InvalidArgument("scenario '" + spec.name + "': " + what);
  };
  if (spec.name.empty()) return Status::InvalidArgument("scenario needs a name");
  if (spec.num_periods <= 0) return fail("num_periods must be positive");
  if (spec.grid_rows <= 0 || spec.grid_cols <= 0) {
    return fail("grid dimensions must be positive");
  }
  if (spec.extent <= 0.0) return fail("extent must be positive");
  if (spec.tasks_per_period <= 0 || spec.workers_per_period <= 0) {
    return fail("arrival volumes must be positive");
  }
  if (spec.initial_workers < 0) return fail("initial_workers must be >= 0");
  if (spec.worker_radius_lo <= 0.0 ||
      spec.worker_radius_hi < spec.worker_radius_lo) {
    return fail("worker radius range must be positive and ordered");
  }
  if (spec.worker_duration <= 0) return fail("worker_duration must be positive");
  if (spec.worker_speed <= 0.0) return fail("worker_speed must be positive");
  if (spec.demand_sigma <= 0.0) return fail("demand_sigma must be positive");
  if (spec.v_hi <= spec.v_lo) return fail("valuation range must be ordered");
  if (spec.regret_budget_frac <= 0.0) {
    return fail("regret_budget_frac must be positive");
  }
  switch (spec.family) {
    case ScenarioSpec::Family::kBaseline:
      break;
    case ScenarioSpec::Family::kDemandDrift:
      if (spec.drift_period <= 0 || spec.drift_period >= spec.num_periods) {
        return fail("drift_period must fall inside the horizon");
      }
      break;
    case ScenarioSpec::Family::kFlashSurge:
      if (spec.surge_begin < 0 || spec.surge_len <= 0 ||
          spec.surge_begin + spec.surge_len > spec.num_periods) {
        return fail("surge window must fall inside the horizon");
      }
      if (spec.surge_multiplier <= 1.0) {
        return fail("surge_multiplier must exceed 1");
      }
      break;
    case ScenarioSpec::Family::kRegionChurn:
      if (spec.churn_region_rows <= 0 ||
          spec.churn_region_rows >= spec.grid_rows) {
        return fail("churn band must cover some but not all rows");
      }
      if (spec.churn_period <= 0 || spec.churn_period >= spec.num_periods) {
        return fail("churn_period must fall inside the horizon");
      }
      if (spec.churn_band_bias < 0.0 || spec.churn_band_bias > 1.0) {
        return fail("churn_band_bias must be in [0, 1]");
      }
      break;
    case ScenarioSpec::Family::kBoundaryHeavy:
      if (spec.boundary_frac < 0.0 || spec.boundary_frac > 1.0) {
        return fail("boundary_frac must be in [0, 1]");
      }
      if (spec.num_regions < 2 || spec.num_regions > spec.grid_rows) {
        return fail("num_regions must be in [2, grid_rows]");
      }
      break;
    case ScenarioSpec::Family::kChurnStorm:
      if (spec.churn_storm_duration <= 0) {
        return fail("churn_storm_duration must be positive");
      }
      break;
  }
  return Status::OK();
}

std::unique_ptr<DemandModel> TrueDemandAt(const ScenarioSpec& spec,
                                          int32_t period) {
  double mu = spec.demand_mu;
  if (spec.family == ScenarioSpec::Family::kDemandDrift &&
      period >= spec.drift_period) {
    mu += spec.drift_mu_delta;
  }
  return std::make_unique<TruncatedNormalDemand>(mu, spec.demand_sigma,
                                                 spec.v_lo, spec.v_hi);
}

Result<Workload> BuildScenarioWorkload(const ScenarioSpec& spec,
                                       uint64_t seed) {
  MAPS_RETURN_NOT_OK(ValidateScenarioSpec(spec));

  const Rect region{0.0, 0.0, spec.extent, spec.extent};
  MAPS_ASSIGN_OR_RETURN(
      GridPartition grid,
      GridPartition::Make(region, spec.grid_rows, spec.grid_cols));

  // Boundary-heavy placement targets the seam cells of the row-band
  // partition the sharded deployment will use.
  std::vector<GridId> boundary_cells;
  if (spec.family == ScenarioSpec::Family::kBoundaryHeavy) {
    MAPS_ASSIGN_OR_RETURN(RegionPartition partition,
                          RegionPartition::Make(grid, spec.num_regions));
    boundary_cells = partition.boundary_grids();
  }

  // The warm-up oracle carries the PRE-drift demand: under kDemandDrift the
  // strategy trains on a world that stops existing mid-horizon.
  MAPS_ASSIGN_OR_RETURN(
      DemandOracle oracle,
      DemandOracle::Make(
          ReplicateDemand(*TrueDemandAt(spec, 0), grid.num_cells()),
          seed ^ kOracleProbeStream));

  Workload w(std::move(grid), std::move(oracle));
  {
    std::ostringstream name;
    name << "fuzz:" << spec.name << ":family=" << ScenarioFamilyName(spec.family)
         << ":seed=" << seed;
    w.name = name.str();
  }
  w.num_periods = spec.num_periods;
  w.lifecycle.single_use = false;
  w.lifecycle.speed = spec.worker_speed;
  w.lifecycle.reposition_prob = 0.0;

  CounterRng count_rng(seed, kCountStream);
  CounterRng worker_pos_rng(seed, kWorkerPosStream);
  CounterRng worker_attr_rng(seed, kWorkerAttrStream);
  CounterRng task_pos_rng(seed, kTaskPosStream);
  CounterRng task_dest_rng(seed, kTaskDestStream);
  CounterRng valuation_rng(seed, kValuationStream);

  const double band_top =
      spec.extent * static_cast<double>(spec.churn_region_rows) /
      static_cast<double>(spec.grid_rows);

  WorkerId next_worker_id = 0;
  for (int32_t t = 0; t < spec.num_periods; ++t) {
    const std::unique_ptr<DemandModel> demand = TrueDemandAt(spec, t);

    const int num_workers = WorkersAt(spec, t, &count_rng);
    for (int i = 0; i < num_workers; ++i) {
      Worker worker;
      worker.id = next_worker_id++;
      worker.period = t;
      switch (spec.family) {
        case ScenarioSpec::Family::kBoundaryHeavy:
          if (worker_pos_rng.NextDouble() < spec.boundary_frac) {
            const size_t pick =
                worker_pos_rng.NextBounded(boundary_cells.size());
            worker.location =
                PointInCell(w.grid, boundary_cells[pick], &worker_pos_rng);
          } else {
            worker.location = UniformPoint(spec, &worker_pos_rng);
          }
          break;
        case ScenarioSpec::Family::kRegionChurn:
          // Over-supply the churn band until the churn hits, then place
          // uniformly — the band starves right when its workers vanish.
          if (t < spec.churn_period &&
              worker_pos_rng.NextDouble() < spec.churn_band_bias) {
            worker.location = Point{worker_pos_rng.NextDouble(0.0, spec.extent),
                                    worker_pos_rng.NextDouble(0.0, band_top)};
          } else {
            worker.location = UniformPoint(spec, &worker_pos_rng);
          }
          break;
        default:
          worker.location = UniformPoint(spec, &worker_pos_rng);
          break;
      }
      worker.radius = worker_attr_rng.NextDouble(spec.worker_radius_lo,
                                                 spec.worker_radius_hi);
      worker.duration = spec.worker_duration;
      if (spec.family == ScenarioSpec::Family::kChurnStorm) {
        worker.duration = spec.churn_storm_duration;
      } else if (spec.family == ScenarioSpec::Family::kRegionChurn &&
                 t < spec.churn_period && worker.location.y < band_top) {
        // Every band worker retires exactly at the churn period.
        worker.duration = spec.churn_period - t;
      }
      worker.grid = w.grid.CellOf(worker.location);
      w.workers.push_back(worker);
    }

    const int num_tasks = TasksAt(spec, t, &count_rng);
    for (int i = 0; i < num_tasks; ++i) {
      Task task;
      task.id = static_cast<TaskId>(w.tasks.size());
      task.period = t;
      if (spec.family == ScenarioSpec::Family::kBoundaryHeavy &&
          task_pos_rng.NextDouble() < spec.boundary_frac) {
        const size_t pick = task_pos_rng.NextBounded(boundary_cells.size());
        task.origin = PointInCell(w.grid, boundary_cells[pick], &task_pos_rng);
      } else {
        task.origin = UniformPoint(spec, &task_pos_rng);
      }
      task.destination = UniformPoint(spec, &task_dest_rng);
      task.distance = EuclideanDistance(task.origin, task.destination);
      task.grid = w.grid.CellOf(task.origin);
      w.tasks.push_back(task);
      w.valuations.push_back(demand->Sample(valuation_rng));
    }
  }

  MAPS_RETURN_NOT_OK(ValidateWorkload(w));
  return w;
}

Status WriteScenarioLog(const ScenarioSpec& spec, uint64_t seed,
                        std::ostream& out, int inject_malformed_every) {
  MAPS_ASSIGN_OR_RETURN(Workload workload, BuildScenarioWorkload(spec, seed));
  if (inject_malformed_every <= 0) return WriteReplayLog(workload, out);

  // Corruption mode: write the clean log, then re-emit it with corpus lines
  // spliced in after every N-th event line.
  std::ostringstream clean;
  MAPS_RETURN_NOT_OK(WriteReplayLog(workload, clean));
  const auto& corpus = MalformedReplayLineCorpus();
  std::istringstream in(clean.str());
  std::string line;
  int64_t events = 0;
  size_t next_bad = 0;
  while (std::getline(in, line)) {
    out << line << "\n";
    if (line.empty() || line[0] == '#') continue;
    ++events;
    if (events % inject_malformed_every == 0) {
      out << corpus[next_bad % corpus.size()].line << "\n";
      ++next_bad;
    }
  }
  if (!out) return Status::Internal("scenario log write failed");
  return Status::OK();
}

const std::vector<ScenarioSpec>& DefaultScenarioMatrix() {
  static const std::vector<ScenarioSpec>* matrix = [] {
    auto* specs = new std::vector<ScenarioSpec>;
    {
      ScenarioSpec s;
      s.name = "baseline";
      s.family = ScenarioSpec::Family::kBaseline;
      specs->push_back(s);
    }
    {
      ScenarioSpec s;
      s.name = "demand_drift_down";
      s.family = ScenarioSpec::Family::kDemandDrift;
      s.drift_mu_delta = -1.2;
      s.drift_period = 20;
      specs->push_back(s);
    }
    {
      ScenarioSpec s;
      s.name = "flash_surge_x6";
      s.family = ScenarioSpec::Family::kFlashSurge;
      s.surge_begin = 18;
      s.surge_len = 4;
      s.surge_multiplier = 6.0;
      specs->push_back(s);
    }
    {
      ScenarioSpec s;
      s.name = "region_churn_south";
      s.family = ScenarioSpec::Family::kRegionChurn;
      s.churn_region_rows = 2;
      s.churn_period = 20;
      specs->push_back(s);
    }
    {
      ScenarioSpec s;
      s.name = "boundary_heavy_k2";
      s.family = ScenarioSpec::Family::kBoundaryHeavy;
      s.boundary_frac = 0.85;
      s.num_regions = 2;
      specs->push_back(s);
    }
    {
      ScenarioSpec s;
      s.name = "churn_storm";
      s.family = ScenarioSpec::Family::kChurnStorm;
      s.churn_storm_duration = 2;
      specs->push_back(s);
    }
    return specs;
  }();
  return *matrix;
}

const std::vector<MalformedReplayLine>& MalformedReplayLineCorpus() {
  static const std::vector<MalformedReplayLine>* corpus =
      new std::vector<MalformedReplayLine>{
          {"syntax-no-object", nullptr, "{broken", "expected key"},
          {"trailing-garbage", nullptr, "{\"event\":\"close_period\"} x",
           "trailing characters"},
          {"unterminated-string", nullptr, "{\"event\":\"submit_task\",\"id\":\"",
           "unterminated string"},
          {"missing-colon", nullptr, "{\"event\" \"close_period\"}",
           "expected ':'"},
          {"empty-value", nullptr, "{\"event\":}", "expected value"},
          {"duplicate-key", nullptr,
           "{\"event\":\"close_period\",\"event\":\"close_period\"}",
           "duplicate key 'event'"},
          {"nested-value", nullptr, "{\"event\":\"close_period\",\"extra\":{}}",
           "unsupported value '{'"},
          {"nan-literal", nullptr,
           "{\"event\":\"submit_task\",\"id\":1,\"ox\":nan,\"oy\":1,\"dx\":2,"
           "\"dy\":3}",
           "unsupported value 'nan'"},
          {"missing-event", nullptr, "{\"id\":7}", "missing \"event\" field"},
          {"unknown-event", nullptr, "{\"event\":\"warp_drive\"}",
           "unknown event kind 'warp_drive'"},
          {"missing-required-double", "oy",
           "{\"event\":\"submit_task\",\"id\":3,\"ox\":1,\"dx\":2,\"dy\":3}",
           "missing required field 'oy'"},
          {"missing-required-int", "id",
           "{\"event\":\"add_worker\",\"x\":1,\"y\":2,\"radius\":3}",
           "missing required field 'id'"},
          {"overflow-double", "x",
           "{\"event\":\"add_worker\",\"id\":1,\"x\":1e999,\"y\":2,"
           "\"radius\":3}",
           "field 'x' must be a finite number"},
          {"non-integral-int", "id", "{\"event\":\"remove_worker\",\"id\":1.5}",
           "field 'id' must be a 64-bit integer"},
          {"overflow-int64", "id",
           "{\"event\":\"remove_worker\",\"id\":9223372036854775808}",
           "field 'id' must be a 64-bit integer"},
          {"junk-suffix-int", "task",
           "{\"event\":\"observe_acceptance\",\"task\":7x,\"accepted\":true}",
           "field 'task' must be a 64-bit integer"},
          {"overflow-int32", "duration",
           "{\"event\":\"add_worker\",\"id\":1,\"x\":1,\"y\":2,\"radius\":3,"
           "\"duration\":4294967296}",
           "field 'duration' must be a 32-bit integer"},
          {"bad-bool", "accepted",
           "{\"event\":\"observe_acceptance\",\"task\":1,\"accepted\":2}",
           "field 'accepted' must be a boolean"},
          {"malformed-optional", "valuation",
           "{\"event\":\"submit_task\",\"id\":1,\"ox\":1,\"oy\":1,\"dx\":2,"
           "\"dy\":3,\"valuation\":1e999}",
           "field 'valuation' must be a finite number"},
      };
  return *corpus;
}

}  // namespace maps
