#include "sim/workload.h"

#include <sstream>

namespace maps {

Status ValidateWorkload(const Workload& w) {
  if (w.num_periods <= 0) {
    return Status::InvalidArgument("workload needs >= 1 period");
  }
  if (w.tasks.size() != w.valuations.size()) {
    return Status::InvalidArgument("valuations not aligned with tasks");
  }
  if (w.oracle.num_grids() != w.grid.num_cells()) {
    return Status::InvalidArgument("oracle grid count mismatch");
  }
  int32_t prev_period = 0;
  for (size_t i = 0; i < w.tasks.size(); ++i) {
    const Task& t = w.tasks[i];
    std::ostringstream ctx;
    ctx << "task " << i;
    if (t.id != static_cast<TaskId>(i)) {
      return Status::InvalidArgument(ctx.str() + ": id must equal index");
    }
    if (t.period < 0 || t.period >= w.num_periods) {
      return Status::InvalidArgument(ctx.str() + ": period out of range");
    }
    if (t.period < prev_period) {
      return Status::InvalidArgument(ctx.str() + ": tasks not period-sorted");
    }
    prev_period = t.period;
    if (t.grid != w.grid.CellOf(t.origin)) {
      return Status::InvalidArgument(ctx.str() + ": cached grid id wrong");
    }
    if (t.distance < 0.0) {
      return Status::InvalidArgument(ctx.str() + ": negative distance");
    }
  }
  prev_period = 0;
  for (size_t i = 0; i < w.workers.size(); ++i) {
    const Worker& ww = w.workers[i];
    std::ostringstream ctx;
    ctx << "worker " << i;
    if (ww.period < 0 || ww.period >= w.num_periods) {
      return Status::InvalidArgument(ctx.str() + ": period out of range");
    }
    if (ww.period < prev_period) {
      return Status::InvalidArgument(ctx.str() +
                                     ": workers not period-sorted");
    }
    prev_period = ww.period;
    if (ww.radius <= 0.0) {
      return Status::InvalidArgument(ctx.str() + ": non-positive radius");
    }
    if (ww.grid != w.grid.CellOf(ww.location)) {
      return Status::InvalidArgument(ctx.str() + ": cached grid id wrong");
    }
  }
  if (!w.lifecycle.single_use && w.lifecycle.speed <= 0.0) {
    return Status::InvalidArgument("turnaround lifecycle needs speed > 0");
  }
  return Status::OK();
}

}  // namespace maps
