// The platform simulator, now a thin REPLAY ADAPTER over the online
// MarketEngine (service/market_engine.h): RunSimulation feeds a
// pre-materialized Workload through the engine's event API —
// StageNextPeriodTasks / SubmitTask, AddWorker, ClosePeriod — and
// accumulates the per-period outcomes. The per-period mechanics (pricing,
// acceptance draw, max-weight matching, worker lifecycle, MC diagnostic)
// live in the engine; identical (workload, strategy, options) runs are
// bit-identical to the former batch loop at any thread count, pipeline on
// or off (tested in tests/service/market_engine_test.cc).

#pragma once

#include <vector>

#include "pricing/strategy.h"
#include "service/market_engine.h"
#include "service/replay_log.h"
#include "sim/workload.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace maps {

/// \brief Simulation knobs: the shared online-engine surface plus the
/// replay-only extras. Engine fields that describe the market itself
/// (`engine.lifecycle`, `engine.mc_oracle`) are overridden from the
/// workload by RunSimulation.
struct SimOptions {
  /// Stream id for the strategy's warm-up oracle fork, so different
  /// strategies draw independent probe randomness over identical ground
  /// truth.
  uint64_t warmup_stream = 7;
  /// Record per-period statistics (tests; costs memory on long runs).
  bool collect_per_period = false;
  /// Skip the strategy Warmup() call (for pre-warmed strategies).
  bool skip_warmup = false;
  /// Online-engine knobs shared with live deployments: the Monte-Carlo
  /// diagnostic (mc_worlds/mc_seed), the period pipeline
  /// (pipeline_periods), and the lent pool. See EngineOptions.
  EngineOptions engine;
};

/// \brief Per-period accounting (optional).
struct PeriodStats {
  int32_t period = 0;
  double revenue = 0.0;
  /// MC-estimated E[U(B^t)] of the period's prices (0 when mc_worlds == 0).
  double mc_expected_revenue = 0.0;
  int32_t num_tasks = 0;
  int32_t num_accepted = 0;
  int32_t num_matched = 0;
  int32_t num_available_workers = 0;
};

/// \brief Aggregate outcome of one simulation run.
struct SimulationResult {
  double total_revenue = 0.0;
  /// Sum over periods of the MC-estimated expected revenue of the posted
  /// prices under true demand (see EngineOptions::mc_worlds; 0 disabled).
  double mc_expected_revenue = 0.0;
  /// Warm-up wall time (Algorithm 1 probing etc.).
  double warmup_time_sec = 0.0;
  /// Strategy wall time across all periods (PriceRound + ObserveFeedback).
  double pricing_time_sec = 0.0;
  /// warmup + pricing: the per-strategy cost reported by the benches.
  double total_time_sec = 0.0;
  /// Peak strategy footprint plus the platform share: matching graph, BOTH
  /// snapshot slots of the engine's double buffer, and the worker table.
  size_t memory_bytes = 0;
  int64_t num_tasks = 0;
  int64_t num_accepted = 0;
  int64_t num_matched = 0;
  std::vector<PeriodStats> per_period;
};

/// \brief Runs `strategy` over the workload by replaying it through a
/// MarketEngine. The workload is not mutated; identical (workload,
/// strategy, options) runs are bit-identical.
Result<SimulationResult> RunSimulation(const Workload& workload,
                                       PricingStrategy* strategy,
                                       const SimOptions& options = {});

/// \brief Streaming counterpart of RunSimulation: drives `strategy` from a
/// line-at-a-time replay event stream (service/replay_log.h) instead of a
/// pre-materialized Workload, so the event log never resides in memory —
/// ingestion footprint is one line buffer regardless of log length. Market
/// knobs come from `options.engine` (there is no workload to override
/// them); `warmup_oracle` may be null to skip warm-up (equivalent to
/// options.skip_warmup).
Result<SimulationResult> RunReplayStream(ReplayEventStream* stream,
                                         const GridPartition& grid,
                                         PricingStrategy* strategy,
                                         const DemandOracle* warmup_oracle,
                                         const SimOptions& options = {});

}  // namespace maps
