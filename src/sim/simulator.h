// The platform simulator: replays a Workload against one PricingStrategy.
//
// Per time period t (batch mode, Sec. 2):
//   1. collect the tasks issued in t and the currently available workers;
//   2. the strategy prices every grid (PriceRound);
//   3. each requester accepts iff their hidden valuation v_r >= the price of
//      their grid; the strategy observes only the accept/reject bits;
//   4. the platform assigns workers to accepted tasks by maximum-weight
//      bipartite matching under the range constraints (Definition 5; exact
//      via the transversal-matroid greedy matcher);
//   5. revenue += sum of matched d_r * p; matched workers either leave
//      (single-use) or turn around at the destination (Beijing lifecycle).

#pragma once

#include <vector>

#include "pricing/strategy.h"
#include "sim/workload.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace maps {

/// \brief Simulation knobs.
struct SimOptions {
  /// Stream id for the strategy's warm-up oracle fork, so different
  /// strategies draw independent probe randomness over identical ground
  /// truth.
  uint64_t warmup_stream = 7;
  /// Record per-period statistics (tests; costs memory on long runs).
  bool collect_per_period = false;
  /// Skip the strategy Warmup() call (for pre-warmed strategies).
  bool skip_warmup = false;
  /// Monte-Carlo worlds per period for the expected-revenue diagnostic:
  /// when > 0, each period also estimates E[U(B^t)] of the posted prices
  /// under the TRUE acceptance ratios by sampling this many possible
  /// worlds (world w of period t draws from CounterRng stream
  /// (mc_seed + t, w), so the estimate is bit-identical for any thread
  /// count). Realized revenue is one sampled world; this is the metric the
  /// paper's strategies actually optimize. 0 disables (no cost).
  int mc_worlds = 0;
  /// Seed family for the Monte-Carlo diagnostic worlds.
  uint64_t mc_seed = 0x6d63776f726c64ULL;  // "mcworld"
  /// Pipeline period snapshots: build period t+1's task-side snapshot
  /// (bucketing + distance prefix sums, a pure function of the immutable
  /// workload) on `pool` while period t is being priced/matched. The
  /// worker side depends on the serial lifecycle state and is attached on
  /// the main thread, so results are bit-identical to the serial path for
  /// any thread count (see DESIGN.md §10). No effect without a pool.
  bool pipeline_periods = true;
  /// Optional pool lent to the strategy (warm-up probe schedule, MAPS's
  /// per-round maximizer precompute), used by the Monte-Carlo diagnostic,
  /// and backing the period pipeline. Non-owning; must not be a pool whose
  /// workers are running THIS simulation (nested waits can deadlock).
  /// Results are bit-identical with or without it.
  ThreadPool* pool = nullptr;
};

/// \brief Per-period accounting (optional).
struct PeriodStats {
  int32_t period = 0;
  double revenue = 0.0;
  /// MC-estimated E[U(B^t)] of the period's prices (0 when mc_worlds == 0).
  double mc_expected_revenue = 0.0;
  int32_t num_tasks = 0;
  int32_t num_accepted = 0;
  int32_t num_matched = 0;
  int32_t num_available_workers = 0;
};

/// \brief Aggregate outcome of one simulation run.
struct SimulationResult {
  double total_revenue = 0.0;
  /// Sum over periods of the MC-estimated expected revenue of the posted
  /// prices under true demand (see SimOptions::mc_worlds; 0 when disabled).
  double mc_expected_revenue = 0.0;
  /// Warm-up wall time (Algorithm 1 probing etc.).
  double warmup_time_sec = 0.0;
  /// Strategy wall time across all periods (PriceRound + ObserveFeedback).
  double pricing_time_sec = 0.0;
  /// warmup + pricing: the per-strategy cost reported by the benches.
  double total_time_sec = 0.0;
  /// Peak strategy footprint plus the platform's per-period market share.
  size_t memory_bytes = 0;
  int64_t num_tasks = 0;
  int64_t num_accepted = 0;
  int64_t num_matched = 0;
  std::vector<PeriodStats> per_period;
};

/// \brief Runs `strategy` over the workload. The workload is not mutated;
/// identical (workload, strategy, options) runs are bit-identical.
Result<SimulationResult> RunSimulation(const Workload& workload,
                                       PricingStrategy* strategy,
                                       const SimOptions& options = {});

}  // namespace maps
