// Geometric candidate price ladder: p_min, (1+alpha)p_min, (1+alpha)^2 p_min,
// ... <= p_max. Both Algorithm 1 and Algorithm 3 iterate this ladder; MAPS
// snaps every offered price onto it so UCB statistics accumulate per rung.

#pragma once

#include <vector>

#include "util/result.h"

namespace maps {

/// \brief Immutable geometric price grid on [p_min, p_max].
class PriceLadder {
 public:
  static Result<PriceLadder> Make(double p_min, double p_max, double alpha);

  /// Explicit ascending candidate set (e.g. the paper's running example
  /// uses {1, 2, 3}); alpha is retained only for reporting.
  static Result<PriceLadder> FromPrices(std::vector<double> prices);

  double p_min() const { return p_min_; }
  double p_max() const { return p_max_; }
  double alpha() const { return alpha_; }

  int size() const { return static_cast<int>(prices_.size()); }
  double price(int i) const { return prices_[i]; }
  const std::vector<double>& prices() const { return prices_; }

  /// Index of the rung nearest to `p` (ties toward the lower rung).
  int SnapIndex(double p) const;

  /// Nearest rung value.
  double Snap(double p) const { return prices_[SnapIndex(p)]; }

 private:
  PriceLadder(double p_min, double p_max, double alpha,
              std::vector<double> prices);

  double p_min_, p_max_, alpha_;
  std::vector<double> prices_;
};

}  // namespace maps
