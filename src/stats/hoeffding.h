// Hoeffding-based sample-size schedule of Algorithm 1.

#pragma once

#include <cmath>
#include <cstdint>

namespace maps {

/// \brief Number of candidate prices k = ceil(ln(p_max/p_min) / ln(1+alpha))
/// (Algorithm 1, line 1).
inline int LadderSize(double p_min, double p_max, double alpha) {
  if (p_max <= p_min) return 1;
  return static_cast<int>(
      std::ceil(std::log(p_max / p_min) / std::log(1.0 + alpha)));
}

/// \brief Probe budget h(p) = ceil((2 p^2 / eps^2) * ln(2k / delta))
/// (Algorithm 1, line 5). Guarantees |S_hat(p) - S(p)| <= eps/(2p) w.p.
/// 1 - delta/k via Hoeffding's inequality (Theorem 2's proof).
inline int64_t ProbeBudget(double p, double eps, double delta, int k) {
  const double h = (2.0 * p * p / (eps * eps)) * std::log(2.0 * k / delta);
  return static_cast<int64_t>(std::ceil(h));
}

/// \brief Two-sided Hoeffding deviation bound: Pr[|mean - E| > eps] for n
/// i.i.d. samples in [0,1].
inline double HoeffdingTailProb(double eps, int64_t n) {
  return 2.0 * std::exp(-2.0 * eps * eps * static_cast<double>(n));
}

/// \brief Samples needed so the two-sided Hoeffding tail is at most delta.
inline int64_t HoeffdingSampleCount(double eps, double delta) {
  return static_cast<int64_t>(
      std::ceil(std::log(2.0 / delta) / (2.0 * eps * eps)));
}

}  // namespace maps
