// UCB acceptance-ratio estimator (Sec. 4.2.2).
//
// One UcbEstimator per grid tracks, per ladder rung p:
//   S_hat(p)  sample mean of accept/reject feedback at p,
//   N(p)      times p was offered,
//   N         total requesters observed in the grid,
// and exposes the optimistic estimate S_hat(p) + sqrt(2 ln N / N(p)) / 1
// via the confidence radius c(p) = p * sqrt(2 ln N / N(p)).

#pragma once

#include <cstdint>
#include <vector>

#include "stats/price_ladder.h"
#include "util/serial.h"
#include "util/status.h"

namespace maps {

/// \brief Per-grid UCB statistics over a price ladder.
class UcbEstimator {
 public:
  explicit UcbEstimator(const PriceLadder* ladder);

  /// Records one accept/reject observation for rung `idx`.
  void Observe(int idx, bool accepted);

  /// Bulk-seeds rung `idx` with `trials` observations of which `accepts`
  /// accepted (warm-starting from Algorithm 1's probe statistics).
  void ObserveBulk(int idx, int64_t trials, int64_t accepts);

  /// Number of requesters observed so far in this grid (N).
  int64_t total_observations() const { return total_; }

  /// Times rung `idx` was offered (N(p)).
  int64_t count(int idx) const { return count_[idx]; }

  /// Sample mean S_hat(p); 0 when unobserved.
  double mean(int idx) const;

  /// Confidence radius c(p) = p * sqrt(2 ln N / N(p)); +infinity when the
  /// rung is unobserved (forces exploration), 0 when N < 2.
  double Radius(int idx) const;

  /// Optimistic unit revenue p * S_hat(p) + c(p), the first operand of the
  /// index of Algorithm 3.
  double OptimisticUnitRevenue(int idx) const;

  /// Drops all statistics.
  void Reset();

  /// Drops one rung's statistics (the change detector flagged a shift in
  /// S(p) at that price); the rung becomes maximally optimistic again and
  /// is relearned, while the other rungs keep their knowledge.
  void ResetRung(int idx);

  const PriceLadder& ladder() const { return *ladder_; }

  /// Serializes the learned statistics (counts, accepts, total) for
  /// checkpointing. The ladder itself is configuration, not state: Load
  /// verifies the rung count matches and fails otherwise. On failure the
  /// estimator is left unchanged.
  void Save(StateWriter* w) const;
  Status Load(StateReader* r);

  size_t FootprintBytes() const {
    return count_.capacity() * sizeof(int64_t) +
           accepts_.capacity() * sizeof(int64_t);
  }

 private:
  const PriceLadder* ladder_;
  std::vector<int64_t> count_;
  std::vector<int64_t> accepts_;
  int64_t total_ = 0;
};

}  // namespace maps
