// Binomial change detector for drifting acceptance ratios (Sec. 4.2.2,
// "statistically-significant deviations").
//
// For a tested price, accepts in a window of m requesters follow
// Binomial(m, S(p)). With the previous window's estimate S_hat, a new window
// whose accept count lands outside m*S_hat +/- 2*sqrt(m*S_hat*(1-S_hat))
// (about a 95% band) flags a demand change; the caller then resets the UCB
// statistics of the grid.

#pragma once

#include <cstdint>

#include "util/serial.h"
#include "util/status.h"

namespace maps {

/// \brief Windowed binomial deviation test for one (grid, price) stream.
class ChangeDetector {
 public:
  /// \param window_size m, the number of observations per test window
  explicit ChangeDetector(int window_size);

  /// Feeds one observation; returns true when the completed window deviates
  /// significantly from the previous window's rate (a flagged change).
  bool Observe(bool accepted);

  /// True once at least one full reference window exists.
  bool HasReference() const { return has_reference_; }

  double reference_rate() const { return reference_rate_; }
  int window_size() const { return window_size_; }

  void Reset();

  /// Serializes the window-in-progress and reference rate for
  /// checkpointing. window_size is configuration: Load verifies it matches
  /// and fails otherwise, leaving the detector unchanged.
  void Save(StateWriter* w) const;
  Status Load(StateReader* r);

 private:
  bool WindowDeviates() const;

  int window_size_;
  int in_window_ = 0;
  int accepts_ = 0;
  bool has_reference_ = false;
  double reference_rate_ = 0.0;
};

}  // namespace maps
