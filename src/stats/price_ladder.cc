#include "stats/price_ladder.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace maps {

PriceLadder::PriceLadder(double p_min, double p_max, double alpha,
                         std::vector<double> prices)
    : p_min_(p_min), p_max_(p_max), alpha_(alpha), prices_(std::move(prices)) {}

Result<PriceLadder> PriceLadder::Make(double p_min, double p_max,
                                      double alpha) {
  if (p_min <= 0.0) return Status::InvalidArgument("p_min must be positive");
  if (p_max < p_min) return Status::InvalidArgument("p_max < p_min");
  if (alpha <= 0.0) return Status::InvalidArgument("alpha must be positive");
  std::vector<double> prices;
  for (double p = p_min; p <= p_max * (1.0 + 1e-12); p *= (1.0 + alpha)) {
    prices.push_back(std::min(p, p_max));
  }
  if (prices.empty()) prices.push_back(p_min);
  return PriceLadder(p_min, p_max, alpha, std::move(prices));
}

Result<PriceLadder> PriceLadder::FromPrices(std::vector<double> prices) {
  if (prices.empty()) return Status::InvalidArgument("empty price set");
  for (size_t i = 0; i < prices.size(); ++i) {
    if (prices[i] <= 0.0) {
      return Status::InvalidArgument("prices must be positive");
    }
    if (i > 0 && prices[i] <= prices[i - 1]) {
      return Status::InvalidArgument("prices must be strictly ascending");
    }
  }
  const double lo = prices.front();
  const double hi = prices.back();
  return PriceLadder(lo, hi, /*alpha=*/0.0, std::move(prices));
}

int PriceLadder::SnapIndex(double p) const {
  // Lower-bound then compare with the previous rung.
  auto it = std::lower_bound(prices_.begin(), prices_.end(), p);
  if (it == prices_.begin()) return 0;
  if (it == prices_.end()) return size() - 1;
  const int hi = static_cast<int>(it - prices_.begin());
  const int lo = hi - 1;
  // Ties toward the lower rung (paper breaks price ties low: higher
  // acceptance ratio).
  return (p - prices_[lo] <= prices_[hi] - p) ? lo : hi;
}

}  // namespace maps
