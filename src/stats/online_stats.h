// Small online statistics helpers (Welford mean/variance, Bernoulli counts).

#pragma once

#include <cmath>
#include <cstdint>

namespace maps {

/// \brief Welford's online mean/variance accumulator.
class OnlineMeanVar {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  int64_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  void Reset() {
    n_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
  }

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// \brief Bernoulli success-rate counter.
class BernoulliCounter {
 public:
  void Add(bool success) {
    ++trials_;
    if (success) ++successes_;
  }

  int64_t trials() const { return trials_; }
  int64_t successes() const { return successes_; }
  double rate() const {
    return trials_ > 0 ? static_cast<double>(successes_) /
                             static_cast<double>(trials_)
                       : 0.0;
  }

  void Reset() {
    trials_ = 0;
    successes_ = 0;
  }

 private:
  int64_t trials_ = 0;
  int64_t successes_ = 0;
};

}  // namespace maps
