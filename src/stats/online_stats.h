// Small online statistics helpers (Welford mean/variance, Bernoulli counts).

#pragma once

#include <cmath>
#include <cstdint>

#include "util/serial.h"
#include "util/status.h"

namespace maps {

/// \brief Welford's online mean/variance accumulator.
class OnlineMeanVar {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  int64_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  void Reset() {
    n_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
  }

  void Save(StateWriter* w) const {
    w->PutI64(n_);
    w->PutDouble(mean_);
    w->PutDouble(m2_);
  }

  Status Load(StateReader* r) {
    int64_t n;
    double mean, m2;
    MAPS_RETURN_NOT_OK(r->GetI64(&n, "meanvar n"));
    MAPS_RETURN_NOT_OK(r->GetDouble(&mean, "meanvar mean"));
    MAPS_RETURN_NOT_OK(r->GetDouble(&m2, "meanvar m2"));
    if (n < 0) return Status::InvalidArgument("meanvar count is negative");
    n_ = n;
    mean_ = mean;
    m2_ = m2;
    return Status::OK();
  }

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// \brief Bernoulli success-rate counter.
class BernoulliCounter {
 public:
  void Add(bool success) {
    ++trials_;
    if (success) ++successes_;
  }

  int64_t trials() const { return trials_; }
  int64_t successes() const { return successes_; }
  double rate() const {
    return trials_ > 0 ? static_cast<double>(successes_) /
                             static_cast<double>(trials_)
                       : 0.0;
  }

  void Reset() {
    trials_ = 0;
    successes_ = 0;
  }

  void Save(StateWriter* w) const {
    w->PutI64(trials_);
    w->PutI64(successes_);
  }

  Status Load(StateReader* r) {
    int64_t trials, successes;
    MAPS_RETURN_NOT_OK(r->GetI64(&trials, "bernoulli trials"));
    MAPS_RETURN_NOT_OK(r->GetI64(&successes, "bernoulli successes"));
    if (trials < 0 || successes < 0 || successes > trials) {
      return Status::InvalidArgument(
          "bernoulli counter inconsistent (" + std::to_string(successes) +
          "/" + std::to_string(trials) + ")");
    }
    trials_ = trials;
    successes_ = successes;
    return Status::OK();
  }

 private:
  int64_t trials_ = 0;
  int64_t successes_ = 0;
};

}  // namespace maps
