#include "stats/change_detector.h"

#include <cmath>

#include "util/logging.h"

namespace maps {

ChangeDetector::ChangeDetector(int window_size) : window_size_(window_size) {
  MAPS_CHECK_GT(window_size, 0);
}

bool ChangeDetector::WindowDeviates() const {
  const double m = static_cast<double>(window_size_);
  const double expected = m * reference_rate_;
  const double band =
      2.0 * std::sqrt(m * reference_rate_ * (1.0 - reference_rate_));
  const double observed = static_cast<double>(accepts_);
  // A degenerate reference (rate 0 or 1) has a zero-width band; any
  // disagreement at all is then a change.
  return observed < expected - band || observed > expected + band;
}

bool ChangeDetector::Observe(bool accepted) {
  ++in_window_;
  if (accepted) ++accepts_;
  if (in_window_ < window_size_) return false;

  bool changed = false;
  if (has_reference_) {
    changed = WindowDeviates();
  }
  reference_rate_ =
      static_cast<double>(accepts_) / static_cast<double>(window_size_);
  has_reference_ = true;
  in_window_ = 0;
  accepts_ = 0;
  return changed;
}

void ChangeDetector::Reset() {
  in_window_ = 0;
  accepts_ = 0;
  has_reference_ = false;
  reference_rate_ = 0.0;
}

void ChangeDetector::Save(StateWriter* w) const {
  w->PutI32(window_size_);
  w->PutI32(in_window_);
  w->PutI32(accepts_);
  w->PutBool(has_reference_);
  w->PutDouble(reference_rate_);
}

Status ChangeDetector::Load(StateReader* r) {
  int32_t window_size, in_window, accepts;
  bool has_reference;
  double reference_rate;
  MAPS_RETURN_NOT_OK(r->GetI32(&window_size, "detector window_size"));
  MAPS_RETURN_NOT_OK(r->GetI32(&in_window, "detector in_window"));
  MAPS_RETURN_NOT_OK(r->GetI32(&accepts, "detector accepts"));
  MAPS_RETURN_NOT_OK(r->GetBool(&has_reference, "detector has_reference"));
  MAPS_RETURN_NOT_OK(r->GetDouble(&reference_rate, "detector reference_rate"));
  if (window_size != window_size_) {
    return Status::InvalidArgument(
        "detector window_size mismatch: checkpoint has " +
        std::to_string(window_size) + ", configured " +
        std::to_string(window_size_));
  }
  if (in_window < 0 || in_window >= window_size || accepts < 0 ||
      accepts > in_window) {
    return Status::InvalidArgument(
        "detector window state inconsistent (in_window " +
        std::to_string(in_window) + ", accepts " + std::to_string(accepts) +
        ")");
  }
  in_window_ = in_window;
  accepts_ = accepts;
  has_reference_ = has_reference;
  reference_rate_ = reference_rate;
  return Status::OK();
}

}  // namespace maps
