#include "stats/change_detector.h"

#include <cmath>

#include "util/logging.h"

namespace maps {

ChangeDetector::ChangeDetector(int window_size) : window_size_(window_size) {
  MAPS_CHECK_GT(window_size, 0);
}

bool ChangeDetector::WindowDeviates() const {
  const double m = static_cast<double>(window_size_);
  const double expected = m * reference_rate_;
  const double band =
      2.0 * std::sqrt(m * reference_rate_ * (1.0 - reference_rate_));
  const double observed = static_cast<double>(accepts_);
  // A degenerate reference (rate 0 or 1) has a zero-width band; any
  // disagreement at all is then a change.
  return observed < expected - band || observed > expected + band;
}

bool ChangeDetector::Observe(bool accepted) {
  ++in_window_;
  if (accepted) ++accepts_;
  if (in_window_ < window_size_) return false;

  bool changed = false;
  if (has_reference_) {
    changed = WindowDeviates();
  }
  reference_rate_ =
      static_cast<double>(accepts_) / static_cast<double>(window_size_);
  has_reference_ = true;
  in_window_ = 0;
  accepts_ = 0;
  return changed;
}

void ChangeDetector::Reset() {
  in_window_ = 0;
  accepts_ = 0;
  has_reference_ = false;
  reference_rate_ = 0.0;
}

}  // namespace maps
