#include "stats/ucb.h"

#include <cmath>
#include <limits>

#include "util/logging.h"

namespace maps {

UcbEstimator::UcbEstimator(const PriceLadder* ladder) : ladder_(ladder) {
  MAPS_CHECK(ladder != nullptr);
  count_.assign(ladder->size(), 0);
  accepts_.assign(ladder->size(), 0);
}

void UcbEstimator::Observe(int idx, bool accepted) {
  MAPS_DCHECK(idx >= 0 && idx < ladder_->size());
  ++count_[idx];
  if (accepted) ++accepts_[idx];
  ++total_;
}

void UcbEstimator::ObserveBulk(int idx, int64_t trials, int64_t accepts) {
  MAPS_DCHECK(idx >= 0 && idx < ladder_->size());
  MAPS_CHECK_GE(trials, accepts);
  MAPS_CHECK_GE(accepts, 0);
  count_[idx] += trials;
  accepts_[idx] += accepts;
  total_ += trials;
}

double UcbEstimator::mean(int idx) const {
  MAPS_DCHECK(idx >= 0 && idx < ladder_->size());
  if (count_[idx] == 0) return 0.0;
  return static_cast<double>(accepts_[idx]) /
         static_cast<double>(count_[idx]);
}

double UcbEstimator::Radius(int idx) const {
  MAPS_DCHECK(idx >= 0 && idx < ladder_->size());
  if (count_[idx] == 0) {
    // Unobserved rung: infinite optimism so it gets explored. (The paper
    // states the radius is zero when N(p)=0, but then an unobserved rung
    // could never win the index; standard UCB1 treats unpulled arms as
    // maximally optimistic, which is what makes exploration start.)
    return std::numeric_limits<double>::infinity();
  }
  if (total_ < 2) return 0.0;
  const double p = ladder_->price(idx);
  return p * std::sqrt(2.0 * std::log(static_cast<double>(total_)) /
                       static_cast<double>(count_[idx]));
}

double UcbEstimator::OptimisticUnitRevenue(int idx) const {
  const double p = ladder_->price(idx);
  const double r = Radius(idx);
  if (std::isinf(r)) return std::numeric_limits<double>::infinity();
  return p * mean(idx) + r;
}

void UcbEstimator::ResetRung(int idx) {
  MAPS_DCHECK(idx >= 0 && idx < ladder_->size());
  total_ -= count_[idx];
  count_[idx] = 0;
  accepts_[idx] = 0;
}

void UcbEstimator::Reset() {
  std::fill(count_.begin(), count_.end(), 0);
  std::fill(accepts_.begin(), accepts_.end(), 0);
  total_ = 0;
}

void UcbEstimator::Save(StateWriter* w) const {
  w->PutU64(count_.size());
  for (int64_t c : count_) w->PutI64(c);
  for (int64_t a : accepts_) w->PutI64(a);
  w->PutI64(total_);
}

Status UcbEstimator::Load(StateReader* r) {
  uint64_t rungs;
  MAPS_RETURN_NOT_OK(r->GetU64(&rungs, "ucb rung count"));
  if (rungs != count_.size()) {
    return Status::InvalidArgument(
        "ucb rung count mismatch: checkpoint has " + std::to_string(rungs) +
        ", ladder has " + std::to_string(count_.size()));
  }
  std::vector<int64_t> count(count_.size()), accepts(accepts_.size());
  int64_t total = 0;
  for (auto& c : count) MAPS_RETURN_NOT_OK(r->GetI64(&c, "ucb count"));
  for (auto& a : accepts) MAPS_RETURN_NOT_OK(r->GetI64(&a, "ucb accepts"));
  MAPS_RETURN_NOT_OK(r->GetI64(&total, "ucb total"));
  for (size_t i = 0; i < count.size(); ++i) {
    if (count[i] < 0 || accepts[i] < 0 || accepts[i] > count[i]) {
      return Status::InvalidArgument(
          "ucb rung " + std::to_string(i) + " has inconsistent counts (" +
          std::to_string(accepts[i]) + "/" + std::to_string(count[i]) + ")");
    }
  }
  if (total < 0) {
    return Status::InvalidArgument("ucb total is negative");
  }
  count_ = std::move(count);
  accepts_ = std::move(accepts);
  total_ = total;
  return Status::OK();
}

}  // namespace maps
