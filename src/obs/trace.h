// Structured engine trace (DESIGN.md §16): an append-only ring of typed
// events with deterministic sequence ids, exportable as JSONL.
//
// Events are PURELY LOGICAL — no wall-clock timestamps — so a trace of a
// replay is a pure function of the event log: identical runs produce
// byte-identical JSONL at any thread count. That only holds because every
// append site is serial by construction (the sharded engine makes its fault
// decisions and fills region health in serial sections; checkpoint writes
// happen between events); the ring still takes a mutex so a mis-ordered
// future call is a lost-determinism bug, never a data race.
//
// The ring keeps the most recent `capacity` events; `appended()` counts
// every append, so exports can state how many were dropped. Sequence ids
// are assigned at append time and never reused.

#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace maps {
namespace obs {

/// \brief One trace event. Field meaning by kind:
///   kPeriodOpened     period = the newly open period
///   kPeriodClosed     period = the closed period, value = matches emitted
///   kRegionHealth     period/region, detail = canonical state name,
///                     value = RegionHealth::State as int
///   kCheckpointWritten period, value = serialized byte size
///   kCheckpointRestored period (restored-to), value = blob bytes
///   kFaultFired       detail = fault kind; region/period carry the fault
///                     site arguments (region & period for close faults,
///                     attempt & write-call for checkpoint faults)
struct TraceEvent {
  enum class Kind {
    kPeriodOpened = 0,
    kPeriodClosed,
    kRegionHealth,
    kCheckpointWritten,
    kCheckpointRestored,
    kFaultFired,
  };
  int64_t seq = 0;
  Kind kind = Kind::kPeriodOpened;
  int64_t period = -1;
  int32_t region = -1;
  int64_t value = 0;
  std::string detail;
};

/// \brief Stable lowercase name for JSONL export ("period_closed", ...).
const char* TraceKindName(TraceEvent::Kind kind);

/// \brief Fixed-capacity event ring. Thread-safe appends; see the file
/// comment for why appends must nonetheless stay serial to keep sequence
/// order deterministic.
class TraceLog {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  explicit TraceLog(size_t capacity = kDefaultCapacity);

  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  /// Appends one event; assigns and returns its sequence id. `event.seq`
  /// is overwritten. The oldest event is dropped when the ring is full.
  int64_t Append(TraceEvent event);

  /// Convenience append.
  int64_t Emit(TraceEvent::Kind kind, int64_t period, int32_t region,
               int64_t value, std::string detail);

  /// Events currently retained, oldest first.
  std::vector<TraceEvent> Events() const;

  /// Total appends over the log's lifetime (>= Events().size()).
  int64_t appended() const;
  /// Appends that fell off the ring: appended() - retained.
  int64_t dropped() const;
  size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  size_t head_ = 0;  // index of the oldest retained event
  int64_t next_seq_ = 0;
  std::vector<TraceEvent> ring_;
};

}  // namespace obs
}  // namespace maps
