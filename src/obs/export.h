// Export surface of the observability subsystem (DESIGN.md §16,
// docs/observability.md): a versioned METRICS.json (schema "obs/v1"), a
// human-readable text dump, and the trace ring as JSONL.
//
// METRICS.json separates the two determinism classes:
//   * "deterministic" — counters, gauges, and histograms registered as
//     Determinism::kDeterministic, plus the trace append totals. Rendered
//     by RenderDeterministicSlice and embedded verbatim, so two runs over
//     the same event log produce a BYTE-IDENTICAL deterministic slice at
//     any thread count (the Obs determinism suite and the CI replay smoke
//     both compare the raw strings).
//   * "wall_clock" — latency histograms (with export-time p50/p90/p99),
//     queue-depth gauges: honest measurements that differ run to run.
// Every numeric field is an int64 rendered in decimal — no float
// formatting is involved anywhere in the deterministic slice.

#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/result.h"

namespace maps {
namespace obs {

/// \brief Schema tag written into METRICS.json.
inline constexpr char kMetricsSchema[] = "obs/v1";

/// \brief The deterministic slice alone, as the exact byte string embedded
/// under "deterministic" in RenderMetricsJson. `trace` may be null (the
/// slice then reports "trace":null).
std::string RenderDeterministicSlice(const MetricsRegistry& registry,
                                     const TraceLog* trace);

/// \brief Full obs/v1 document: schema tag, deterministic slice,
/// wall-clock section.
std::string RenderMetricsJson(const MetricsRegistry& registry,
                              const TraceLog* trace);

/// \brief Human-readable dump (one metric per line; histograms with count,
/// mean, and export-time percentiles).
std::string RenderMetricsText(const MetricsRegistry& registry);

/// \brief One JSON object per retained trace event, oldest first.
void WriteTraceJsonl(const TraceLog& trace, std::ostream& out);

/// \brief Writes RenderMetricsJson to `path` (plain write, not atomic —
/// telemetry files are not recovery state).
Status WriteMetricsJsonFile(const std::string& path,
                            const MetricsRegistry& registry,
                            const TraceLog* trace);

/// \brief Writes the trace ring as JSONL to `path`.
Status WriteTraceJsonlFile(const std::string& path, const TraceLog& trace);

}  // namespace obs
}  // namespace maps
