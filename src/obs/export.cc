#include "obs/export.h"

#include <fstream>
#include <ostream>
#include <sstream>

namespace maps {
namespace obs {

namespace {

/// JSON string escaping for metric names, trace details (paths, state
/// names). Control characters become \u00XX.
std::string Quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out.push_back(hex[(c >> 4) & 0xf]);
          out.push_back(hex[c & 0xf]);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

/// Sparse bucket array: [[index, count], ...] over non-empty buckets, in
/// index order — stable and compact for 64-bucket histograms that touch a
/// handful of buckets.
void AppendBuckets(const Histogram& h, std::string* out) {
  *out += "\"buckets\":[";
  bool first = true;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    const int64_t n = h.bucket(i);
    if (n == 0) continue;
    if (!first) out->push_back(',');
    first = false;
    *out += "[" + std::to_string(i) + "," + std::to_string(n) + "]";
  }
  out->push_back(']');
}

void AppendCounterObject(const MetricsRegistry& registry, Determinism want,
                         std::string* out) {
  *out += "\"counters\":{";
  bool first = true;
  for (const auto& c : registry.counters()) {
    if (c.det != want) continue;
    if (!first) out->push_back(',');
    first = false;
    *out += Quote(c.name) + ":" + std::to_string(c.metric->value());
  }
  out->push_back('}');
}

void AppendGaugeObject(const MetricsRegistry& registry, Determinism want,
                       std::string* out) {
  *out += "\"gauges\":{";
  bool first = true;
  for (const auto& g : registry.gauges()) {
    if (g.det != want) continue;
    if (!first) out->push_back(',');
    first = false;
    *out += Quote(g.name) + ":{\"value\":" + std::to_string(g.metric->value()) +
            ",\"max\":" + std::to_string(g.metric->max()) + "}";
  }
  out->push_back('}');
}

void AppendHistogramObject(const MetricsRegistry& registry, Determinism want,
                           bool percentiles, std::string* out) {
  *out += "\"histograms\":{";
  bool first = true;
  for (const auto& h : registry.histograms()) {
    if (h.det != want) continue;
    if (!first) out->push_back(',');
    first = false;
    *out += Quote(h.name) + ":{\"count\":" + std::to_string(h.metric->count()) +
            ",\"sum\":" + std::to_string(h.metric->sum()) + ",";
    if (percentiles) {
      *out += "\"p50\":" + std::to_string(h.metric->Percentile(0.50)) +
              ",\"p90\":" + std::to_string(h.metric->Percentile(0.90)) +
              ",\"p99\":" + std::to_string(h.metric->Percentile(0.99)) + ",";
    }
    AppendBuckets(*h.metric, out);
    out->push_back('}');
  }
  out->push_back('}');
}

}  // namespace

std::string RenderDeterministicSlice(const MetricsRegistry& registry,
                                     const TraceLog* trace) {
  std::string out = "{";
  AppendCounterObject(registry, Determinism::kDeterministic, &out);
  out.push_back(',');
  AppendGaugeObject(registry, Determinism::kDeterministic, &out);
  out.push_back(',');
  // Deterministic histograms (byte sizes, event-derived values) export
  // their bucket counts but no percentiles — the bounds already say it.
  AppendHistogramObject(registry, Determinism::kDeterministic,
                        /*percentiles=*/false, &out);
  out += ",\"trace\":";
  if (trace == nullptr) {
    out += "null";
  } else {
    out += "{\"appended\":" + std::to_string(trace->appended()) +
           ",\"dropped\":" + std::to_string(trace->dropped()) + "}";
  }
  out.push_back('}');
  return out;
}

std::string RenderMetricsJson(const MetricsRegistry& registry,
                              const TraceLog* trace) {
  std::string out = "{\n\"schema\":";
  out += Quote(kMetricsSchema);
  out += ",\n\"deterministic\":";
  out += RenderDeterministicSlice(registry, trace);
  out += ",\n\"wall_clock\":{";
  AppendCounterObject(registry, Determinism::kWallClock, &out);
  out.push_back(',');
  AppendGaugeObject(registry, Determinism::kWallClock, &out);
  out.push_back(',');
  AppendHistogramObject(registry, Determinism::kWallClock,
                        /*percentiles=*/true, &out);
  out += "}\n}\n";
  return out;
}

std::string RenderMetricsText(const MetricsRegistry& registry) {
  std::ostringstream out;
  for (const auto& c : registry.counters()) {
    out << c.name << " " << c.metric->value() << "\n";
  }
  for (const auto& g : registry.gauges()) {
    out << g.name << " value=" << g.metric->value()
        << " max=" << g.metric->max() << "\n";
  }
  for (const auto& h : registry.histograms()) {
    const int64_t n = h.metric->count();
    out << h.name << " count=" << n;
    if (n > 0) {
      out << " mean=" << h.metric->sum() / n
          << " p50=" << h.metric->Percentile(0.50)
          << " p90=" << h.metric->Percentile(0.90)
          << " p99=" << h.metric->Percentile(0.99);
    }
    out << "\n";
  }
  return out.str();
}

void WriteTraceJsonl(const TraceLog& trace, std::ostream& out) {
  for (const TraceEvent& ev : trace.Events()) {
    out << "{\"seq\":" << ev.seq << ",\"kind\":\"" << TraceKindName(ev.kind)
        << "\",\"period\":" << ev.period << ",\"region\":" << ev.region
        << ",\"value\":" << ev.value << ",\"detail\":" << Quote(ev.detail)
        << "}\n";
  }
}

Status WriteMetricsJsonFile(const std::string& path,
                            const MetricsRegistry& registry,
                            const TraceLog* trace) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out << RenderMetricsJson(registry, trace);
  out.flush();
  if (!out) return Status::Internal("write error on " + path);
  return Status::OK();
}

Status WriteTraceJsonlFile(const std::string& path, const TraceLog& trace) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  WriteTraceJsonl(trace, out);
  out.flush();
  if (!out) return Status::Internal("write error on " + path);
  return Status::OK();
}

}  // namespace obs
}  // namespace maps
