#include "obs/metrics.h"

#include <limits>

namespace maps {
namespace obs {

int64_t Histogram::BucketUpperBound(int i) {
  if (i <= 0) return 0;
  if (i >= kNumBuckets - 1) return std::numeric_limits<int64_t>::max();
  return (int64_t{1} << i) - 1;
}

int64_t Histogram::Percentile(double p) const {
  const int64_t n = count();
  if (n <= 0) return 0;
  // Rank of the requested percentile, 1-based: ceil(p * n) clamped to
  // [1, n]. Walk the cumulative bucket counts until the rank is covered.
  int64_t rank = static_cast<int64_t>(p * static_cast<double>(n));
  if (static_cast<double>(rank) < p * static_cast<double>(n)) ++rank;
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  int64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += bucket(i);
    if (cumulative >= rank) return BucketUpperBound(i);
  }
  return BucketUpperBound(kNumBuckets - 1);
}

namespace {

template <typename T, typename MapT>
T* FindOrCreate(std::mutex* mu, MapT* map, const std::string& name,
                Determinism det) {
  std::lock_guard<std::mutex> lock(*mu);
  auto it = map->find(name);
  if (it == map->end()) {
    it = map->emplace(name, typename MapT::mapped_type{det,
                                std::make_unique<T>()})
             .first;
  }
  return it->second.metric.get();
}

template <typename T, typename MapT>
std::vector<MetricsRegistry::Named<T>> Snapshot(std::mutex* mu,
                                                const MapT& map) {
  std::lock_guard<std::mutex> lock(*mu);
  std::vector<MetricsRegistry::Named<T>> out;
  out.reserve(map.size());
  for (const auto& [name, slot] : map) {
    out.push_back({name, slot.det, slot.metric.get()});
  }
  return out;  // std::map iteration: already sorted by name
}

}  // namespace

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     Determinism det) {
  return FindOrCreate<Counter>(&mu_, &counters_, name, det);
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, Determinism det) {
  return FindOrCreate<Gauge>(&mu_, &gauges_, name, det);
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         Determinism det) {
  return FindOrCreate<Histogram>(&mu_, &histograms_, name, det);
}

std::vector<MetricsRegistry::Named<Counter>> MetricsRegistry::counters()
    const {
  return Snapshot<Counter>(&mu_, counters_);
}

std::vector<MetricsRegistry::Named<Gauge>> MetricsRegistry::gauges() const {
  return Snapshot<Gauge>(&mu_, gauges_);
}

std::vector<MetricsRegistry::Named<Histogram>> MetricsRegistry::histograms()
    const {
  return Snapshot<Histogram>(&mu_, histograms_);
}

}  // namespace obs
}  // namespace maps
