// Observability metrics core (DESIGN.md §16): a process-local registry of
// named counters, gauges, and fixed-bucket latency histograms, built so the
// serving hot paths pay almost nothing for it.
//
// Cost model. Instrumented sites hold RAW POINTERS to metric objects,
// resolved once at attach time (engine construction, stream attach); when no
// registry is attached the pointer is null and the site costs exactly one
// predictable branch. Updates are lock-free relaxed atomics — region closes
// run concurrently on pool workers and ThreadPool gauges update from worker
// threads, so every hot-path mutation must be a data-race-free RMW (the Obs
// TSan suite pins this). Registration (GetCounter/GetGauge/GetHistogram) is
// mutex-guarded and meant for attach time only, never per event.
//
// Determinism contract. Telemetry NEVER changes engine outputs: metric
// objects are write-only sinks on the engine side, and a ScopedTimer with a
// null histogram does not even read the clock. Each metric carries a
// Determinism class chosen at registration:
//   * kDeterministic — pure functions of the event log (event counts,
//     rejection counters, checkpoint byte sizes). Identical replays produce
//     identical values at any thread count; these export into the
//     byte-stable deterministic slice of METRICS.json (obs/export.h).
//   * kWallClock — durations, queue depths: real measurements that vary run
//     to run and export separately.
// Histogram bucket bounds are powers of two: Record() is a bit-width
// computation plus one relaxed fetch_add, branch-light and allocation-free;
// p50/p90/p99 are derived at export time, never maintained online.

#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace maps {
namespace obs {

/// \brief Export class of a metric: deterministic values land in the
/// byte-stable slice of METRICS.json, wall-clock values in the rest.
enum class Determinism {
  kDeterministic = 0,
  kWallClock = 1,
};

/// \brief Monotonic event count. Thread-safe (relaxed atomic add).
class Counter {
 public:
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Point-in-time level with a high-water mark (queue depths, live
/// object counts). Thread-safe; the max is maintained with a CAS loop.
class Gauge {
 public:
  void Set(int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    UpdateMax(v);
  }
  void Add(int64_t delta) {
    UpdateMax(value_.fetch_add(delta, std::memory_order_relaxed) + delta);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }

 private:
  void UpdateMax(int64_t v) {
    int64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

/// \brief Fixed-bucket histogram over non-negative int64 values (latencies
/// in ns, byte sizes). Bucket 0 holds v <= 0; bucket i in [1, 62] holds
/// [2^(i-1), 2^i - 1]; bucket 63 is the overflow bucket (everything with 63
/// significant bits). Record() is allocation-free: one bit-width, one add.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  /// Bucket index of `v` (see the class comment for the bounds).
  static int BucketIndex(int64_t v) {
    if (v <= 0) return 0;
    const int width = std::bit_width(static_cast<uint64_t>(v));
    return width < kNumBuckets ? width : kNumBuckets - 1;
  }

  /// Inclusive upper bound of bucket `i` (INT64_MAX for the overflow
  /// bucket) — the value percentiles report for ranks landing in it.
  static int64_t BucketUpperBound(int i);

  void Record(int64_t v) {
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Export-time percentile: the upper bound of the bucket holding the
  /// ceil(p * count)-th smallest recorded value (0 when empty). `p` in
  /// (0, 1].
  int64_t Percentile(double p) const;

 private:
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
};

/// \brief Process-local registry owning every metric. Lookup is sorted by
/// name (std::map), so exports iterate deterministically. Metric objects
/// are stable in memory for the registry's lifetime — sites cache the raw
/// pointers. Not copyable; typically one per process (CLI run, bench rep,
/// matrix cell).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates; the Determinism class of the FIRST registration
  /// sticks (later calls with a different class get the existing metric).
  Counter* GetCounter(const std::string& name,
                      Determinism det = Determinism::kDeterministic);
  Gauge* GetGauge(const std::string& name,
                  Determinism det = Determinism::kWallClock);
  Histogram* GetHistogram(const std::string& name,
                          Determinism det = Determinism::kWallClock);

  /// Sorted-by-name snapshots for export; pointers valid for the
  /// registry's lifetime.
  template <typename T>
  struct Named {
    std::string name;
    Determinism det = Determinism::kDeterministic;
    const T* metric = nullptr;
  };
  std::vector<Named<Counter>> counters() const;
  std::vector<Named<Gauge>> gauges() const;
  std::vector<Named<Histogram>> histograms() const;

 private:
  template <typename T>
  struct Slot {
    Determinism det;
    std::unique_ptr<T> metric;
  };

  mutable std::mutex mu_;
  std::map<std::string, Slot<Counter>> counters_;
  std::map<std::string, Slot<Gauge>> gauges_;
  std::map<std::string, Slot<Histogram>> histograms_;
};

/// \brief RAII wall-clock span recording elapsed nanoseconds into a
/// histogram on destruction. A null histogram costs one branch per end and
/// never reads the clock — the disabled-telemetry fast path.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist) : hist_(hist) {
    if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (hist_ != nullptr) {
      hist_->Record(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count());
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

/// \brief Bumps a plain struct counter and its registry mirror together —
/// the single-increment-site idiom that keeps EngineRejectionCounters and
/// telemetry from ever drifting (DESIGN.md §16).
inline void BumpMirrored(int64_t* field, Counter* mirror, int64_t n = 1) {
  *field += n;
  if (mirror != nullptr) mirror->Add(n);
}

}  // namespace obs
}  // namespace maps
