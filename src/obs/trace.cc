#include "obs/trace.h"

#include <algorithm>
#include <utility>

namespace maps {
namespace obs {

const char* TraceKindName(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kPeriodOpened:
      return "period_opened";
    case TraceEvent::Kind::kPeriodClosed:
      return "period_closed";
    case TraceEvent::Kind::kRegionHealth:
      return "region_health";
    case TraceEvent::Kind::kCheckpointWritten:
      return "checkpoint_written";
    case TraceEvent::Kind::kCheckpointRestored:
      return "checkpoint_restored";
    case TraceEvent::Kind::kFaultFired:
      return "fault_fired";
  }
  return "?";
}

TraceLog::TraceLog(size_t capacity) : capacity_(std::max<size_t>(1, capacity)) {
  ring_.reserve(std::min<size_t>(capacity_, 1024));
}

int64_t TraceLog::Append(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  event.seq = next_seq_++;
  const int64_t seq = event.seq;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    // Overwrite the oldest slot; head_ walks the ring.
    ring_[head_] = std::move(event);
    head_ = (head_ + 1) % capacity_;
  }
  return seq;
}

int64_t TraceLog::Emit(TraceEvent::Kind kind, int64_t period, int32_t region,
                       int64_t value, std::string detail) {
  TraceEvent event;
  event.kind = kind;
  event.period = period;
  event.region = region;
  event.value = value;
  event.detail = std::move(detail);
  return Append(std::move(event));
}

std::vector<TraceEvent> TraceLog::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

int64_t TraceLog::appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

int64_t TraceLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - static_cast<int64_t>(ring_.size());
}

}  // namespace obs
}  // namespace maps
