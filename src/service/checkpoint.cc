// Checkpoint container (checkpoint.h) plus the MarketEngine
// SaveCheckpoint / RestoreFromCheckpoint member functions, kept in this TU
// so the serialization code lives with the format definition.

#include "service/checkpoint.h"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/market_engine.h"
#include "util/fault_injector.h"
#include "util/serial.h"

namespace maps {

namespace {

// Section ids of container format version 1, in file order. Every section
// appears exactly once; the reader rejects anything else.
enum SectionId : uint32_t {
  kSectionConfig = 1,    // grid/lifecycle/strategy fingerprint
  kSectionCore = 2,      // period counter + rejection counters
  kSectionWorkers = 3,   // lifecycle table: records, idle order, busy heap
  kSectionStages = 4,    // both staged task sets + seal flags
  kSectionPending = 5,   // pending acceptance bits
  kSectionRng = 6,       // repositioning RNG position
  kSectionStrategy = 7,  // PricingStrategy::SaveState payload
};


}  // namespace

namespace internal {

void AppendCheckpointSection(uint32_t id, const std::string& payload,
                             StateWriter* out) {
  out->PutU32(id);
  out->PutU64(payload.size());
  out->PutU32(Crc32(payload.data(), payload.size()));
  out->PutBytes(payload.data(), payload.size());
}

Status ParseCheckpointContainer(const std::string& data, const char* magic,
                                uint32_t version, uint32_t num_sections,
                                const char* what,
                                std::vector<std::string>* payloads) {
  const std::string name(what);
  StateReader r(data);
  char got_magic[8];
  MAPS_RETURN_NOT_OK(
      r.GetBytes(got_magic, sizeof(got_magic), "checkpoint magic"));
  if (std::memcmp(got_magic, magic, sizeof(got_magic)) != 0) {
    return Status::InvalidArgument("bad magic at offset 0: not a " + name);
  }
  uint32_t got_version;
  MAPS_RETURN_NOT_OK(r.GetU32(&got_version, "checkpoint format version"));
  if (got_version != version) {
    return Status::InvalidArgument(
        "unsupported " + name + " format version " +
        std::to_string(got_version) + " (this build reads version " +
        std::to_string(version) + ")");
  }
  uint32_t count;
  MAPS_RETURN_NOT_OK(r.GetU32(&count, "checkpoint section count"));
  if (count != num_sections) {
    return Status::InvalidArgument(
        name + " has " + std::to_string(count) + " sections, expected " +
        std::to_string(num_sections));
  }
  payloads->assign(num_sections, std::string());
  for (uint32_t i = 0; i < count; ++i) {
    const size_t header_at = r.offset();
    uint32_t id, crc;
    uint64_t len;
    MAPS_RETURN_NOT_OK(r.GetU32(&id, "section id"));
    MAPS_RETURN_NOT_OK(r.GetU64(&len, "section length"));
    MAPS_RETURN_NOT_OK(r.GetU32(&crc, "section checksum"));
    if (id != i + 1) {
      return Status::InvalidArgument(
          "unexpected section id " + std::to_string(id) + " at offset " +
          std::to_string(header_at) + ", expected " + std::to_string(i + 1));
    }
    if (len > r.remaining()) {
      return Status::InvalidArgument(
          "section " + std::to_string(id) + " at offset " +
          std::to_string(header_at) + " claims " + std::to_string(len) +
          " byte(s), file has " + std::to_string(r.remaining()));
    }
    std::string payload(static_cast<size_t>(len), '\0');
    if (len > 0) {
      MAPS_RETURN_NOT_OK(
          r.GetBytes(&payload[0], payload.size(), "section payload"));
    }
    const uint32_t actual = Crc32(payload.data(), payload.size());
    if (actual != crc) {
      return Status::InvalidArgument(
          "section " + std::to_string(id) + " at offset " +
          std::to_string(header_at) + " failed its checksum");
    }
    (*payloads)[i] = std::move(payload);
  }
  return r.ExpectEnd((name + " container").c_str());
}

}  // namespace internal

namespace {

/// One atomic-replace attempt; `attempt` and `write_call` name the fault
/// site so a FaultPlan can fail attempt 0 of write call 2 and let the
/// retry through.
Status WriteCheckpointFileOnce(const std::string& path,
                               const std::string& data, int attempt,
                               int32_t write_call) {
  FaultInjector& faults = FaultInjector::Global();
  if (faults.ShouldFire(FaultRule::Kind::kCheckpointWriteError, attempt,
                        write_call)) {
    return Status::Internal("injected I/O error writing " + path +
                            " (attempt " + std::to_string(attempt) + ")");
  }
  // A torn write models a lying disk: the write "succeeds" but only a
  // prefix of the payload lands under the final name. Readers must reject
  // it through the container CRCs — that is the point of the fault.
  const size_t write_bytes =
      faults.ShouldFire(FaultRule::Kind::kCheckpointTornWrite, attempt,
                        write_call)
          ? data.size() / 2
          : data.size();

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open " + tmp +
                            " for writing: " + std::strerror(errno));
  }
  bool ok = write_bytes == 0 ||
            std::fwrite(data.data(), 1, write_bytes, f) == write_bytes;
  ok = ok && std::fflush(f) == 0;
  // fsync before the rename: the atomic-replace guarantee is only as good
  // as the data being on disk when the new name appears.
  ok = ok && fsync(fileno(f)) == 0;
  const std::string io_error = ok ? "" : std::strerror(errno);
  if (std::fclose(f) != 0) ok = false;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::Internal("failed writing " + tmp + ": " + io_error);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string rename_error = std::strerror(errno);
    std::remove(tmp.c_str());
    return Status::Internal("failed renaming " + tmp + " to " + path + ": " +
                            rename_error);
  }
  // Make the rename itself durable: fsync the containing directory so a
  // crash right after this call cannot roll the directory entry back.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dir_fd = open(dir.c_str(), O_RDONLY);
  if (dir_fd >= 0) {
    // Best-effort: some filesystems refuse directory fsync; the file data
    // itself is already synced above.
    fsync(dir_fd);
    close(dir_fd);
  }
  return Status::OK();
}

}  // namespace

Status WriteCheckpointFile(const std::string& path, const std::string& data) {
  const int32_t write_call = FaultInjector::Global().NextWriteSite();
  Status last;
  for (int attempt = 0; attempt < kCheckpointWriteAttempts; ++attempt) {
    last = WriteCheckpointFileOnce(path, data, attempt, write_call);
    if (last.ok()) return last;
  }
  return Status::Internal("checkpoint write to " + path + " failed after " +
                          std::to_string(kCheckpointWriteAttempts) +
                          " attempts: " + last.message());
}

Status ReadCheckpointFile(const std::string& path, std::string* data) {
  if (data == nullptr) return Status::InvalidArgument("null output string");
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open checkpoint file " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return Status::Internal("read error on checkpoint file " + path);
  }
  *data = buf.str();
  return Status::OK();
}

Status PruneCheckpointFiles(const std::string& dir, const std::string& prefix,
                            int keep, std::vector<std::string>* removed) {
  if (keep < 1) {
    return Status::InvalidArgument("checkpoint rotation needs keep >= 1, got " +
                                   std::to_string(keep));
  }
  if (removed != nullptr) removed->clear();

  DIR* d = opendir(dir.c_str());
  if (d == nullptr) {
    return Status::NotFound("cannot open checkpoint directory " + dir + ": " +
                            std::strerror(errno));
  }
  const std::string suffix = ".ckpt";
  // (sequence number, file name) for every name shaped prefix<number>.ckpt.
  std::vector<std::pair<long long, std::string>> found;
  while (dirent* ent = readdir(d)) {
    const std::string name = ent->d_name;
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
        0) {
      continue;
    }
    const std::string middle =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    bool digits = !middle.empty();
    for (const char c : middle) {
      if (c < '0' || c > '9') digits = false;
    }
    if (!digits) continue;
    errno = 0;
    const long long seq = std::strtoll(middle.c_str(), nullptr, 10);
    if (errno == ERANGE) continue;
    found.emplace_back(seq, name);
  }
  closedir(d);

  if (static_cast<int>(found.size()) <= keep) return Status::OK();
  std::sort(found.begin(), found.end());
  const size_t prune = found.size() - static_cast<size_t>(keep);
  for (size_t i = 0; i < prune; ++i) {
    const std::string full = dir + "/" + found[i].second;
    if (std::remove(full.c_str()) != 0) {
      return Status::Internal("failed pruning checkpoint " + full + ": " +
                              std::strerror(errno));
    }
    if (removed != nullptr) removed->push_back(full);
  }
  return Status::OK();
}

Status MarketEngine::SaveCheckpoint(std::string* out) {
  if (out == nullptr) return Status::InvalidArgument("null output string");
  obs::ScopedTimer save_timer(m_ckpt_save_ns_);
  // No prebuild job may be running while we serialize the stages it reads.
  DrainPrebuilds();

  StateWriter config;
  config.PutI32(grid_->rows());
  config.PutI32(grid_->cols());
  const Rect& region = grid_->region();
  config.PutDouble(region.min_x);
  config.PutDouble(region.min_y);
  config.PutDouble(region.max_x);
  config.PutDouble(region.max_y);
  config.PutBool(options_.lifecycle.single_use);
  config.PutDouble(options_.lifecycle.speed);
  config.PutDouble(options_.lifecycle.reposition_prob);
  config.PutU64(options_.lifecycle.reposition_seed);
  config.PutString(strategy_->name());

  StateWriter core;
  core.PutI32(period_);
  core.PutI64(rejections_.duplicate_tasks);
  core.PutI64(rejections_.unknown_worker_removals);
  core.PutI64(rejections_.busy_worker_removals);
  core.PutI64(rejections_.orphan_acceptances);

  StateWriter workers;
  workers.PutU64(workers_.size());
  for (size_t i = 0; i < workers_.size(); ++i) {
    const WorkerRecord& rec = workers_[i];
    workers.PutI64(rec.base.id);
    workers.PutI32(rec.base.period);
    workers.PutDouble(rec.base.location.x);
    workers.PutDouble(rec.base.location.y);
    workers.PutDouble(rec.base.radius);
    workers.PutI32(rec.base.duration);
    workers.PutI32(rec.base.grid);
    workers.PutI32(rec.next_free);
    workers.PutI32(rec.retire_at);
    workers.PutBool(rec.consumed);
    // indexed: the id still resolves to this record. False only for the
    // tombstones ExtractIdleWorker leaves behind (the id may meanwhile
    // belong to a newer record of this same engine).
    const auto idx_it = worker_index_.find(rec.base.id);
    workers.PutBool(idx_it != worker_index_.end() &&
                    idx_it->second == static_cast<int>(i));
  }
  workers.PutU64(idle_.size());
  for (int idx : idle_) workers.PutI32(idx);
  // The busy heap is drained in its deterministic pop order — ascending
  // (next_free, index) — which is the only property ClosePeriod observes;
  // the restore re-pushes the entries.
  auto busy_copy = busy_;
  workers.PutU64(busy_copy.size());
  while (!busy_copy.empty()) {
    workers.PutI32(busy_copy.top().first);
    workers.PutI32(busy_copy.top().second);
    busy_copy.pop();
  }

  StateWriter stage_w;
  for (const Stage& stage : stages_) {
    stage_w.PutBool(stage.sealed);
    stage_w.PutU64(stage.tasks.size());
    for (const Task& task : stage.tasks) {
      stage_w.PutI64(task.id);
      stage_w.PutI32(task.period);
      stage_w.PutDouble(task.origin.x);
      stage_w.PutDouble(task.origin.y);
      stage_w.PutDouble(task.destination.x);
      stage_w.PutDouble(task.destination.y);
      stage_w.PutDouble(task.distance);
      stage_w.PutI32(task.grid);
    }
    // Aligned with tasks by the SubmitTask/StageNextPeriodTasks contract.
    for (double v : stage.valuations) stage_w.PutDouble(v);
  }

  StateWriter pending;
  std::vector<std::pair<TaskId, bool>> bits(pending_accept_.begin(),
                                            pending_accept_.end());
  std::sort(bits.begin(), bits.end());  // map order is not deterministic
  pending.PutU64(bits.size());
  for (const auto& [task, accepted] : bits) {
    pending.PutI64(task);
    pending.PutBool(accepted);
  }

  StateWriter rng;
  for (uint64_t word : reposition_rng_.SaveState()) rng.PutU64(word);

  StateWriter strategy;
  MAPS_RETURN_NOT_OK(strategy_->SaveState(&strategy));

  StateWriter blob;
  blob.PutBytes(kCheckpointMagic, sizeof(kCheckpointMagic));
  blob.PutU32(kCheckpointFormatVersion);
  blob.PutU32(kCheckpointNumSections);
  internal::AppendCheckpointSection(kSectionConfig, config.data(), &blob);
  internal::AppendCheckpointSection(kSectionCore, core.data(), &blob);
  internal::AppendCheckpointSection(kSectionWorkers, workers.data(), &blob);
  internal::AppendCheckpointSection(kSectionStages, stage_w.data(), &blob);
  internal::AppendCheckpointSection(kSectionPending, pending.data(), &blob);
  internal::AppendCheckpointSection(kSectionRng, rng.data(), &blob);
  internal::AppendCheckpointSection(kSectionStrategy, strategy.data(), &blob);
  *out = blob.data();
  if (m_ckpt_bytes_ != nullptr) {
    m_ckpt_bytes_->Record(static_cast<int64_t>(out->size()));
  }
  if (options_.trace != nullptr) {
    options_.trace->Emit(obs::TraceEvent::Kind::kCheckpointWritten, period_,
                         /*region=*/-1, static_cast<int64_t>(out->size()), "");
  }
  return Status::OK();
}

Status MarketEngine::RestoreFromCheckpoint(const std::string& data) {
  obs::ScopedTimer restore_timer(m_ckpt_restore_ns_);
  DrainPrebuilds();
  std::vector<std::string> sections;
  MAPS_RETURN_NOT_OK(internal::ParseCheckpointContainer(
      data, kCheckpointMagic, kCheckpointFormatVersion, kCheckpointNumSections,
      "MAPS checkpoint", &sections));

  // Every section is decoded and validated into temporaries first; the
  // engine commits only after all of them (and the strategy) succeeded, so
  // a corrupt tail can never leave this engine half-restored.

  {  // Config fingerprint: the target must be configured like the saver.
    StateReader r(sections[kSectionConfig - 1]);
    int32_t rows, cols;
    double min_x, min_y, max_x, max_y;
    MAPS_RETURN_NOT_OK(r.GetI32(&rows, "grid rows"));
    MAPS_RETURN_NOT_OK(r.GetI32(&cols, "grid cols"));
    MAPS_RETURN_NOT_OK(r.GetDouble(&min_x, "region min_x"));
    MAPS_RETURN_NOT_OK(r.GetDouble(&min_y, "region min_y"));
    MAPS_RETURN_NOT_OK(r.GetDouble(&max_x, "region max_x"));
    MAPS_RETURN_NOT_OK(r.GetDouble(&max_y, "region max_y"));
    const Rect& region = grid_->region();
    if (rows != grid_->rows() || cols != grid_->cols() ||
        min_x != region.min_x || min_y != region.min_y ||
        max_x != region.max_x || max_y != region.max_y) {
      return Status::FailedPrecondition(
          "checkpoint grid fingerprint (" + std::to_string(rows) + "x" +
          std::to_string(cols) + ") does not match this engine's partition (" +
          std::to_string(grid_->rows()) + "x" + std::to_string(grid_->cols()) +
          ")");
    }
    bool single_use;
    double speed, reposition_prob;
    uint64_t reposition_seed;
    MAPS_RETURN_NOT_OK(r.GetBool(&single_use, "lifecycle single_use"));
    MAPS_RETURN_NOT_OK(r.GetDouble(&speed, "lifecycle speed"));
    MAPS_RETURN_NOT_OK(
        r.GetDouble(&reposition_prob, "lifecycle reposition_prob"));
    MAPS_RETURN_NOT_OK(
        r.GetU64(&reposition_seed, "lifecycle reposition_seed"));
    const WorkerLifecycle& lc = options_.lifecycle;
    if (single_use != lc.single_use || speed != lc.speed ||
        reposition_prob != lc.reposition_prob ||
        reposition_seed != lc.reposition_seed) {
      return Status::FailedPrecondition(
          "checkpoint worker-lifecycle fingerprint does not match this "
          "engine's options");
    }
    std::string name;
    MAPS_RETURN_NOT_OK(r.GetString(&name, "strategy name"));
    if (name != strategy_->name()) {
      return Status::FailedPrecondition(
          "checkpoint was saved with strategy '" + name +
          "', this engine prices with '" + strategy_->name() + "'");
    }
    MAPS_RETURN_NOT_OK(r.ExpectEnd("config section"));
  }

  int32_t period;
  EngineRejectionCounters rej;
  {  // Engine core.
    StateReader r(sections[kSectionCore - 1]);
    MAPS_RETURN_NOT_OK(r.GetI32(&period, "period counter"));
    MAPS_RETURN_NOT_OK(r.GetI64(&rej.duplicate_tasks, "duplicate_tasks"));
    MAPS_RETURN_NOT_OK(
        r.GetI64(&rej.unknown_worker_removals, "unknown_worker_removals"));
    MAPS_RETURN_NOT_OK(
        r.GetI64(&rej.busy_worker_removals, "busy_worker_removals"));
    MAPS_RETURN_NOT_OK(
        r.GetI64(&rej.orphan_acceptances, "orphan_acceptances"));
    if (period < 0 || rej.duplicate_tasks < 0 ||
        rej.unknown_worker_removals < 0 || rej.busy_worker_removals < 0 ||
        rej.orphan_acceptances < 0) {
      return Status::InvalidArgument(
          "engine core section has negative counters");
    }
    MAPS_RETURN_NOT_OK(r.ExpectEnd("engine core section"));
  }

  std::vector<WorkerRecord> workers;
  std::unordered_map<WorkerId, int> worker_index;
  std::vector<int> idle;
  std::vector<BusyEntry> busy_entries;
  {  // Worker lifecycle table.
    StateReader r(sections[kSectionWorkers - 1]);
    uint64_t n;
    MAPS_RETURN_NOT_OK(r.GetU64(&n, "worker count"));
    // One record is 54 encoded bytes; a count beyond that is corruption.
    MAPS_RETURN_NOT_OK(CheckDecodedCount(r, n, 54, "worker records"));
    workers.resize(static_cast<size_t>(n));
    worker_index.reserve(workers.size());
    for (size_t i = 0; i < workers.size(); ++i) {
      WorkerRecord& rec = workers[i];
      MAPS_RETURN_NOT_OK(r.GetI64(&rec.base.id, "worker id"));
      MAPS_RETURN_NOT_OK(r.GetI32(&rec.base.period, "worker period"));
      MAPS_RETURN_NOT_OK(r.GetDouble(&rec.base.location.x, "worker x"));
      MAPS_RETURN_NOT_OK(r.GetDouble(&rec.base.location.y, "worker y"));
      MAPS_RETURN_NOT_OK(r.GetDouble(&rec.base.radius, "worker radius"));
      MAPS_RETURN_NOT_OK(r.GetI32(&rec.base.duration, "worker duration"));
      MAPS_RETURN_NOT_OK(r.GetI32(&rec.base.grid, "worker grid"));
      MAPS_RETURN_NOT_OK(r.GetI32(&rec.next_free, "worker next_free"));
      MAPS_RETURN_NOT_OK(r.GetI32(&rec.retire_at, "worker retire_at"));
      MAPS_RETURN_NOT_OK(r.GetBool(&rec.consumed, "worker consumed"));
      bool indexed;
      MAPS_RETURN_NOT_OK(r.GetBool(&indexed, "worker indexed"));
      if (rec.base.grid < 0 || rec.base.grid >= grid_->num_cells()) {
        return Status::InvalidArgument(
            "worker record " + std::to_string(i) + " has grid " +
            std::to_string(rec.base.grid) + " outside the partition");
      }
      // Only extraction tombstones lose their index entry, and they are
      // always consumed; a live-but-unindexed record is corruption.
      if (!indexed && !rec.consumed) {
        return Status::InvalidArgument(
            "worker record " + std::to_string(i) +
            " is unindexed but not consumed");
      }
      if (indexed &&
          !worker_index.emplace(rec.base.id, static_cast<int>(i)).second) {
        return Status::InvalidArgument(
            "worker id " + std::to_string(rec.base.id) +
            " appears twice in the checkpoint");
      }
    }
    uint64_t idle_n;
    MAPS_RETURN_NOT_OK(r.GetU64(&idle_n, "idle count"));
    MAPS_RETURN_NOT_OK(CheckDecodedCount(r, idle_n, 4, "idle indices"));
    idle.resize(static_cast<size_t>(idle_n));
    std::vector<char> in_idle(workers.size(), 0);
    for (auto& idx : idle) {
      MAPS_RETURN_NOT_OK(r.GetI32(&idx, "idle index"));
      if (idx < 0 || static_cast<size_t>(idx) >= workers.size()) {
        return Status::InvalidArgument("idle index " + std::to_string(idx) +
                                       " out of range");
      }
      if (in_idle[idx]) {
        return Status::InvalidArgument("idle index " + std::to_string(idx) +
                                       " appears twice");
      }
      in_idle[idx] = 1;
    }
    uint64_t busy_n;
    MAPS_RETURN_NOT_OK(r.GetU64(&busy_n, "busy count"));
    MAPS_RETURN_NOT_OK(CheckDecodedCount(r, busy_n, 8, "busy entries"));
    busy_entries.resize(static_cast<size_t>(busy_n));
    for (auto& entry : busy_entries) {
      MAPS_RETURN_NOT_OK(r.GetI32(&entry.first, "busy next_free"));
      MAPS_RETURN_NOT_OK(r.GetI32(&entry.second, "busy index"));
      if (entry.second < 0 ||
          static_cast<size_t>(entry.second) >= workers.size()) {
        return Status::InvalidArgument(
            "busy index " + std::to_string(entry.second) + " out of range");
      }
    }
    MAPS_RETURN_NOT_OK(r.ExpectEnd("worker section"));
  }

  Stage stages[2];
  {  // Staged task sets.
    StateReader r(sections[kSectionStages - 1]);
    for (Stage& stage : stages) {
      MAPS_RETURN_NOT_OK(r.GetBool(&stage.sealed, "stage sealed"));
      uint64_t n;
      MAPS_RETURN_NOT_OK(r.GetU64(&n, "staged task count"));
      // One task is 56 encoded bytes (plus its valuation after the list).
      MAPS_RETURN_NOT_OK(CheckDecodedCount(r, n, 56, "staged tasks"));
      stage.tasks.resize(static_cast<size_t>(n));
      stage.ids.reserve(stage.tasks.size());
      for (Task& task : stage.tasks) {
        MAPS_RETURN_NOT_OK(r.GetI64(&task.id, "task id"));
        MAPS_RETURN_NOT_OK(r.GetI32(&task.period, "task period"));
        MAPS_RETURN_NOT_OK(r.GetDouble(&task.origin.x, "task origin x"));
        MAPS_RETURN_NOT_OK(r.GetDouble(&task.origin.y, "task origin y"));
        MAPS_RETURN_NOT_OK(
            r.GetDouble(&task.destination.x, "task destination x"));
        MAPS_RETURN_NOT_OK(
            r.GetDouble(&task.destination.y, "task destination y"));
        MAPS_RETURN_NOT_OK(r.GetDouble(&task.distance, "task distance"));
        MAPS_RETURN_NOT_OK(r.GetI32(&task.grid, "task grid"));
        if (task.grid < 0 || task.grid >= grid_->num_cells()) {
          return Status::InvalidArgument(
              "staged task " + std::to_string(task.id) + " has grid " +
              std::to_string(task.grid) + " outside the partition");
        }
        if (!stage.ids.insert(task.id).second) {
          return Status::InvalidArgument(
              "staged task id " + std::to_string(task.id) +
              " appears twice in one period");
        }
      }
      stage.valuations.resize(stage.tasks.size());
      for (double& v : stage.valuations) {
        MAPS_RETURN_NOT_OK(r.GetDouble(&v, "staged valuation"));
      }
    }
    MAPS_RETURN_NOT_OK(r.ExpectEnd("stage section"));
  }

  std::unordered_map<TaskId, bool> pending;
  {  // Pending acceptance bits.
    StateReader r(sections[kSectionPending - 1]);
    uint64_t n;
    MAPS_RETURN_NOT_OK(r.GetU64(&n, "pending bit count"));
    MAPS_RETURN_NOT_OK(CheckDecodedCount(r, n, 9, "pending bits"));
    pending.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n; ++i) {
      TaskId task;
      bool accepted;
      MAPS_RETURN_NOT_OK(r.GetI64(&task, "pending task id"));
      MAPS_RETURN_NOT_OK(r.GetBool(&accepted, "pending accepted bit"));
      if (!pending.emplace(task, accepted).second) {
        return Status::InvalidArgument(
            "pending bit for task " + std::to_string(task) +
            " appears twice");
      }
    }
    MAPS_RETURN_NOT_OK(r.ExpectEnd("pending section"));
  }

  std::array<uint64_t, 4> rng_state;
  {  // Repositioning RNG position.
    StateReader r(sections[kSectionRng - 1]);
    for (auto& word : rng_state) {
      MAPS_RETURN_NOT_OK(r.GetU64(&word, "rng state word"));
    }
    MAPS_RETURN_NOT_OK(r.ExpectEnd("rng section"));
  }

  {  // Strategy learned state. This is the last fallible step and the only
    // one that mutates anything: per-strategy LoadState is itself
    // all-or-nothing, so on failure neither the strategy nor the engine
    // changed. (A trailing-bytes failure below leaves the strategy holding
    // the — fully decoded, self-consistent — checkpoint state while the
    // engine is untouched and reports the error.)
    StateReader r(sections[kSectionStrategy - 1]);
    MAPS_RETURN_NOT_OK(strategy_->LoadState(&r));
    MAPS_RETURN_NOT_OK(r.ExpectEnd("strategy section"));
  }

  // Commit. Nothing below can fail. The mirrored registry counters absorb
  // the jump between pre-restore and checkpoint values so the registry
  // keeps equal to the (possibly multi-engine) sum of the struct counters
  // after a rewind (DESIGN.md §16).
  const auto sync_mirror = [](int64_t before, int64_t after,
                              obs::Counter* mirror) {
    if (mirror != nullptr && after != before) mirror->Add(after - before);
  };
  sync_mirror(rejections_.duplicate_tasks, rej.duplicate_tasks,
              m_reject_.duplicate_tasks);
  sync_mirror(rejections_.unknown_worker_removals, rej.unknown_worker_removals,
              m_reject_.unknown_worker_removals);
  sync_mirror(rejections_.busy_worker_removals, rej.busy_worker_removals,
              m_reject_.busy_worker_removals);
  sync_mirror(rejections_.orphan_acceptances, rej.orphan_acceptances,
              m_reject_.orphan_acceptances);
  sync_mirror(rejections_.deferred_tasks, rej.deferred_tasks,
              m_reject_.deferred_tasks);
  period_ = period;
  rejections_ = rej;
  workers_ = std::move(workers);
  worker_index_ = std::move(worker_index);
  idle_ = std::move(idle);
  busy_ = decltype(busy_)();
  for (const BusyEntry& entry : busy_entries) busy_.push(entry);
  matched_flag_.assign(workers_.size(), 0);
  stages_[0] = std::move(stages[0]);
  stages_[1] = std::move(stages[1]);
  pending_accept_ = std::move(pending);
  reposition_rng_.LoadState(rng_state);
  // The snapshot slots are derived state: ClosePeriod rebuilds the task
  // side (no prebuild latch is pending — drained above) and re-sets the
  // worker side every close, so stale slot contents are never observed.
  slot_bytes_[0] = slot_bytes_[1] = 0;
  // Wall-clock and footprint diagnostics describe this process, not the
  // run; they restart at zero (documented in DESIGN.md §12).
  strategy_seconds_ = 0.0;
  peak_platform_bytes_ = 0;
  peak_strategy_bytes_ = 0;
  if (options_.trace != nullptr) {
    options_.trace->Emit(obs::TraceEvent::Kind::kCheckpointRestored, period_,
                         /*region=*/-1, static_cast<int64_t>(data.size()), "");
  }
  return Status::OK();
}

}  // namespace maps
