// MarketEngine: the online serving core of the platform — events in, quotes
// out. A production deployment does not hand us a pre-materialized workload;
// it streams task submissions, worker arrivals/departures, and acceptance
// feedback, and asks for per-grid price quotes each period. The engine owns
// everything the per-period loop needs: the double-buffered staged
// MarketSnapshot pair, the lent ThreadPool, the strategy's
// PriceRound/ObserveFeedback cycle, the max-weight matching step, the
// worker-lifecycle state machine, and the optional Monte-Carlo
// expected-revenue diagnostic.
//
// Event model (batch semantics of Sec. 2, made incremental):
//   * Between two ClosePeriod() calls the engine has one OPEN period.
//     SubmitTask / AddWorker / RemoveWorker / ObserveAcceptance all apply to
//     it; ClosePeriod() then prices the period, resolves acceptance, runs
//     the matching, advances the lifecycle, and returns the PeriodOutcome.
//   * Acceptance resolution, per task: an explicit ObserveAcceptance() bit
//     wins (deployments where the platform, not the engine, sees requester
//     decisions); otherwise a hidden valuation attached at SubmitTask()
//     decides (v >= price, the simulation path); a task with neither is
//     treated as declined.
//   * StageNextPeriodTasks() optionally seals the NEXT period's task set in
//     bulk; with a pool and pipeline_periods this prebuilds that period's
//     task-side snapshot concurrently with the current ClosePeriod() — the
//     replay adapter's pipelining hook. Results are bit-identical with or
//     without it (DESIGN.md §10/§11).
//
// RunSimulation (sim/simulator.h) is now a thin replay adapter that feeds a
// Workload through exactly this API; the determinism contract (identical
// events => bit-identical outcomes at any thread count, pipeline on/off) is
// tested against it.

#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "geo/grid.h"
#include "graph/bipartite_graph.h"
#include "graph/max_weight_matching.h"
#include "graph/possible_worlds.h"
#include "market/demand_oracle.h"
#include "market/market_state.h"
#include "market/task.h"
#include "market/worker.h"
#include "pricing/strategy.h"
#include "rng/random.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace maps {

namespace obs {
class Counter;
class Histogram;
class MetricsRegistry;
class TraceLog;
}  // namespace obs

/// \brief Per-region failure-domain knobs (DESIGN.md §15). Honored only by
/// ShardedMarketEngine: a region whose close fails is quarantined — its
/// cells serve cached quotes, its open tasks defer to the next period —
/// instead of failing the whole close. MarketEngine ignores this.
struct FailureDomainOptions {
  /// Off by default: a region-close error fails ClosePeriod, the pre-§15
  /// behavior. When on with no fault armed, outcomes are bit-identical to
  /// off (the chaos harness pins this).
  bool enabled = false;
  /// Recovery attempts before a region is declared kFailed and serves
  /// cached quotes permanently. Attempt n is retried after a deterministic
  /// backoff of 2^(n-1) periods (attempt counts, never wall clock).
  int max_recovery_attempts = 3;
};

/// \brief Online engine knobs. SimOptions composes this (one shared option
/// surface; the simulator adds only replay-specific knobs on top).
struct EngineOptions {
  /// What happens to workers after a match (single-use vs turnaround,
  /// idle repositioning). The replay adapter overrides this with the
  /// workload's lifecycle.
  WorkerLifecycle lifecycle;
  /// Monte-Carlo worlds per period for the expected-revenue diagnostic:
  /// when > 0 and mc_oracle is set, each closed period also estimates
  /// E[U(B^t)] of the posted prices under the TRUE acceptance ratios by
  /// sampling this many possible worlds (world w of period t draws from
  /// CounterRng stream (mc_seed + t, w), so the estimate is bit-identical
  /// for any thread count). 0 disables (no cost).
  int mc_worlds = 0;
  /// Seed family for the Monte-Carlo diagnostic worlds.
  uint64_t mc_seed = 0x6d63776f726c64ULL;  // "mcworld"
  /// Ground-truth demand for the diagnostic. Non-owning; simulation-only —
  /// a live deployment has no oracle and leaves this null.
  const DemandOracle* mc_oracle = nullptr;
  /// Overlap the next period's task-side snapshot build (bucketing +
  /// distance prefix sums) with the current ClosePeriod() whenever the next
  /// period was sealed via StageNextPeriodTasks(). Bit-identical to the
  /// serial path for any thread count (DESIGN.md §10). No effect without a
  /// pool.
  bool pipeline_periods = true;
  /// Optional pool lent to the strategy (warm-up probe schedule, MAPS's
  /// per-round maximizer precompute), used by the Monte-Carlo diagnostic,
  /// and backing the period pipeline. Non-owning; must not be a pool whose
  /// workers call into THIS engine (nested waits can deadlock). Results are
  /// bit-identical with or without it.
  ThreadPool* pool = nullptr;
  /// Quarantine-instead-of-fail for region closes; sharded engine only.
  FailureDomainOptions failure_domains;
  /// Optional observability registry (DESIGN.md §16). Non-owning, like the
  /// pool; must outlive the engine. Metric handles are resolved once at
  /// construction, so a null registry costs one predictable branch per
  /// instrumented site. Telemetry NEVER changes engine outputs — runs with
  /// and without a registry are bit-identical (the Obs suites pin this).
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional structured trace ring (period opens/closes, region health
  /// transitions, fault firings). Non-owning. The sharded engine owns the
  /// canonical trace and does NOT propagate this to its region engines —
  /// region closes run concurrently and would interleave sequence ids.
  obs::TraceLog* trace = nullptr;
};

/// \brief Cumulative counts of rejected or ignored events since engine
/// construction (restored from checkpoints). Surfaced in every
/// PeriodOutcome so operators can monitor malformed traffic; a live
/// deployment alerting on these catches duplicate submissions or stale
/// acceptance reports without failing the period.
struct EngineRejectionCounters {
  /// SubmitTask / StageNextPeriodTasks calls rejected because a task id
  /// was already submitted for the same period.
  int64_t duplicate_tasks = 0;
  /// RemoveWorker calls rejected because the id was never admitted.
  int64_t unknown_worker_removals = 0;
  /// RemoveWorker calls that targeted a worker currently on a ride. These
  /// are honored (the worker finishes the ride and never returns to the
  /// pool) but counted, since callers often expect removal of an idle
  /// worker.
  int64_t busy_worker_removals = 0;
  /// ObserveAcceptance bits whose task id was not part of the period at
  /// its close (discarded there).
  int64_t orphan_acceptances = 0;
  /// Tasks deferred to the next period because their region was
  /// quarantined at the close (sharded failure domains, DESIGN.md §15).
  /// Conservation accounting: a deferred task is counted here once per
  /// deferral and served (or rejected on its own merits) later — never
  /// silently dropped.
  int64_t deferred_tasks = 0;

  bool operator==(const EngineRejectionCounters& o) const {
    return duplicate_tasks == o.duplicate_tasks &&
           unknown_worker_removals == o.unknown_worker_removals &&
           busy_worker_removals == o.busy_worker_removals &&
           orphan_acceptances == o.orphan_acceptances &&
           deferred_tasks == o.deferred_tasks;
  }
};

/// \brief Registry mirrors of EngineRejectionCounters: every increment site
/// bumps the struct field and (when a registry is attached) the
/// corresponding "engine.reject.*" counter in one place
/// (obs::BumpMirrored), so the PeriodOutcome view and telemetry can never
/// drift. All-null when no registry is attached.
struct RejectionCounterHandles {
  obs::Counter* duplicate_tasks = nullptr;
  obs::Counter* unknown_worker_removals = nullptr;
  obs::Counter* busy_worker_removals = nullptr;
  obs::Counter* orphan_acceptances = nullptr;
  obs::Counter* deferred_tasks = nullptr;

  /// Resolves the five counters from `registry` (no-op when null). Both
  /// the monolithic and sharded engines resolve the SAME names, so the
  /// registry totals match ShardedMarketEngine::rejections()'s merge.
  void Resolve(obs::MetricsRegistry* registry);
};

/// \brief Per-region serving health reported in a sharded PeriodOutcome
/// when failure domains are enabled (DESIGN.md §15). Empty for the
/// monolithic engine and when failure domains are off.
struct RegionHealth {
  enum class State {
    kNormal = 0,   ///< served this close normally
    kQuarantined,  ///< close failed; cached quotes served, tasks deferred
    kRecovered,    ///< re-admitted this period after a quarantine
    kFailed,       ///< recovery attempts exhausted; degraded permanently
  };
  int region = 0;
  State state = State::kNormal;
  /// Recovery attempts consumed so far (0 while normal).
  int attempts = 0;
  /// Period the current quarantine began; -1 when not quarantined.
  int32_t quarantined_since = -1;
};

/// \brief Canonical lowercase name of a RegionHealth::State ("normal",
/// "quarantined", "recovered", "failed"). Used as the detail string of
/// kRegionHealth trace events; stable — the nightly chaos drill parses it.
const char* RegionHealthStateName(RegionHealth::State state);

/// \brief One task-to-worker assignment of a closed period.
struct MatchRecord {
  TaskId task = -1;
  WorkerId worker = -1;
  /// d_r * p_{g(r)} — this match's contribution to the period revenue.
  double revenue = 0.0;
};

/// \brief Everything a period close produces. Vector storage is reused
/// across calls when the caller reuses the outcome object.
struct PeriodOutcome {
  int32_t period = 0;
  /// No tasks were submitted and no worker was available: the strategy was
  /// not consulted and every other field below is empty/zero.
  bool skipped = false;
  /// The posted quote per grid cell (size = grid.num_cells()).
  std::vector<double> prices;
  /// Ids of the tasks whose requesters accepted their quote.
  std::vector<TaskId> accepted;
  /// Max-weight assignment over the accepted tasks (Definition 5).
  std::vector<MatchRecord> matches;
  /// Sum of matches[i].revenue.
  double revenue = 0.0;
  /// MC-estimated E[U(B^t)] of this period's prices (0 when disabled).
  double mc_expected_revenue = 0.0;
  int32_t num_tasks = 0;
  int32_t num_available_workers = 0;
  /// Engine-cumulative rejection/ignore counters as of this close.
  EngineRejectionCounters rejections;
  /// One entry per region, in region order, when sharded failure domains
  /// are enabled; empty otherwise.
  std::vector<RegionHealth> region_health;
};

/// \brief Stateful online market engine; see the file comment for the event
/// model. Not thread-safe: one logical event stream per engine (internal
/// parallelism comes from the lent pool and never changes results).
class MarketEngine {
 public:
  /// Sentinel "no hidden valuation" (NaN compares false against any price,
  /// so an unknown requester without an ObserveAcceptance() bit declines).
  static constexpr double kNoValuation =
      std::numeric_limits<double>::quiet_NaN();

  /// \param grid the city partition; non-owning, must outlive the engine.
  /// \param strategy the pricing strategy driven by ClosePeriod();
  ///        non-owning. The engine lends it `options.pool` immediately
  ///        (clearing any stale pool from a previous owner). Warm it up
  ///        before the first ClosePeriod() — the engine never probes.
  MarketEngine(const GridPartition* grid, PricingStrategy* strategy,
               const EngineOptions& options = {});
  ~MarketEngine();

  MarketEngine(const MarketEngine&) = delete;
  MarketEngine& operator=(const MarketEngine&) = delete;

  /// Submits a task to the open period. `valuation` is the requester's
  /// hidden v_r when the caller knows it (replay / simulation); online
  /// deployments leave it unset and report the decision via
  /// ObserveAcceptance(). Fails if the open period was sealed in bulk.
  /// Task ids must be unique within a period: a duplicate id is rejected
  /// with AlreadyExists and counted (ids may repeat across periods).
  Status SubmitTask(const Task& task, double valuation = kNoValuation);

  /// Seals the NEXT period's task set in bulk (tasks are copied).
  /// `valuations` is either null or an array of end - begin hidden
  /// valuations aligned with [begin, end). With a pool and
  /// pipeline_periods, the task-side snapshot of that period starts
  /// building concurrently with the current ClosePeriod().
  Status StageNextPeriodTasks(const Task* begin, const Task* end,
                              const double* valuations);

  /// Admits a worker into the open period. `worker.period` is ignored
  /// (admission time is now); `worker.duration` periods of membership start
  /// at the open period. Worker ids must be unique across the run.
  Status AddWorker(const Worker& worker);

  /// Removes a worker from the open period onward: an idle worker stops
  /// being offered to the matcher; a busy one finishes its ride but never
  /// returns to the pool (counted in rejections().busy_worker_removals).
  /// NotFound for ids never added (counted). Idempotent for known ids.
  Status RemoveWorker(WorkerId id);

  /// Records an externally observed accept/reject decision for a task of
  /// the open period, overriding any hidden valuation. Always OK — the
  /// task may legitimately be submitted later within the same period;
  /// decisions for ids not in the period at the close are discarded there
  /// and counted in rejections().orphan_acceptances.
  Status ObserveAcceptance(TaskId task, bool accepted);

  /// Closes the open period: builds the snapshot, prices it (PriceRound),
  /// resolves acceptance, reports the bits (ObserveFeedback), assigns
  /// workers by max-weight matching, applies the worker lifecycle, and
  /// advances to the next period. `out`'s storage is reused across calls.
  Status ClosePeriod(PeriodOutcome* out);

  /// Serializes the full resumable engine state — period counter, worker
  /// lifecycle table (idle order, busy heap, retire state), staged task
  /// sets and seal flags, pending acceptance bits, repositioning RNG
  /// position, rejection counters, a configuration fingerprint, and the
  /// strategy's learned state (PricingStrategy::SaveState) — into the
  /// versioned binary checkpoint format (DESIGN.md §12,
  /// docs/checkpoint_format.md). Waits for in-flight snapshot prebuilds
  /// first. Call between events; period boundaries (right after a
  /// ClosePeriod) are the natural place and what the recovery harness
  /// exercises.
  Status SaveCheckpoint(std::string* out);

  /// Rebuilds engine state from SaveCheckpoint bytes. The engine must be
  /// configured identically to the saver (same grid partition, worker
  /// lifecycle, and strategy type/config — fingerprint-checked); the
  /// strategy does NOT need Warmup, its learned state is restored. The
  /// restore is all-or-nothing: corrupt, truncated, or version-mismatched
  /// input fails with an offset-bearing Status and leaves the engine
  /// unchanged. Diagnostics (strategy_seconds, peak bytes) restart at
  /// zero — they describe this process, not the run.
  Status RestoreFromCheckpoint(const std::string& data);

  // --- Sharded-serving hooks (DESIGN.md §13) -----------------------------
  // ShardedMarketEngine's boundary stitch runs right after a close and
  // reconciles matches the per-region matchings could not see. Each hook
  // addresses a worker that is IDLE now — known, not consumed, not retired,
  // not mid-ride — and fails with NotFound / FailedPrecondition otherwise.
  // Single-engine deployments never call them.

  /// Appends the Worker base of every idle worker, in idle (admission)
  /// order — the candidate set the boundary stitch scans after a close.
  void CollectIdleWorkers(std::vector<Worker>* out) const;

  /// Consumes an idle worker in place (a single-use stitch match): the
  /// worker is never offered again but its id stays known, like any
  /// consumed single-use worker.
  Status ConsumeIdleWorker(WorkerId id);

  /// Sends an idle worker on a ride ending at `destination` (a turnaround
  /// stitch match whose destination stays in this engine's own region):
  /// the worker leaves the idle list and returns at period `next_free`
  /// from the destination, exactly as if the period matching had assigned
  /// it.
  Status DispatchIdleWorker(WorkerId id, const Point& destination,
                            int32_t next_free);

  /// Removes an idle worker from this engine entirely, handing back its
  /// current base state and retirement period so another engine can adopt
  /// it (cross-region migration). The id becomes unknown to this engine.
  Status ExtractIdleWorker(WorkerId id, Worker* base, int32_t* retire_at);

  /// Admits a worker mid-lifecycle — the receiving half of a migration.
  /// Unlike AddWorker, the caller supplies next_free/retire_at verbatim
  /// (they are absolute periods from the source engine; both engines close
  /// in lockstep, so periods agree). A worker still riding (next_free >
  /// open period) goes straight onto the busy heap.
  Status AdoptWorker(const Worker& base, int32_t next_free,
                     int32_t retire_at);

  /// Advances the open period by one WITHOUT consulting the strategy,
  /// matching, or repositioning — the catch-up step of a quarantine
  /// restore (DESIGN.md §15): busy workers whose rides ended return to the
  /// idle list, the open period's staged tasks and pending bits are
  /// dropped uncounted (the sharded layer already deferred or accounted
  /// them), and the period counter increments. Deterministic and
  /// RNG-free, so a restored region replayed through Q quiet periods is a
  /// pure function of the checkpoint.
  void AdvanceQuietPeriod();

  /// Cumulative rejected/ignored event counters (also in every
  /// PeriodOutcome).
  const EngineRejectionCounters& rejections() const { return rejections_; }

  /// The open (not yet closed) period index; starts at 0.
  int32_t current_period() const { return period_; }
  /// Workers admitted and neither retired, consumed, nor removed.
  int64_t num_live_workers() const;
  /// Cumulative wall time inside the strategy (PriceRound + acceptance +
  /// ObserveFeedback), the per-strategy cost the benches report.
  double strategy_seconds() const { return strategy_seconds_; }
  /// Peak platform-side footprint: matching graph, BOTH snapshot slots of
  /// the double buffer, and the worker-lifecycle table.
  size_t peak_platform_bytes() const { return peak_platform_bytes_; }
  /// Peak strategy footprint observed across closed periods.
  size_t peak_strategy_bytes() const { return peak_strategy_bytes_; }

 private:
  /// Mutable per-worker lifecycle state; `base` carries the current
  /// location/grid (turnaround moves it).
  struct WorkerRecord {
    Worker base;
    int32_t next_free = 0;   // first period the worker is idle again
    int32_t retire_at = 0;   // first period the worker is gone
    bool consumed = false;   // single-use worker already served a task
  };

  /// Tasks buffered for one snapshot slot's period.
  struct Stage {
    std::vector<Task> tasks;
    std::vector<double> valuations;  // aligned; kNoValuation when unknown
    bool sealed = false;             // bulk-staged, SubmitTask rejected
    /// Ids already staged for this period (duplicate-submission guard);
    /// derived from `tasks`, rebuilt — not serialized — on restore.
    std::unordered_set<TaskId> ids;
    void Clear() {
      tasks.clear();
      valuations.clear();
      sealed = false;
      ids.clear();
    }
  };

  Status CheckTaskGrids(const Task* begin, const Task* end) const;
  void DrainPrebuilds();

  const GridPartition* grid_;
  PricingStrategy* strategy_;
  EngineOptions options_;
  bool pipelined_ = false;
  int32_t period_ = 0;

  // Double-buffered snapshot pair: period t lives in slot t & 1.
  MarketSnapshot slots_[2];
  Stage stages_[2];
  std::unique_ptr<internal::Latch> prebuild_latch_[2];
  // Per-slot footprint as of each slot's last finalize, so the accounting
  // never reads a slot a prebuild job may be writing.
  size_t slot_bytes_[2] = {0, 0};

  // Worker lifecycle (the simulator's former per-period state machine).
  std::vector<WorkerRecord> workers_;
  std::unordered_map<WorkerId, int> worker_index_;
  using BusyEntry = std::pair<int32_t, int>;  // (next_free, worker index)
  std::priority_queue<BusyEntry, std::vector<BusyEntry>,
                      std::greater<BusyEntry>>
      busy_;
  std::vector<int> idle_;
  std::vector<char> matched_flag_;
  Rng reposition_rng_;

  // Acceptance bits reported for the open period.
  std::unordered_map<TaskId, bool> pending_accept_;

  // Cumulative rejected/ignored event counts (checkpointed).
  EngineRejectionCounters rejections_;

  // Round scratch, pooled across periods (PR 1 workspace contract).
  std::vector<double> prices_;
  std::vector<bool> accepted_;
  std::vector<double> weights_;
  std::vector<Worker> period_workers_;
  std::vector<int> pool_of_;  // snapshot worker index -> workers_ index
  GraphBuildWorkspace graph_ws_;
  BipartiteGraph graph_;
  MaxWeightMatchingWorkspace match_ws_;
  std::vector<PricedTask> mc_priced_;
  std::vector<PossibleWorldsWorkspace> mc_workspaces_;

  double strategy_seconds_ = 0.0;
  size_t peak_platform_bytes_ = 0;
  size_t peak_strategy_bytes_ = 0;

  // Observability handles (DESIGN.md §16), resolved once at construction;
  // all null when options.metrics is null so every site is one branch.
  obs::Histogram* m_prebuild_ns_ = nullptr;     // wall-clock
  obs::Histogram* m_price_round_ns_ = nullptr;  // wall-clock
  obs::Histogram* m_matching_ns_ = nullptr;     // wall-clock
  obs::Histogram* m_mc_diag_ns_ = nullptr;      // wall-clock
  obs::Histogram* m_ckpt_save_ns_ = nullptr;    // wall-clock
  obs::Histogram* m_ckpt_restore_ns_ = nullptr;  // wall-clock
  obs::Histogram* m_ckpt_bytes_ = nullptr;      // deterministic
  obs::Counter* m_periods_closed_ = nullptr;    // deterministic
  obs::Counter* m_dead_periods_ = nullptr;      // deterministic
  RejectionCounterHandles m_reject_;
};

}  // namespace maps
