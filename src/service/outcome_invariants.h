// Conservation invariants every PeriodOutcome must satisfy — monolithic or
// sharded, any strategy, any thread count. The gtest suites wrap this in
// tests/invariants.h and assert it after EVERY ClosePeriod; the robustness
// matrix (tools/robustness_matrix.cc) counts violations per scenario and
// fails CI on any.
//
// Checked invariants:
//   * a skipped period is empty: no prices, no accepted ids, no matches,
//     zero revenue;
//   * accepted ids are unique, and every matched task is accepted
//     (accepted ⊇ matched);
//   * no worker is assigned twice, no task matched twice;
//   * revenue equals the fold-left sum of the match revenues BITWISE —
//     both engines accumulate it in exactly that order, so any deviation
//     means the fold was reordered or a match was dropped;
//   * matches never outnumber accepted tasks or available workers;
//   * rejection counters are cumulative, hence monotone between closes;
//   * with the period's task table: accepted ids exist, every match's
//     revenue reconstructs as distance * prices[grid] bitwise, and match
//     revenues are non-negative.

#pragma once

#include <vector>

#include "market/task.h"
#include "service/market_engine.h"
#include "util/status.h"

namespace maps {

/// \brief Optional cross-period / cross-event context for the checks.
struct InvariantContext {
  /// The tasks submitted to the closed period (any order); enables the
  /// per-match revenue reconstruction and accepted-id existence checks.
  const std::vector<Task>* period_tasks = nullptr;
  /// The previous close's counters; enables the monotonicity check.
  const EngineRejectionCounters* previous_rejections = nullptr;
};

/// \brief OK when every invariant holds; otherwise InvalidArgument naming
/// the first violated invariant and the offending ids/values.
Status CheckPeriodOutcomeInvariants(const PeriodOutcome& outcome,
                                    const InvariantContext& context = {});

}  // namespace maps
