#include "service/replay_driver.h"

#include <string>
#include <utility>

#include "geo/point.h"

namespace maps {

namespace {

Status AtLine(int64_t lineno, const Status& st) {
  if (st.ok()) return st;
  return Status(st.code(),
                "line " + std::to_string(lineno) + ": " + st.message());
}

/// The one replay loop, engine-agnostic: MarketEngine and
/// ShardedMarketEngine expose the same event surface.
template <typename Engine>
Result<ReplayStreamSummary> Drive(ReplayEventStream* stream,
                                  const GridPartition& grid, Engine* engine,
                                  const ReplayStreamOptions& options) {
  ReplayStreamSummary summary;
  int64_t skip_closes = options.skip_closes;
  ReplayEvent ev;
  PeriodOutcome outcome;
  while (true) {
    auto more = stream->Next(&ev);
    MAPS_RETURN_NOT_OK(more.status());
    if (!more.ValueOrDie()) break;
    if (skip_closes > 0) {
      if (ev.kind == ReplayEvent::Kind::kClosePeriod) --skip_closes;
      continue;
    }
    Status st = Status::OK();
    switch (ev.kind) {
      case ReplayEvent::Kind::kSubmitTask: {
        Task task = ev.task;
        task.grid = grid.CellOf(task.origin);
        task.period = engine->current_period();
        if (task.distance <= 0.0) {
          task.distance = EuclideanDistance(task.origin, task.destination);
        }
        st = engine->SubmitTask(task, ev.has_valuation
                                          ? ev.valuation
                                          : MarketEngine::kNoValuation);
        break;
      }
      case ReplayEvent::Kind::kAddWorker: {
        Worker worker = ev.worker;
        worker.grid = grid.CellOf(worker.location);
        worker.period = engine->current_period();
        st = engine->AddWorker(worker);
        break;
      }
      case ReplayEvent::Kind::kRemoveWorker:
        st = engine->RemoveWorker(ev.id);
        break;
      case ReplayEvent::Kind::kObserveAcceptance:
        st = engine->ObserveAcceptance(ev.id, ev.accepted);
        break;
      case ReplayEvent::Kind::kClosePeriod: {
        st = engine->ClosePeriod(&outcome);
        if (st.ok()) {
          ++summary.periods_closed;
          summary.total_revenue += outcome.revenue;
          summary.total_accepted +=
              static_cast<int64_t>(outcome.accepted.size());
          summary.total_matched +=
              static_cast<int64_t>(outcome.matches.size());
          if (options.on_close) {
            st = AtLine(stream->line_number(), options.on_close(outcome));
            if (!st.ok()) return st;
          }
        }
        break;
      }
    }
    if (!st.ok()) return AtLine(stream->line_number(), st);
    ++summary.events_applied;
  }
  return summary;
}

}  // namespace

Result<ReplayStreamSummary> ReplayEventsThroughEngine(
    ReplayEventStream* stream, const GridPartition& grid, MarketEngine* engine,
    const ReplayStreamOptions& options) {
  return Drive(stream, grid, engine, options);
}

Result<ReplayStreamSummary> ReplayEventsThroughEngine(
    ReplayEventStream* stream, const GridPartition& grid,
    ShardedMarketEngine* engine, const ReplayStreamOptions& options) {
  return Drive(stream, grid, engine, options);
}

}  // namespace maps
