#include "service/outcome_invariants.h"

#include <cmath>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace maps {

namespace {

Status Violation(const PeriodOutcome& outcome, const std::string& what) {
  std::ostringstream msg;
  msg << "period " << outcome.period << " invariant violated: " << what;
  return Status::InvalidArgument(msg.str());
}

}  // namespace

Status CheckPeriodOutcomeInvariants(const PeriodOutcome& outcome,
                                    const InvariantContext& context) {
  if (outcome.skipped) {
    if (!outcome.prices.empty() || !outcome.accepted.empty() ||
        !outcome.matches.empty() || outcome.revenue != 0.0 ||
        outcome.mc_expected_revenue != 0.0) {
      return Violation(outcome, "skipped period carries market output");
    }
  }

  std::unordered_set<TaskId> accepted(outcome.accepted.begin(),
                                      outcome.accepted.end());
  if (accepted.size() != outcome.accepted.size()) {
    return Violation(outcome, "duplicate accepted task id");
  }
  if (outcome.accepted.size() > static_cast<size_t>(outcome.num_tasks)) {
    std::ostringstream what;
    what << outcome.accepted.size() << " accepted of " << outcome.num_tasks
         << " tasks";
    return Violation(outcome, what.str());
  }

  std::unordered_set<TaskId> matched_tasks;
  std::unordered_set<WorkerId> matched_workers;
  double folded = 0.0;
  for (const MatchRecord& m : outcome.matches) {
    if (!matched_tasks.insert(m.task).second) {
      return Violation(outcome,
                       "task " + std::to_string(m.task) + " matched twice");
    }
    if (!matched_workers.insert(m.worker).second) {
      return Violation(outcome, "worker " + std::to_string(m.worker) +
                                    " assigned twice");
    }
    if (accepted.count(m.task) == 0) {
      return Violation(outcome, "matched task " + std::to_string(m.task) +
                                    " was never accepted");
    }
    if (!(m.revenue >= 0.0)) {  // also catches NaN
      return Violation(outcome, "match of task " + std::to_string(m.task) +
                                    " has negative or NaN revenue");
    }
    folded += m.revenue;
  }
  // Both engines accumulate period revenue as the fold-left sum over the
  // final match list, so this equality is bitwise, not approximate.
  if (folded != outcome.revenue) {
    std::ostringstream what;
    what.precision(17);
    what << "revenue " << outcome.revenue << " != fold of match revenues "
         << folded;
    return Violation(outcome, what.str());
  }
  if (outcome.matches.size() >
      static_cast<size_t>(outcome.num_available_workers)) {
    std::ostringstream what;
    what << outcome.matches.size() << " matches with only "
         << outcome.num_available_workers << " available workers";
    return Violation(outcome, what.str());
  }
  if (std::isnan(outcome.mc_expected_revenue) ||
      outcome.mc_expected_revenue < 0.0) {
    return Violation(outcome, "negative or NaN mc_expected_revenue");
  }

  if (context.previous_rejections != nullptr) {
    const EngineRejectionCounters& prev = *context.previous_rejections;
    const EngineRejectionCounters& cur = outcome.rejections;
    if (cur.duplicate_tasks < prev.duplicate_tasks ||
        cur.unknown_worker_removals < prev.unknown_worker_removals ||
        cur.busy_worker_removals < prev.busy_worker_removals ||
        cur.orphan_acceptances < prev.orphan_acceptances) {
      return Violation(outcome, "rejection counters decreased");
    }
  }

  if (context.period_tasks != nullptr && !outcome.skipped) {
    std::unordered_map<TaskId, const Task*> by_id;
    by_id.reserve(context.period_tasks->size());
    for (const Task& t : *context.period_tasks) by_id.emplace(t.id, &t);
    for (TaskId id : outcome.accepted) {
      if (by_id.count(id) == 0) {
        return Violation(outcome, "accepted task " + std::to_string(id) +
                                      " was never submitted");
      }
    }
    for (const MatchRecord& m : outcome.matches) {
      const auto it = by_id.find(m.task);
      if (it == by_id.end()) {
        return Violation(outcome, "matched task " + std::to_string(m.task) +
                                      " was never submitted");
      }
      const Task& t = *it->second;
      if (t.grid < 0 || static_cast<size_t>(t.grid) >= outcome.prices.size()) {
        return Violation(outcome, "matched task " + std::to_string(m.task) +
                                      " has out-of-range grid");
      }
      // revenue = d_r * p_{g(r)} is a single multiply in both engines, so
      // the reconstruction must agree bitwise.
      const double expect = t.distance * outcome.prices[t.grid];
      if (m.revenue != expect) {
        std::ostringstream what;
        what.precision(17);
        what << "match of task " << m.task << " pays " << m.revenue
             << ", expected distance * price = " << expect;
        return Violation(outcome, what.str());
      }
    }
  }

  return Status::OK();
}

}  // namespace maps
