#include "service/sharded_engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <unordered_set>
#include <utility>

#include "service/checkpoint.h"
#include "util/logging.h"
#include "util/serial.h"

namespace maps {

namespace {

/// Per-region repositioning seed: region 0 keeps the base seed (so a K=1
/// deployment is bit-identical to the monolith even with repositioning on);
/// the others get decorrelated streams derived from it.
uint64_t RegionRepositionSeed(uint64_t base, int k) {
  if (k == 0) return base;
  return base ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(k));
}

// Sharded container sections (magic kShardedCheckpointMagic, version 1).
enum ShardedSectionId : uint32_t {
  kShardedSectionPartition = 1,  // grid + band-layout + lifecycle fingerprint
  kShardedSectionRouting = 2,    // this layer's period/routing/cache state
  kShardedSectionRegions = 3,    // K embedded single-engine checkpoints
};
constexpr uint32_t kNumShardedSections = 3;

}  // namespace

ShardedMarketEngine::ShardedMarketEngine(
    const GridPartition* grid, const RegionPartition* partition,
    std::vector<PricingStrategy*> strategies, const EngineOptions& options)
    : grid_(grid), partition_(partition), options_(options) {
  MAPS_CHECK(grid_ != nullptr);
  MAPS_CHECK(partition_ != nullptr);
  MAPS_CHECK(partition_->rows() == grid_->rows());
  MAPS_CHECK(partition_->cols() == grid_->cols());
  MAPS_CHECK(static_cast<int>(strategies.size()) ==
             partition_->num_regions());
  pool_ = options_.pool;

  const int num_regions = partition_->num_regions();
  regions_.reserve(num_regions);
  for (int k = 0; k < num_regions; ++k) {
    MAPS_CHECK(strategies[k] != nullptr);
    // Region engines run serially inside: the lent pool parallelizes
    // ACROSS regions only, which keeps every region close bit-identical to
    // its serial self and the whole close trivially race-free.
    EngineOptions region_options = options_;
    region_options.pool = nullptr;
    region_options.pipeline_periods = false;
    region_options.lifecycle.reposition_seed = RegionRepositionSeed(
        options_.lifecycle.reposition_seed, k);
    regions_.push_back(std::make_unique<MarketEngine>(grid_, strategies[k],
                                                      region_options));
  }

  owner_of_cell_.resize(grid_->num_cells());
  for (GridId g = 0; g < grid_->num_cells(); ++g) {
    owner_of_cell_[g] = partition_->RegionOfGrid(g);
  }
  region_prices_.assign(num_regions,
                        std::vector<double>(grid_->num_cells(), 0.0));
  region_outcomes_.resize(num_regions);
  region_status_.resize(num_regions);
}

Status ShardedMarketEngine::SubmitTask(const Task& task, double valuation) {
  if (task.grid < 0 || task.grid >= grid_->num_cells()) {
    return Status::InvalidArgument(
        "task " + std::to_string(task.id) + " grid " +
        std::to_string(task.grid) + " outside the partition");
  }
  auto [it, inserted] = task_route_.try_emplace(task.id);
  if (!inserted) {
    ++local_rejections_.duplicate_tasks;
    return Status::AlreadyExists("task id " + std::to_string(task.id) +
                                 " already submitted for period " +
                                 std::to_string(period_));
  }
  const int region = owner_of_cell_[task.grid];
  const Status forwarded = regions_[region]->SubmitTask(task, valuation);
  if (!forwarded.ok()) {
    task_route_.erase(it);
    return forwarded;
  }
  it->second.region = region;
  it->second.seq = next_seq_++;
  it->second.task = task;
  return Status::OK();
}

Status ShardedMarketEngine::AddWorker(const Worker& worker) {
  if (worker_region_.count(worker.id) > 0) {
    return Status::AlreadyExists("worker id " + std::to_string(worker.id) +
                                 " already admitted");
  }
  Worker w = worker;
  if (w.grid < 0) w.grid = grid_->CellOf(w.location);
  if (w.grid < 0 || w.grid >= grid_->num_cells()) {
    return Status::InvalidArgument("worker " + std::to_string(worker.id) +
                                   " outside the partition");
  }
  const int region = owner_of_cell_[w.grid];
  MAPS_RETURN_NOT_OK(regions_[region]->AddWorker(w));
  worker_region_[w.id] = region;
  return Status::OK();
}

Status ShardedMarketEngine::RemoveWorker(WorkerId id) {
  const auto it = worker_region_.find(id);
  if (it == worker_region_.end()) {
    ++local_rejections_.unknown_worker_removals;
    return Status::NotFound("worker id " + std::to_string(id) +
                            " was never added");
  }
  return regions_[it->second]->RemoveWorker(id);
}

Status ShardedMarketEngine::ObserveAcceptance(TaskId task, bool accepted) {
  pending_accept_[task] = accepted;
  return Status::OK();
}

Status ShardedMarketEngine::CloseAllRegions(int32_t t) {
  const int num_regions = static_cast<int>(regions_.size());
  if (pool_ != nullptr && num_regions > 1) {
    internal::Latch latch(num_regions);
    for (int k = 0; k < num_regions; ++k) {
      pool_->Submit([this, k, &latch](int /*worker*/) {
        region_status_[k] = regions_[k]->ClosePeriod(&region_outcomes_[k]);
        latch.Done();
      });
    }
    latch.Wait();
  } else {
    for (int k = 0; k < num_regions; ++k) {
      region_status_[k] = regions_[k]->ClosePeriod(&region_outcomes_[k]);
    }
  }
  for (int k = 0; k < num_regions; ++k) {
    MAPS_RETURN_NOT_OK(region_status_[k]);
    // Regions close in lockstep with this layer; anything else is a bug.
    MAPS_CHECK(region_outcomes_[k].period == t);
  }
  return Status::OK();
}

void ShardedMarketEngine::MergeOutcomes(int32_t t, PeriodOutcome* out) {
  const int num_regions = static_cast<int>(regions_.size());
  out->period = t;
  out->skipped = true;
  out->prices.clear();
  out->accepted.clear();
  out->matches.clear();
  out->revenue = 0.0;
  out->mc_expected_revenue = 0.0;
  out->num_tasks = 0;
  out->num_available_workers = 0;
  merge_matches_.clear();
  merge_accepted_.clear();

  for (const PeriodOutcome& o : region_outcomes_) {
    out->skipped = out->skipped && o.skipped;
    out->num_tasks += o.num_tasks;
    out->num_available_workers += o.num_available_workers;
    out->mc_expected_revenue += o.mc_expected_revenue;
  }
  if (out->skipped) return;

  // Quotes: each region's fresh prices for the cells it owns; a region that
  // skipped this period re-posts its cached last quotes (zeros before its
  // first priced period) — a monolith would have consulted its strategy
  // instead, one of the documented §13 divergences.
  for (int k = 0; k < num_regions; ++k) {
    if (!region_outcomes_[k].skipped) {
      region_prices_[k] = region_outcomes_[k].prices;
    }
  }
  out->prices.resize(owner_of_cell_.size());
  for (size_t g = 0; g < owner_of_cell_.size(); ++g) {
    out->prices[g] = region_prices_[owner_of_cell_[g]][g];
  }

  // Accepted ids and matches, re-ordered by global submission sequence so
  // the merged outcome (including the FP revenue fold, done after the
  // stitch) reads exactly like a monolithic close of the same events.
  for (const PeriodOutcome& o : region_outcomes_) {
    for (TaskId id : o.accepted) {
      const auto it = task_route_.find(id);
      MAPS_CHECK(it != task_route_.end());
      merge_accepted_.push_back({it->second.seq, id});
    }
    for (const MatchRecord& m : o.matches) {
      merge_matches_.push_back({task_route_.find(m.task)->second.seq, m});
    }
  }
  std::sort(merge_accepted_.begin(), merge_accepted_.end());
  out->accepted.reserve(merge_accepted_.size());
  for (const auto& [seq, id] : merge_accepted_) out->accepted.push_back(id);
}

Status ShardedMarketEngine::StitchBoundary(int32_t t, PeriodOutcome* out) {
  if (partition_->num_regions() < 2 || out->skipped) return Status::OK();
  const int num_regions = static_cast<int>(regions_.size());

  // Candidate tasks: accepted but unmatched, origin in a boundary cell.
  // (Within one region such a task has no idle worker in range — the
  // max-weight matching would have augmented otherwise — so only the seams
  // can still hold one.)
  struct CandTask {
    int64_t seq;
    const Task* task;  // into task_route_, stable during the close
    double price;
    int region;
  };
  std::vector<CandTask> cand_tasks;
  std::unordered_set<TaskId> matched_ids;
  matched_ids.reserve(merge_matches_.size());
  for (const auto& [seq, m] : merge_matches_) matched_ids.insert(m.task);
  for (TaskId id : out->accepted) {
    if (matched_ids.count(id) > 0) continue;
    const TaskRoute& route = task_route_.find(id)->second;
    if (!partition_->IsBoundaryGrid(route.task.grid)) continue;
    cand_tasks.push_back({route.seq, &route.task,
                          out->prices[route.task.grid], route.region});
  }
  if (cand_tasks.empty()) return Status::OK();

  // Candidate workers: idle and unmatched after the close, standing in a
  // boundary cell, reach disc crossing into a foreign band.
  struct CandWorker {
    Worker w;
    int home;
  };
  std::vector<CandWorker> cand_workers;
  for (int k = 0; k < num_regions; ++k) {
    idle_scratch_.clear();
    regions_[k]->CollectIdleWorkers(&idle_scratch_);
    for (const Worker& w : idle_scratch_) {
      if (!partition_->IsBoundaryGrid(w.grid)) continue;
      grid_->CellsIntersectingDisc(w.location, w.radius, &cell_scratch_);
      for (GridId c : cell_scratch_) {
        if (owner_of_cell_[c] != k) {
          cand_workers.push_back({w, k});
          break;
        }
      }
    }
  }
  if (cand_workers.empty()) return Status::OK();

  // Eligible cross-region pairs under the matching graph's exact edge
  // predicate (squared distance — bipartite_graph.cc), greedily assigned
  // heaviest-first with submission order breaking weight ties. One
  // augmentation round: a task gets at most one worker and vice versa.
  struct CandPair {
    double weight;
    int ti;
    int wi;
  };
  std::vector<CandPair> pairs;
  for (int ti = 0; ti < static_cast<int>(cand_tasks.size()); ++ti) {
    const CandTask& ct = cand_tasks[ti];
    for (int wi = 0; wi < static_cast<int>(cand_workers.size()); ++wi) {
      const CandWorker& cw = cand_workers[wi];
      if (cw.home == ct.region) continue;
      const double dx = ct.task->origin.x - cw.w.location.x;
      const double dy = ct.task->origin.y - cw.w.location.y;
      if (dx * dx + dy * dy > cw.w.radius * cw.w.radius) continue;
      pairs.push_back({ct.task->distance * ct.price, ti, wi});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [&](const CandPair& a, const CandPair& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              if (cand_tasks[a.ti].seq != cand_tasks[b.ti].seq) {
                return cand_tasks[a.ti].seq < cand_tasks[b.ti].seq;
              }
              return cand_workers[a.wi].w.id < cand_workers[b.wi].w.id;
            });
  std::vector<char> task_done(cand_tasks.size(), 0);
  std::vector<char> worker_done(cand_workers.size(), 0);
  std::vector<std::pair<int, int>> assigned;  // (ti, wi)
  for (const CandPair& p : pairs) {
    if (task_done[p.ti] || worker_done[p.wi]) continue;
    task_done[p.ti] = 1;
    worker_done[p.wi] = 1;
    assigned.push_back({p.ti, p.wi});
  }
  if (assigned.empty()) return Status::OK();

  // Apply in task submission order: emit the stitched matches and drive the
  // worker lifecycle across engines.
  std::sort(assigned.begin(), assigned.end(),
            [&](const std::pair<int, int>& a, const std::pair<int, int>& b) {
              return cand_tasks[a.first].seq < cand_tasks[b.first].seq;
            });
  const bool single_use = options_.lifecycle.single_use;
  const double speed = options_.lifecycle.speed;
  for (const auto& [ti, wi] : assigned) {
    const CandTask& ct = cand_tasks[ti];
    const CandWorker& cw = cand_workers[wi];
    const double revenue = ct.task->distance * ct.price;
    merge_matches_.push_back(
        {ct.seq, MatchRecord{ct.task->id, cw.w.id, revenue}});
    if (single_use) {
      MAPS_RETURN_NOT_OK(regions_[cw.home]->ConsumeIdleWorker(cw.w.id));
      continue;
    }
    const int32_t ride = std::max(
        1, static_cast<int32_t>(std::ceil(ct.task->distance / speed)));
    const int32_t next_free = t + ride;
    const GridId dest_grid = grid_->CellOf(ct.task->destination);
    const int dest_region = owner_of_cell_[dest_grid];
    if (dest_region == cw.home) {
      MAPS_RETURN_NOT_OK(regions_[cw.home]->DispatchIdleWorker(
          cw.w.id, ct.task->destination, next_free));
    } else {
      // The ride ends in a foreign band: ownership migrates with it.
      Worker base;
      int32_t retire_at = 0;
      MAPS_RETURN_NOT_OK(
          regions_[cw.home]->ExtractIdleWorker(cw.w.id, &base, &retire_at));
      base.location = ct.task->destination;
      base.grid = dest_grid;
      MAPS_RETURN_NOT_OK(
          regions_[dest_region]->AdoptWorker(base, next_free, retire_at));
      worker_region_[cw.w.id] = dest_region;
    }
  }
  return Status::OK();
}

Status ShardedMarketEngine::RepatriateIdleWorkers(int32_t t) {
  // Home-until-reconciled (§13): a turnaround worker parked in a cell some
  // other region owns — cross-band ride destinations, repositioning drift —
  // is transferred to the owning region here, after every close, in a fixed
  // region-then-idle order. Until this sweep runs, the admitting region
  // keeps serving it.
  const int num_regions = static_cast<int>(regions_.size());
  for (int k = 0; k < num_regions; ++k) {
    idle_scratch_.clear();
    regions_[k]->CollectIdleWorkers(&idle_scratch_);
    for (const Worker& w : idle_scratch_) {
      const int owner = owner_of_cell_[w.grid];
      if (owner == k) continue;
      Worker base;
      int32_t retire_at = 0;
      MAPS_RETURN_NOT_OK(
          regions_[k]->ExtractIdleWorker(w.id, &base, &retire_at));
      // Already free (next_free <= t): the owner offers it from the next
      // close on, exactly when the old region would have.
      MAPS_RETURN_NOT_OK(regions_[owner]->AdoptWorker(base, t, retire_at));
      worker_region_[w.id] = owner;
    }
  }
  return Status::OK();
}

Status ShardedMarketEngine::ClosePeriod(PeriodOutcome* out) {
  if (out == nullptr) return Status::InvalidArgument("null outcome");
  const int32_t t = period_;

  // Resolve this layer's acceptance buffer: bits for routed tasks go to the
  // submitting region (its close consumes them); bits for tasks nobody
  // submitted are orphans, counted here at the close like the monolith
  // counts its own.
  for (const auto& [task, accepted] : pending_accept_) {
    const auto it = task_route_.find(task);
    if (it == task_route_.end()) {
      ++local_rejections_.orphan_acceptances;
      continue;
    }
    MAPS_RETURN_NOT_OK(
        regions_[it->second.region]->ObserveAcceptance(task, accepted));
  }
  pending_accept_.clear();

  MAPS_RETURN_NOT_OK(CloseAllRegions(t));
  MergeOutcomes(t, out);
  MAPS_RETURN_NOT_OK(StitchBoundary(t, out));

  // Final merged matches + the revenue fold, in global submission order —
  // the same order (and therefore the same FP rounding) as a monolithic
  // close; a sum of per-region sums would not be.
  std::sort(merge_matches_.begin(), merge_matches_.end(),
            [](const std::pair<int64_t, MatchRecord>& a,
               const std::pair<int64_t, MatchRecord>& b) {
              return a.first < b.first;
            });
  for (const auto& [seq, m] : merge_matches_) {
    out->matches.push_back(m);
    out->revenue += m.revenue;
  }
  out->rejections = rejections();

  if (!out->skipped && !options_.lifecycle.single_use) {
    MAPS_RETURN_NOT_OK(RepatriateIdleWorkers(t));
  }

  task_route_.clear();
  ++period_;
  return Status::OK();
}

EngineRejectionCounters ShardedMarketEngine::rejections() const {
  EngineRejectionCounters total = local_rejections_;
  for (const auto& region : regions_) {
    const EngineRejectionCounters& r = region->rejections();
    total.duplicate_tasks += r.duplicate_tasks;
    total.unknown_worker_removals += r.unknown_worker_removals;
    total.busy_worker_removals += r.busy_worker_removals;
    total.orphan_acceptances += r.orphan_acceptances;
  }
  return total;
}

int64_t ShardedMarketEngine::num_live_workers() const {
  int64_t total = 0;
  for (const auto& region : regions_) total += region->num_live_workers();
  return total;
}

double ShardedMarketEngine::strategy_seconds() const {
  double total = 0.0;
  for (const auto& region : regions_) total += region->strategy_seconds();
  return total;
}

size_t ShardedMarketEngine::peak_platform_bytes() const {
  size_t total = 0;
  for (const auto& region : regions_) total += region->peak_platform_bytes();
  return total;
}

size_t ShardedMarketEngine::peak_strategy_bytes() const {
  size_t total = 0;
  for (const auto& region : regions_) total += region->peak_strategy_bytes();
  return total;
}

Status ShardedMarketEngine::SaveCheckpoint(std::string* out) {
  if (out == nullptr) return Status::InvalidArgument("null output string");
  const int num_regions = static_cast<int>(regions_.size());

  StateWriter part;
  part.PutI32(grid_->rows());
  part.PutI32(grid_->cols());
  const Rect& region_rect = grid_->region();
  part.PutDouble(region_rect.min_x);
  part.PutDouble(region_rect.min_y);
  part.PutDouble(region_rect.max_x);
  part.PutDouble(region_rect.max_y);
  part.PutI32(num_regions);
  for (int k = 0; k < num_regions; ++k) {
    part.PutI32(partition_->row_begin(k));
  }
  part.PutBool(options_.lifecycle.single_use);
  part.PutDouble(options_.lifecycle.speed);
  part.PutDouble(options_.lifecycle.reposition_prob);
  part.PutU64(options_.lifecycle.reposition_seed);

  StateWriter routing;
  routing.PutI32(period_);
  routing.PutI64(local_rejections_.duplicate_tasks);
  routing.PutI64(local_rejections_.unknown_worker_removals);
  routing.PutI64(local_rejections_.busy_worker_removals);
  routing.PutI64(local_rejections_.orphan_acceptances);
  routing.PutI64(next_seq_);
  {
    std::vector<std::pair<WorkerId, int>> owners(worker_region_.begin(),
                                                 worker_region_.end());
    std::sort(owners.begin(), owners.end());  // map order is not stable
    routing.PutU64(owners.size());
    for (const auto& [id, k] : owners) {
      routing.PutI64(id);
      routing.PutI32(k);
    }
  }
  {
    std::vector<const TaskRoute*> routes;
    routes.reserve(task_route_.size());
    for (const auto& [id, route] : task_route_) routes.push_back(&route);
    std::sort(routes.begin(), routes.end(),
              [](const TaskRoute* a, const TaskRoute* b) {
                return a->seq < b->seq;
              });
    routing.PutU64(routes.size());
    for (const TaskRoute* route : routes) {
      routing.PutI64(route->seq);
      routing.PutI32(route->region);
      routing.PutI64(route->task.id);
      routing.PutI32(route->task.period);
      routing.PutDouble(route->task.origin.x);
      routing.PutDouble(route->task.origin.y);
      routing.PutDouble(route->task.destination.x);
      routing.PutDouble(route->task.destination.y);
      routing.PutDouble(route->task.distance);
      routing.PutI32(route->task.grid);
    }
  }
  {
    std::vector<std::pair<TaskId, bool>> bits(pending_accept_.begin(),
                                              pending_accept_.end());
    std::sort(bits.begin(), bits.end());
    routing.PutU64(bits.size());
    for (const auto& [task, accepted] : bits) {
      routing.PutI64(task);
      routing.PutBool(accepted);
    }
  }
  for (const std::vector<double>& prices : region_prices_) {
    routing.PutU64(prices.size());
    for (double p : prices) routing.PutDouble(p);
  }

  StateWriter regions;
  regions.PutU32(static_cast<uint32_t>(num_regions));
  for (const auto& region : regions_) {
    std::string blob;
    MAPS_RETURN_NOT_OK(region->SaveCheckpoint(&blob));
    regions.PutString(blob);
  }

  StateWriter blob;
  blob.PutBytes(kShardedCheckpointMagic, sizeof(kShardedCheckpointMagic));
  blob.PutU32(kShardedCheckpointFormatVersion);
  blob.PutU32(kNumShardedSections);
  internal::AppendCheckpointSection(kShardedSectionPartition, part.data(),
                                    &blob);
  internal::AppendCheckpointSection(kShardedSectionRouting, routing.data(),
                                    &blob);
  internal::AppendCheckpointSection(kShardedSectionRegions, regions.data(),
                                    &blob);
  *out = blob.data();
  return Status::OK();
}

Status ShardedMarketEngine::RestoreFromCheckpoint(const std::string& data) {
  const int num_regions = static_cast<int>(regions_.size());
  std::vector<std::string> sections;
  MAPS_RETURN_NOT_OK(internal::ParseCheckpointContainer(
      data, kShardedCheckpointMagic, kShardedCheckpointFormatVersion,
      kNumShardedSections, "MAPS sharded checkpoint", &sections));

  {  // Partition fingerprint: grid, band layout, K, lifecycle.
    StateReader r(sections[kShardedSectionPartition - 1]);
    int32_t rows, cols;
    double min_x, min_y, max_x, max_y;
    MAPS_RETURN_NOT_OK(r.GetI32(&rows, "grid rows"));
    MAPS_RETURN_NOT_OK(r.GetI32(&cols, "grid cols"));
    MAPS_RETURN_NOT_OK(r.GetDouble(&min_x, "region min_x"));
    MAPS_RETURN_NOT_OK(r.GetDouble(&min_y, "region min_y"));
    MAPS_RETURN_NOT_OK(r.GetDouble(&max_x, "region max_x"));
    MAPS_RETURN_NOT_OK(r.GetDouble(&max_y, "region max_y"));
    const Rect& rect = grid_->region();
    if (rows != grid_->rows() || cols != grid_->cols() ||
        min_x != rect.min_x || min_y != rect.min_y || max_x != rect.max_x ||
        max_y != rect.max_y) {
      return Status::FailedPrecondition(
          "checkpoint grid fingerprint (" + std::to_string(rows) + "x" +
          std::to_string(cols) + ") does not match this engine's partition (" +
          std::to_string(grid_->rows()) + "x" + std::to_string(grid_->cols()) +
          ")");
    }
    int32_t k_saved;
    MAPS_RETURN_NOT_OK(r.GetI32(&k_saved, "region count"));
    if (k_saved != num_regions) {
      return Status::FailedPrecondition(
          "checkpoint was saved with " + std::to_string(k_saved) +
          " region(s), this engine shards into " +
          std::to_string(num_regions));
    }
    for (int k = 0; k < num_regions; ++k) {
      int32_t row_begin;
      MAPS_RETURN_NOT_OK(r.GetI32(&row_begin, "region row_begin"));
      if (row_begin != partition_->row_begin(k)) {
        return Status::FailedPrecondition(
            "checkpoint region " + std::to_string(k) + " starts at row " +
            std::to_string(row_begin) + ", this engine's partition at row " +
            std::to_string(partition_->row_begin(k)));
      }
    }
    bool single_use;
    double speed, reposition_prob;
    uint64_t reposition_seed;
    MAPS_RETURN_NOT_OK(r.GetBool(&single_use, "lifecycle single_use"));
    MAPS_RETURN_NOT_OK(r.GetDouble(&speed, "lifecycle speed"));
    MAPS_RETURN_NOT_OK(
        r.GetDouble(&reposition_prob, "lifecycle reposition_prob"));
    MAPS_RETURN_NOT_OK(
        r.GetU64(&reposition_seed, "lifecycle reposition_seed"));
    const WorkerLifecycle& lc = options_.lifecycle;
    if (single_use != lc.single_use || speed != lc.speed ||
        reposition_prob != lc.reposition_prob ||
        reposition_seed != lc.reposition_seed) {
      return Status::FailedPrecondition(
          "checkpoint worker-lifecycle fingerprint does not match this "
          "engine's options");
    }
    MAPS_RETURN_NOT_OK(r.ExpectEnd("sharded partition section"));
  }

  int32_t period;
  EngineRejectionCounters rej;
  int64_t next_seq;
  std::unordered_map<WorkerId, int> worker_region;
  std::unordered_map<TaskId, TaskRoute> task_route;
  std::unordered_map<TaskId, bool> pending;
  std::vector<std::vector<double>> region_prices;
  {  // Routing state.
    StateReader r(sections[kShardedSectionRouting - 1]);
    MAPS_RETURN_NOT_OK(r.GetI32(&period, "period counter"));
    MAPS_RETURN_NOT_OK(r.GetI64(&rej.duplicate_tasks, "duplicate_tasks"));
    MAPS_RETURN_NOT_OK(
        r.GetI64(&rej.unknown_worker_removals, "unknown_worker_removals"));
    MAPS_RETURN_NOT_OK(
        r.GetI64(&rej.busy_worker_removals, "busy_worker_removals"));
    MAPS_RETURN_NOT_OK(
        r.GetI64(&rej.orphan_acceptances, "orphan_acceptances"));
    MAPS_RETURN_NOT_OK(r.GetI64(&next_seq, "next submission seq"));
    if (period < 0 || rej.duplicate_tasks < 0 ||
        rej.unknown_worker_removals < 0 || rej.busy_worker_removals < 0 ||
        rej.orphan_acceptances < 0 || next_seq < 0) {
      return Status::InvalidArgument(
          "sharded routing section has negative counters");
    }
    uint64_t n;
    MAPS_RETURN_NOT_OK(r.GetU64(&n, "worker owner count"));
    MAPS_RETURN_NOT_OK(CheckDecodedCount(r, n, 12, "worker owners"));
    worker_region.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n; ++i) {
      WorkerId id;
      int32_t k;
      MAPS_RETURN_NOT_OK(r.GetI64(&id, "worker owner id"));
      MAPS_RETURN_NOT_OK(r.GetI32(&k, "worker owner region"));
      if (k < 0 || k >= num_regions) {
        return Status::InvalidArgument("worker " + std::to_string(id) +
                                       " owned by out-of-range region " +
                                       std::to_string(k));
      }
      if (!worker_region.emplace(id, k).second) {
        return Status::InvalidArgument("worker id " + std::to_string(id) +
                                       " appears twice in the owner table");
      }
    }
    MAPS_RETURN_NOT_OK(r.GetU64(&n, "task route count"));
    MAPS_RETURN_NOT_OK(CheckDecodedCount(r, n, 68, "task routes"));
    task_route.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n; ++i) {
      TaskRoute route;
      MAPS_RETURN_NOT_OK(r.GetI64(&route.seq, "route seq"));
      MAPS_RETURN_NOT_OK(r.GetI32(&route.region, "route region"));
      MAPS_RETURN_NOT_OK(r.GetI64(&route.task.id, "route task id"));
      MAPS_RETURN_NOT_OK(r.GetI32(&route.task.period, "route task period"));
      MAPS_RETURN_NOT_OK(r.GetDouble(&route.task.origin.x, "route origin x"));
      MAPS_RETURN_NOT_OK(r.GetDouble(&route.task.origin.y, "route origin y"));
      MAPS_RETURN_NOT_OK(
          r.GetDouble(&route.task.destination.x, "route destination x"));
      MAPS_RETURN_NOT_OK(
          r.GetDouble(&route.task.destination.y, "route destination y"));
      MAPS_RETURN_NOT_OK(r.GetDouble(&route.task.distance, "route distance"));
      MAPS_RETURN_NOT_OK(r.GetI32(&route.task.grid, "route task grid"));
      if (route.region < 0 || route.region >= num_regions) {
        return Status::InvalidArgument(
            "task " + std::to_string(route.task.id) +
            " routed to out-of-range region " + std::to_string(route.region));
      }
      if (route.task.grid < 0 || route.task.grid >= grid_->num_cells()) {
        return Status::InvalidArgument(
            "routed task " + std::to_string(route.task.id) + " has grid " +
            std::to_string(route.task.grid) + " outside the partition");
      }
      if (route.seq < 0 || route.seq >= next_seq) {
        return Status::InvalidArgument(
            "routed task " + std::to_string(route.task.id) +
            " has sequence " + std::to_string(route.seq) +
            " outside [0, " + std::to_string(next_seq) + ")");
      }
      const TaskId id = route.task.id;
      if (!task_route.emplace(id, std::move(route)).second) {
        return Status::InvalidArgument("task id " + std::to_string(id) +
                                       " appears twice in the route table");
      }
    }
    MAPS_RETURN_NOT_OK(r.GetU64(&n, "pending bit count"));
    MAPS_RETURN_NOT_OK(CheckDecodedCount(r, n, 9, "pending bits"));
    pending.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n; ++i) {
      TaskId task;
      bool accepted;
      MAPS_RETURN_NOT_OK(r.GetI64(&task, "pending task id"));
      MAPS_RETURN_NOT_OK(r.GetBool(&accepted, "pending accepted bit"));
      if (!pending.emplace(task, accepted).second) {
        return Status::InvalidArgument("pending bit for task " +
                                       std::to_string(task) +
                                       " appears twice");
      }
    }
    region_prices.resize(num_regions);
    for (int k = 0; k < num_regions; ++k) {
      MAPS_RETURN_NOT_OK(r.GetU64(&n, "cached price count"));
      if (n != static_cast<uint64_t>(grid_->num_cells())) {
        return Status::InvalidArgument(
            "region " + std::to_string(k) + " caches " + std::to_string(n) +
            " price(s), the grid has " + std::to_string(grid_->num_cells()) +
            " cell(s)");
      }
      region_prices[k].resize(static_cast<size_t>(n));
      for (double& p : region_prices[k]) {
        MAPS_RETURN_NOT_OK(r.GetDouble(&p, "cached price"));
      }
    }
    MAPS_RETURN_NOT_OK(r.ExpectEnd("sharded routing section"));
  }

  std::vector<std::string> region_blobs(num_regions);
  {  // Embedded per-region checkpoints.
    StateReader r(sections[kShardedSectionRegions - 1]);
    uint32_t count;
    MAPS_RETURN_NOT_OK(r.GetU32(&count, "embedded region count"));
    if (count != static_cast<uint32_t>(num_regions)) {
      return Status::InvalidArgument(
          "regions section embeds " + std::to_string(count) +
          " checkpoint(s), expected " + std::to_string(num_regions));
    }
    for (int k = 0; k < num_regions; ++k) {
      MAPS_RETURN_NOT_OK(r.GetString(&region_blobs[k], "region checkpoint"));
    }
    MAPS_RETURN_NOT_OK(r.ExpectEnd("sharded regions section"));
    // Structural pre-validation of every embedded blob (magic, version,
    // section CRCs) before ANY region engine is mutated: corruption — the
    // common failure — can then never leave the deployment half-restored.
    // A semantic mismatch inside region k's restore (below) still can;
    // same caveat class as the monolith's strategy-section note (§12).
    for (int k = 0; k < num_regions; ++k) {
      std::vector<std::string> probe;
      const Status s = internal::ParseCheckpointContainer(
          region_blobs[k], kCheckpointMagic, kCheckpointFormatVersion,
          kCheckpointNumSections, "MAPS checkpoint", &probe);
      if (!s.ok()) {
        return Status::InvalidArgument("embedded checkpoint of region " +
                                       std::to_string(k) + ": " +
                                       s.message());
      }
    }
  }

  for (int k = 0; k < num_regions; ++k) {
    const Status s = regions_[k]->RestoreFromCheckpoint(region_blobs[k]);
    if (!s.ok()) {
      return Status::InvalidArgument("restoring region " + std::to_string(k) +
                                     ": " + s.message());
    }
    if (regions_[k]->current_period() != period) {
      return Status::InvalidArgument(
          "region " + std::to_string(k) + " restored at period " +
          std::to_string(regions_[k]->current_period()) +
          ", the sharded layer at " + std::to_string(period));
    }
  }

  // Commit this layer. Nothing below can fail.
  period_ = period;
  next_seq_ = next_seq;
  local_rejections_ = rej;
  worker_region_ = std::move(worker_region);
  task_route_ = std::move(task_route);
  pending_accept_ = std::move(pending);
  region_prices_ = std::move(region_prices);
  return Status::OK();
}

}  // namespace maps
