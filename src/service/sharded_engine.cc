#include "service/sharded_engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <unordered_set>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/checkpoint.h"
#include "util/fault_injector.h"
#include "util/logging.h"
#include "util/serial.h"

namespace maps {

namespace {

/// Per-region repositioning seed: region 0 keeps the base seed (so a K=1
/// deployment is bit-identical to the monolith even with repositioning on);
/// the others get decorrelated streams derived from it.
uint64_t RegionRepositionSeed(uint64_t base, int k) {
  if (k == 0) return base;
  return base ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(k));
}

// Sharded container sections (magic kShardedCheckpointMagic). Version 2
// added the per-route hidden valuation and the deferred_tasks counter to
// the routing section (failure domains, DESIGN.md §15).
enum ShardedSectionId : uint32_t {
  kShardedSectionPartition = 1,  // grid + band-layout + lifecycle fingerprint
  kShardedSectionRouting = 2,    // this layer's period/routing/cache state
  kShardedSectionRegions = 3,    // K embedded single-engine checkpoints
};
constexpr uint32_t kNumShardedSections = 3;

}  // namespace

ShardedMarketEngine::ShardedMarketEngine(
    const GridPartition* grid, const RegionPartition* partition,
    std::vector<PricingStrategy*> strategies, const EngineOptions& options)
    : grid_(grid), partition_(partition), options_(options) {
  MAPS_CHECK(grid_ != nullptr);
  MAPS_CHECK(partition_ != nullptr);
  MAPS_CHECK(partition_->rows() == grid_->rows());
  MAPS_CHECK(partition_->cols() == grid_->cols());
  MAPS_CHECK(static_cast<int>(strategies.size()) ==
             partition_->num_regions());
  pool_ = options_.pool;

  const int num_regions = partition_->num_regions();
  regions_.reserve(num_regions);
  for (int k = 0; k < num_regions; ++k) {
    MAPS_CHECK(strategies[k] != nullptr);
    // Region engines run serially inside: the lent pool parallelizes
    // ACROSS regions only, which keeps every region close bit-identical to
    // its serial self and the whole close trivially race-free.
    EngineOptions region_options = options_;
    region_options.pool = nullptr;
    region_options.pipeline_periods = false;
    // Regions inherit the registry (order-independent counter sums) but
    // never the trace: concurrent region closes would interleave seq ids.
    region_options.trace = nullptr;
    region_options.lifecycle.reposition_seed = RegionRepositionSeed(
        options_.lifecycle.reposition_seed, k);
    regions_.push_back(std::make_unique<MarketEngine>(grid_, strategies[k],
                                                      region_options));
  }

  owner_of_cell_.resize(grid_->num_cells());
  for (GridId g = 0; g < grid_->num_cells(); ++g) {
    owner_of_cell_[g] = partition_->RegionOfGrid(g);
  }
  region_prices_.assign(num_regions,
                        std::vector<double>(grid_->num_cells(), 0.0));
  domains_.resize(num_regions);
  deferred_.resize(num_regions);
  region_outcomes_.resize(num_regions);
  region_status_.resize(num_regions);
  region_active_.assign(num_regions, 1);

  if (options_.metrics != nullptr) {
    obs::MetricsRegistry* m = options_.metrics;
    const auto det = obs::Determinism::kDeterministic;
    const auto wall = obs::Determinism::kWallClock;
    m_region_close_ns_ = m->GetHistogram("sharded.region_close_ns", wall);
    m_merge_ns_ = m->GetHistogram("sharded.merge_ns", wall);
    m_stitch_ns_ = m->GetHistogram("sharded.stitch_ns", wall);
    m_repatriate_ns_ = m->GetHistogram("sharded.repatriate_ns", wall);
    m_quarantines_ = m->GetCounter("sharded.fd.quarantines", det);
    m_rewinds_ = m->GetCounter("sharded.fd.rewinds", det);
    m_journal_replays_ = m->GetCounter("sharded.fd.journal_events_replayed",
                                       det);
    m_backoff_retries_ = m->GetCounter("sharded.fd.backoff_retries", det);
    m_permanent_failures_ = m->GetCounter("sharded.fd.permanent_failures",
                                          det);
    m_stitch_matches_ = m->GetCounter("sharded.stitch_matches", det);
    m_repatriations_ = m->GetCounter("sharded.repatriations", det);
    m_reject_.Resolve(m);
  }
}

Status ShardedMarketEngine::SubmitTask(const Task& task, double valuation) {
  if (task.grid < 0 || task.grid >= grid_->num_cells()) {
    return Status::InvalidArgument(
        "task " + std::to_string(task.id) + " grid " +
        std::to_string(task.grid) + " outside the partition");
  }
  MAPS_RETURN_NOT_OK(EnsureBaseline());
  auto [it, inserted] = task_route_.try_emplace(task.id);
  if (!inserted) {
    obs::BumpMirrored(&local_rejections_.duplicate_tasks,
                      m_reject_.duplicate_tasks);
    return Status::AlreadyExists("task id " + std::to_string(task.id) +
                                 " already submitted for period " +
                                 std::to_string(period_));
  }
  const int region = owner_of_cell_[task.grid];
  // A quarantined region's forwarding is paused: the task is routed (so
  // duplicates and ordering behave normally) and joins the region's close
  // attempt or deferral queue at this period's close.
  if (!failure_domains_enabled() ||
      domains_[region].state == RegionHealth::State::kNormal) {
    const Status forwarded = regions_[region]->SubmitTask(task, valuation);
    if (!forwarded.ok()) {
      task_route_.erase(it);
      return forwarded;
    }
  }
  it->second.region = region;
  it->second.seq = next_seq_++;
  it->second.task = task;
  it->second.valuation = valuation;
  return Status::OK();
}

Status ShardedMarketEngine::AddWorker(const Worker& worker) {
  if (worker_region_.count(worker.id) > 0) {
    return Status::AlreadyExists("worker id " + std::to_string(worker.id) +
                                 " already admitted");
  }
  Worker w = worker;
  if (w.grid < 0) w.grid = grid_->CellOf(w.location);
  if (w.grid < 0 || w.grid >= grid_->num_cells()) {
    return Status::InvalidArgument("worker " + std::to_string(worker.id) +
                                   " outside the partition");
  }
  MAPS_RETURN_NOT_OK(EnsureBaseline());
  const int region = owner_of_cell_[w.grid];
  MAPS_RETURN_NOT_OK(regions_[region]->AddWorker(w));
  worker_region_[w.id] = region;
  if (failure_domains_enabled()) {
    WorkerEvent ev;
    ev.type = WorkerEvent::Type::kAdd;
    ev.period = regions_[region]->current_period();
    ev.worker = w;
    JournalEvent(region, std::move(ev));
  }
  return Status::OK();
}

Status ShardedMarketEngine::RemoveWorker(WorkerId id) {
  const auto it = worker_region_.find(id);
  if (it == worker_region_.end()) {
    obs::BumpMirrored(&local_rejections_.unknown_worker_removals,
                      m_reject_.unknown_worker_removals);
    return Status::NotFound("worker id " + std::to_string(id) +
                            " was never added");
  }
  MAPS_RETURN_NOT_OK(EnsureBaseline());
  const int region = it->second;
  MAPS_RETURN_NOT_OK(regions_[region]->RemoveWorker(id));
  if (failure_domains_enabled()) {
    WorkerEvent ev;
    ev.type = WorkerEvent::Type::kRemove;
    ev.period = regions_[region]->current_period();
    ev.id = id;
    JournalEvent(region, std::move(ev));
  }
  return Status::OK();
}

Status ShardedMarketEngine::ObserveAcceptance(TaskId task, bool accepted) {
  pending_accept_[task] = accepted;
  return Status::OK();
}

// --- Failure-domain machinery (DESIGN.md §15) ----------------------------

Status ShardedMarketEngine::EnsureBaseline() {
  if (!failure_domains_enabled() || baseline_captured_) return Status::OK();
  // One capture of every region before the first mutating event — after
  // the caller's strategy warm-up, before any traffic — so a quarantine
  // always has a restore point.
  for (int k = 0; k < static_cast<int>(regions_.size()); ++k) {
    MAPS_RETURN_NOT_OK(CaptureRegionBaseline(k));
  }
  baseline_captured_ = true;
  return Status::OK();
}

Status ShardedMarketEngine::CaptureRegionBaseline(int k) {
  RegionDomain& dom = domains_[k];
  MAPS_RETURN_NOT_OK(regions_[k]->SaveCheckpoint(&dom.last_good));
  dom.journal.clear();
  return Status::OK();
}

void ShardedMarketEngine::JournalEvent(int k, WorkerEvent event) {
  domains_[k].journal.push_back(std::move(event));
}

Status ShardedMarketEngine::RewindRegion(int k, int32_t t) {
  RegionDomain& dom = domains_[k];
  MAPS_CHECK(!dom.last_good.empty());  // EnsureBaseline preceded all traffic
  MarketEngine* region = regions_[k].get();
  {
    const Status s = region->RestoreFromCheckpoint(dom.last_good);
    if (!s.ok()) {
      return Status::Internal("quarantine restore of region " +
                              std::to_string(k) + ": " + s.message());
    }
  }
  if (m_rewinds_ != nullptr) m_rewinds_->Increment();
  // Replay the worker events the restore rewound, quiet-advancing between
  // their periods. Matches, stitch dispatches, and repositioning are NOT
  // replayed — the quarantined region rewinds to a conservative
  // "everyone idle at home" view of those workers (divergence list, §15).
  if (m_journal_replays_ != nullptr) {
    m_journal_replays_->Add(static_cast<int64_t>(dom.journal.size()));
  }
  for (const WorkerEvent& ev : dom.journal) {
    while (region->current_period() < ev.period) region->AdvanceQuietPeriod();
    Status s;
    switch (ev.type) {
      case WorkerEvent::Type::kAdd:
        s = region->AddWorker(ev.worker);
        break;
      case WorkerEvent::Type::kRemove:
        s = region->RemoveWorker(ev.id);
        break;
      case WorkerEvent::Type::kAdopt:
        s = region->AdoptWorker(ev.worker, ev.next_free, ev.retire_at);
        break;
      case WorkerEvent::Type::kExtract: {
        Worker base;
        int32_t retire_at = 0;
        s = region->ExtractIdleWorker(ev.id, &base, &retire_at);
        break;
      }
    }
    if (!s.ok()) {
      return Status::Internal("journal replay in region " +
                              std::to_string(k) + ": " + s.message());
    }
  }
  // Catch up to the sharded layer: the region sits out period t and opens
  // t + 1 in lockstep with everyone else.
  while (region->current_period() <= t) region->AdvanceQuietPeriod();
  return Status::OK();
}

Status ShardedMarketEngine::QuarantineRegion(int k, int32_t t) {
  RegionDomain& dom = domains_[k];
  region_active_[k] = 0;
  if (dom.state == RegionHealth::State::kNormal) {
    dom.state = RegionHealth::State::kQuarantined;
    dom.attempts = 1;
    dom.backoff = 1;
    dom.next_retry = t + 1;
    dom.quarantined_since = t;
    if (m_quarantines_ != nullptr) m_quarantines_->Increment();
  } else {
    // A recovery attempt just failed: deterministic exponential backoff in
    // periods (attempt counts, never wall clock), then permanent
    // degradation once the budget is spent.
    ++dom.attempts;
    if (dom.attempts > options_.failure_domains.max_recovery_attempts) {
      dom.state = RegionHealth::State::kFailed;
      dom.next_retry = -1;
      if (m_permanent_failures_ != nullptr) m_permanent_failures_->Increment();
    } else {
      dom.backoff *= 2;
      dom.next_retry = t + dom.backoff;
      if (m_backoff_retries_ != nullptr) m_backoff_retries_->Increment();
    }
  }
  return RewindRegion(k, t);
}

void ShardedMarketEngine::DeferRegionTasks(int k) {
  // Sweep the open routes of an inactive region into its deferral queue in
  // submission order; acceptance bits ride along. Existing queue entries
  // carry strictly smaller seqs, so the queue stays seq-sorted.
  std::vector<std::pair<int64_t, TaskId>> order;
  for (const auto& [id, route] : task_route_) {
    if (route.region == k) order.push_back({route.seq, id});
  }
  std::sort(order.begin(), order.end());
  for (const auto& [seq, id] : order) {
    const TaskRoute& route = task_route_.find(id)->second;
    DeferredTask d;
    d.seq = route.seq;
    d.task = route.task;
    d.valuation = route.valuation;
    const auto bit = pending_accept_.find(id);
    if (bit != pending_accept_.end()) {
      d.has_accept = true;
      d.accept = bit->second;
    }
    deferred_[k].push_back(std::move(d));
    task_route_.erase(id);
    obs::BumpMirrored(&local_rejections_.deferred_tasks,
                      m_reject_.deferred_tasks);
  }
}

Status ShardedMarketEngine::ResubmitDeferred(int k) {
  // Queue entries rejoin the route table under their ORIGINAL seqs; a
  // collision with a task id submitted fresh this period is a duplicate
  // (counted, deferred copy dropped) exactly like a same-period resubmit.
  for (const DeferredTask& d : deferred_[k]) {
    auto [it, inserted] = task_route_.try_emplace(d.task.id);
    if (!inserted) {
      obs::BumpMirrored(&local_rejections_.duplicate_tasks,
                        m_reject_.duplicate_tasks);
      continue;
    }
    it->second.region = k;
    it->second.seq = d.seq;
    it->second.task = d.task;
    it->second.valuation = d.valuation;
    // An explicit bit observed THIS period wins over the deferred one.
    if (d.has_accept) pending_accept_.try_emplace(d.task.id, d.accept);
  }
  deferred_[k].clear();
  // Nothing routed to this region was forwarded while it was quarantined;
  // forward everything now, in submission order so the region's stage
  // reads like an uninterrupted submission stream.
  std::vector<std::pair<int64_t, TaskId>> order;
  for (const auto& [id, route] : task_route_) {
    if (route.region == k) order.push_back({route.seq, id});
  }
  std::sort(order.begin(), order.end());
  for (const auto& [seq, id] : order) {
    const TaskRoute& route = task_route_.find(id)->second;
    MAPS_RETURN_NOT_OK(regions_[k]->SubmitTask(route.task, route.valuation));
  }
  return Status::OK();
}

Status ShardedMarketEngine::CloseAllRegions(int32_t t) {
  const int num_regions = static_cast<int>(regions_.size());
  const bool fd = failure_domains_enabled();

  // Injected fault decisions are made serially BEFORE the dispatch: the
  // injector is not thread-safe and firing order must be deterministic.
  std::vector<char> inject_fail(num_regions, 0);
  std::vector<char> inject_stall(num_regions, 0);
  FaultInjector& injector = FaultInjector::Global();
  if (injector.armed()) {
    for (int k = 0; k < num_regions; ++k) {
      if (!region_active_[k]) continue;
      if (injector.ShouldFire(FaultRule::Kind::kRegionCloseFail, k, t)) {
        inject_fail[k] = 1;
      } else if (injector.ShouldFire(FaultRule::Kind::kRegionCloseStall, k,
                                     t)) {
        inject_stall[k] = 1;
      }
    }
  }

  // A failed close never runs (the fault preempts the dispatch); a stalled
  // close RUNS — mutating the region — and its result is discarded past
  // the deadline, so the quarantine rewind has real work to undo.
  auto close_one = [&](int k) {
    if (inject_fail[k]) {
      region_status_[k] =
          Status::Internal("injected close failure at region " +
                           std::to_string(k) + " period " + std::to_string(t));
      return;
    }
    {
      // Wall-clock only; Histogram::Record is atomic, so concurrent region
      // closes may record freely.
      obs::ScopedTimer close_timer(m_region_close_ns_);
      region_status_[k] = regions_[k]->ClosePeriod(&region_outcomes_[k]);
    }
    if (inject_stall[k] && region_status_[k].ok()) {
      region_status_[k] =
          Status::Internal("injected close stall (deadline exceeded) at "
                           "region " +
                           std::to_string(k) + " period " + std::to_string(t));
    }
  };

  int num_active = 0;
  for (int k = 0; k < num_regions; ++k) num_active += region_active_[k];
  if (pool_ != nullptr && num_active > 1) {
    internal::Latch latch(num_active);
    for (int k = 0; k < num_regions; ++k) {
      if (!region_active_[k]) continue;
      pool_->Submit([&close_one, k, &latch](int /*worker*/) {
        close_one(k);
        latch.Done();
      });
    }
    latch.Wait();
  } else {
    for (int k = 0; k < num_regions; ++k) {
      if (region_active_[k]) close_one(k);
    }
  }

  // Evaluate serially in region order (quarantine processing mutates the
  // injector-independent domain state deterministically).
  for (int k = 0; k < num_regions; ++k) {
    if (!region_active_[k]) {
      // Sitting out this close: advance quietly to stay in lockstep.
      regions_[k]->AdvanceQuietPeriod();
      continue;
    }
    if (region_status_[k].ok()) {
      // Regions close in lockstep with this layer; anything else is a bug.
      MAPS_CHECK(region_outcomes_[k].period == t);
      if (fd && domains_[k].state == RegionHealth::State::kQuarantined) {
        domains_[k].state = RegionHealth::State::kRecovered;
      }
      continue;
    }
    if (!fd) return region_status_[k];  // pre-§15: one region fails the close
    MAPS_RETURN_NOT_OK(QuarantineRegion(k, t));
  }
  return Status::OK();
}

void ShardedMarketEngine::MergeOutcomes(int32_t t, PeriodOutcome* out) {
  const int num_regions = static_cast<int>(regions_.size());
  out->period = t;
  out->skipped = true;
  out->prices.clear();
  out->accepted.clear();
  out->matches.clear();
  out->revenue = 0.0;
  out->mc_expected_revenue = 0.0;
  out->num_tasks = 0;
  out->num_available_workers = 0;
  merge_matches_.clear();
  merge_accepted_.clear();

  // Inactive (quarantined/failed) regions contributed no outcome this
  // period: their open tasks were deferred and their cells serve cached
  // quotes below, so every aggregation here is over ACTIVE regions only.
  for (int k = 0; k < num_regions; ++k) {
    if (!region_active_[k]) continue;
    const PeriodOutcome& o = region_outcomes_[k];
    out->skipped = out->skipped && o.skipped;
    out->num_tasks += o.num_tasks;
    out->num_available_workers += o.num_available_workers;
    out->mc_expected_revenue += o.mc_expected_revenue;
  }
  if (out->skipped) return;

  // Quotes: each region's fresh prices for the cells it owns; a region that
  // skipped this period — or is quarantined — re-posts its cached last
  // quotes (zeros before its first priced period) — a monolith would have
  // consulted its strategy instead, one of the documented §13 divergences.
  for (int k = 0; k < num_regions; ++k) {
    if (region_active_[k] && !region_outcomes_[k].skipped) {
      region_prices_[k] = region_outcomes_[k].prices;
    }
  }
  out->prices.resize(owner_of_cell_.size());
  for (size_t g = 0; g < owner_of_cell_.size(); ++g) {
    out->prices[g] = region_prices_[owner_of_cell_[g]][g];
  }

  // Accepted ids and matches, re-ordered by global submission sequence so
  // the merged outcome (including the FP revenue fold, done after the
  // stitch) reads exactly like a monolithic close of the same events.
  for (int k = 0; k < num_regions; ++k) {
    if (!region_active_[k]) continue;
    const PeriodOutcome& o = region_outcomes_[k];
    for (TaskId id : o.accepted) {
      const auto it = task_route_.find(id);
      MAPS_CHECK(it != task_route_.end());
      merge_accepted_.push_back({it->second.seq, id});
    }
    for (const MatchRecord& m : o.matches) {
      merge_matches_.push_back({task_route_.find(m.task)->second.seq, m});
    }
  }
  std::sort(merge_accepted_.begin(), merge_accepted_.end());
  out->accepted.reserve(merge_accepted_.size());
  for (const auto& [seq, id] : merge_accepted_) out->accepted.push_back(id);
}

Status ShardedMarketEngine::StitchBoundary(int32_t t, PeriodOutcome* out) {
  if (partition_->num_regions() < 2 || out->skipped) return Status::OK();
  const int num_regions = static_cast<int>(regions_.size());

  // Candidate tasks: accepted but unmatched, origin in a boundary cell.
  // (Within one region such a task has no idle worker in range — the
  // max-weight matching would have augmented otherwise — so only the seams
  // can still hold one.)
  struct CandTask {
    int64_t seq;
    const Task* task;  // into task_route_, stable during the close
    double price;
    int region;
  };
  std::vector<CandTask> cand_tasks;
  std::unordered_set<TaskId> matched_ids;
  matched_ids.reserve(merge_matches_.size());
  for (const auto& [seq, m] : merge_matches_) matched_ids.insert(m.task);
  for (TaskId id : out->accepted) {
    if (matched_ids.count(id) > 0) continue;
    const TaskRoute& route = task_route_.find(id)->second;
    if (!partition_->IsBoundaryGrid(route.task.grid)) continue;
    cand_tasks.push_back({route.seq, &route.task,
                          out->prices[route.task.grid], route.region});
  }
  if (cand_tasks.empty()) return Status::OK();

  // Candidate workers: idle and unmatched after the close, standing in a
  // boundary cell, reach disc crossing into a foreign band.
  struct CandWorker {
    Worker w;
    int home;
  };
  std::vector<CandWorker> cand_workers;
  for (int k = 0; k < num_regions; ++k) {
    // A quarantined region's serving is frozen: its idle workers are not
    // offered to the stitch (and its tasks were deferred, so none are
    // candidates above).
    if (!region_active_[k]) continue;
    idle_scratch_.clear();
    regions_[k]->CollectIdleWorkers(&idle_scratch_);
    for (const Worker& w : idle_scratch_) {
      if (!partition_->IsBoundaryGrid(w.grid)) continue;
      grid_->CellsIntersectingDisc(w.location, w.radius, &cell_scratch_);
      for (GridId c : cell_scratch_) {
        if (owner_of_cell_[c] != k) {
          cand_workers.push_back({w, k});
          break;
        }
      }
    }
  }
  if (cand_workers.empty()) return Status::OK();

  // Eligible cross-region pairs under the matching graph's exact edge
  // predicate (squared distance — bipartite_graph.cc), greedily assigned
  // heaviest-first with submission order breaking weight ties. One
  // augmentation round: a task gets at most one worker and vice versa.
  struct CandPair {
    double weight;
    int ti;
    int wi;
  };
  std::vector<CandPair> pairs;
  for (int ti = 0; ti < static_cast<int>(cand_tasks.size()); ++ti) {
    const CandTask& ct = cand_tasks[ti];
    for (int wi = 0; wi < static_cast<int>(cand_workers.size()); ++wi) {
      const CandWorker& cw = cand_workers[wi];
      if (cw.home == ct.region) continue;
      const double dx = ct.task->origin.x - cw.w.location.x;
      const double dy = ct.task->origin.y - cw.w.location.y;
      if (dx * dx + dy * dy > cw.w.radius * cw.w.radius) continue;
      pairs.push_back({ct.task->distance * ct.price, ti, wi});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [&](const CandPair& a, const CandPair& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              if (cand_tasks[a.ti].seq != cand_tasks[b.ti].seq) {
                return cand_tasks[a.ti].seq < cand_tasks[b.ti].seq;
              }
              return cand_workers[a.wi].w.id < cand_workers[b.wi].w.id;
            });
  std::vector<char> task_done(cand_tasks.size(), 0);
  std::vector<char> worker_done(cand_workers.size(), 0);
  std::vector<std::pair<int, int>> assigned;  // (ti, wi)
  for (const CandPair& p : pairs) {
    if (task_done[p.ti] || worker_done[p.wi]) continue;
    task_done[p.ti] = 1;
    worker_done[p.wi] = 1;
    assigned.push_back({p.ti, p.wi});
  }
  if (assigned.empty()) return Status::OK();
  if (m_stitch_matches_ != nullptr) {
    m_stitch_matches_->Add(static_cast<int64_t>(assigned.size()));
  }

  // Apply in task submission order: emit the stitched matches and drive the
  // worker lifecycle across engines.
  std::sort(assigned.begin(), assigned.end(),
            [&](const std::pair<int, int>& a, const std::pair<int, int>& b) {
              return cand_tasks[a.first].seq < cand_tasks[b.first].seq;
            });
  const bool single_use = options_.lifecycle.single_use;
  const double speed = options_.lifecycle.speed;
  for (const auto& [ti, wi] : assigned) {
    const CandTask& ct = cand_tasks[ti];
    const CandWorker& cw = cand_workers[wi];
    const double revenue = ct.task->distance * ct.price;
    merge_matches_.push_back(
        {ct.seq, MatchRecord{ct.task->id, cw.w.id, revenue}});
    if (single_use) {
      MAPS_RETURN_NOT_OK(regions_[cw.home]->ConsumeIdleWorker(cw.w.id));
      continue;
    }
    const int32_t ride = std::max(
        1, static_cast<int32_t>(std::ceil(ct.task->distance / speed)));
    const int32_t next_free = t + ride;
    const GridId dest_grid = grid_->CellOf(ct.task->destination);
    const int dest_region = owner_of_cell_[dest_grid];
    if (dest_region == cw.home || !region_active_[dest_region]) {
      // Same band — or the owning band is quarantined, in which case the
      // worker stays with its current region until the repatriation sweep
      // can hand it over (home-until-reconciled already covers parking in
      // foreign cells).
      MAPS_RETURN_NOT_OK(regions_[cw.home]->DispatchIdleWorker(
          cw.w.id, ct.task->destination, next_free));
    } else {
      // The ride ends in a foreign band: ownership migrates with it.
      Worker base;
      int32_t retire_at = 0;
      MAPS_RETURN_NOT_OK(
          regions_[cw.home]->ExtractIdleWorker(cw.w.id, &base, &retire_at));
      base.location = ct.task->destination;
      base.grid = dest_grid;
      MAPS_RETURN_NOT_OK(
          regions_[dest_region]->AdoptWorker(base, next_free, retire_at));
      worker_region_[cw.w.id] = dest_region;
      if (failure_domains_enabled()) {
        WorkerEvent ex;
        ex.type = WorkerEvent::Type::kExtract;
        ex.period = regions_[cw.home]->current_period();
        ex.id = cw.w.id;
        JournalEvent(cw.home, std::move(ex));
        WorkerEvent ad;
        ad.type = WorkerEvent::Type::kAdopt;
        ad.period = regions_[dest_region]->current_period();
        ad.worker = base;
        ad.next_free = next_free;
        ad.retire_at = retire_at;
        JournalEvent(dest_region, std::move(ad));
      }
    }
  }
  return Status::OK();
}

Status ShardedMarketEngine::RepatriateIdleWorkers(int32_t t) {
  // Home-until-reconciled (§13): a turnaround worker parked in a cell some
  // other region owns — cross-band ride destinations, repositioning drift —
  // is transferred to the owning region here, after every close, in a fixed
  // region-then-idle order. Until this sweep runs, the admitting region
  // keeps serving it.
  const int num_regions = static_cast<int>(regions_.size());
  for (int k = 0; k < num_regions; ++k) {
    // Quarantined regions neither give up nor receive workers: their
    // strays repatriate (and strays standing in their cells come home)
    // once they serve again.
    if (!region_active_[k]) continue;
    idle_scratch_.clear();
    regions_[k]->CollectIdleWorkers(&idle_scratch_);
    for (const Worker& w : idle_scratch_) {
      const int owner = owner_of_cell_[w.grid];
      if (owner == k || !region_active_[owner]) continue;
      Worker base;
      int32_t retire_at = 0;
      MAPS_RETURN_NOT_OK(
          regions_[k]->ExtractIdleWorker(w.id, &base, &retire_at));
      // Already free (next_free <= t): the owner offers it from the next
      // close on, exactly when the old region would have.
      MAPS_RETURN_NOT_OK(regions_[owner]->AdoptWorker(base, t, retire_at));
      worker_region_[w.id] = owner;
      if (m_repatriations_ != nullptr) m_repatriations_->Increment();
      if (failure_domains_enabled()) {
        WorkerEvent ex;
        ex.type = WorkerEvent::Type::kExtract;
        ex.period = regions_[k]->current_period();
        ex.id = w.id;
        JournalEvent(k, std::move(ex));
        WorkerEvent ad;
        ad.type = WorkerEvent::Type::kAdopt;
        ad.period = regions_[owner]->current_period();
        ad.worker = base;
        ad.next_free = t;
        ad.retire_at = retire_at;
        JournalEvent(owner, std::move(ad));
      }
    }
  }
  return Status::OK();
}

Status ShardedMarketEngine::ClosePeriod(PeriodOutcome* out) {
  if (out == nullptr) return Status::InvalidArgument("null outcome");
  const int32_t t = period_;
  const int num_regions = static_cast<int>(regions_.size());
  const bool fd = failure_domains_enabled();

  // No traffic ever arrived: capture baselines now so a fault on this very
  // close still has a restore point.
  MAPS_RETURN_NOT_OK(EnsureBaseline());

  // Which regions close this period: healthy ones, plus quarantined ones
  // whose deterministic retry came due — those get their deferred tasks
  // back first. kFailed regions never close again.
  region_active_.assign(num_regions, 1);
  if (fd) {
    for (int k = 0; k < num_regions; ++k) {
      RegionDomain& dom = domains_[k];
      if (dom.state == RegionHealth::State::kNormal) continue;
      if (dom.state == RegionHealth::State::kQuarantined &&
          dom.next_retry <= t) {
        MAPS_RETURN_NOT_OK(ResubmitDeferred(k));
        continue;  // active: recovery attempt
      }
      region_active_[k] = 0;
    }
  }

  // Resolve this layer's acceptance buffer: bits for routed tasks go to the
  // submitting region (its close consumes them); bits for tasks nobody
  // submitted are orphans, counted here at the close like the monolith
  // counts its own. The buffer itself is kept until deferral has run —
  // tasks of a region that fails THIS close take their bits into the
  // deferral queue.
  for (const auto& [task, accepted] : pending_accept_) {
    const auto it = task_route_.find(task);
    if (it == task_route_.end()) {
      obs::BumpMirrored(&local_rejections_.orphan_acceptances,
                        m_reject_.orphan_acceptances);
      continue;
    }
    if (!region_active_[it->second.region]) continue;  // held for deferral
    MAPS_RETURN_NOT_OK(
        regions_[it->second.region]->ObserveAcceptance(task, accepted));
  }

  MAPS_RETURN_NOT_OK(CloseAllRegions(t));

  // Park the open tasks of every region that is not serving after the
  // close — just-quarantined ones (their forwarded copies were rewound
  // away) and ones still waiting out their backoff.
  if (fd) {
    for (int k = 0; k < num_regions; ++k) {
      if (!region_active_[k]) DeferRegionTasks(k);
    }
  }
  pending_accept_.clear();

  {
    obs::ScopedTimer merge_timer(m_merge_ns_);
    MergeOutcomes(t, out);
  }
  {
    obs::ScopedTimer stitch_timer(m_stitch_ns_);
    MAPS_RETURN_NOT_OK(StitchBoundary(t, out));
  }

  // Final merged matches + the revenue fold, in global submission order —
  // the same order (and therefore the same FP rounding) as a monolithic
  // close; a sum of per-region sums would not be.
  std::sort(merge_matches_.begin(), merge_matches_.end(),
            [](const std::pair<int64_t, MatchRecord>& a,
               const std::pair<int64_t, MatchRecord>& b) {
              return a.first < b.first;
            });
  for (const auto& [seq, m] : merge_matches_) {
    out->matches.push_back(m);
    out->revenue += m.revenue;
  }
  out->rejections = rejections();

  if (!out->skipped && !options_.lifecycle.single_use) {
    obs::ScopedTimer repatriate_timer(m_repatriate_ns_);
    MAPS_RETURN_NOT_OK(RepatriateIdleWorkers(t));
  }

  // Per-region health report, then post-report transitions: a region that
  // served again is kRecovered for exactly this outcome and kNormal after.
  out->region_health.clear();
  if (fd) {
    out->region_health.resize(num_regions);
    for (int k = 0; k < num_regions; ++k) {
      RegionDomain& dom = domains_[k];
      RegionHealth& health = out->region_health[k];
      health.region = k;
      health.state = dom.state;
      health.attempts = dom.attempts;
      health.quarantined_since = dom.quarantined_since;
      // One kRegionHealth event per region per close, emitted on this
      // serial path in region order — the nightly chaos drill replays the
      // trace against PeriodOutcome::region_health and expects exact
      // agreement.
      if (options_.trace != nullptr) {
        options_.trace->Emit(obs::TraceEvent::Kind::kRegionHealth, t, k,
                             static_cast<int64_t>(health.state),
                             RegionHealthStateName(health.state));
      }
      if (dom.state == RegionHealth::State::kRecovered) {
        dom.state = RegionHealth::State::kNormal;
        dom.attempts = 0;
        dom.backoff = 0;
        dom.next_retry = -1;
        dom.quarantined_since = -1;
      }
    }
    // Refresh the restore point of every region that closed cleanly (the
    // stitch and repatriation above are part of the period, so the capture
    // includes them); quarantined regions keep their last-good blob and
    // their journal keeps accumulating.
    for (int k = 0; k < num_regions; ++k) {
      if (region_active_[k] && region_status_[k].ok()) {
        MAPS_RETURN_NOT_OK(CaptureRegionBaseline(k));
      }
    }
  }

  task_route_.clear();
  if (options_.trace != nullptr) {
    options_.trace->Emit(obs::TraceEvent::Kind::kPeriodClosed, t,
                         /*region=*/-1,
                         static_cast<int64_t>(out->matches.size()),
                         out->skipped ? "dead" : "");
    options_.trace->Emit(obs::TraceEvent::Kind::kPeriodOpened, t + 1,
                         /*region=*/-1, /*value=*/0, "");
  }
  ++period_;
  return Status::OK();
}

EngineRejectionCounters ShardedMarketEngine::rejections() const {
  EngineRejectionCounters total = local_rejections_;
  for (const auto& region : regions_) {
    const EngineRejectionCounters& r = region->rejections();
    total.duplicate_tasks += r.duplicate_tasks;
    total.unknown_worker_removals += r.unknown_worker_removals;
    total.busy_worker_removals += r.busy_worker_removals;
    total.orphan_acceptances += r.orphan_acceptances;
    total.deferred_tasks += r.deferred_tasks;
  }
  return total;
}

RegionHealth ShardedMarketEngine::region_health(int k) const {
  const RegionDomain& dom = domains_[k];
  RegionHealth health;
  health.region = k;
  health.state = dom.state;
  health.attempts = dom.attempts;
  health.quarantined_since = dom.quarantined_since;
  return health;
}

int64_t ShardedMarketEngine::num_deferred_tasks() const {
  int64_t total = 0;
  for (const auto& queue : deferred_) {
    total += static_cast<int64_t>(queue.size());
  }
  return total;
}

int64_t ShardedMarketEngine::num_live_workers() const {
  int64_t total = 0;
  for (const auto& region : regions_) total += region->num_live_workers();
  return total;
}

double ShardedMarketEngine::strategy_seconds() const {
  double total = 0.0;
  for (const auto& region : regions_) total += region->strategy_seconds();
  return total;
}

size_t ShardedMarketEngine::peak_platform_bytes() const {
  size_t total = 0;
  for (const auto& region : regions_) total += region->peak_platform_bytes();
  return total;
}

size_t ShardedMarketEngine::peak_strategy_bytes() const {
  size_t total = 0;
  for (const auto& region : regions_) total += region->peak_strategy_bytes();
  return total;
}

Status ShardedMarketEngine::SaveCheckpoint(std::string* out) {
  if (out == nullptr) return Status::InvalidArgument("null output string");
  const int num_regions = static_cast<int>(regions_.size());

  // A checkpoint must capture a fully-served deployment: while a region is
  // quarantined (or permanently failed) its engine state is a rewound
  // approximation and tasks sit in deferral queues that the container does
  // not encode. Callers retry after the region recovers.
  for (int k = 0; k < num_regions; ++k) {
    if (domains_[k].state != RegionHealth::State::kNormal) {
      return Status::FailedPrecondition(
          "region " + std::to_string(k) +
          " is not healthy (quarantined or failed); checkpoint after it "
          "recovers");
    }
    if (!deferred_[k].empty()) {
      return Status::FailedPrecondition(
          "region " + std::to_string(k) + " has " +
          std::to_string(deferred_[k].size()) +
          " deferred task(s) awaiting recovery; checkpoint after the next "
          "close");
    }
  }

  StateWriter part;
  part.PutI32(grid_->rows());
  part.PutI32(grid_->cols());
  const Rect& region_rect = grid_->region();
  part.PutDouble(region_rect.min_x);
  part.PutDouble(region_rect.min_y);
  part.PutDouble(region_rect.max_x);
  part.PutDouble(region_rect.max_y);
  part.PutI32(num_regions);
  for (int k = 0; k < num_regions; ++k) {
    part.PutI32(partition_->row_begin(k));
  }
  part.PutBool(options_.lifecycle.single_use);
  part.PutDouble(options_.lifecycle.speed);
  part.PutDouble(options_.lifecycle.reposition_prob);
  part.PutU64(options_.lifecycle.reposition_seed);

  StateWriter routing;
  routing.PutI32(period_);
  routing.PutI64(local_rejections_.duplicate_tasks);
  routing.PutI64(local_rejections_.unknown_worker_removals);
  routing.PutI64(local_rejections_.busy_worker_removals);
  routing.PutI64(local_rejections_.orphan_acceptances);
  routing.PutI64(local_rejections_.deferred_tasks);  // v2
  routing.PutI64(next_seq_);
  {
    std::vector<std::pair<WorkerId, int>> owners(worker_region_.begin(),
                                                 worker_region_.end());
    std::sort(owners.begin(), owners.end());  // map order is not stable
    routing.PutU64(owners.size());
    for (const auto& [id, k] : owners) {
      routing.PutI64(id);
      routing.PutI32(k);
    }
  }
  {
    std::vector<const TaskRoute*> routes;
    routes.reserve(task_route_.size());
    for (const auto& [id, route] : task_route_) routes.push_back(&route);
    std::sort(routes.begin(), routes.end(),
              [](const TaskRoute* a, const TaskRoute* b) {
                return a->seq < b->seq;
              });
    routing.PutU64(routes.size());
    for (const TaskRoute* route : routes) {
      routing.PutI64(route->seq);
      routing.PutI32(route->region);
      routing.PutI64(route->task.id);
      routing.PutI32(route->task.period);
      routing.PutDouble(route->task.origin.x);
      routing.PutDouble(route->task.origin.y);
      routing.PutDouble(route->task.destination.x);
      routing.PutDouble(route->task.destination.y);
      routing.PutDouble(route->task.distance);
      routing.PutI32(route->task.grid);
      routing.PutDouble(route->valuation);  // v2
    }
  }
  {
    std::vector<std::pair<TaskId, bool>> bits(pending_accept_.begin(),
                                              pending_accept_.end());
    std::sort(bits.begin(), bits.end());
    routing.PutU64(bits.size());
    for (const auto& [task, accepted] : bits) {
      routing.PutI64(task);
      routing.PutBool(accepted);
    }
  }
  for (const std::vector<double>& prices : region_prices_) {
    routing.PutU64(prices.size());
    for (double p : prices) routing.PutDouble(p);
  }

  StateWriter regions;
  regions.PutU32(static_cast<uint32_t>(num_regions));
  for (const auto& region : regions_) {
    std::string blob;
    MAPS_RETURN_NOT_OK(region->SaveCheckpoint(&blob));
    regions.PutString(blob);
  }

  StateWriter blob;
  blob.PutBytes(kShardedCheckpointMagic, sizeof(kShardedCheckpointMagic));
  blob.PutU32(kShardedCheckpointFormatVersion);
  blob.PutU32(kNumShardedSections);
  internal::AppendCheckpointSection(kShardedSectionPartition, part.data(),
                                    &blob);
  internal::AppendCheckpointSection(kShardedSectionRouting, routing.data(),
                                    &blob);
  internal::AppendCheckpointSection(kShardedSectionRegions, regions.data(),
                                    &blob);
  *out = blob.data();
  if (options_.trace != nullptr) {
    options_.trace->Emit(obs::TraceEvent::Kind::kCheckpointWritten, period_,
                         /*region=*/-1, static_cast<int64_t>(out->size()), "");
  }
  return Status::OK();
}

Status ShardedMarketEngine::RestoreFromCheckpoint(const std::string& data) {
  const int num_regions = static_cast<int>(regions_.size());
  std::vector<std::string> sections;
  MAPS_RETURN_NOT_OK(internal::ParseCheckpointContainer(
      data, kShardedCheckpointMagic, kShardedCheckpointFormatVersion,
      kNumShardedSections, "MAPS sharded checkpoint", &sections));

  {  // Partition fingerprint: grid, band layout, K, lifecycle.
    StateReader r(sections[kShardedSectionPartition - 1]);
    int32_t rows, cols;
    double min_x, min_y, max_x, max_y;
    MAPS_RETURN_NOT_OK(r.GetI32(&rows, "grid rows"));
    MAPS_RETURN_NOT_OK(r.GetI32(&cols, "grid cols"));
    MAPS_RETURN_NOT_OK(r.GetDouble(&min_x, "region min_x"));
    MAPS_RETURN_NOT_OK(r.GetDouble(&min_y, "region min_y"));
    MAPS_RETURN_NOT_OK(r.GetDouble(&max_x, "region max_x"));
    MAPS_RETURN_NOT_OK(r.GetDouble(&max_y, "region max_y"));
    const Rect& rect = grid_->region();
    if (rows != grid_->rows() || cols != grid_->cols() ||
        min_x != rect.min_x || min_y != rect.min_y || max_x != rect.max_x ||
        max_y != rect.max_y) {
      return Status::FailedPrecondition(
          "checkpoint grid fingerprint (" + std::to_string(rows) + "x" +
          std::to_string(cols) + ") does not match this engine's partition (" +
          std::to_string(grid_->rows()) + "x" + std::to_string(grid_->cols()) +
          ")");
    }
    int32_t k_saved;
    MAPS_RETURN_NOT_OK(r.GetI32(&k_saved, "region count"));
    if (k_saved != num_regions) {
      return Status::FailedPrecondition(
          "checkpoint was saved with " + std::to_string(k_saved) +
          " region(s), this engine shards into " +
          std::to_string(num_regions));
    }
    for (int k = 0; k < num_regions; ++k) {
      int32_t row_begin;
      MAPS_RETURN_NOT_OK(r.GetI32(&row_begin, "region row_begin"));
      if (row_begin != partition_->row_begin(k)) {
        return Status::FailedPrecondition(
            "checkpoint region " + std::to_string(k) + " starts at row " +
            std::to_string(row_begin) + ", this engine's partition at row " +
            std::to_string(partition_->row_begin(k)));
      }
    }
    bool single_use;
    double speed, reposition_prob;
    uint64_t reposition_seed;
    MAPS_RETURN_NOT_OK(r.GetBool(&single_use, "lifecycle single_use"));
    MAPS_RETURN_NOT_OK(r.GetDouble(&speed, "lifecycle speed"));
    MAPS_RETURN_NOT_OK(
        r.GetDouble(&reposition_prob, "lifecycle reposition_prob"));
    MAPS_RETURN_NOT_OK(
        r.GetU64(&reposition_seed, "lifecycle reposition_seed"));
    const WorkerLifecycle& lc = options_.lifecycle;
    if (single_use != lc.single_use || speed != lc.speed ||
        reposition_prob != lc.reposition_prob ||
        reposition_seed != lc.reposition_seed) {
      return Status::FailedPrecondition(
          "checkpoint worker-lifecycle fingerprint does not match this "
          "engine's options");
    }
    MAPS_RETURN_NOT_OK(r.ExpectEnd("sharded partition section"));
  }

  int32_t period;
  EngineRejectionCounters rej;
  int64_t next_seq;
  std::unordered_map<WorkerId, int> worker_region;
  std::unordered_map<TaskId, TaskRoute> task_route;
  std::unordered_map<TaskId, bool> pending;
  std::vector<std::vector<double>> region_prices;
  {  // Routing state.
    StateReader r(sections[kShardedSectionRouting - 1]);
    MAPS_RETURN_NOT_OK(r.GetI32(&period, "period counter"));
    MAPS_RETURN_NOT_OK(r.GetI64(&rej.duplicate_tasks, "duplicate_tasks"));
    MAPS_RETURN_NOT_OK(
        r.GetI64(&rej.unknown_worker_removals, "unknown_worker_removals"));
    MAPS_RETURN_NOT_OK(
        r.GetI64(&rej.busy_worker_removals, "busy_worker_removals"));
    MAPS_RETURN_NOT_OK(
        r.GetI64(&rej.orphan_acceptances, "orphan_acceptances"));
    MAPS_RETURN_NOT_OK(r.GetI64(&rej.deferred_tasks, "deferred_tasks"));
    MAPS_RETURN_NOT_OK(r.GetI64(&next_seq, "next submission seq"));
    if (period < 0 || rej.duplicate_tasks < 0 ||
        rej.unknown_worker_removals < 0 || rej.busy_worker_removals < 0 ||
        rej.orphan_acceptances < 0 || rej.deferred_tasks < 0 ||
        next_seq < 0) {
      return Status::InvalidArgument(
          "sharded routing section has negative counters");
    }
    uint64_t n;
    MAPS_RETURN_NOT_OK(r.GetU64(&n, "worker owner count"));
    MAPS_RETURN_NOT_OK(CheckDecodedCount(r, n, 12, "worker owners"));
    worker_region.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n; ++i) {
      WorkerId id;
      int32_t k;
      MAPS_RETURN_NOT_OK(r.GetI64(&id, "worker owner id"));
      MAPS_RETURN_NOT_OK(r.GetI32(&k, "worker owner region"));
      if (k < 0 || k >= num_regions) {
        return Status::InvalidArgument("worker " + std::to_string(id) +
                                       " owned by out-of-range region " +
                                       std::to_string(k));
      }
      if (!worker_region.emplace(id, k).second) {
        return Status::InvalidArgument("worker id " + std::to_string(id) +
                                       " appears twice in the owner table");
      }
    }
    MAPS_RETURN_NOT_OK(r.GetU64(&n, "task route count"));
    MAPS_RETURN_NOT_OK(CheckDecodedCount(r, n, 76, "task routes"));
    task_route.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n; ++i) {
      TaskRoute route;
      MAPS_RETURN_NOT_OK(r.GetI64(&route.seq, "route seq"));
      MAPS_RETURN_NOT_OK(r.GetI32(&route.region, "route region"));
      MAPS_RETURN_NOT_OK(r.GetI64(&route.task.id, "route task id"));
      MAPS_RETURN_NOT_OK(r.GetI32(&route.task.period, "route task period"));
      MAPS_RETURN_NOT_OK(r.GetDouble(&route.task.origin.x, "route origin x"));
      MAPS_RETURN_NOT_OK(r.GetDouble(&route.task.origin.y, "route origin y"));
      MAPS_RETURN_NOT_OK(
          r.GetDouble(&route.task.destination.x, "route destination x"));
      MAPS_RETURN_NOT_OK(
          r.GetDouble(&route.task.destination.y, "route destination y"));
      MAPS_RETURN_NOT_OK(r.GetDouble(&route.task.distance, "route distance"));
      MAPS_RETURN_NOT_OK(r.GetI32(&route.task.grid, "route task grid"));
      MAPS_RETURN_NOT_OK(r.GetDouble(&route.valuation, "route valuation"));
      if (route.region < 0 || route.region >= num_regions) {
        return Status::InvalidArgument(
            "task " + std::to_string(route.task.id) +
            " routed to out-of-range region " + std::to_string(route.region));
      }
      if (route.task.grid < 0 || route.task.grid >= grid_->num_cells()) {
        return Status::InvalidArgument(
            "routed task " + std::to_string(route.task.id) + " has grid " +
            std::to_string(route.task.grid) + " outside the partition");
      }
      if (route.seq < 0 || route.seq >= next_seq) {
        return Status::InvalidArgument(
            "routed task " + std::to_string(route.task.id) +
            " has sequence " + std::to_string(route.seq) +
            " outside [0, " + std::to_string(next_seq) + ")");
      }
      const TaskId id = route.task.id;
      if (!task_route.emplace(id, std::move(route)).second) {
        return Status::InvalidArgument("task id " + std::to_string(id) +
                                       " appears twice in the route table");
      }
    }
    MAPS_RETURN_NOT_OK(r.GetU64(&n, "pending bit count"));
    MAPS_RETURN_NOT_OK(CheckDecodedCount(r, n, 9, "pending bits"));
    pending.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n; ++i) {
      TaskId task;
      bool accepted;
      MAPS_RETURN_NOT_OK(r.GetI64(&task, "pending task id"));
      MAPS_RETURN_NOT_OK(r.GetBool(&accepted, "pending accepted bit"));
      if (!pending.emplace(task, accepted).second) {
        return Status::InvalidArgument("pending bit for task " +
                                       std::to_string(task) +
                                       " appears twice");
      }
    }
    region_prices.resize(num_regions);
    for (int k = 0; k < num_regions; ++k) {
      MAPS_RETURN_NOT_OK(r.GetU64(&n, "cached price count"));
      if (n != static_cast<uint64_t>(grid_->num_cells())) {
        return Status::InvalidArgument(
            "region " + std::to_string(k) + " caches " + std::to_string(n) +
            " price(s), the grid has " + std::to_string(grid_->num_cells()) +
            " cell(s)");
      }
      region_prices[k].resize(static_cast<size_t>(n));
      for (double& p : region_prices[k]) {
        MAPS_RETURN_NOT_OK(r.GetDouble(&p, "cached price"));
      }
    }
    MAPS_RETURN_NOT_OK(r.ExpectEnd("sharded routing section"));
  }

  std::vector<std::string> region_blobs(num_regions);
  {  // Embedded per-region checkpoints.
    StateReader r(sections[kShardedSectionRegions - 1]);
    uint32_t count;
    MAPS_RETURN_NOT_OK(r.GetU32(&count, "embedded region count"));
    if (count != static_cast<uint32_t>(num_regions)) {
      return Status::InvalidArgument(
          "regions section embeds " + std::to_string(count) +
          " checkpoint(s), expected " + std::to_string(num_regions));
    }
    for (int k = 0; k < num_regions; ++k) {
      MAPS_RETURN_NOT_OK(r.GetString(&region_blobs[k], "region checkpoint"));
    }
    MAPS_RETURN_NOT_OK(r.ExpectEnd("sharded regions section"));
    // Structural pre-validation of every embedded blob (magic, version,
    // section CRCs) before ANY region engine is mutated: corruption — the
    // common failure — can then never leave the deployment half-restored.
    // A semantic mismatch inside region k's restore (below) still can;
    // same caveat class as the monolith's strategy-section note (§12).
    for (int k = 0; k < num_regions; ++k) {
      std::vector<std::string> probe;
      const Status s = internal::ParseCheckpointContainer(
          region_blobs[k], kCheckpointMagic, kCheckpointFormatVersion,
          kCheckpointNumSections, "MAPS checkpoint", &probe);
      if (!s.ok()) {
        return Status::InvalidArgument("embedded checkpoint of region " +
                                       std::to_string(k) + ": " +
                                       s.message());
      }
    }
  }

  for (int k = 0; k < num_regions; ++k) {
    const Status s = regions_[k]->RestoreFromCheckpoint(region_blobs[k]);
    if (!s.ok()) {
      return Status::InvalidArgument("restoring region " + std::to_string(k) +
                                     ": " + s.message());
    }
    if (regions_[k]->current_period() != period) {
      return Status::InvalidArgument(
          "region " + std::to_string(k) + " restored at period " +
          std::to_string(regions_[k]->current_period()) +
          ", the sharded layer at " + std::to_string(period));
    }
  }

  // Commit this layer. Nothing below can fail. As in the monolith's
  // restore, the mirrored registry counters absorb the jump so the registry
  // stays equal to the summed struct counters (DESIGN.md §16).
  const auto sync_mirror = [](int64_t before, int64_t after,
                              obs::Counter* mirror) {
    if (mirror != nullptr && after != before) mirror->Add(after - before);
  };
  sync_mirror(local_rejections_.duplicate_tasks, rej.duplicate_tasks,
              m_reject_.duplicate_tasks);
  sync_mirror(local_rejections_.unknown_worker_removals,
              rej.unknown_worker_removals, m_reject_.unknown_worker_removals);
  sync_mirror(local_rejections_.busy_worker_removals, rej.busy_worker_removals,
              m_reject_.busy_worker_removals);
  sync_mirror(local_rejections_.orphan_acceptances, rej.orphan_acceptances,
              m_reject_.orphan_acceptances);
  sync_mirror(local_rejections_.deferred_tasks, rej.deferred_tasks,
              m_reject_.deferred_tasks);
  period_ = period;
  next_seq_ = next_seq;
  local_rejections_ = rej;
  worker_region_ = std::move(worker_region);
  task_route_ = std::move(task_route);
  pending_accept_ = std::move(pending);
  region_prices_ = std::move(region_prices);
  // Failure-domain state restarts clean: checkpoints are only written from
  // fully-healthy deployments, and the restored engines ARE the new
  // baselines (recaptured lazily before the next mutating event).
  for (RegionDomain& dom : domains_) dom = RegionDomain{};
  for (auto& queue : deferred_) queue.clear();
  baseline_captured_ = false;
  region_active_.assign(regions_.size(), 1);
  if (options_.trace != nullptr) {
    options_.trace->Emit(obs::TraceEvent::Kind::kCheckpointRestored, period_,
                         /*region=*/-1, static_cast<int64_t>(data.size()), "");
  }
  return Status::OK();
}

}  // namespace maps
