// ReplayDriver: drives an engine (monolithic or sharded) from a streaming
// ReplayEventStream, one event in memory at a time. This is the single
// ingestion path behind `maps_cli replay` and the simulator's streaming
// adapter (sim/simulator.h): grid assignment, distance derivation, period
// stamping, resume skipping, and per-close accounting live here once, so a
// 10^6+-event log is replayed with O(1) ingestion memory regardless of the
// consumer.

#pragma once

#include <cstdint>
#include <functional>

#include "geo/grid.h"
#include "service/market_engine.h"
#include "service/replay_log.h"
#include "service/sharded_engine.h"
#include "util/result.h"

namespace maps {

/// \brief Knobs for one streaming replay drive.
struct ReplayStreamOptions {
  /// Number of close_period events to skip before applying anything —
  /// the resume path: a restored engine at period P has already consumed
  /// everything up to and including the P-th close.
  int64_t skip_closes = 0;
  /// Invoked after every applied ClosePeriod (skipped periods included)
  /// with the merged outcome — the CLI's table/checkpoint hook. A non-OK
  /// return aborts the drive. May be empty.
  std::function<Status(const PeriodOutcome&)> on_close;
};

/// \brief Accounting for one streaming replay drive (events skipped by
/// `skip_closes` resume logic are not counted).
struct ReplayStreamSummary {
  /// Events applied to the engine by this drive.
  int64_t events_applied = 0;
  /// close_period events applied by this drive.
  int64_t periods_closed = 0;
  double total_revenue = 0.0;
  int64_t total_accepted = 0;
  int64_t total_matched = 0;
};

/// \brief Streams every event through `engine`: tasks get their grid cell,
/// submission period, and (when the log omitted it) Euclidean distance;
/// workers get their grid cell and admission period. Engine errors carry
/// the offending log line number.
Result<ReplayStreamSummary> ReplayEventsThroughEngine(
    ReplayEventStream* stream, const GridPartition& grid, MarketEngine* engine,
    const ReplayStreamOptions& options = {});

/// \brief Sharded overload: identical semantics, events routed by the
/// sharded engine's own partition.
Result<ReplayStreamSummary> ReplayEventsThroughEngine(
    ReplayEventStream* stream, const GridPartition& grid,
    ShardedMarketEngine* engine, const ReplayStreamOptions& options = {});

}  // namespace maps
