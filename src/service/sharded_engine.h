// ShardedMarketEngine: the multi-region deployment of the serving core
// (DESIGN.md §13). The city grid is split into K contiguous row bands by a
// RegionPartition; each band is served by its own MarketEngine — private
// snapshot pair, private strategy instance, private worker pool shard — and
// the sharded engine is a thin router in front of them:
//
//   * SubmitTask routes by the task's origin cell; AddWorker by the
//     worker's location cell; RemoveWorker / ObserveAcceptance by the
//     routing tables this layer maintains.
//   * ClosePeriod closes all K regions — concurrently when a pool was
//     lent, the regions share no mutable state — then merges the per-region
//     outcomes into one PeriodOutcome in GLOBAL SUBMISSION ORDER (every
//     task carries a submission sequence number; accepted ids, matches, and
//     the revenue fold all follow it), so a boundary-free sharded close is
//     bit-identical to the monolithic engine's at any thread count.
//   * After the merge, a deterministic BOUNDARY-STITCH pass reconciles the
//     seams: accepted-but-unmatched tasks in boundary cells are offered to
//     idle unmatched workers of neighboring regions whose reach disc covers
//     the task origin (the exact edge predicate of the matching graph),
//     greedily in (weight desc, task seq asc, worker id asc) order. Matched
//     turnaround workers whose ride ends in a foreign band migrate to the
//     owning region; a final repatriation sweep moves idle workers standing
//     in foreign-owned cells home. Everything after the close barrier is
//     serial and ordered — thread count never changes results.
//
// Known, deliberate divergences from the monolithic engine (all absent from
// the boundary-free equivalence contract): the stitch is one greedy
// augmentation round, not a re-run of the global max-weight matching; each
// region reposition-RNG stream is derived from the base seed; a skipped
// region re-posts its cached last prices into the merged vector; the MC
// diagnostic is summed per region. See DESIGN.md §13 for the full list.
//
// Checkpointing covers all K regions in one container ("MAPSSHRD"): a
// partition-aware fingerprint (grid, K, band layout, lifecycle), this
// layer's routing state, and one embedded single-engine checkpoint per
// region. Restore with a different K or band layout fails with
// FailedPrecondition before anything is touched.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "geo/region_partition.h"
#include "service/market_engine.h"

namespace maps {

/// \brief K-region sharded serving engine; same event surface as
/// MarketEngine (bulk staging and pipelining excepted — regions prebuild
/// nothing). Not thread-safe: one logical event stream, like the monolith.
class ShardedMarketEngine {
 public:
  /// \param grid the full city partition (regions price over the full
  ///        grid; cell ownership comes from `partition`). Non-owning.
  /// \param partition the region layout; non-owning, must outlive the
  ///        engine and match `grid`'s dimensions.
  /// \param strategies one strategy per region, each warmed by the caller
  ///        (warm all of them against the SAME oracle stream to make their
  ///        learned state identical — see DESIGN.md §13). Non-owning.
  /// \param options lifecycle/MC knobs as for MarketEngine. `options.pool`
  ///        parallelizes ACROSS regions (each region engine runs serially
  ///        inside); `pipeline_periods` is ignored.
  ShardedMarketEngine(const GridPartition* grid,
                      const RegionPartition* partition,
                      std::vector<PricingStrategy*> strategies,
                      const EngineOptions& options = {});

  ShardedMarketEngine(const ShardedMarketEngine&) = delete;
  ShardedMarketEngine& operator=(const ShardedMarketEngine&) = delete;

  /// Routes to the region owning the task's origin cell. Duplicate ids
  /// within the open period are rejected here (AlreadyExists, counted) even
  /// across regions, exactly like the monolith's per-period id set.
  Status SubmitTask(const Task& task,
                    double valuation = MarketEngine::kNoValuation);

  /// Routes to the region owning the worker's location cell. Ids must be
  /// unique across the run (and across regions).
  Status AddWorker(const Worker& worker);

  /// Routes to the region currently owning the worker (migration moves
  /// ownership). Unknown ids are NotFound and counted.
  Status RemoveWorker(WorkerId id);

  /// Buffered until the close, then forwarded to the submitting region;
  /// bits for tasks not in the period are orphans, counted at the close.
  Status ObserveAcceptance(TaskId task, bool accepted);

  /// Closes the open period on every region (concurrently with a pool),
  /// merges the outcomes in global submission order, runs the boundary
  /// stitch and the repatriation sweep. `out`'s storage is reused.
  Status ClosePeriod(PeriodOutcome* out);

  /// One container for the whole deployment: partition fingerprint,
  /// routing state, and K embedded per-region checkpoints
  /// (docs/checkpoint_format.md).
  Status SaveCheckpoint(std::string* out);

  /// All regions restored from one SaveCheckpoint container. The engine
  /// must be configured like the saver — same grid, same K and band
  /// layout, same lifecycle, same per-region strategy types — or the
  /// restore fails with FailedPrecondition. Structural corruption anywhere
  /// (including inside a region blob) is rejected before any region is
  /// touched.
  Status RestoreFromCheckpoint(const std::string& data);

  /// Merged counters: this layer's routing rejections plus every region's.
  EngineRejectionCounters rejections() const;

  int32_t current_period() const { return period_; }
  int num_regions() const { return static_cast<int>(regions_.size()); }
  int64_t num_live_workers() const;
  /// Summed over regions (total time inside strategies).
  double strategy_seconds() const;
  /// Summed over regions.
  size_t peak_platform_bytes() const;
  size_t peak_strategy_bytes() const;

  /// The region shard, for tests and diagnostics.
  MarketEngine* region_engine(int k) { return regions_[k].get(); }
  const MarketEngine* region_engine(int k) const { return regions_[k].get(); }

 private:
  /// Where a task of the open period went, plus everything the stitch
  /// needs to reconsider it after the close.
  struct TaskRoute {
    int region = 0;
    int64_t seq = 0;  // global submission order within the run
    Task task;
  };

  Status CloseAllRegions(int32_t t);
  void MergeOutcomes(int32_t t, PeriodOutcome* out);
  Status StitchBoundary(int32_t t, PeriodOutcome* out);
  Status RepatriateIdleWorkers(int32_t t);

  const GridPartition* grid_;
  const RegionPartition* partition_;
  EngineOptions options_;
  ThreadPool* pool_ = nullptr;
  std::vector<std::unique_ptr<MarketEngine>> regions_;
  std::vector<int> owner_of_cell_;  // cell id -> owning region

  int32_t period_ = 0;
  int64_t next_seq_ = 0;
  std::unordered_map<TaskId, TaskRoute> task_route_;  // open period only
  std::unordered_map<WorkerId, int> worker_region_;
  std::unordered_map<TaskId, bool> pending_accept_;
  /// Routing-layer rejections (duplicates caught here, unknown removals,
  /// orphan bits for never-submitted tasks); merged with the regions' own
  /// counters in rejections().
  EngineRejectionCounters local_rejections_;
  /// Last posted prices per region (full grid vector): a region that skips
  /// a period re-posts its cached quotes into the merged price vector.
  std::vector<std::vector<double>> region_prices_;

  // Per-close scratch, pooled across periods.
  std::vector<PeriodOutcome> region_outcomes_;
  std::vector<Status> region_status_;
  std::vector<std::pair<int64_t, MatchRecord>> merge_matches_;
  std::vector<std::pair<int64_t, TaskId>> merge_accepted_;
  std::vector<Worker> idle_scratch_;
  std::vector<GridId> cell_scratch_;
};

}  // namespace maps
