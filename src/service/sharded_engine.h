// ShardedMarketEngine: the multi-region deployment of the serving core
// (DESIGN.md §13). The city grid is split into K contiguous row bands by a
// RegionPartition; each band is served by its own MarketEngine — private
// snapshot pair, private strategy instance, private worker pool shard — and
// the sharded engine is a thin router in front of them:
//
//   * SubmitTask routes by the task's origin cell; AddWorker by the
//     worker's location cell; RemoveWorker / ObserveAcceptance by the
//     routing tables this layer maintains.
//   * ClosePeriod closes all K regions — concurrently when a pool was
//     lent, the regions share no mutable state — then merges the per-region
//     outcomes into one PeriodOutcome in GLOBAL SUBMISSION ORDER (every
//     task carries a submission sequence number; accepted ids, matches, and
//     the revenue fold all follow it), so a boundary-free sharded close is
//     bit-identical to the monolithic engine's at any thread count.
//   * After the merge, a deterministic BOUNDARY-STITCH pass reconciles the
//     seams: accepted-but-unmatched tasks in boundary cells are offered to
//     idle unmatched workers of neighboring regions whose reach disc covers
//     the task origin (the exact edge predicate of the matching graph),
//     greedily in (weight desc, task seq asc, worker id asc) order. Matched
//     turnaround workers whose ride ends in a foreign band migrate to the
//     owning region; a final repatriation sweep moves idle workers standing
//     in foreign-owned cells home. Everything after the close barrier is
//     serial and ordered — thread count never changes results.
//
// Known, deliberate divergences from the monolithic engine (all absent from
// the boundary-free equivalence contract): the stitch is one greedy
// augmentation round, not a re-run of the global max-weight matching; each
// region reposition-RNG stream is derived from the base seed; a skipped
// region re-posts its cached last prices into the merged vector; the MC
// diagnostic is summed per region. See DESIGN.md §13 for the full list.
//
// Checkpointing covers all K regions in one container ("MAPSSHRD"): a
// partition-aware fingerprint (grid, K, band layout, lifecycle), this
// layer's routing state, and one embedded single-engine checkpoint per
// region. Restore with a different K or band layout fails with
// FailedPrecondition before anything is touched.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "geo/region_partition.h"
#include "service/market_engine.h"

namespace maps {

/// \brief K-region sharded serving engine; same event surface as
/// MarketEngine (bulk staging and pipelining excepted — regions prebuild
/// nothing). Not thread-safe: one logical event stream, like the monolith.
class ShardedMarketEngine {
 public:
  /// \param grid the full city partition (regions price over the full
  ///        grid; cell ownership comes from `partition`). Non-owning.
  /// \param partition the region layout; non-owning, must outlive the
  ///        engine and match `grid`'s dimensions.
  /// \param strategies one strategy per region, each warmed by the caller
  ///        (warm all of them against the SAME oracle stream to make their
  ///        learned state identical — see DESIGN.md §13). Non-owning.
  /// \param options lifecycle/MC knobs as for MarketEngine. `options.pool`
  ///        parallelizes ACROSS regions (each region engine runs serially
  ///        inside); `pipeline_periods` is ignored.
  ShardedMarketEngine(const GridPartition* grid,
                      const RegionPartition* partition,
                      std::vector<PricingStrategy*> strategies,
                      const EngineOptions& options = {});

  ShardedMarketEngine(const ShardedMarketEngine&) = delete;
  ShardedMarketEngine& operator=(const ShardedMarketEngine&) = delete;

  /// Routes to the region owning the task's origin cell. Duplicate ids
  /// within the open period are rejected here (AlreadyExists, counted) even
  /// across regions, exactly like the monolith's per-period id set.
  Status SubmitTask(const Task& task,
                    double valuation = MarketEngine::kNoValuation);

  /// Routes to the region owning the worker's location cell. Ids must be
  /// unique across the run (and across regions).
  Status AddWorker(const Worker& worker);

  /// Routes to the region currently owning the worker (migration moves
  /// ownership). Unknown ids are NotFound and counted.
  Status RemoveWorker(WorkerId id);

  /// Buffered until the close, then forwarded to the submitting region;
  /// bits for tasks not in the period are orphans, counted at the close.
  Status ObserveAcceptance(TaskId task, bool accepted);

  /// Closes the open period on every region (concurrently with a pool),
  /// merges the outcomes in global submission order, runs the boundary
  /// stitch and the repatriation sweep. `out`'s storage is reused.
  Status ClosePeriod(PeriodOutcome* out);

  /// One container for the whole deployment: partition fingerprint,
  /// routing state, and K embedded per-region checkpoints
  /// (docs/checkpoint_format.md).
  Status SaveCheckpoint(std::string* out);

  /// All regions restored from one SaveCheckpoint container. The engine
  /// must be configured like the saver — same grid, same K and band
  /// layout, same lifecycle, same per-region strategy types — or the
  /// restore fails with FailedPrecondition. Structural corruption anywhere
  /// (including inside a region blob) is rejected before any region is
  /// touched.
  Status RestoreFromCheckpoint(const std::string& data);

  /// Merged counters: this layer's routing rejections plus every region's.
  EngineRejectionCounters rejections() const;

  /// Current failure-domain health of region `k` (DESIGN.md §15). Always
  /// kNormal when failure domains are disabled.
  RegionHealth region_health(int k) const;

  /// Tasks currently parked in deferral queues awaiting a region recovery
  /// (0 unless a region is quarantined or failed).
  int64_t num_deferred_tasks() const;

  int32_t current_period() const { return period_; }
  int num_regions() const { return static_cast<int>(regions_.size()); }
  int64_t num_live_workers() const;
  /// Summed over regions (total time inside strategies).
  double strategy_seconds() const;
  /// Summed over regions.
  size_t peak_platform_bytes() const;
  size_t peak_strategy_bytes() const;

  /// The region shard, for tests and diagnostics.
  MarketEngine* region_engine(int k) { return regions_[k].get(); }
  const MarketEngine* region_engine(int k) const { return regions_[k].get(); }

 private:
  /// Where a task of the open period went, plus everything the stitch
  /// needs to reconsider it after the close.
  struct TaskRoute {
    int region = 0;
    int64_t seq = 0;  // global submission order within the run
    Task task;
    /// The hidden valuation as submitted, kept so a deferred task can be
    /// resubmitted identically after a quarantine (DESIGN.md §15).
    double valuation = MarketEngine::kNoValuation;
  };

  // --- Failure domains (DESIGN.md §15); dormant unless
  // options_.failure_domains.enabled. ------------------------------------

  /// One worker-lifecycle event recorded since a region's last baseline
  /// capture, replayed after a quarantine restore to bring the region's
  /// worker table back to the present.
  struct WorkerEvent {
    enum class Type { kAdd, kRemove, kAdopt, kExtract };
    Type type = Type::kAdd;
    /// Region period at which the event originally applied; replay
    /// quiet-advances to it before applying.
    int32_t period = 0;
    Worker worker;        // kAdd / kAdopt: the base as admitted
    WorkerId id = -1;     // kRemove / kExtract
    int32_t next_free = 0;   // kAdopt
    int32_t retire_at = 0;   // kAdopt
  };

  /// A task parked while its region is quarantined; resubmitted with its
  /// ORIGINAL submission sequence at the region's next close attempt, so
  /// the merge order is a pure function of the submission history.
  struct DeferredTask {
    int64_t seq = 0;
    Task task;
    double valuation = MarketEngine::kNoValuation;
    bool has_accept = false;
    bool accept = false;
  };

  /// Per-region failure-domain state.
  struct RegionDomain {
    RegionHealth::State state = RegionHealth::State::kNormal;
    /// Checkpoint blob captured at the region's last healthy close.
    std::string last_good;
    /// Worker events since last_good was captured (cleared at capture).
    std::vector<WorkerEvent> journal;
    int attempts = 0;          // recovery attempts consumed
    int backoff = 0;           // periods until the next retry (doubles)
    int32_t next_retry = -1;   // period of the next close attempt
    int32_t quarantined_since = -1;
  };

  bool failure_domains_enabled() const {
    return options_.failure_domains.enabled;
  }
  /// Captures every region's baseline once, before the first mutating
  /// event (post-warmup, pre-traffic); re-armed by RestoreFromCheckpoint.
  Status EnsureBaseline();
  /// SaveCheckpoint of region k into last_good; clears its journal.
  Status CaptureRegionBaseline(int k);
  void JournalEvent(int k, WorkerEvent event);
  /// Restores region k from last_good, replays its journal (quiet-advancing
  /// between event periods), and quiet-advances to period t + 1 so the
  /// region stays in lockstep while quarantined.
  Status RewindRegion(int k, int32_t t);
  /// Books a close failure of region k at period t: first failure enters
  /// quarantine (attempt 1, retry next period); a failed retry doubles the
  /// backoff; attempts beyond the budget turn the region kFailed. Always
  /// rewinds the region state.
  Status QuarantineRegion(int k, int32_t t);
  /// Moves every open task routed to (inactive) region k into its deferral
  /// queue, bits included, with conservation accounting.
  void DeferRegionTasks(int k);
  /// Re-forwards region k's deferral queue (original seqs) ahead of a
  /// recovery close attempt.
  Status ResubmitDeferred(int k);

  Status CloseAllRegions(int32_t t);
  void MergeOutcomes(int32_t t, PeriodOutcome* out);
  Status StitchBoundary(int32_t t, PeriodOutcome* out);
  Status RepatriateIdleWorkers(int32_t t);

  const GridPartition* grid_;
  const RegionPartition* partition_;
  EngineOptions options_;
  ThreadPool* pool_ = nullptr;
  std::vector<std::unique_ptr<MarketEngine>> regions_;
  std::vector<int> owner_of_cell_;  // cell id -> owning region

  int32_t period_ = 0;
  int64_t next_seq_ = 0;
  std::unordered_map<TaskId, TaskRoute> task_route_;  // open period only
  std::unordered_map<WorkerId, int> worker_region_;
  std::unordered_map<TaskId, bool> pending_accept_;
  /// Routing-layer rejections (duplicates caught here, unknown removals,
  /// orphan bits for never-submitted tasks); merged with the regions' own
  /// counters in rejections().
  EngineRejectionCounters local_rejections_;
  /// Last posted prices per region (full grid vector): a region that skips
  /// a period re-posts its cached quotes into the merged price vector.
  std::vector<std::vector<double>> region_prices_;

  // Failure-domain state (empty shells when disabled).
  std::vector<RegionDomain> domains_;
  std::vector<std::vector<DeferredTask>> deferred_;
  bool baseline_captured_ = false;

  // Observability handles (DESIGN.md §16), resolved once at construction;
  // all null when options.metrics is null. Region engines share the
  // registry (their counters sum into the same names) but get no trace:
  // region closes run concurrently and would interleave seq ids. All
  // sharded-layer trace appends happen on the serial path of ClosePeriod.
  obs::Histogram* m_region_close_ns_ = nullptr;   // wall-clock, per region
  obs::Histogram* m_merge_ns_ = nullptr;          // wall-clock
  obs::Histogram* m_stitch_ns_ = nullptr;         // wall-clock
  obs::Histogram* m_repatriate_ns_ = nullptr;     // wall-clock
  obs::Counter* m_quarantines_ = nullptr;         // deterministic
  obs::Counter* m_rewinds_ = nullptr;             // deterministic
  obs::Counter* m_journal_replays_ = nullptr;     // deterministic (events)
  obs::Counter* m_backoff_retries_ = nullptr;     // deterministic
  obs::Counter* m_permanent_failures_ = nullptr;  // deterministic
  obs::Counter* m_stitch_matches_ = nullptr;      // deterministic
  obs::Counter* m_repatriations_ = nullptr;       // deterministic
  RejectionCounterHandles m_reject_;

  // Per-close scratch, pooled across periods.
  std::vector<PeriodOutcome> region_outcomes_;
  std::vector<Status> region_status_;
  /// Region k participates in this period's close (healthy, or retrying);
  /// quarantined/failed regions are inactive and quiet-advance instead.
  std::vector<char> region_active_;
  std::vector<std::pair<int64_t, MatchRecord>> merge_matches_;
  std::vector<std::pair<int64_t, TaskId>> merge_accepted_;
  std::vector<Worker> idle_scratch_;
  std::vector<GridId> cell_scratch_;
};

}  // namespace maps
