// ReplayLog: a line-oriented JSON event format for driving MarketEngine
// from a file (`maps_cli replay`). One flat JSON object per line; blank
// lines and lines starting with '#' are skipped. Events:
//
//   {"event":"add_worker","id":0,"x":5,"y":5,"radius":3,"duration":100}
//   {"event":"submit_task","id":0,"ox":5,"oy":6,"dx":7,"dy":5,
//    "valuation":3.2}                       // valuation optional
//   {"event":"observe_acceptance","task":0,"accepted":true}
//   {"event":"remove_worker","id":0}
//   {"event":"close_period"}
//
// submit_task may carry an explicit "distance"; otherwise the driver
// derives it from the origin/destination pair. "duration" is optional
// (default: unlimited). The parser knows nothing about the grid — the
// driver fills Task::grid / Worker::grid from its partition.

#pragma once

#include <istream>
#include <string>
#include <vector>

#include "market/task.h"
#include "market/worker.h"
#include "util/result.h"

namespace maps {

namespace obs {
class Counter;
class MetricsRegistry;
}  // namespace obs

/// \brief One parsed replay event.
struct ReplayEvent {
  enum class Kind {
    kSubmitTask,
    kAddWorker,
    kRemoveWorker,
    kObserveAcceptance,
    kClosePeriod,
  };
  Kind kind = Kind::kClosePeriod;
  /// kSubmitTask: id/origin/destination/distance (distance may be 0 =
  /// derive); grid left unset for the driver.
  Task task;
  /// kSubmitTask: hidden valuation, NaN when the file omitted it.
  double valuation = 0.0;
  bool has_valuation = false;
  /// kAddWorker: id/location/radius/duration; grid left unset.
  Worker worker;
  /// kRemoveWorker: worker id; kObserveAcceptance: task id.
  int64_t id = -1;
  /// kObserveAcceptance.
  bool accepted = false;
};

/// \brief Parses one JSONL event line (must not be blank or a comment).
///
/// Numeric fields are validated before use: integer fields (ids, duration)
/// must parse fully as in-range integers — non-integral, overflowing, NaN,
/// or infinite values are rejected, never cast — and coordinate/valuation
/// fields must be finite. Every rejection names the offending field.
Result<ReplayEvent> ParseReplayEventLine(const std::string& line);

/// \brief Tuning knobs for LoadReplayLog.
struct ReplayLoadOptions {
  /// When true, a malformed line is logged at Warning, counted in
  /// ReplayLoadStats::lines_skipped, and dropped instead of failing the
  /// whole load. Structural damage (an unreadable stream) still fails.
  bool skip_bad_events = false;
};

/// \brief Counters reported by LoadReplayLog.
struct ReplayLoadStats {
  /// Malformed lines dropped because of ReplayLoadOptions::skip_bad_events.
  int64_t lines_skipped = 0;
  /// Lines parsed into events (excludes blanks, comments, skipped lines).
  int64_t events_loaded = 0;
};

/// \brief Streaming, line-at-a-time view of an event log: one ReplayEvent
/// in memory at a time, never the whole log. This is the ingestion path a
/// multi-million-event file goes through (`maps_cli replay`, the replay
/// driver) — peak footprint is one line buffer, independent of log length.
///
/// Blank lines and '#' comments are skipped transparently. With
/// skip_bad_events, malformed lines are warned about, counted in stats(),
/// and dropped; otherwise the first malformed line fails Next() with its
/// 1-based line number. The stream must outlive the reader.
class ReplayEventStream {
 public:
  explicit ReplayEventStream(std::istream& in,
                             const ReplayLoadOptions& options = {});

  ReplayEventStream(const ReplayEventStream&) = delete;
  ReplayEventStream& operator=(const ReplayEventStream&) = delete;

  /// Advances to the next event. Returns true and fills `out`, or false at
  /// end of input. Errors (malformed line in strict mode) carry the line
  /// number; the stream is unusable afterwards.
  Result<bool> Next(ReplayEvent* out);

  /// Skip/load counters so far (final after Next() returned false).
  const ReplayLoadStats& stats() const { return stats_; }

  /// 1-based number of the last line read (0 before the first read).
  int64_t line_number() const { return lineno_; }

  /// Heap footprint of the reader itself — the line buffer — demonstrating
  /// O(1) ingestion memory.
  size_t FootprintBytes() const { return line_.capacity(); }

  /// Resolves "ingest.*" counters from `registry` (no-op when null): lines
  /// read, bytes read, events parsed, lines skipped. All deterministic —
  /// pure functions of the log content. One null-check per counter when
  /// detached (DESIGN.md §16).
  void AttachMetrics(obs::MetricsRegistry* registry);

 private:
  std::istream& in_;
  ReplayLoadOptions options_;
  ReplayLoadStats stats_;
  std::string line_;
  int64_t lineno_ = 0;
  bool done_ = false;
  obs::Counter* m_lines_ = nullptr;
  obs::Counter* m_bytes_ = nullptr;
  obs::Counter* m_events_ = nullptr;
  obs::Counter* m_skipped_ = nullptr;
};

/// \brief Reads a whole event log into memory, skipping blanks and '#'
/// comments. Errors carry the 1-based line number and the offending field.
/// Prefer ReplayEventStream for logs of unbounded size — this materializes
/// every event.
Result<std::vector<ReplayEvent>> LoadReplayLog(std::istream& in,
                                               const ReplayLoadOptions& options,
                                               ReplayLoadStats* stats = nullptr);

/// \brief Strict load: any malformed line fails with its line number.
Result<std::vector<ReplayEvent>> LoadReplayLog(std::istream& in);

}  // namespace maps
