// Checkpoint container format and file helpers for MarketEngine
// (DESIGN.md §12; field-by-field spec in docs/checkpoint_format.md).
//
// A checkpoint is a self-describing binary blob:
//
//   magic "MAPSCKPT" (8 bytes)
//   u32 format version
//   u32 section count
//   section*: u32 section id, u64 payload length, u32 CRC-32(payload),
//             payload bytes
//
// Sections appear in ascending id order, each exactly once; payloads are
// the little-endian StateWriter encodings of util/serial.h. Readers verify
// the magic, version, section structure, and every CRC before decoding a
// single field, and every decode failure carries a byte offset — corrupt
// or truncated files are rejected with a Status, never undefined behavior.
// MarketEngine::SaveCheckpoint / RestoreFromCheckpoint (implemented here,
// declared in market_engine.h) produce and consume this format; the
// restore commits all-or-nothing.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/serial.h"
#include "util/status.h"

namespace maps {

/// First bytes of every single-engine checkpoint file.
inline constexpr char kCheckpointMagic[8] = {'M', 'A', 'P', 'S',
                                             'C', 'K', 'P', 'T'};

/// Container format version produced by SaveCheckpoint. Readers reject
/// other versions (no cross-version migration yet; see DESIGN.md §12 for
/// the compatibility policy). Version 2 added the per-worker-record
/// `indexed` flag (sharded extraction tombstones).
inline constexpr uint32_t kCheckpointFormatVersion = 2;

/// Number of sections in a single-engine checkpoint container (config,
/// core counters, workers, staged tasks, pending bits, RNG, strategy).
inline constexpr uint32_t kCheckpointNumSections = 7;

/// First bytes of a ShardedMarketEngine checkpoint file (its container
/// embeds one kCheckpointMagic blob per region; see
/// docs/checkpoint_format.md).
inline constexpr char kShardedCheckpointMagic[8] = {'M', 'A', 'P', 'S',
                                                    'S', 'H', 'R', 'D'};

/// Container format version produced by ShardedMarketEngine::SaveCheckpoint.
/// Version 2 added the per-route hidden valuation and the routing layer's
/// deferred_tasks counter (failure domains, DESIGN.md §15).
inline constexpr uint32_t kShardedCheckpointFormatVersion = 2;

namespace internal {

/// Appends one container section — u32 id, u64 payload length, u32
/// CRC-32(payload), payload bytes — to a blob under construction.
void AppendCheckpointSection(uint32_t id, const std::string& payload,
                             StateWriter* out);

/// Validates a container's structure — `magic` (8 bytes), `version`,
/// exactly `num_sections` sections in ascending id order 1..N, every
/// length and CRC — and extracts the payloads. No payload field is decoded
/// here, so structural corruption is caught (with a byte offset) before any
/// interpretation. `what` names the container in error messages.
Status ParseCheckpointContainer(const std::string& data, const char* magic,
                                uint32_t version, uint32_t num_sections,
                                const char* what,
                                std::vector<std::string>* payloads);

}  // namespace internal

/// Write attempts per WriteCheckpointFile call before giving up: transient
/// I/O errors (and injected kCheckpointWriteError faults at specific
/// attempts) are retried from scratch, each attempt a fresh tmp write.
inline constexpr int kCheckpointWriteAttempts = 3;

/// \brief Atomically replaces `path` with `data`: writes `path`.tmp,
/// flushes and fsyncs it, renames over `path`, then fsyncs the containing
/// directory so the rename itself is durable. A crash mid-write leaves
/// either the previous checkpoint or a stray .tmp — never a half-written
/// file under the final name. I/O failures are retried up to
/// kCheckpointWriteAttempts times before the last error is returned.
/// Honors injected faults: kCheckpointWriteError fails one attempt;
/// kCheckpointTornWrite truncates the payload mid-write and "succeeds",
/// modeling a lying disk — readers reject the torn file via its CRCs.
Status WriteCheckpointFile(const std::string& path, const std::string& data);

/// \brief Reads the whole file at `path` into `data`.
Status ReadCheckpointFile(const std::string& path, std::string* data);

/// \brief Keep-last-N checkpoint rotation: scans `dir` for files named
/// `prefix<number>.ckpt`, keeps the `keep` highest-numbered ones, and
/// removes the rest (prune AFTER the newest file was atomically renamed
/// into place, so the retained set never passes through a state with
/// fewer than `keep` good checkpoints). Files whose name does not parse
/// as `prefix<number>.ckpt` are left alone. `removed`, when non-null, is
/// cleared and receives the full paths pruned, oldest first. `keep` must
/// be >= 1.
Status PruneCheckpointFiles(const std::string& dir, const std::string& prefix,
                            int keep, std::vector<std::string>* removed);

}  // namespace maps
