// Checkpoint container format and file helpers for MarketEngine
// (DESIGN.md §12; field-by-field spec in docs/checkpoint_format.md).
//
// A checkpoint is a self-describing binary blob:
//
//   magic "MAPSCKPT" (8 bytes)
//   u32 format version
//   u32 section count
//   section*: u32 section id, u64 payload length, u32 CRC-32(payload),
//             payload bytes
//
// Sections appear in ascending id order, each exactly once; payloads are
// the little-endian StateWriter encodings of util/serial.h. Readers verify
// the magic, version, section structure, and every CRC before decoding a
// single field, and every decode failure carries a byte offset — corrupt
// or truncated files are rejected with a Status, never undefined behavior.
// MarketEngine::SaveCheckpoint / RestoreFromCheckpoint (implemented here,
// declared in market_engine.h) produce and consume this format; the
// restore commits all-or-nothing.

#pragma once

#include <cstdint>
#include <string>

#include "util/status.h"

namespace maps {

/// First bytes of every checkpoint file.
inline constexpr char kCheckpointMagic[8] = {'M', 'A', 'P', 'S',
                                             'C', 'K', 'P', 'T'};

/// Container format version produced by SaveCheckpoint. Readers reject
/// other versions (no cross-version migration yet; see DESIGN.md §12 for
/// the compatibility policy).
inline constexpr uint32_t kCheckpointFormatVersion = 1;

/// \brief Atomically replaces `path` with `data`: writes `path`.tmp,
/// flushes and fsyncs it, then renames over `path`. A crash mid-write
/// leaves either the previous checkpoint or a stray .tmp — never a
/// half-written file under the final name.
Status WriteCheckpointFile(const std::string& path, const std::string& data);

/// \brief Reads the whole file at `path` into `data`.
Status ReadCheckpointFile(const std::string& path, std::string* data);

}  // namespace maps
