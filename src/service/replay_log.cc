#include "service/replay_log.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <utility>

namespace maps {

namespace {

/// Minimal flat-JSON-object scanner: {"key": value, ...} where value is a
/// double-quoted string (no escapes needed by the schema), a number, true,
/// false, or null. Nested objects/arrays are rejected — the event schema is
/// flat by design.
Result<std::map<std::string, std::string>> ParseFlatJson(
    const std::string& line) {
  std::map<std::string, std::string> out;
  size_t i = 0;
  const auto skip_ws = [&] {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
  };
  const auto fail = [&](const std::string& what) {
    return Status::InvalidArgument(what + " at column " + std::to_string(i) +
                                   " of: " + line);
  };

  skip_ws();
  if (i >= line.size() || line[i] != '{') return fail("expected '{'");
  ++i;
  skip_ws();
  if (i < line.size() && line[i] == '}') {
    ++i;
  } else {
    while (true) {
      skip_ws();
      if (i >= line.size() || line[i] != '"') return fail("expected key");
      const size_t key_end = line.find('"', i + 1);
      if (key_end == std::string::npos) return fail("unterminated key");
      const std::string key = line.substr(i + 1, key_end - i - 1);
      i = key_end + 1;
      skip_ws();
      if (i >= line.size() || line[i] != ':') return fail("expected ':'");
      ++i;
      skip_ws();
      std::string value;
      if (i < line.size() && line[i] == '"') {
        const size_t val_end = line.find('"', i + 1);
        if (val_end == std::string::npos) return fail("unterminated string");
        value = line.substr(i + 1, val_end - i - 1);
        i = val_end + 1;
      } else {
        const size_t start = i;
        while (i < line.size() && line[i] != ',' && line[i] != '}' &&
               !std::isspace(static_cast<unsigned char>(line[i]))) {
          ++i;
        }
        value = line.substr(start, i - start);
        if (value.empty()) return fail("expected value");
        if (value == "null") value.clear();
        const char c = value.empty() ? '\0' : value[0];
        if (!value.empty() && c != 't' && c != 'f' && c != '-' &&
            !std::isdigit(static_cast<unsigned char>(c))) {
          return fail("unsupported value '" + value + "'");
        }
      }
      if (out.count(key) > 0) return fail("duplicate key '" + key + "'");
      out[key] = value;
      skip_ws();
      if (i < line.size() && line[i] == ',') {
        ++i;
        continue;
      }
      if (i < line.size() && line[i] == '}') {
        ++i;
        break;
      }
      return fail("expected ',' or '}'");
    }
  }
  skip_ws();
  if (i != line.size()) return fail("trailing characters");
  return out;
}

using Fields = std::map<std::string, std::string>;

bool GetNum(const Fields& f, const std::string& key, double* out) {
  const auto it = f.find(key);
  if (it == f.end() || it->second.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(it->second.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool GetBool(const Fields& f, const std::string& key, bool* out) {
  const auto it = f.find(key);
  if (it == f.end()) return false;
  if (it->second == "true" || it->second == "1") {
    *out = true;
    return true;
  }
  if (it->second == "false" || it->second == "0") {
    *out = false;
    return true;
  }
  return false;
}

Status MissingField(const std::string& event, const std::string& key) {
  return Status::InvalidArgument(event + " event needs numeric '" + key +
                                 "'");
}

}  // namespace

Result<ReplayEvent> ParseReplayEventLine(const std::string& line) {
  auto fields_or = ParseFlatJson(line);
  MAPS_RETURN_NOT_OK(fields_or.status());
  const Fields& f = std::move(fields_or).ValueOrDie();

  const auto kind_it = f.find("event");
  if (kind_it == f.end()) {
    return Status::InvalidArgument("missing \"event\" field: " + line);
  }
  const std::string& kind = kind_it->second;
  ReplayEvent ev;
  double num = 0.0;

  if (kind == "submit_task") {
    ev.kind = ReplayEvent::Kind::kSubmitTask;
    if (!GetNum(f, "id", &num)) return MissingField(kind, "id");
    ev.task.id = static_cast<TaskId>(num);
    if (!GetNum(f, "ox", &ev.task.origin.x)) return MissingField(kind, "ox");
    if (!GetNum(f, "oy", &ev.task.origin.y)) return MissingField(kind, "oy");
    if (!GetNum(f, "dx", &ev.task.destination.x)) {
      return MissingField(kind, "dx");
    }
    if (!GetNum(f, "dy", &ev.task.destination.y)) {
      return MissingField(kind, "dy");
    }
    if (GetNum(f, "distance", &num)) ev.task.distance = num;
    if (GetNum(f, "valuation", &num)) {
      ev.valuation = num;
      ev.has_valuation = true;
    }
    return ev;
  }
  if (kind == "add_worker") {
    ev.kind = ReplayEvent::Kind::kAddWorker;
    if (!GetNum(f, "id", &num)) return MissingField(kind, "id");
    ev.worker.id = static_cast<WorkerId>(num);
    if (!GetNum(f, "x", &ev.worker.location.x)) return MissingField(kind, "x");
    if (!GetNum(f, "y", &ev.worker.location.y)) return MissingField(kind, "y");
    if (!GetNum(f, "radius", &ev.worker.radius)) {
      return MissingField(kind, "radius");
    }
    if (GetNum(f, "duration", &num)) {
      ev.worker.duration = static_cast<int32_t>(num);
    }
    return ev;
  }
  if (kind == "remove_worker") {
    ev.kind = ReplayEvent::Kind::kRemoveWorker;
    if (!GetNum(f, "id", &num)) return MissingField(kind, "id");
    ev.id = static_cast<int64_t>(num);
    return ev;
  }
  if (kind == "observe_acceptance") {
    ev.kind = ReplayEvent::Kind::kObserveAcceptance;
    if (!GetNum(f, "task", &num)) return MissingField(kind, "task");
    ev.id = static_cast<int64_t>(num);
    if (!GetBool(f, "accepted", &ev.accepted)) {
      return Status::InvalidArgument(
          "observe_acceptance event needs boolean 'accepted'");
    }
    return ev;
  }
  if (kind == "close_period") {
    ev.kind = ReplayEvent::Kind::kClosePeriod;
    return ev;
  }
  return Status::InvalidArgument("unknown event kind '" + kind + "'");
}

Result<std::vector<ReplayEvent>> LoadReplayLog(std::istream& in) {
  std::vector<ReplayEvent> events;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    size_t first = 0;
    while (first < line.size() &&
           std::isspace(static_cast<unsigned char>(line[first]))) {
      ++first;
    }
    if (first == line.size() || line[first] == '#') continue;
    auto ev = ParseReplayEventLine(line);
    if (!ev.ok()) {
      return Status::InvalidArgument("line " + std::to_string(lineno) + ": " +
                                     ev.status().message());
    }
    events.push_back(std::move(ev).ValueOrDie());
  }
  return events;
}

}  // namespace maps
