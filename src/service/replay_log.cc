#include "service/replay_log.h"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <utility>

#include "obs/metrics.h"
#include "util/fault_injector.h"
#include "util/logging.h"

namespace maps {

namespace {

/// Minimal flat-JSON-object scanner: {"key": value, ...} where value is a
/// double-quoted string (no escapes needed by the schema), a number, true,
/// false, or null. Nested objects/arrays are rejected — the event schema is
/// flat by design.
Result<std::map<std::string, std::string>> ParseFlatJson(
    const std::string& line) {
  std::map<std::string, std::string> out;
  size_t i = 0;
  const auto skip_ws = [&] {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
  };
  const auto fail = [&](const std::string& what) {
    return Status::InvalidArgument(what + " at column " + std::to_string(i) +
                                   " of: " + line);
  };

  skip_ws();
  if (i >= line.size() || line[i] != '{') return fail("expected '{'");
  ++i;
  skip_ws();
  if (i < line.size() && line[i] == '}') {
    ++i;
  } else {
    while (true) {
      skip_ws();
      if (i >= line.size() || line[i] != '"') return fail("expected key");
      const size_t key_end = line.find('"', i + 1);
      if (key_end == std::string::npos) return fail("unterminated key");
      const std::string key = line.substr(i + 1, key_end - i - 1);
      i = key_end + 1;
      skip_ws();
      if (i >= line.size() || line[i] != ':') return fail("expected ':'");
      ++i;
      skip_ws();
      std::string value;
      if (i < line.size() && line[i] == '"') {
        const size_t val_end = line.find('"', i + 1);
        if (val_end == std::string::npos) return fail("unterminated string");
        value = line.substr(i + 1, val_end - i - 1);
        i = val_end + 1;
      } else {
        const size_t start = i;
        while (i < line.size() && line[i] != ',' && line[i] != '}' &&
               !std::isspace(static_cast<unsigned char>(line[i]))) {
          ++i;
        }
        value = line.substr(start, i - start);
        if (value.empty()) return fail("expected value");
        if (value == "null") value.clear();
        const char c = value.empty() ? '\0' : value[0];
        if (!value.empty() && c != 't' && c != 'f' && c != '-' &&
            !std::isdigit(static_cast<unsigned char>(c))) {
          return fail("unsupported value '" + value + "'");
        }
      }
      if (out.count(key) > 0) return fail("duplicate key '" + key + "'");
      out[key] = value;
      skip_ws();
      if (i < line.size() && line[i] == ',') {
        ++i;
        continue;
      }
      if (i < line.size() && line[i] == '}') {
        ++i;
        break;
      }
      return fail("expected ',' or '}'");
    }
  }
  skip_ws();
  if (i != line.size()) return fail("trailing characters");
  return out;
}

using Fields = std::map<std::string, std::string>;

/// Tri-state field decode: distinguishes an absent (or null) key from a
/// present but malformed value so errors can name what went wrong.
enum class Field { kOk, kMissing, kBad };

/// Full-string strtod that additionally rejects NaN and infinity (both
/// literal "nan"/"inf" spellings and overflowing decimals like 1e999).
bool ParseFiniteDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  if (!std::isfinite(v)) return false;
  *out = v;
  return true;
}

/// Full-string strtoll: rejects non-integral values ("1.5", "2e3"),
/// overflow beyond int64, and any trailing junk. Never routes through a
/// double, so large ids keep every bit.
bool ParseInt64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno == ERANGE) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

Field GetFiniteDouble(const Fields& f, const std::string& key, double* out) {
  const auto it = f.find(key);
  if (it == f.end() || it->second.empty()) return Field::kMissing;
  return ParseFiniteDouble(it->second, out) ? Field::kOk : Field::kBad;
}

Field GetInt64(const Fields& f, const std::string& key, int64_t* out) {
  const auto it = f.find(key);
  if (it == f.end() || it->second.empty()) return Field::kMissing;
  return ParseInt64(it->second, out) ? Field::kOk : Field::kBad;
}

Field GetInt32(const Fields& f, const std::string& key, int32_t* out) {
  int64_t v = 0;
  const Field r = GetInt64(f, key, &v);
  if (r != Field::kOk) return r;
  if (v < std::numeric_limits<int32_t>::min() ||
      v > std::numeric_limits<int32_t>::max()) {
    return Field::kBad;
  }
  *out = static_cast<int32_t>(v);
  return Field::kOk;
}

Field GetBool(const Fields& f, const std::string& key, bool* out) {
  const auto it = f.find(key);
  if (it == f.end() || it->second.empty()) return Field::kMissing;
  if (it->second == "true" || it->second == "1") {
    *out = true;
    return Field::kOk;
  }
  if (it->second == "false" || it->second == "0") {
    *out = false;
    return Field::kOk;
  }
  return Field::kBad;
}

Status BadField(const Fields& f, const std::string& event,
                const std::string& key, const char* expect) {
  return Status::InvalidArgument(event + " event field '" + key +
                                 "' must be " + expect + ", got '" +
                                 f.at(key) + "'");
}

/// Maps a required field's decode result to OK or an error naming the
/// event, the field, and (for malformed values) the rejected text.
Status RequireField(Field r, const Fields& f, const std::string& event,
                    const std::string& key, const char* expect) {
  if (r == Field::kOk) return Status::OK();
  if (r == Field::kMissing) {
    return Status::InvalidArgument(event + " event is missing required field '" +
                                   key + "' (" + expect + ")");
  }
  return BadField(f, event, key, expect);
}

/// Like RequireField but tolerates an absent key; `present` reports
/// whether the value was decoded. A present-but-malformed value still
/// fails — optional fields are not a license for garbage.
Status OptionalField(Field r, bool* present, const Fields& f,
                     const std::string& event, const std::string& key,
                     const char* expect) {
  *present = r == Field::kOk;
  if (r == Field::kBad) return BadField(f, event, key, expect);
  return Status::OK();
}

}  // namespace

Result<ReplayEvent> ParseReplayEventLine(const std::string& line) {
  auto fields_or = ParseFlatJson(line);
  MAPS_RETURN_NOT_OK(fields_or.status());
  const Fields& f = std::move(fields_or).ValueOrDie();

  const auto kind_it = f.find("event");
  if (kind_it == f.end()) {
    return Status::InvalidArgument("missing \"event\" field: " + line);
  }
  const std::string& kind = kind_it->second;
  constexpr const char* kInt = "a 64-bit integer";
  constexpr const char* kInt32 = "a 32-bit integer";
  constexpr const char* kNum = "a finite number";
  ReplayEvent ev;
  double num = 0.0;
  bool present = false;

  if (kind == "submit_task") {
    ev.kind = ReplayEvent::Kind::kSubmitTask;
    int64_t id = 0;
    MAPS_RETURN_NOT_OK(RequireField(GetInt64(f, "id", &id), f, kind, "id",
                                    kInt));
    ev.task.id = id;
    MAPS_RETURN_NOT_OK(RequireField(GetFiniteDouble(f, "ox", &ev.task.origin.x),
                                    f, kind, "ox", kNum));
    MAPS_RETURN_NOT_OK(RequireField(GetFiniteDouble(f, "oy", &ev.task.origin.y),
                                    f, kind, "oy", kNum));
    MAPS_RETURN_NOT_OK(
        RequireField(GetFiniteDouble(f, "dx", &ev.task.destination.x), f, kind,
                     "dx", kNum));
    MAPS_RETURN_NOT_OK(
        RequireField(GetFiniteDouble(f, "dy", &ev.task.destination.y), f, kind,
                     "dy", kNum));
    MAPS_RETURN_NOT_OK(OptionalField(GetFiniteDouble(f, "distance", &num),
                                     &present, f, kind, "distance", kNum));
    if (present) ev.task.distance = num;
    MAPS_RETURN_NOT_OK(OptionalField(GetFiniteDouble(f, "valuation", &num),
                                     &present, f, kind, "valuation", kNum));
    if (present) {
      ev.valuation = num;
      ev.has_valuation = true;
    }
    return ev;
  }
  if (kind == "add_worker") {
    ev.kind = ReplayEvent::Kind::kAddWorker;
    int64_t id = 0;
    MAPS_RETURN_NOT_OK(RequireField(GetInt64(f, "id", &id), f, kind, "id",
                                    kInt));
    ev.worker.id = id;
    MAPS_RETURN_NOT_OK(
        RequireField(GetFiniteDouble(f, "x", &ev.worker.location.x), f, kind,
                     "x", kNum));
    MAPS_RETURN_NOT_OK(
        RequireField(GetFiniteDouble(f, "y", &ev.worker.location.y), f, kind,
                     "y", kNum));
    MAPS_RETURN_NOT_OK(RequireField(GetFiniteDouble(f, "radius",
                                                    &ev.worker.radius),
                                    f, kind, "radius", kNum));
    int32_t duration = 0;
    MAPS_RETURN_NOT_OK(OptionalField(GetInt32(f, "duration", &duration),
                                     &present, f, kind, "duration", kInt32));
    if (present) ev.worker.duration = duration;
    return ev;
  }
  if (kind == "remove_worker") {
    ev.kind = ReplayEvent::Kind::kRemoveWorker;
    MAPS_RETURN_NOT_OK(RequireField(GetInt64(f, "id", &ev.id), f, kind, "id",
                                    kInt));
    return ev;
  }
  if (kind == "observe_acceptance") {
    ev.kind = ReplayEvent::Kind::kObserveAcceptance;
    MAPS_RETURN_NOT_OK(RequireField(GetInt64(f, "task", &ev.id), f, kind,
                                    "task", kInt));
    MAPS_RETURN_NOT_OK(RequireField(GetBool(f, "accepted", &ev.accepted), f,
                                    kind, "accepted", "a boolean"));
    return ev;
  }
  if (kind == "close_period") {
    ev.kind = ReplayEvent::Kind::kClosePeriod;
    return ev;
  }
  return Status::InvalidArgument("unknown event kind '" + kind + "'");
}

ReplayEventStream::ReplayEventStream(std::istream& in,
                                     const ReplayLoadOptions& options)
    : in_(in), options_(options) {}

void ReplayEventStream::AttachMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  const auto det = obs::Determinism::kDeterministic;
  m_lines_ = registry->GetCounter("ingest.lines", det);
  m_bytes_ = registry->GetCounter("ingest.bytes", det);
  m_events_ = registry->GetCounter("ingest.events", det);
  m_skipped_ = registry->GetCounter("ingest.lines_skipped", det);
}

Result<bool> ReplayEventStream::Next(ReplayEvent* out) {
  if (done_) return false;
  while (std::getline(in_, line_)) {
    ++lineno_;
    if (m_lines_ != nullptr) m_lines_->Increment();
    // Payload bytes only (the stripped '\n' is not counted) — a pure
    // function of the log content, so the counter is deterministic.
    if (m_bytes_ != nullptr) {
      m_bytes_->Add(static_cast<int64_t>(line_.size()));
    }
    if (FaultInjector::Global().ShouldFire(FaultRule::Kind::kReplayReadError,
                                           -1,
                                           static_cast<int32_t>(lineno_))) {
      // An injected structural read failure: the stream is broken, not the
      // line — skip_bad_events does not paper over it.
      done_ = true;
      return Status::Internal("injected replay read error at line " +
                              std::to_string(lineno_));
    }
    size_t first = 0;
    while (first < line_.size() &&
           std::isspace(static_cast<unsigned char>(line_[first]))) {
      ++first;
    }
    if (first == line_.size() || line_[first] == '#') continue;
    auto ev = ParseReplayEventLine(line_);
    if (!ev.ok()) {
      if (options_.skip_bad_events) {
        ++stats_.lines_skipped;
        if (m_skipped_ != nullptr) m_skipped_->Increment();
        MAPS_LOG(Warning) << "replay log line " << lineno_
                          << " skipped: " << ev.status().message();
        continue;
      }
      done_ = true;
      return Status::InvalidArgument("line " + std::to_string(lineno_) + ": " +
                                     ev.status().message());
    }
    ++stats_.events_loaded;
    if (m_events_ != nullptr) m_events_->Increment();
    *out = std::move(ev).ValueOrDie();
    return true;
  }
  done_ = true;
  return false;
}

Result<std::vector<ReplayEvent>> LoadReplayLog(
    std::istream& in, const ReplayLoadOptions& options,
    ReplayLoadStats* stats) {
  std::vector<ReplayEvent> events;
  ReplayEventStream stream(in, options);
  ReplayEvent ev;
  while (true) {
    auto more = stream.Next(&ev);
    MAPS_RETURN_NOT_OK(more.status());
    if (!more.ValueOrDie()) break;
    events.push_back(std::move(ev));
  }
  if (stream.stats().lines_skipped > 0) {
    MAPS_LOG(Warning) << "replay log: skipped "
                      << stream.stats().lines_skipped
                      << " malformed line(s), loaded "
                      << stream.stats().events_loaded << " event(s)";
  }
  if (stats != nullptr) *stats = stream.stats();
  return events;
}

Result<std::vector<ReplayEvent>> LoadReplayLog(std::istream& in) {
  return LoadReplayLog(in, ReplayLoadOptions{}, nullptr);
}

}  // namespace maps
