#include "service/market_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace maps {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

int64_t Nanos(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count();
}

}  // namespace

const char* RegionHealthStateName(RegionHealth::State state) {
  switch (state) {
    case RegionHealth::State::kNormal:
      return "normal";
    case RegionHealth::State::kQuarantined:
      return "quarantined";
    case RegionHealth::State::kRecovered:
      return "recovered";
    case RegionHealth::State::kFailed:
      return "failed";
  }
  return "?";
}

void RejectionCounterHandles::Resolve(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  const auto det = obs::Determinism::kDeterministic;
  duplicate_tasks = registry->GetCounter("engine.reject.duplicate_tasks", det);
  unknown_worker_removals =
      registry->GetCounter("engine.reject.unknown_worker_removals", det);
  busy_worker_removals =
      registry->GetCounter("engine.reject.busy_worker_removals", det);
  orphan_acceptances =
      registry->GetCounter("engine.reject.orphan_acceptances", det);
  deferred_tasks = registry->GetCounter("engine.reject.deferred_tasks", det);
}

MarketEngine::MarketEngine(const GridPartition* grid,
                           PricingStrategy* strategy,
                           const EngineOptions& options)
    : grid_(grid),
      strategy_(strategy),
      options_(options),
      reposition_rng_(options.lifecycle.reposition_seed) {
  MAPS_CHECK(grid_ != nullptr);
  MAPS_CHECK(strategy_ != nullptr);
  pipelined_ = options_.pipeline_periods && options_.pool != nullptr;
  // Lent unconditionally so a pool-less engine clears any pool a previous
  // owner lent to a reused strategy (which may be destroyed by now).
  strategy_->LendPool(options_.pool);
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry* m = options_.metrics;
    const auto det = obs::Determinism::kDeterministic;
    const auto wall = obs::Determinism::kWallClock;
    m_prebuild_ns_ = m->GetHistogram("engine.close.prebuild_ns", wall);
    m_price_round_ns_ = m->GetHistogram("engine.close.price_round_ns", wall);
    m_matching_ns_ = m->GetHistogram("engine.close.matching_ns", wall);
    m_mc_diag_ns_ = m->GetHistogram("engine.close.mc_diag_ns", wall);
    m_ckpt_save_ns_ = m->GetHistogram("checkpoint.save_ns", wall);
    m_ckpt_restore_ns_ = m->GetHistogram("checkpoint.restore_ns", wall);
    m_ckpt_bytes_ = m->GetHistogram("checkpoint.state_bytes", det);
    m_periods_closed_ = m->GetCounter("engine.close.periods", det);
    m_dead_periods_ = m->GetCounter("engine.close.dead_periods", det);
    m_reject_.Resolve(m);
  }
}

MarketEngine::~MarketEngine() { DrainPrebuilds(); }

void MarketEngine::DrainPrebuilds() {
  // A prebuild job captures `this`; no exit path may leave one running.
  for (auto& latch : prebuild_latch_) {
    if (latch != nullptr) {
      latch->Wait();
      latch.reset();
    }
  }
}

Status MarketEngine::CheckTaskGrids(const Task* begin, const Task* end) const {
  for (const Task* t = begin; t != end; ++t) {
    if (t->grid < 0 || t->grid >= grid_->num_cells()) {
      return Status::InvalidArgument(
          "task " + std::to_string(t->id) + " grid " +
          std::to_string(t->grid) + " outside the partition");
    }
  }
  return Status::OK();
}

Status MarketEngine::SubmitTask(const Task& task, double valuation) {
  Stage& stage = stages_[period_ & 1];
  if (stage.sealed) {
    return Status::FailedPrecondition(
        "period " + std::to_string(period_) +
        " was staged in bulk; SubmitTask is closed for it");
  }
  MAPS_RETURN_NOT_OK(CheckTaskGrids(&task, &task + 1));
  if (!stage.ids.insert(task.id).second) {
    obs::BumpMirrored(&rejections_.duplicate_tasks, m_reject_.duplicate_tasks);
    return Status::AlreadyExists("task id " + std::to_string(task.id) +
                                 " already submitted for period " +
                                 std::to_string(period_));
  }
  stage.tasks.push_back(task);
  stage.valuations.push_back(valuation);
  return Status::OK();
}

Status MarketEngine::StageNextPeriodTasks(const Task* begin, const Task* end,
                                          const double* valuations) {
  Stage& stage = stages_[(period_ + 1) & 1];
  if (stage.sealed || !stage.tasks.empty()) {
    return Status::FailedPrecondition(
        "period " + std::to_string(period_ + 1) + " already has staged tasks");
  }
  MAPS_RETURN_NOT_OK(CheckTaskGrids(begin, end));
  stage.ids.clear();
  for (const Task* task = begin; task != end; ++task) {
    if (!stage.ids.insert(task->id).second) {
      stage.ids.clear();
      obs::BumpMirrored(&rejections_.duplicate_tasks,
                        m_reject_.duplicate_tasks);
      return Status::InvalidArgument(
          "staged batch repeats task id " + std::to_string(task->id) +
          " for period " + std::to_string(period_ + 1));
    }
  }
  stage.tasks.assign(begin, end);
  if (valuations != nullptr) {
    stage.valuations.assign(valuations, valuations + (end - begin));
  } else {
    stage.valuations.assign(static_cast<size_t>(end - begin), kNoValuation);
  }
  stage.sealed = true;
  if (pipelined_) {
    // Prebuild the sealed period's task side on the pool: it touches only
    // the OTHER slot and this stage's (now immutable until the close) task
    // copy, so it is safe alongside the current period's ClosePeriod() and
    // bit-identical to the synchronous build (DESIGN.md §10/§11).
    const int slot = (period_ + 1) & 1;
    const int32_t p = period_ + 1;
    prebuild_latch_[slot] = std::make_unique<internal::Latch>(1);
    internal::Latch* latch = prebuild_latch_[slot].get();
    options_.pool->Submit([this, slot, p, latch](int /*worker*/) {
      const Stage& s = stages_[slot];
      slots_[slot].ResetTasks(grid_, p, s.tasks.data(),
                              s.tasks.data() + s.tasks.size());
      latch->Done();
    });
  }
  return Status::OK();
}

Status MarketEngine::AddWorker(const Worker& worker) {
  if (worker_index_.count(worker.id) > 0) {
    return Status::AlreadyExists("worker id " + std::to_string(worker.id) +
                                 " already admitted");
  }
  WorkerRecord rec;
  rec.base = worker;
  if (rec.base.grid < 0) rec.base.grid = grid_->CellOf(rec.base.location);
  if (rec.base.grid < 0 || rec.base.grid >= grid_->num_cells()) {
    return Status::InvalidArgument("worker " + std::to_string(worker.id) +
                                   " outside the partition");
  }
  rec.next_free = period_;
  rec.retire_at = worker.duration == Worker::kUnlimitedDuration
                      ? std::numeric_limits<int32_t>::max()
                      : period_ + worker.duration;
  const int idx = static_cast<int>(workers_.size());
  workers_.push_back(rec);
  matched_flag_.push_back(0);
  idle_.push_back(idx);
  worker_index_[worker.id] = idx;
  return Status::OK();
}

Status MarketEngine::RemoveWorker(WorkerId id) {
  auto it = worker_index_.find(id);
  if (it == worker_index_.end()) {
    obs::BumpMirrored(&rejections_.unknown_worker_removals,
                      m_reject_.unknown_worker_removals);
    return Status::NotFound("worker id " + std::to_string(id) +
                            " was never added");
  }
  // Retiring as of the open period drops an idle worker at the next
  // availability scan; a busy worker finishes its ride and is dropped on
  // return. Removal is idempotent. Busy removals are honored but counted:
  // callers often believe they are removing an idle worker.
  WorkerRecord& rec = workers_[it->second];
  if (!rec.consumed && rec.next_free > period_ && period_ < rec.retire_at) {
    obs::BumpMirrored(&rejections_.busy_worker_removals,
                      m_reject_.busy_worker_removals);
  }
  rec.retire_at = std::min(rec.retire_at, period_);
  return Status::OK();
}

Status MarketEngine::ObserveAcceptance(TaskId task, bool accepted) {
  pending_accept_[task] = accepted;
  return Status::OK();
}

// --- Sharded-serving hooks (DESIGN.md §13) -------------------------------
// Eligibility for all of them: the worker was offered at the most recently
// closed period and went unmatched — i.e. it sits on the idle list, is not
// consumed or retired, and became free before the now-open period
// (next_free < period_). Workers added during the open period or still on a
// ride fail the next_free test; before the first close nothing qualifies.

namespace {

Status NotStitchable(WorkerId id, const char* why) {
  return Status::FailedPrecondition("worker id " + std::to_string(id) + " " +
                                    why);
}

}  // namespace

void MarketEngine::CollectIdleWorkers(std::vector<Worker>* out) const {
  for (int idx : idle_) {
    const WorkerRecord& rec = workers_[idx];
    if (rec.consumed || rec.retire_at < period_ || rec.next_free >= period_) {
      continue;
    }
    out->push_back(rec.base);
  }
}

Status MarketEngine::ConsumeIdleWorker(WorkerId id) {
  auto it = worker_index_.find(id);
  if (it == worker_index_.end()) {
    return Status::NotFound("worker id " + std::to_string(id) +
                            " is unknown to this engine");
  }
  WorkerRecord& rec = workers_[it->second];
  if (rec.consumed) return NotStitchable(id, "was already consumed");
  if (rec.retire_at < period_) return NotStitchable(id, "has retired");
  if (rec.next_free >= period_) {
    return NotStitchable(id, "was not idle at the last close");
  }
  // The idle list drops consumed records at the next availability scan.
  rec.consumed = true;
  return Status::OK();
}

Status MarketEngine::DispatchIdleWorker(WorkerId id, const Point& destination,
                                        int32_t next_free) {
  auto it = worker_index_.find(id);
  if (it == worker_index_.end()) {
    return Status::NotFound("worker id " + std::to_string(id) +
                            " is unknown to this engine");
  }
  if (next_free < period_) {
    return Status::InvalidArgument(
        "dispatch of worker " + std::to_string(id) + " ends at period " +
        std::to_string(next_free) + ", before the open period " +
        std::to_string(period_));
  }
  const int idx = it->second;
  WorkerRecord& rec = workers_[idx];
  if (rec.consumed) return NotStitchable(id, "was already consumed");
  if (rec.retire_at < period_) return NotStitchable(id, "has retired");
  if (rec.next_free >= period_) {
    return NotStitchable(id, "was not idle at the last close");
  }
  idle_.erase(std::find(idle_.begin(), idle_.end(), idx));
  rec.base.location = destination;
  rec.base.grid = grid_->CellOf(destination);
  rec.next_free = next_free;
  busy_.push({next_free, idx});
  return Status::OK();
}

Status MarketEngine::ExtractIdleWorker(WorkerId id, Worker* base,
                                       int32_t* retire_at) {
  auto it = worker_index_.find(id);
  if (it == worker_index_.end()) {
    return Status::NotFound("worker id " + std::to_string(id) +
                            " is unknown to this engine");
  }
  const int idx = it->second;
  WorkerRecord& rec = workers_[idx];
  if (rec.consumed) return NotStitchable(id, "was already consumed");
  if (rec.retire_at < period_) return NotStitchable(id, "has retired");
  if (rec.next_free >= period_) {
    return NotStitchable(id, "was not idle at the last close");
  }
  *base = rec.base;
  *retire_at = rec.retire_at;
  // Tombstone: the record stays (indices into workers_ are stable) but the
  // id is forgotten, so the worker can be adopted elsewhere — or even
  // re-adopted here later under the same id.
  rec.consumed = true;
  idle_.erase(std::find(idle_.begin(), idle_.end(), idx));
  worker_index_.erase(it);
  return Status::OK();
}

Status MarketEngine::AdoptWorker(const Worker& base, int32_t next_free,
                                 int32_t retire_at) {
  if (worker_index_.count(base.id) > 0) {
    return Status::AlreadyExists("worker id " + std::to_string(base.id) +
                                 " already admitted");
  }
  WorkerRecord rec;
  rec.base = base;
  if (rec.base.grid < 0) rec.base.grid = grid_->CellOf(rec.base.location);
  if (rec.base.grid < 0 || rec.base.grid >= grid_->num_cells()) {
    return Status::InvalidArgument("worker " + std::to_string(base.id) +
                                   " outside the partition");
  }
  rec.next_free = next_free;
  rec.retire_at = retire_at;
  const int idx = static_cast<int>(workers_.size());
  workers_.push_back(rec);
  matched_flag_.push_back(0);
  // Still riding (or freed exactly at the open period): the busy heap
  // returns it at the close of period next_free; already free: offer it at
  // the open period's close.
  if (next_free >= period_) {
    busy_.push({next_free, idx});
  } else {
    idle_.push_back(idx);
  }
  worker_index_[base.id] = idx;
  return Status::OK();
}

void MarketEngine::AdvanceQuietPeriod() {
  DrainPrebuilds();
  const int32_t t = period_;
  // Rides that ended by now return to the idle list in heap (next_free,
  // index) order, exactly as a real close would have returned them.
  while (!busy_.empty() && busy_.top().first <= t) {
    idle_.push_back(busy_.top().second);
    busy_.pop();
  }
  // Drop the open period's events without accounting: the sharded layer
  // already deferred its tasks and kept (or orphan-counted) its bits.
  pending_accept_.clear();
  stages_[t & 1].Clear();
  ++period_;
}

int64_t MarketEngine::num_live_workers() const {
  int64_t live = 0;
  for (const WorkerRecord& rec : workers_) {
    if (!rec.consumed && period_ < rec.retire_at) ++live;
  }
  return live;
}

Status MarketEngine::ClosePeriod(PeriodOutcome* out) {
  if (out == nullptr) return Status::InvalidArgument("null outcome");
  const int32_t t = period_;
  const int slot = t & 1;
  Stage& stage = stages_[slot];
  MarketSnapshot& snapshot = slots_[slot];

  // Finalize the task side: adopt the prebuilt snapshot or build it now.
  // The span covers the latch wait in the pipelined case so it reports the
  // close-path cost actually paid, not the (overlapped) build cost.
  {
    obs::ScopedTimer prebuild_timer(m_prebuild_ns_);
    if (prebuild_latch_[slot] != nullptr) {
      prebuild_latch_[slot]->Wait();
      prebuild_latch_[slot].reset();
    } else {
      snapshot.ResetTasks(grid_, t, stage.tasks.data(),
                          stage.tasks.data() + stage.tasks.size());
    }
  }

  out->period = t;
  out->skipped = false;
  out->prices.clear();
  out->accepted.clear();
  out->matches.clear();
  out->revenue = 0.0;
  out->mc_expected_revenue = 0.0;
  out->num_tasks = static_cast<int32_t>(stage.tasks.size());
  out->num_available_workers = 0;

  const bool single_use = options_.lifecycle.single_use;
  const double speed = options_.lifecycle.speed;

  // Return workers whose ride finished. (Entrants were appended to the idle
  // list by AddWorker during the open period, so the list reads: survivors
  // of earlier periods, then this period's entrants, then returns — the
  // same order the batch loop produced.)
  while (!busy_.empty() && busy_.top().first <= t) {
    idle_.push_back(busy_.top().second);
    busy_.pop();
  }

  // Collect available workers, dropping retired ones permanently.
  period_workers_.clear();
  pool_of_.clear();
  size_t keep = 0;
  for (int idx : idle_) {
    const WorkerRecord& rec = workers_[idx];
    if (rec.consumed || t >= rec.retire_at) continue;
    idle_[keep++] = idx;
    period_workers_.push_back(rec.base);
    pool_of_.push_back(idx);
  }
  idle_.resize(keep);
  out->num_available_workers = static_cast<int32_t>(period_workers_.size());

  // Dead period: nothing to price or match; the strategy is not consulted.
  if (stage.tasks.empty() && period_workers_.empty()) {
    out->skipped = true;
    // No tasks were in the period, so every reported bit is an orphan.
    obs::BumpMirrored(&rejections_.orphan_acceptances,
                      m_reject_.orphan_acceptances,
                      static_cast<int64_t>(pending_accept_.size()));
    out->rejections = rejections_;
    pending_accept_.clear();
    stage.Clear();
    if (m_periods_closed_ != nullptr) m_periods_closed_->Increment();
    if (m_dead_periods_ != nullptr) m_dead_periods_->Increment();
    if (options_.trace != nullptr) {
      options_.trace->Emit(obs::TraceEvent::Kind::kPeriodClosed, t,
                           /*region=*/-1, /*value=*/0, "dead");
      options_.trace->Emit(obs::TraceEvent::Kind::kPeriodOpened, t + 1,
                           /*region=*/-1, /*value=*/0, "");
    }
    ++period_;
    return Status::OK();
  }

  snapshot.SetWorkers(period_workers_.data(),
                      period_workers_.data() + period_workers_.size());
  slot_bytes_[slot] = snapshot.FootprintBytes();

  // Price.
  const auto price_start = Clock::now();
  MAPS_RETURN_NOT_OK(strategy_->PriceRound(snapshot, &prices_));
  if (static_cast<int>(prices_.size()) != snapshot.num_grids()) {
    return Status::Internal(strategy_->name() +
                            " returned wrong price vector size");
  }

  // Requesters decide; the strategy sees only the bits. An explicit
  // ObserveAcceptance() bit wins over the hidden valuation; a task with
  // neither declines (kNoValuation is NaN, false against any price). The
  // map lookup is skipped entirely when no bit was observed (the replay
  // path), keeping this loop as cheap as the retired batch loop's.
  const bool has_observed_bits = !pending_accept_.empty();
  size_t consumed_bits = 0;
  accepted_.assign(snapshot.tasks().size(), false);
  for (size_t i = 0; i < snapshot.tasks().size(); ++i) {
    const Task& task = snapshot.tasks()[i];
    bool accepted = stage.valuations[i] >= prices_[task.grid];
    if (has_observed_bits) {
      const auto it = pending_accept_.find(task.id);
      if (it != pending_accept_.end()) {
        accepted = it->second;
        ++consumed_bits;
      }
    }
    accepted_[i] = accepted;
    if (accepted) out->accepted.push_back(task.id);
  }
  strategy_->ObserveFeedback(snapshot, prices_, accepted_);
  const auto price_end = Clock::now();
  strategy_seconds_ += Seconds(price_start, price_end);
  if (m_price_round_ns_ != nullptr) {
    m_price_round_ns_->Record(Nanos(price_start, price_end));
  }
  // Bits that matched no task of the period are orphans (task ids are
  // unique within a period, so each consumed bit was counted once).
  obs::BumpMirrored(&rejections_.orphan_acceptances,
                    m_reject_.orphan_acceptances,
                    static_cast<int64_t>(pending_accept_.size() - consumed_bits));
  out->rejections = rejections_;
  pending_accept_.clear();
  out->prices.assign(prices_.begin(), prices_.end());

  // Assignment: maximum-weight matching over accepted tasks (Def. 5).
  // Graph and matching buffers are pooled across periods. The matching span
  // sums the graph build and the matching call, skipping the MC diagnostic
  // sandwiched between them.
  Clock::time_point match_seg_start;
  int64_t matching_ns = 0;
  if (m_matching_ns_ != nullptr) match_seg_start = Clock::now();
  BipartiteGraph::BuildInto(snapshot.tasks(), snapshot.workers(), *grid_,
                            &graph_ws_, &graph_);
  if (m_matching_ns_ != nullptr) {
    matching_ns += Nanos(match_seg_start, Clock::now());
  }

  // Monte-Carlo expected-revenue diagnostic: E[U(B^t)] of the posted prices
  // under the TRUE acceptance ratios (Def. 6) — simulation-only, since it
  // needs the ground-truth oracle. Period t's worlds live in seed family
  // mc_seed + t so every (period, world) pair is an independent,
  // reproducible stream.
  if (options_.mc_worlds > 0 && options_.mc_oracle != nullptr &&
      !snapshot.tasks().empty()) {
    obs::ScopedTimer mc_timer(m_mc_diag_ns_);
    mc_priced_.clear();
    for (const Task& task : snapshot.tasks()) {
      const double p = prices_[task.grid];
      mc_priced_.push_back(PricedTask{
          task.distance, p, options_.mc_oracle->TrueAcceptRatio(task.grid, p)});
    }
    out->mc_expected_revenue = MonteCarloExpectedRevenue(
        graph_, mc_priced_, options_.mc_seed + static_cast<uint64_t>(t),
        options_.mc_worlds, options_.pool, &mc_workspaces_);
  }

  if (m_matching_ns_ != nullptr) match_seg_start = Clock::now();
  weights_.assign(snapshot.tasks().size(), -1.0);
  for (size_t i = 0; i < snapshot.tasks().size(); ++i) {
    if (!accepted_[i]) continue;
    weights_[i] =
        snapshot.tasks()[i].distance * prices_[snapshot.tasks()[i].grid];
  }
  // Called for the matching it leaves in match_ws_.inc; revenue needs
  // per-task attribution below, not the returned total.
  (void)MaxWeightTaskMatchingValue(graph_, weights_, &match_ws_);
  if (m_matching_ns_ != nullptr) {
    matching_ns += Nanos(match_seg_start, Clock::now());
    m_matching_ns_->Record(matching_ns);
  }
  const Matching& period_matching = match_ws_.inc.matching();

  // Revenue and worker lifecycle updates.
  int32_t n_matched = 0;
  for (size_t i = 0; i < snapshot.tasks().size(); ++i) {
    const int r = period_matching.match_left[i];
    if (r == Matching::kUnmatched) continue;
    MAPS_DCHECK(accepted_[i]);
    ++n_matched;
    out->revenue += weights_[i];
    const int idx = pool_of_[r];
    WorkerRecord& rec = workers_[idx];
    out->matches.push_back(
        MatchRecord{snapshot.tasks()[i].id, rec.base.id, weights_[i]});
    if (single_use) {
      rec.consumed = true;
    } else {
      const Task& task = snapshot.tasks()[i];
      const int32_t ride = std::max(
          1, static_cast<int32_t>(std::ceil(task.distance / speed)));
      rec.next_free = t + ride;
      rec.base.location = task.destination;
      rec.base.grid = grid_->CellOf(task.destination);
      busy_.push({rec.next_free, idx});
    }
    matched_flag_[idx] = 1;
  }

  // Drop matched workers from the idle list in one pass.
  if (n_matched > 0) {
    size_t keep2 = 0;
    for (int idx : idle_) {
      if (matched_flag_[idx]) {
        matched_flag_[idx] = 0;
      } else {
        idle_[keep2++] = idx;
      }
    }
    idle_.resize(keep2);
  }

  // Idle workers chase surge prices (Sec. 4.2.3): move to the best-priced
  // adjacent cell with probability reposition_prob.
  if (options_.lifecycle.reposition_prob > 0.0) {
    const GridPartition& gp = *grid_;
    for (int idx : idle_) {
      if (!reposition_rng_.NextBernoulli(
              options_.lifecycle.reposition_prob)) {
        continue;
      }
      WorkerRecord& rec = workers_[idx];
      const GridId here = rec.base.grid;
      const int row = here / gp.cols();
      const int col = here % gp.cols();
      GridId best = here;
      for (int dr = -1; dr <= 1; ++dr) {
        for (int dc = -1; dc <= 1; ++dc) {
          const int nr = row + dr;
          const int nc = col + dc;
          if (nr < 0 || nr >= gp.rows() || nc < 0 || nc >= gp.cols()) {
            continue;
          }
          const GridId cand = nr * gp.cols() + nc;
          if (prices_[cand] > prices_[best]) best = cand;
        }
      }
      if (best != here) {
        rec.base.location = gp.CellCenter(best);
        rec.base.grid = best;
      }
    }
  }

  // Platform footprint: matching graph + BOTH slots of the snapshot double
  // buffer + the lifecycle table. The other slot's bytes are the value from
  // its own last finalize (capacities only grow), so a concurrent prebuild
  // is never read.
  const size_t platform_bytes =
      graph_.FootprintBytes() + slot_bytes_[0] + slot_bytes_[1] +
      workers_.capacity() * sizeof(WorkerRecord);
  peak_platform_bytes_ = std::max(peak_platform_bytes_, platform_bytes);
  peak_strategy_bytes_ =
      std::max(peak_strategy_bytes_, strategy_->MemoryFootprintBytes());

  stage.Clear();
  if (m_periods_closed_ != nullptr) m_periods_closed_->Increment();
  if (options_.trace != nullptr) {
    options_.trace->Emit(obs::TraceEvent::Kind::kPeriodClosed, t,
                         /*region=*/-1, /*value=*/n_matched, "");
    options_.trace->Emit(obs::TraceEvent::Kind::kPeriodOpened, t + 1,
                         /*region=*/-1, /*value=*/0, "");
  }
  ++period_;
  return Status::OK();
}

}  // namespace maps
