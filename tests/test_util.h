// Shared builders for pricing/simulation tests.

#pragma once

#include <memory>
#include <vector>

#include "market/demand_oracle.h"
#include "market/market_state.h"
#include "rng/random.h"

namespace maps {
namespace testing_util {

/// Builds a task with an explicit travel distance (destination is synthetic).
inline Task MakeTask(const GridPartition& grid, TaskId id, Point origin,
                     double distance, int32_t period = 0) {
  Task t;
  t.id = id;
  t.period = period;
  t.origin = origin;
  t.destination = Point{origin.x + distance, origin.y};
  t.distance = distance;
  t.grid = grid.CellOf(origin);
  return t;
}

inline Worker MakeWorker(const GridPartition& grid, WorkerId id, Point loc,
                         double radius, int32_t period = 0) {
  Worker w;
  w.id = id;
  w.period = period;
  w.location = loc;
  w.radius = radius;
  w.grid = grid.CellOf(loc);
  return w;
}

/// A random small market over `grid`: tasks and workers scattered uniformly,
/// worker radii in [r_lo, r_hi].
inline MarketSnapshot RandomSnapshot(const GridPartition& grid, Rng& rng,
                                     int num_tasks, int num_workers,
                                     double r_lo, double r_hi) {
  const Rect& region = grid.region();
  std::vector<Task> tasks;
  for (int i = 0; i < num_tasks; ++i) {
    const Point o{rng.NextDouble(region.min_x, region.max_x),
                  rng.NextDouble(region.min_y, region.max_y)};
    tasks.push_back(MakeTask(grid, i, o, rng.NextDouble(0.5, 5.0)));
  }
  std::vector<Worker> workers;
  for (int i = 0; i < num_workers; ++i) {
    const Point l{rng.NextDouble(region.min_x, region.max_x),
                  rng.NextDouble(region.min_y, region.max_y)};
    workers.push_back(MakeWorker(grid, i, l, rng.NextDouble(r_lo, r_hi)));
  }
  return MarketSnapshot(&grid, 0, std::move(tasks), std::move(workers));
}

/// An oracle with Table 1's acceptance ratios in every grid.
inline DemandOracle TableOneOracle(int num_grids, uint64_t seed = 1) {
  TabulatedDemand proto({1.0, 2.0, 3.0}, {0.9, 0.8, 0.5});
  return DemandOracle::Make(ReplicateDemand(proto, num_grids), seed)
      .ValueOrDie();
}

}  // namespace testing_util
}  // namespace maps
