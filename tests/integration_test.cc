// End-to-end integration: all five strategies of Sec. 5.1 run the full
// pipeline (generate -> warm up -> price T periods -> account revenue) on
// miniature versions of the paper's workloads.

#include <gtest/gtest.h>

#include <map>

#include "pricing/maps.h"
#include "sim/beijing.h"
#include "sim/metrics.h"
#include "sim/synthetic.h"

namespace maps {
namespace {

SyntheticConfig MiniSynthetic(uint64_t seed) {
  SyntheticConfig cfg;
  cfg.num_workers = 120;
  cfg.num_tasks = 600;
  cfg.num_periods = 30;
  cfg.grid_rows = 4;
  cfg.grid_cols = 4;
  cfg.worker_radius = 20.0;
  cfg.seed = seed;
  return cfg;
}

std::map<std::string, SimulationResult> RunAll(const Workload& w) {
  std::map<std::string, SimulationResult> out;
  PricingConfig cfg;
  auto strategies = DefaultStrategies(cfg);
  for (size_t s = 0; s < strategies.size(); ++s) {
    auto strategy = strategies[s].make();
    SimOptions opts;
    opts.warmup_stream = 50 + s;
    out[strategies[s].name] =
        RunSimulation(w, strategy.get(), opts).ValueOrDie();
  }
  return out;
}

TEST(IntegrationTest, AllStrategiesCompleteOnSynthetic) {
  Workload w = GenerateSynthetic(MiniSynthetic(1)).ValueOrDie();
  auto results = RunAll(w);
  ASSERT_EQ(results.size(), 5u);
  for (const auto& [name, r] : results) {
    EXPECT_GT(r.total_revenue, 0.0) << name;
    EXPECT_EQ(r.num_tasks, 600) << name;
    EXPECT_LE(r.num_matched, 120) << name;  // single-use workers
    EXPECT_GE(r.total_time_sec, 0.0) << name;
    EXPECT_GT(r.memory_bytes, 0u) << name;
  }
}

TEST(IntegrationTest, AllStrategiesCompleteOnBeijingSurrogate) {
  BeijingConfig cfg;
  cfg.population_scale = 0.005;
  cfg.worker_duration = 15;
  cfg.seed = 2;
  Workload w = GenerateBeijing(cfg).ValueOrDie();
  auto results = RunAll(w);
  for (const auto& [name, r] : results) {
    EXPECT_GT(r.total_revenue, 0.0) << name;
    // Turnaround lifecycle: workers can serve multiple rides.
    EXPECT_LE(r.num_matched, r.num_accepted) << name;
  }
}

TEST(IntegrationTest, MapsBeatsBasePricingUnderSupplyScarcity) {
  // The paper's headline: with limited, dependent supply MAPS out-earns the
  // unified base price. Averaged over seeds to suppress workload noise.
  double maps_total = 0.0, base_total = 0.0;
  for (uint64_t seed : {11u, 12u, 13u, 14u, 15u}) {
    SyntheticConfig cfg = MiniSynthetic(seed);
    cfg.num_workers = 40;  // scarce supply: 40 workers for 600 tasks
    Workload w = GenerateSynthetic(cfg).ValueOrDie();
    auto results = RunAll(w);
    maps_total += results["MAPS"].total_revenue;
    base_total += results["BaseP"].total_revenue;
  }
  EXPECT_GT(maps_total, base_total);
}

TEST(IntegrationTest, RevenueGrowsWithWorkerCount) {
  // Fig. 6a's qualitative shape for MAPS: more workers, more revenue.
  PricingConfig pricing;
  MapsOptions opts;
  opts.pricing = pricing;
  double prev = -1.0;
  for (int workers : {30, 120, 480}) {
    SyntheticConfig cfg = MiniSynthetic(21);
    cfg.num_workers = workers;
    Workload w = GenerateSynthetic(cfg).ValueOrDie();
    Maps strategy(opts);
    const double revenue =
        RunSimulation(w, &strategy).ValueOrDie().total_revenue;
    EXPECT_GT(revenue, prev) << workers << " workers";
    prev = revenue;
  }
}

TEST(IntegrationTest, SweepHarnessProducesTables) {
  ExperimentSweep sweep("itest", "|W|");
  PricingConfig cfg;
  auto strategies = DefaultStrategies(cfg);
  for (int workers : {40, 80}) {
    SyntheticConfig scfg = MiniSynthetic(31);
    scfg.num_workers = workers;
    Workload w = GenerateSynthetic(scfg).ValueOrDie();
    ASSERT_TRUE(
        sweep.RunPoint(std::to_string(workers), w, strategies).ok());
  }
  EXPECT_EQ(sweep.table().num_rows(), 10u);  // 2 points x 5 strategies
  // Every row has positive revenue.
  for (const auto& row : sweep.table().rows()) {
    EXPECT_GT(std::stod(row[2]), 0.0);
  }
}

}  // namespace
}  // namespace maps
