// Contract suite: properties EVERY pricing strategy must satisfy,
// parameterized over the full Sec. 5.1 lineup. Guards the PricingStrategy
// interface against regressions in any single implementation.

#include <gtest/gtest.h>

#include "../test_util.h"
#include "sim/metrics.h"
#include "sim/synthetic.h"

namespace maps {
namespace {

PricingConfig ContractPricing() {
  PricingConfig cfg;
  cfg.alpha = 0.5;
  return cfg;
}

class StrategyContractTest : public ::testing::TestWithParam<size_t> {
 protected:
  StrategyContractTest()
      : grid_(GridPartition::Make(Rect{0, 0, 40, 40}, 4, 4).ValueOrDie()),
        oracle_(testing_util::TableOneOracle(grid_.num_cells(), 21)) {}

  std::unique_ptr<PricingStrategy> MakeStrategy() {
    return DefaultStrategies(ContractPricing())[GetParam()].make();
  }

  std::unique_ptr<PricingStrategy> MakeWarmStrategy() {
    auto s = MakeStrategy();
    DemandOracle history = oracle_.Fork(GetParam());
    EXPECT_TRUE(s->Warmup(grid_, &history).ok());
    return s;
  }

  GridPartition grid_;
  DemandOracle oracle_;
};

TEST_P(StrategyContractTest, NameIsNonEmptyAndStable) {
  auto s = MakeStrategy();
  const std::string name = s->name();
  EXPECT_FALSE(name.empty());
  EXPECT_EQ(s->name(), name);
}

TEST_P(StrategyContractTest, PriceVectorSizedToGridAndBounded) {
  auto s = MakeWarmStrategy();
  Rng rng(31 + GetParam());
  for (int round = 0; round < 8; ++round) {
    MarketSnapshot snap =
        testing_util::RandomSnapshot(grid_, rng, 18, 7, 2.0, 15.0);
    std::vector<double> prices;
    ASSERT_TRUE(s->PriceRound(snap, &prices).ok());
    ASSERT_EQ(static_cast<int>(prices.size()), grid_.num_cells());
    for (double p : prices) {
      ASSERT_GE(p, ContractPricing().p_min) << s->name();
      ASSERT_LE(p, ContractPricing().p_max) << s->name();
    }
  }
}

TEST_P(StrategyContractTest, DeterministicGivenIdenticalHistory) {
  std::vector<double> first, second;
  for (std::vector<double>* out : {&first, &second}) {
    auto s = MakeWarmStrategy();
    Rng rng(77);
    MarketSnapshot snap =
        testing_util::RandomSnapshot(grid_, rng, 15, 6, 2.0, 12.0);
    ASSERT_TRUE(s->PriceRound(snap, out).ok());
  }
  EXPECT_EQ(first, second);
}

TEST_P(StrategyContractTest, ToleratesEmptyMarketsAndFeedback) {
  auto s = MakeWarmStrategy();
  MarketSnapshot empty(&grid_, 0, {}, {});
  std::vector<double> prices;
  ASSERT_TRUE(s->PriceRound(empty, &prices).ok());
  ASSERT_EQ(static_cast<int>(prices.size()), grid_.num_cells());
  s->ObserveFeedback(empty, prices, {});  // must not crash

  Rng rng(5);
  MarketSnapshot snap =
      testing_util::RandomSnapshot(grid_, rng, 10, 5, 2.0, 12.0);
  ASSERT_TRUE(s->PriceRound(snap, &prices).ok());
  std::vector<bool> all_reject(snap.tasks().size(), false);
  s->ObserveFeedback(snap, prices, all_reject);
  ASSERT_TRUE(s->PriceRound(snap, &prices).ok());
}

TEST_P(StrategyContractTest, SurvivesManyFeedbackRounds) {
  auto s = MakeWarmStrategy();
  Rng rng(11 + GetParam());
  for (int round = 0; round < 60; ++round) {
    MarketSnapshot snap =
        testing_util::RandomSnapshot(grid_, rng, 12, 5, 2.0, 12.0);
    std::vector<double> prices;
    ASSERT_TRUE(s->PriceRound(snap, &prices).ok());
    std::vector<bool> accepted(snap.tasks().size());
    for (size_t i = 0; i < accepted.size(); ++i) {
      const int g = snap.tasks()[i].grid;
      accepted[i] = rng.NextBernoulli(oracle_.TrueAcceptRatio(g, prices[g]));
    }
    s->ObserveFeedback(snap, prices, accepted);
  }
  EXPECT_GT(s->MemoryFootprintBytes(), 0u);
}

TEST_P(StrategyContractTest, FullSimulationEarnsRevenue) {
  SyntheticConfig cfg;
  cfg.num_workers = 80;
  cfg.num_tasks = 400;
  cfg.num_periods = 20;
  cfg.grid_rows = 4;
  cfg.grid_cols = 4;
  cfg.worker_radius = 25.0;
  cfg.seed = 31;
  Workload w = GenerateSynthetic(cfg).ValueOrDie();
  auto s = MakeStrategy();
  auto r = RunSimulation(w, s.get()).ValueOrDie();
  EXPECT_GT(r.total_revenue, 0.0) << s->name();
  EXPECT_LE(r.num_matched, r.num_accepted);
  EXPECT_GE(r.warmup_time_sec, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyContractTest, ::testing::Range<size_t>(0, 5),
    [](const ::testing::TestParamInfo<size_t>& param_info) {
      return DefaultStrategies(PricingConfig{})[param_info.param].name;
    });

}  // namespace
}  // namespace maps
