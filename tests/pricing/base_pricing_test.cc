#include "pricing/base_pricing.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "market/demand_model.h"

namespace maps {
namespace {

using testing_util::TableOneOracle;

GridPartition SmallGrid(int cells_per_side = 2) {
  return GridPartition::Make(Rect{0, 0, 10, 10}, cells_per_side,
                             cells_per_side)
      .ValueOrDie();
}

TEST(BasePricingTest, RequiresWarmup) {
  PricingConfig cfg;
  BasePricing base(cfg);
  GridPartition grid = SmallGrid();
  MarketSnapshot snap(&grid, 0, {}, {});
  std::vector<double> prices;
  EXPECT_EQ(base.PriceRound(snap, &prices).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(base.warmed_up());
}

TEST(BasePricingTest, WarmupNeedsMatchingOracle) {
  PricingConfig cfg;
  BasePricing base(cfg);
  GridPartition grid = SmallGrid();
  EXPECT_TRUE(base.Warmup(grid, nullptr).IsInvalidArgument());
  DemandOracle wrong = TableOneOracle(3);  // grid has 4 cells
  EXPECT_TRUE(base.Warmup(grid, &wrong).IsInvalidArgument());
}

TEST(BasePricingTest, TableOneDemandGivesBasePriceTwo) {
  // Every grid has Table 1 demand; with candidates {1,2,3}, p*S_hat(p) is
  // ~{0.9, 1.6, 1.5}, so every grid picks 2 and p_b = 2.
  PricingConfig cfg;
  cfg.explicit_ladder = {1.0, 2.0, 3.0};
  BasePricing base(cfg);
  GridPartition grid = SmallGrid();
  DemandOracle oracle = TableOneOracle(grid.num_cells());
  ASSERT_TRUE(base.Warmup(grid, &oracle).ok());
  EXPECT_DOUBLE_EQ(base.base_price(), 2.0);
  for (double pm : base.grid_myerson_prices()) {
    EXPECT_DOUBLE_EQ(pm, 2.0);
  }
  // Observed ratios should be close to the table.
  const auto& obs = base.observed_accept_ratios();
  EXPECT_NEAR(obs[0][0], 0.9, 0.06);
  EXPECT_NEAR(obs[0][1], 0.8, 0.06);
  EXPECT_NEAR(obs[0][2], 0.5, 0.06);
}

TEST(BasePricingTest, PriceRoundReturnsBasePriceEverywhere) {
  PricingConfig cfg;
  cfg.explicit_ladder = {1.0, 2.0, 3.0};
  BasePricing base(cfg);
  GridPartition grid = SmallGrid();
  DemandOracle oracle = TableOneOracle(grid.num_cells());
  ASSERT_TRUE(base.Warmup(grid, &oracle).ok());
  MarketSnapshot snap(&grid, 0, {}, {});
  std::vector<double> prices;
  ASSERT_TRUE(base.PriceRound(snap, &prices).ok());
  ASSERT_EQ(static_cast<int>(prices.size()), grid.num_cells());
  for (double p : prices) EXPECT_DOUBLE_EQ(p, 2.0);
}

TEST(BasePricingTest, ProbeBudgetsFollowAlgorithmOne) {
  PricingConfig cfg;  // geometric defaults: ladder {1, 1.5, 2.25, 3.375}
  BasePricing base(cfg);
  GridPartition grid = SmallGrid();
  DemandOracle oracle = TableOneOracle(grid.num_cells());
  ASSERT_TRUE(base.Warmup(grid, &oracle).ok());
  ASSERT_EQ(base.ladder().size(), 4);
  // Example 4: h(1) = 335 with k=4, eps=0.2, delta=0.01.
  EXPECT_EQ(base.probes_per_rung()[0], 335);
  // Total probes = G * sum h(p).
  int64_t per_grid = 0;
  for (int64_t h : base.probes_per_rung()) per_grid += h;
  EXPECT_EQ(oracle.num_probes(), grid.num_cells() * per_grid);
}

TEST(BasePricingTest, EstimateApproachesTrueMyersonForUniformDemand) {
  // Theorem 3: p_m S(p_m) >= (1 - alpha) p* S(p*). For U[1,5], p* = 2.5 and
  // p* S(p*) = 1.5625.
  PricingConfig cfg;
  cfg.alpha = 0.1;
  cfg.eps = 0.05;
  BasePricing base(cfg);
  auto grid = GridPartition::Make(Rect{0, 0, 10, 10}, 1, 1).ValueOrDie();
  UniformDemand uniform(1.0, 5.0);
  DemandOracle oracle =
      DemandOracle::Make(ReplicateDemand(uniform, 1), 3).ValueOrDie();
  ASSERT_TRUE(base.Warmup(grid, &oracle).ok());
  const double pm = base.grid_myerson_prices()[0];
  const double achieved = uniform.ExpectedUnitRevenue(pm);
  const double optimal = uniform.ExpectedUnitRevenue(2.5);
  EXPECT_GE(achieved, (1.0 - cfg.alpha) * optimal - cfg.eps);
}

TEST(BasePricingTest, TieOnZeroRevenuePicksSmallerPrice) {
  // PointMass(2) with candidates {3, 4}: both rungs have S=0, p*S=0 for
  // both, and the ascending strict-'>' scan keeps the smaller price.
  PricingConfig cfg;
  cfg.explicit_ladder = {3.0, 4.0};
  BasePricing base(cfg);
  auto grid = GridPartition::Make(Rect{0, 0, 10, 10}, 1, 1).ValueOrDie();
  PointMassDemand pm(2.0);
  DemandOracle oracle =
      DemandOracle::Make(ReplicateDemand(pm, 1), 3).ValueOrDie();
  ASSERT_TRUE(base.Warmup(grid, &oracle).ok());
  EXPECT_DOUBLE_EQ(base.base_price(), 3.0);
}

TEST(BasePricingTest, HeterogeneousGridsAverage) {
  // Grid 0 wants price 2 (point mass at 2), grid 1 wants 3 (point mass at
  // 3): p_b = 2.5. (With point masses, p*S is exactly p below the atom.)
  PricingConfig cfg;
  cfg.explicit_ladder = {1.0, 2.0, 3.0};
  BasePricing base(cfg);
  auto grid = GridPartition::Make(Rect{0, 0, 10, 10}, 1, 2).ValueOrDie();
  std::vector<std::unique_ptr<DemandModel>> models;
  models.push_back(std::make_unique<PointMassDemand>(2.0));
  models.push_back(std::make_unique<PointMassDemand>(3.0));
  DemandOracle oracle =
      DemandOracle::Make(std::move(models), 3).ValueOrDie();
  ASSERT_TRUE(base.Warmup(grid, &oracle).ok());
  EXPECT_DOUBLE_EQ(base.grid_myerson_prices()[0], 2.0);
  EXPECT_DOUBLE_EQ(base.grid_myerson_prices()[1], 3.0);
  EXPECT_DOUBLE_EQ(base.base_price(), 2.5);
}

TEST(WarmupPoolBackedTest, BitIdenticalForAnyThreadCount) {
  // The probe schedule draws every (grid, rung) pair from its own counter
  // stream, so warm-up output — base price, per-grid Myerson prices, every
  // observed acceptance ratio, and the probe accounting — must be
  // bit-identical with no pool and with pools of 1, 2, and 8 workers.
  PricingConfig cfg;
  GridPartition grid = SmallGrid(3);

  DemandOracle serial_oracle = TableOneOracle(grid.num_cells(), 17);
  BasePricing serial(cfg);
  ASSERT_TRUE(serial.Warmup(grid, &serial_oracle).ok());

  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    DemandOracle oracle = TableOneOracle(grid.num_cells(), 17);
    BasePricing pooled(cfg);
    pooled.LendPool(&pool);
    ASSERT_TRUE(pooled.Warmup(grid, &oracle).ok());
    EXPECT_EQ(pooled.base_price(), serial.base_price())
        << threads << " threads";
    for (int g = 0; g < grid.num_cells(); ++g) {
      EXPECT_EQ(pooled.grid_myerson_prices()[g],
                serial.grid_myerson_prices()[g]);
      for (int i = 0; i < serial.ladder().size(); ++i) {
        EXPECT_EQ(pooled.observed_accept_ratios()[g][i],
                  serial.observed_accept_ratios()[g][i])
            << "grid " << g << " rung " << i << " at " << threads
            << " threads";
      }
    }
    EXPECT_EQ(oracle.num_probes(), serial_oracle.num_probes());
  }
}

TEST(WarmupPoolBackedTest, PoolSurvivesReuseAcrossStrategies) {
  // One pool backs several strategies' warm-ups in sequence (the bench
  // pattern); lending must leave no residual state in the pool.
  PricingConfig cfg;
  GridPartition grid = SmallGrid();
  ThreadPool pool(4);
  double first = 0.0;
  for (int round = 0; round < 3; ++round) {
    DemandOracle oracle = TableOneOracle(grid.num_cells(), 23);
    BasePricing base(cfg);
    base.LendPool(&pool);
    ASSERT_TRUE(base.Warmup(grid, &oracle).ok());
    if (round == 0) {
      first = base.base_price();
    } else {
      EXPECT_EQ(base.base_price(), first);
    }
  }
}

TEST(BasePricingTest, MemoryFootprintPositiveAfterWarmup) {
  PricingConfig cfg;
  BasePricing base(cfg);
  GridPartition grid = SmallGrid();
  DemandOracle oracle = TableOneOracle(grid.num_cells());
  ASSERT_TRUE(base.Warmup(grid, &oracle).ok());
  EXPECT_GT(base.MemoryFootprintBytes(), 0u);
}

}  // namespace
}  // namespace maps
