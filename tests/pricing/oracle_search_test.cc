#include "pricing/oracle_search.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "graph/bipartite_graph.h"

namespace maps {
namespace {

using testing_util::MakeTask;
using testing_util::MakeWorker;
using testing_util::TableOneOracle;

TEST(OracleSearchTest, SingleTaskPicksMyersonCandidate) {
  auto grid = GridPartition::Make(Rect{0, 0, 10, 10}, 1, 1).ValueOrDie();
  DemandOracle oracle = TableOneOracle(1);
  std::vector<Task> tasks = {MakeTask(grid, 0, {5, 5}, 2.0)};
  std::vector<Worker> workers = {MakeWorker(grid, 0, {5, 5}, 3.0)};
  MarketSnapshot snap(&grid, 0, std::move(tasks), std::move(workers));
  auto ladder = PriceLadder::FromPrices({1.0, 2.0, 3.0}).ValueOrDie();
  auto best = OracleSearch(snap, oracle, ladder).ValueOrDie();
  // Sufficient supply: optimum is the unit-revenue maximizer 2, giving
  // revenue d * p * S = 2 * 2 * 0.8.
  EXPECT_DOUBLE_EQ(best.grid_prices[0], 2.0);
  EXPECT_NEAR(best.expected_revenue, 2.0 * 2.0 * 0.8, 1e-12);
}

TEST(OracleSearchTest, NoTasksYieldsZero) {
  auto grid = GridPartition::Make(Rect{0, 0, 10, 10}, 1, 1).ValueOrDie();
  DemandOracle oracle = TableOneOracle(1);
  MarketSnapshot snap(&grid, 0, {}, {});
  auto ladder = PriceLadder::FromPrices({1.0, 2.0}).ValueOrDie();
  auto best = OracleSearch(snap, oracle, ladder).ValueOrDie();
  EXPECT_DOUBLE_EQ(best.expected_revenue, 0.0);
}

TEST(OracleSearchTest, BeatsEveryManualAssignment) {
  auto grid = GridPartition::Make(Rect{0, 0, 20, 10}, 1, 2).ValueOrDie();
  DemandOracle oracle = TableOneOracle(2);
  std::vector<Task> tasks = {MakeTask(grid, 0, {2, 5}, 1.5),
                             MakeTask(grid, 1, {12, 5}, 3.0)};
  std::vector<Worker> workers = {MakeWorker(grid, 0, {5, 5}, 20.0)};
  MarketSnapshot snap(&grid, 0, std::move(tasks), std::move(workers));
  auto ladder = PriceLadder::FromPrices({1.0, 2.0, 3.0}).ValueOrDie();
  auto best = OracleSearch(snap, oracle, ladder).ValueOrDie();
  for (double pa : ladder.prices()) {
    for (double pb : ladder.prices()) {
      const double v =
          ExpectedRevenueOfPrices(snap, oracle, {pa, pb});
      ASSERT_LE(v, best.expected_revenue + 1e-12)
          << "(" << pa << "," << pb << ") beats the 'optimal' result";
    }
  }
}

TEST(OracleSearchTest, BuildsTheGraphExactlyOnce) {
  // The graph depends only on geometry, never on prices; the odometer loop
  // over price combinations must reuse one build instead of one per combo.
  auto grid = GridPartition::Make(Rect{0, 0, 20, 10}, 1, 2).ValueOrDie();
  DemandOracle oracle = TableOneOracle(2);
  std::vector<Task> tasks = {MakeTask(grid, 0, {2, 5}, 1.5),
                             MakeTask(grid, 1, {12, 5}, 3.0),
                             MakeTask(grid, 2, {4, 5}, 2.0)};
  std::vector<Worker> workers = {MakeWorker(grid, 0, {5, 5}, 20.0),
                                 MakeWorker(grid, 1, {15, 5}, 6.0)};
  MarketSnapshot snap(&grid, 0, std::move(tasks), std::move(workers));
  auto ladder = PriceLadder::FromPrices({1.0, 2.0, 3.0}).ValueOrDie();

  const int64_t before = BipartiteGraph::TotalBuildCount();
  ASSERT_TRUE(OracleSearch(snap, oracle, ladder).ok());
  const int64_t builds = BipartiteGraph::TotalBuildCount() - before;
  // 2 busy grids x 3 rungs = 9 price combinations, but exactly one build.
  EXPECT_EQ(builds, 1);
}

TEST(OracleSearchTest, PoolBackedSearchIsBitIdenticalAcrossThreadCounts) {
  // The odometer is sharded into fixed contiguous index ranges and reduced
  // in shard order with lowest-combination-index tie-breaks, so the best
  // prices AND the best revenue are bit-identical for any pool size — and
  // identical to the serial sweep, since every combination's value is
  // computed by the same code on private scratch.
  auto grid = GridPartition::Make(Rect{0, 0, 40, 10}, 1, 4).ValueOrDie();
  DemandOracle oracle = TableOneOracle(4);
  std::vector<Task> tasks;
  std::vector<Worker> workers;
  Rng rng(23);
  for (int i = 0; i < 10; ++i) {
    const Point o{rng.NextDouble(0, 40), rng.NextDouble(0, 10)};
    tasks.push_back(MakeTask(grid, i, o, rng.NextDouble(0.5, 4.0)));
  }
  for (int i = 0; i < 5; ++i) {
    const Point l{rng.NextDouble(0, 40), rng.NextDouble(0, 10)};
    workers.push_back(MakeWorker(grid, i, l, rng.NextDouble(5.0, 15.0)));
  }
  MarketSnapshot snap(&grid, 0, std::move(tasks), std::move(workers));
  auto ladder = PriceLadder::FromPrices({1.0, 2.0, 3.0}).ValueOrDie();

  const auto serial = OracleSearch(snap, oracle, ladder).ValueOrDie();
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    const auto parallel =
        OracleSearch(snap, oracle, ladder, &pool).ValueOrDie();
    EXPECT_EQ(parallel.expected_revenue, serial.expected_revenue)
        << threads << " threads";
    EXPECT_EQ(parallel.grid_prices, serial.grid_prices)
        << threads << " threads";
  }
}

TEST(OracleSearchTest, PoolSurvivesReuseAcrossInvocations) {
  // One pool backs many sweeps (the experiment runner's usage pattern); no
  // state may leak from one invocation into the next.
  auto grid = GridPartition::Make(Rect{0, 0, 20, 10}, 1, 2).ValueOrDie();
  DemandOracle oracle = TableOneOracle(2);
  std::vector<Task> tasks = {MakeTask(grid, 0, {2, 5}, 1.5),
                             MakeTask(grid, 1, {12, 5}, 3.0)};
  std::vector<Worker> workers = {MakeWorker(grid, 0, {5, 5}, 20.0)};
  MarketSnapshot snap(&grid, 0, std::move(tasks), std::move(workers));
  std::vector<Task> other_tasks = {MakeTask(grid, 0, {3, 5}, 2.5)};
  MarketSnapshot other(&grid, 0, std::move(other_tasks), {});
  auto ladder = PriceLadder::FromPrices({1.0, 2.0, 3.0}).ValueOrDie();

  ThreadPool pool(4);
  const auto first = OracleSearch(snap, oracle, ladder, &pool).ValueOrDie();
  // A differently-shaped sweep in between must not perturb a rerun.
  ASSERT_TRUE(OracleSearch(other, oracle, ladder, &pool).ok());
  const auto second = OracleSearch(snap, oracle, ladder, &pool).ValueOrDie();
  EXPECT_EQ(first.expected_revenue, second.expected_revenue);
  EXPECT_EQ(first.grid_prices, second.grid_prices);
}

TEST(OracleSearchTest, PoolBackedSearchBuildsTheGraphExactlyOnce) {
  // Sharding the odometer must not reintroduce per-combination (or even
  // per-shard) graph builds.
  auto grid = GridPartition::Make(Rect{0, 0, 20, 10}, 1, 2).ValueOrDie();
  DemandOracle oracle = TableOneOracle(2);
  std::vector<Task> tasks = {MakeTask(grid, 0, {2, 5}, 1.5),
                             MakeTask(grid, 1, {12, 5}, 3.0),
                             MakeTask(grid, 2, {4, 5}, 2.0)};
  std::vector<Worker> workers = {MakeWorker(grid, 0, {5, 5}, 20.0),
                                 MakeWorker(grid, 1, {15, 5}, 6.0)};
  MarketSnapshot snap(&grid, 0, std::move(tasks), std::move(workers));
  auto ladder = PriceLadder::FromPrices({1.0, 2.0, 3.0}).ValueOrDie();

  ThreadPool pool(4);
  const int64_t before = BipartiteGraph::TotalBuildCount();
  ASSERT_TRUE(OracleSearch(snap, oracle, ladder, &pool).ok());
  EXPECT_EQ(BipartiteGraph::TotalBuildCount() - before, 1);
}

TEST(OracleSearchTest, RefusesOversizedInstances) {
  auto grid = GridPartition::Make(Rect{0, 0, 10, 10}, 1, 1).ValueOrDie();
  DemandOracle oracle = TableOneOracle(1);
  std::vector<Task> tasks;
  for (int i = 0; i < 26; ++i) {
    tasks.push_back(MakeTask(grid, i, {5, 5}, 1.0));
  }
  MarketSnapshot snap(&grid, 0, std::move(tasks), {});
  auto ladder = PriceLadder::FromPrices({1.0, 2.0}).ValueOrDie();
  EXPECT_FALSE(OracleSearch(snap, oracle, ladder).ok());
}

TEST(OracleSearchTest, RefusesHugePriceSpaces) {
  auto grid = GridPartition::Make(Rect{0, 0, 100, 100}, 10, 10).ValueOrDie();
  DemandOracle oracle = TableOneOracle(100);
  std::vector<Task> tasks;
  for (int i = 0; i < 20; ++i) {
    tasks.push_back(
        MakeTask(grid, i, {5.0 + 10.0 * (i % 10), 5.0 + 10.0 * (i / 10)},
                 1.0));
  }
  MarketSnapshot snap(&grid, 0, std::move(tasks), {});
  auto ladder = PriceLadder::Make(1.0, 5.0, 0.1).ValueOrDie();  // 17 rungs
  EXPECT_FALSE(OracleSearch(snap, oracle, ladder).ok());
}

}  // namespace
}  // namespace maps
