#include "pricing/oracle_search.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "graph/bipartite_graph.h"

namespace maps {
namespace {

using testing_util::MakeTask;
using testing_util::MakeWorker;
using testing_util::TableOneOracle;

TEST(OracleSearchTest, SingleTaskPicksMyersonCandidate) {
  auto grid = GridPartition::Make(Rect{0, 0, 10, 10}, 1, 1).ValueOrDie();
  DemandOracle oracle = TableOneOracle(1);
  std::vector<Task> tasks = {MakeTask(grid, 0, {5, 5}, 2.0)};
  std::vector<Worker> workers = {MakeWorker(grid, 0, {5, 5}, 3.0)};
  MarketSnapshot snap(&grid, 0, std::move(tasks), std::move(workers));
  auto ladder = PriceLadder::FromPrices({1.0, 2.0, 3.0}).ValueOrDie();
  auto best = OracleSearch(snap, oracle, ladder).ValueOrDie();
  // Sufficient supply: optimum is the unit-revenue maximizer 2, giving
  // revenue d * p * S = 2 * 2 * 0.8.
  EXPECT_DOUBLE_EQ(best.grid_prices[0], 2.0);
  EXPECT_NEAR(best.expected_revenue, 2.0 * 2.0 * 0.8, 1e-12);
}

TEST(OracleSearchTest, NoTasksYieldsZero) {
  auto grid = GridPartition::Make(Rect{0, 0, 10, 10}, 1, 1).ValueOrDie();
  DemandOracle oracle = TableOneOracle(1);
  MarketSnapshot snap(&grid, 0, {}, {});
  auto ladder = PriceLadder::FromPrices({1.0, 2.0}).ValueOrDie();
  auto best = OracleSearch(snap, oracle, ladder).ValueOrDie();
  EXPECT_DOUBLE_EQ(best.expected_revenue, 0.0);
}

TEST(OracleSearchTest, BeatsEveryManualAssignment) {
  auto grid = GridPartition::Make(Rect{0, 0, 20, 10}, 1, 2).ValueOrDie();
  DemandOracle oracle = TableOneOracle(2);
  std::vector<Task> tasks = {MakeTask(grid, 0, {2, 5}, 1.5),
                             MakeTask(grid, 1, {12, 5}, 3.0)};
  std::vector<Worker> workers = {MakeWorker(grid, 0, {5, 5}, 20.0)};
  MarketSnapshot snap(&grid, 0, std::move(tasks), std::move(workers));
  auto ladder = PriceLadder::FromPrices({1.0, 2.0, 3.0}).ValueOrDie();
  auto best = OracleSearch(snap, oracle, ladder).ValueOrDie();
  for (double pa : ladder.prices()) {
    for (double pb : ladder.prices()) {
      const double v =
          ExpectedRevenueOfPrices(snap, oracle, {pa, pb});
      ASSERT_LE(v, best.expected_revenue + 1e-12)
          << "(" << pa << "," << pb << ") beats the 'optimal' result";
    }
  }
}

TEST(OracleSearchTest, BuildsTheGraphExactlyOnce) {
  // The graph depends only on geometry, never on prices; the odometer loop
  // over price combinations must reuse one build instead of one per combo.
  auto grid = GridPartition::Make(Rect{0, 0, 20, 10}, 1, 2).ValueOrDie();
  DemandOracle oracle = TableOneOracle(2);
  std::vector<Task> tasks = {MakeTask(grid, 0, {2, 5}, 1.5),
                             MakeTask(grid, 1, {12, 5}, 3.0),
                             MakeTask(grid, 2, {4, 5}, 2.0)};
  std::vector<Worker> workers = {MakeWorker(grid, 0, {5, 5}, 20.0),
                                 MakeWorker(grid, 1, {15, 5}, 6.0)};
  MarketSnapshot snap(&grid, 0, std::move(tasks), std::move(workers));
  auto ladder = PriceLadder::FromPrices({1.0, 2.0, 3.0}).ValueOrDie();

  const int64_t before = BipartiteGraph::TotalBuildCount();
  ASSERT_TRUE(OracleSearch(snap, oracle, ladder).ok());
  const int64_t builds = BipartiteGraph::TotalBuildCount() - before;
  // 2 busy grids x 3 rungs = 9 price combinations, but exactly one build.
  EXPECT_EQ(builds, 1);
}

TEST(OracleSearchTest, RefusesOversizedInstances) {
  auto grid = GridPartition::Make(Rect{0, 0, 10, 10}, 1, 1).ValueOrDie();
  DemandOracle oracle = TableOneOracle(1);
  std::vector<Task> tasks;
  for (int i = 0; i < 26; ++i) {
    tasks.push_back(MakeTask(grid, i, {5, 5}, 1.0));
  }
  MarketSnapshot snap(&grid, 0, std::move(tasks), {});
  auto ladder = PriceLadder::FromPrices({1.0, 2.0}).ValueOrDie();
  EXPECT_FALSE(OracleSearch(snap, oracle, ladder).ok());
}

TEST(OracleSearchTest, RefusesHugePriceSpaces) {
  auto grid = GridPartition::Make(Rect{0, 0, 100, 100}, 10, 10).ValueOrDie();
  DemandOracle oracle = TableOneOracle(100);
  std::vector<Task> tasks;
  for (int i = 0; i < 20; ++i) {
    tasks.push_back(
        MakeTask(grid, i, {5.0 + 10.0 * (i % 10), 5.0 + 10.0 * (i / 10)},
                 1.0));
  }
  MarketSnapshot snap(&grid, 0, std::move(tasks), {});
  auto ladder = PriceLadder::Make(1.0, 5.0, 0.1).ValueOrDie();  // 17 rungs
  EXPECT_FALSE(OracleSearch(snap, oracle, ladder).ok());
}

}  // namespace
}  // namespace maps
