#include <gtest/gtest.h>

#include <cmath>

#include "../test_util.h"
#include "pricing/capped_ucb.h"
#include "pricing/sde.h"
#include "pricing/sdr.h"

namespace maps {
namespace {

using testing_util::MakeTask;
using testing_util::MakeWorker;
using testing_util::TableOneOracle;

class BaselineTest : public ::testing::Test {
 protected:
  BaselineTest()
      : grid_(GridPartition::Make(Rect{0, 0, 20, 20}, 2, 2).ValueOrDie()),
        oracle_(TableOneOracle(grid_.num_cells(), 9)) {
    cfg_.explicit_ladder = {1.0, 2.0, 3.0};
  }

  /// Grid 0 (bottom-left cell): `demand` tasks and `supply` workers.
  MarketSnapshot SnapshotWithCounts(int demand, int supply) {
    std::vector<Task> tasks;
    for (int i = 0; i < demand; ++i) {
      tasks.push_back(MakeTask(grid_, i, {1.0 + 0.1 * i, 1.0}, 2.0));
    }
    std::vector<Worker> workers;
    for (int i = 0; i < supply; ++i) {
      workers.push_back(MakeWorker(grid_, i, {2.0 + 0.1 * i, 2.0}, 5.0));
    }
    return MarketSnapshot(&grid_, 0, std::move(tasks), std::move(workers));
  }

  GridPartition grid_;
  DemandOracle oracle_;
  PricingConfig cfg_;
};

TEST_F(BaselineTest, SdrFormulaInSurgeConditions) {
  Sdr sdr(cfg_);
  DemandOracle history = oracle_.Fork(0);
  ASSERT_TRUE(sdr.Warmup(grid_, &history).ok());
  const double pb = sdr.base_price();  // 2.0 under Table 1 demand
  ASSERT_DOUBLE_EQ(pb, 2.0);

  // demand 6 > supply 2: price = 0.5 * pb * 6/2 = 3.0.
  MarketSnapshot surge = SnapshotWithCounts(6, 2);
  std::vector<double> prices;
  ASSERT_TRUE(sdr.PriceRound(surge, &prices).ok());
  EXPECT_DOUBLE_EQ(prices[0], 0.5 * pb * 3.0);
  // Grids without surge keep the base price.
  EXPECT_DOUBLE_EQ(prices[1], pb);
}

TEST_F(BaselineTest, SdrClampsToPriceBounds) {
  Sdr sdr(cfg_);
  DemandOracle history = oracle_.Fork(0);
  ASSERT_TRUE(sdr.Warmup(grid_, &history).ok());
  // demand 50, supply 1: raw 0.5*2*50 = 50 clamps to p_max=5 (default cfg
  // p_max; explicit ladder only constrains candidates, SDR clamps to the
  // config interval).
  MarketSnapshot extreme = SnapshotWithCounts(50, 1);
  std::vector<double> prices;
  ASSERT_TRUE(sdr.PriceRound(extreme, &prices).ok());
  EXPECT_DOUBLE_EQ(prices[0], cfg_.p_max);
}

TEST_F(BaselineTest, SdrZeroSupplyUsesDemandAsRatio) {
  Sdr sdr(cfg_);
  DemandOracle history = oracle_.Fork(0);
  ASSERT_TRUE(sdr.Warmup(grid_, &history).ok());
  MarketSnapshot snap = SnapshotWithCounts(3, 0);
  std::vector<double> prices;
  ASSERT_TRUE(sdr.PriceRound(snap, &prices).ok());
  EXPECT_DOUBLE_EQ(prices[0], 0.5 * 2.0 * 3.0);  // coef * pb * |R|
}

TEST_F(BaselineTest, SdrBalancedSupplyKeepsBasePrice) {
  Sdr sdr(cfg_);
  DemandOracle history = oracle_.Fork(0);
  ASSERT_TRUE(sdr.Warmup(grid_, &history).ok());
  MarketSnapshot snap = SnapshotWithCounts(3, 3);
  std::vector<double> prices;
  ASSERT_TRUE(sdr.PriceRound(snap, &prices).ok());
  EXPECT_DOUBLE_EQ(prices[0], 2.0);
}

TEST_F(BaselineTest, SdeFormulaInSurgeConditions) {
  Sde sde(cfg_);
  DemandOracle history = oracle_.Fork(0);
  ASSERT_TRUE(sde.Warmup(grid_, &history).ok());
  const double pb = sde.base_price();
  ASSERT_DOUBLE_EQ(pb, 2.0);

  // demand 5 > supply 2: price = pb * (1 + 2e^{2-5}).
  MarketSnapshot surge = SnapshotWithCounts(5, 2);
  std::vector<double> prices;
  ASSERT_TRUE(sde.PriceRound(surge, &prices).ok());
  EXPECT_NEAR(prices[0], pb * (1.0 + 2.0 * std::exp(-3.0)), 1e-12);
  EXPECT_DOUBLE_EQ(prices[1], pb);
}

TEST_F(BaselineTest, SdeSurgeMultiplierBoundedByThree) {
  Sde sde(cfg_);
  DemandOracle history = oracle_.Fork(0);
  ASSERT_TRUE(sde.Warmup(grid_, &history).ok());
  // Tiny deficit (demand 3, supply 2) maximizes the multiplier at
  // 1 + 2e^{-1}; huge deficits push it toward 1.
  MarketSnapshot small_deficit = SnapshotWithCounts(3, 2);
  MarketSnapshot big_deficit = SnapshotWithCounts(20, 2);
  std::vector<double> p_small, p_big;
  ASSERT_TRUE(sde.PriceRound(small_deficit, &p_small).ok());
  ASSERT_TRUE(sde.PriceRound(big_deficit, &p_big).ok());
  EXPECT_GT(p_small[0], p_big[0]);
  EXPECT_LT(p_small[0], 3.0 * sde.base_price());
}

TEST_F(BaselineTest, CappedUcbPricesAtMyersonWhenSupplyAmple) {
  CappedUcb capped(cfg_);
  DemandOracle history = oracle_.Fork(0);
  ASSERT_TRUE(capped.Warmup(grid_, &history).ok());
  // supply 10 >= demand 4: the cap never binds, argmax p*S_hat(p) = 2.
  MarketSnapshot snap = SnapshotWithCounts(4, 10);
  std::vector<double> prices;
  ASSERT_TRUE(capped.PriceRound(snap, &prices).ok());
  EXPECT_DOUBLE_EQ(prices[0], 2.0);
}

TEST_F(BaselineTest, CappedUcbSurgesUnderLimitedSupply) {
  CappedUcb capped(cfg_);
  DemandOracle history = oracle_.Fork(0);
  ASSERT_TRUE(capped.Warmup(grid_, &history).ok());
  // demand 10, supply 1: Table 1 index at p: min(10*p*S(p), 1*p) =
  // {1: min(9, 1)=1, 2: min(16, 2)=2, 3: min(15, 3)=3} -> price 3.
  MarketSnapshot snap = SnapshotWithCounts(10, 1);
  std::vector<double> prices;
  ASSERT_TRUE(capped.PriceRound(snap, &prices).ok());
  EXPECT_DOUBLE_EQ(prices[0], 3.0);
}

TEST_F(BaselineTest, CappedUcbIgnoresCrossGridWorkers) {
  // The documented weakness: workers physically in grid 1 that could reach
  // grid 0's tasks are invisible to CappedUCB's per-grid cap.
  CappedUcb capped(cfg_);
  DemandOracle history = oracle_.Fork(0);
  ASSERT_TRUE(capped.Warmup(grid_, &history).ok());
  std::vector<Task> tasks = {MakeTask(grid_, 0, {9.0, 9.0}, 2.0)};
  // Worker sits across the cell boundary but within range.
  std::vector<Worker> workers = {MakeWorker(grid_, 0, {11.0, 9.0}, 5.0)};
  MarketSnapshot snap(&grid_, 0, std::move(tasks), std::move(workers));
  std::vector<double> prices;
  ASSERT_TRUE(capped.PriceRound(snap, &prices).ok());
  // Supply count for the task's grid is zero => the supply term is 0 for
  // every candidate, and the tie rule keeps p_min — even though a real
  // worker could roam in from the neighboring cell. (MAPS sees that worker
  // through the bipartite graph and would price the market properly.)
  EXPECT_DOUBLE_EQ(prices[0], 1.0);
}

TEST_F(BaselineTest, CappedUcbWithoutWarmStartLearnsFromFeedback) {
  CappedUcb capped(cfg_, /*warm_start=*/false);
  ASSERT_TRUE(capped.Warmup(grid_, nullptr).ok());
  std::vector<double> prices;
  // With ample supply and feedback matching Table 1, the learned price
  // should converge to the Myerson candidate 2.
  Rng rng(77);
  for (int round = 0; round < 300; ++round) {
    MarketSnapshot snap = SnapshotWithCounts(8, 20);
    ASSERT_TRUE(capped.PriceRound(snap, &prices).ok());
    std::vector<bool> accepted(snap.tasks().size());
    for (size_t i = 0; i < accepted.size(); ++i) {
      accepted[i] =
          rng.NextBernoulli(oracle_.TrueAcceptRatio(0, prices[0]));
    }
    capped.ObserveFeedback(snap, prices, accepted);
  }
  MarketSnapshot snap = SnapshotWithCounts(8, 20);
  ASSERT_TRUE(capped.PriceRound(snap, &prices).ok());
  EXPECT_DOUBLE_EQ(prices[0], 2.0);
}

TEST_F(BaselineTest, CappedUcbWithWarmStartRequiresHistory) {
  CappedUcb capped(cfg_);
  EXPECT_TRUE(capped.Warmup(grid_, nullptr).IsInvalidArgument());
}

TEST_F(BaselineTest, CappedUcbMemoryGrowsWithHistory) {
  CappedUcb capped(cfg_);
  DemandOracle history = oracle_.Fork(0);
  ASSERT_TRUE(capped.Warmup(grid_, &history).ok());
  const size_t before = capped.MemoryFootprintBytes();
  std::vector<double> prices;
  for (int round = 0; round < 200; ++round) {
    MarketSnapshot snap = SnapshotWithCounts(3, 2);
    ASSERT_TRUE(capped.PriceRound(snap, &prices).ok());
  }
  EXPECT_GT(capped.MemoryFootprintBytes(), before);
}

TEST_F(BaselineTest, AllBaselinesRequireWarmup) {
  std::vector<double> prices;
  MarketSnapshot snap = SnapshotWithCounts(1, 1);
  Sdr sdr(cfg_);
  EXPECT_EQ(sdr.PriceRound(snap, &prices).code(),
            StatusCode::kFailedPrecondition);
  Sde sde(cfg_);
  EXPECT_EQ(sde.PriceRound(snap, &prices).code(),
            StatusCode::kFailedPrecondition);
  CappedUcb capped(cfg_);
  EXPECT_EQ(capped.PriceRound(snap, &prices).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace maps
