// End-to-end reproduction of the paper's running example (Examples 1, 3, 5):
// two tasks sharing a single reachable worker plus one independent task,
// Table 1 acceptance ratios, candidate prices {1, 2, 3}.
//
// The paper derives: the shared-supply grid should be priced at 3, the
// independent grid at 2, and these prices yield the optimal expected total
// revenue 4.075 (reported as 4.1).

#include <gtest/gtest.h>

#include "../test_util.h"
#include "pricing/maps.h"
#include "pricing/oracle_search.h"

namespace maps {
namespace {

using testing_util::MakeTask;
using testing_util::MakeWorker;
using testing_util::TableOneOracle;

class PaperExampleTest : public ::testing::Test {
 protected:
  PaperExampleTest()
      : grid_(GridPartition::Make(Rect{0, 0, 8, 8}, 4, 4).ValueOrDie()),
        oracle_(TableOneOracle(grid_.num_cells(), /*seed=*/5)) {}

  /// r1 (d=1.3) and r2 (d=0.7) in one grid reachable only by w1; r3 (d=1.0)
  /// in another grid reachable by w2 and w3.
  MarketSnapshot MakeExampleSnapshot() {
    std::vector<Task> tasks = {
        MakeTask(grid_, 0, {1.0, 5.0}, 1.3),   // r1, cell 8
        MakeTask(grid_, 1, {1.5, 5.0}, 0.7),   // r2, cell 8
        MakeTask(grid_, 2, {5.0, 3.0}, 1.0),   // r3, cell 6
    };
    std::vector<Worker> workers = {
        MakeWorker(grid_, 0, {1.2, 5.0}, 0.6),  // w1 -> r1, r2
        MakeWorker(grid_, 1, {5.0, 3.2}, 0.5),  // w2 -> r3
        MakeWorker(grid_, 2, {5.2, 3.0}, 0.5),  // w3 -> r3
    };
    return MarketSnapshot(&grid_, 0, std::move(tasks), std::move(workers));
  }

  MapsOptions ExampleOptions() {
    MapsOptions opts;
    opts.pricing.explicit_ladder = {1.0, 2.0, 3.0};
    return opts;
  }

  GridPartition grid_;
  DemandOracle oracle_;
};

TEST_F(PaperExampleTest, GraphStructureMatchesFigure1b) {
  MarketSnapshot snap = MakeExampleSnapshot();
  const BipartiteGraph g =
      BipartiteGraph::Build(snap.tasks(), snap.workers(), grid_);
  // "at most two tasks can be served and at most one of r1 and r2".
  EXPECT_EQ(g.Degree(0), 1);
  EXPECT_EQ(g.Degree(1), 1);
  EXPECT_EQ(g.Neighbors(0)[0], 0);
  EXPECT_EQ(g.Neighbors(1)[0], 0);
  EXPECT_EQ(g.Degree(2), 2);
}

TEST_F(PaperExampleTest, MapsRecoversPaperPrices) {
  Maps maps_strategy(ExampleOptions());
  DemandOracle history = oracle_.Fork(1);
  ASSERT_TRUE(maps_strategy.Warmup(grid_, &history).ok());
  // Base price: every grid's ladder optimum under Table 1 is 2.
  EXPECT_DOUBLE_EQ(maps_strategy.base_price(), 2.0);

  MarketSnapshot snap = MakeExampleSnapshot();
  std::vector<double> prices;
  ASSERT_TRUE(maps_strategy.PriceRound(snap, &prices).ok());

  const GridId grid_a = grid_.CellOf({1.0, 5.0});  // r1/r2's market
  const GridId grid_b = grid_.CellOf({5.0, 3.0});  // r3's market
  EXPECT_DOUBLE_EQ(prices[grid_a], 3.0)
      << "limited shared supply should surge the price";
  EXPECT_DOUBLE_EQ(prices[grid_b], 2.0)
      << "sufficient supply keeps the Myerson price";

  // Supply allocation: one worker serves grid A, one serves grid B.
  EXPECT_EQ(maps_strategy.last_supply()[grid_a], 1);
  EXPECT_EQ(maps_strategy.last_supply()[grid_b], 1);
}

TEST_F(PaperExampleTest, PaperPricesAreLadderOptimal) {
  // Exhaustive check (Example 3's claim): (3, 2) maximizes the exact
  // expected revenue over all 9 price assignments, with value 4.075.
  MarketSnapshot snap = MakeExampleSnapshot();
  auto ladder = PriceLadder::FromPrices({1.0, 2.0, 3.0}).ValueOrDie();
  auto best = OracleSearch(snap, oracle_, ladder).ValueOrDie();

  const GridId grid_a = grid_.CellOf({1.0, 5.0});
  const GridId grid_b = grid_.CellOf({5.0, 3.0});
  EXPECT_DOUBLE_EQ(best.grid_prices[grid_a], 3.0);
  EXPECT_DOUBLE_EQ(best.grid_prices[grid_b], 2.0);
  EXPECT_NEAR(best.expected_revenue, 4.075, 1e-9);
}

TEST_F(PaperExampleTest, MapsAchievesTheOptimalExpectedRevenue) {
  Maps maps_strategy(ExampleOptions());
  DemandOracle history = oracle_.Fork(1);
  ASSERT_TRUE(maps_strategy.Warmup(grid_, &history).ok());
  MarketSnapshot snap = MakeExampleSnapshot();
  std::vector<double> prices;
  ASSERT_TRUE(maps_strategy.PriceRound(snap, &prices).ok());
  EXPECT_NEAR(ExpectedRevenueOfPrices(snap, oracle_, prices), 4.075, 1e-9);
}

TEST_F(PaperExampleTest, UnitPriceTwoIsOnlyOptimalWithoutRangeConstraints) {
  // Example 1's opening observation: if every worker could perform every
  // task, a uniform price of 2 would be optimal; with the range constraints
  // it no longer is.
  MarketSnapshot snap = MakeExampleSnapshot();
  std::vector<double> uniform2(grid_.num_cells(), 2.0);
  std::vector<double> paper_prices(grid_.num_cells(), 2.0);
  paper_prices[grid_.CellOf({1.0, 5.0})] = 3.0;
  EXPECT_LT(ExpectedRevenueOfPrices(snap, oracle_, uniform2),
            ExpectedRevenueOfPrices(snap, oracle_, paper_prices));
}

TEST_F(PaperExampleTest, DeltaTraceMatchesExampleFive) {
  // Example 5: grid A's first admitted increase (3 = d_r1 * index...) is
  // larger than grid B's (1.6); both grids admit exactly one worker.
  Maps maps_strategy(ExampleOptions());
  DemandOracle history = oracle_.Fork(1);
  ASSERT_TRUE(maps_strategy.Warmup(grid_, &history).ok());
  MarketSnapshot snap = MakeExampleSnapshot();
  std::vector<double> prices;
  ASSERT_TRUE(maps_strategy.PriceRound(snap, &prices).ok());

  const GridId grid_a = grid_.CellOf({1.0, 5.0});
  const GridId grid_b = grid_.CellOf({5.0, 3.0});
  const auto& trace = maps_strategy.last_delta_trace();
  ASSERT_EQ(trace[grid_a].size(), 1u);
  ASSERT_EQ(trace[grid_b].size(), 1u);
  EXPECT_GT(trace[grid_a][0], trace[grid_b][0]);
}

}  // namespace
}  // namespace maps
