#include "pricing/maps.h"

#include <gtest/gtest.h>

#include <cmath>

#include "../test_util.h"
#include "pricing/oracle_search.h"
#include "util/thread_pool.h"

namespace maps {
namespace {

using testing_util::RandomSnapshot;
using testing_util::TableOneOracle;

MapsOptions DefaultOptions() {
  MapsOptions opts;
  opts.pricing.explicit_ladder = {1.0, 1.5, 2.0, 2.5, 3.0};
  return opts;
}

DemandOracle UniformOracle(int num_grids, uint64_t seed) {
  UniformDemand proto(1.0, 5.0);
  return DemandOracle::Make(ReplicateDemand(proto, num_grids), seed)
      .ValueOrDie();
}

TEST(MapsTest, RequiresWarmup) {
  Maps strategy(DefaultOptions());
  auto grid = GridPartition::Make(Rect{0, 0, 10, 10}, 2, 2).ValueOrDie();
  MarketSnapshot snap(&grid, 0, {}, {});
  std::vector<double> prices;
  EXPECT_EQ(strategy.PriceRound(snap, &prices).code(),
            StatusCode::kFailedPrecondition);
}

TEST(MapsTest, PricesStayWithinLadderBounds) {
  auto grid = GridPartition::Make(Rect{0, 0, 20, 20}, 4, 4).ValueOrDie();
  Rng rng(31);
  Maps strategy(DefaultOptions());
  DemandOracle oracle = UniformOracle(grid.num_cells(), 3);
  DemandOracle history = oracle.Fork(0);
  ASSERT_TRUE(strategy.Warmup(grid, &history).ok());
  for (int round = 0; round < 10; ++round) {
    MarketSnapshot snap = RandomSnapshot(grid, rng, 12, 6, 1.0, 8.0);
    std::vector<double> prices;
    ASSERT_TRUE(strategy.PriceRound(snap, &prices).ok());
    ASSERT_EQ(static_cast<int>(prices.size()), grid.num_cells());
    for (double p : prices) {
      ASSERT_GE(p, 1.0);
      ASSERT_LE(p, 3.0);
    }
  }
}

TEST(MapsTest, DeterministicAcrossIdenticalRuns) {
  auto grid = GridPartition::Make(Rect{0, 0, 20, 20}, 3, 3).ValueOrDie();
  std::vector<double> prices1, prices2;
  for (std::vector<double>* out : {&prices1, &prices2}) {
    Maps strategy(DefaultOptions());
    DemandOracle oracle = UniformOracle(grid.num_cells(), 17);
    DemandOracle history = oracle.Fork(4);
    ASSERT_TRUE(strategy.Warmup(grid, &history).ok());
    Rng rng(55);
    MarketSnapshot snap = RandomSnapshot(grid, rng, 15, 8, 2.0, 9.0);
    ASSERT_TRUE(strategy.PriceRound(snap, out).ok());
  }
  EXPECT_EQ(prices1, prices2);
}

TEST(MapsTest, RepeatedRoundsOnSameSnapshotAreIdentical) {
  // Workspace-reuse guard: PriceRound pools its graph/matching/heap buffers
  // across rounds; no state may leak from one round into the next. Pricing
  // the same snapshot repeatedly (no feedback in between) must reproduce
  // bit-identical prices, supply levels, and delta traces.
  auto grid = GridPartition::Make(Rect{0, 0, 20, 20}, 3, 3).ValueOrDie();
  Maps strategy(DefaultOptions());
  DemandOracle oracle = UniformOracle(grid.num_cells(), 17);
  DemandOracle history = oracle.Fork(4);
  ASSERT_TRUE(strategy.Warmup(grid, &history).ok());
  Rng rng(55);
  MarketSnapshot snap = RandomSnapshot(grid, rng, 20, 10, 2.0, 9.0);

  std::vector<double> first_prices;
  ASSERT_TRUE(strategy.PriceRound(snap, &first_prices).ok());
  const std::vector<int> first_supply = strategy.last_supply();
  const auto first_trace = strategy.last_delta_trace();

  // Interleave a differently-shaped snapshot so the pooled buffers must
  // resize back, then re-price the original.
  MarketSnapshot other = RandomSnapshot(grid, rng, 7, 3, 1.0, 4.0);
  std::vector<double> other_prices;
  ASSERT_TRUE(strategy.PriceRound(other, &other_prices).ok());

  std::vector<double> second_prices;
  ASSERT_TRUE(strategy.PriceRound(snap, &second_prices).ok());
  EXPECT_EQ(first_prices, second_prices);
  EXPECT_EQ(first_supply, strategy.last_supply());
  EXPECT_EQ(first_trace, strategy.last_delta_trace());
}

TEST(MapsTest, StableGridCountPreservesStateAndChangeIsCountedReset) {
  // EnsureGridState used to wipe every grid's UCB/change statistics
  // SILENTLY whenever the grid count changed. Policy now: a stable count
  // never touches learned state; a changed count still resets (indices
  // denote different geographic cells under a new partition, so carrying
  // statistics over by position would mislearn), but the reset is logged
  // and counted.
  auto small = GridPartition::Make(Rect{0, 0, 20, 20}, 2, 2).ValueOrDie();
  auto large = GridPartition::Make(Rect{0, 0, 20, 20}, 3, 3).ValueOrDie();
  Maps strategy(DefaultOptions());
  DemandOracle oracle = UniformOracle(small.num_cells(), 3);
  DemandOracle history = oracle.Fork(0);
  ASSERT_TRUE(strategy.Warmup(small, &history).ok());

  // Accumulate online observations on the 4 original grids.
  Rng rng(88);
  std::vector<double> prices;
  for (int round = 0; round < 3; ++round) {
    MarketSnapshot snap = RandomSnapshot(small, rng, 12, 6, 2.0, 8.0);
    ASSERT_TRUE(strategy.PriceRound(snap, &prices).ok());
    std::vector<bool> accepted(snap.tasks().size(), true);
    strategy.ObserveFeedback(snap, prices, accepted);
  }
  std::vector<int64_t> before(4);
  for (int g = 0; g < 4; ++g) before[g] = strategy.UcbObservations(g);
  for (int g = 0; g < 4; ++g) ASSERT_GT(before[g], 0);
  EXPECT_EQ(strategy.grid_state_resets(), 0);

  // Same grid count again: nothing is reset.
  MarketSnapshot same = RandomSnapshot(small, rng, 10, 5, 2.0, 8.0);
  ASSERT_TRUE(strategy.PriceRound(same, &prices).ok());
  for (int g = 0; g < 4; ++g) {
    EXPECT_EQ(strategy.UcbObservations(g), before[g]) << "grid " << g;
  }
  EXPECT_EQ(strategy.grid_state_resets(), 0);

  // Re-partition to 3x3: a counted (and logged) full reset, fresh state.
  MarketSnapshot repart = RandomSnapshot(large, rng, 12, 6, 2.0, 8.0);
  ASSERT_TRUE(strategy.PriceRound(repart, &prices).ok());
  ASSERT_EQ(static_cast<int>(prices.size()), 9);
  EXPECT_EQ(strategy.grid_state_resets(), 1);
  for (int g = 0; g < 9; ++g) {
    EXPECT_EQ(strategy.UcbObservations(g), 0) << "grid " << g;
  }
}

TEST(MapsTest, DeltaTraceNonIncreasingPerGrid) {
  // Lemma 9: within a round, a grid's admitted increases are non-increasing.
  auto grid = GridPartition::Make(Rect{0, 0, 30, 30}, 3, 3).ValueOrDie();
  Rng rng(101);
  for (int trial = 0; trial < 25; ++trial) {
    Maps strategy(DefaultOptions());
    DemandOracle oracle = UniformOracle(grid.num_cells(), trial);
    DemandOracle history = oracle.Fork(0);
    ASSERT_TRUE(strategy.Warmup(grid, &history).ok());
    MarketSnapshot snap = RandomSnapshot(grid, rng, 30, 20, 3.0, 15.0);
    std::vector<double> prices;
    ASSERT_TRUE(strategy.PriceRound(snap, &prices).ok());
    // Lemma 9 is proven on the continuous concave revenue curve; on a
    // discrete ladder the index can plateau and later jump, and MAPS
    // deliberately grows through plateaus at negligible priority (see
    // maps.cc). The lemma therefore applies to the prefix of genuine
    // increases before the first plateau step.
    constexpr double kPlateauCutoff = 1e-6;
    for (const auto& trace : strategy.last_delta_trace()) {
      for (size_t i = 0; i < trace.size(); ++i) {
        ASSERT_GT(trace[i], 0.0) << "admitted a non-positive increase";
      }
      for (size_t i = 1; i < trace.size(); ++i) {
        if (trace[i] < kPlateauCutoff || trace[i - 1] < kPlateauCutoff) {
          break;
        }
        ASSERT_LE(trace[i], trace[i - 1] + 1e-9)
            << "trial " << trial
            << ": Delta increased within a grid's pre-plateau prefix";
      }
    }
  }
}

TEST(MapsTest, SupplyNeverExceedsGridDemandOrWorkerCount) {
  auto grid = GridPartition::Make(Rect{0, 0, 30, 30}, 3, 3).ValueOrDie();
  Rng rng(202);
  Maps strategy(DefaultOptions());
  DemandOracle oracle = UniformOracle(grid.num_cells(), 6);
  DemandOracle history = oracle.Fork(0);
  ASSERT_TRUE(strategy.Warmup(grid, &history).ok());
  for (int round = 0; round < 10; ++round) {
    MarketSnapshot snap = RandomSnapshot(grid, rng, 25, 10, 2.0, 12.0);
    std::vector<double> prices;
    ASSERT_TRUE(strategy.PriceRound(snap, &prices).ok());
    int total_supply = 0;
    for (int g = 0; g < grid.num_cells(); ++g) {
      const int n = strategy.last_supply()[g];
      ASSERT_GE(n, 0);
      ASSERT_LE(n, static_cast<int>(snap.TasksInGrid(g).size()));
      total_supply += n;
    }
    ASSERT_LE(total_supply, static_cast<int>(snap.workers().size()));
  }
}

class MapsApproximationTest : public ::testing::TestWithParam<int> {};

TEST_P(MapsApproximationTest, NearOptimalOnBruteForcedInstances) {
  // Theorem 8-flavored check: MAPS's prices achieve a large fraction of the
  // brute-force optimum on tiny instances. The bound is (1 - 1/e) on the
  // L approximation with exact acceptance ratios; we allow slack for the
  // sampling error of the learned ratios.
  const int seed = GetParam();
  auto grid = GridPartition::Make(Rect{0, 0, 12, 12}, 2, 2).ValueOrDie();
  Rng rng(9000 + seed);
  MapsOptions opts;
  opts.pricing.explicit_ladder = {1.0, 2.0, 3.0};
  Maps strategy(opts);
  DemandOracle oracle = TableOneOracle(grid.num_cells(), 70 + seed);
  DemandOracle history = oracle.Fork(0);
  ASSERT_TRUE(strategy.Warmup(grid, &history).ok());

  MarketSnapshot snap = RandomSnapshot(grid, rng, 6, 4, 2.0, 8.0);
  std::vector<double> prices;
  ASSERT_TRUE(strategy.PriceRound(snap, &prices).ok());
  const double achieved = ExpectedRevenueOfPrices(snap, oracle, prices);

  auto ladder = PriceLadder::FromPrices({1.0, 2.0, 3.0}).ValueOrDie();
  const double optimal =
      OracleSearch(snap, oracle, ladder).ValueOrDie().expected_revenue;
  if (optimal <= 0.0) {
    GTEST_SKIP() << "degenerate instance: no task is reachable";
  }
  EXPECT_GE(achieved, 0.5 * optimal)
      << "achieved " << achieved << " vs optimal " << optimal;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapsApproximationTest,
                         ::testing::Range(0, 12));

TEST(MapsTest, PaperLiteralDeltaModeAlsoWorks) {
  auto grid = GridPartition::Make(Rect{0, 0, 20, 20}, 2, 2).ValueOrDie();
  MapsOptions opts = DefaultOptions();
  opts.delta_mode = MapsOptions::DeltaMode::kPaperLiteral;
  Maps strategy(opts);
  DemandOracle oracle = UniformOracle(grid.num_cells(), 8);
  DemandOracle history = oracle.Fork(0);
  ASSERT_TRUE(strategy.Warmup(grid, &history).ok());
  Rng rng(66);
  MarketSnapshot snap = RandomSnapshot(grid, rng, 10, 5, 2.0, 10.0);
  std::vector<double> prices;
  ASSERT_TRUE(strategy.PriceRound(snap, &prices).ok());
  for (double p : prices) {
    ASSERT_GE(p, 1.0);
    ASSERT_LE(p, 3.0);
  }
}

TEST(MapsTest, FeedbackUpdatesUcbAndChangeDetectorResets) {
  auto grid = GridPartition::Make(Rect{0, 0, 10, 10}, 1, 1).ValueOrDie();
  MapsOptions opts;
  opts.pricing.explicit_ladder = {1.0, 2.0, 3.0};
  opts.change_window = 25;
  Maps strategy(opts);
  DemandOracle oracle = TableOneOracle(1, 4);
  DemandOracle history = oracle.Fork(0);
  ASSERT_TRUE(strategy.Warmup(grid, &history).ok());

  // Feed rounds whose acceptance flips from "always" to "never": the
  // binomial detector must fire at least once.
  Rng rng(10);
  std::vector<double> prices;
  for (int round = 0; round < 40; ++round) {
    MarketSnapshot snap = RandomSnapshot(grid, rng, 10, 5, 2.0, 6.0);
    ASSERT_TRUE(strategy.PriceRound(snap, &prices).ok());
    const bool accept_all = round < 20;
    std::vector<bool> accepted(snap.tasks().size(), accept_all);
    strategy.ObserveFeedback(snap, prices, accepted);
  }
  EXPECT_GT(strategy.change_resets(), 0);
}

TEST(MapsTest, NoWarmStartStillPricesViaExploration) {
  auto grid = GridPartition::Make(Rect{0, 0, 10, 10}, 2, 2).ValueOrDie();
  MapsOptions opts = DefaultOptions();
  opts.warm_start_from_base = false;
  Maps strategy(opts);
  ASSERT_TRUE(strategy.Warmup(grid, nullptr).ok());  // no probes needed
  Rng rng(12);
  MarketSnapshot snap = RandomSnapshot(grid, rng, 8, 4, 2.0, 8.0);
  std::vector<double> prices;
  ASSERT_TRUE(strategy.PriceRound(snap, &prices).ok());
  for (double p : prices) {
    ASSERT_GE(p, 1.0);
    ASSERT_LE(p, 3.0);
  }
}

TEST(MapsTest, AmpleSupplyConvergesToPerGridMyersonRung) {
  // Plateau regression test: with far more workers than tasks, every grid
  // must end at (close to) its ladder-optimal Myerson rung — not stranded
  // at a high intersection price by a zero-Delta plateau of the
  // discretized index.
  auto grid = GridPartition::Make(Rect{0, 0, 20, 20}, 2, 2).ValueOrDie();
  MapsOptions opts;
  opts.pricing.explicit_ladder = {1.0, 1.5, 2.0, 2.5, 3.0, 4.0};
  Maps strategy(opts);
  // Heterogeneous demand: one cheap grid, one expensive grid.
  std::vector<std::unique_ptr<DemandModel>> models;
  models.push_back(std::make_unique<TruncatedNormalDemand>(1.5, 1.0, 1, 5));
  models.push_back(std::make_unique<TruncatedNormalDemand>(3.0, 1.0, 1, 5));
  models.push_back(std::make_unique<TruncatedNormalDemand>(2.0, 1.0, 1, 5));
  models.push_back(std::make_unique<TruncatedNormalDemand>(2.5, 1.0, 1, 5));
  DemandOracle oracle =
      DemandOracle::Make(std::move(models), 5).ValueOrDie();
  DemandOracle history = oracle.Fork(0);
  ASSERT_TRUE(strategy.Warmup(grid, &history).ok());

  // 6 tasks per grid, 40 workers covering everything: supply is ample.
  std::vector<Task> tasks;
  std::vector<Worker> workers;
  int id = 0;
  for (int g = 0; g < 4; ++g) {
    const Point center = grid.CellCenter(g);
    for (int i = 0; i < 6; ++i) {
      tasks.push_back(testing_util::MakeTask(
          grid, id++, {center.x - 2.0 + i * 0.5, center.y}, 2.0 + i));
    }
  }
  for (int i = 0; i < 40; ++i) {
    workers.push_back(testing_util::MakeWorker(
        grid, i, {1.0 + (i % 8) * 2.5, 1.0 + (i / 8) * 4.0}, 30.0));
  }
  MarketSnapshot snap(&grid, 0, std::move(tasks), std::move(workers));
  std::vector<double> prices;
  ASSERT_TRUE(strategy.PriceRound(snap, &prices).ok());

  auto ladder = PriceLadder::FromPrices({1.0, 1.5, 2.0, 2.5, 3.0, 4.0})
                    .ValueOrDie();
  for (int g = 0; g < 4; ++g) {
    // Supply grew at least until the demand curve unbinds (growth may stop
    // once the index reaches its supply-unconstrained ceiling, which can
    // happen below n = |R_tg|).
    EXPECT_GE(strategy.last_supply()[g], 3) << "grid " << g;
    // Chosen rung within one rung of the true ladder optimum.
    double best_v = -1.0;
    int best_i = 0;
    for (int i = 0; i < ladder.size(); ++i) {
      const double v =
          ladder.price(i) * oracle.TrueAcceptRatio(g, ladder.price(i));
      if (v > best_v) {
        best_v = v;
        best_i = i;
      }
    }
    const int chosen = ladder.SnapIndex(prices[g]);
    EXPECT_LE(std::abs(chosen - best_i), 1)
        << "grid " << g << " chose rung " << ladder.price(chosen)
        << " but the optimum is " << ladder.price(best_i);
  }
  // The cheap and expensive grids must be priced differently.
  EXPECT_LT(prices[0], prices[1]);
}

TEST(MapsTest, TruncatedExpectationApproxAlsoPricesSanely) {
  auto grid = GridPartition::Make(Rect{0, 0, 20, 20}, 2, 2).ValueOrDie();
  MapsOptions opts = DefaultOptions();
  opts.supply_approx = MapsOptions::SupplyApprox::kTruncatedExpectation;
  Maps strategy(opts);
  DemandOracle oracle = UniformOracle(grid.num_cells(), 8);
  DemandOracle history = oracle.Fork(0);
  ASSERT_TRUE(strategy.Warmup(grid, &history).ok());
  Rng rng(66);
  for (int round = 0; round < 5; ++round) {
    MarketSnapshot snap = RandomSnapshot(grid, rng, 12, 6, 2.0, 10.0);
    std::vector<double> prices;
    ASSERT_TRUE(strategy.PriceRound(snap, &prices).ok());
    for (double p : prices) {
      ASSERT_GE(p, 1.0);
      ASSERT_LE(p, 3.0);
    }
  }
}

TEST(MapsTest, EmptyMarketFallsBackToBasePrice) {
  auto grid = GridPartition::Make(Rect{0, 0, 10, 10}, 2, 2).ValueOrDie();
  Maps strategy(DefaultOptions());
  DemandOracle oracle = UniformOracle(grid.num_cells(), 2);
  DemandOracle history = oracle.Fork(0);
  ASSERT_TRUE(strategy.Warmup(grid, &history).ok());
  MarketSnapshot snap(&grid, 0, {}, {});
  std::vector<double> prices;
  ASSERT_TRUE(strategy.PriceRound(snap, &prices).ok());
  for (double p : prices) {
    EXPECT_DOUBLE_EQ(p, strategy.base_price());
  }
}

TEST(MapsTest, MemoryFootprintGrowsWithGrids) {
  auto small = GridPartition::Make(Rect{0, 0, 10, 10}, 2, 2).ValueOrDie();
  auto large = GridPartition::Make(Rect{0, 0, 10, 10}, 10, 10).ValueOrDie();
  Maps s1(DefaultOptions()), s2(DefaultOptions());
  DemandOracle o1 = UniformOracle(small.num_cells(), 1);
  DemandOracle o2 = UniformOracle(large.num_cells(), 1);
  ASSERT_TRUE(s1.Warmup(small, &o1).ok());
  ASSERT_TRUE(s2.Warmup(large, &o2).ok());
  EXPECT_GT(s2.MemoryFootprintBytes(), s1.MemoryFootprintBytes());
}

// ---------------------------------------------------------------------------
// Round-scoped maximizer engine (PR 4): the incremental envelope evaluation
// and the pool-sharded precompute must be bit-identical to the reference
// ladder scan and to the pool-less run, per the DESIGN.md §8/§10 policy.
// ---------------------------------------------------------------------------

/// Everything observable from a multi-round MAPS session with online
/// feedback: posted prices, supply levels, and admitted delta traces.
struct SessionTrace {
  std::vector<std::vector<double>> prices;
  std::vector<std::vector<int>> supplies;
  std::vector<std::vector<std::vector<double>>> deltas;

  bool operator==(const SessionTrace& other) const {
    return prices == other.prices && supplies == other.supplies &&
           deltas == other.deltas;
  }
};

/// Runs `rounds` PriceRound/ObserveFeedback cycles on a deterministic
/// random market. Requester valuations are drawn from a stream independent
/// of the configuration under test, so two configurations that post the
/// same prices also see the same feedback.
SessionTrace RunFeedbackSession(const MapsOptions& opts, ThreadPool* pool,
                                int rounds = 12) {
  auto grid = GridPartition::Make(Rect{0, 0, 30, 30}, 4, 4).ValueOrDie();
  Maps strategy(opts);
  if (pool != nullptr) strategy.LendPool(pool);
  DemandOracle oracle = UniformOracle(grid.num_cells(), 21);
  DemandOracle history = oracle.Fork(6);
  EXPECT_TRUE(strategy.Warmup(grid, &history).ok());
  Rng market_rng(77);
  Rng valuation_rng(78);
  SessionTrace trace;
  for (int round = 0; round < rounds; ++round) {
    MarketSnapshot snap =
        RandomSnapshot(grid, market_rng, 40, 16, 2.0, 12.0);
    std::vector<double> prices;
    EXPECT_TRUE(strategy.PriceRound(snap, &prices).ok());
    std::vector<bool> accepted(snap.tasks().size());
    for (size_t i = 0; i < snap.tasks().size(); ++i) {
      accepted[i] = valuation_rng.NextDouble(1.0, 4.0) >=
                    prices[snap.tasks()[i].grid];
    }
    strategy.ObserveFeedback(snap, prices, accepted);
    trace.prices.push_back(prices);
    trace.supplies.push_back(strategy.last_supply());
    trace.deltas.push_back(strategy.last_delta_trace());
  }
  return trace;
}

TEST(MapsPoolBackedTest, PriceRoundBitIdenticalAcrossThreadCounts) {
  const SessionTrace serial = RunFeedbackSession(DefaultOptions(), nullptr);
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    const SessionTrace pooled = RunFeedbackSession(DefaultOptions(), &pool);
    EXPECT_TRUE(pooled == serial) << threads << " threads";
  }
}

TEST(MapsPoolBackedTest, PoolSurvivesReuseAcrossSessions) {
  // One pool backing several strategy lifetimes, interleaved with other
  // submissions, must leave no residue that changes results.
  ThreadPool pool(3);
  const SessionTrace first = RunFeedbackSession(DefaultOptions(), &pool);
  const SessionTrace second = RunFeedbackSession(DefaultOptions(), &pool);
  EXPECT_TRUE(first == second);
}

TEST(MapsTest, MaximizerEngineMatchesReferenceScanExactly) {
  for (bool geometric_ladder : {false, true}) {
    MapsOptions engine_opts = DefaultOptions();
    if (geometric_ladder) engine_opts.pricing.explicit_ladder.clear();
    MapsOptions scan_opts = engine_opts;
    scan_opts.use_maximizer_engine = false;
    const SessionTrace engine = RunFeedbackSession(engine_opts, nullptr);
    const SessionTrace scan = RunFeedbackSession(scan_opts, nullptr);
    EXPECT_TRUE(engine == scan)
        << (geometric_ladder ? "geometric" : "explicit") << " ladder";
  }
}

TEST(MapsTest, MaximizerEngineMatchesScanUnderPaperLiteralDelta) {
  MapsOptions engine_opts = DefaultOptions();
  engine_opts.delta_mode = MapsOptions::DeltaMode::kPaperLiteral;
  MapsOptions scan_opts = engine_opts;
  scan_opts.use_maximizer_engine = false;
  EXPECT_TRUE(RunFeedbackSession(engine_opts, nullptr) ==
              RunFeedbackSession(scan_opts, nullptr));
}

TEST(MapsTest, PeakRoundBytesStableAcrossRepeatedRounds) {
  // Pooling regression guard: repricing identical markets must not grow
  // the per-round transient footprint once the pools are warm.
  auto grid = GridPartition::Make(Rect{0, 0, 20, 20}, 3, 3).ValueOrDie();
  Maps strategy(DefaultOptions());
  DemandOracle oracle = UniformOracle(grid.num_cells(), 17);
  DemandOracle history = oracle.Fork(4);
  ASSERT_TRUE(strategy.Warmup(grid, &history).ok());
  Rng rng(55);
  MarketSnapshot snap = RandomSnapshot(grid, rng, 30, 12, 2.0, 9.0);
  std::vector<double> prices;
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(strategy.PriceRound(snap, &prices).ok());
  }
  const size_t warm_peak = strategy.peak_round_bytes();
  ASSERT_GT(warm_peak, 0u);
  for (int round = 0; round < 50; ++round) {
    ASSERT_TRUE(strategy.PriceRound(snap, &prices).ok());
  }
  EXPECT_EQ(strategy.peak_round_bytes(), warm_peak)
      << "round scratch grew while repricing an identical market";
}

}  // namespace
}  // namespace maps
