#include "pricing/price_postprocess.h"

#include <gtest/gtest.h>

#include <numeric>

#include "../test_util.h"
#include "pricing/maps.h"

namespace maps {
namespace {

using testing_util::RandomSnapshot;
using testing_util::TableOneOracle;

GridPartition MakeGrid(int rows, int cols) {
  return GridPartition::Make(Rect{0, 0, 10.0 * cols, 10.0 * rows}, rows,
                             cols)
      .ValueOrDie();
}

TEST(PriceBoundsTest, ClampsBothSides) {
  std::vector<double> prices = {0.5, 2.0, 9.0};
  ApplyPriceBounds(1.0, 5.0, &prices);
  EXPECT_EQ(prices, (std::vector<double>{1.0, 2.0, 5.0}));
}

TEST(PriceBoundsTest, RejectsInvertedBounds) {
  std::vector<double> prices = {1.0};
  EXPECT_DEATH(ApplyPriceBounds(5.0, 1.0, &prices), "Check failed");
}

TEST(SmoothPricesTest, LambdaZeroIsIdentity) {
  GridPartition grid = MakeGrid(2, 2);
  std::vector<double> prices = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> copy = prices;
  SmoothPrices(grid, 0.0, 3, &prices);
  EXPECT_EQ(prices, copy);
}

TEST(SmoothPricesTest, UniformFieldIsFixedPoint) {
  GridPartition grid = MakeGrid(3, 4);
  std::vector<double> prices(12, 2.5);
  SmoothPrices(grid, 0.7, 5, &prices);
  for (double p : prices) EXPECT_DOUBLE_EQ(p, 2.5);
}

TEST(SmoothPricesTest, ReducesNeighborGap) {
  GridPartition grid = MakeGrid(4, 4);
  std::vector<double> prices(16, 1.0);
  prices[5] = 5.0;  // a single surged cell
  const double gap_before = MaxNeighborGap(grid, prices);
  SmoothPrices(grid, 0.5, 1, &prices);
  const double gap_after = MaxNeighborGap(grid, prices);
  EXPECT_LT(gap_after, gap_before);
  // The surge diffuses into neighbors instead of disappearing.
  EXPECT_GT(prices[5], prices[0]);
  EXPECT_GT(prices[4], 1.0);
}

TEST(SmoothPricesTest, MoreRoundsSmootherField) {
  GridPartition grid = MakeGrid(5, 5);
  std::vector<double> base(25, 1.0);
  base[12] = 5.0;
  std::vector<double> one = base, many = base;
  SmoothPrices(grid, 0.5, 1, &one);
  SmoothPrices(grid, 0.5, 8, &many);
  EXPECT_LT(MaxNeighborGap(grid, many), MaxNeighborGap(grid, one));
}

TEST(SmoothPricesTest, PreservesMeanOnInteriorHeavyGrids) {
  // Jacobi smoothing with symmetric neighborhoods approximately preserves
  // total price mass; verify drift is small.
  GridPartition grid = MakeGrid(6, 6);
  Rng rng(5);
  std::vector<double> prices(36);
  for (auto& p : prices) p = rng.NextDouble(1.0, 5.0);
  const double mean_before =
      std::accumulate(prices.begin(), prices.end(), 0.0) /
      static_cast<double>(prices.size());
  SmoothPrices(grid, 0.4, 3, &prices);
  const double mean_after =
      std::accumulate(prices.begin(), prices.end(), 0.0) /
      static_cast<double>(prices.size());
  EXPECT_NEAR(mean_after, mean_before, 0.25);
}

TEST(MaxNeighborGapTest, KnownField) {
  GridPartition grid = MakeGrid(2, 2);
  // Layout (row-major from bottom-left): 1 2 / 7 3.
  std::vector<double> prices = {1.0, 2.0, 7.0, 3.0};
  // Adjacent pairs: (1,2), (1,7), (2,3), (7,3) -> max |diff| = 6.
  EXPECT_DOUBLE_EQ(MaxNeighborGap(grid, prices), 6.0);
}

TEST(PostprocessedStrategyTest, SmoothsAndCapsMapsPrices) {
  GridPartition grid = MakeGrid(4, 4);
  DemandOracle oracle = TableOneOracle(grid.num_cells(), 3);

  MapsOptions opts;
  opts.pricing.explicit_ladder = {1.0, 2.0, 3.0};
  PostprocessOptions post;
  post.smoothing_lambda = 0.5;
  post.price_cap = 2.5;
  post.price_floor = 1.0;
  PostprocessedStrategy strategy(std::make_unique<Maps>(opts), post);
  EXPECT_EQ(strategy.name(), "MAPS+smooth+cap");

  DemandOracle history = oracle.Fork(0);
  ASSERT_TRUE(strategy.Warmup(grid, &history).ok());
  Rng rng(8);
  MarketSnapshot snap = RandomSnapshot(grid, rng, 20, 4, 3.0, 12.0);
  std::vector<double> prices;
  ASSERT_TRUE(strategy.PriceRound(snap, &prices).ok());
  for (double p : prices) {
    ASSERT_GE(p, 1.0);
    ASSERT_LE(p, 2.5);  // the cap binds below the ladder's 3.0
  }
}

TEST(PostprocessedStrategyTest, SmoothingReducesGapVersusRawMaps) {
  GridPartition grid = MakeGrid(4, 4);
  DemandOracle oracle = TableOneOracle(grid.num_cells(), 3);
  MapsOptions opts;
  opts.pricing.explicit_ladder = {1.0, 2.0, 3.0};

  auto run = [&](double lambda) {
    PostprocessOptions post;
    post.smoothing_lambda = lambda;
    PostprocessedStrategy strategy(std::make_unique<Maps>(opts), post);
    DemandOracle history = oracle.Fork(0);
    EXPECT_TRUE(strategy.Warmup(grid, &history).ok());
    Rng rng(8);
    MarketSnapshot snap = RandomSnapshot(grid, rng, 20, 3, 3.0, 12.0);
    std::vector<double> prices;
    EXPECT_TRUE(strategy.PriceRound(snap, &prices).ok());
    return MaxNeighborGap(grid, prices);
  };
  EXPECT_LE(run(0.6), run(0.0));
}

TEST(PostprocessedStrategyTest, PlainDecoratorKeepsName) {
  MapsOptions opts;
  PostprocessedStrategy strategy(std::make_unique<Maps>(opts),
                                 PostprocessOptions{});
  EXPECT_EQ(strategy.name(), "MAPS");
  EXPECT_NE(strategy.inner(), nullptr);
}

}  // namespace
}  // namespace maps
