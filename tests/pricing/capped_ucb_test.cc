#include "pricing/capped_ucb.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace maps {
namespace {

using testing_util::RandomSnapshot;
using testing_util::TableOneOracle;

PricingConfig TestConfig() {
  PricingConfig cfg;
  cfg.explicit_ladder = {1.0, 2.0, 3.0};
  return cfg;
}

TEST(CappedUcbTest, StableGridCountPreservesStateAndChangeIsCountedReset) {
  // Regression for the baselines' silent learned-state wipe: CappedUcb's
  // EnsureGridState cleared the per-grid UCB tables whenever the grid count
  // changed, with no log and no counter — the PR 1 fix landed only in MAPS.
  // Policy (now shared with Maps::EnsureGridState): a stable count never
  // touches learned state; a changed count still resets (indices denote
  // different geographic cells under a new partition), but the reset is
  // logged and counted.
  auto small = GridPartition::Make(Rect{0, 0, 20, 20}, 2, 2).ValueOrDie();
  auto large = GridPartition::Make(Rect{0, 0, 20, 20}, 3, 3).ValueOrDie();
  CappedUcb strategy(TestConfig());
  DemandOracle history = TableOneOracle(small.num_cells());
  ASSERT_TRUE(strategy.Warmup(small, &history).ok());

  // Warm-up probes seed every grid's UCB table.
  std::vector<int64_t> warmed(4);
  for (int g = 0; g < 4; ++g) {
    warmed[g] = strategy.UcbObservations(g);
    ASSERT_GT(warmed[g], 0) << "grid " << g;
  }
  EXPECT_EQ(strategy.grid_state_resets(), 0);

  // Same grid count: Warmup-learned statistics survive PriceRound and
  // accumulate through feedback instead of being wiped.
  Rng rng(13);
  std::vector<double> prices;
  for (int round = 0; round < 3; ++round) {
    MarketSnapshot snap = RandomSnapshot(small, rng, 10, 5, 2.0, 8.0);
    ASSERT_TRUE(strategy.PriceRound(snap, &prices).ok());
    std::vector<bool> accepted(snap.tasks().size(), true);
    strategy.ObserveFeedback(snap, prices, accepted);
  }
  for (int g = 0; g < 4; ++g) {
    EXPECT_GE(strategy.UcbObservations(g), warmed[g]) << "grid " << g;
  }
  EXPECT_EQ(strategy.grid_state_resets(), 0);

  // Re-partition to 3x3: a counted (and logged) full reset, fresh state.
  MarketSnapshot repart = RandomSnapshot(large, rng, 12, 6, 2.0, 8.0);
  ASSERT_TRUE(strategy.PriceRound(repart, &prices).ok());
  ASSERT_EQ(static_cast<int>(prices.size()), 9);
  EXPECT_EQ(strategy.grid_state_resets(), 1);
  for (int g = 0; g < 9; ++g) {
    EXPECT_EQ(strategy.UcbObservations(g), 0) << "grid " << g;
  }
}

TEST(CappedUcbTest, RepeatedSameCountWarmupLikeRoundsDoNotReset) {
  // Pricing many rounds on the same partition must never trip the reset
  // counter, no matter how the market contents vary.
  auto grid = GridPartition::Make(Rect{0, 0, 10, 10}, 2, 2).ValueOrDie();
  CappedUcb strategy(TestConfig());
  DemandOracle history = TableOneOracle(grid.num_cells());
  ASSERT_TRUE(strategy.Warmup(grid, &history).ok());
  Rng rng(7);
  std::vector<double> prices;
  for (int round = 0; round < 10; ++round) {
    MarketSnapshot snap =
        RandomSnapshot(grid, rng, 2 + round, 1 + round / 2, 1.0, 6.0);
    ASSERT_TRUE(strategy.PriceRound(snap, &prices).ok());
  }
  EXPECT_EQ(strategy.grid_state_resets(), 0);
}

}  // namespace
}  // namespace maps
