#include "pricing/oracle_exact.h"

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "pricing/oracle_search.h"
#include "pricing/strategy.h"
#include "sim/metrics.h"

namespace maps {
namespace {

using testing_util::MakeTask;
using testing_util::MakeWorker;
using testing_util::RandomSnapshot;
using testing_util::TableOneOracle;

/// A <=25-task random market the exact enumerator can still score.
MarketSnapshot SmallMarket(const GridPartition& grid, uint64_t seed,
                           int num_tasks = 12, int num_workers = 6) {
  Rng rng(seed);
  return RandomSnapshot(grid, rng, num_tasks, num_workers, 8.0, 30.0);
}

TEST(OracleExactTest, McCiEstimateCoversExactValue) {
  // The headline acceptance test: on a <=25-task instance the CI-bounded
  // Monte-Carlo estimate must land inside its own stated interval around
  // the exact possible-world expectation — for the posted prices of every
  // one of the paper's five strategies.
  auto grid = GridPartition::Make(Rect{0, 0, 40, 40}, 2, 2).ValueOrDie();
  DemandOracle oracle = TableOneOracle(grid.num_cells());
  const MarketSnapshot snap = SmallMarket(grid, 7);

  McCiOptions mc;
  mc.max_worlds = 1 << 16;
  for (const StrategyFactory& factory : DefaultStrategies(PricingConfig{})) {
    SCOPED_TRACE(factory.name);
    auto strategy = factory.make();
    DemandOracle history = oracle.Fork(11);
    ASSERT_TRUE(strategy->Warmup(grid, &history).ok());
    std::vector<double> prices;
    ASSERT_TRUE(strategy->PriceRound(snap, &prices).ok());

    const double exact = ExpectedRevenueOfPrices(snap, oracle, prices);
    const McCiEstimate est =
        MonteCarloRevenueOfPricesWithCI(snap, oracle, prices, mc);
    ASSERT_GT(est.worlds, 0);
    EXPECT_LE(std::abs(est.mean - exact), est.half_width)
        << "mean " << est.mean << " vs exact " << exact << " half width "
        << est.half_width << " after " << est.worlds << " worlds";
  }
}

TEST(OracleExactTest, McCiBitIdenticalAcrossThreadCounts) {
  // The whole estimate — mean, half width, world count, convergence — is a
  // pure function of (seed, options); the pool only changes who folds the
  // fixed shards.
  auto grid = GridPartition::Make(Rect{0, 0, 40, 40}, 2, 2).ValueOrDie();
  DemandOracle oracle = TableOneOracle(grid.num_cells());
  const MarketSnapshot snap = SmallMarket(grid, 13, 20, 8);
  const std::vector<double> prices(grid.num_cells(), 2.0);

  McCiOptions mc;
  mc.rel_half_width = 0.005;  // force several batches before stopping
  const McCiEstimate serial =
      MonteCarloRevenueOfPricesWithCI(snap, oracle, prices, mc, nullptr);
  ASSERT_GT(serial.worlds, mc.batch_worlds);  // the rule actually iterated
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    const McCiEstimate parallel =
        MonteCarloRevenueOfPricesWithCI(snap, oracle, prices, mc, &pool);
    EXPECT_EQ(parallel.mean, serial.mean) << threads << " threads";
    EXPECT_EQ(parallel.half_width, serial.half_width) << threads << " threads";
    EXPECT_EQ(parallel.worlds, serial.worlds) << threads << " threads";
    EXPECT_EQ(parallel.converged, serial.converged) << threads << " threads";
  }
}

TEST(OracleExactTest, McCiStopsAtFirstBatchWhenVarianceIsZero) {
  // Acceptance probability 1 everywhere: every world is the all-accept
  // world, the variance is exactly zero, and the rule stops after one batch.
  auto grid = GridPartition::Make(Rect{0, 0, 10, 10}, 1, 1).ValueOrDie();
  TabulatedDemand sure({1.0}, {1.0});
  DemandOracle oracle =
      DemandOracle::Make(ReplicateDemand(sure, 1), 1).ValueOrDie();
  std::vector<Task> tasks = {MakeTask(grid, 0, {5, 5}, 2.0)};
  std::vector<Worker> workers = {MakeWorker(grid, 0, {5, 5}, 5.0)};
  MarketSnapshot snap(&grid, 0, std::move(tasks), std::move(workers));

  const McCiEstimate est =
      MonteCarloRevenueOfPricesWithCI(snap, oracle, {1.0}, McCiOptions{});
  EXPECT_TRUE(est.converged);
  EXPECT_EQ(est.worlds, McCiOptions{}.batch_worlds);
  EXPECT_DOUBLE_EQ(est.mean, 2.0);  // d * p with certain acceptance
  EXPECT_EQ(est.half_width, 0.0);
}

TEST(OracleExactTest, McCiReportsNonConvergenceAtMaxWorlds) {
  auto grid = GridPartition::Make(Rect{0, 0, 40, 40}, 2, 2).ValueOrDie();
  DemandOracle oracle = TableOneOracle(grid.num_cells());
  const MarketSnapshot snap = SmallMarket(grid, 17);

  McCiOptions mc;
  mc.rel_half_width = 1e-9;  // unreachable tolerance
  mc.abs_half_width = 1e-12;
  mc.max_worlds = 4096;
  const McCiEstimate est = MonteCarloRevenueOfPricesWithCI(
      snap, oracle, std::vector<double>(grid.num_cells(), 2.0), mc);
  EXPECT_FALSE(est.converged);
  EXPECT_EQ(est.worlds, 4096);
  EXPECT_GT(est.half_width, 0.0);
}

TEST(OracleExactTest, RegretExactPerGridMatchesOracleSearch) {
  auto grid = GridPartition::Make(Rect{0, 0, 20, 10}, 1, 2).ValueOrDie();
  DemandOracle oracle = TableOneOracle(2);
  std::vector<Task> tasks = {MakeTask(grid, 0, {2, 5}, 1.5),
                             MakeTask(grid, 1, {12, 5}, 3.0),
                             MakeTask(grid, 2, {4, 5}, 2.0)};
  std::vector<Worker> workers = {MakeWorker(grid, 0, {5, 5}, 20.0),
                                 MakeWorker(grid, 1, {15, 5}, 6.0)};
  MarketSnapshot snap(&grid, 0, std::move(tasks), std::move(workers));
  auto ladder = PriceLadder::FromPrices({1.0, 2.0, 3.0}).ValueOrDie();
  const std::vector<double> posted = {1.0, 3.0};

  const PeriodRegret r =
      EvaluatePeriodRegret(snap, oracle, ladder, posted).ValueOrDie();
  EXPECT_EQ(r.oracle_mode, OracleMode::kExactPerGrid);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.mc_worlds, 0);
  EXPECT_EQ(r.oracle_half_width, 0.0);
  EXPECT_EQ(r.posted_half_width, 0.0);

  const auto best = OracleSearch(snap, oracle, ladder).ValueOrDie();
  EXPECT_EQ(r.oracle_value, best.expected_revenue);  // same code path
  EXPECT_EQ(r.oracle_prices, best.grid_prices);
  // The posted side goes through the sharded enumerator, the reference
  // through the serial one; they may differ by shard-boundary association.
  EXPECT_NEAR(r.posted_value, ExpectedRevenueOfPrices(snap, oracle, posted),
              1e-9);
  EXPECT_DOUBLE_EQ(r.regret, r.oracle_value - r.posted_value);
  EXPECT_GE(r.regret, -1e-9);  // posted came off the ladder

  // Posting the oracle's own prices zeroes the regret (up to the same
  // association slack).
  const PeriodRegret zero =
      EvaluatePeriodRegret(snap, oracle, ladder, r.oracle_prices).ValueOrDie();
  EXPECT_NEAR(zero.regret, 0.0, 1e-9);
}

TEST(OracleExactTest, RegretFallsBackToExactUniformWhenCombosExplode) {
  auto grid = GridPartition::Make(Rect{0, 0, 40, 40}, 2, 2).ValueOrDie();
  DemandOracle oracle = TableOneOracle(grid.num_cells());
  const MarketSnapshot snap = SmallMarket(grid, 23);
  auto ladder = PriceLadder::FromPrices({1.0, 2.0, 3.0}).ValueOrDie();

  RegretOptions options;
  options.max_exact_combinations = 2;  // every multi-grid odometer refused
  const PeriodRegret r = EvaluatePeriodRegret(
                             snap, oracle, ladder,
                             std::vector<double>(grid.num_cells(), 2.0),
                             options)
                             .ValueOrDie();
  EXPECT_EQ(r.oracle_mode, OracleMode::kExactUniform);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.mc_worlds, 0);
  // The posted uniform 2.0 is itself a candidate scored by the same code,
  // so the best candidate dominates it exactly.
  EXPECT_GE(r.regret, 0.0);
  // And it must match the best of the three manually scored candidates (up
  // to serial-vs-sharded enumeration association).
  double best = 0.0;
  for (double p : ladder.prices()) {
    best = std::max(best, ExpectedRevenueOfPrices(
                              snap, oracle,
                              std::vector<double>(grid.num_cells(), p)));
  }
  EXPECT_NEAR(r.oracle_value, best, 1e-9);
}

TEST(OracleExactTest, RegretSwitchesToMonteCarloBeyondExactTasks) {
  auto grid = GridPartition::Make(Rect{0, 0, 40, 40}, 2, 2).ValueOrDie();
  DemandOracle oracle = TableOneOracle(grid.num_cells());
  const MarketSnapshot snap = SmallMarket(grid, 29);
  auto ladder = PriceLadder::FromPrices({1.0, 2.0, 3.0}).ValueOrDie();

  RegretOptions options;
  options.max_exact_tasks = 4;  // the 12-task instance exceeds this
  const PeriodRegret r = EvaluatePeriodRegret(
                             snap, oracle, ladder,
                             std::vector<double>(grid.num_cells(), 2.0),
                             options)
                             .ValueOrDie();
  EXPECT_EQ(r.oracle_mode, OracleMode::kMcUniform);
  EXPECT_FALSE(r.exact);
  EXPECT_GT(r.mc_worlds, 0);
  EXPECT_GT(r.oracle_half_width, 0.0);
  EXPECT_GT(r.posted_half_width, 0.0);
  // MC scoring of the posted uniform price must sit within its half width
  // of the exact value (the instance is still small enough to check).
  const double exact_posted = ExpectedRevenueOfPrices(
      snap, oracle, std::vector<double>(grid.num_cells(), 2.0));
  EXPECT_LE(std::abs(r.posted_value - exact_posted), r.posted_half_width);
}

TEST(OracleExactTest, RegretIsDeterministicAcrossThreadCounts) {
  auto grid = GridPartition::Make(Rect{0, 0, 40, 40}, 2, 2).ValueOrDie();
  DemandOracle oracle = TableOneOracle(grid.num_cells());
  const MarketSnapshot snap = SmallMarket(grid, 31, 18, 8);
  auto ladder = PriceLadder::FromPrices({1.0, 2.0, 3.0}).ValueOrDie();
  const std::vector<double> posted(grid.num_cells(), 2.0);

  RegretOptions options;
  options.max_exact_tasks = 4;  // force the MC regime, the racy one
  const PeriodRegret serial =
      EvaluatePeriodRegret(snap, oracle, ladder, posted, options).ValueOrDie();
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    options.pool = &pool;
    const PeriodRegret parallel =
        EvaluatePeriodRegret(snap, oracle, ladder, posted, options)
            .ValueOrDie();
    EXPECT_EQ(parallel.oracle_value, serial.oracle_value) << threads;
    EXPECT_EQ(parallel.posted_value, serial.posted_value) << threads;
    EXPECT_EQ(parallel.regret, serial.regret) << threads;
    EXPECT_EQ(parallel.mc_worlds, serial.mc_worlds) << threads;
    EXPECT_EQ(parallel.oracle_prices, serial.oracle_prices) << threads;
  }
}

TEST(OracleExactTest, RegretOfEmptyPeriodIsZero) {
  auto grid = GridPartition::Make(Rect{0, 0, 20, 10}, 1, 2).ValueOrDie();
  DemandOracle oracle = TableOneOracle(2);
  MarketSnapshot snap(&grid, 0, {}, {});
  auto ladder = PriceLadder::FromPrices({1.0, 2.0}).ValueOrDie();

  const PeriodRegret r =
      EvaluatePeriodRegret(snap, oracle, ladder, {1.0, 2.0}).ValueOrDie();
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.regret, 0.0);
  EXPECT_EQ(r.oracle_value, 0.0);
  EXPECT_EQ(r.posted_value, 0.0);
  ASSERT_EQ(r.oracle_prices.size(), 2u);
  EXPECT_DOUBLE_EQ(r.oracle_prices[0], 1.0);  // ladder minimum
}

TEST(OracleExactTest, RegretRejectsMalformedPostedPrices) {
  auto grid = GridPartition::Make(Rect{0, 0, 20, 10}, 1, 2).ValueOrDie();
  DemandOracle oracle = TableOneOracle(2);
  std::vector<Task> tasks = {MakeTask(grid, 0, {2, 5}, 1.5)};
  MarketSnapshot snap(&grid, 0, std::move(tasks), {});
  auto ladder = PriceLadder::FromPrices({1.0, 2.0}).ValueOrDie();

  // One price for two grids.
  EXPECT_FALSE(EvaluatePeriodRegret(snap, oracle, ladder, {1.0}).ok());
}

}  // namespace
}  // namespace maps
