#include "geo/region_partition.h"

#include <gtest/gtest.h>

#include <set>

namespace maps {
namespace {

GridPartition MakeGrid(int rows, int cols, double extent = 100.0) {
  return GridPartition::Make(Rect{0, 0, extent, extent}, rows, cols)
      .ValueOrDie();
}

TEST(RegionPartitionTest, RejectsBadRegionCounts) {
  const GridPartition grid = MakeGrid(4, 4);
  EXPECT_FALSE(RegionPartition::Make(grid, 0).ok());
  EXPECT_FALSE(RegionPartition::Make(grid, -1).ok());
  EXPECT_FALSE(RegionPartition::Make(grid, 5).ok());  // more regions than rows
  EXPECT_TRUE(RegionPartition::Make(grid, 1).ok());
  EXPECT_TRUE(RegionPartition::Make(grid, 4).ok());
}

TEST(RegionPartitionTest, SingleRegionHasNoBoundary) {
  const GridPartition grid = MakeGrid(4, 4);
  const RegionPartition part = RegionPartition::Make(grid, 1).ValueOrDie();
  EXPECT_EQ(part.num_regions(), 1);
  EXPECT_TRUE(part.boundary_grids().empty());
  for (GridId g = 0; g < grid.num_cells(); ++g) {
    EXPECT_EQ(part.RegionOfGrid(g), 0);
    EXPECT_FALSE(part.IsBoundaryGrid(g));
  }
  EXPECT_EQ(part.row_begin(0), 0);
  EXPECT_EQ(part.row_end(0), 4);
}

TEST(RegionPartitionTest, EvenSplitAssignsContiguousBands) {
  const GridPartition grid = MakeGrid(8, 3);
  const RegionPartition part = RegionPartition::Make(grid, 4).ValueOrDie();
  ASSERT_EQ(part.num_regions(), 4);
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(part.row_begin(k), 2 * k);
    EXPECT_EQ(part.row_end(k), 2 * k + 2);
    for (int r = part.row_begin(k); r < part.row_end(k); ++r) {
      EXPECT_EQ(part.RegionOfRow(r), k);
      for (int c = 0; c < 3; ++c) {
        EXPECT_EQ(part.RegionOfGrid(r * 3 + c), k);
      }
    }
  }
}

TEST(RegionPartitionTest, UnevenSplitGivesExtraRowsToFirstBands) {
  // 7 rows over 3 regions: 3 + 2 + 2.
  const GridPartition grid = MakeGrid(7, 2);
  const RegionPartition part = RegionPartition::Make(grid, 3).ValueOrDie();
  EXPECT_EQ(part.row_begin(0), 0);
  EXPECT_EQ(part.row_end(0), 3);
  EXPECT_EQ(part.row_begin(1), 3);
  EXPECT_EQ(part.row_end(1), 5);
  EXPECT_EQ(part.row_begin(2), 5);
  EXPECT_EQ(part.row_end(2), 7);
  // Every row is owned by exactly one region and the bands are ascending.
  for (int r = 0; r < 7; ++r) {
    const int k = part.RegionOfRow(r);
    EXPECT_GE(r, part.row_begin(k));
    EXPECT_LT(r, part.row_end(k));
  }
}

TEST(RegionPartitionTest, BoundaryGridsAreTheBandEdgeRows) {
  // 4 rows, 2 regions: rows 1 (top of region 0) and 2 (bottom of region 1)
  // are boundary rows; rows 0 and 3 are interior.
  const GridPartition grid = MakeGrid(4, 4);
  const RegionPartition part = RegionPartition::Make(grid, 2).ValueOrDie();
  std::set<GridId> expected;
  for (int c = 0; c < 4; ++c) {
    expected.insert(1 * 4 + c);
    expected.insert(2 * 4 + c);
  }
  std::set<GridId> actual(part.boundary_grids().begin(),
                          part.boundary_grids().end());
  EXPECT_EQ(actual, expected);
  for (GridId g = 0; g < grid.num_cells(); ++g) {
    EXPECT_EQ(part.IsBoundaryGrid(g), expected.count(g) > 0) << "grid " << g;
  }
  // Ascending order (the stitch relies on a deterministic scan order).
  for (size_t i = 1; i < part.boundary_grids().size(); ++i) {
    EXPECT_LT(part.boundary_grids()[i - 1], part.boundary_grids()[i]);
  }
}

TEST(RegionPartitionTest, EveryRegionBandIsNonEmpty) {
  const GridPartition grid = MakeGrid(5, 5);
  for (int k = 1; k <= 5; ++k) {
    const RegionPartition part = RegionPartition::Make(grid, k).ValueOrDie();
    for (int r = 0; r < k; ++r) {
      EXPECT_LT(part.row_begin(r), part.row_end(r)) << "K=" << k;
    }
    EXPECT_EQ(part.row_begin(0), 0);
    EXPECT_EQ(part.row_end(k - 1), 5);
  }
}

}  // namespace
}  // namespace maps
