#include "geo/grid.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "geo/point.h"
#include "rng/random.h"

namespace maps {
namespace {

Rect UnitRegion(double size) { return Rect{0.0, 0.0, size, size}; }

TEST(PointTest, Distances) {
  EXPECT_DOUBLE_EQ(EuclideanDistance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(ManhattanDistance({0, 0}, {3, 4}), 7.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance({1, 1}, {1, 1}), 0.0);
}

TEST(RectTest, ContainsHalfOpen) {
  Rect r{0, 0, 10, 10};
  EXPECT_TRUE(r.Contains({0, 0}));
  EXPECT_TRUE(r.Contains({9.999, 9.999}));
  EXPECT_FALSE(r.Contains({10, 5}));
  EXPECT_FALSE(r.Contains({5, 10}));
  EXPECT_FALSE(r.Contains({-0.1, 5}));
}

TEST(RectTest, ClampPullsInside) {
  Rect r{0, 0, 10, 10};
  EXPECT_TRUE(r.Contains(r.Clamp({-5, 20})));
  EXPECT_TRUE(r.Contains(r.Clamp({10, 10})));
  const Point inside{3, 4};
  EXPECT_EQ(r.Clamp(inside), inside);
}

TEST(GridPartitionTest, MakeRejectsBadInputs) {
  EXPECT_FALSE(GridPartition::Make(UnitRegion(10), 0, 5).ok());
  EXPECT_FALSE(GridPartition::Make(UnitRegion(10), 5, -1).ok());
  EXPECT_FALSE(GridPartition::Make(Rect{0, 0, 0, 10}, 2, 2).ok());
}

TEST(GridPartitionTest, PaperExampleIndexing) {
  // Example 2: 8x8 region, cells of side 2, indexed from the bottom-left.
  // (Paper is 1-based; we are 0-based: paper grid 7 == our cell 6.)
  auto grid = GridPartition::Make(Rect{0, 0, 8, 8}, 4, 4).ValueOrDie();
  EXPECT_EQ(grid.num_cells(), 16);
  EXPECT_EQ(grid.CellOf({5, 3}), 6);   // w3 at (5,3): paper grid 7
  EXPECT_EQ(grid.CellOf({1, 5}), 8);   // r2 at (1,5): paper grid 9
  EXPECT_EQ(grid.CellOf({0, 0}), 0);
  EXPECT_EQ(grid.CellOf({7.9, 7.9}), 15);
}

TEST(GridPartitionTest, CellRectRoundTrip) {
  auto grid = GridPartition::Make(UnitRegion(100), 10, 10).ValueOrDie();
  for (GridId id = 0; id < grid.num_cells(); ++id) {
    const Point c = grid.CellCenter(id);
    EXPECT_EQ(grid.CellOf(c), id);
    const Rect r = grid.CellRect(id);
    EXPECT_TRUE(r.Contains(c));
    EXPECT_DOUBLE_EQ(r.width(), 10.0);
    EXPECT_DOUBLE_EQ(r.height(), 10.0);
  }
}

TEST(GridPartitionTest, OutOfRegionPointsClampToBoundaryCells) {
  auto grid = GridPartition::Make(UnitRegion(100), 10, 10).ValueOrDie();
  EXPECT_EQ(grid.CellOf({-5, -5}), 0);
  EXPECT_EQ(grid.CellOf({150, 150}), 99);
  EXPECT_EQ(grid.CellOf({150, -5}), 9);
}

TEST(GridPartitionTest, NonSquareGrid) {
  // The Beijing grid is 10 columns x 8 rows.
  auto grid =
      GridPartition::Make(Rect{0, 0, 17.08, 17.81}, 8, 10).ValueOrDie();
  EXPECT_EQ(grid.num_cells(), 80);
  EXPECT_EQ(grid.rows(), 8);
  EXPECT_EQ(grid.cols(), 10);
  // Top-right corner cell.
  EXPECT_EQ(grid.CellOf({17.0, 17.8}), 79);
}

TEST(GridPartitionTest, DiscIntersectionExactOnRandomInstances) {
  auto grid = GridPartition::Make(UnitRegion(100), 7, 13).ValueOrDie();
  Rng rng(404);
  for (int trial = 0; trial < 200; ++trial) {
    const Point c{rng.NextDouble(-20, 120), rng.NextDouble(-20, 120)};
    const double radius = rng.NextDouble(0.0, 40.0);
    auto cells = grid.CellsIntersectingDisc(c, radius);
    std::vector<bool> flagged(grid.num_cells(), false);
    for (GridId id : cells) flagged[id] = true;
    // Brute-force verification against the exact rect-disc test.
    for (GridId id = 0; id < grid.num_cells(); ++id) {
      const Rect r = grid.CellRect(id);
      const double nx = std::clamp(c.x, r.min_x, r.max_x);
      const double ny = std::clamp(c.y, r.min_y, r.max_y);
      const bool intersects =
          (c.x - nx) * (c.x - nx) + (c.y - ny) * (c.y - ny) <=
          radius * radius;
      ASSERT_EQ(flagged[id], intersects)
          << "cell " << id << " center (" << c.x << "," << c.y << ") r="
          << radius;
    }
  }
}

TEST(GridPartitionTest, DiscWithNegativeRadiusEmpty) {
  auto grid = GridPartition::Make(UnitRegion(10), 2, 2).ValueOrDie();
  EXPECT_TRUE(grid.CellsIntersectingDisc({5, 5}, -1.0).empty());
}

TEST(GridPartitionTest, ZeroRadiusDiscHitsOwnCell) {
  auto grid = GridPartition::Make(UnitRegion(10), 2, 2).ValueOrDie();
  auto cells = grid.CellsIntersectingDisc({2.5, 2.5}, 0.0);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0], grid.CellOf({2.5, 2.5}));
}

}  // namespace
}  // namespace maps
