#include "sim/synthetic.h"

#include "geo/road_network.h"

#include <gtest/gtest.h>

namespace maps {
namespace {

Rect Region() { return Rect{0, 0, 100, 100}; }

TEST(RoadNetworkTest, MakeRejectsBadInputs) {
  EXPECT_FALSE(RoadNetwork::MakeLattice(Region(), 1, 5, 0.0, 1).ok());
  EXPECT_FALSE(RoadNetwork::MakeLattice(Region(), 5, 1, 0.0, 1).ok());
  EXPECT_FALSE(RoadNetwork::MakeLattice(Region(), 5, 5, -0.1, 1).ok());
  EXPECT_FALSE(
      RoadNetwork::MakeLattice(Rect{0, 0, 0, 10}, 5, 5, 0.0, 1).ok());
}

TEST(RoadNetworkTest, FreeFlowingLatticeEqualsManhattanBetweenNodes) {
  auto net = RoadNetwork::MakeLattice(Region(), 11, 11, 0.0, 1).ValueOrDie();
  // Node spacing is 10; the nodes at (0,0) and (30,40) are 7 hops apart.
  const int a = net.NearestNode({0, 0});
  const int b = net.NearestNode({30, 40});
  EXPECT_DOUBLE_EQ(net.NodeDistance(a, b), 70.0);
  EXPECT_DOUBLE_EQ(net.Distance({0, 0}, {30, 40}),
                   ManhattanDistance({0, 0}, {30, 40}));
}

TEST(RoadNetworkTest, DistanceIsSymmetricAndNonNegative) {
  auto net = RoadNetwork::MakeLattice(Region(), 9, 9, 0.5, 7).ValueOrDie();
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const Point a{rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    const Point b{rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    const double ab = net.Distance(a, b);
    const double ba = net.Distance(b, a);
    ASSERT_GE(ab, 0.0);
    ASSERT_NEAR(ab, ba, 1e-9);
  }
}

TEST(RoadNetworkTest, NeverShorterThanStraightLineBetweenNodes) {
  auto net = RoadNetwork::MakeLattice(Region(), 9, 9, 0.5, 7).ValueOrDie();
  Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    const int a = static_cast<int>(rng.NextBounded(net.num_nodes()));
    const int b = static_cast<int>(rng.NextBounded(net.num_nodes()));
    ASSERT_GE(net.NodeDistance(a, b) + 1e-9,
              EuclideanDistance(net.NodeLocation(a), net.NodeLocation(b)));
  }
}

TEST(RoadNetworkTest, TriangleInequalityOnNodes) {
  auto net = RoadNetwork::MakeLattice(Region(), 7, 7, 0.4, 9).ValueOrDie();
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const int a = static_cast<int>(rng.NextBounded(net.num_nodes()));
    const int b = static_cast<int>(rng.NextBounded(net.num_nodes()));
    const int c = static_cast<int>(rng.NextBounded(net.num_nodes()));
    ASSERT_LE(net.NodeDistance(a, c),
              net.NodeDistance(a, b) + net.NodeDistance(b, c) + 1e-9);
  }
}

TEST(RoadNetworkTest, SamePointIsZero) {
  auto net = RoadNetwork::MakeLattice(Region(), 5, 5, 0.3, 2).ValueOrDie();
  EXPECT_DOUBLE_EQ(net.NodeDistance(7, 7), 0.0);
  // Same off-node point still pays the approach twice; a point exactly on
  // a node pays nothing.
  const Point on_node = net.NodeLocation(12);
  EXPECT_DOUBLE_EQ(net.Distance(on_node, on_node), 0.0);
}

TEST(RoadNetworkTest, CongestionLengthensPaths) {
  auto net = RoadNetwork::MakeLattice(Region(), 11, 11, 0.0, 1).ValueOrDie();
  const int a = net.NearestNode({0, 50});
  const int b = net.NearestNode({100, 50});
  const double before = net.NodeDistance(a, b);
  net.CongestArea({50, 50}, 25.0, 3.0);
  const double after = net.NodeDistance(a, b);
  EXPECT_GT(after, before);
  // Routing around the congested core is possible, so the slowdown is less
  // than the raw 3x factor.
  EXPECT_LT(after, 3.0 * before);
}

TEST(RoadNetworkTest, CongestionOutsidePathIrrelevant) {
  auto net = RoadNetwork::MakeLattice(Region(), 11, 11, 0.0, 1).ValueOrDie();
  const int a = net.NearestNode({0, 0});
  const int b = net.NearestNode({30, 0});
  const double before = net.NodeDistance(a, b);
  net.CongestArea({90, 90}, 5.0, 10.0);
  EXPECT_DOUBLE_EQ(net.NodeDistance(a, b), before);
}

TEST(RoadNetworkTest, DeterministicUnderSeed) {
  auto n1 = RoadNetwork::MakeLattice(Region(), 9, 9, 0.5, 42).ValueOrDie();
  auto n2 = RoadNetwork::MakeLattice(Region(), 9, 9, 0.5, 42).ValueOrDie();
  for (int i = 0; i < 9 * 9; i += 7) {
    for (int j = 0; j < 9 * 9; j += 11) {
      ASSERT_DOUBLE_EQ(n1.NodeDistance(i, j), n2.NodeDistance(i, j));
    }
  }
}

TEST(SyntheticRoadMetricTest, RoadDistancesDominateEuclidean) {
  SyntheticConfig cfg;
  cfg.num_workers = 50;
  cfg.num_tasks = 300;
  cfg.num_periods = 20;
  cfg.grid_rows = 4;
  cfg.grid_cols = 4;
  cfg.seed = 6;
  cfg.distance_metric = SyntheticConfig::DistanceMetric::kRoadNetwork;
  Workload road = GenerateSynthetic(cfg).ValueOrDie();
  cfg.distance_metric = SyntheticConfig::DistanceMetric::kEuclidean;
  Workload euclid = GenerateSynthetic(cfg).ValueOrDie();
  ASSERT_EQ(road.tasks.size(), euclid.tasks.size());
  // Identical seeds give identical endpoints; the road metric can only be
  // longer (congestion >= 1 and lattice detours).
  int longer = 0;
  for (size_t i = 0; i < road.tasks.size(); ++i) {
    ASSERT_GE(road.tasks[i].distance + 1e-6,
              EuclideanDistance(road.tasks[i].origin,
                                road.tasks[i].destination));
    if (road.tasks[i].distance > euclid.tasks[i].distance) ++longer;
  }
  EXPECT_GT(longer, static_cast<int>(road.tasks.size()) * 9 / 10);
}

TEST(SyntheticRoadMetricTest, ManhattanMetricMatchesFormula) {
  SyntheticConfig cfg;
  cfg.num_workers = 10;
  cfg.num_tasks = 50;
  cfg.num_periods = 10;
  cfg.grid_rows = 2;
  cfg.grid_cols = 2;
  cfg.seed = 8;
  cfg.distance_metric = SyntheticConfig::DistanceMetric::kManhattan;
  Workload w = GenerateSynthetic(cfg).ValueOrDie();
  for (const Task& t : w.tasks) {
    ASSERT_DOUBLE_EQ(t.distance,
                     ManhattanDistance(t.origin, t.destination));
  }
}

}  // namespace
}  // namespace maps
