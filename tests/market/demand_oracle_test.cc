#include "market/demand_oracle.h"

#include <gtest/gtest.h>

namespace maps {
namespace {

DemandOracle MakeOracle(int grids, uint64_t seed = 1) {
  TruncatedNormalDemand proto(2.0, 1.0, 1.0, 5.0);
  return DemandOracle::Make(ReplicateDemand(proto, grids), seed).ValueOrDie();
}

TEST(DemandOracleTest, MakeRejectsBadInputs) {
  EXPECT_FALSE(DemandOracle::Make({}, 1).ok());
  std::vector<std::unique_ptr<DemandModel>> with_null;
  with_null.push_back(nullptr);
  EXPECT_FALSE(DemandOracle::Make(std::move(with_null), 1).ok());
}

TEST(DemandOracleTest, ProbesConvergeToTrueAcceptRatio) {
  DemandOracle oracle = MakeOracle(2);
  const double p = 2.5;
  const int n = 50000;
  int accepts = 0;
  for (int i = 0; i < n; ++i) {
    if (oracle.ProbeAccept(0, p)) ++accepts;
  }
  EXPECT_NEAR(accepts / static_cast<double>(n), oracle.TrueAcceptRatio(0, p),
              0.01);
  EXPECT_EQ(oracle.num_probes(), n);
}

TEST(DemandOracleTest, CountProbeAcceptsIsPureFunctionOfStream) {
  DemandOracle oracle = MakeOracle(2, 5);
  const int64_t a = oracle.CountProbeAccepts(0, 2.5, 1000, /*stream=*/3);
  // Interleave sequential probes and other streams: the batch must not
  // depend on any oracle-internal sequential state or call order.
  for (int i = 0; i < 100; ++i) oracle.ProbeAccept(1, 2.0);
  (void)oracle.CountProbeAccepts(1, 1.5, 500, /*stream=*/9);
  EXPECT_EQ(oracle.CountProbeAccepts(0, 2.5, 1000, /*stream=*/3), a);
  // A prefix of the same stream is a prefix of the same draws.
  const int64_t shorter = oracle.CountProbeAccepts(0, 2.5, 400, /*stream=*/3);
  EXPECT_LE(shorter, a);
  // Different streams (and different seeds) draw independently.
  EXPECT_NE(oracle.CountProbeAccepts(0, 2.5, 100000, /*stream=*/3),
            oracle.CountProbeAccepts(0, 2.5, 100000, /*stream=*/4));
  DemandOracle other = MakeOracle(2, 6);
  EXPECT_NE(other.CountProbeAccepts(0, 2.5, 100000, /*stream=*/3),
            oracle.CountProbeAccepts(0, 2.5, 100000, /*stream=*/3));
}

TEST(DemandOracleTest, CountProbeAcceptsConvergesToTrueAcceptRatio) {
  DemandOracle oracle = MakeOracle(1, 21);
  const double p = 2.5;
  const int64_t n = 50000;
  const int64_t accepts = oracle.CountProbeAccepts(0, p, n, /*stream=*/0);
  EXPECT_NEAR(accepts / static_cast<double>(n), oracle.TrueAcceptRatio(0, p),
              0.01);
  // Batch probes are accounted explicitly, not implicitly.
  EXPECT_EQ(oracle.num_probes(), 0);
  oracle.AccountProbes(n);
  EXPECT_EQ(oracle.num_probes(), n);
}

TEST(DemandOracleTest, PerGridModelsIndependent) {
  std::vector<std::unique_ptr<DemandModel>> models;
  models.push_back(std::make_unique<TruncatedNormalDemand>(1.5, 1.0, 1.0, 5.0));
  models.push_back(std::make_unique<TruncatedNormalDemand>(3.5, 1.0, 1.0, 5.0));
  DemandOracle oracle = DemandOracle::Make(std::move(models), 7).ValueOrDie();
  EXPECT_LT(oracle.TrueAcceptRatio(0, 2.5), oracle.TrueAcceptRatio(1, 2.5));
}

TEST(DemandOracleTest, ForkSharesTruthNotRandomness) {
  DemandOracle a = MakeOracle(1, 11);
  DemandOracle b = a.Fork(0);
  DemandOracle c = a.Fork(1);
  // Identical ground truth.
  for (double p : {1.5, 2.5, 3.5}) {
    EXPECT_DOUBLE_EQ(b.TrueAcceptRatio(0, p), a.TrueAcceptRatio(0, p));
    EXPECT_DOUBLE_EQ(c.TrueAcceptRatio(0, p), a.TrueAcceptRatio(0, p));
  }
  // Different probe streams.
  int agree = 0;
  for (int i = 0; i < 200; ++i) {
    if (b.SampleValuation(0) == c.SampleValuation(0)) ++agree;
  }
  EXPECT_LT(agree, 5);
}

TEST(DemandOracleTest, ForkIsDeterministicPerStream) {
  DemandOracle a1 = MakeOracle(1, 11);
  DemandOracle a2 = MakeOracle(1, 11);
  DemandOracle f1 = a1.Fork(3);
  DemandOracle f2 = a2.Fork(3);
  for (int i = 0; i < 100; ++i) {
    ASSERT_DOUBLE_EQ(f1.SampleValuation(0), f2.SampleValuation(0));
  }
}

TEST(DemandOracleTest, ReplaceModelChangesTruth) {
  DemandOracle oracle = MakeOracle(1);
  const double before = oracle.TrueAcceptRatio(0, 2.0);
  oracle.ReplaceModel(0, std::make_unique<PointMassDemand>(5.0));
  EXPECT_DOUBLE_EQ(oracle.TrueAcceptRatio(0, 2.0), 1.0);
  EXPECT_NE(before, 1.0);
}

TEST(DemandOracleTest, ReplicateDemandClones) {
  TruncatedNormalDemand proto(2.0, 1.0, 1.0, 5.0);
  auto models = ReplicateDemand(proto, 5);
  ASSERT_EQ(models.size(), 5u);
  for (const auto& m : models) {
    ASSERT_NE(m, nullptr);
    EXPECT_DOUBLE_EQ(m->Cdf(2.5), proto.Cdf(2.5));
  }
}

}  // namespace
}  // namespace maps
