#include "market/market_state.h"

#include <gtest/gtest.h>

namespace maps {
namespace {

class MarketSnapshotTest : public ::testing::Test {
 protected:
  MarketSnapshotTest()
      : grid_(GridPartition::Make(Rect{0, 0, 10, 10}, 2, 2).ValueOrDie()) {}

  Task MakeTask(TaskId id, Point origin, double distance) {
    Task t;
    t.id = id;
    t.period = 0;
    t.origin = origin;
    t.destination = origin;  // distance stored explicitly
    t.distance = distance;
    t.grid = grid_.CellOf(origin);
    return t;
  }

  Worker MakeWorker(WorkerId id, Point loc, double radius) {
    Worker w;
    w.id = id;
    w.period = 0;
    w.location = loc;
    w.radius = radius;
    w.grid = grid_.CellOf(loc);
    return w;
  }

  GridPartition grid_;
};

TEST_F(MarketSnapshotTest, BucketsTasksAndWorkersByGrid) {
  std::vector<Task> tasks = {MakeTask(0, {1, 1}, 2.0), MakeTask(1, {2, 2}, 1.0),
                             MakeTask(2, {8, 8}, 3.0)};
  std::vector<Worker> workers = {MakeWorker(0, {1, 8}, 5.0),
                                 MakeWorker(1, {8, 1}, 5.0)};
  MarketSnapshot snap(&grid_, 3, tasks, workers);

  EXPECT_EQ(snap.period(), 3);
  EXPECT_EQ(snap.num_grids(), 4);
  EXPECT_EQ(snap.TasksInGrid(0), (std::vector<int>{0, 1}));
  EXPECT_TRUE(snap.TasksInGrid(1).empty());
  EXPECT_EQ(snap.TasksInGrid(3), (std::vector<int>{2}));
  EXPECT_EQ(snap.WorkersInGrid(2), (std::vector<int>{0}));
  EXPECT_EQ(snap.WorkersInGrid(1), (std::vector<int>{1}));
}

TEST_F(MarketSnapshotTest, DistancePrefixSumsDescending) {
  std::vector<Task> tasks = {MakeTask(0, {1, 1}, 2.0), MakeTask(1, {2, 2}, 5.0),
                             MakeTask(2, {3, 3}, 3.5)};
  MarketSnapshot snap(&grid_, 0, tasks, {});
  // Prefix sums over {5.0, 3.5, 2.0} (descending): top-n sums in O(1).
  EXPECT_EQ(snap.DistancePrefixSumsInGrid(0),
            (std::vector<double>{0.0, 5.0, 8.5, 10.5}));
  EXPECT_DOUBLE_EQ(snap.TotalDistanceInGrid(0), 10.5);
  EXPECT_EQ(snap.DistancePrefixSumsInGrid(1), (std::vector<double>{0.0}));
  EXPECT_DOUBLE_EQ(snap.TotalDistanceInGrid(1), 0.0);
}

TEST_F(MarketSnapshotTest, StagedConstructionMatchesOneShot) {
  // The simulator's pipeline builds snapshots in two stages and reuses one
  // slot across many periods; every derived index must match a fresh
  // one-shot snapshot of the same market exactly.
  std::vector<Task> tasks = {MakeTask(0, {1, 1}, 2.0),
                             MakeTask(1, {2, 2}, 1.0),
                             MakeTask(2, {8, 8}, 3.0)};
  std::vector<Worker> workers = {MakeWorker(0, {1, 8}, 5.0),
                                 MakeWorker(1, {8, 1}, 4.0)};
  MarketSnapshot staged;
  // First fill the slot with a different market so reuse has to overwrite.
  std::vector<Task> other = {MakeTask(7, {9, 9}, 9.0),
                             MakeTask(8, {9, 1}, 8.0)};
  staged.ResetTasks(&grid_, 3, other.data(), other.data() + other.size());
  staged.SetWorkers(workers.data(), workers.data() + 1);
  // Now rebuild it as period 5 of the real market.
  staged.ResetTasks(&grid_, 5, tasks.data(), tasks.data() + tasks.size());
  staged.SetWorkers(workers.data(), workers.data() + workers.size());

  MarketSnapshot fresh(&grid_, 5, tasks, workers);
  EXPECT_EQ(staged.period(), fresh.period());
  ASSERT_EQ(staged.tasks().size(), fresh.tasks().size());
  ASSERT_EQ(staged.workers().size(), fresh.workers().size());
  for (int g = 0; g < grid_.num_cells(); ++g) {
    EXPECT_EQ(staged.TasksInGrid(g), fresh.TasksInGrid(g)) << "grid " << g;
    EXPECT_EQ(staged.WorkersInGrid(g), fresh.WorkersInGrid(g))
        << "grid " << g;
    EXPECT_EQ(staged.DistancePrefixSumsInGrid(g),
              fresh.DistancePrefixSumsInGrid(g))
        << "grid " << g;
    EXPECT_DOUBLE_EQ(staged.TotalDistanceInGrid(g),
                     fresh.TotalDistanceInGrid(g))
        << "grid " << g;
  }
}

TEST_F(MarketSnapshotTest, EmptySnapshot) {
  MarketSnapshot snap(&grid_, 0, {}, {});
  EXPECT_TRUE(snap.tasks().empty());
  EXPECT_TRUE(snap.workers().empty());
  for (int g = 0; g < 4; ++g) {
    EXPECT_TRUE(snap.TasksInGrid(g).empty());
    EXPECT_TRUE(snap.WorkersInGrid(g).empty());
  }
}

}  // namespace
}  // namespace maps
