#include "market/demand_model.h"

#include <gtest/gtest.h>

#include <memory>

#include "rng/random.h"

namespace maps {
namespace {

// ---------------------------------------------------------------------------
// Generic properties, parameterized over every demand family.

std::unique_ptr<DemandModel> MakeModel(int which) {
  switch (which) {
    case 0:
      return std::make_unique<TruncatedNormalDemand>(2.0, 1.0, 1.0, 5.0);
    case 1:
      return std::make_unique<TruncatedExponentialDemand>(1.0, 1.0, 5.0);
    case 2:
      return std::make_unique<UniformDemand>(1.0, 5.0);
    case 3:
      return std::make_unique<TabulatedDemand>(
          std::vector<double>{1, 2, 3}, std::vector<double>{0.9, 0.8, 0.5});
    default:
      return std::make_unique<PointMassDemand>(2.5);
  }
}

class DemandFamilyTest : public ::testing::TestWithParam<int> {};

TEST_P(DemandFamilyTest, CdfMonotoneNonDecreasing) {
  auto model = MakeModel(GetParam());
  double prev = -1.0;
  for (double p = 0.0; p <= 6.0; p += 0.05) {
    const double c = model->Cdf(p);
    ASSERT_GE(c, prev - 1e-12) << model->ToString() << " at p=" << p;
    ASSERT_GE(c, 0.0);
    ASSERT_LE(c, 1.0);
    prev = c;
  }
}

TEST_P(DemandFamilyTest, AcceptRatioComplementsCdf) {
  auto model = MakeModel(GetParam());
  for (double p : {1.0, 2.0, 3.3, 4.9}) {
    EXPECT_DOUBLE_EQ(model->AcceptRatio(p), 1.0 - model->Cdf(p));
  }
}

TEST_P(DemandFamilyTest, SampleAcceptanceMatchesAcceptRatio) {
  // The fundamental contract: Pr[sampled v >= p] == AcceptRatio(p).
  auto model = MakeModel(GetParam());
  Rng rng(99);
  const int n = 60000;
  for (double p : {1.0, 2.0, 3.0}) {
    int accepts = 0;
    for (int i = 0; i < n; ++i) {
      if (model->Sample(rng) >= p) ++accepts;
    }
    EXPECT_NEAR(accepts / static_cast<double>(n), model->AcceptRatio(p), 0.01)
        << model->ToString() << " at p=" << p;
  }
}

TEST_P(DemandFamilyTest, CloneBehavesIdentically) {
  auto model = MakeModel(GetParam());
  auto clone = model->Clone();
  for (double p = 0.5; p <= 5.5; p += 0.25) {
    EXPECT_DOUBLE_EQ(model->Cdf(p), clone->Cdf(p));
  }
  EXPECT_EQ(model->ToString(), clone->ToString());
}

TEST_P(DemandFamilyTest, MyersonPriceIsLadderOptimum) {
  auto model = MakeModel(GetParam());
  const double pm = model->MyersonPrice(1.0, 5.0);
  const double best = model->ExpectedUnitRevenue(pm);
  for (double p = 1.0; p <= 5.0; p += 0.01) {
    ASSERT_LE(model->ExpectedUnitRevenue(p), best + 1e-6)
        << model->ToString() << ": p=" << p << " beats pm=" << pm;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, DemandFamilyTest,
                         ::testing::Range(0, 5));

// ---------------------------------------------------------------------------
// Family-specific checks.

TEST(UniformDemandTest, ClosedFormMyerson) {
  // For v ~ U[0, b], p*S(p) = p(1 - p/b) peaks at b/2. With support [1, 5]:
  // p*(5-p)/4 peaks at p = 2.5.
  UniformDemand u(1.0, 5.0);
  EXPECT_NEAR(u.MyersonPrice(1.0, 5.0), 2.5, 1e-4);
  EXPECT_NEAR(u.ExpectedUnitRevenue(2.5), 2.5 * (5 - 2.5) / 4.0, 1e-12);
}

TEST(UniformDemandTest, MyersonClampsToInterval) {
  UniformDemand u(1.0, 5.0);
  // Search restricted right of the true optimum: boundary wins.
  EXPECT_NEAR(u.MyersonPrice(3.0, 5.0), 3.0, 1e-4);
}

TEST(PointMassDemandTest, StepAcceptance) {
  PointMassDemand d(2.0);
  EXPECT_DOUBLE_EQ(d.AcceptRatio(1.99), 1.0);
  EXPECT_DOUBLE_EQ(d.AcceptRatio(2.0), 1.0);  // accept iff p <= v
  EXPECT_DOUBLE_EQ(d.AcceptRatio(2.01), 0.0);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(d.Sample(rng), 2.0);
  // Myerson price of a point mass is the valuation itself.
  EXPECT_NEAR(d.MyersonPrice(1.0, 5.0), 2.0, 1e-3);
}

TEST(TabulatedDemandTest, PaperTableOne) {
  // Table 1: S(1)=0.9, S(2)=0.8, S(3)=0.5.
  TabulatedDemand d({1, 2, 3}, {0.9, 0.8, 0.5});
  EXPECT_DOUBLE_EQ(d.AcceptRatio(1.0), 0.9);
  EXPECT_DOUBLE_EQ(d.AcceptRatio(2.0), 0.8);
  EXPECT_DOUBLE_EQ(d.AcceptRatio(3.0), 0.5);
  EXPECT_DOUBLE_EQ(d.AcceptRatio(3.5), 0.0);  // beyond the table
  // Unit-revenue maximizer among {1,2,3} is 2 (0.9 < 1.6 > 1.5), matching
  // Example 1's "a unit price of 2 will maximize the expected revenue".
  EXPECT_NEAR(d.MyersonPrice(1.0, 3.0), 2.0, 0.01);
}

TEST(TabulatedDemandTest, RejectsMalformedTables) {
  EXPECT_DEATH(TabulatedDemand({2, 1}, {0.9, 0.8}), "Check failed");
  EXPECT_DEATH(TabulatedDemand({1, 2}, {0.5, 0.8}), "non-increasing");
  EXPECT_DEATH(TabulatedDemand({1}, {1.1}), "Check failed");
}

TEST(TruncatedExponentialDemandTest, CdfClosedForm) {
  TruncatedExponentialDemand d(1.0, 1.0, 5.0);
  EXPECT_DOUBLE_EQ(d.Cdf(1.0), 0.0);
  EXPECT_DOUBLE_EQ(d.Cdf(5.0), 1.0);
  const double mass = 1.0 - std::exp(-4.0);
  EXPECT_NEAR(d.Cdf(2.0), (1.0 - std::exp(-1.0)) / mass, 1e-12);
}

TEST(TruncatedNormalDemandTest, HigherMeanRaisesAcceptance) {
  TruncatedNormalDemand lo(1.5, 1.0, 1.0, 5.0);
  TruncatedNormalDemand hi(3.0, 1.0, 1.0, 5.0);
  for (double p : {1.5, 2.0, 2.5, 3.0}) {
    EXPECT_GT(hi.AcceptRatio(p), lo.AcceptRatio(p)) << "p=" << p;
  }
}

TEST(TruncatedNormalDemandTest, MyersonMovesWithMean) {
  TruncatedNormalDemand lo(1.5, 1.0, 1.0, 5.0);
  TruncatedNormalDemand hi(3.0, 1.0, 1.0, 5.0);
  EXPECT_LT(lo.MyersonPrice(1.0, 5.0), hi.MyersonPrice(1.0, 5.0));
}

}  // namespace
}  // namespace maps
