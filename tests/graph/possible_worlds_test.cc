#include "graph/possible_worlds.h"

#include <gtest/gtest.h>

#include "rng/random.h"

namespace maps {
namespace {

TEST(PossibleWorldsTest, SingleTaskClosedForm) {
  auto g = BipartiteGraph::FromEdges(1, 1, {{0, 0}});
  // E[U] = d * p * S.
  EXPECT_NEAR(ExactExpectedRevenue(g, {{2.0, 3.0, 0.4}}), 2.0 * 3.0 * 0.4,
              1e-12);
}

TEST(PossibleWorldsTest, TaskWithoutWorkerEarnsNothing) {
  auto g = BipartiteGraph::FromEdges(1, 1, {});
  EXPECT_DOUBLE_EQ(ExactExpectedRevenue(g, {{2.0, 3.0, 0.9}}), 0.0);
}

TEST(PossibleWorldsTest, IndependentTasksSumUp) {
  // Two tasks with disjoint workers: expectation is additive.
  auto g = BipartiteGraph::FromEdges(2, 2, {{0, 0}, {1, 1}});
  const double e =
      ExactExpectedRevenue(g, {{1.0, 2.0, 0.5}, {3.0, 1.0, 0.25}});
  EXPECT_NEAR(e, 1.0 * 2.0 * 0.5 + 3.0 * 1.0 * 0.25, 1e-12);
}

TEST(PossibleWorldsTest, ContendingTasksUseMaxWeightWorld) {
  // Both tasks need the single worker; weights 6 (=3*2) and 2 (=1*2).
  // E = P(both) * 6 + P(only a) * 6 + P(only b) * 2.
  auto g = BipartiteGraph::FromEdges(2, 1, {{0, 0}, {1, 0}});
  const double sa = 0.5, sb = 0.4;
  const double expected =
      sa * sb * 6.0 + sa * (1 - sb) * 6.0 + (1 - sa) * sb * 2.0;
  EXPECT_NEAR(
      ExactExpectedRevenue(g, {{3.0, 2.0, sa}, {1.0, 2.0, sb}}), expected,
      1e-12);
}

TEST(PossibleWorldsTest, PaperExampleThreeRevenue) {
  // Example 3 / Fig. 2: prices {3, 3, 2} with Table 1's acceptance ratios.
  // r1 (d=1.3) and r2 (d=0.7) compete for one worker; r3 (d=1) is served
  // whenever it accepts. Expected total = 4.075 (the paper reports 4.1
  // after rounding).
  auto g = BipartiteGraph::FromEdges(3, 3, {{0, 0}, {1, 0}, {2, 1}, {2, 2}});
  std::vector<PricedTask> tasks = {
      {1.3, 3.0, 0.5}, {0.7, 3.0, 0.5}, {1.0, 2.0, 0.8}};
  EXPECT_NEAR(ExactExpectedRevenue(g, tasks), 4.075, 1e-12);
}

TEST(PossibleWorldsTest, DegenerateProbabilities) {
  auto g = BipartiteGraph::FromEdges(2, 1, {{0, 0}, {1, 0}});
  // accept_prob 1 and 0: deterministic world.
  EXPECT_DOUBLE_EQ(
      ExactExpectedRevenue(g, {{2.0, 2.0, 1.0}, {9.0, 9.0, 0.0}}), 4.0);
}

TEST(PossibleWorldsTest, MonteCarloAgreesWithExact) {
  Rng geom(7);
  for (int trial = 0; trial < 5; ++trial) {
    const int nt = 2 + static_cast<int>(geom.NextBounded(6));
    const int nw = 1 + static_cast<int>(geom.NextBounded(4));
    std::vector<std::pair<int, int>> edges;
    for (int t = 0; t < nt; ++t) {
      for (int w = 0; w < nw; ++w) {
        if (geom.NextBernoulli(0.5)) edges.push_back({t, w});
      }
    }
    auto g = BipartiteGraph::FromEdges(nt, nw, std::move(edges));
    std::vector<PricedTask> tasks(nt);
    for (auto& t : tasks) {
      t.distance = geom.NextDouble(0.5, 3.0);
      t.price = geom.NextDouble(1.0, 5.0);
      t.accept_prob = geom.NextDouble(0.1, 0.9);
    }
    const double exact = ExactExpectedRevenue(g, tasks);
    Rng mc(trial);
    const double estimate = MonteCarloExpectedRevenue(g, tasks, mc, 40000);
    // Bound the deviation loosely: ~4 sigma of the MC mean.
    EXPECT_NEAR(estimate, exact, std::max(0.05, exact * 0.05))
        << "trial " << trial;
  }
}

TEST(PossibleWorldsTest, PoolBackedEnumerationBitIdenticalAcrossThreads) {
  // The mask space is split into shards whose boundaries depend on n only;
  // partial sums are folded in shard order, so the expectation is
  // bit-identical for 1, 2, and 8 threads — the rounding-sensitive case is
  // a larger instance with irrational-ish probabilities.
  Rng geom(11);
  const int nt = 14, nw = 6;
  std::vector<std::pair<int, int>> edges;
  for (int t = 0; t < nt; ++t) {
    for (int w = 0; w < nw; ++w) {
      if (geom.NextBernoulli(0.4)) edges.push_back({t, w});
    }
  }
  auto g = BipartiteGraph::FromEdges(nt, nw, std::move(edges));
  std::vector<PricedTask> tasks(nt);
  for (auto& t : tasks) {
    t.distance = geom.NextDouble(0.5, 3.0);
    t.price = geom.NextDouble(1.0, 5.0);
    t.accept_prob = geom.NextDouble(0.1, 0.9);
  }

  std::vector<PossibleWorldsWorkspace> workspaces;
  ThreadPool pool1(1);
  const double r1 = ExactExpectedRevenue(g, tasks, &pool1, &workspaces);
  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(ExactExpectedRevenue(g, tasks, &pool, &workspaces), r1)
        << threads << " threads";
  }
  // And it agrees with the serial single-accumulator overload up to
  // floating-point association at shard boundaries.
  EXPECT_NEAR(r1, ExactExpectedRevenue(g, tasks), 1e-9);
}

TEST(PossibleWorldsTest, PoolBackedEnumerationReusesWorkspacesAcrossCalls) {
  // The workspace vector follows the PR 1 pooling contract: one entry per
  // worker, reused across invocations of different shapes with no leakage.
  auto g = BipartiteGraph::FromEdges(2, 1, {{0, 0}, {1, 0}});
  std::vector<PricedTask> small = {{3.0, 2.0, 0.5}, {1.0, 2.0, 0.4}};
  auto g2 = BipartiteGraph::FromEdges(3, 3, {{0, 0}, {1, 0}, {2, 1}, {2, 2}});
  std::vector<PricedTask> paper = {
      {1.3, 3.0, 0.5}, {0.7, 3.0, 0.5}, {1.0, 2.0, 0.8}};

  ThreadPool pool(4);
  std::vector<PossibleWorldsWorkspace> workspaces;
  const double first = ExactExpectedRevenue(g, small, &pool, &workspaces);
  EXPECT_NEAR(ExactExpectedRevenue(g2, paper, &pool, &workspaces), 4.075,
              1e-12);
  EXPECT_EQ(ExactExpectedRevenue(g, small, &pool, &workspaces), first);
  EXPECT_EQ(static_cast<int>(workspaces.size()), pool.num_threads());
}

TEST(PossibleWorldsTest, CounterMonteCarloBitIdenticalAcrossThreads) {
  // World w draws from CounterRng stream (seed, w) no matter which worker
  // evaluates it, and partial sums fold in fixed shard order — so the
  // estimate must be bit-identical with no pool and with 1, 2, and 8
  // threads, across repeated invocations on reused workspaces.
  Rng geom(19);
  const int nt = 12, nw = 5;
  std::vector<std::pair<int, int>> edges;
  for (int t = 0; t < nt; ++t) {
    for (int w = 0; w < nw; ++w) {
      if (geom.NextBernoulli(0.4)) edges.push_back({t, w});
    }
  }
  auto g = BipartiteGraph::FromEdges(nt, nw, std::move(edges));
  std::vector<PricedTask> tasks(nt);
  for (auto& t : tasks) {
    t.distance = geom.NextDouble(0.5, 3.0);
    t.price = geom.NextDouble(1.0, 5.0);
    t.accept_prob = geom.NextDouble(0.1, 0.9);
  }

  std::vector<PossibleWorldsWorkspace> workspaces;
  const double serial =
      MonteCarloExpectedRevenue(g, tasks, /*seed=*/33, /*samples=*/10001,
                                /*pool=*/nullptr, &workspaces);
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(MonteCarloExpectedRevenue(g, tasks, 33, 10001, &pool,
                                        &workspaces),
              serial)
        << threads << " threads";
  }
  // A different seed family samples different worlds.
  EXPECT_NE(MonteCarloExpectedRevenue(g, tasks, 34, 10001, nullptr,
                                      &workspaces),
            serial);
}

TEST(PossibleWorldsTest, CounterMonteCarloConvergesToExactAtAnyThreadCount) {
  // Small random instances where the exact enumerator is the ground truth:
  // the counter-streamed estimate must land within ~4 sigma of it, and the
  // value used for the comparison must be the same at 1, 2, and 8 threads.
  Rng geom(23);
  for (int trial = 0; trial < 5; ++trial) {
    const int nt = 2 + static_cast<int>(geom.NextBounded(6));
    const int nw = 1 + static_cast<int>(geom.NextBounded(4));
    std::vector<std::pair<int, int>> edges;
    for (int t = 0; t < nt; ++t) {
      for (int w = 0; w < nw; ++w) {
        if (geom.NextBernoulli(0.5)) edges.push_back({t, w});
      }
    }
    auto g = BipartiteGraph::FromEdges(nt, nw, std::move(edges));
    std::vector<PricedTask> tasks(nt);
    for (auto& t : tasks) {
      t.distance = geom.NextDouble(0.5, 3.0);
      t.price = geom.NextDouble(1.0, 5.0);
      t.accept_prob = geom.NextDouble(0.1, 0.9);
    }
    const double exact = ExactExpectedRevenue(g, tasks);
    std::vector<PossibleWorldsWorkspace> workspaces;
    double estimate = 0.0;
    bool first = true;
    for (int threads : {1, 2, 8}) {
      ThreadPool pool(threads);
      const double e = MonteCarloExpectedRevenue(
          g, tasks, /*seed=*/100 + trial, 40000, &pool, &workspaces);
      if (first) {
        estimate = e;
        first = false;
      } else {
        ASSERT_EQ(e, estimate) << threads << " threads, trial " << trial;
      }
    }
    EXPECT_NEAR(estimate, exact, std::max(0.05, exact * 0.05))
        << "trial " << trial;
  }
}

TEST(PossibleWorldsDeathTest, TooManyTasksRefused) {
  std::vector<PricedTask> tasks(26, {1.0, 1.0, 0.5});
  auto g = BipartiteGraph::FromEdges(26, 1, {});
  EXPECT_DEATH(ExactExpectedRevenue(g, tasks), "2\\^n");
}

}  // namespace
}  // namespace maps
