#include "graph/bipartite_graph.h"

#include <gtest/gtest.h>

#include <set>

#include "rng/random.h"

namespace maps {
namespace {

TEST(BipartiteGraphTest, FromEdgesBasics) {
  auto g = BipartiteGraph::FromEdges(3, 2, {{0, 1}, {0, 0}, {2, 1}});
  EXPECT_EQ(g.num_left(), 3);
  EXPECT_EQ(g.num_right(), 2);
  EXPECT_EQ(g.num_edges(), 3);
  // Neighbors are sorted regardless of insertion order.
  EXPECT_EQ(std::vector<int>(g.Neighbors(0).begin(), g.Neighbors(0).end()),
            (std::vector<int>{0, 1}));
  EXPECT_TRUE(g.Neighbors(1).empty());
  EXPECT_EQ(g.Degree(0), 2);
  EXPECT_EQ(g.Degree(1), 0);
  EXPECT_EQ(g.Degree(2), 1);
}

TEST(BipartiteGraphTest, EmptyGraph) {
  auto g = BipartiteGraph::FromEdges(0, 0, {});
  EXPECT_EQ(g.num_left(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(BipartiteGraphDeathTest, RejectsOutOfRangeVertices) {
  EXPECT_DEATH(BipartiteGraph::FromEdges(1, 1, {{1, 0}}), "out of range");
  EXPECT_DEATH(BipartiteGraph::FromEdges(1, 1, {{0, -1}}), "out of range");
}

TEST(BipartiteGraphTest, SpatialBuildMatchesBruteForce) {
  // Property: the grid-accelerated Build() must produce exactly the edges
  // the O(|R|*|W|) definition gives, across random geometries.
  auto grid = GridPartition::Make(Rect{0, 0, 100, 100}, 8, 8).ValueOrDie();
  Rng rng(2024);
  for (int trial = 0; trial < 30; ++trial) {
    const int nt = 1 + static_cast<int>(rng.NextBounded(40));
    const int nw = 1 + static_cast<int>(rng.NextBounded(25));
    std::vector<Task> tasks(nt);
    for (int i = 0; i < nt; ++i) {
      tasks[i].id = i;
      tasks[i].origin = {rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
      tasks[i].grid = grid.CellOf(tasks[i].origin);
    }
    std::vector<Worker> workers(nw);
    for (int i = 0; i < nw; ++i) {
      workers[i].id = i;
      workers[i].location = {rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
      workers[i].radius = rng.NextDouble(0.5, 35.0);
      workers[i].grid = grid.CellOf(workers[i].location);
    }

    auto g = BipartiteGraph::Build(tasks, workers, grid);
    std::set<std::pair<int, int>> expected;
    for (int t = 0; t < nt; ++t) {
      for (int w = 0; w < nw; ++w) {
        if (workers[w].CanReach(tasks[t].origin)) expected.insert({t, w});
      }
    }
    std::set<std::pair<int, int>> actual;
    for (int t = 0; t < nt; ++t) {
      for (int w : g.Neighbors(t)) actual.insert({t, w});
    }
    ASSERT_EQ(actual, expected) << "trial " << trial;
  }
}

TEST(BipartiteGraphTest, RangeConstraintBoundaryInclusive) {
  auto grid = GridPartition::Make(Rect{0, 0, 10, 10}, 1, 1).ValueOrDie();
  std::vector<Task> tasks(1);
  tasks[0].origin = {5, 5};
  tasks[0].grid = 0;
  std::vector<Worker> workers(1);
  workers[0].location = {5, 2};  // distance exactly 3
  workers[0].radius = 3.0;
  workers[0].grid = 0;
  auto g = BipartiteGraph::Build(tasks, workers, grid);
  EXPECT_EQ(g.num_edges(), 1);  // <= is inclusive (Definition 4)
}

TEST(BipartiteGraphTest, FootprintGrowsWithEdges) {
  auto small = BipartiteGraph::FromEdges(2, 2, {{0, 0}});
  std::vector<std::pair<int, int>> many;
  for (int l = 0; l < 50; ++l) {
    for (int r = 0; r < 50; ++r) many.push_back({l, r});
  }
  auto big = BipartiteGraph::FromEdges(50, 50, std::move(many));
  EXPECT_GT(big.FootprintBytes(), small.FootprintBytes());
}

}  // namespace
}  // namespace maps
