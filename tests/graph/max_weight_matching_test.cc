#include "graph/max_weight_matching.h"

#include <gtest/gtest.h>

#include "graph/hungarian.h"
#include "rng/random.h"

namespace maps {
namespace {

TEST(HungarianTest, KnownAssignment) {
  // Best over all permutations (unmatched allowed): 7 + 2 = 9, realized by
  // either (l0->r0, l1->r2) or (l0->r0, l1->r2, l2 unmatched since its only
  // positive cell r0 is taken).
  std::vector<std::vector<double>> w = {
      {7, 4, 3}, {3, 1, 2}, {3, 0, 0}};
  auto res = HungarianMaxWeight(w);
  EXPECT_DOUBLE_EQ(res.total_weight, 9.0);
}

TEST(HungarianTest, UnmatchedAllowedWhenUnprofitable) {
  // Only one positive edge; the rest should stay unmatched.
  std::vector<std::vector<double>> w = {{5, 0}, {0, 0}};
  auto res = HungarianMaxWeight(w);
  EXPECT_DOUBLE_EQ(res.total_weight, 5.0);
  EXPECT_EQ(res.match_left[0], 0);
  EXPECT_EQ(res.match_left[1], -1);
}

TEST(HungarianTest, EmptyAndRectangular) {
  EXPECT_DOUBLE_EQ(HungarianMaxWeight({}).total_weight, 0.0);
  // 1 left, 3 rights.
  auto res = HungarianMaxWeight({{1.0, 9.0, 4.0}});
  EXPECT_DOUBLE_EQ(res.total_weight, 9.0);
  EXPECT_EQ(res.match_left[0], 1);
  // 3 lefts, 1 right: only the best left is matched.
  auto res2 = HungarianMaxWeight({{2.0}, {7.0}, {4.0}});
  EXPECT_DOUBLE_EQ(res2.total_weight, 7.0);
  EXPECT_EQ(res2.match_left[1], 0);
}

TEST(MaxWeightTaskMatchingTest, SharedWorkerTakesHeavierTask) {
  // r0 (weight 3.9) and r1 (weight 2.1) both reach only w0: pick r0.
  auto g = BipartiteGraph::FromEdges(2, 1, {{0, 0}, {1, 0}});
  auto res = MaxWeightTaskMatching(g, {3.9, 2.1});
  EXPECT_DOUBLE_EQ(res.total_weight, 3.9);
  EXPECT_EQ(res.matching.match_left[0], 0);
  EXPECT_EQ(res.matching.match_left[1], Matching::kUnmatched);
}

TEST(MaxWeightTaskMatchingTest, HeavyTaskForcesReroute) {
  // l0-{r0}, l1-{r0,r1}; l1 heavier, processed first, takes r0; l0 must
  // still be served via rerouting l1 to r1.
  auto g = BipartiteGraph::FromEdges(2, 2, {{0, 0}, {1, 0}, {1, 1}});
  auto res = MaxWeightTaskMatching(g, {1.0, 10.0});
  EXPECT_DOUBLE_EQ(res.total_weight, 11.0);
  EXPECT_EQ(res.matching.size, 2);
}

TEST(MaxWeightTaskMatchingTest, NegativeWeightsExcluded) {
  auto g = BipartiteGraph::FromEdges(2, 2, {{0, 0}, {1, 1}});
  auto res = MaxWeightTaskMatching(g, {-1.0, 2.0});
  EXPECT_DOUBLE_EQ(res.total_weight, 2.0);
  EXPECT_EQ(res.matching.match_left[0], Matching::kUnmatched);
}

TEST(MaxWeightTaskMatchingTest, DeterministicTieBreakByIndex) {
  auto g = BipartiteGraph::FromEdges(2, 1, {{0, 0}, {1, 0}});
  auto res = MaxWeightTaskMatching(g, {5.0, 5.0});
  EXPECT_EQ(res.matching.match_left[0], 0);  // lower index wins ties
}

class GreedyVsHungarianTest : public ::testing::TestWithParam<int> {};

TEST_P(GreedyVsHungarianTest, MatroidGreedyIsExactForTaskSideWeights) {
  // The core optimality claim behind Definition 5's evaluation: for weights
  // attached to the left (task) side, greedy-with-augmentation equals the
  // Hungarian optimum. Random sweep across sizes/densities.
  Rng rng(1000 + GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const int nl = 1 + static_cast<int>(rng.NextBounded(14));
    const int nr = 1 + static_cast<int>(rng.NextBounded(14));
    const double density = 0.1 + 0.2 * (GetParam() % 4);
    std::vector<std::pair<int, int>> edges;
    std::vector<std::vector<double>> dense(
        nl, std::vector<double>(nr, 0.0));
    std::vector<double> weights(nl);
    for (int l = 0; l < nl; ++l) {
      weights[l] = rng.NextDouble(0.1, 20.0);
    }
    for (int l = 0; l < nl; ++l) {
      for (int r = 0; r < nr; ++r) {
        if (rng.NextBernoulli(density)) {
          edges.push_back({l, r});
          dense[l][r] = weights[l];
        }
      }
    }
    auto g = BipartiteGraph::FromEdges(nl, nr, std::move(edges));
    const auto greedy = MaxWeightTaskMatching(g, weights);
    const auto hung = HungarianMaxWeight(dense);
    ASSERT_NEAR(greedy.total_weight, hung.total_weight, 1e-9)
        << "trial " << trial << " nl=" << nl << " nr=" << nr;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GreedyVsHungarianTest,
                         ::testing::Range(0, 8));

TEST(MaxWeightTaskMatchingDeathTest, WeightArityChecked) {
  auto g = BipartiteGraph::FromEdges(2, 1, {{0, 0}});
  EXPECT_DEATH(MaxWeightTaskMatching(g, {1.0}), "Check failed");
}

}  // namespace
}  // namespace maps
