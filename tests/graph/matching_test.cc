#include <gtest/gtest.h>

#include <algorithm>

#include "graph/bipartite_graph.h"
#include "graph/hopcroft_karp.h"
#include "graph/incremental_matching.h"
#include "graph/kuhn.h"
#include "rng/random.h"

namespace maps {
namespace {

BipartiteGraph RandomGraph(Rng& rng, int max_l, int max_r, double density) {
  const int nl = 1 + static_cast<int>(rng.NextBounded(max_l));
  const int nr = 1 + static_cast<int>(rng.NextBounded(max_r));
  std::vector<std::pair<int, int>> edges;
  for (int l = 0; l < nl; ++l) {
    for (int r = 0; r < nr; ++r) {
      if (rng.NextBernoulli(density)) edges.push_back({l, r});
    }
  }
  return BipartiteGraph::FromEdges(nl, nr, std::move(edges));
}

void CheckValidMatching(const BipartiteGraph& g, const Matching& m) {
  int count = 0;
  for (int l = 0; l < g.num_left(); ++l) {
    const int r = m.match_left[l];
    if (r == Matching::kUnmatched) continue;
    ++count;
    ASSERT_EQ(m.match_right[r], l) << "asymmetric match";
    auto nb = g.Neighbors(l);
    ASSERT_TRUE(std::find(nb.begin(), nb.end(), r) != nb.end())
        << "matched along a non-edge";
  }
  ASSERT_EQ(count, m.size);
}

TEST(KuhnTest, KnownSmallCases) {
  // Perfect matching on a 2x2 cycle.
  auto g = BipartiteGraph::FromEdges(2, 2, {{0, 0}, {0, 1}, {1, 0}});
  auto m = KuhnMatching(g);
  EXPECT_EQ(m.size, 2);

  // Star: 3 lefts all pointing at one right -> size 1.
  auto star = BipartiteGraph::FromEdges(3, 1, {{0, 0}, {1, 0}, {2, 0}});
  EXPECT_EQ(KuhnMatching(star).size, 1);

  // No edges.
  auto empty = BipartiteGraph::FromEdges(3, 3, {});
  EXPECT_EQ(KuhnMatching(empty).size, 0);
}

TEST(HopcroftKarpTest, KnownSmallCases) {
  auto g = BipartiteGraph::FromEdges(
      3, 3, {{0, 0}, {0, 1}, {1, 0}, {2, 1}, {2, 2}});
  EXPECT_EQ(HopcroftKarpMatching(g).size, 3);
}

class MatchingEquivalenceTest : public ::testing::TestWithParam<double> {};

TEST_P(MatchingEquivalenceTest, KuhnEqualsHopcroftKarpEqualsIncremental) {
  // Property: all three matchers agree on maximum cardinality.
  Rng rng(static_cast<uint64_t>(GetParam() * 1000) + 5);
  for (int trial = 0; trial < 60; ++trial) {
    const BipartiteGraph g = RandomGraph(rng, 30, 30, GetParam());
    const Matching kuhn = KuhnMatching(g);
    const Matching hk = HopcroftKarpMatching(g);
    CheckValidMatching(g, kuhn);
    CheckValidMatching(g, hk);
    ASSERT_EQ(kuhn.size, hk.size) << "trial " << trial;

    IncrementalMatching inc(&g);
    for (int l = 0; l < g.num_left(); ++l) inc.TryAugment(l);
    CheckValidMatching(g, inc.matching());
    ASSERT_EQ(inc.size(), kuhn.size) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(DensitySweep, MatchingEquivalenceTest,
                         ::testing::Values(0.02, 0.05, 0.15, 0.4, 0.8));

TEST(IncrementalMatchingTest, TryAugmentIdempotentOnMatchedVertex) {
  auto g = BipartiteGraph::FromEdges(2, 1, {{0, 0}, {1, 0}});
  IncrementalMatching inc(&g);
  EXPECT_TRUE(inc.TryAugment(0));
  EXPECT_EQ(inc.size(), 1);
  EXPECT_TRUE(inc.TryAugment(0));  // already matched: true, no growth
  EXPECT_EQ(inc.size(), 1);
  EXPECT_FALSE(inc.TryAugment(1));  // the only worker is taken
}

TEST(IncrementalMatchingTest, AugmentingPathReroutesExistingMatches) {
  // l0-{r0}, l1-{r0, r1}: matching l1 first to r0 must not block l0.
  auto g = BipartiteGraph::FromEdges(2, 2, {{0, 0}, {1, 0}, {1, 1}});
  IncrementalMatching inc(&g);
  EXPECT_TRUE(inc.TryAugment(1));
  EXPECT_TRUE(inc.TryAugment(0));  // forces l1 to reroute to r1
  EXPECT_EQ(inc.size(), 2);
  EXPECT_EQ(inc.matching().match_left[0], 0);
  EXPECT_EQ(inc.matching().match_left[1], 1);
}

TEST(IncrementalMatchingTest, AnyAugmentableDoesNotMutate) {
  auto g = BipartiteGraph::FromEdges(2, 1, {{0, 0}, {1, 0}});
  IncrementalMatching inc(&g);
  EXPECT_TRUE(inc.AnyAugmentable({0, 1}));
  EXPECT_EQ(inc.size(), 0);  // probe only
  EXPECT_TRUE(inc.TryAugment(0));
  EXPECT_FALSE(inc.AnyAugmentable({1}));
  EXPECT_EQ(inc.size(), 1);
}

TEST(IncrementalMatchingTest, AugmentFirstSkipsMatchedAndPicksFirstFeasible) {
  auto g = BipartiteGraph::FromEdges(3, 2, {{0, 0}, {1, 0}, {2, 1}});
  IncrementalMatching inc(&g);
  EXPECT_EQ(inc.AugmentFirst({0, 1, 2}), 0);
  EXPECT_EQ(inc.AugmentFirst({0, 1, 2}), 2);  // 0 matched, 1 blocked
  EXPECT_EQ(inc.AugmentFirst({0, 1, 2}), Matching::kUnmatched);
}

TEST(IncrementalMatchingTest, SinglePassCoreMatchesHopcroftKarp) {
  // Post-refactor guard: driving the matching exclusively through the
  // probe/commit pair (FindAugmentablePath + CommitPath) must reach the
  // same maximum cardinality Hopcroft-Karp computes.
  Rng rng(4242);
  for (int trial = 0; trial < 60; ++trial) {
    const BipartiteGraph g = RandomGraph(rng, 40, 30, 0.1);
    const Matching hk = HopcroftKarpMatching(g);

    IncrementalMatching inc(&g);
    std::vector<int> all(g.num_left());
    for (int l = 0; l < g.num_left(); ++l) all[l] = l;
    RecordedPath path;
    while (inc.FindAugmentablePath(all, &path) != Matching::kUnmatched) {
      ASSERT_TRUE(inc.CommitPath(path)) << "fresh path must commit";
    }
    CheckValidMatching(g, inc.matching());
    ASSERT_EQ(inc.size(), hk.size) << "trial " << trial;
  }
}

TEST(IncrementalMatchingTest, StalePathIsRejectedAndMatchingUntouched) {
  // Two roots share the only free worker: the second recorded path goes
  // stale once the first commits, and CommitPath must refuse it.
  auto g = BipartiteGraph::FromEdges(2, 1, {{0, 0}, {1, 0}});
  IncrementalMatching inc(&g);
  RecordedPath p0, p1;
  ASSERT_EQ(inc.FindAugmentablePath({0}, &p0), 0);
  ASSERT_EQ(inc.FindAugmentablePath({1}, &p1), 1);
  ASSERT_TRUE(inc.CommitPath(p0));
  EXPECT_EQ(inc.size(), 1);
  EXPECT_FALSE(inc.CommitPath(p1)) << "stale path committed";
  EXPECT_EQ(inc.size(), 1);
  EXPECT_EQ(inc.matching().match_left[0], 0);
  EXPECT_EQ(inc.matching().match_left[1], Matching::kUnmatched);
}

TEST(IncrementalMatchingTest, StaleReroutedPathStillRejected) {
  // l1's recorded path (l1->r0) goes stale when l0 re-routes r0's match:
  // after committing l0 via r0, the recorded successor of r0 changed.
  auto g = BipartiteGraph::FromEdges(3, 2, {{0, 0}, {1, 0}, {1, 1}, {2, 1}});
  IncrementalMatching inc(&g);
  ASSERT_TRUE(inc.TryAugment(1));  // l1 -> r0
  RecordedPath p2;
  ASSERT_EQ(inc.FindAugmentablePath({2}, &p2), 2);  // l2 -> r1
  // l0 forces l1 to re-route to r1; p2's terminal right vertex is taken.
  ASSERT_TRUE(inc.TryAugment(0));
  EXPECT_FALSE(inc.CommitPath(p2));
  EXPECT_EQ(inc.size(), 2);
}

TEST(IncrementalMatchingTest, RandomizedProbeCommitInterleavingStaysMaximum) {
  // Probe one candidate half, commit later (possibly stale after the other
  // half augmented), falling back to AugmentFirst — the exact discipline
  // PriceRound uses. Final size must still match Hopcroft-Karp.
  Rng rng(1717);
  for (int trial = 0; trial < 40; ++trial) {
    const BipartiteGraph g = RandomGraph(rng, 30, 20, 0.15);
    const Matching hk = HopcroftKarpMatching(g);
    IncrementalMatching inc(&g);
    std::vector<int> half_a, half_b;
    for (int l = 0; l < g.num_left(); ++l) {
      (l % 2 == 0 ? half_a : half_b).push_back(l);
    }
    RecordedPath pa;
    bool progress = true;
    while (progress) {
      progress = false;
      const int root = inc.FindAugmentablePath(half_a, &pa);
      // Interleave: half_b grabs a worker between probe and commit.
      if (inc.AugmentFirst(half_b) != Matching::kUnmatched) progress = true;
      if (root != Matching::kUnmatched) {
        if (inc.CommitPath(pa) ||
            inc.AugmentFirst(half_a) != Matching::kUnmatched) {
          progress = true;
        }
      }
    }
    CheckValidMatching(g, inc.matching());
    ASSERT_EQ(inc.size(), hk.size) << "trial " << trial;
  }
}

TEST(IncrementalMatchingTest, ResetReusesBuffersAcrossGraphs) {
  auto g1 = BipartiteGraph::FromEdges(2, 2, {{0, 0}, {1, 1}});
  auto g2 = BipartiteGraph::FromEdges(3, 1, {{0, 0}, {1, 0}, {2, 0}});
  IncrementalMatching inc(&g1);
  EXPECT_TRUE(inc.TryAugment(0));
  EXPECT_TRUE(inc.TryAugment(1));
  EXPECT_EQ(inc.size(), 2);
  inc.Reset(&g2);
  EXPECT_EQ(inc.size(), 0);
  EXPECT_TRUE(inc.TryAugment(0));
  EXPECT_FALSE(inc.TryAugment(1));
  EXPECT_EQ(inc.size(), 1);
}

TEST(IncrementalMatchingTest, MonotoneUnderInterleavedCandidates) {
  // Once AnyAugmentable(S) is false for a candidate set S, it stays false
  // as other vertices are matched (transversal-matroid monotonicity MAPS
  // relies on).
  Rng rng(77);
  for (int trial = 0; trial < 40; ++trial) {
    const BipartiteGraph g = RandomGraph(rng, 20, 12, 0.15);
    IncrementalMatching inc(&g);
    std::vector<int> half_a, half_b;
    for (int l = 0; l < g.num_left(); ++l) {
      (l % 2 == 0 ? half_a : half_b).push_back(l);
    }
    bool a_dead = false;
    for (int step = 0; step < g.num_left(); ++step) {
      if (!inc.AnyAugmentable(half_a)) a_dead = true;
      if (a_dead) {
        ASSERT_FALSE(inc.AnyAugmentable(half_a)) << "dead set revived";
      }
      if (inc.AugmentFirst(half_b) == Matching::kUnmatched &&
          inc.AugmentFirst(half_a) == Matching::kUnmatched) {
        break;
      }
    }
  }
}

TEST(IncrementalMatchingTest, LookaheadMatchesDirectFreeNeighbor) {
  // l0-{r0, r1} with r0 taken: the frame lookahead must match l0 straight
  // to the free r1 instead of walking an alternating re-route through r0.
  auto g = BipartiteGraph::FromEdges(3, 2, {{0, 0}, {0, 1}, {1, 0}, {2, 1}});
  IncrementalMatching inc(&g);
  ASSERT_TRUE(inc.TryAugment(1));  // l1 -> r0
  ASSERT_TRUE(inc.TryAugment(0));
  EXPECT_EQ(inc.matching().match_left[0], 1) << "direct free worker skipped";
  EXPECT_EQ(inc.matching().match_left[1], 0) << "needless re-route";
}

TEST(IncrementalMatchingTest, FailedProbeMarksSaturatedRegionDead) {
  // l0/l1 both only reach r0. After l0 takes it, a failed probe for l1
  // certifies {r0} as a saturated closed region; later probes for l2 (also
  // r0-only) must still fail, and r0 stays dead until Reset.
  auto g = BipartiteGraph::FromEdges(3, 2,
                                     {{0, 0}, {1, 0}, {2, 0}, {2, 1}});
  IncrementalMatching inc(&g);
  ASSERT_TRUE(inc.TryAugment(0));
  EXPECT_EQ(inc.num_dead(), 0);
  EXPECT_FALSE(inc.TryAugment(1));
  EXPECT_EQ(inc.num_dead(), 1) << "failed search left r0 live";
  // l2 still reaches the free r1 — pruning must not block live paths.
  EXPECT_TRUE(inc.TryAugment(2));
  EXPECT_EQ(inc.matching().match_left[2], 1);
  EXPECT_EQ(inc.num_dead(), 1);
  inc.Reset(&g);
  EXPECT_EQ(inc.num_dead(), 0);
}

TEST(IncrementalMatchingTest, DeadPruningNeverChangesFeasibility) {
  // Randomized cross-validation: drive one instance through the PriceRound
  // probe/commit discipline (which prunes) and compare every feasibility
  // answer against a fresh pruning-free oracle built per query by replaying
  // the committed roots through Hopcroft-Karp-equivalent growth.
  Rng rng(909);
  for (int trial = 0; trial < 40; ++trial) {
    const BipartiteGraph g = RandomGraph(rng, 24, 14, 0.12);
    IncrementalMatching inc(&g);
    std::vector<int> candidates(g.num_left());
    for (int l = 0; l < g.num_left(); ++l) candidates[l] = l;
    RecordedPath path;
    int guard = 0;
    while (true) {
      ASSERT_LT(guard++, 1000);
      const int root = inc.FindAugmentablePath(candidates, &path);
      // Oracle without pruning: same committed left set, fresh matcher.
      IncrementalMatching oracle(&g);
      for (int l = 0; l < g.num_left(); ++l) {
        if (inc.matching().IsLeftMatched(l)) {
          ASSERT_TRUE(oracle.TryAugment(l));
        }
      }
      RecordedPath oracle_path;
      ASSERT_EQ(oracle.FindAugmentablePath(candidates, &oracle_path), root)
          << "pruning changed the admitted root, trial " << trial;
      if (root == Matching::kUnmatched) break;
      ASSERT_TRUE(inc.CommitPath(path));
    }
    ASSERT_EQ(inc.size(), HopcroftKarpMatching(g).size) << trial;
  }
}

}  // namespace
}  // namespace maps
